open Coign_netsim
open Coign_core
open Coign_apps
open Coign_sim

(* --- Replay ---------------------------------------------------------- *)

let octarine_trace id =
  let app = Octarine.app in
  let sc = App.scenario app id in
  let classifier = Classifier.create Classifier.Ifcb in
  let events =
    Replay.record_scenario ~registry:app.App.app_registry ~classifier sc.App.sc_run
  in
  (app, sc, classifier, events)

let test_replay_matches_distributed_run () =
  (* Replaying the trace under the analyzer's distribution must charge
     exactly what the jitter-free distributed execution charges. *)
  let app = Octarine.app in
  let sc = App.scenario app "o_oldwp7" in
  let image = Adps.instrument app.App.app_image in
  let recorder, events = Logger.event_recorder () in
  (* Profile with a recorder so we get both the trace and the image. *)
  let config = Option.get image.Coign_image.Binary_image.config in
  ignore config;
  let classifier = Classifier.create Classifier.Ifcb in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~loggers:[ recorder ] ~classifier ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let net = Net_profiler.exact Network.ethernet_10 in
  let constraints = Constraints.of_image app.App.app_image in
  let distribution = Analysis.choose ~classifier ~icc:(Rte.icc rte) ~constraints ~net () in
  let estimate =
    Replay.what_if ~events:(events ()) ~distribution ~network:Network.ethernet_10 ()
  in
  (* Ground truth: actually run distributed with zero jitter. *)
  let es =
    Adps.execute_with_policy ~registry:app.App.app_registry ~classifier
      ~policy:(Factory.By_classification distribution) ~network:Network.ethernet_10
      ~jitter:0. sc.App.sc_run
  in
  Alcotest.(check int) "remote exchanges" es.Adps.es_remote_calls estimate.Replay.re_remote_calls;
  Alcotest.(check int) "remote bytes" es.Adps.es_remote_bytes estimate.Replay.re_remote_bytes;
  Alcotest.(check (float 1e-3)) "communication time" es.Adps.es_comm_us
    estimate.Replay.re_comm_us;
  Alcotest.(check int) "server instances" es.Adps.es_server_instances
    estimate.Replay.re_server_instances;
  Alcotest.(check (list (pair string string))) "no violations" [] estimate.Replay.re_violations

let test_replay_all_client_is_free () =
  let _, _, _, events = octarine_trace "o_newtbl" in
  let estimate =
    Replay.replay ~events ~placement:(fun _ -> Constraints.Client)
      ~network:Network.ethernet_10 ()
  in
  Alcotest.(check (float 0.)) "no communication" 0. estimate.Replay.re_comm_us;
  Alcotest.(check int) "no remote calls" 0 estimate.Replay.re_remote_calls

let test_replay_detects_violations () =
  (* Split a non-remotable pair on purpose: the main window on the
     server, the widgets it repaints on the client. A real run would
     fault on the device-context interface; replay reports it. *)
  let _, _, classifier, events = octarine_trace "o_newtbl" in
  let placement c =
    if
      c >= 0
      && c < Classifier.classification_count classifier
      && String.equal (Classifier.class_of_classification classifier c) "Octarine.MainWindow"
    then Constraints.Server
    else Constraints.Client
  in
  let estimate = Replay.replay ~events ~placement ~network:Network.ethernet_10 () in
  Alcotest.(check bool) "violations detected" true (estimate.Replay.re_violations <> []);
  Alcotest.(check bool) "paint among them" true
    (List.exists (fun (iface, _) -> String.equal iface "IPaint") estimate.Replay.re_violations)

let test_replay_cheaper_placement_costs_less () =
  let app, _, classifier, events = octarine_trace "o_oldwp7" in
  ignore app;
  ignore classifier;
  let cost placement =
    (Replay.replay ~events ~placement ~network:Network.ethernet_10 ()).Replay.re_comm_us
  in
  (* The all-client placement pays only file-server traffic; a random
     split pays more. *)
  Alcotest.(check bool) "clientward cheaper than odd/even split" true
    (cost (fun _ -> Constraints.Client)
    < cost (fun c -> if c mod 2 = 0 then Constraints.Client else Constraints.Server))

(* --- Drift ----------------------------------------------------------- *)

let run_distributed_counts (app : App.t) classifier policy (sc : App.scenario) =
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte =
    Rte.install_distributed ~classifier
      ~config:
        {
          Rte.dc_factory_policy = policy;
          dc_network = Network.loopback;
          dc_jitter = 0.;
          dc_seed = 1L;
          dc_faults = None;
          dc_retry = Fault.default_retry;
          dc_resilience = None;
          dc_fleet = None;
          dc_watch = None;
        }
      ctx
  in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  Rte.call_counts rte

let test_drift_same_usage_similar () =
  let app = Octarine.app in
  let sc = App.scenario app "o_oldwp0" in
  let classifier = Classifier.create Classifier.Ifcb in
  (* Profile. *)
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let profile = Drift.of_icc (Rte.icc rte) in
  (* Same scenario under the lightweight runtime. *)
  let counts = run_distributed_counts app classifier Factory.All_client sc in
  let observed = Drift.of_counts counts in
  Alcotest.(check bool) "high similarity" true (Drift.similarity profile observed > 0.95);
  Alcotest.(check bool) "no drift" false (Drift.drifted ~profile observed)

let test_drift_changed_usage_detected () =
  let app = Octarine.app in
  let classifier = Classifier.create Classifier.Ifcb in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  (App.scenario app "o_oldwp0").App.sc_run ctx;
  Rte.uninstall rte;
  let profile = Drift.of_icc (Rte.icc rte) in
  (* The user switches to a radically different document type. *)
  let counts =
    run_distributed_counts app classifier Factory.All_client (App.scenario app "o_oldtb3")
  in
  let observed = Drift.of_counts counts in
  Alcotest.(check bool) "similarity degrades" true
    (Drift.similarity profile observed < 0.9);
  Alcotest.(check bool) "drift detected" true (Drift.drifted ~profile observed)

let test_drift_signature_basics () =
  let a = Drift.of_counts [ ((0, 1), 10); ((1, 2), 5) ] in
  let b = Drift.of_counts [ ((0, 1), 20); ((1, 2), 10) ] in
  Alcotest.(check (float 1e-9)) "scale invariant" 1. (Drift.similarity a b);
  let c = Drift.of_counts [ ((3, 4), 7) ] in
  Alcotest.(check (float 1e-9)) "disjoint" 0. (Drift.similarity a c);
  Alcotest.(check (float 1e-9)) "empty vs empty" 1.
    (Drift.similarity (Drift.of_counts []) (Drift.of_counts []));
  Alcotest.(check int) "pair count" 2 (Drift.pair_count a)

(* --- Multiway analysis ------------------------------------------------ *)

let benefits_multiway () =
  let app = Benefits.app in
  let sc = App.scenario app "b_vueone" in
  let classifier = Classifier.create Classifier.Ifcb in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let net = Net_profiler.exact Network.ethernet_10 in
  let pins cname =
    match Static_analysis.class_verdict (Coign_image.Binary_image.class_api_refs app.App.app_image cname) with
    | Static_analysis.Pin_client -> Some "client"
    | Static_analysis.Pin_server -> Some "database"
    | Static_analysis.Free -> None
  in
  let mw =
    Multiway_analysis.choose ~classifier ~icc:(Rte.icc rte)
      ~machines:[ "client"; "middle"; "database" ] ~pins ~net ()
  in
  (classifier, mw)

let test_multiway_benefits_three_tier () =
  let classifier, mw = benefits_multiway () in
  (* The ODBC gateway is pinned to the database machine. *)
  let machine_of_class cname =
    let rec find c =
      if c >= Classifier.classification_count classifier then None
      else if String.equal (Classifier.class_of_classification classifier c) cname then
        Some (Multiway_analysis.machine_of mw c)
      else find (c + 1)
    in
    find 0
  in
  Alcotest.(check (option string)) "odbc on database" (Some "database")
    (machine_of_class "Benefits.OdbcGateway");
  Alcotest.(check (option string)) "forms on client" (Some "client")
    (machine_of_class "Benefits.EmployeeForm");
  (* Every machine name appears in the histogram. *)
  let hist = Multiway_analysis.machine_histogram mw in
  Alcotest.(check int) "three machines" 3 (List.length hist);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "all classifications assigned"
    (Classifier.classification_count classifier)
    total

let test_multiway_requires_two_machines () =
  let classifier = Classifier.create Classifier.St in
  ignore (Classifier.classify classifier ~cname:"A" ~stack:[]);
  let icc = Icc.create () in
  let net = Net_profiler.exact Network.ethernet_10 in
  Alcotest.(check bool) "one machine rejected" true
    (try
       ignore
         (Multiway_analysis.choose ~classifier ~icc ~machines:[ "solo" ]
            ~pins:(fun _ -> None) ~net ());
       false
     with Invalid_argument _ -> true)

let test_multiway_unknown_pin_rejected () =
  let classifier = Classifier.create Classifier.St in
  ignore (Classifier.classify classifier ~cname:"A" ~stack:[]);
  let icc = Icc.create () in
  let net = Net_profiler.exact Network.ethernet_10 in
  Alcotest.(check bool) "unknown machine rejected" true
    (try
       ignore
         (Multiway_analysis.choose ~classifier ~icc ~machines:[ "a"; "b" ]
            ~pins:(fun _ -> Some "mars") ~net ());
       false
     with Invalid_argument _ -> true)

let test_multiway_two_machines_matches_two_way () =
  (* With machines = [client; server] and the same pins, the multiway
     engine must equal the exact two-way engine's communication cost. *)
  let app = Octarine.app in
  let sc = App.scenario app "o_oldwp7" in
  let classifier = Classifier.create Classifier.Ifcb in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let icc = Rte.icc rte in
  let net = Net_profiler.exact Network.ethernet_10 in
  let constraints = Constraints.of_image app.App.app_image in
  let two_way = Analysis.choose ~classifier ~icc ~constraints ~net () in
  let pins cname =
    match Constraints.class_pin constraints ~cname with
    | Some Constraints.Client -> Some "client"
    | Some Constraints.Server -> Some "server"
    | None -> None
  in
  let mw =
    Multiway_analysis.choose ~classifier ~icc ~machines:[ "client"; "server" ] ~pins ~net ()
  in
  Alcotest.(check (float 1.)) "same communication cost" two_way.Analysis.predicted_comm_us
    mw.Multiway_analysis.predicted_comm_us

let suite =
  [
    Alcotest.test_case "replay matches distributed run" `Quick
      test_replay_matches_distributed_run;
    Alcotest.test_case "replay all-client is free" `Quick test_replay_all_client_is_free;
    Alcotest.test_case "replay detects violations" `Quick test_replay_detects_violations;
    Alcotest.test_case "replay placement comparison" `Quick
      test_replay_cheaper_placement_costs_less;
    Alcotest.test_case "drift: same usage similar" `Quick test_drift_same_usage_similar;
    Alcotest.test_case "drift: changed usage detected" `Quick test_drift_changed_usage_detected;
    Alcotest.test_case "drift: signature basics" `Quick test_drift_signature_basics;
    Alcotest.test_case "multiway: benefits three-tier" `Quick test_multiway_benefits_three_tier;
    Alcotest.test_case "multiway: requires two machines" `Quick
      test_multiway_requires_two_machines;
    Alcotest.test_case "multiway: unknown pin rejected" `Quick test_multiway_unknown_pin_rejected;
    Alcotest.test_case "multiway: two machines matches two-way" `Quick
      test_multiway_two_machines_matches_two_way;
  ]

(* --- Profile logs ------------------------------------------------------ *)

let profile_log_of id =
  let app, sc = Suite.find_scenario id in
  let classifier = Classifier.create Classifier.Ifcb in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  Profile_log.of_run ~app:app.App.app_name ~scenario:id rte

let test_profile_log_roundtrip () =
  let log = profile_log_of "o_newtbl" in
  let log' = Profile_log.decode (Profile_log.encode log) in
  Alcotest.(check string) "app" log.Profile_log.pl_app log'.Profile_log.pl_app;
  Alcotest.(check int) "instances" log.Profile_log.pl_instances log'.Profile_log.pl_instances;
  Alcotest.(check int) "calls" (Icc.call_count log.Profile_log.pl_icc)
    (Icc.call_count log'.Profile_log.pl_icc);
  Alcotest.(check int) "classifications"
    (Classifier.classification_count log.Profile_log.pl_classifier)
    (Classifier.classification_count log'.Profile_log.pl_classifier)

let test_profile_log_file_io () =
  let log = profile_log_of "o_newtbl" in
  let path = Filename.temp_file "coign" ".cpl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_log.save log path;
      let log' = Profile_log.load path in
      Alcotest.(check int) "bytes preserved"
        (Icc.total_bytes log.Profile_log.pl_icc)
        (Icc.total_bytes log'.Profile_log.pl_icc))

let test_profile_log_combine_reconciles () =
  (* Two independent runs of overlapping scenarios: shared contexts must
     reconcile to shared classifications, so the combined count is far
     below the sum. *)
  let a = profile_log_of "o_oldwp0" in
  let b = profile_log_of "o_oldtb0" in
  let na = Classifier.classification_count a.Profile_log.pl_classifier in
  let nb = Classifier.classification_count b.Profile_log.pl_classifier in
  let c = Profile_log.combine a b in
  let nc = Classifier.classification_count c.Profile_log.pl_classifier in
  Alcotest.(check bool) "no duplication" true (nc < na + nb);
  Alcotest.(check bool) "superset" true (nc >= max na nb);
  Alcotest.(check int) "instances add"
    (a.Profile_log.pl_instances + b.Profile_log.pl_instances)
    c.Profile_log.pl_instances;
  Alcotest.(check int) "icc calls add"
    (Icc.call_count a.Profile_log.pl_icc + Icc.call_count b.Profile_log.pl_icc)
    (Icc.call_count c.Profile_log.pl_icc);
  Alcotest.(check int) "classifier instances add"
    (Classifier.instance_count a.Profile_log.pl_classifier
    + Classifier.instance_count b.Profile_log.pl_classifier)
    (Classifier.instance_count c.Profile_log.pl_classifier)

let test_profile_log_combine_mismatch () =
  let a = profile_log_of "o_newtbl" in
  let b = profile_log_of "b_vueone" in
  Alcotest.(check bool) "different apps rejected" true
    (try
       ignore (Profile_log.combine a b);
       false
     with Invalid_argument _ -> true)

let test_profile_log_into_image_matches_pipeline () =
  (* Folding two standalone logs into a fresh instrumented image must
     lead the analyzer to the same distribution as profiling the two
     scenarios back-to-back through the pipeline. *)
  let app = Octarine.app in
  let net = Net_profiler.exact Network.ethernet_10 in
  (* Pipeline path. *)
  let image = Adps.instrument app.App.app_image in
  let image, _ =
    Adps.profile ~image ~registry:app.App.app_registry
      (App.scenario app "o_oldwp0").App.sc_run
  in
  let image, _ =
    Adps.profile ~image ~registry:app.App.app_registry
      (App.scenario app "o_oldtb0").App.sc_run
  in
  let _, dist_pipeline = Adps.analyze ~image ~net () in
  (* Log path. *)
  let combined =
    Profile_log.combine (profile_log_of "o_oldwp0") (profile_log_of "o_oldtb0")
  in
  let image2 = Profile_log.into_image combined (Adps.instrument app.App.app_image) in
  let _, dist_logs = Adps.analyze ~image:image2 ~net () in
  Alcotest.(check int) "same node count" dist_pipeline.Analysis.node_count
    dist_logs.Analysis.node_count;
  Alcotest.(check int) "same server count" dist_pipeline.Analysis.server_count
    dist_logs.Analysis.server_count;
  Alcotest.(check (float 500.)) "same predicted comm"
    dist_pipeline.Analysis.predicted_comm_us dist_logs.Analysis.predicted_comm_us

let test_classifier_merge_remap () =
  let stack =
    [ Frame.make ~inst:1 ~cls:"A" ~classification:0 ~iface:"I" ~meth:"m" ]
  in
  let a = Classifier.create Classifier.Ifcb in
  ignore (Classifier.classify a ~cname:"X" ~stack);
  let b = Classifier.create Classifier.Ifcb in
  ignore (Classifier.classify b ~cname:"Y" ~stack);
  ignore (Classifier.classify b ~cname:"X" ~stack);
  let m, remap = Classifier.merge a b in
  Alcotest.(check int) "union size" 2 (Classifier.classification_count m);
  (* b's X (id 1) must map to a's X (id 0). *)
  Alcotest.(check int) "shared descriptor reconciled" 0 remap.(1);
  Alcotest.(check int) "new descriptor appended" 1 remap.(0);
  Alcotest.(check int) "counts added" 2 (Classifier.instances_of m 0)

let test_icc_map_classifications () =
  let icc = Icc.create () in
  Icc.record icc ~src:0 ~dst:1 ~iface:"I" ~remotable:true ~request:10 ~reply:10;
  Icc.record icc ~src:(-1) ~dst:0 ~iface:"I" ~remotable:true ~request:5 ~reply:5;
  let mapped = Icc.map_classifications (fun c -> c + 10) icc in
  let entries = Icc.entries mapped in
  Alcotest.(check bool) "ids shifted" true
    (List.exists (fun e -> e.Icc.src = 10 && e.Icc.dst = 11) entries);
  Alcotest.(check bool) "main preserved" true
    (List.exists (fun e -> e.Icc.src = -1 && e.Icc.dst = 10) entries);
  Alcotest.(check int) "calls preserved" 2 (Icc.call_count mapped)

let log_suite =
  [
    Alcotest.test_case "profile log roundtrip" `Quick test_profile_log_roundtrip;
    Alcotest.test_case "profile log file io" `Quick test_profile_log_file_io;
    Alcotest.test_case "profile log combine reconciles" `Quick
      test_profile_log_combine_reconciles;
    Alcotest.test_case "profile log combine mismatch" `Quick test_profile_log_combine_mismatch;
    Alcotest.test_case "profile logs equal pipeline accumulation" `Quick
      test_profile_log_into_image_matches_pipeline;
    Alcotest.test_case "classifier merge remap" `Quick test_classifier_merge_remap;
    Alcotest.test_case "icc map classifications" `Quick test_icc_map_classifications;
  ]

let suite = suite @ log_suite
