open Coign_idl
open Coign_com
open Coign_core

(* A miniature application: Main creates a Front (GUI-ish) component;
   Front creates a Back (storage-ish) component and pumps blobs at it;
   Back answers small acks. Front and Back also share a non-remotable
   interface. *)

let i_front =
  Itype.declare "IFront"
    [
      Idl_type.method_ "run" [ Idl_type.param "rounds" Idl_type.Int32 ];
      Idl_type.method_ ~ret:(Idl_type.Iface "IBack") "back" [];
    ]

let i_back =
  Itype.declare "IBack"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "store" [ Idl_type.param "data" Idl_type.Blob ];
    ]

let i_shm =
  Itype.declare "ISharedRegion" [ Idl_type.method_ "map" [ Idl_type.param "p" (Idl_type.Opaque "SHM") ] ]

let c_back =
  Runtime.define_class "Mini.Back" (fun _ctx _self ->
      let stored = ref 0 in
      [
        Combuild.iface i_back
          [
            ( "store",
              fun ctx args ->
                stored := !stored + Combuild.get_blob args 0;
                Runtime.charge ctx ~us:10.;
                Combuild.echo args (Value.Int !stored) );
          ];
        Combuild.iface i_shm [ ("map", fun _ctx args -> Combuild.echo args Value.Unit) ];
      ])

let c_front =
  Runtime.define_class "Mini.Front" ~api_refs:[ "user32.GetDC" ] (fun ctx0 _self ->
      let back = Runtime.create_instance ctx0 c_back.Runtime.clsid ~iid:(Itype.iid i_back) in
      [
        Combuild.iface i_front
          [
            ( "run",
              fun ctx args ->
                let rounds = Combuild.get_int args 0 in
                for _ = 1 to rounds do
                  ignore (Runtime.call_named ctx back "store" [ Value.Blob 1_000 ])
                done;
                Combuild.echo args Value.Unit );
            ("back", fun _ctx args -> Combuild.echo args (Value.Iface_ref back));
          ];
      ])

let registry () = Runtime.registry [ c_front; c_back ]

let profile_mini rounds =
  let ctx = Runtime.create_ctx (registry ()) in
  let classifier = Classifier.create Classifier.Ifcb in
  let rte = Rte.install_profiling ~classifier ctx in
  let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
  ignore (Runtime.call_named ctx front "run" [ Value.Int rounds ]);
  (ctx, rte, front)

let test_profiling_intercepts_all_calls () =
  let _, rte, _ = profile_mini 5 in
  (* run + 5 stores *)
  Alcotest.(check int) "intercepted" 6 (Rte.intercepted_calls rte)

let test_instances_classified () =
  let _, rte, _ = profile_mini 1 in
  let pairs = Rte.instance_classifications rte in
  Alcotest.(check int) "two components" 2 (List.length pairs);
  List.iter
    (fun (_, c) -> Alcotest.(check bool) "classification assigned" true (c >= 0))
    pairs;
  Alcotest.(check int) "classifier knows both" 2
    (Classifier.classification_count (Rte.classifier rte))

let test_icc_collected () =
  let _, rte, _ = profile_mini 3 in
  let icc = Rte.icc rte in
  (* run + 3 stores + 2 instantiation requests (Front, Back). *)
  Alcotest.(check int) "calls summarized" 6 (Icc.call_count icc);
  Alcotest.(check bool) "bytes include blob payloads" true (Icc.total_bytes icc > 3_000)

let test_returned_handles_are_wrapped () =
  let ctx, _, front = profile_mini 1 in
  Alcotest.(check bool) "create returns wrapper" true (Runtime.handle_is_wrapper ctx front);
  let _, back_v = Runtime.call_named ctx front "back" [] in
  match back_v with
  | Value.Iface_ref h ->
      Alcotest.(check bool) "escaping handle wrapped" true (Runtime.handle_is_wrapper ctx h)
  | _ -> Alcotest.fail "expected interface"

let test_wrap_idempotent_identity () =
  let ctx, _, front = profile_mini 1 in
  let _, b1 = Runtime.call_named ctx front "back" [] in
  let _, b2 = Runtime.call_named ctx front "back" [] in
  Alcotest.(check bool) "same wrapper both times" true (b1 = b2)

let test_query_interface_through_rte () =
  let ctx, _, front = profile_mini 1 in
  let _, back_v = Runtime.call_named ctx front "back" [] in
  match back_v with
  | Value.Iface_ref back ->
      let shm = Runtime.query_interface ctx back ~iid:(Itype.iid i_shm) in
      Alcotest.(check bool) "QI result wrapped" true (Runtime.handle_is_wrapper ctx shm);
      (* calling through it still works *)
      ignore (Runtime.call_named ctx shm "map" [ Value.Opaque_handle "SHM" ])
  | _ -> Alcotest.fail "expected interface"

let test_uninstall_restores () =
  let ctx, rte, _ = profile_mini 1 in
  Rte.uninstall rte;
  let h = Runtime.create_instance ctx c_back.Runtime.clsid ~iid:(Itype.iid i_back) in
  Alcotest.(check bool) "no wrapper after uninstall" false (Runtime.handle_is_wrapper ctx h)

let test_event_logger_sees_lifecycle () =
  let ctx = Runtime.create_ctx (registry ()) in
  let classifier = Classifier.create Classifier.Ifcb in
  let recorder, events = Logger.event_recorder () in
  let rte = Rte.install_profiling ~loggers:[ recorder ] ~classifier ctx in
  let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
  ignore (Runtime.call_named ctx front "run" [ Value.Int 1 ]);
  Runtime.destroy_instance ctx (Runtime.handle_owner ctx front);
  Rte.uninstall rte;
  let evs = events () in
  let count p = List.length (List.filter p evs) in
  Alcotest.(check int) "two instantiations"
    2
    (count (function Event.Component_instantiated _ -> true | _ -> false));
  Alcotest.(check int) "one destruction"
    1
    (count (function Event.Component_destroyed _ -> true | _ -> false));
  Alcotest.(check bool) "interface instantiations seen" true
    (count (function Event.Interface_instantiated _ -> true | _ -> false) >= 2);
  (* run + 1 store, plus one instantiation-request record per created
     component (Front and Back). *)
  Alcotest.(check int) "calls logged"
    4
    (count (function Event.Interface_call _ -> true | _ -> false))

(* --- Distributed execution ------------------------------------------ *)

let distributed_config policy =
  {
    Rte.dc_factory_policy = policy;
    dc_network = Coign_netsim.Network.ethernet_10;
    dc_jitter = 0.;
    dc_seed = 1L;
    dc_faults = None;
    dc_retry = Coign_netsim.Fault.default_retry;
    dc_resilience = None;
    dc_fleet = None;
    dc_watch = None;
  }

let run_distributed policy rounds =
  let ctx = Runtime.create_ctx (registry ()) in
  let classifier = Classifier.create Classifier.Ifcb in
  let rte = Rte.install_distributed ~classifier ~config:(distributed_config policy) ctx in
  let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
  ignore (Runtime.call_named ctx front "run" [ Value.Int rounds ]);
  (ctx, rte)

let by_class_placement cname =
  if String.equal cname "Mini.Back" then Constraints.Server else Constraints.Client

let test_all_client_no_comm () =
  let _, rte = run_distributed Factory.All_client 5 in
  Alcotest.(check (float 0.)) "no communication" 0. (Rte.comm_us rte);
  Alcotest.(check int) "no remote calls" 0 (Rte.remote_calls rte)

let test_split_placement_accounts_comm () =
  let _, rte = run_distributed (Factory.By_class by_class_placement) 5 in
  (* 5 remote stores plus the forwarded instantiation round trip. *)
  Alcotest.(check int) "remote exchanges" 6 (Rte.remote_calls rte);
  Alcotest.(check bool) "time charged" true (Rte.comm_us rte > 0.);
  Alcotest.(check bool) "bytes counted" true (Rte.remote_bytes rte > 5_000);
  let factory = Option.get (Rte.factory rte) in
  Alcotest.(check int) "one forwarded instantiation" 1 (Factory.forwarded_requests factory)

let test_distributed_deterministic_without_jitter () =
  let _, r1 = run_distributed (Factory.By_class by_class_placement) 4 in
  let _, r2 = run_distributed (Factory.By_class by_class_placement) 4 in
  Alcotest.(check (float 0.)) "deterministic" (Rte.comm_us r1) (Rte.comm_us r2)

let test_jitter_perturbs () =
  let run jitter seed =
    let ctx = Runtime.create_ctx (registry ()) in
    let rte =
      Rte.install_distributed ~classifier:(Classifier.create Classifier.Ifcb)
        ~config:
          {
            Rte.dc_factory_policy = Factory.By_class by_class_placement;
            dc_network = Coign_netsim.Network.ethernet_10;
            dc_jitter = jitter;
            dc_seed = seed;
            dc_faults = None;
            dc_retry = Coign_netsim.Fault.default_retry;
            dc_resilience = None;
            dc_fleet = None;
            dc_watch = None;
          }
        ctx
    in
    let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
    ignore (Runtime.call_named ctx front "run" [ Value.Int 5 ]);
    Rte.comm_us rte
  in
  let base = run 0. 1L in
  let j = run 0.05 2L in
  Alcotest.(check bool) "jitter changes time" true (Float.abs (j -. base) > 1e-9);
  Alcotest.(check bool) "but stays close" true (Float.abs (j -. base) /. base < 0.5)

let test_non_remotable_cross_machine_fails () =
  let ctx, _ = run_distributed (Factory.By_class by_class_placement) 1 in
  (* Fetch the back interface and call its opaque method from the
     client side: a cross-machine call on a non-remotable interface. *)
  let front_h =
    (* main's handle to front: recreate one (front is on the client) *)
    Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front)
  in
  let _, back_v = Runtime.call_named ctx front_h "back" [] in
  match back_v with
  | Value.Iface_ref back ->
      let shm = Runtime.query_interface ctx back ~iid:(Itype.iid i_shm) in
      Alcotest.(check bool) "E_cannot_marshal" true
        (try
           ignore (Runtime.call_named ctx shm "map" [ Value.Opaque_handle "SHM" ]);
           false
         with Hresult.Com_error (Hresult.E_cannot_marshal _) -> true)
  | _ -> Alcotest.fail "expected interface"

let test_factory_machine_tracking () =
  let _, rte = run_distributed (Factory.By_class by_class_placement) 1 in
  let factory = Option.get (Rte.factory rte) in
  let servers = Factory.instances_on factory Constraints.Server in
  Alcotest.(check int) "one component on server" 1 (List.length servers);
  Alcotest.(check bool) "main on client" true
    (Factory.machine_of factory Runtime.main_instance = Constraints.Client)

let suite =
  [
    Alcotest.test_case "profiling intercepts all calls" `Quick test_profiling_intercepts_all_calls;
    Alcotest.test_case "instances classified" `Quick test_instances_classified;
    Alcotest.test_case "icc collected" `Quick test_icc_collected;
    Alcotest.test_case "returned handles wrapped" `Quick test_returned_handles_are_wrapped;
    Alcotest.test_case "wrap idempotent identity" `Quick test_wrap_idempotent_identity;
    Alcotest.test_case "query interface through rte" `Quick test_query_interface_through_rte;
    Alcotest.test_case "uninstall restores" `Quick test_uninstall_restores;
    Alcotest.test_case "event logger lifecycle" `Quick test_event_logger_sees_lifecycle;
    Alcotest.test_case "all client no comm" `Quick test_all_client_no_comm;
    Alcotest.test_case "split placement accounts comm" `Quick test_split_placement_accounts_comm;
    Alcotest.test_case "deterministic without jitter" `Quick
      test_distributed_deterministic_without_jitter;
    Alcotest.test_case "jitter perturbs" `Quick test_jitter_perturbs;
    Alcotest.test_case "non-remotable cross-machine fails" `Quick
      test_non_remotable_cross_machine_fails;
    Alcotest.test_case "factory machine tracking" `Quick test_factory_machine_tracking;
  ]
