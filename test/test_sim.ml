open Coign_core
open Coign_apps
open Coign_sim

(* Use cheap scenarios so the suite stays fast. *)

let row id =
  let app, sc = Suite.find_scenario id in
  Experiment.run_scenario app sc

let test_row_basics () =
  let r = row "o_oldwp0" in
  Alcotest.(check string) "id" "o_oldwp0" r.Experiment.row_id;
  Alcotest.(check bool) "savings in range" true
    (r.Experiment.savings >= 0. && r.Experiment.savings <= 1.);
  Alcotest.(check bool) "coign never worse (Table 4 invariant)" true
    (r.Experiment.coign_comm_us <= r.Experiment.default_comm_us *. 1.02);
  Alcotest.(check bool) "prediction close (Table 5 invariant)" true
    (Float.abs r.Experiment.prediction_error < 0.12)

let test_benefits_moves_caches () =
  let r = row "b_vueone" in
  Alcotest.(check bool) "meaningful savings" true (r.Experiment.savings > 0.15);
  let hist = Experiment.server_class_histogram r in
  (* The ODBC gateway must stay on the server; the caches must not. *)
  Alcotest.(check bool) "odbc on server" true
    (List.mem_assoc "Benefits.OdbcGateway" hist);
  Alcotest.(check bool) "employee cache moved off the middle tier" false
    (List.mem_assoc "Benefits.EmployeeCache" hist)

let test_photodraw_property_sets_server () =
  let r = row "p_oldmsr" in
  let hist = Experiment.server_class_histogram r in
  Alcotest.(check bool) "reader on server" true (List.mem_assoc "PhotoDraw.MixReader" hist);
  Alcotest.(check bool) "property sets on server" true
    (List.mem_assoc "PhotoDraw.PropertySet" hist);
  Alcotest.(check bool) "sprite caches stay on client" false
    (List.mem_assoc "PhotoDraw.SpriteCache" hist);
  (* Figure 4 shape: a small handful of server components. *)
  Alcotest.(check bool) "few components on server" true (r.Experiment.server_instances <= 12)

let test_octarine_reader_server () =
  (* The 35-page document of Figure 5: the reader and text properties
     go to the server; for the 5-page o_oldwp0 the optimal distribution
     equals the default (Table 4's 0% row), so use the bigger one. *)
  let r = Experiment.run_scenario Octarine.app Octarine.figure5 in
  let hist = Experiment.server_class_histogram r in
  Alcotest.(check bool) "reader on server" true
    (List.mem_assoc "Octarine.DocumentReader" hist);
  Alcotest.(check bool) "text properties on server" true
    (List.mem_assoc "Octarine.TextProperties" hist);
  Alcotest.(check bool) "GUI stays on client" false (List.mem_assoc "Octarine.Button" hist)

let test_placements_by_class_consistent () =
  let r = row "o_newtbl" in
  let rows = Experiment.placements_by_class r in
  let total = List.fold_left (fun acc (_, _, t) -> acc + t) 0 rows in
  Alcotest.(check int) "totals cover all classifications" r.Experiment.node_count total;
  List.iter
    (fun (cls, s, t) ->
      Alcotest.(check bool) (cls ^ " server <= total") true (s <= t))
    rows

let test_across_networks_monotone_comm () =
  let app, sc = Suite.find_scenario "o_oldwp0" in
  let rows =
    Experiment.across_networks
      ~networks:[ Coign_netsim.Network.isdn_128; Coign_netsim.Network.san_1g ]
      app sc
  in
  match rows with
  | [ isdn; san ] ->
      Alcotest.(check bool) "slower network costs more" true
        (isdn.Experiment.ar_predicted_comm_us > san.Experiment.ar_predicted_comm_us)
  | _ -> Alcotest.fail "expected two rows"

(* --- Parallel determinism (two-stage engine satellites) -------------- *)

let check_rows_identical msg (a : Experiment.row list) (b : Experiment.row list) =
  Alcotest.(check int) (msg ^ ": row count") (List.length a) (List.length b);
  List.iter2
    (fun (x : Experiment.row) (y : Experiment.row) ->
      let bits = Int64.bits_of_float in
      Alcotest.(check string) (msg ^ ": id") x.Experiment.row_id y.Experiment.row_id;
      Alcotest.(check int64)
        (msg ^ ": default comm bits")
        (bits x.Experiment.default_comm_us)
        (bits y.Experiment.default_comm_us);
      Alcotest.(check int64)
        (msg ^ ": coign comm bits")
        (bits x.Experiment.coign_comm_us)
        (bits y.Experiment.coign_comm_us);
      Alcotest.(check int64)
        (msg ^ ": predicted bits")
        (bits x.Experiment.predicted_total_us)
        (bits y.Experiment.predicted_total_us);
      Alcotest.(check int64)
        (msg ^ ": measured bits")
        (bits x.Experiment.measured_total_us)
        (bits y.Experiment.measured_total_us);
      Alcotest.(check string) (msg ^ ": distribution")
        (Analysis.encode x.Experiment.distribution)
        (Analysis.encode y.Experiment.distribution))
    a b

let test_run_suite_parallel_deterministic () =
  let apps = [ Benefits.app ] in
  let sequential = Experiment.run_suite apps in
  let pool = Coign_util.Parallel.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Coign_util.Parallel.shutdown pool)
    (fun () ->
      check_rows_identical "parallel run_suite" sequential (Experiment.run_suite ~pool apps);
      (* A second parallel run must also match: no hidden state leaks
         between jobs. *)
      check_rows_identical "parallel run_suite rerun" sequential
        (Experiment.run_suite ~pool apps))

let test_sweep_parallel_deterministic () =
  let app, sc = Suite.find_scenario "o_oldwp0" in
  let image = Adps.instrument app.Coign_apps.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.Coign_apps.App.app_registry sc.Coign_apps.App.sc_run in
  let session = Adps.analysis_session image in
  let networks =
    Coign_netsim.Network.geometric_sweep ~points:8
      ~from_net:Coign_netsim.Network.isdn_128 ~to_net:Coign_netsim.Network.san_1g ()
  in
  let sequential = Experiment.sweep ~session networks in
  let pool = Coign_util.Parallel.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Coign_util.Parallel.shutdown pool)
    (fun () ->
      let parallel = Experiment.sweep ~pool ~session networks in
      Alcotest.(check int) "point count" (List.length sequential) (List.length parallel);
      List.iter2
        (fun (s : Experiment.sweep_point) (p : Experiment.sweep_point) ->
          Alcotest.(check string) "network" s.Experiment.sw_network.Coign_netsim.Network.net_name
            p.Experiment.sw_network.Coign_netsim.Network.net_name;
          Alcotest.(check int) "server classifications" s.Experiment.sw_server_classifications
            p.Experiment.sw_server_classifications;
          Alcotest.(check int) "cut_ns" s.Experiment.sw_cut_ns p.Experiment.sw_cut_ns;
          Alcotest.(check int64) "predicted bits"
            (Int64.bits_of_float s.Experiment.sw_predicted_comm_us)
            (Int64.bits_of_float p.Experiment.sw_predicted_comm_us))
        sequential parallel)

(* --- Classifier evaluation ------------------------------------------ *)

let rows2 = lazy (Classifier_eval.table2 Octarine.app)

let find kind = List.find (fun r -> r.Classifier_eval.cr_kind = kind) (Lazy.force rows2)

let test_table2_incremental_straw_man () =
  let r = find Classifier.Incremental in
  Alcotest.(check (float 1e-9)) "one instance per classification" 1.
    r.Classifier_eval.cr_avg_instances;
  Alcotest.(check bool) "all bigone instances new" true (r.Classifier_eval.cr_new_in_bigone > 0);
  Alcotest.(check bool) "worst correlation" true
    (List.for_all
       (fun other -> other.Classifier_eval.cr_avg_correlation >= r.Classifier_eval.cr_avg_correlation)
       (Lazy.force rows2))

let test_table2_context_classifiers_stable () =
  List.iter
    (fun kind ->
      let r = find kind in
      Alcotest.(check int)
        (Classifier.kind_name kind ^ " no new classifications in bigone")
        0 r.Classifier_eval.cr_new_in_bigone)
    [ Classifier.Pcb; Classifier.St; Classifier.Stcb; Classifier.Ifcb; Classifier.Epcb;
      Classifier.Ib ]

let test_table2_granularity_ordering () =
  (* IFCB identifies the most classifications; ST the fewest among the
     context-based classifiers (paper Table 2 shape). *)
  let n kind = (find kind).Classifier_eval.cr_profiled_classifications in
  Alcotest.(check bool) "ifcb >= epcb" true (n Classifier.Ifcb >= n Classifier.Epcb);
  Alcotest.(check bool) "epcb >= stcb" true (n Classifier.Epcb >= n Classifier.Stcb);
  Alcotest.(check bool) "stcb >= ib" true (n Classifier.Stcb >= n Classifier.Ib);
  Alcotest.(check bool) "ib >= st" true (n Classifier.Ib >= n Classifier.St);
  Alcotest.(check bool) "ifcb >= pcb" true (n Classifier.Ifcb >= n Classifier.Pcb)

let test_table2_accuracy_ordering () =
  let c kind = (find kind).Classifier_eval.cr_avg_correlation in
  Alcotest.(check bool) "ifcb beats st" true (c Classifier.Ifcb > c Classifier.St);
  Alcotest.(check bool) "all context classifiers decent" true
    (List.for_all
       (fun k -> c k > 0.5)
       [ Classifier.Pcb; Classifier.St; Classifier.Stcb; Classifier.Ifcb; Classifier.Epcb;
         Classifier.Ib ])

let test_table3_depth_monotone () =
  let rows = Classifier_eval.table3 ~depths:[ 1; 4 ] Octarine.app in
  match rows with
  | [ d1; d4; full ] ->
      Alcotest.(check bool) "classifications grow with depth" true
        (d1.Classifier_eval.cr_profiled_classifications
        <= d4.Classifier_eval.cr_profiled_classifications);
      Alcotest.(check bool) "deep saturates to full" true
        (d4.Classifier_eval.cr_profiled_classifications
        <= full.Classifier_eval.cr_profiled_classifications);
      Alcotest.(check bool) "correlation grows with depth" true
        (d1.Classifier_eval.cr_avg_correlation <= d4.Classifier_eval.cr_avg_correlation +. 1e-9)
  | _ -> Alcotest.fail "expected three rows"

(* --- Overhead -------------------------------------------------------- *)

let test_overhead_shape () =
  (* Wall-clock comparisons are noisy at sub-millisecond scale; use the
     suite's largest scenario and generous bounds. *)
  let app, sc = Suite.find_scenario "o_oldwp7" in
  let r = Overhead.measure ~repeats:3 app sc in
  Alcotest.(check bool) "calls counted" true (r.Overhead.intercepted_calls > 1_000);
  Alcotest.(check bool) "profiling slower than bare" true
    (r.Overhead.profiling_s >= r.Overhead.bare_s);
  Alcotest.(check bool) "distribution not dramatically heavier than profiling" true
    (r.Overhead.distributed_us_per_call <= (r.Overhead.profiling_us_per_call *. 2.) +. 1.)

let suite =
  [
    Alcotest.test_case "experiment row basics" `Quick test_row_basics;
    Alcotest.test_case "benefits moves caches" `Quick test_benefits_moves_caches;
    Alcotest.test_case "photodraw property sets server" `Quick
      test_photodraw_property_sets_server;
    Alcotest.test_case "octarine reader server" `Quick test_octarine_reader_server;
    Alcotest.test_case "placements by class consistent" `Quick
      test_placements_by_class_consistent;
    Alcotest.test_case "across networks monotone" `Quick test_across_networks_monotone_comm;
    Alcotest.test_case "run_suite parallel deterministic" `Quick
      test_run_suite_parallel_deterministic;
    Alcotest.test_case "sweep parallel deterministic" `Quick test_sweep_parallel_deterministic;
    Alcotest.test_case "table2 incremental straw man" `Slow test_table2_incremental_straw_man;
    Alcotest.test_case "table2 context classifiers stable" `Slow
      test_table2_context_classifiers_stable;
    Alcotest.test_case "table2 granularity ordering" `Slow test_table2_granularity_ordering;
    Alcotest.test_case "table2 accuracy ordering" `Slow test_table2_accuracy_ordering;
    Alcotest.test_case "table3 depth monotone" `Slow test_table3_depth_monotone;
    Alcotest.test_case "overhead shape" `Quick test_overhead_shape;
  ]
