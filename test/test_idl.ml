open Coign_idl

let qtest = QCheck_alcotest.to_alcotest

(* Random IDL types with conforming values, for the compiled-descriptor
   equivalence property. *)
let rec gen_type depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneofl
      [ Idl_type.Int32; Idl_type.Int64; Idl_type.Double; Idl_type.Bool; Idl_type.Str;
        Idl_type.Blob; Idl_type.Iface "IAny" ]
  else
    frequency
      [
        (3, oneofl [ Idl_type.Int32; Idl_type.Str; Idl_type.Blob; Idl_type.Iface "IAny" ]);
        (1, map (fun t -> Idl_type.Array t) (gen_type (depth - 1)));
        (1, map (fun t -> Idl_type.Ptr t) (gen_type (depth - 1)));
        ( 1,
          map
            (fun ts -> Idl_type.Struct (List.mapi (fun i t -> (Printf.sprintf "f%d" i, t)) ts))
            (list_size (int_range 1 3) (gen_type (depth - 1))) );
      ]

let rec gen_value ty =
  let open QCheck.Gen in
  match ty with
  | Idl_type.Void -> return Value.Unit
  | Idl_type.Int32 | Idl_type.Int64 -> map (fun i -> Value.Int i) small_int
  | Idl_type.Double -> map (fun f -> Value.Float f) (float_bound_inclusive 1e6)
  | Idl_type.Bool -> map (fun b -> Value.Bool b) bool
  | Idl_type.Str -> map (fun s -> Value.Str s) (string_size (int_range 0 20))
  | Idl_type.Blob -> map (fun n -> Value.Blob n) (int_range 0 10_000)
  | Idl_type.Array elt -> map (fun vs -> Value.Arr vs) (list_size (int_range 0 4) (gen_value elt))
  | Idl_type.Struct fields ->
      let rec go = function
        | [] -> return []
        | (name, t) :: rest ->
            gen_value t >>= fun v ->
            go rest >>= fun vs -> return ((name, v) :: vs)
      in
      map (fun fvs -> Value.Struct fvs) (go fields)
  | Idl_type.Ptr pointee ->
      frequency [ (1, return Value.Null); (3, map (fun v -> Value.Ref v) (gen_value pointee)) ]
  | Idl_type.Iface _ -> map (fun h -> Value.Iface_ref h) (int_range 0 100)
  | Idl_type.Opaque tag -> return (Value.Opaque_handle tag)

let gen_typed_value =
  QCheck.Gen.(gen_type 3 >>= fun ty -> gen_value ty >>= fun v -> return (ty, v))

let arb_typed_value =
  QCheck.make
    ~print:(fun (ty, v) -> Format.asprintf "%a / %a" Idl_type.pp ty Value.pp v)
    gen_typed_value

(* --- Idl_type ------------------------------------------------------ *)

let test_remotable () =
  Alcotest.(check bool) "scalar" true (Idl_type.remotable Idl_type.Int32);
  Alcotest.(check bool) "opaque" false (Idl_type.remotable (Idl_type.Opaque "HDC"));
  Alcotest.(check bool) "nested opaque" false
    (Idl_type.remotable (Idl_type.Struct [ ("a", Idl_type.Int32); ("b", Idl_type.Opaque "X") ]));
  Alcotest.(check bool) "iface ok" true (Idl_type.remotable (Idl_type.Iface "IFoo"));
  Alcotest.(check bool) "array of ptr" true
    (Idl_type.remotable (Idl_type.Array (Idl_type.Ptr Idl_type.Str)))

let test_method_remotable () =
  let m = Idl_type.method_ "f" [ Idl_type.param "x" (Idl_type.Opaque "SHM") ] in
  Alcotest.(check bool) "opaque param" false (Idl_type.method_remotable m);
  let m2 = Idl_type.method_ ~ret:Idl_type.Blob "g" [ Idl_type.param "x" Idl_type.Int32 ] in
  Alcotest.(check bool) "clean" true (Idl_type.method_remotable m2)

let test_contains_iface () =
  Alcotest.(check bool) "direct" true (Idl_type.contains_iface (Idl_type.Iface "I"));
  Alcotest.(check bool) "nested" true
    (Idl_type.contains_iface (Idl_type.Ptr (Idl_type.Array (Idl_type.Iface "I"))));
  Alcotest.(check bool) "absent" false
    (Idl_type.contains_iface (Idl_type.Struct [ ("a", Idl_type.Blob) ]))

(* --- Value --------------------------------------------------------- *)

let test_conforms () =
  Alcotest.(check bool) "int32" true (Value.conforms Idl_type.Int32 (Value.Int 5));
  Alcotest.(check bool) "null ptr" true (Value.conforms (Idl_type.Ptr Idl_type.Str) Value.Null);
  Alcotest.(check bool) "null iface" true (Value.conforms (Idl_type.Iface "I") Value.Null);
  Alcotest.(check bool) "mismatch" false (Value.conforms Idl_type.Str (Value.Int 1));
  Alcotest.(check bool) "struct field order" false
    (Value.conforms
       (Idl_type.Struct [ ("a", Idl_type.Int32); ("b", Idl_type.Str) ])
       (Value.Struct [ ("b", Value.Str "x"); ("a", Value.Int 1) ]))

let prop_generated_values_conform =
  QCheck.Test.make ~name:"generated values conform to their types" ~count:500 arb_typed_value
    (fun (ty, v) -> Value.conforms ty v)

let test_iface_handles () =
  let v =
    Value.Struct
      [ ("a", Value.Iface_ref 3); ("b", Value.Arr [ Value.Iface_ref 7; Value.Int 1 ]);
        ("c", Value.Ref (Value.Iface_ref 9)) ]
  in
  Alcotest.(check (list int)) "handles in order" [ 3; 7; 9 ] (Value.iface_handles v)

let test_map_iface_handles () =
  let v = Value.Arr [ Value.Iface_ref 1; Value.Str "s"; Value.Ref (Value.Iface_ref 2) ] in
  let v' = Value.map_iface_handles (fun h -> h * 10) v in
  Alcotest.(check (list int)) "mapped" [ 10; 20 ] (Value.iface_handles v')

(* --- Marshal_size -------------------------------------------------- *)

let size_exn ty v =
  match Marshal_size.value_size ty v with
  | Ok n -> n
  | Error e -> Alcotest.failf "unexpected error: %a" Marshal_size.pp_error e

let test_scalar_sizes () =
  Alcotest.(check int) "int32" 4 (size_exn Idl_type.Int32 (Value.Int 1));
  Alcotest.(check int) "int64" 8 (size_exn Idl_type.Int64 (Value.Int 1));
  Alcotest.(check int) "double" 8 (size_exn Idl_type.Double (Value.Float 1.));
  Alcotest.(check int) "bool" 4 (size_exn Idl_type.Bool (Value.Bool true));
  Alcotest.(check int) "str" (4 + 5) (size_exn Idl_type.Str (Value.Str "hello"));
  Alcotest.(check int) "blob" (4 + 100) (size_exn Idl_type.Blob (Value.Blob 100));
  Alcotest.(check int) "null" 4 (size_exn (Idl_type.Ptr Idl_type.Str) Value.Null);
  Alcotest.(check int) "objref" Marshal_size.objref_size
    (size_exn (Idl_type.Iface "I") (Value.Iface_ref 1))

let test_deep_copy_compositional () =
  let ty = Idl_type.Struct [ ("a", Idl_type.Str); ("b", Idl_type.Array Idl_type.Int32) ] in
  let v = Value.Struct [ ("a", Value.Str "xy"); ("b", Value.Arr [ Value.Int 1; Value.Int 2 ]) ] in
  (* str: 4+2; array: 4 + 2*4 *)
  Alcotest.(check int) "struct" (6 + 12) (size_exn ty v)

let test_opaque_not_remotable () =
  match Marshal_size.value_size (Idl_type.Opaque "HDC") (Value.Opaque_handle "HDC") with
  | Error (Marshal_size.Not_remotable "HDC") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Not_remotable"

let test_call_sizes_directions () =
  let msig =
    Idl_type.method_ ~ret:Idl_type.Blob "m"
      [
        Idl_type.param "inp" Idl_type.Blob;
        Idl_type.param ~dir:Idl_type.Out "outp" Idl_type.Blob;
        Idl_type.param ~dir:Idl_type.In_out "both" Idl_type.Blob;
      ]
  in
  let args = [ Value.Blob 100; Value.Blob 200; Value.Blob 300 ] in
  match Marshal_size.call msig ~args ~result:(Value.Blob 50) with
  | Error e -> Alcotest.failf "error: %a" Marshal_size.pp_error e
  | Ok s ->
      Alcotest.(check int) "request"
        (Marshal_size.scalar_overhead + 104 + 304)
        s.Marshal_size.request;
      Alcotest.(check int) "reply"
        (Marshal_size.scalar_overhead + 204 + 304 + 54)
        s.Marshal_size.reply;
      Alcotest.(check int) "total" (s.Marshal_size.request + s.Marshal_size.reply)
        (Marshal_size.total s)

let test_call_request_only () =
  let msig =
    Idl_type.method_ "m"
      [ Idl_type.param "a" Idl_type.Blob; Idl_type.param ~dir:Idl_type.Out "b" Idl_type.Blob ]
  in
  match Marshal_size.call_request_only msig ~args:[ Value.Blob 10; Value.Blob 999 ] with
  | Ok n -> Alcotest.(check int) "request only" (Marshal_size.scalar_overhead + 14) n
  | Error e -> Alcotest.failf "error: %a" Marshal_size.pp_error e

let test_call_arity_mismatch () =
  let msig = Idl_type.method_ "m" [ Idl_type.param "a" Idl_type.Int32 ] in
  match Marshal_size.call msig ~args:[] ~result:Value.Unit with
  | Error (Marshal_size.Type_mismatch _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected arity mismatch"

(* --- Midl ---------------------------------------------------------- *)

let prop_compiled_size_equals_interpreted =
  QCheck.Test.make ~name:"compiled descriptor computes the same size" ~count:500 arb_typed_value
    (fun (ty, v) ->
      let proc = Midl.compile ty in
      Midl.size_with proc v = Marshal_size.value_size ty v)

let prop_iface_walk_equals_handles =
  QCheck.Test.make ~name:"compiled iface walk finds the same handles" ~count:500 arb_typed_value
    (fun (ty, v) ->
      let proc = Midl.compile_iface_walk ty in
      Midl.handles_with proc v = Value.iface_handles v)

let test_iface_walk_trivial () =
  Alcotest.(check bool) "blob trivial" true
    (Midl.iface_walk_trivial (Midl.compile_iface_walk Idl_type.Blob));
  Alcotest.(check bool) "iface not trivial" false
    (Midl.iface_walk_trivial (Midl.compile_iface_walk (Idl_type.Iface "I")))

let test_method_procs_match_marshal () =
  let msig =
    Idl_type.method_ ~ret:(Idl_type.Iface "IOut") "m"
      [
        Idl_type.param "a" Idl_type.Str;
        Idl_type.param ~dir:Idl_type.In_out "b" (Idl_type.Ptr Idl_type.Blob);
      ]
  in
  let procs = Midl.compile_method msig in
  let args = [ Value.Str "abc"; Value.Ref (Value.Blob 64) ] in
  let result = Value.Iface_ref 4 in
  let compiled = Midl.method_call_size procs ~args ~result in
  let interpreted = Marshal_size.call msig ~args ~result in
  Alcotest.(check bool) "equal" true (compiled = interpreted)

let test_method_procs_remotable_flag () =
  let dirty = Idl_type.method_ "m" [ Idl_type.param "x" (Idl_type.Opaque "SHM") ] in
  Alcotest.(check bool) "non-remotable" false (Midl.compile_method dirty).Midl.remotable

(* --- Zero-allocation size walks ------------------------------------ *)

let prop_exn_walks_agree =
  (* Pair the type of one generated value with the value of another, so
     the walks hit both the success path and every mismatch arm. *)
  QCheck.Test.make ~name:"exn size walks agree with result walks" ~count:500
    (QCheck.pair arb_typed_value arb_typed_value)
    (fun ((ty, _), (_, v)) ->
      let proc = Midl.compile ty in
      let direct =
        match Marshal_size.value_size_exn ty v with
        | n -> Ok n
        | exception Marshal_size.Err e -> Error e
      in
      let compiled =
        match Midl.size_with_exn proc v with
        | n -> Ok n
        | exception Marshal_size.Err e -> Error e
      in
      direct = Marshal_size.value_size ty v
      && compiled = Midl.size_with proc v
      (* Compiled and interpreted agree on success/failure, and on the
         size when both succeed (error payloads differ by design: the
         compiled walk reports the proc's root type). *)
      && Result.is_ok direct = Result.is_ok compiled
      && match (direct, compiled) with Ok a, Ok b -> a = b | _ -> true)

let test_size_walk_zero_alloc () =
  let ty =
    Idl_type.Array
      (Idl_type.Struct
         [ ("x", Idl_type.Str); ("y", Idl_type.Int32);
           ("p", Idl_type.Ptr Idl_type.Blob); ("i", Idl_type.Iface "IPeer") ])
  in
  let v =
    Value.Arr
      (List.init 8 (fun i ->
           Value.Struct
             [ ("x", Value.Str (String.make 16 'x')); ("y", Value.Int i);
               ("p", Value.Ref (Value.Blob 128)); ("i", Value.Iface_ref i) ]))
  in
  let proc = Midl.compile ty in
  let expected =
    match Marshal_size.value_size ty v with Ok n -> n | Error _ -> -1 in
  (* Warm up, then measure: 10k walks of a nested value must not grow
     the minor heap beyond the noise of reading the GC counters. *)
  ignore (Marshal_size.value_size_exn ty v);
  ignore (Midl.size_with_exn proc v);
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    assert (Marshal_size.value_size_exn ty v = expected);
    assert (Midl.size_with_exn proc v = expected)
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "10k size walks allocated %.0f minor words" delta)
    true (delta < 64.)

let suite =
  [
    Alcotest.test_case "remotable" `Quick test_remotable;
    Alcotest.test_case "method remotable" `Quick test_method_remotable;
    Alcotest.test_case "contains iface" `Quick test_contains_iface;
    Alcotest.test_case "conforms" `Quick test_conforms;
    qtest prop_generated_values_conform;
    Alcotest.test_case "iface handles" `Quick test_iface_handles;
    Alcotest.test_case "map iface handles" `Quick test_map_iface_handles;
    Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
    Alcotest.test_case "deep copy compositional" `Quick test_deep_copy_compositional;
    Alcotest.test_case "opaque not remotable" `Quick test_opaque_not_remotable;
    Alcotest.test_case "call size directions" `Quick test_call_sizes_directions;
    Alcotest.test_case "call request only" `Quick test_call_request_only;
    Alcotest.test_case "call arity mismatch" `Quick test_call_arity_mismatch;
    qtest prop_compiled_size_equals_interpreted;
    qtest prop_iface_walk_equals_handles;
    Alcotest.test_case "iface walk trivial" `Quick test_iface_walk_trivial;
    Alcotest.test_case "method procs match marshal" `Quick test_method_procs_match_marshal;
    Alcotest.test_case "method procs remotable flag" `Quick test_method_procs_remotable_flag;
    qtest prop_exn_walks_agree;
    Alcotest.test_case "size walks allocation-free" `Quick test_size_walk_zero_alloc;
  ]
