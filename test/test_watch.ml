(* Online re-partitioning: the observation window's decay arithmetic,
   the streaming sample tap, scaled re-pricing through the analysis
   session, the watch's zero-cost-when-quiet guarantee, and the
   closed-loop Watchsim verdict — detection, live re-cut, convergence
   to the offline oracle, and byte-identical reports across domains. *)

open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps
module Tap = Coign_obs.Tap
module Window = Coign_core.Window

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

(* --- Window decay (hand-computed, power-of-two half-life) ----------- *)

let test_window_decay_hand_computed () =
  let w = Window.create ~half_life_us:100. ~pairs:[| (0, 1); (1, 2) |] in
  Window.observe w ~at_us:0. ~caller:0 ~callee:1 ~bytes:8;
  (* One half-life later the weight is exactly 1/2 (2^(-dt/h) is exact
     at powers of two). *)
  check_bits "one half-life" 0.5 (Window.counts_at w ~now_us:100.).(0);
  check_bits "two half-lives" 0.25 (Window.counts_at w ~now_us:200.).(0);
  check_bits "bytes decay too" 2. (Window.bytes_at w ~now_us:200.).(0);
  (* A second observation folds in on top of the decayed first. *)
  Window.observe w ~at_us:100. ~caller:1 ~callee:0 ~bytes:0;
  check_bits "1/2 + 1 at the bump" 1.5 (Window.counts_at w ~now_us:100.).(0);
  check_bits "untouched slot stays zero" 0. (Window.counts_at w ~now_us:100.).(1);
  Alcotest.(check int) "observations counted" 2 (Window.observed w);
  Alcotest.(check int) "only the sized one counted" 1 (Window.byte_observed w);
  (* Reads are pure: asking at a later time does not mutate. *)
  let before = (Window.counts_at w ~now_us:100.).(0) in
  ignore (Window.counts_at w ~now_us:1_000.);
  check_bits "snapshot did not mutate" before (Window.counts_at w ~now_us:100.).(0)

let test_window_extras_and_signature () =
  let w = Window.create ~half_life_us:64. ~pairs:[| (0, 1) |] in
  Window.observe w ~at_us:0. ~caller:0 ~callee:1 ~bytes:10;
  (* A pair outside the creation-time set accumulates on the side and
     surfaces in the signature and totals. *)
  Window.observe w ~at_us:0. ~caller:5 ~callee:3 ~bytes:30;
  Alcotest.(check int) "one extra pair" 1 (Window.extra_pairs w);
  check_bits "total mass" 2. (Window.total_at w ~now_us:0.);
  check_bits "byte total" 40. (Window.byte_total_at w ~now_us:0.);
  let entries = Drift.entries (Window.signature_at w ~now_us:0.) in
  Alcotest.(check int) "both pairs in signature" 2 (List.length entries);
  Alcotest.(check bool) "extra normalized to (min,max)" true
    (List.mem_assoc (3, 5) entries);
  (* The byte signature weights the same pairs by bytes. *)
  let bytes = Drift.entries (Window.byte_signature_at w ~now_us:0.) in
  check_bits "slot bytes" 10. (List.assoc (0, 1) bytes);
  check_bits "extra bytes" 30. (List.assoc (3, 5) bytes)

let test_window_rejects_bad_args () =
  Alcotest.(check bool) "non-positive half-life" true
    (try
       ignore (Window.create ~half_life_us:0. ~pairs:[||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate pair (unordered)" true
    (try
       ignore (Window.create ~half_life_us:1. ~pairs:[| (0, 1); (1, 0) |]);
       false
     with Invalid_argument _ -> true)

(* --- Tap ------------------------------------------------------------ *)

let offer_n tap n =
  for i = 1 to n do
    Tap.offer tap ~at_us:(float_of_int i) ~kind:Tap.Call ~caller:0 ~callee:1 ~bytes:i
  done

let test_tap_keep_everything () =
  let sink, read = Tap.collector () in
  let tap = Tap.create sink in
  offer_n tap 5;
  Alcotest.(check int) "offered" 5 (Tap.offered tap);
  Alcotest.(check int) "sampled" 5 (Tap.sampled tap);
  let obs = read () in
  Alcotest.(check int) "all collected" 5 (List.length obs);
  Alcotest.(check bool) "oldest first" true
    (List.map (fun o -> o.Tap.ob_bytes) obs = [ 1; 2; 3; 4; 5 ])

let test_tap_sampling_deterministic () =
  let run () =
    let sink, read = Tap.collector () in
    let tap = Tap.create ~sample_every:4 ~seed:7L sink in
    offer_n tap 400;
    (Tap.offered tap, Tap.sampled tap, List.map (fun o -> o.Tap.ob_bytes) (read ()))
  in
  let o1, s1, obs1 = run () in
  let o2, s2, obs2 = run () in
  Alcotest.(check int) "offered counted" 400 o1;
  Alcotest.(check bool) "roughly 1 in 4" true (s1 > 60 && s1 < 140);
  Alcotest.(check int) "same seed, same count" s1 s2;
  Alcotest.(check bool) "same seed, same picks" true (obs1 = obs2);
  Alcotest.(check int) "offered equal" o1 o2;
  Alcotest.(check int) "sink saw what sampled counted" s1 (List.length obs1)

let test_tap_accept_emit_split () =
  (* accept defers the expensive measurement; an accepted observation
     reaches the sink via emit exactly as offer would deliver it. *)
  let sink, read = Tap.collector () in
  let tap = Tap.create ~sample_every:2 ~seed:3L sink in
  let measured = ref 0 in
  for i = 1 to 100 do
    if Tap.accept tap then begin
      incr measured;
      Tap.emit tap
        { Tap.ob_at_us = float_of_int i; ob_kind = Tap.Create; ob_caller = -1;
          ob_callee = 0; ob_bytes = i }
    end
  done;
  Alcotest.(check int) "offered" 100 (Tap.offered tap);
  Alcotest.(check int) "measurement only for accepted" !measured (Tap.sampled tap);
  Alcotest.(check int) "sink matches" !measured (List.length (read ()))

(* --- Scaled re-pricing through the session -------------------------- *)

let octarine_staged () =
  let app = Suite.find_app "octarine" in
  let image = Adps.instrument app.App.app_image in
  let profiled, _ =
    Adps.profile ~image ~registry:app.App.app_registry
      (App.scenario app "o_oldwp0").App.sc_run
  in
  let session = Adps.analysis_session profiled in
  let net = Net_profiler.exact Network.ethernet_10 in
  (app, profiled, session, net)

let test_ones_scale_is_bit_identical () =
  let _, _, session, net = octarine_staged () in
  let n = Icc_graph.pair_count (Analysis.Session.graph session) in
  let ones = { Icc_graph.sc_messages = Array.make n 1.; sc_bytes = Array.make n 1. } in
  let plain = Analysis.Session.solve session ~net in
  let scaled = Analysis.Session.solve session ~scale:ones ~net in
  Alcotest.(check bool) "same placement" true
    (plain.Analysis.placement = scaled.Analysis.placement);
  check_bits "same predicted comm" plain.Analysis.predicted_comm_us
    scaled.Analysis.predicted_comm_us

let test_scale_length_checked () =
  let _, _, session, net = octarine_staged () in
  let bad = { Icc_graph.sc_messages = [| 1. |]; sc_bytes = [| 1. |] } in
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Analysis.Session.solve session ~scale:bad ~net);
       false
     with Invalid_argument _ -> true)

let test_pair_bytes_totals () =
  let _, _, session, _ = octarine_staged () in
  let graph = Analysis.Session.graph session in
  let bytes = Icc_graph.pair_bytes graph in
  Alcotest.(check int) "one cell per pair" (Icc_graph.pair_count graph)
    (Array.length bytes);
  Alcotest.(check bool) "some pair carries bytes" true
    (Array.exists (fun b -> b > 0.) bytes);
  Array.iter
    (fun b -> Alcotest.(check bool) "finite and non-negative" true (Float.is_finite b && b >= 0.))
    bytes

(* --- The watch in a deployed RTE ------------------------------------ *)

let run_deployed ?watch ?loggers (app, profiled, session, net) ids =
  let dist_image, _ = Adps.analyze_with ~session ~image:profiled ~net () in
  let classifier, dist = Option.get (Adps.load_distribution dist_image) in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let wc =
    Option.map
      (fun (threshold, tap) ->
        Rte.watch ~threshold ~check_every:64 ~min_dwell_us:0. ~min_window:16.
          ~half_life_us:750_000. ~sample_every:4 ?tap ~net
          (Analysis.Session.copy session))
      watch
  in
  let rte =
    Rte.install_distributed ?loggers ~classifier
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_classification dist;
          dc_network = Network.ethernet_10;
          dc_jitter = 0.;
          dc_seed = 0x5EEDL;
          dc_faults = None;
          dc_retry = Fault.default_retry;
          dc_resilience = None;
          dc_fleet = None;
          dc_watch = wc;
        }
      ctx
  in
  List.iter (fun id -> (App.scenario app id).App.sc_run ctx) ids;
  Rte.uninstall rte;
  rte

let test_quiet_watch_leaves_run_bit_identical () =
  (* threshold 0 can never fire (similarity is in [0,1]); the watched
     run must cost exactly what the unwatched one does — observation,
     sampling, and drift checks never touch the virtual clock. *)
  let staged = octarine_staged () in
  let ids = [ "o_oldwp0"; "o_oldwp7" ] in
  let bare = run_deployed staged ids in
  let quiet = run_deployed ~watch:(0., None) staged ids in
  check_bits "comm bits identical" (Rte.comm_us bare) (Rte.comm_us quiet);
  Alcotest.(check int) "remote calls identical" (Rte.remote_calls bare)
    (Rte.remote_calls quiet);
  Alcotest.(check int) "remote bytes identical" (Rte.remote_bytes bare)
    (Rte.remote_bytes quiet);
  let checks =
    List.length (Rte.watch_timeline quiet)
  in
  Alcotest.(check bool) "the watch did check" true (checks > 0);
  Alcotest.(check bool) "and never acted" true
    (List.for_all
       (fun k -> k.Rte.wk_action = Rte.W_steady)
       (Rte.watch_timeline quiet))

let test_attached_tap_streams_without_perturbing () =
  let staged = octarine_staged () in
  let ids = [ "o_oldwp0" ] in
  let detached = run_deployed ~watch:(0., None) staged ids in
  let sink, read = Tap.collector () in
  let tapped = run_deployed ~watch:(0., Some sink) staged ids in
  check_bits "comm bits identical" (Rte.comm_us detached) (Rte.comm_us tapped);
  let obs = read () in
  let offered, sampled = Option.get (Rte.watch_tap_counts tapped) in
  Alcotest.(check bool) "observations streamed" true (obs <> []);
  Alcotest.(check int) "sink saw every sampled observation" sampled (List.length obs);
  Alcotest.(check bool) "sampling is a strict subsample" true (sampled < offered);
  List.iter
    (fun o ->
      Alcotest.(check bool) "bytes measured for sampled calls" true (o.Tap.ob_bytes >= 0);
      Alcotest.(check bool) "virtual timestamps non-negative" true (o.Tap.ob_at_us >= 0.))
    obs;
  Alcotest.(check bool) "timestamps non-decreasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) o -> (ok && o.Tap.ob_at_us >= prev, o.Tap.ob_at_us))
          (true, 0.) obs))

let test_watch_emits_drift_events () =
  (* A usage shift under an eager watch must surface as loggable
     Drift_detected / Repartitioned events with consistent payloads. *)
  let staged = octarine_staged () in
  let recorder, events = Logger.event_recorder () in
  let _ =
    run_deployed ~watch:(0.90, None) ~loggers:[ recorder ] staged
      [ "o_oldwp0"; "o_oldwp7"; "o_oldwp7"; "o_oldwp7" ]
  in
  let evs = events () in
  let detections =
    List.filter_map
      (function
        | Event.Drift_detected { similarity; threshold; window_pairs; _ } ->
            Some (similarity, threshold, window_pairs)
        | _ -> None)
      evs
  in
  let recuts =
    List.filter_map
      (function
        | Event.Repartitioned { at_us; from_servers; to_servers; migrated; _ } ->
            Some (at_us, from_servers, to_servers, migrated)
        | _ -> None)
      evs
  in
  Alcotest.(check bool) "drift detected" true (detections <> []);
  Alcotest.(check bool) "placement switched" true (recuts <> []);
  List.iter
    (fun (similarity, threshold, window_pairs) ->
      Alcotest.(check bool) "similarity below threshold" true (similarity < threshold);
      Alcotest.(check bool) "window pairs positive" true (window_pairs > 0))
    detections;
  List.iter
    (fun (at_us, from_servers, to_servers, migrated) ->
      Alcotest.(check bool) "timestamped on the virtual clock" true (at_us >= 0);
      Alcotest.(check bool) "server counts sane" true (from_servers >= 0 && to_servers >= 0);
      Alcotest.(check bool) "migration count sane" true (migrated >= 0))
    recuts

(* --- Watchsim: the closed loop -------------------------------------- *)

let watchsim_shift ?pool () =
  let app = Suite.find_app "octarine" in
  let image = Adps.instrument app.App.app_image in
  Coign_sim.Watchsim.run ?pool ~profile_mix:[ "o_oldwp0" ]
    ~phases:
      [
        [ "o_oldwp0" ];
        [ "o_oldwp7"; "o_oldwp7"; "o_oldwp7" ];
        [ "o_oldwp7"; "o_oldwp7"; "o_oldwp7" ];
      ]
    ~image ~network:Network.ethernet_10 ()

let test_watchsim_converges_to_oracle () =
  let r = watchsim_shift () in
  let open Coign_sim.Watchsim in
  Alcotest.(check bool) "drift detected" true (r.w_drift_detections > 0);
  Alcotest.(check bool) "repartitioned at least once" true (r.w_repartitions > 0);
  Alcotest.(check bool) "instances migrated live" true (r.w_migrations > 0);
  Alcotest.(check bool) "converged to the oracle cut" true r.w_converged;
  Alcotest.(check bool) "steady-state comm reduced" true
    (r.w_steady_watched_us < r.w_steady_stale_us);
  (* The first (matching-usage) phase must not be disturbed. *)
  (match r.w_phase_stats with
  | first :: _ ->
      check_bits "phase 1 untouched" first.ph_stale_comm_us first.ph_watched_comm_us
  | [] -> Alcotest.fail "no phases");
  Alcotest.(check bool) "tap sampled a strict subset" true
    (r.w_tap_sampled > 0 && r.w_tap_sampled < r.w_tap_offered)

let test_watchsim_jobs_deterministic () =
  let sequential = watchsim_shift () in
  let pool = Parallel.create ~domains:3 () in
  let parallel = watchsim_shift ~pool () in
  Parallel.shutdown pool;
  Alcotest.(check string) "byte-identical across domains"
    (Jsonu.to_string (Coign_sim.Watchsim.to_json sequential))
    (Jsonu.to_string (Coign_sim.Watchsim.to_json parallel))

let test_watchsim_json_parses () =
  let r = watchsim_shift () in
  let j = Jsonu.parse_exn (Jsonu.to_string (Coign_sim.Watchsim.to_json r)) in
  let member k = Jsonu.member k j in
  Alcotest.(check bool) "converged present" true (member "converged" <> None);
  Alcotest.(check bool) "timeline present" true (member "timeline" <> None);
  Alcotest.(check bool) "phases present" true (member "phases" <> None)

let suite =
  [
    Alcotest.test_case "window decay hand computed" `Quick test_window_decay_hand_computed;
    Alcotest.test_case "window extras and signatures" `Quick
      test_window_extras_and_signature;
    Alcotest.test_case "window rejects bad args" `Quick test_window_rejects_bad_args;
    Alcotest.test_case "tap keeps everything by default" `Quick test_tap_keep_everything;
    Alcotest.test_case "tap sampling deterministic" `Quick test_tap_sampling_deterministic;
    Alcotest.test_case "tap accept/emit split" `Quick test_tap_accept_emit_split;
    Alcotest.test_case "ones scale bit-identical to unscaled" `Quick
      test_ones_scale_is_bit_identical;
    Alcotest.test_case "scale length checked" `Quick test_scale_length_checked;
    Alcotest.test_case "pair bytes totals" `Quick test_pair_bytes_totals;
    Alcotest.test_case "quiet watch leaves run bit-identical" `Quick
      test_quiet_watch_leaves_run_bit_identical;
    Alcotest.test_case "attached tap streams without perturbing" `Quick
      test_attached_tap_streams_without_perturbing;
    Alcotest.test_case "watch emits drift events" `Quick test_watch_emits_drift_events;
    Alcotest.test_case "watchsim converges to oracle" `Quick
      test_watchsim_converges_to_oracle;
    Alcotest.test_case "watchsim jobs deterministic" `Quick
      test_watchsim_jobs_deterministic;
    Alcotest.test_case "watchsim json parses" `Quick test_watchsim_json_parses;
  ]
