open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps
open Coign_sim

let qtest = QCheck_alcotest.to_alcotest
let network = Network.ethernet_10
let bits = Int64.bits_of_float

(* One analyzed benefits image, built once and shared: loadsim never
   mutates it (every run decodes its own classifier). *)
let benefits_img =
  lazy
    (let app = Suite.find_app "benefits" in
     let image = Adps.instrument app.App.app_image in
     let image, _ =
       Adps.profile ~image ~registry:app.App.app_registry (App.scenario app "b_vueone").App.sc_run
     in
     let image, _ =
       Adps.profile ~image ~registry:app.App.app_registry (App.scenario app "b_addone").App.sc_run
     in
     let net = Net_profiler.profile (Prng.create 7L) network in
     fst (Adps.analyze ~image ~net ()))

(* --- Hand-computed queueing trace ----------------------------------- *)

(* A network chosen so every number below is an exact small integer:
   latency 10us, bandwidth 8 Mbps (so transmission is exactly 1 us per
   byte), protocol processing 100us per message. One op of (request
   100 B, reply 50 B) then costs:
     host service  = 100 + 100            = 200 us  (two messages' proc)
     link service  = (10 + 100) + (10+50) = 170 us
     unloaded comm = (100+10+100) + (100+10+50) = 370 us *)
let hand_net = Network.make ~name:"hand" ~latency_us:10. ~bandwidth_mbps:8. ~proc_us:100.

let test_hand_trace () =
  let cls = Loadsim.class_of_ops ~network:hand_net ~scenario:"h" [ (100, 50) ] in
  Alcotest.(check int64) "host svc" (bits 200.) (bits cls.Loadsim.cl_host_svc.(0));
  Alcotest.(check int64) "link svc" (bits 170.) (bits cls.Loadsim.cl_link_svc.(0));
  Alcotest.(check int64) "unloaded comm" (bits 370.) (bits cls.Loadsim.cl_comm_us);
  (* Three arrivals through the shared host-then-link tandem (M/D/1
     style, done by hand):
       s0 arrives   0: host    0->200, link  200->370   latency 370
       s1 arrives  50: host  200->400  (waits 150 behind s0),
                       link  400->570  (the link is already free at
                       370, so no link wait)         latency 520
       s2 arrives 1000: both queues idle again: host 1000->1200,
                       link 1200->1370                latency 370 *)
  let traces = ref [] in
  let totals =
    Loadsim.simulate
      ~sink:(fun t -> traces := t :: !traces)
      ~classes:[| cls |]
      ~arrivals:[| 0.; 50.; 1000. |]
      ~class_of:[| 0; 0; 0 |] ()
  in
  let expect =
    [
      (0, 0., 0., 200., 200., 370.);
      (1, 50., 200., 400., 400., 570.);
      (2, 1000., 1000., 1200., 1200., 1370.);
    ]
  in
  let got = List.rev !traces in
  Alcotest.(check int) "three ops traced" 3 (List.length got);
  List.iter2
    (fun (s, ready, hs, hf, ls, lf) (t : Loadsim.op_trace) ->
      Alcotest.(check int) "session" s t.Loadsim.ot_session;
      Alcotest.(check int64) "ready" (bits ready) (bits t.Loadsim.ot_ready_us);
      Alcotest.(check int64) "host start" (bits hs) (bits t.Loadsim.ot_host_start_us);
      Alcotest.(check int64) "host finish" (bits hf) (bits t.Loadsim.ot_host_finish_us);
      Alcotest.(check int64) "link start" (bits ls) (bits t.Loadsim.ot_link_start_us);
      Alcotest.(check int64) "finish" (bits lf) (bits t.Loadsim.ot_finish_us))
    expect got;
  Alcotest.(check int64) "latency s0" (bits 370.) (bits totals.Loadsim.st_latency_us.(0));
  Alcotest.(check int64) "latency s1" (bits 520.) (bits totals.Loadsim.st_latency_us.(1));
  Alcotest.(check int64) "latency s2" (bits 370.) (bits totals.Loadsim.st_latency_us.(2));
  Alcotest.(check int64) "host busy" (bits 600.) (bits totals.Loadsim.st_host_busy_us);
  Alcotest.(check int64) "link busy" (bits 510.) (bits totals.Loadsim.st_link_busy_us);
  Alcotest.(check int64) "last finish" (bits 1370.) (bits totals.Loadsim.st_last_finish_us);
  Alcotest.(check int) "op count" 3 totals.Loadsim.st_ops

let test_hand_trace_multi_op () =
  (* Two sessions of a two-op class; checks the continuation ring and
     the tie rule. By hand:
       s0@0:   op0 host   0->200, link 200->370; s0 ready again at 370
       s1@100: a *new* arrival at 100 beats s0's pending 370:
               op0 host 200->400, link 400->570; s1 pending at 570
       s0@370: op1 host 400->600, link 600->770   latency 770
       s1@570: op1 host 600->800, link 800->970   latency 870 *)
  let cls = Loadsim.class_of_ops ~network:hand_net ~scenario:"h2" [ (100, 50); (100, 50) ] in
  let order = ref [] in
  let totals =
    Loadsim.simulate
      ~sink:(fun t -> order := (t.Loadsim.ot_session, t.Loadsim.ot_op) :: !order)
      ~classes:[| cls |] ~arrivals:[| 0.; 100. |] ~class_of:[| 0; 0 |] ()
  in
  Alcotest.(check (list (pair int int)))
    "processing order interleaves"
    [ (0, 0); (1, 0); (0, 1); (1, 1) ]
    (List.rev !order);
  Alcotest.(check int64) "latency s0" (bits 770.) (bits totals.Loadsim.st_latency_us.(0));
  Alcotest.(check int64) "latency s1" (bits 870.) (bits totals.Loadsim.st_latency_us.(1));
  Alcotest.(check int64) "last finish" (bits 970.) (bits totals.Loadsim.st_last_finish_us)

(* --- Identity gate --------------------------------------------------- *)

(* With queueing off, a single session must reproduce the Replay
   communication estimate bit for bit — the same zero-cost argument as
   the PR 4/5 gates: the loadsim compile is a mirror of Replay's
   fault-free walk, and a fault-free Fault.call charges exactly
   request + reply. *)
let test_identity_gate () =
  let image = Lazy.force benefits_img in
  let app = Suite.find_app "benefits" in
  let sc = App.scenario app "b_vueone" in
  let classifier, dist = Option.get (Adps.load_distribution image) in
  let events =
    Replay.record_scenario ~registry:app.App.app_registry ~classifier sc.App.sc_run
  in
  let est = Replay.what_if ~events ~distribution:dist ~network () in
  Alcotest.(check bool) "estimate is non-trivial" true (est.Replay.re_comm_us > 0.);
  let r =
    Loadsim.run ~queueing:false ~sessions:1 ~scenarios:[ "b_vueone" ]
      ~arrival:(Loadsim.Poisson 50.) ~seed:3L ~image ~network ()
  in
  Alcotest.(check int64) "p50 == replay comm, bit-exact" (bits est.Replay.re_comm_us)
    (bits r.Loadsim.r_p50_us);
  Alcotest.(check int64) "p99 == replay comm, bit-exact" (bits est.Replay.re_comm_us)
    (bits r.Loadsim.r_p99_us);
  match r.Loadsim.r_classes with
  | [ c ] ->
      Alcotest.(check int64) "class comm == replay comm, bit-exact"
        (bits est.Replay.re_comm_us) (bits c.Loadsim.cs_comm_us)
  | _ -> Alcotest.fail "expected exactly one session class"

(* --- Load-dependence ------------------------------------------------- *)

let test_p99_grows_with_rate () =
  let image = Lazy.force benefits_img in
  let p99 rate =
    (Loadsim.run ~sessions:600 ~scenarios:[ "b_vueone"; "b_addone" ]
       ~arrival:(Loadsim.Poisson rate) ~seed:21L ~image ~network ())
      .Loadsim.r_p99_us
  in
  let a = p99 10. and b = p99 40. and c = p99 160. in
  Alcotest.(check bool)
    (Printf.sprintf "p99 strictly increasing: %.0f < %.0f < %.0f" a b c)
    true
    (a < b && b < c)

(* --- Metrics --------------------------------------------------------- *)

let test_metrics_instruments () =
  let open Coign_obs in
  let image = Lazy.force benefits_img in
  let reg = Metrics.registry () in
  let r =
    Loadsim.run ~metrics:reg ~sessions:40 ~scenarios:[ "b_vueone" ]
      ~arrival:(Loadsim.Poisson 20.) ~seed:1L ~image ~network ()
  in
  Alcotest.(check (float 0.)) "sessions counter" 40.
    (Metrics.counter_value (Metrics.counter reg "coign_load_sessions_total"));
  Alcotest.(check (float 0.)) "ops counter" (float_of_int r.Loadsim.r_total_ops)
    (Metrics.counter_value (Metrics.counter reg "coign_load_ops_total"));
  Alcotest.(check int) "latency histogram count" 40
    (Metrics.histogram_count (Metrics.histogram reg "coign_load_session_latency_us"));
  Alcotest.(check int) "comm histogram count" 40
    (Metrics.histogram_count (Metrics.histogram reg "coign_load_session_comm_us"));
  Alcotest.(check (float 0.)) "availability gauge" r.Loadsim.r_availability
    (Metrics.gauge_value (Metrics.gauge reg "coign_load_availability"))

(* --- qcheck properties ----------------------------------------------- *)

let gen_arrival =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Loadsim.Poisson (float_of_int r)) (int_range 1 2000);
        map3
          (fun r on off ->
            Loadsim.Bursty
              {
                b_rate = float_of_int r;
                b_on_ms = float_of_int on;
                b_off_ms = float_of_int off;
              })
          (int_range 1 2000) (int_range 1 500) (int_range 0 500);
        map2
          (fun p per ->
            Loadsim.Diurnal { d_peak = float_of_int p; d_period_s = float_of_int per })
          (int_range 1 2000) (int_range 1 120);
      ])

let arb_arrival_seed =
  QCheck.make
    ~print:(fun (a, s) -> Printf.sprintf "%s seed=%d" (Loadsim.arrival_to_string a) s)
    QCheck.Gen.(pair gen_arrival (int_range 0 100_000))

let prop_arrivals_nondecreasing =
  QCheck.Test.make ~name:"arrival generators emit nondecreasing timestamps" ~count:120
    arb_arrival_seed (fun (a, seed) ->
      let arrivals, class_of =
        Loadsim.gen_arrivals ~seed:(Int64.of_int seed) ~sessions:300 ~classes:4 a
      in
      let ok = ref (arrivals.(0) >= 0.) in
      for i = 1 to Array.length arrivals - 1 do
        if arrivals.(i) < arrivals.(i - 1) then ok := false
      done;
      Array.iter (fun c -> if c < 0 || c >= 4 then ok := false) class_of;
      !ok)

let prop_arrival_spec_roundtrip =
  QCheck.Test.make ~name:"arrival spec parses back to itself" ~count:100 arb_arrival_seed
    (fun (a, _) ->
      match Loadsim.arrival_of_string (Loadsim.arrival_to_string a) with
      | Ok b -> b = a
      | Error _ -> false)

let prop_percentiles_and_availability =
  QCheck.Test.make ~name:"p50 <= p95 <= p99 <= max; availability in [0,1]" ~count:10
    arb_arrival_seed (fun (a, k) ->
      let image = Lazy.force benefits_img in
      let r =
        Loadsim.run ~sessions:150
          ~deadline_us:(1000. +. float_of_int (200 * (k mod 997)))
          ~scenarios:[ "b_vueone"; "b_addone" ] ~arrival:a ~seed:(Int64.of_int k) ~image
          ~network ()
      in
      r.Loadsim.r_p50_us <= r.Loadsim.r_p95_us
      && r.Loadsim.r_p95_us <= r.Loadsim.r_p99_us
      && r.Loadsim.r_p99_us <= r.Loadsim.r_max_us
      && r.Loadsim.r_availability >= 0.
      && r.Loadsim.r_availability <= 1.)

let prop_seed_determinism_across_pools =
  QCheck.Test.make ~name:"same seed, byte-identical report across runs and pools" ~count:5
    arb_arrival_seed (fun (a, k) ->
      let image = Lazy.force benefits_img in
      let go pool =
        Jsonu.to_string
          (Loadsim.to_json
             (Loadsim.run ?pool ~sessions:120 ~scenarios:[ "b_vueone"; "b_addone" ]
                ~arrival:a ~seed:(Int64.of_int k) ~image ~network ()))
      in
      (* jobs 1 / 2 / 4 in CLI terms: no pool, 1 worker, 3 workers. *)
      let p2 = Parallel.create ~domains:1 () in
      let p4 = Parallel.create ~domains:3 () in
      let base = go None in
      let again = go None in
      let r2 = go (Some p2) and r4 = go (Some p4) in
      Parallel.shutdown p2;
      Parallel.shutdown p4;
      String.equal base again && String.equal base r2 && String.equal base r4)

let suite =
  [
    Alcotest.test_case "hand-computed queueing trace" `Quick test_hand_trace;
    Alcotest.test_case "hand trace: continuations and tie rule" `Quick
      test_hand_trace_multi_op;
    Alcotest.test_case "identity gate: queueing off == Replay" `Slow test_identity_gate;
    Alcotest.test_case "p99 grows with arrival rate" `Slow test_p99_grows_with_rate;
    Alcotest.test_case "coign_load_* metrics" `Slow test_metrics_instruments;
    qtest prop_arrivals_nondecreasing;
    qtest prop_arrival_spec_roundtrip;
    qtest ~long:false prop_percentiles_and_availability;
    qtest ~long:false prop_seed_determinism_across_pools;
  ]
