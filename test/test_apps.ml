open Coign_com
open Coign_core
open Coign_apps

let run_bare (app : App.t) (sc : App.scenario) =
  let ctx = Runtime.create_ctx app.App.app_registry in
  sc.App.sc_run ctx;
  ctx

let test_suite_shape () =
  Alcotest.(check int) "four applications" 4 (List.length Suite.all);
  Alcotest.(check int) "27 scenarios (Table 1 plus ingest)" 27 (List.length Suite.table1);
  List.iter
    (fun (app : App.t) ->
      Alcotest.(check bool)
        (app.App.app_name ^ " has exactly one bigone")
        true
        (List.length (List.filter (fun s -> s.App.sc_bigone) app.App.app_scenarios) = 1))
    Suite.all

let test_find_scenario () =
  let app, sc = Suite.find_scenario "p_oldmsr" in
  Alcotest.(check string) "app" "photodraw" app.App.app_name;
  Alcotest.(check string) "id" "p_oldmsr" sc.App.sc_id;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Suite.find_scenario "nope");
       false
     with Not_found -> true)

let test_all_scenarios_run_bare () =
  (* Every scenario must execute without a Coign runtime installed —
     instrumentation must be behaviour-preserving, so the baseline
     behaviour must exist. *)
  List.iter
    (fun (app : App.t) ->
      List.iter
        (fun (sc : App.scenario) ->
          let ctx = run_bare app sc in
          (* Ingest's single-scenario boots create 9 instances; the
             Table 1 apps create 11+. *)
          Alcotest.(check bool)
            (sc.App.sc_id ^ " creates components")
            true
            (Runtime.instance_count ctx > 8))
        app.App.app_scenarios)
    Suite.all

let test_instrumented_behaviour_identical () =
  (* The instrumented application behaves identically: same instance
     count, same compute charges. *)
  List.iter
    (fun id ->
      let app, sc = Suite.find_scenario id in
      let bare = run_bare app sc in
      let ctx = Runtime.create_ctx app.App.app_registry in
      let rte = Rte.install_profiling ~classifier:(Classifier.create Classifier.Ifcb) ctx in
      sc.App.sc_run ctx;
      Rte.uninstall rte;
      Alcotest.(check int)
        (id ^ " same instance count")
        (Runtime.instance_count bare)
        (Runtime.instance_count ctx);
      Alcotest.(check (float 1e-6))
        (id ^ " same compute")
        (Runtime.compute_us bare) (Runtime.compute_us ctx))
    [ "o_oldwp0"; "o_newtbl"; "p_oldcur"; "b_vueone" ]

let test_scenarios_deterministic () =
  List.iter
    (fun id ->
      let app, sc = Suite.find_scenario id in
      let a = Runtime.instance_count (run_bare app sc) in
      let b = Runtime.instance_count (run_bare app sc) in
      Alcotest.(check int) (id ^ " deterministic") a b)
    [ "o_oldbth"; "p_oldmsr"; "b_delone" ]

let instance_counts (app : App.t) (sc : App.scenario) =
  let ctx = run_bare app sc in
  Runtime.instance_count ctx

let test_bigone_is_superset () =
  List.iter
    (fun (app : App.t) ->
      let big = instance_counts app (App.bigone app) in
      let max_single =
        List.fold_left
          (fun acc sc -> max acc (instance_counts app sc))
          0 (App.non_bigone app)
      in
      Alcotest.(check bool)
        (app.App.app_name ^ " bigone bigger than any single scenario")
        true (big > max_single))
    Suite.all

let test_octarine_scale () =
  let app = Octarine.app in
  let n = instance_counts app (App.scenario app "o_oldwp0") in
  Alcotest.(check bool) "hundreds of components" true (n > 250 && n < 1_000)

let test_photodraw_non_remotable_interfaces () =
  (* Profile a PhotoDraw scenario and verify non-remotable ICC entries
     exist (the sprite shared-memory web of Figure 4). *)
  let app = Photodraw.app in
  let sc = App.scenario app "p_oldmsr" in
  let ctx = Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier:(Classifier.create Classifier.Ifcb) ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let entries = Icc.entries (Rte.icc rte) in
  Alcotest.(check bool) "non-remotable entries present" true
    (List.exists (fun e -> not e.Icc.remotable) entries);
  Alcotest.(check bool) "sprite interface among them" true
    (List.exists (fun e -> (not e.Icc.remotable) && e.Icc.iface = "ISprite") entries)

let test_octarine_gui_non_remotable () =
  let app = Octarine.app in
  let sc = App.scenario app "o_oldwp0" in
  let ctx = Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier:(Classifier.create Classifier.Ifcb) ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  Alcotest.(check bool) "paint interface non-remotable" true
    (List.exists
       (fun e -> (not e.Icc.remotable) && e.Icc.iface = "IPaint")
       (Icc.entries (Rte.icc rte)))

let test_default_placements () =
  Alcotest.(check bool) "octarine default all-client" true
    (Octarine.app.App.app_default_placement "Octarine.Story" = Constraints.Client);
  Alcotest.(check bool) "file server on server" true
    (Octarine.app.App.app_default_placement Common.file_server_class_name = Constraints.Server);
  Alcotest.(check bool) "benefits logic on middle tier" true
    (Benefits.app.App.app_default_placement "Benefits.EmployeeLogic" = Constraints.Server);
  Alcotest.(check bool) "benefits form on client" true
    (Benefits.app.App.app_default_placement "Benefits.LoginForm" = Constraints.Client)

let test_images_carry_api_refs () =
  List.iter
    (fun (app : App.t) ->
      let img = app.App.app_image in
      Alcotest.(check bool)
        (app.App.app_name ^ " has GUI classes")
        true
        (List.exists
           (fun (_, v) -> v = Static_analysis.Pin_client)
           (Static_analysis.image_verdicts img));
      Alcotest.(check bool)
        (app.App.app_name ^ " has storage classes")
        true
        (List.exists
           (fun (_, v) -> v = Static_analysis.Pin_server)
           (Static_analysis.image_verdicts img)))
    Suite.all

let test_vfs_missing_file () =
  let ctx = Runtime.create_ctx Octarine.app.App.app_registry in
  let fs = Common.create_file_server ctx in
  Alcotest.(check bool) "missing file fails" true
    (try
       ignore (Common.call_ret_int ctx fs "open_file" [ Coign_idl.Value.Str "ghost.doc" ]);
       false
     with Hresult.Com_error (Hresult.E_fail _) -> true)

let test_file_server_reads () =
  let ctx = Runtime.create_ctx Octarine.app.App.app_registry in
  Common.Vfs.add ctx ~name:"f.dat" ~bytes:10_000;
  let fs = Common.create_file_server ctx in
  let fh = Common.call_ret_int ctx fs "open_file" [ Coign_idl.Value.Str "f.dat" ] in
  Alcotest.(check int) "size" 10_000
    (Common.call_ret_int ctx fs "file_size" [ Coign_idl.Value.Int fh ]);
  Alcotest.(check int) "block clipped at eof" 2_000
    (Common.call_ret_blob ctx fs "read_block"
       [ Coign_idl.Value.Int fh; Coign_idl.Value.Int 8_000; Coign_idl.Value.Int 4_096 ]);
  Alcotest.(check int) "read_all" 10_000
    (Common.call_ret_blob ctx fs "read_all" [ Coign_idl.Value.Str "f.dat" ])

let suite =
  [
    Alcotest.test_case "suite shape" `Quick test_suite_shape;
    Alcotest.test_case "find scenario" `Quick test_find_scenario;
    Alcotest.test_case "all scenarios run bare" `Slow test_all_scenarios_run_bare;
    Alcotest.test_case "instrumentation behaviour-preserving" `Quick
      test_instrumented_behaviour_identical;
    Alcotest.test_case "scenarios deterministic" `Quick test_scenarios_deterministic;
    Alcotest.test_case "bigone is superset" `Slow test_bigone_is_superset;
    Alcotest.test_case "octarine scale" `Quick test_octarine_scale;
    Alcotest.test_case "photodraw non-remotable web" `Quick
      test_photodraw_non_remotable_interfaces;
    Alcotest.test_case "octarine gui non-remotable" `Quick test_octarine_gui_non_remotable;
    Alcotest.test_case "default placements" `Quick test_default_placements;
    Alcotest.test_case "images carry api refs" `Quick test_images_carry_api_refs;
    Alcotest.test_case "vfs missing file" `Quick test_vfs_missing_file;
    Alcotest.test_case "file server reads" `Quick test_file_server_reads;
  ]
