open Coign_util
open Coign_netsim
open Coign_image
open Coign_core
open Coign_apps

(* Use a small, fast scenario throughout. *)
let app = Octarine.app
let sc = App.scenario app "o_oldwp0"

let net () = Net_profiler.profile (Prng.create 42L) Network.ethernet_10

let test_profile_requires_instrumentation () =
  Alcotest.(check bool) "raw image rejected" true
    (try
       ignore (Adps.profile ~image:app.App.app_image ~registry:app.App.app_registry sc.App.sc_run);
       false
     with Invalid_argument _ -> true)

let test_pipeline_end_to_end () =
  let image = Adps.instrument app.App.app_image in
  let image, stats = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  Alcotest.(check bool) "instances seen" true (stats.Adps.ps_instances > 100);
  Alcotest.(check bool) "calls seen" true (stats.Adps.ps_calls > 100);
  Alcotest.(check bool) "profile stored" true (Adps.load_profile image <> None);
  let image, dist = Adps.analyze ~image ~net:(net ()) () in
  Alcotest.(check bool) "server side non-empty" true (dist.Analysis.server_count > 0);
  Alcotest.(check bool) "distribution stored" true (Adps.load_distribution image <> None);
  let es =
    Adps.execute ~image ~registry:app.App.app_registry ~network:Network.ethernet_10
      sc.App.sc_run
  in
  Alcotest.(check bool) "comm accounted" true (es.Adps.es_comm_us > 0.);
  Alcotest.(check bool) "total = compute + comm" true
    (Float.abs (es.Adps.es_total_us -. (es.Adps.es_comm_us +. es.Adps.es_compute_us)) < 1e-6)

let test_profiles_accumulate () =
  let image = Adps.instrument app.App.app_image in
  let image, s1 = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let image, s2 = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  Alcotest.(check bool) "classifications stable across identical runs" true
    (s2.Adps.ps_classifications = s1.Adps.ps_classifications);
  match Adps.load_profile image with
  | Some (_, icc) ->
      (* The merged ICC holds both runs' calls. *)
      Alcotest.(check bool) "icc accumulated" true (Icc.call_count icc >= 2 * s1.Adps.ps_calls - 2)
  | None -> Alcotest.fail "no profile"

let test_multi_scenario_profile_merges () =
  let image = Adps.instrument app.App.app_image in
  let image, _ =
    Adps.profile ~image ~registry:app.App.app_registry (App.scenario app "o_newtbl").App.sc_run
  in
  let before =
    match Adps.load_profile image with Some (c, _) -> Classifier.classification_count c | None -> 0
  in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let after =
    match Adps.load_profile image with Some (c, _) -> Classifier.classification_count c | None -> 0
  in
  Alcotest.(check bool) "new scenario adds classifications" true (after > before)

let test_analyze_requires_profile () =
  let image = Adps.instrument app.App.app_image in
  Alcotest.(check bool) "unprofiled rejected" true
    (try
       ignore (Adps.analyze ~image ~net:(net ()) ());
       false
     with Invalid_argument _ -> true)

let test_execute_requires_distribution () =
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  Alcotest.(check bool) "profiling image rejected for execution" true
    (try
       ignore
         (Adps.execute ~image ~registry:app.App.app_registry ~network:Network.ethernet_10
            sc.App.sc_run);
       false
     with Invalid_argument _ -> true)

let test_factory_realizes_analysis_placement () =
  (* Every instance whose classification the analyzer put on the server
     must actually be placed there by the factory, and vice versa. *)
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let image, dist = Adps.analyze ~image ~net:(net ()) () in
  let classifier, _ = Option.get (Adps.load_distribution image) in
  (* Re-run distributed manually to inspect the factory. *)
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte =
    Rte.install_distributed ~classifier
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_classification dist;
          dc_network = Network.ethernet_10;
          dc_jitter = 0.;
          dc_seed = 3L;
          dc_faults = None;
          dc_retry = Fault.default_retry;
          dc_resilience = None;
          dc_fleet = None;
          dc_watch = None;
        }
      ctx
  in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let factory = Option.get (Rte.factory rte) in
  List.iter
    (fun (inst, classification) ->
      let expected = Analysis.location_of dist classification in
      Alcotest.(check bool)
        (Printf.sprintf "instance %d follows classification %d" inst classification)
        true
        (Factory.machine_of factory inst = expected))
    (Rte.instance_classifications rte)

let test_image_roundtrip_mid_pipeline () =
  (* The image can be serialized between every stage (as the CLI does). *)
  let image = Adps.instrument app.App.app_image in
  let image = Binary_image.decode (Binary_image.encode image) in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let image = Binary_image.decode (Binary_image.encode image) in
  let image, _ = Adps.analyze ~image ~net:(net ()) () in
  let image = Binary_image.decode (Binary_image.encode image) in
  let es =
    Adps.execute ~image ~registry:app.App.app_registry ~network:Network.ethernet_10
      sc.App.sc_run
  in
  Alcotest.(check bool) "still executes" true (es.Adps.es_instances > 0)

let test_default_policy_execution () =
  let es =
    Adps.execute_with_policy ~registry:app.App.app_registry
      ~classifier:(Classifier.create Classifier.Ifcb)
      ~policy:(Factory.By_class app.App.app_default_placement) ~network:Network.ethernet_10
      sc.App.sc_run
  in
  (* Data files are on the server, so the default run pays file traffic. *)
  Alcotest.(check bool) "comm positive" true (es.Adps.es_comm_us > 0.);
  Alcotest.(check bool) "file servers on server" true (es.Adps.es_server_instances >= 1)

let suite =
  [
    Alcotest.test_case "profile requires instrumentation" `Quick
      test_profile_requires_instrumentation;
    Alcotest.test_case "pipeline end to end" `Quick test_pipeline_end_to_end;
    Alcotest.test_case "profiles accumulate" `Quick test_profiles_accumulate;
    Alcotest.test_case "multi-scenario profile merges" `Quick test_multi_scenario_profile_merges;
    Alcotest.test_case "analyze requires profile" `Quick test_analyze_requires_profile;
    Alcotest.test_case "execute requires distribution" `Quick test_execute_requires_distribution;
    Alcotest.test_case "factory realizes analysis placement" `Quick
      test_factory_realizes_analysis_placement;
    Alcotest.test_case "image roundtrip mid-pipeline" `Quick test_image_roundtrip_mid_pipeline;
    Alcotest.test_case "default policy execution" `Quick test_default_policy_execution;
  ]

let test_reanalysis_after_more_profiling () =
  (* Analyze, then keep profiling (re-instrument preserves the profile)
     and analyze again: the pipeline supports the paper's periodic
     re-profiling loop. *)
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let image, d1 = Adps.analyze ~image ~net:(net ()) () in
  (* Back to profiling mode; accumulated classifier state survives. *)
  let image = Adps.instrument image in
  let image, _ =
    Adps.profile ~image ~registry:app.App.app_registry (App.scenario app "o_oldtb0").App.sc_run
  in
  let image, d2 = Adps.analyze ~image ~net:(net ()) () in
  Alcotest.(check bool) "more classifications analyzed" true
    (d2.Analysis.node_count > d1.Analysis.node_count);
  ignore image

let test_execute_deterministic_given_seed () =
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let image, _ = Adps.analyze ~image ~net:(net ()) () in
  let run () =
    Adps.execute ~image ~registry:app.App.app_registry ~network:Network.ethernet_10
      ~jitter:0.02 ~seed:99L sc.App.sc_run
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.)) "same measured comm" a.Adps.es_comm_us b.Adps.es_comm_us

let suite =
  suite
  @ [
      Alcotest.test_case "re-analysis after more profiling" `Quick
        test_reanalysis_after_more_profiling;
      Alcotest.test_case "execute deterministic given seed" `Quick
        test_execute_deterministic_given_seed;
    ]
