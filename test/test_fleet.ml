(* The replicated server fleet: k-way pool execution, per-replica
   failover, and the pool-elastic ladder.  The promotion trace below is
   hand-computed from the fixed retry policy and the default breaker
   (failure threshold 2): the numbers in the assertions are derived in
   the comments, not transcribed from a run. *)

open Coign_idl
open Coign_com
open Coign_netsim
open Coign_core
open Coign_apps
open Coign_sim
open Coign_util

(* --- A two-component fleet app --------------------------------------
   Front (client) creates Back (server) and pumps 1000-byte blobs at
   it.  On 10BaseT the forwarded creation costs 1456.8 us, so a
   per-host fault window opening at t = 2000 us lets the creation
   clear and then partitions the store traffic. *)

let fixed_retry =
  {
    Fault.rp_timeout_us = 1_000.;
    rp_max_attempts = 3;
    rp_backoff_us = 500.;
    rp_backoff_mult = 2.;
    rp_backoff_jitter = 0.;
  }

let i_front =
  Itype.declare "IFltFront" [ Idl_type.method_ "run" [ Idl_type.param "rounds" Idl_type.Int32 ] ]

let i_back =
  Itype.declare "IFltBack"
    [ Idl_type.method_ ~ret:Idl_type.Int32 "store" [ Idl_type.param "data" Idl_type.Blob ] ]

let c_back =
  Runtime.define_class "Flt.Back" (fun _ctx _self ->
      let stored = ref 0 in
      [
        Combuild.iface i_back
          [
            ( "store",
              fun ctx args ->
                stored := !stored + Combuild.get_blob args 0;
                Runtime.charge ctx ~us:10.;
                Combuild.echo args (Value.Int !stored) );
          ];
      ])

let c_front =
  Runtime.define_class "Flt.Front" (fun ctx0 _self ->
      let back = Runtime.create_instance ctx0 c_back.Runtime.clsid ~iid:(Itype.iid i_back) in
      [
        Combuild.iface i_front
          [
            ( "run",
              fun ctx args ->
                let rounds = Combuild.get_int args 0 in
                for _ = 1 to rounds do
                  ignore (Runtime.call_named ctx back "store" [ Value.Blob 1_000 ])
                done;
                Combuild.echo args Value.Unit );
          ];
      ])

let registry () = Runtime.registry [ c_front; c_back ]

let run_scenario ctx rounds =
  let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
  ignore (Runtime.call_named ctx front "run" [ Value.Int rounds ])

(* Profile the app once to get a classifier and an analysis session —
   the same two-stage machinery [Adps.analysis_session] drives, without
   an image.  Classification order is deterministic, so the profiled
   classifier keeps working for every later distributed run. *)
let profiled =
  lazy
    (let ctx = Runtime.create_ctx (registry ()) in
     let classifier = Classifier.create Classifier.Ifcb in
     let rte = Rte.install_profiling ~classifier ctx in
     run_scenario ctx 4;
     Rte.uninstall rte;
     let icc = Rte.icc rte in
     let session = Analysis.Session.create ~classifier ~icc ~constraints:Constraints.empty () in
     let n = Classifier.classification_count classifier in
     let cback = ref (-1) in
     for c = 0 to n - 1 do
       if String.equal (Classifier.class_of_classification classifier c) "Flt.Back" then
         cback := c
     done;
     if !cback < 0 then Alcotest.fail "Flt.Back was never classified";
     (classifier, session, n, !cback))

let dist placement =
  {
    Analysis.placement;
    cut_ns = 0;
    predicted_comm_us = 0.;
    server_count =
      Array.fold_left (fun a l -> if l = Constraints.Server then a + 1 else a) 0 placement;
    node_count = Array.length placement;
    algorithm = Coign_flowgraph.Mincut.Dinic;
  }

let mini_pool_ladder ~hosts =
  let _, session, n, cback = Lazy.force profiled in
  let primary = Array.make n Constraints.Client in
  primary.(cback) <- Constraints.Server;
  let base =
    Fallback.of_rungs
      ~migration_safe:(Array.make n true)
      [
        { Fallback.rg_name = "primary"; rg_distribution = dist primary };
        { Fallback.rg_name = "all-client"; rg_distribution = dist (Array.make n Constraints.Client) };
      ]
  in
  ( dist primary,
    Fallback.pool_ladder ~hosts session ~net:(Net_profiler.exact Network.ethernet_10) base )

let run_fleet ?host_faults ~rounds pl primary =
  let classifier, _, _, _ = Lazy.force profiled in
  let recorder, events = Logger.event_recorder () in
  let ctx = Runtime.create_ctx (registry ()) in
  let rte =
    Rte.install_distributed ~loggers:[ recorder ] ~classifier
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_classification primary;
          dc_network = Network.ethernet_10;
          dc_jitter = 0.;
          dc_seed = 1L;
          dc_faults = None;
          dc_retry = fixed_retry;
          dc_resilience = None;
          dc_fleet = Some (Rte.fleet ?host_faults pl);
          dc_watch = None;
        }
      ctx
  in
  run_scenario ctx rounds;
  let fs = Option.get (Rte.fleet_stats rte) in
  let st = Rte.stats rte in
  Rte.uninstall rte;
  (fs, st, events ())

(* --- Hand-computed promotion trace under a single-host crash --------- *)

let test_promotion_trace_hand_computed () =
  let _, _, _, cback = Lazy.force profiled in
  let primary, pl = mini_pool_ladder ~hosts:2 in
  (* The shard map is fixed across the ladder: with every component a
     single migration-safe classification, Back's shard is the plain
     keyed hash of its classification id, and its primary host is the
     shard modulo the pool size. *)
  let rung0 = Fallback.pool_rung_at pl 0 in
  let expected_shard = Pool.shard_of (Pool.Hash 2) cback in
  Alcotest.(check int) "ladder shards Back by keyed hash" expected_shard
    rung0.Fallback.pr_shard_of.(cback);
  let crash = Pool.host_of rung0.Fallback.pr_shape expected_shard in
  let survivor = 1 - crash in
  (* Crash Back's primary host from t = 2 ms onward.  The trace is then
     fully determined:
       - the forwarded creation (1456.8 us on 10BaseT) clears;
       - the first store attempt inside the window fails its retry
         cycle, [go] records failure 1 and retries the same host;
       - the second failed cycle is consecutive failure 2 = the default
         threshold, so the breaker opens and — in the same transition —
         shard [s] is promoted to the only other host, which is healthy;
       - the re-read link routes the very same call to the survivor,
         where it succeeds; every later store follows it.
     So: 1 open, 1 promotion, nothing stranded (after the open the call
     targets the survivor's closed breaker), nothing rescued locally
     (the callee never leaves the server side), no rung switch, and the
     run is far shorter than the 50 ms cooloff, so no probe ever
     reopens or closes the breaker. *)
  let window = { Fault.zero with Fault.fs_partitions_us = [ (2_000., 1_000_000.) ] } in
  let fs, st, events = run_fleet ~host_faults:[ (crash, window) ] ~rounds:10 pl primary in
  Alcotest.(check int) "one breaker open" 1 fs.Rte.fs_breaker_opens;
  Alcotest.(check int) "no breaker close" 0 fs.Rte.fs_breaker_closes;
  Alcotest.(check int) "one promotion" 1 fs.Rte.fs_promotions;
  Alcotest.(check int) "no rung switch down" 0 fs.Rte.fs_failovers;
  Alcotest.(check int) "no rung switch up" 0 fs.Rte.fs_failbacks;
  Alcotest.(check int) "no resize" 0 fs.Rte.fs_resizes;
  Alcotest.(check int) "no split" 0 fs.Rte.fs_splits;
  Alcotest.(check int) "no stranded call" 0 fs.Rte.fs_stranded_calls;
  Alcotest.(check int) "no local rescue" 0 fs.Rte.fs_rescued_calls;
  Alcotest.(check int) "still on the widest rung" 0 fs.Rte.fs_final_rung;
  Alcotest.(check int) "both hosts standing" 2 fs.Rte.fs_final_hosts;
  Alcotest.(check int) "both shards mapped" 2 fs.Rte.fs_final_shards;
  (* The event log pins the trace bit for bit: exactly one open
     followed by exactly one promotion, with the hand-derived shard and
     host ids, both inside the fault window. *)
  let fleet_events =
    List.filter
      (function
        | Event.Breaker_opened _ | Event.Breaker_closed _ | Event.Failover _ | Event.Failback _
        | Event.Replica_promoted _ | Event.Shard_split _ | Event.Pool_resized _ ->
            true
        | _ -> false)
      events
  in
  (match fleet_events with
  | [ Event.Breaker_opened o; Event.Replica_promoted p ] ->
      Alcotest.(check int) "opened at the failure threshold" 2 o.failures;
      Alcotest.(check bool) "opened inside the window" true (o.at_us >= 2_000);
      Alcotest.(check int) "promoted Back's shard" expected_shard p.shard;
      Alcotest.(check int) "promoted off the crashed host" crash p.from_host;
      Alcotest.(check int) "promoted onto the survivor" survivor p.to_host;
      Alcotest.(check bool) "promotion at the open" true (p.at_us >= o.at_us)
  | evs ->
      Alcotest.failf "expected [breaker_opened; replica_promoted], got %d fleet events"
        (List.length evs));
  (* Availability: the promoted replica keeps every store remote, so
     the crashed run serves exactly what the clean pool serves. *)
  let clean_fs, clean_st, _ = run_fleet ~rounds:10 pl primary in
  Alcotest.(check int) "clean pool never opens" 0 clean_fs.Rte.fs_breaker_opens;
  Alcotest.(check int) "clean pool never promotes" 0 clean_fs.Rte.fs_promotions;
  Alcotest.(check int) "every remote call still served"
    clean_st.Rte.st_remote_calls st.Rte.st_remote_calls;
  Alcotest.(check int) "every intercepted call still ran"
    clean_st.Rte.st_intercepted st.Rte.st_intercepted

(* --- Shard-map stability --------------------------------------------- *)

let qcheck_hash_shard_stable =
  QCheck.Test.make ~count:500 ~name:"hash shard map is pure and in range"
    QCheck.(pair (int_range 1 8) (int_range (-1) 999))
    (fun (k, c) ->
      let m = Pool.Hash k in
      let s = Pool.shard_of m c in
      s >= 0 && s < Pool.shard_count m && s = Pool.shard_of m c)

let qcheck_range_shard_semantics =
  (* A Range map's shard is the number of split points at or below the
     key — monotone in the key, bounded by the shard count. *)
  let gen =
    QCheck.Gen.(
      pair (list_size (int_range 1 5) (int_range 0 100)) (int_range (-1) 120)
      |> map (fun (bounds, c) ->
             let bounds = List.sort_uniq compare bounds in
             (Array.of_list bounds, c)))
  in
  let print (bounds, c) =
    Printf.sprintf "bounds=[%s] c=%d"
      (String.concat ";" (Array.to_list (Array.map string_of_int bounds)))
      c
  in
  QCheck.Test.make ~count:500 ~name:"range shard map counts split points"
    (QCheck.make ~print gen)
    (fun (bounds, c) ->
      QCheck.assume (Array.length bounds > 0);
      let m = Pool.Range bounds in
      let reference = Array.fold_left (fun a b -> if b <= c then a + 1 else a) 0 bounds in
      Pool.shard_of m c = reference
      && Pool.shard_of m c <= Pool.shard_of m (c + 1)
      && Pool.shard_of m c < Pool.shard_count m)

let qcheck_replica_ring =
  QCheck.Test.make ~count:500 ~name:"replica ring: primary first, distinct, round-robin"
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 0 20))
    (fun (k, r, s) ->
      let shape = Pool.shape ~replicas:(min r k) k in
      let primary = Pool.host_of shape s in
      let ring = Pool.replica_hosts shape s in
      primary = s mod k
      && List.hd ring = primary
      && List.length ring = shape.Pool.sh_replicas
      && List.length (List.sort_uniq compare ring) = List.length ring)

let test_ladder_shards_stable_across_rungs () =
  (* "A key's shard never changes as the pool breathes": wherever a
     classification is server-side on two rungs, it sits in the same
     shard on both. *)
  let _, pl = mini_pool_ladder ~hosts:4 in
  let rungs = List.init (Fallback.pool_rung_count pl) (Fallback.pool_rung_at pl) in
  List.iter
    (fun (r1 : Fallback.pool_rung) ->
      List.iter
        (fun (r2 : Fallback.pool_rung) ->
          Array.iteri
            (fun c s1 ->
              let s2 = r2.Fallback.pr_shard_of.(c) in
              if s1 >= 0 && s2 >= 0 then
                Alcotest.(check int)
                  (Printf.sprintf "shard of %d stable between %s and %s" c r1.Fallback.pr_name
                     r2.Fallback.pr_name)
                  s1 s2)
            r1.Fallback.pr_shard_of)
        rungs)
    rungs

(* --- Pool of one is the PR 5 resilience path, bit for bit ------------ *)

let prepared_octarine =
  lazy
    (let app = Suite.find_app "octarine" in
     let sc = App.scenario app "o_oldwp0" in
     let image = Adps.instrument app.App.app_image in
     let profiled, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
     let analyzed, _ =
       Adps.analyze ~image:profiled ~net:(Net_profiler.exact Network.ethernet_10) ()
     in
     (app, profiled, analyzed, sc))

let test_pool1_bit_identity () =
  let app, profiled, image, sc = Lazy.force prepared_octarine in
  let net = Net_profiler.exact Network.ethernet_10 in
  let base = Adps.fallback_ladder ~image:profiled ~net () in
  let pl = Adps.pool_fallback_ladder ~hosts:1 ~image:profiled ~net () in
  let faults = { Fault.zero with Fault.fs_partitions_us = [ (50_000., 550_000.) ] } in
  let resil =
    Adps.execute ~image ~registry:app.App.app_registry ~network:Network.ethernet_10
      ~seed:0x5EEDL ~faults ~resilience:(Rte.resilience base) sc.App.sc_run
  in
  let fleet_es, fstats =
    Adps.execute_fleet ~image ~registry:app.App.app_registry ~network:Network.ethernet_10
      ~seed:0x5EEDL ~faults ~fleet:(Rte.fleet pl) sc.App.sc_run
  in
  Alcotest.(check bool) "pool-1 run is bit-identical to the two-host ladder" true
    (resil = fleet_es);
  Alcotest.(check int) "one host" 1 fstats.Rte.fs_final_hosts;
  Alcotest.(check int) "one shard" 1 fstats.Rte.fs_final_shards;
  Alcotest.(check int) "no promotions on a pool of one" 0 fstats.Rte.fs_promotions;
  Alcotest.(check int) "no resizes on a pool of one" 0 fstats.Rte.fs_resizes

(* --- The grid is deterministic across domains ------------------------ *)

let test_fleetsim_deterministic_across_domains () =
  let app, image, _, sc = Lazy.force prepared_octarine in
  let go pool =
    Fleetsim.to_json
      (Fleetsim.run ?pool ~seed:0x5EEDL ~pools:[ 1; 2 ] ~image
         ~registry:app.App.app_registry ~network:Network.ethernet_10 sc.App.sc_run)
  in
  let j1 = go None in
  let pool = Parallel.create ~domains:3 () in
  let j4 = Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> go (Some pool)) in
  Alcotest.(check string) "grid JSON byte-identical across domain counts" j1 j4;
  match Jsonu.parse j1 with
  | Ok (Jsonu.Arr cells) ->
      Alcotest.(check int) "one JSON object per cell" 6 (List.length cells)
  | Ok _ -> Alcotest.fail "grid JSON is not an array"
  | Error e -> Alcotest.fail ("grid JSON does not parse: " ^ e)

(* --- Golden CLI output ------------------------------------------------ *)

let exe = "../bin/coign.exe"
let golden = "golden/fleet_octarine.txt"

let with_tmp f =
  let dir = Filename.temp_file "coign_fleet" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_fleet_golden () =
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        let out = Filename.concat dir "fleet.txt" in
        let quiet args = Sys.command (Filename.quote_command exe args ^ " > /dev/null 2>&1") in
        Alcotest.(check int) "instrument" 0 (quiet [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        Alcotest.(check int) "profile" 0
          (quiet [ "profile"; img; "--scenario"; "o_oldwp0"; "-o"; img ]);
        let cmd =
          Filename.quote_command exe
            [ "fleet"; img; "--scenario"; "o_oldwp0"; "--network"; "ethernet10"; "--jobs"; "1" ]
          ^ " > " ^ Filename.quote out ^ " 2>/dev/null"
        in
        Alcotest.(check int) "fleet" 0 (Sys.command cmd);
        Alcotest.(check string) "fleet text output matches golden" (read_file golden)
          (read_file out))

let suite =
  [
    Alcotest.test_case "hand-computed promotion trace under single-host crash" `Quick
      test_promotion_trace_hand_computed;
    QCheck_alcotest.to_alcotest ~long:false qcheck_hash_shard_stable;
    QCheck_alcotest.to_alcotest ~long:false qcheck_range_shard_semantics;
    QCheck_alcotest.to_alcotest ~long:false qcheck_replica_ring;
    Alcotest.test_case "pool ladder shards stable across rungs" `Quick
      test_ladder_shards_stable_across_rungs;
    Alcotest.test_case "pool of one is bit-identical to the resilience path" `Slow
      test_pool1_bit_identity;
    Alcotest.test_case "fleet grid deterministic across domains" `Slow
      test_fleetsim_deterministic_across_domains;
    Alcotest.test_case "cli fleet golden output" `Slow test_fleet_golden;
  ]
