(* The exhaustive distribution checker.  The 2-rung closures are
   enumerated by hand below and checked state-for-state; seeded lying
   safety tables must produce CG008/CG009 counterexamples whose traces
   replay to the violation both through the replay harness and through
   the real distributed RTE; and the three bundled apps' ladders must
   verify clean.

   Hand enumeration for the safe 2-rung model (one main group pinned to
   the client, one safe group Server@0 -> Client@1, one remotable edge,
   threshold 2, 1 probe, cooloff chain [5000; 10000]):

     S0 (0, Closed cf=0, c s)   S5 (1, Open   idx1, c s)
     S1 (0, Closed cf=1, c s)   S6 (1, HalfOp idx0, c c)  dead end
     S2 (1, Open   idx0, c s)   S7 (1, HalfOp idx1, c s)
     S3 (1, HalfOp idx0, c s)   S8 (1, Open   idx1, c c)
     S4 (1, Open   idx0, c c)   S9 (1, HalfOp idx1, c c)  dead end

   10 states; 16 event applications (S0:2 S1:2 S2:2 S3:3 S4:1 S5:2
   S7:3 S8:1 plus no successors from S6/S9), 7 of which land on known
   states (S0<-ok from S0's own loop, from S1, from S3 and the probe-ok
   from S7; S5<-fail from S7; S6<-cooloff from S4; S9<-cooloff from
   S8); deepest layer 6
   (S0-fail-S1-fail-S2-cooloff-S3-fail-S5-migrate-S8-cooloff-S9).
   With the group ladder-unsafe the migration events disappear and the
   closure shrinks to {S0,S1,S2,S3,S5,S7}: 6 states, 10 applications. *)

open Coign_idl
open Coign_com
open Coign_netsim
open Coign_core
open Coign_apps
open Coign_util
open Coign_verify

let check_bits what expected actual =
  Alcotest.(check int64) what (Int64.bits_of_float expected) (Int64.bits_of_float actual)

(* --- Hand-built models ------------------------------------------------ *)

let vpolicy =
  {
    Health.hp_failure_threshold = 2;
    hp_cooloff_us = 5_000.;
    hp_cooloff_mult = 2.;
    hp_cooloff_max_us = 10_000.;
    hp_probe_successes = 1;
    hp_ewma_alpha = 0.2;
  }

let group id members subject targets ~ladder ~truth =
  {
    Model.g_id = id;
    g_members = members;
    g_subject = subject;
    g_targets = targets;
    g_ladder_safe = ladder;
    g_truth_safe = truth;
  }

let edge a b iface ~remotable ~non_remotable =
  { Model.e_a = a; e_b = b; e_iface = iface; e_remotable = remotable; e_non_remotable = non_remotable }

let hand_model ?(policy = vpolicy) ?pool_sizes ~groups ~edges ~rungs () =
  let rungs = Array.of_list rungs in
  {
    Model.m_groups = Array.of_list groups;
    m_edges = Array.of_list edges;
    m_rung_names = rungs;
    m_policy = policy;
    m_cooloffs = Model.cooloff_chain policy;
    m_classifications =
      List.fold_left (fun a g -> a + List.length g.Model.g_members) 0 groups;
    m_pool_sizes =
      (match pool_sizes with
      | None -> Array.make (Array.length rungs) 1
      | Some l -> Array.of_list l);
  }

let two_rung ~safe =
  hand_model
    ~groups:
      [
        group 0 [ -1 ] "main" [| Constraints.Client; Constraints.Client |] ~ladder:false
          ~truth:false;
        group 1 [ 0 ] "Hand.Back" [| Constraints.Server; Constraints.Client |] ~ladder:safe
          ~truth:safe;
      ]
    ~edges:[ edge 0 1 "IHandBack" ~remotable:true ~non_remotable:false ]
    ~rungs:[ "primary"; "all-client" ] ()

let test_cooloff_chain () =
  let chain = Model.cooloff_chain vpolicy in
  Alcotest.(check int) "two escalation values" 2 (Array.length chain);
  check_bits "base" 5_000. chain.(0);
  check_bits "capped double" 10_000. chain.(1);
  let m = two_rung ~safe:true in
  Alcotest.(check int) "base indexes 0" 0 (Model.cooloff_index m 5_000.);
  Alcotest.(check int) "cap indexes 1" 1 (Model.cooloff_index m 10_000.);
  Alcotest.(check bool) "off-chain value rejected" true
    (try ignore (Model.cooloff_index m 7_500.) ; false with Invalid_argument _ -> true)

let test_two_rung_closure_hand_counted () =
  let r = Explore.run (two_rung ~safe:true) in
  Alcotest.(check int) "10 states" 10 r.Explore.r_stats.Explore.sr_states;
  Alcotest.(check int) "16 event applications" 16 r.Explore.r_stats.Explore.sr_transitions;
  Alcotest.(check int) "7 dedup hits" 7 r.Explore.r_stats.Explore.sr_dedup_hits;
  Alcotest.(check int) "deepest layer 6" 6 r.Explore.r_stats.Explore.sr_depth;
  Alcotest.(check bool) "complete" true r.Explore.r_stats.Explore.sr_complete;
  Alcotest.(check bool) "both rungs installed" true
    (r.Explore.r_stats.Explore.sr_rungs_reached = [| true; true |]);
  Alcotest.(check int) "no violations" 0 (List.length r.Explore.r_violations);
  Alcotest.(check int) "no diagnostics" 0
    (List.length (Explore.diagnostics (two_rung ~safe:true) r))

let test_two_rung_unsafe_closure_shrinks () =
  let r = Explore.run (two_rung ~safe:false) in
  Alcotest.(check int) "6 states without migrations" 6 r.Explore.r_stats.Explore.sr_states;
  Alcotest.(check int) "10 event applications" 10 r.Explore.r_stats.Explore.sr_transitions;
  Alcotest.(check bool) "complete" true r.Explore.r_stats.Explore.sr_complete;
  Alcotest.(check bool) "both rungs still installed" true
    (r.Explore.r_stats.Explore.sr_rungs_reached = [| true; true |]);
  Alcotest.(check int) "no violations" 0 (List.length r.Explore.r_violations)

let test_depth_bound_truncates () =
  let r = Explore.run ~depth:2 (two_rung ~safe:true) in
  Alcotest.(check bool) "truncated" false r.Explore.r_stats.Explore.sr_complete;
  Alcotest.(check bool) "fewer states than the closure" true
    (r.Explore.r_stats.Explore.sr_states < 10);
  Alcotest.(check bool) "depth <= bound" true (r.Explore.r_stats.Explore.sr_depth <= 2);
  Alcotest.(check bool) "depth < 1 rejected" true
    (try ignore (Explore.run ~depth:0 (two_rung ~safe:true)) ; false
     with Invalid_argument _ -> true)

(* A ladder table that lies: Lie.Back1 is marked migration-safe but the
   static facts say otherwise (it talks to Lie.Back2 over a
   non-remotable interface, and Back2 stays on the server).  The
   shortest counterexample is forced: two failures trip the breaker and
   install rung 1, then the one risky migration manifests both the
   unsafe move (CG009) and the separated non-remotable pair (CG008). *)
let lying_model () =
  hand_model
    ~groups:
      [
        group 0 [ -1 ] "main" [| Constraints.Client; Constraints.Client |] ~ladder:false
          ~truth:false;
        group 1 [ 0 ] "Lie.Back1" [| Constraints.Server; Constraints.Client |] ~ladder:true
          ~truth:false;
        group 2 [ 1 ] "Lie.Back2" [| Constraints.Server; Constraints.Client |] ~ladder:false
          ~truth:false;
      ]
    ~edges:
      [
        edge 0 1 "ILieStore" ~remotable:true ~non_remotable:false;
        edge 1 2 "ILieRaw" ~remotable:false ~non_remotable:true;
      ]
    ~rungs:[ "primary"; "all-client" ] ()

let expected_lie_trace = [ Explore.Link_fail; Explore.Link_fail; Explore.Migrate 1 ]

let test_seeded_lie_counterexamples () =
  let m = lying_model () in
  let r = Explore.run m in
  Alcotest.(check bool) "complete" true r.Explore.r_stats.Explore.sr_complete;
  (match r.Explore.r_violations with
  | [ cg8; cg9 ] ->
      Alcotest.(check string) "CG008 reported" "CG008" cg8.Explore.vl_code;
      Alcotest.(check string) "CG008 names the interface" "ILieRaw" cg8.Explore.vl_subject;
      Alcotest.(check string) "CG009 reported" "CG009" cg9.Explore.vl_code;
      Alcotest.(check string) "CG009 names the class" "Lie.Back1" cg9.Explore.vl_subject;
      Alcotest.(check bool) "CG008 counterexample is the forced shortest trace" true
        (cg8.Explore.vl_trace = expected_lie_trace);
      Alcotest.(check bool) "CG009 counterexample is the same trace" true
        (cg9.Explore.vl_trace = expected_lie_trace)
  | vs -> Alcotest.fail (Printf.sprintf "expected exactly 2 violations, got %d" (List.length vs)));
  (* Both violations replay through the real breaker + factory. *)
  let outcome = Replay.run m expected_lie_trace in
  Alcotest.(check bool) "trace is executable" true (outcome.Replay.ro_invalid = None);
  Alcotest.(check bool) "replay manifests CG008" true (Replay.confirms outcome "CG008");
  Alcotest.(check bool) "replay manifests CG009" true (Replay.confirms outcome "CG009");
  (* The counterexamples survive an id round-trip (the JSON surface). *)
  List.iter
    (fun ev ->
      Alcotest.(check bool) "event id round-trips" true
        (Explore.event_of_id m (Explore.event_id m ev) = Some ev))
    expected_lie_trace

let test_unreachable_rung_warns () =
  (* No separated remotable traffic at rung 0: the breaker never sees a
     call outcome, never trips, and rung 1 is never installed. *)
  let m =
    hand_model
      ~groups:
        [ group 0 [ -1; 0 ] "main" [| Constraints.Client; Constraints.Client |] ~ladder:false ~truth:false ]
      ~edges:[] ~rungs:[ "primary"; "all-client" ] ()
  in
  let r = Explore.run m in
  Alcotest.(check int) "only the initial state" 1 r.Explore.r_stats.Explore.sr_states;
  Alcotest.(check bool) "complete" true r.Explore.r_stats.Explore.sr_complete;
  Alcotest.(check int) "no violations" 0 (List.length r.Explore.r_violations);
  match Explore.diagnostics m r with
  | [ d ] ->
      Alcotest.(check string) "CG010" "CG010" d.Lint.code;
      Alcotest.(check bool) "warning severity" true (d.Lint.severity = Lint.Warning);
      Alcotest.(check string) "names the dead rung" "all-client" d.Lint.subject
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 diagnostic, got %d" (List.length ds))

let test_pool_determinism () =
  let m = lying_model () in
  let seq = Explore.run m in
  let pool = Parallel.create ~domains:3 () in
  let par =
    Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> Explore.run ~pool m)
  in
  Alcotest.(check bool) "stats identical under a pool" true
    (seq.Explore.r_stats = par.Explore.r_stats);
  Alcotest.(check bool) "violations and traces identical under a pool" true
    (seq.Explore.r_violations = par.Explore.r_violations)

(* --- Property: the mutable breaker API IS the pure transition --------- *)

let prop_pure_transition_lockstep =
  let gen =
    QCheck.Gen.(
      pair (int_range 1 3) (list_size (int_bound 80) (pair (int_range 1 3_000) (int_bound 2))))
  in
  QCheck.Test.make ~name:"mutable breaker API tracks the pure transition bit for bit" ~count:200
    (QCheck.make gen) (fun (threshold, steps) ->
      let policy =
        {
          vpolicy with
          Health.hp_failure_threshold = threshold;
          hp_cooloff_us = 1_000.;
          hp_cooloff_max_us = 4_000.;
        }
      in
      let h = Health.create ~policy () in
      let snap = ref (Health.initial_snapshot policy) in
      let now = ref 0. in
      List.for_all
        (fun (dt, which) ->
          now := !now +. float_of_int dt;
          let input =
            match which with 0 -> Health.Observe | 1 -> Health.Success | _ -> Health.Failure
          in
          let tr_mut =
            match input with
            | Health.Observe -> Health.observe h ~now_us:!now
            | Health.Success -> Health.record_success h ~now_us:!now
            | Health.Failure -> Health.record_failure h ~now_us:!now
          in
          let snap', tr_pure = Health.transition policy !snap ~at_us:!now input in
          snap := snap';
          tr_mut = tr_pure && Health.snapshot h = !snap)
        steps)

(* --- Property: every counterexample replays --------------------------- *)

let gen_model =
  QCheck.Gen.(
    let* extra = int_range 1 3 in
    let gen_loc = map (fun b -> if b then Constraints.Server else Constraints.Client) bool in
    let* specs = list_repeat extra (quad bool bool gen_loc gen_loc) in
    let n = extra + 1 in
    let* kinds = list_repeat (n * (n - 1) / 2) (int_bound 3) in
    let groups =
      group 0 [ -1 ] "main" [| Constraints.Client; Constraints.Client |] ~ladder:false
        ~truth:false
      :: List.mapi
           (fun i (ladder, truth, t0, t1) ->
             group (i + 1) [ i ] (Printf.sprintf "G%d" (i + 1)) [| t0; t1 |] ~ladder ~truth)
           specs
    in
    let edges = ref [] and k = ref kinds in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        (match !k with
        | kind :: rest ->
            k := rest;
            if kind > 0 then
              edges :=
                edge a b
                  (Printf.sprintf "IE%d_%d" a b)
                  ~remotable:(kind land 1 = 1)
                  ~non_remotable:(kind land 2 = 2)
                :: !edges
        | [] -> ())
      done
    done;
    return (hand_model ~groups ~edges:(List.rev !edges) ~rungs:[ "primary"; "all-client" ] ()))

let prop_counterexamples_replay =
  QCheck.Test.make ~name:"every explorer counterexample replays to its violation" ~count:60
    (QCheck.make gen_model) (fun m ->
      let r = Explore.run m in
      List.for_all
        (fun v ->
          let outcome = Replay.run m v.Explore.vl_trace in
          outcome.Replay.ro_invalid = None && Replay.confirms outcome v.Explore.vl_code)
        r.Explore.r_violations)

(* --- The RTE acceptance run ------------------------------------------
   Vfy: Front (client) pumps blobs at Back (server); Back's constructor
   creates Helper (server) and every store touches it over a
   non-remotable interface (an Opaque handle).  A ladder whose safety
   table falsely marks Back migration-safe — while Helper correctly
   stays unsafe — lets a live failover migrate Back alone: the very
   next store faults at the marshaling layer, which is exactly the
   CG008/CG009 counterexample the verifier reports for the same
   model. *)

let fixed_retry =
  {
    Fault.rp_timeout_us = 1_000.;
    rp_max_attempts = 3;
    rp_backoff_us = 500.;
    rp_backoff_mult = 2.;
    rp_backoff_jitter = 0.;
  }

let breaker_policy =
  {
    Health.hp_failure_threshold = 2;
    hp_cooloff_us = 5_000.;
    hp_cooloff_mult = 2.;
    hp_cooloff_max_us = 1e6;
    hp_probe_successes = 1;
    hp_ewma_alpha = 0.2;
  }

let i_vfront =
  Itype.declare "IVfyFront" [ Idl_type.method_ "run" [ Idl_type.param "rounds" Idl_type.Int32 ] ]

let i_vstore =
  Itype.declare "IVfyStore"
    [ Idl_type.method_ ~ret:Idl_type.Int32 "store" [ Idl_type.param "data" Idl_type.Blob ] ]

let i_vraw =
  Itype.declare "IVfyRaw"
    [ Idl_type.method_ "touch" [ Idl_type.param "p" (Idl_type.Opaque "SHM") ] ]

let c_vhelper =
  Runtime.define_class "Vfy.Helper" (fun _ctx _self ->
      [
        Combuild.iface i_vraw
          [
            ( "touch",
              fun ctx args ->
                Runtime.charge ctx ~us:5.;
                Combuild.echo args Value.Unit );
          ];
      ])

let c_vback =
  Runtime.define_class "Vfy.Back" (fun ctx0 _self ->
      let helper =
        Runtime.create_instance ctx0 c_vhelper.Runtime.clsid ~iid:(Itype.iid i_vraw)
      in
      let stored = ref 0 in
      [
        Combuild.iface i_vstore
          [
            ( "store",
              fun ctx args ->
                stored := !stored + Combuild.get_blob args 0;
                ignore (Runtime.call_named ctx helper "touch" [ Value.Opaque_handle "SHM" ]);
                Runtime.charge ctx ~us:10.;
                Combuild.echo args (Value.Int !stored) );
          ];
      ])

let c_vfront =
  Runtime.define_class "Vfy.Front" (fun ctx0 _self ->
      let back = Runtime.create_instance ctx0 c_vback.Runtime.clsid ~iid:(Itype.iid i_vstore) in
      [
        Combuild.iface i_vfront
          [
            ( "run",
              fun ctx args ->
                let rounds = Combuild.get_int args 0 in
                for _ = 1 to rounds do
                  ignore (Runtime.call_named ctx back "store" [ Value.Blob 1_000 ])
                done;
                Combuild.echo args Value.Unit );
          ];
      ])

let vregistry () = Runtime.registry [ c_vfront; c_vback; c_vhelper ]

let vsplit cname =
  if String.equal cname "Vfy.Front" then Constraints.Client else Constraints.Server

(* One clean run pins down the (deterministic, creation-ordered)
   classifications of Back and Helper, and the classifier itself for
   model subjects. *)
let vdiscover =
  lazy
    (let ctx = Runtime.create_ctx (vregistry ()) in
     let classifier = Classifier.create Classifier.Ifcb in
     let rte =
       Rte.install_distributed ~classifier
         ~config:
           {
             Rte.dc_factory_policy = Factory.By_class vsplit;
             dc_network = Network.ethernet_10;
             dc_jitter = 0.;
             dc_seed = 1L;
             dc_faults = None;
             dc_retry = fixed_retry;
             dc_resilience = None;
             dc_fleet = None;
             dc_watch = None;
           }
         ctx
     in
     let front = Runtime.create_instance ctx c_vfront.Runtime.clsid ~iid:(Itype.iid i_vfront) in
     ignore (Runtime.call_named ctx front "run" [ Value.Int 1 ]);
     Rte.uninstall rte;
     let n = Classifier.classification_count classifier in
     let find name =
       let found = ref (-1) in
       for c = 0 to n - 1 do
         if String.equal (Classifier.class_of_classification classifier c) name then found := c
       done;
       if !found < 0 then Alcotest.fail (name ^ " was never classified");
       !found
     in
     (classifier, n, find "Vfy.Front", find "Vfy.Back", find "Vfy.Helper"))

let vdist placement =
  {
    Analysis.placement;
    cut_ns = 0;
    predicted_comm_us = 0.;
    server_count =
      Array.fold_left (fun a l -> if l = Constraints.Server then a + 1 else a) 0 placement;
    node_count = Array.length placement;
    algorithm = Coign_flowgraph.Mincut.Dinic;
  }

let lying_vfy_ladder () =
  let _, n, _, cback, chelper = Lazy.force vdiscover in
  let primary = Array.make n Constraints.Client in
  primary.(cback) <- Constraints.Server;
  primary.(chelper) <- Constraints.Server;
  let safe = Array.make n false in
  safe.(cback) <- true;
  Fallback.of_rungs ~migration_safe:safe
    [
      { Fallback.rg_name = "primary"; rg_distribution = vdist primary };
      {
        Fallback.rg_name = "all-client";
        rg_distribution = vdist (Array.make n Constraints.Client);
      };
    ]

let test_rte_unsafe_migration_faults () =
  (* Partition from t = 4000 forever — past both forwarded creations
     (Back's then Helper's nested one, ~2914 us of comm), so the
     topology starts intact.  The first store burns two retry cycles,
     trips the breaker, and the failover installs rung 1, migrating
     exactly the lying table's one "safe" classification — Back.  The
     rescued call completes (its body already ran server-side), but the
     second store's body now crosses Back(client) -> Helper(server) on
     the Opaque interface and faults at the marshaling layer. *)
  let _, _, _, cback, chelper = Lazy.force vdiscover in
  let ladder = lying_vfy_ladder () in
  let primary = (Fallback.rung ladder 0).Fallback.rg_distribution in
  let logger, events = Logger.event_recorder () in
  let ctx = Runtime.create_ctx (vregistry ()) in
  let classifier = Classifier.create Classifier.Ifcb in
  let rte =
    Rte.install_distributed ~classifier ~loggers:[ logger ]
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_classification primary;
          dc_network = Network.ethernet_10;
          dc_jitter = 0.;
          dc_seed = 1L;
          dc_faults = Some { Fault.zero with Fault.fs_partitions_us = [ (4_000., 1e9) ] };
          dc_retry = fixed_retry;
          dc_resilience = Some (Rte.resilience ~health:breaker_policy ladder);
          dc_fleet = None;
          dc_watch = None;
        }
      ctx
  in
  let front = Runtime.create_instance ctx c_vfront.Runtime.clsid ~iid:(Itype.iid i_vfront) in
  let marshal_fault =
    match Runtime.call_named ctx front "run" [ Value.Int 2 ] with
    | _ -> false
    | exception Hresult.Com_error (Hresult.E_cannot_marshal _) -> true
  in
  let stats = Rte.stats rte in
  Rte.uninstall rte;
  Alcotest.(check bool) "the unsafe migration faults at the marshaling layer" true marshal_fault;
  Alcotest.(check int) "breaker opened" 1 stats.Rte.st_breaker_opens;
  Alcotest.(check int) "one failover" 1 stats.Rte.st_failovers;
  Alcotest.(check int) "exactly one instance migrated" 1 stats.Rte.st_migrations;
  let migrations =
    List.filter_map
      (function
        | Event.Instance_migrated { classification; from_loc; to_loc; _ } ->
            Some (classification, from_loc, to_loc)
        | _ -> None)
      (events ())
  in
  Alcotest.(check bool) "the migration event names Back, server -> client" true
    (migrations = [ (cback, "server", "client") ]);
  Alcotest.(check bool) "Helper never moved" true
    (not (List.exists (fun (c, _, _) -> c = chelper) migrations))

let test_verifier_flags_the_vfy_lie () =
  (* The same lying ladder, checked statically: the verifier finds the
     CG009 unsafe migration and the CG008 separation the RTE run just
     manifested, with a replayable trace. *)
  let classifier, n, cfront, cback, chelper = Lazy.force vdiscover in
  let ladder = lying_vfy_ladder () in
  let icc = Icc.create () in
  Icc.record icc ~src:cfront ~dst:cback ~iface:"IVfyStore" ~remotable:true ~request:1_000
    ~reply:8;
  Icc.record icc ~src:cback ~dst:chelper ~iface:"IVfyRaw" ~remotable:false ~request:8 ~reply:0;
  let m =
    Model.build ~policy:vpolicy ~classifier ~icc ~ladder ~truth:(Array.make n false) ()
  in
  let r = Explore.run m in
  Alcotest.(check bool) "complete" true r.Explore.r_stats.Explore.sr_complete;
  let codes = List.map (fun v -> v.Explore.vl_code) r.Explore.r_violations in
  Alcotest.(check bool) "CG008 found" true (List.mem "CG008" codes);
  Alcotest.(check bool) "CG009 found" true (List.mem "CG009" codes);
  let cg9 =
    List.find (fun v -> String.equal v.Explore.vl_code "CG009") r.Explore.r_violations
  in
  Alcotest.(check string) "CG009 names Back" "Vfy.Back" cg9.Explore.vl_subject;
  let outcome = Replay.run m cg9.Explore.vl_trace in
  Alcotest.(check bool) "counterexample replays" true
    (outcome.Replay.ro_invalid = None && Replay.confirms outcome "CG009")

(* --- The bundled apps verify clean ------------------------------------ *)

let app_model app sc_id =
  let sc = App.scenario app sc_id in
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let classifier, icc =
    match Adps.load_profile image with
    | Some p -> p
    | None -> Alcotest.fail "profiled image holds no profile"
  in
  let session = Adps.analysis_session image in
  let net = Net_profiler.exact Network.ethernet_10 in
  let ladder = Adps.fallback_ladder ~image ~net () in
  let truth = Fallback.migration_safety session in
  Model.build ~classifier ~icc ~ladder ~truth ()

let test_apps_verify_clean () =
  List.iter
    (fun (app, sc_id) ->
      let m = app_model app sc_id in
      let r = Explore.run m in
      let name = app.App.app_name in
      Alcotest.(check bool) (name ^ ": exploration complete") true
        r.Explore.r_stats.Explore.sr_complete;
      Alcotest.(check int) (name ^ ": no violations") 0 (List.length r.Explore.r_violations);
      Alcotest.(check bool) (name ^ ": every rung installed") true
        (Array.for_all Fun.id r.Explore.r_stats.Explore.sr_rungs_reached);
      Alcotest.(check int) (name ^ ": no diagnostics") 0
        (List.length (Explore.diagnostics m r));
      Alcotest.(check bool) (name ^ ": symmetry reduction bites") true
        (Model.group_count m < m.Model.m_classifications))
    [ (Octarine.app, "o_oldwp0"); (Photodraw.app, "p_oldmsr"); (Benefits.app, "b_bigone") ]

(* --- Golden CLI output and the exit-code contract --------------------- *)

let exe = "../bin/coign.exe"
let golden = "golden/verify_octarine.txt"

let with_tmp f =
  let dir = Filename.temp_file "coign_verify" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_verify_golden () =
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        let out = Filename.concat dir "verify.txt" in
        let quiet args = Sys.command (Filename.quote_command exe args ^ " > /dev/null 2>&1") in
        Alcotest.(check int) "instrument" 0 (quiet [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        Alcotest.(check int) "profile" 0
          (quiet [ "profile"; img; "--scenario"; "o_oldwp0"; "-o"; img ]);
        let cmd =
          Filename.quote_command exe [ "verify"; img ]
          ^ " > " ^ Filename.quote out ^ " 2>/dev/null"
        in
        Alcotest.(check int) "verify exits 0 on a clean ladder" 0 (Sys.command cmd);
        Alcotest.(check string) "verify text output matches golden" (read_file golden)
          (read_file out);
        (* Exit-code contract: a clean verify stays 0 under --strict;
           lint on the same image carries warnings, so --strict gates
           it to 1 while the default run stays 0. *)
        Alcotest.(check int) "verify --strict still 0" 0 (quiet [ "verify"; img; "--strict" ]);
        Alcotest.(check int) "lint without --strict passes" 0 (quiet [ "lint"; img ]);
        Alcotest.(check int) "lint --strict gates warnings" 1 (quiet [ "lint"; img; "--strict" ]);
        (* A missing image is a usage error: cmdliner's 124, matching
           every other image-taking subcommand. *)
        Alcotest.(check int) "verify on a missing image fails" 124
          (quiet [ "verify"; Filename.concat dir "nope.img" ]))

let suite =
  [
    Alcotest.test_case "cooloff escalation chain and index" `Quick test_cooloff_chain;
    Alcotest.test_case "two-rung closure matches the hand count" `Quick
      test_two_rung_closure_hand_counted;
    Alcotest.test_case "unsafe-table closure shrinks to 6 states" `Quick
      test_two_rung_unsafe_closure_shrinks;
    Alcotest.test_case "depth bound truncates and is reported" `Quick test_depth_bound_truncates;
    Alcotest.test_case "seeded lying table yields CG008/CG009 counterexamples" `Quick
      test_seeded_lie_counterexamples;
    Alcotest.test_case "unreachable rung warns CG010" `Quick test_unreachable_rung_warns;
    Alcotest.test_case "exploration deterministic across domains" `Quick test_pool_determinism;
    QCheck_alcotest.to_alcotest ~long:false prop_pure_transition_lockstep;
    QCheck_alcotest.to_alcotest ~long:false prop_counterexamples_replay;
    Alcotest.test_case "rte: the lying table's migration faults live" `Quick
      test_rte_unsafe_migration_faults;
    Alcotest.test_case "verifier flags the same lie statically" `Quick
      test_verifier_flags_the_vfy_lie;
    Alcotest.test_case "bundled apps verify clean" `Slow test_apps_verify_clean;
    Alcotest.test_case "cli verify golden output and exit codes" `Slow test_verify_golden;
  ]
