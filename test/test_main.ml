let () =
  Alcotest.run "coign"
    [
      ("util", Test_util.suite);
      ("idl", Test_idl.suite);
      ("com", Test_com.suite);
      ("image", Test_image.suite);
      ("netsim", Test_netsim.suite);
      ("flowgraph", Test_flowgraph.suite);
      ("classifier", Test_classifier.suite);
      ("core", Test_core.suite);
      ("analysis", Test_analysis.suite);
      ("session", Test_session.suite);
      ("rte", Test_rte.suite);
      ("fault", Test_fault.suite);
      ("resilience", Test_resilience.suite);
      ("fleet", Test_fleet.suite);
      ("adps", Test_adps.suite);
      ("apps", Test_apps.suite);
      ("sim", Test_sim.suite);
      ("loadsim", Test_loadsim.suite);
      ("watch", Test_watch.suite);
      ("extensions", Test_extensions.suite);
      ("obs", Test_obs.suite);
      ("lint", Test_lint.suite);
      ("verify", Test_verify.suite);
      ("cli", Test_cli.suite);
    ]
