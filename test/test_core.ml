open Coign_util
open Coign_idl
open Coign_com
open Coign_core

let qtest = QCheck_alcotest.to_alcotest

(* --- Shadow stack --------------------------------------------------- *)

let frame i meth =
  Frame.make ~inst:i ~cls:"K" ~classification:i ~iface:"I" ~meth

let test_shadow_stack_order () =
  let s = Shadow_stack.create () in
  Shadow_stack.push s (frame 1 "a");
  Shadow_stack.push s (frame 2 "b");
  Alcotest.(check int) "depth" 2 (Shadow_stack.depth s);
  (match Shadow_stack.top s with
  | Some f -> Alcotest.(check int) "top" 2 f.Frame.f_inst
  | None -> Alcotest.fail "empty");
  Alcotest.(check (list int)) "walk order" [ 2; 1 ]
    (List.map (fun f -> f.Frame.f_inst) (Shadow_stack.walk s));
  Alcotest.(check (list int)) "limited walk" [ 2 ]
    (List.map (fun f -> f.Frame.f_inst) (Shadow_stack.walk ~limit:1 s));
  Shadow_stack.pop s;
  Shadow_stack.pop s;
  Alcotest.check_raises "underflow" (Invalid_argument "Shadow_stack.pop: empty stack")
    (fun () -> Shadow_stack.pop s)

(* --- Icc ------------------------------------------------------------ *)

let test_icc_record_and_entries () =
  let icc = Icc.create () in
  Icc.record icc ~src:1 ~dst:2 ~iface:"IQuery" ~remotable:true ~request:100 ~reply:50;
  Icc.record icc ~src:1 ~dst:2 ~iface:"IQuery" ~remotable:true ~request:100 ~reply:50;
  Icc.record icc ~src:2 ~dst:1 ~iface:"INotify" ~remotable:false ~request:10 ~reply:10;
  Alcotest.(check int) "calls" 3 (Icc.call_count icc);
  Alcotest.(check int) "bytes" 320 (Icc.total_bytes icc);
  let entries = Icc.entries icc in
  Alcotest.(check int) "two keys" 2 (List.length entries);
  let e = List.find (fun e -> e.Icc.iface = "IQuery") entries in
  Alcotest.(check int) "messages" 4 (Exp_bucket.message_count e.Icc.messages);
  Alcotest.(check bool) "remotable" true e.Icc.remotable;
  let e2 = List.find (fun e -> e.Icc.iface = "INotify") entries in
  Alcotest.(check bool) "non-remotable sticky" false e2.Icc.remotable

let test_icc_pair_entries () =
  let icc = Icc.create () in
  Icc.record icc ~src:1 ~dst:2 ~iface:"A" ~remotable:true ~request:1 ~reply:1;
  Icc.record icc ~src:2 ~dst:1 ~iface:"B" ~remotable:true ~request:1 ~reply:1;
  let pairs = Icc.pair_entries icc in
  Alcotest.(check int) "one unordered pair" 1 (List.length pairs);
  let (a, b), es = List.hd pairs in
  Alcotest.(check (pair int int)) "normalized" (1, 2) (a, b);
  Alcotest.(check int) "both ifaces" 2 (List.length es)

let test_icc_merge () =
  let a = Icc.create () and b = Icc.create () in
  Icc.record a ~src:1 ~dst:2 ~iface:"I" ~remotable:true ~request:10 ~reply:10;
  Icc.record b ~src:1 ~dst:2 ~iface:"I" ~remotable:false ~request:20 ~reply:20;
  let m = Icc.merge a b in
  Alcotest.(check int) "calls" 2 (Icc.call_count m);
  Alcotest.(check int) "bytes" 60 (Icc.total_bytes m);
  let e = List.hd (Icc.entries m) in
  Alcotest.(check bool) "non-remotable wins" false e.Icc.remotable

let test_icc_codec_preserves_totals () =
  let icc = Icc.create () in
  Icc.record icc ~src:0 ~dst:3 ~iface:"IQ" ~remotable:true ~request:123 ~reply:17;
  Icc.record icc ~src:0 ~dst:3 ~iface:"IQ" ~remotable:true ~request:124 ~reply:18;
  Icc.record icc ~src:(-1) ~dst:3 ~iface:"IR" ~remotable:false ~request:99_999 ~reply:0;
  let decoded = Icc.decode (Icc.encode icc) in
  Alcotest.(check int) "calls" (Icc.call_count icc) (Icc.call_count decoded);
  Alcotest.(check int) "bytes" (Icc.total_bytes icc) (Icc.total_bytes decoded);
  Alcotest.(check string) "encode fixpoint" (Icc.encode decoded)
    (Icc.encode (Icc.decode (Icc.encode decoded)))

let prop_icc_codec_fixpoint =
  QCheck.Test.make ~name:"icc encode/decode preserves counts and totals" ~count:100
    QCheck.(small_list (triple (int_bound 5) (int_bound 5) (int_bound 100_000)))
    (fun recs ->
      let icc = Icc.create () in
      List.iter
        (fun (src, dst, bytes) ->
          Icc.record icc ~src ~dst ~iface:"I" ~remotable:true ~request:bytes ~reply:(bytes / 2))
        recs;
      let d = Icc.decode (Icc.encode icc) in
      Icc.call_count d = Icc.call_count icc && Icc.total_bytes d = Icc.total_bytes icc)

(* --- Inst_comm ------------------------------------------------------ *)

let test_inst_comm () =
  let m = Inst_comm.create () in
  Inst_comm.record m ~src:1 ~dst:2 ~bytes:100;
  Inst_comm.record m ~src:2 ~dst:1 ~bytes:50;
  Inst_comm.record m ~src:1 ~dst:3 ~bytes:10;
  Alcotest.(check (pair int int)) "pair total" (2, 150) (Inst_comm.pair_total m 1 2);
  Alcotest.(check (pair int int)) "reversed" (2, 150) (Inst_comm.pair_total m 2 1);
  Alcotest.(check int) "messages" 3 (Inst_comm.message_count m);
  Alcotest.(check (list int)) "instances" [ 1; 2; 3 ] (Inst_comm.instances m);
  Alcotest.(check int) "peers of 1" 2 (List.length (Inst_comm.peers m 1))

(* --- Comm_vector ---------------------------------------------------- *)

let price ~count ~bytes = float_of_int count +. (float_of_int bytes /. 100.)

let mk_run pairs classify =
  let comm = Inst_comm.create () in
  List.iter (fun (src, dst, bytes) -> Inst_comm.record comm ~src ~dst ~bytes) pairs;
  {
    Comm_vector.classification_of = classify;
    comm;
    run_instances = Inst_comm.instances comm;
  }

let test_comm_vector_shape () =
  (* instance 1 talks to instance 2 (classification 0). *)
  let run = mk_run [ (1, 2, 200) ] (fun i -> if i = 2 then 0 else 1) in
  let v = Comm_vector.instance_vector run ~dims:2 ~price 1 in
  Alcotest.(check int) "dims+1" 3 (Array.length v);
  Alcotest.(check (float 1e-9)) "slot 0" (price ~count:1 ~bytes:200) v.(0);
  Alcotest.(check (float 1e-9)) "slot 1 empty" 0. v.(1)

let test_comm_vector_correlation_perfect () =
  let classify i = i mod 3 in
  let run1 = mk_run [ (1, 2, 100); (1, 3, 50) ] classify in
  let profiles = Comm_vector.classification_profiles ~runs:[ run1 ] ~dims:3 ~price in
  let corr = Comm_vector.average_correlation ~profiles ~test:run1 ~dims:3 ~price in
  Alcotest.(check (float 1e-9)) "self correlation" 1. corr

let test_comm_vector_unseen_classification () =
  let run1 = mk_run [ (1, 2, 100) ] (fun _ -> 0) in
  let profiles = Comm_vector.classification_profiles ~runs:[ run1 ] ~dims:1 ~price in
  (* test run maps instances to classification 5, which has no profile *)
  let test = mk_run [ (1, 2, 100) ] (fun _ -> 5) in
  Alcotest.(check (float 1e-9)) "zero for unseen" 0.
    (Comm_vector.average_correlation ~profiles ~test ~dims:1 ~price)

(* --- Logger --------------------------------------------------------- *)

let call_event ?(remotable = true) ~caller ~callee ~req ~rep () =
  Event.Interface_call
    {
      caller;
      caller_classification = caller * 10;
      callee;
      callee_classification = callee * 10;
      iface = "I";
      meth = "m";
      remotable;
      request_bytes = req;
      reply_bytes = rep;
    }

let test_profiling_logger () =
  let icc = Icc.create () and inst_comm = Inst_comm.create () in
  let logger = Logger.profiling ~icc ~inst_comm in
  logger.Logger.log (call_event ~caller:1 ~callee:2 ~req:100 ~rep:20 ());
  logger.Logger.log (Event.Component_instantiated { inst = 3; cname = "X"; classification = 1; creator = 0 });
  Alcotest.(check int) "icc calls" 1 (Icc.call_count icc);
  Alcotest.(check (pair int int)) "inst comm both directions" (2, 120)
    (Inst_comm.pair_total inst_comm 1 2)

let test_event_recorder_and_tee () =
  let rec_logger, events = Logger.event_recorder () in
  let counting, count = Logger.counting () in
  let tee = Logger.tee [ rec_logger; counting; Logger.null ] in
  tee.Logger.log (Event.Component_destroyed { inst = 5 });
  tee.Logger.log (call_event ~caller:1 ~callee:2 ~req:1 ~rep:1 ());
  Alcotest.(check int) "recorded" 2 (List.length (events ()));
  Alcotest.(check int) "counted" 2 (count ());
  match events () with
  | Event.Component_destroyed { inst } :: _ -> Alcotest.(check int) "order" 5 inst
  | _ -> Alcotest.fail "wrong order"

(* --- Informer ------------------------------------------------------- *)

let i_mixed =
  Itype.declare "IMixed"
    [
      Idl_type.method_ ~ret:(Idl_type.Iface "IOut") "m"
        [
          Idl_type.param "inp" Idl_type.Blob;
          Idl_type.param ~dir:Idl_type.Out "outp" Idl_type.Str;
          Idl_type.param ~dir:Idl_type.In_out "io" (Idl_type.Iface "IPeer");
        ];
    ]

let i_opaque =
  Itype.declare "IOpaqueTest" [ Idl_type.method_ "m" [ Idl_type.param "p" (Idl_type.Opaque "SHM") ] ]

let test_informer_measures () =
  let ins = [ Value.Blob 100; Value.Str ""; Value.Iface_ref 7 ] in
  let outs = [ Value.Blob 100; Value.Str "result"; Value.Iface_ref 8 ] in
  let sizes = Informer.measure_call i_mixed ~meth:0 ~ins ~outs ~ret:(Value.Iface_ref 9) in
  Alcotest.(check bool) "remotable" true sizes.Informer.remotable;
  Alcotest.(check int) "request"
    (Coign_idl.Marshal_size.scalar_overhead + 104 + Coign_idl.Marshal_size.objref_size)
    sizes.Informer.request_bytes;
  Alcotest.(check int) "reply"
    (Coign_idl.Marshal_size.scalar_overhead + 10 + (2 * Coign_idl.Marshal_size.objref_size))
    sizes.Informer.reply_bytes

let test_informer_non_remotable () =
  let sizes =
    Informer.measure_call i_opaque ~meth:0 ~ins:[ Value.Opaque_handle "SHM" ]
      ~outs:[ Value.Opaque_handle "SHM" ] ~ret:Value.Unit
  in
  Alcotest.(check bool) "flagged" false sizes.Informer.remotable;
  Alcotest.(check int) "zero request" 0 sizes.Informer.request_bytes

let test_informer_handles () =
  let ins = [ Value.Blob 1; Value.Str ""; Value.Iface_ref 7 ] in
  let outs = [ Value.Blob 1; Value.Str "x"; Value.Iface_ref 8 ] in
  Alcotest.(check (list int)) "incoming" [ 7 ] (Informer.incoming_handles i_mixed ~meth:0 ~ins);
  Alcotest.(check (list int)) "outgoing" [ 8; 9 ]
    (Informer.outgoing_handles i_mixed ~meth:0 ~outs ~ret:(Value.Iface_ref 9))

(* --- Constraints / static analysis ---------------------------------- *)

let test_static_analysis () =
  Alcotest.(check bool) "gui" true (Static_analysis.classify_api "user32.CreateWindowExW" = Static_analysis.Gui);
  Alcotest.(check bool) "storage exact" true
    (Static_analysis.classify_api "kernel32.ReadFile" = Static_analysis.Storage);
  Alcotest.(check bool) "odbc prefix" true
    (Static_analysis.classify_api "odbc32.SQLExecDirect" = Static_analysis.Storage);
  Alcotest.(check bool) "neutral" true
    (Static_analysis.classify_api "kernel32.VirtualAlloc" = Static_analysis.Neutral);
  Alcotest.(check bool) "gui wins" true
    (Static_analysis.class_verdict [ "kernel32.ReadFile"; "gdi32.BitBlt" ]
    = Static_analysis.Pin_client);
  Alcotest.(check bool) "storage only" true
    (Static_analysis.class_verdict [ "kernel32.ReadFile" ] = Static_analysis.Pin_server);
  Alcotest.(check bool) "free" true (Static_analysis.class_verdict [] = Static_analysis.Free)

let test_constraints_merge_conflict () =
  let a = Constraints.pin_class Constraints.empty ~cname:"X" Constraints.Client in
  let b = Constraints.pin_class Constraints.empty ~cname:"X" Constraints.Server in
  Alcotest.(check bool) "conflict raises" true
    (try
       ignore (Constraints.merge a b);
       false
     with Invalid_argument _ -> true);
  let ok = Constraints.merge a (Constraints.pin_class Constraints.empty ~cname:"Y" Constraints.Server) in
  Alcotest.(check (option bool)) "x client" (Some true)
    (Option.map (fun l -> l = Constraints.Client) (Constraints.class_pin ok ~cname:"X"))

let test_constraints_colocate_dedup () =
  let c = Constraints.colocate (Constraints.colocate Constraints.empty 3 1) 1 3 in
  Alcotest.(check (list (pair int int))) "normalized dedup" [ (1, 3) ]
    (Constraints.colocated_pairs c);
  Alcotest.(check (list (pair int int))) "self ignored" [ (1, 3) ]
    (Constraints.colocated_pairs (Constraints.colocate c 2 2))

let test_constraints_of_image () =
  let img =
    Coign_image.Binary_image.create ~name:"x"
      ~api_refs:
        [ ("Gui.Thing", [ "user32.GetDC" ]); ("Store.Thing", [ "kernel32.CreateFile" ]);
          ("Free.Thing", []) ]
      ()
  in
  let c = Constraints.of_image img in
  Alcotest.(check (option bool)) "gui pinned client" (Some true)
    (Option.map (fun l -> l = Constraints.Client) (Constraints.class_pin c ~cname:"Gui.Thing"));
  Alcotest.(check (option bool)) "storage pinned server" (Some true)
    (Option.map (fun l -> l = Constraints.Server) (Constraints.class_pin c ~cname:"Store.Thing"));
  Alcotest.(check (option bool)) "free unpinned" None
    (Option.map (fun l -> l = Constraints.Client) (Constraints.class_pin c ~cname:"Free.Thing"))

(* --- Drift signatures ----------------------------------------------- *)

let test_drift_similarity_hand_computed () =
  (* cos(a, b) = a·b / (|a||b|), computed by hand for small vectors. *)
  let sig_of l = Drift.of_counts l in
  let a = sig_of [ ((0, 1), 3); ((1, 2), 4) ] in
  Alcotest.(check (float 1e-12)) "identical" 1. (Drift.similarity a a);
  let scaled = sig_of [ ((0, 1), 30); ((1, 2), 40) ] in
  Alcotest.(check (float 1e-12)) "scale invariant" 1. (Drift.similarity a scaled);
  let orthogonal = sig_of [ ((2, 3), 7) ] in
  Alcotest.(check (float 1e-12)) "disjoint pairs" 0. (Drift.similarity a orthogonal);
  (* (3,4)·(4,3) / 25 = 24/25 *)
  let b = sig_of [ ((0, 1), 4); ((1, 2), 3) ] in
  Alcotest.(check (float 1e-12)) "24/25" 0.96 (Drift.similarity a b);
  (* (1,0)·(1,1) / (1·sqrt 2) = 1/sqrt 2 *)
  let unit = sig_of [ ((0, 1), 1) ] in
  let diag = sig_of [ ((0, 1), 1); ((1, 2), 1) ] in
  Alcotest.(check (float 1e-12)) "1/sqrt2" (1. /. sqrt 2.) (Drift.similarity unit diag);
  Alcotest.(check (float 1e-12)) "both empty" 1. (Drift.similarity (sig_of []) (sig_of []));
  Alcotest.(check (float 1e-12)) "empty vs non-empty" 0. (Drift.similarity (sig_of []) a);
  Alcotest.(check bool) "drifted below threshold" true
    (Drift.drifted ~threshold:0.97 ~profile:a b);
  Alcotest.(check bool) "not drifted above threshold" false
    (Drift.drifted ~threshold:0.95 ~profile:a b)

let gen_signature =
  QCheck.Gen.(
    list_size (int_bound 12)
      (pair (pair (int_bound 6) (int_bound 6)) (int_range 1 1000))
    >|= Drift.of_counts)

let arb_signature =
  QCheck.make
    ~print:(fun s ->
      String.concat ";"
        (List.map
           (fun ((a, b), w) -> Printf.sprintf "(%d,%d)=%g" a b w)
           (Drift.entries s)))
    gen_signature

let qcheck_drift_symmetric =
  QCheck.Test.make ~name:"drift similarity is symmetric" ~count:300
    (QCheck.pair arb_signature arb_signature)
    (fun (a, b) -> Float.abs (Drift.similarity a b -. Drift.similarity b a) < 1e-12)

let qcheck_drift_unit_interval =
  QCheck.Test.make ~name:"drift similarity lies in [0,1], self = 1" ~count:300
    (QCheck.pair arb_signature arb_signature)
    (fun (a, b) ->
      let s = Drift.similarity a b in
      s >= 0. && s <= 1. +. 1e-12
      && (Drift.pair_count a = 0 || Float.abs (Drift.similarity a a -. 1.) < 1e-12))

let suite =
  [
    Alcotest.test_case "shadow stack order" `Quick test_shadow_stack_order;
    Alcotest.test_case "icc record/entries" `Quick test_icc_record_and_entries;
    Alcotest.test_case "icc pair entries" `Quick test_icc_pair_entries;
    Alcotest.test_case "icc merge" `Quick test_icc_merge;
    Alcotest.test_case "icc codec preserves totals" `Quick test_icc_codec_preserves_totals;
    qtest prop_icc_codec_fixpoint;
    Alcotest.test_case "inst comm" `Quick test_inst_comm;
    Alcotest.test_case "comm vector shape" `Quick test_comm_vector_shape;
    Alcotest.test_case "comm vector self correlation" `Quick test_comm_vector_correlation_perfect;
    Alcotest.test_case "comm vector unseen classification" `Quick
      test_comm_vector_unseen_classification;
    Alcotest.test_case "profiling logger" `Quick test_profiling_logger;
    Alcotest.test_case "event recorder and tee" `Quick test_event_recorder_and_tee;
    Alcotest.test_case "informer measures" `Quick test_informer_measures;
    Alcotest.test_case "informer non-remotable" `Quick test_informer_non_remotable;
    Alcotest.test_case "informer handles" `Quick test_informer_handles;
    Alcotest.test_case "static analysis" `Quick test_static_analysis;
    Alcotest.test_case "constraints merge conflict" `Quick test_constraints_merge_conflict;
    Alcotest.test_case "constraints colocate dedup" `Quick test_constraints_colocate_dedup;
    Alcotest.test_case "constraints of image" `Quick test_constraints_of_image;
    Alcotest.test_case "drift similarity hand computed" `Quick
      test_drift_similarity_hand_computed;
    qtest qcheck_drift_symmetric;
    qtest qcheck_drift_unit_interval;
  ]
