open Coign_idl
open Coign_com
open Coign_netsim
open Coign_core
open Coign_apps
open Coign_sim
open Coign_util

(* --- The fault model in isolation ----------------------------------- *)

let mk ?(seed = 7L) sp = Fault.make ~seed sp

let fixed_retry =
  {
    Fault.rp_timeout_us = 1_000.;
    rp_max_attempts = 3;
    rp_backoff_us = 500.;
    rp_backoff_mult = 2.;
    rp_backoff_jitter = 0.;
  }

let test_zero_model_delivers () =
  let m = mk Fault.zero in
  for i = 0 to 999 do
    let at_us = float_of_int (i * 37) and bytes = (i * 91) mod 4096 in
    match Fault.verdict m ~at_us ~bytes with
    | Fault.Deliver -> ()
    | _ -> Alcotest.fail "zero model must deliver every message"
  done

let test_verdict_pure () =
  let sp =
    {
      Fault.fs_drop_rate = 0.5;
      fs_spike_rate = 0.3;
      fs_spike_mean_us = 200.;
      fs_partitions_us = [ (10_000., 12_000.) ];
      fs_crashes_us = [ (30_000., 31_000.) ];
    }
  in
  let m1 = mk sp and m2 = mk sp in
  for i = 0 to 499 do
    let at_us = float_of_int (i * 113) and bytes = i * 7 in
    let v = Fault.verdict m1 ~at_us ~bytes in
    Alcotest.(check bool) "verdict is a pure function" true (v = Fault.verdict m1 ~at_us ~bytes);
    Alcotest.(check bool) "verdict depends only on seed and spec" true
      (v = Fault.verdict m2 ~at_us ~bytes)
  done

let test_windows_force_drop () =
  let m =
    mk
      {
        Fault.zero with
        Fault.fs_partitions_us = [ (1_000., 2_000.) ];
        fs_crashes_us = [ (5_000., 6_000.) ];
      }
  in
  let v at = Fault.verdict m ~at_us:at ~bytes:100 in
  Alcotest.(check bool) "before partition" true (v 500. = Fault.Deliver);
  Alcotest.(check bool) "partition start is inclusive" true (v 1_000. = Fault.Drop);
  Alcotest.(check bool) "inside partition" true (v 1_500. = Fault.Drop);
  Alcotest.(check bool) "partition stop is exclusive" true (v 2_000. = Fault.Deliver);
  Alcotest.(check bool) "inside crash window" true (v 5_500. = Fault.Drop);
  Alcotest.(check bool) "after recovery" true (v 6_500. = Fault.Deliver)

let test_drop_rate_statistics () =
  let m = mk ~seed:0xACEL { Fault.zero with Fault.fs_drop_rate = 0.25 } in
  let n = 4_000 in
  let dropped = ref 0 in
  for i = 0 to n - 1 do
    match Fault.verdict m ~at_us:(float_of_int i *. 17.) ~bytes:256 with
    | Fault.Drop -> incr dropped
    | _ -> ()
  done;
  let rate = float_of_int !dropped /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "observed drop rate %.3f near 0.25" rate)
    true
    (rate > 0.20 && rate < 0.30)

(* --- One faulted call: hand-computed outcomes ----------------------- *)

let faulted_call ?model ?(retry = fixed_retry) ?(order = ref []) () =
  Fault.call ?model ~retry ~rng:(Prng.create 3L) ~now_us:0. ~request_bytes:100 ~reply_bytes:50
    ~request_us:(fun () ->
      order := "rq" :: !order;
      300.)
    ~reply_us:(fun () ->
      order := "rp" :: !order;
      400.)
    ()

let test_call_without_model () =
  let order = ref [] in
  let oc = faulted_call ~order () in
  Alcotest.(check bool) "ok" true oc.Fault.oc_ok;
  Alcotest.(check (float 0.)) "clean round trip" 700. oc.Fault.oc_time_us;
  Alcotest.(check int) "no retries" 0 oc.Fault.oc_retries;
  Alcotest.(check (float 0.)) "no fault time" 0. oc.Fault.oc_fault_us;
  (* The reply time is drawn first — the historical jitter draw order
     the interface documents (and zero-fault bit-identity relies on). *)
  Alcotest.(check (list string)) "reply drawn before request" [ "rq"; "rp" ] !order

let test_call_full_drop_exhausts_retries () =
  let order = ref [] in
  let oc = faulted_call ~model:(mk { Fault.zero with Fault.fs_drop_rate = 1.0 }) ~order () in
  (* Three attempts, all eaten on the request leg: two timeouts with
     backoffs 500 and 1000 between them, then the final timeout.
     1000 + 500 + 1000 + 1000 + 1000 = 4500, all of it fault time. *)
  Alcotest.(check bool) "abandoned" false oc.Fault.oc_ok;
  Alcotest.(check int) "retries" 2 oc.Fault.oc_retries;
  Alcotest.(check int) "drops" 3 oc.Fault.oc_drops;
  Alcotest.(check int) "no spikes" 0 oc.Fault.oc_spikes;
  Alcotest.(check (float 0.)) "elapsed" 4_500. oc.Fault.oc_time_us;
  Alcotest.(check (float 0.)) "all of it fault time" 4_500. oc.Fault.oc_fault_us;
  Alcotest.(check (list string)) "dropped requests draw no jitter" [] !order

let test_call_partition_then_recovery () =
  (* Attempts start at t = 0, 1500, 3500; the partition covers the
     first two, the third completes cleanly. *)
  let oc = faulted_call ~model:(mk { Fault.zero with Fault.fs_partitions_us = [ (0., 2_000.) ] }) () in
  Alcotest.(check bool) "recovered" true oc.Fault.oc_ok;
  Alcotest.(check int) "retries" 2 oc.Fault.oc_retries;
  Alcotest.(check int) "drops" 2 oc.Fault.oc_drops;
  Alcotest.(check (float 0.)) "fault time = 2 timeouts + 2 backoffs" 3_500. oc.Fault.oc_fault_us;
  Alcotest.(check (float 0.)) "total = fault time + round trip" 4_200. oc.Fault.oc_time_us

let test_call_reply_leg_drop () =
  (* The request (sent at 0) clears the window, but the reply lands at
     t = 300 inside [200, 1200): one retry, which clears both legs. *)
  let oc =
    faulted_call ~model:(mk { Fault.zero with Fault.fs_partitions_us = [ (200., 1_200.) ] }) ()
  in
  Alcotest.(check bool) "recovered" true oc.Fault.oc_ok;
  Alcotest.(check int) "one retry" 1 oc.Fault.oc_retries;
  Alcotest.(check int) "one drop" 1 oc.Fault.oc_drops;
  Alcotest.(check (float 0.)) "fault time = 1 timeout + 1 backoff" 1_500. oc.Fault.oc_fault_us;
  Alcotest.(check (float 0.)) "total" 2_200. oc.Fault.oc_time_us

let test_call_spikes_counted () =
  let oc =
    faulted_call
      ~model:(mk { Fault.zero with Fault.fs_spike_rate = 1.0; fs_spike_mean_us = 100. })
      ()
  in
  Alcotest.(check bool) "delivered" true oc.Fault.oc_ok;
  Alcotest.(check int) "both legs spiked" 2 oc.Fault.oc_spikes;
  Alcotest.(check int) "no drops" 0 oc.Fault.oc_drops;
  Alcotest.(check bool) "spikes cost time" true (oc.Fault.oc_fault_us > 0.);
  Alcotest.(check (float 1e-9)) "total = round trip + spikes"
    (700. +. oc.Fault.oc_fault_us)
    oc.Fault.oc_time_us

(* --- The distributed RTE under a fault matrix ------------------------
   A miniature split application, as in the RTE tests: Front (client)
   creates Back (server) and pumps blobs at it, so the run has one
   forwarded instantiation plus one remote store per round. *)

let i_front = Itype.declare "IFltFront" [ Idl_type.method_ "run" [ Idl_type.param "rounds" Idl_type.Int32 ] ]

let i_back =
  Itype.declare "IFltBack"
    [ Idl_type.method_ ~ret:Idl_type.Int32 "store" [ Idl_type.param "data" Idl_type.Blob ] ]

let c_back =
  Runtime.define_class "Flt.Back" (fun _ctx _self ->
      let stored = ref 0 in
      [
        Combuild.iface i_back
          [
            ( "store",
              fun ctx args ->
                stored := !stored + Combuild.get_blob args 0;
                Runtime.charge ctx ~us:10.;
                Combuild.echo args (Value.Int !stored) );
          ];
      ])

let c_front =
  Runtime.define_class "Flt.Front" (fun ctx0 _self ->
      let back = Runtime.create_instance ctx0 c_back.Runtime.clsid ~iid:(Itype.iid i_back) in
      [
        Combuild.iface i_front
          [
            ( "run",
              fun ctx args ->
                let rounds = Combuild.get_int args 0 in
                for _ = 1 to rounds do
                  ignore (Runtime.call_named ctx back "store" [ Value.Blob 1_000 ])
                done;
                Combuild.echo args Value.Unit );
          ];
      ])

let registry () = Runtime.registry [ c_front; c_back ]
let split cname = if String.equal cname "Flt.Back" then Constraints.Server else Constraints.Client

let run_split ?(jitter = 0.) ?(seed = 1L) ?faults ?(retry = fixed_retry) rounds =
  let ctx = Runtime.create_ctx (registry ()) in
  let classifier = Classifier.create Classifier.Ifcb in
  let rte =
    Rte.install_distributed ~classifier
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_class split;
          dc_network = Network.ethernet_10;
          dc_jitter = jitter;
          dc_seed = seed;
          dc_faults = faults;
          dc_retry = retry;
          dc_resilience = None;
          dc_fleet = None;
          dc_watch = None;
        }
      ctx
  in
  let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
  ignore (Runtime.call_named ctx front "run" [ Value.Int rounds ]);
  Rte.stats rte

let check_bits what expected actual =
  Alcotest.(check int64) what (Int64.bits_of_float expected) (Int64.bits_of_float actual)

let test_rte_zero_fault_identity () =
  (* An installed all-zero model must be bit-identical to no model at
     all — with and without jitter, so the stream split is exercised. *)
  List.iter
    (fun jitter ->
      let clean = run_split ~jitter ~seed:5L 4 in
      let zeroed = run_split ~jitter ~seed:5L ~faults:Fault.zero 4 in
      check_bits
        (Printf.sprintf "comm identical at jitter %g" jitter)
        clean.Rte.st_comm_us zeroed.Rte.st_comm_us;
      Alcotest.(check int) "remote calls" clean.Rte.st_remote_calls zeroed.Rte.st_remote_calls;
      Alcotest.(check int) "remote bytes" clean.Rte.st_remote_bytes zeroed.Rte.st_remote_bytes;
      Alcotest.(check int) "no retries" 0 zeroed.Rte.st_retries;
      Alcotest.(check int) "no drops" 0 zeroed.Rte.st_drops;
      Alcotest.(check int) "no fallbacks" 0 zeroed.Rte.st_fallbacks;
      Alcotest.(check int) "no abandoned calls" 0 zeroed.Rte.st_unreachable;
      check_bits "no fault time" 0. zeroed.Rte.st_fault_us)
    [ 0.; 0.03 ]

let test_rte_full_drop_degrades_instantiation () =
  (* Every message is lost: the forwarded Back instantiation exhausts
     its three attempts (4500 us, computed as in the call tests) and
     degrades to the creator's machine — after which the whole run is
     local and nothing else is charged. *)
  let s = run_split ~faults:{ Fault.zero with Fault.fs_drop_rate = 1.0 } 3 in
  Alcotest.(check int) "one fallback" 1 s.Rte.st_fallbacks;
  Alcotest.(check int) "no completed remote calls" 0 s.Rte.st_remote_calls;
  Alcotest.(check int) "retries" 2 s.Rte.st_retries;
  Alcotest.(check int) "drops" 3 s.Rte.st_drops;
  Alcotest.(check int) "nothing abandoned mid-call" 0 s.Rte.st_unreachable;
  check_bits "fault time" 4_500. s.Rte.st_fault_us;
  check_bits "comm is all fault" 4_500. s.Rte.st_comm_us

let test_rte_crash_window_degrades_instantiation () =
  (* A server crash covering the whole run reads differently in the
     spec but must behave exactly like a total drop. *)
  let s = run_split ~faults:{ Fault.zero with Fault.fs_crashes_us = [ (0., 1e9) ] } 3 in
  Alcotest.(check int) "one fallback" 1 s.Rte.st_fallbacks;
  Alcotest.(check int) "no completed remote calls" 0 s.Rte.st_remote_calls;
  Alcotest.(check int) "drops" 3 s.Rte.st_drops;
  check_bits "fault time" 4_500. s.Rte.st_fault_us

let test_rte_partition_retry_recovers () =
  (* A 2 ms partition from t = 0: the forwarded instantiation (sent at
     t = 0) loses two attempts, succeeds on the third at t = 3500, and
     the rest of the run proceeds past the window untouched. The whole
     run therefore costs exactly the clean run plus 3500 us. *)
  let clean = run_split 3 in
  let s = run_split ~faults:{ Fault.zero with Fault.fs_partitions_us = [ (0., 2_000.) ] } 3 in
  Alcotest.(check int) "no fallback" 0 s.Rte.st_fallbacks;
  Alcotest.(check int) "same remote calls as clean run" clean.Rte.st_remote_calls
    s.Rte.st_remote_calls;
  Alcotest.(check int) "retries" 2 s.Rte.st_retries;
  Alcotest.(check int) "drops" 2 s.Rte.st_drops;
  check_bits "fault time = 2 timeouts + 2 backoffs" 3_500. s.Rte.st_fault_us;
  Alcotest.(check (float 1e-6)) "comm = clean + fault time"
    (clean.Rte.st_comm_us +. 3_500.)
    s.Rte.st_comm_us

let test_rte_partition_mid_run_unreachable () =
  (* The partition opens after the instantiation completes and never
     closes: the first remote store exhausts its retries and the RTE
     gives up with E_unreachable. *)
  let ctx = Runtime.create_ctx (registry ()) in
  let classifier = Classifier.create Classifier.Ifcb in
  let rte =
    Rte.install_distributed ~classifier
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_class split;
          dc_network = Network.ethernet_10;
          dc_jitter = 0.;
          dc_seed = 1L;
          dc_faults = Some { Fault.zero with Fault.fs_partitions_us = [ (2_000., 1e9) ] };
          dc_retry = fixed_retry;
          dc_resilience = None;
          dc_fleet = None;
          dc_watch = None;
        }
      ctx
  in
  let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
  (match Runtime.call_named ctx front "run" [ Value.Int 2 ] with
  | _ -> Alcotest.fail "expected E_unreachable"
  | exception Hresult.Com_error (Hresult.E_unreachable _) -> ());
  let s = Rte.stats rte in
  Alcotest.(check int) "one abandoned call" 1 s.Rte.st_unreachable;
  Alcotest.(check int) "instantiation was not degraded" 0 s.Rte.st_fallbacks;
  Alcotest.(check int) "only the instantiation completed" 1 s.Rte.st_remote_calls;
  Alcotest.(check int) "the store burned all attempts" 3 s.Rte.st_drops

(* --- Replay under the same fault model ------------------------------- *)

let mini_trace () =
  let classifier = Classifier.create Classifier.Ifcb in
  let events =
    Replay.record_scenario ~registry:(registry ()) ~classifier (fun ctx ->
        let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
        ignore (Runtime.call_named ctx front "run" [ Value.Int 5 ]))
  in
  let placement c =
    if
      c >= 0
      && c < Classifier.classification_count classifier
      && String.equal (Classifier.class_of_classification classifier c) "Flt.Back"
    then Constraints.Server
    else Constraints.Client
  in
  (events, placement)

let test_replay_zero_fault_identity () =
  let events, placement = mini_trace () in
  let clean = Replay.replay ~events ~placement ~network:Network.ethernet_10 () in
  let zeroed =
    Replay.replay ~faults:(mk ~seed:9L Fault.zero) ~events ~placement
      ~network:Network.ethernet_10 ()
  in
  check_bits "comm identical" clean.Replay.re_comm_us zeroed.Replay.re_comm_us;
  Alcotest.(check int) "remote calls" clean.Replay.re_remote_calls zeroed.Replay.re_remote_calls;
  Alcotest.(check int) "remote bytes" clean.Replay.re_remote_bytes zeroed.Replay.re_remote_bytes;
  Alcotest.(check int) "no retries" 0 zeroed.Replay.re_retries;
  Alcotest.(check int) "no drops" 0 zeroed.Replay.re_drops;
  Alcotest.(check int) "no fallbacks" 0 zeroed.Replay.re_fallbacks;
  check_bits "no fault time" 0. zeroed.Replay.re_fault_us

let test_replay_full_drop_estimates_degradation () =
  let events, placement = mini_trace () in
  let est =
    Replay.replay
      ~faults:(mk { Fault.zero with Fault.fs_drop_rate = 1.0 })
      ~retry:fixed_retry ~events ~placement ~network:Network.ethernet_10 ()
  in
  Alcotest.(check int) "instantiation degrades" 1 est.Replay.re_fallbacks;
  Alcotest.(check int) "no completed remote calls" 0 est.Replay.re_remote_calls;
  Alcotest.(check int) "retries" 2 est.Replay.re_retries;
  Alcotest.(check int) "drops" 3 est.Replay.re_drops;
  Alcotest.(check int) "nothing abandoned" 0 est.Replay.re_unreachable;
  check_bits "fault time" 4_500. est.Replay.re_fault_us

let test_replay_counts_unreachable_and_continues () =
  (* Same mid-run partition as the RTE test — but the estimator counts
     every abandoned call instead of stopping at the first one. *)
  let events, placement = mini_trace () in
  let est =
    Replay.replay
      ~faults:(mk { Fault.zero with Fault.fs_partitions_us = [ (2_000., 1e9) ] })
      ~retry:fixed_retry ~events ~placement ~network:Network.ethernet_10 ()
  in
  Alcotest.(check int) "all five stores abandoned" 5 est.Replay.re_unreachable;
  Alcotest.(check int) "three drops each" 15 est.Replay.re_drops;
  Alcotest.(check int) "two retries each" 10 est.Replay.re_retries;
  Alcotest.(check int) "instantiation cleared before the window" 0 est.Replay.re_fallbacks;
  Alcotest.(check int) "only the instantiation completed" 1 est.Replay.re_remote_calls

(* --- Fault-grid reproducibility -------------------------------------- *)

let prepared_octarine =
  lazy
    (let app = Octarine.app in
     let sc = App.scenario app "o_oldwp0" in
     let image = Adps.instrument app.App.app_image in
     let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
     let net = Net_profiler.profile (Prng.create 42L) Network.ethernet_10 in
     let image, _ = Adps.analyze ~image ~net () in
     (image, app.App.app_registry, sc.App.sc_run))

let prop_faultsim_reproducible =
  QCheck.Test.make ~name:"faultsim grid byte-identical across runs and domain counts" ~count:4
    (QCheck.make
       QCheck.Gen.(pair (map Int64.of_int (int_bound 100_000)) (float_range 0. 0.3)))
    (fun (seed, drop) ->
      let image, registry, scenario = Lazy.force prepared_octarine in
      let go pool =
        Faultsim.to_json
          (Faultsim.run ?pool ~seed ~jitter:0.02 ~drop_rates:[ 0.; drop ]
             ~partitions_us:[ 0.; 20_000. ] ~image ~registry ~network:Network.ethernet_10
             scenario)
      in
      let j1 = go None in
      let j2 = go None in
      let pool = Parallel.create ~domains:3 () in
      let j3 =
        Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> go (Some pool))
      in
      String.equal j1 j2 && String.equal j1 j3)

(* --- Golden CLI output ------------------------------------------------ *)

let exe = "../bin/coign.exe"
let golden = "golden/faultsim_octarine.txt"

let with_tmp f =
  let dir = Filename.temp_file "coign_fault" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_faultsim_golden () =
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        let out = Filename.concat dir "faultsim.txt" in
        let quiet args = Sys.command (Filename.quote_command exe args ^ " > /dev/null 2>&1") in
        Alcotest.(check int) "instrument" 0 (quiet [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        Alcotest.(check int) "profile" 0
          (quiet [ "profile"; img; "--scenario"; "o_oldwp0"; "-o"; img ]);
        Alcotest.(check int) "analyze" 0
          (quiet [ "analyze"; img; "--network"; "ethernet10"; "-o"; img ]);
        let cmd =
          Filename.quote_command exe
            [
              "faultsim"; img; "--scenario"; "o_oldwp0"; "--network"; "ethernet10";
              "--drops"; "0,0.05,0.1"; "--partitions-ms"; "0,50"; "--jobs"; "1";
            ]
          ^ " > " ^ Filename.quote out ^ " 2>/dev/null"
        in
        Alcotest.(check int) "faultsim" 0 (Sys.command cmd);
        Alcotest.(check string) "faultsim text output matches golden" (read_file golden)
          (read_file out))

let suite =
  [
    Alcotest.test_case "zero model delivers everything" `Quick test_zero_model_delivers;
    Alcotest.test_case "verdicts are pure" `Quick test_verdict_pure;
    Alcotest.test_case "partition and crash windows force drops" `Quick test_windows_force_drop;
    Alcotest.test_case "drop rate statistics" `Quick test_drop_rate_statistics;
    Alcotest.test_case "call without model" `Quick test_call_without_model;
    Alcotest.test_case "call: full drop exhausts retries" `Quick
      test_call_full_drop_exhausts_retries;
    Alcotest.test_case "call: partition then recovery" `Quick test_call_partition_then_recovery;
    Alcotest.test_case "call: reply-leg drop" `Quick test_call_reply_leg_drop;
    Alcotest.test_case "call: spikes counted" `Quick test_call_spikes_counted;
    Alcotest.test_case "rte: zero-fault bit identity" `Quick test_rte_zero_fault_identity;
    Alcotest.test_case "rte: full drop degrades instantiation" `Quick
      test_rte_full_drop_degrades_instantiation;
    Alcotest.test_case "rte: crash window degrades instantiation" `Quick
      test_rte_crash_window_degrades_instantiation;
    Alcotest.test_case "rte: partition retry recovers" `Quick test_rte_partition_retry_recovers;
    Alcotest.test_case "rte: mid-run partition raises unreachable" `Quick
      test_rte_partition_mid_run_unreachable;
    Alcotest.test_case "replay: zero-fault bit identity" `Quick test_replay_zero_fault_identity;
    Alcotest.test_case "replay: full drop estimates degradation" `Quick
      test_replay_full_drop_estimates_degradation;
    Alcotest.test_case "replay: counts unreachable and continues" `Quick
      test_replay_counts_unreachable_and_continues;
    QCheck_alcotest.to_alcotest ~long:false prop_faultsim_reproducible;
    Alcotest.test_case "cli faultsim golden output" `Slow test_faultsim_golden;
  ]
