open Coign_flowgraph

let qtest = QCheck_alcotest.to_alcotest

(* --- Flow_network -------------------------------------------------- *)

let test_edge_accumulation () =
  let g = Flow_network.create ~n:3 in
  Flow_network.add_edge g ~src:0 ~dst:1 ~cap:5;
  Flow_network.add_edge g ~src:0 ~dst:1 ~cap:7;
  Alcotest.(check int) "accumulated" 12 (Flow_network.edge_cap g ~src:0 ~dst:1);
  Alcotest.(check int) "absent" 0 (Flow_network.edge_cap g ~src:1 ~dst:0)

let test_self_loop_ignored () =
  let g = Flow_network.create ~n:2 in
  Flow_network.add_edge g ~src:1 ~dst:1 ~cap:100;
  Alcotest.(check int) "no edges" 0 (Flow_network.edge_count g)

let test_infinity_saturation () =
  let g = Flow_network.create ~n:2 in
  Flow_network.add_edge g ~src:0 ~dst:1 ~cap:Flow_network.infinity_cap;
  Flow_network.add_edge g ~src:0 ~dst:1 ~cap:Flow_network.infinity_cap;
  Alcotest.(check int) "saturated" Flow_network.infinity_cap
    (Flow_network.edge_cap g ~src:0 ~dst:1)

let test_undirected () =
  let g = Flow_network.create ~n:2 in
  Flow_network.add_undirected g 0 1 ~cap:4;
  Alcotest.(check int) "fwd" 4 (Flow_network.edge_cap g ~src:0 ~dst:1);
  Alcotest.(check int) "bwd" 4 (Flow_network.edge_cap g ~src:1 ~dst:0)

let test_copy_isolated () =
  let g = Flow_network.create ~n:2 in
  Flow_network.add_edge g ~src:0 ~dst:1 ~cap:1;
  let h = Flow_network.copy g in
  Flow_network.add_edge h ~src:0 ~dst:1 ~cap:1;
  Alcotest.(check int) "original unchanged" 1 (Flow_network.edge_cap g ~src:0 ~dst:1)

(* --- Min cut: textbook instances ----------------------------------- *)

(* The classic CLRS figure 26.1-ish network. *)
let clrs_network () =
  let g = Flow_network.create ~n:6 in
  let e src dst cap = Flow_network.add_edge g ~src ~dst ~cap in
  e 0 1 16; e 0 2 13; e 1 2 10; e 2 1 4; e 1 3 12; e 3 2 9; e 2 4 14; e 4 3 7; e 3 5 20;
  e 4 5 4;
  g

let test_clrs_maxflow () =
  List.iter
    (fun alg ->
      Alcotest.(check int)
        (Mincut.algorithm_name alg ^ " value")
        23
        (Mincut.max_flow alg (clrs_network ()) ~s:0 ~t:5))
    Mincut.all_algorithms

let test_cut_edges_sum_to_value () =
  let g = clrs_network () in
  let cut = Mincut.min_cut g ~s:0 ~t:5 in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Mincut.cut_edges g cut) in
  Alcotest.(check int) "cut edges sum" cut.Mincut.value total

let test_cut_separates_terminals () =
  let g = clrs_network () in
  let cut = Mincut.min_cut g ~s:0 ~t:5 in
  Alcotest.(check bool) "s on source side" true cut.Mincut.source_side.(0);
  Alcotest.(check bool) "t on sink side" false cut.Mincut.source_side.(5)

let test_disconnected_zero_cut () =
  let g = Flow_network.create ~n:4 in
  Flow_network.add_edge g ~src:0 ~dst:1 ~cap:9;
  Flow_network.add_edge g ~src:2 ~dst:3 ~cap:9;
  let cut = Mincut.min_cut g ~s:0 ~t:3 in
  Alcotest.(check int) "zero" 0 cut.Mincut.value

let test_single_edge () =
  let g = Flow_network.create ~n:2 in
  Flow_network.add_edge g ~src:0 ~dst:1 ~cap:42;
  List.iter
    (fun alg ->
      Alcotest.(check int) (Mincut.algorithm_name alg) 42 (Mincut.max_flow alg g ~s:0 ~t:1))
    Mincut.all_algorithms

let test_terminal_validation () =
  let g = Flow_network.create ~n:3 in
  Alcotest.check_raises "s = t" (Invalid_argument "Mincut: s = t") (fun () ->
      ignore (Mincut.min_cut g ~s:1 ~t:1));
  Alcotest.check_raises "out of range" (Invalid_argument "Mincut: terminal out of range")
    (fun () -> ignore (Mincut.min_cut g ~s:0 ~t:9))

let test_infinity_edge_never_cut () =
  let g = Flow_network.create ~n:4 in
  Flow_network.add_undirected g 0 1 ~cap:Flow_network.infinity_cap;
  Flow_network.add_undirected g 1 2 ~cap:5;
  Flow_network.add_undirected g 2 3 ~cap:Flow_network.infinity_cap;
  let cut = Mincut.min_cut g ~s:0 ~t:3 in
  Alcotest.(check int) "cut at finite edge" 5 cut.Mincut.value;
  Alcotest.(check bool) "1 with source" true cut.Mincut.source_side.(1);
  Alcotest.(check bool) "2 with sink" false cut.Mincut.source_side.(2)

(* --- Min cut: randomized agreement --------------------------------- *)

let gen_graph =
  QCheck.Gen.(
    int_range 4 9 >>= fun n ->
    list_size (int_range 3 20)
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 50))
    >>= fun edges -> return (n, edges))

let arb_graph =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (a, b, c) -> Printf.sprintf "%d->%d:%d" a b c) edges)))
    gen_graph

let build (n, edges) =
  let g = Flow_network.create ~n in
  List.iter (fun (src, dst, cap) -> Flow_network.add_edge g ~src ~dst ~cap) edges;
  g

let prop_algorithms_agree =
  QCheck.Test.make ~name:"all max-flow algorithms agree" ~count:300 arb_graph (fun spec ->
      let flows =
        List.map (fun alg -> Mincut.max_flow alg (build spec) ~s:0 ~t:1) Mincut.all_algorithms
      in
      match flows with f :: rest -> List.for_all (( = ) f) rest | [] -> true)

let prop_each_algorithm_matches_brute_force =
  QCheck.Test.make ~name:"each algorithm matches brute force" ~count:150 arb_graph
    (fun spec ->
      let brute = Mincut.brute_force_min_cut (build spec) ~s:0 ~t:1 in
      List.for_all
        (fun alg -> Mincut.max_flow alg (build spec) ~s:0 ~t:1 = brute.Mincut.value)
        Mincut.all_algorithms)

let prop_matches_brute_force =
  QCheck.Test.make ~name:"min cut equals brute force" ~count:200 arb_graph (fun spec ->
      let g = build spec in
      let cut = Mincut.min_cut g ~s:0 ~t:1 in
      let brute = Mincut.brute_force_min_cut g ~s:0 ~t:1 in
      cut.Mincut.value = brute.Mincut.value)

let prop_cut_edges_sum =
  QCheck.Test.make ~name:"cut edge capacities sum to cut value" ~count:200 arb_graph
    (fun spec ->
      let g = build spec in
      let cut = Mincut.min_cut g ~s:0 ~t:1 in
      List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Mincut.cut_edges g cut)
      = cut.Mincut.value)

(* --- Relabel-to-front on analysis-sized graphs --------------------- *)

(* A deterministic generator for graphs big enough to have triggered
   the old relabel-to-front pathology (hundreds of nodes, 4n arcs). *)
let lcg_graph ~seed ~n ~m =
  let state = ref seed in
  let rand bound =
    state := ((!state * 25214903917) + 11) land 0x3FFFFFFFFFFF;
    !state mod bound
  in
  let g = Flow_network.create ~n in
  for _ = 1 to m do
    let a = rand n and b = rand n in
    if a <> b then Flow_network.add_edge g ~src:a ~dst:b ~cap:(1 + rand 10_000)
  done;
  g

let test_large_random_algorithms_agree () =
  for trial = 1 to 6 do
    let n = 20 + (trial * 7) in
    let g = lcg_graph ~seed:(42 + trial) ~n ~m:(4 * n) in
    let cuts =
      List.map
        (fun algorithm -> Mincut.min_cut ~algorithm g ~s:0 ~t:(n - 1))
        Mincut.all_algorithms
    in
    match cuts with
    | reference :: rest ->
        List.iteri
          (fun i c ->
            Alcotest.(check int)
              (Printf.sprintf "trial %d value (alg %d)" trial i)
              reference.Mincut.value c.Mincut.value;
            (* Every algorithm runs to a genuine max flow, so the
               minimal source side — residual reachability from s —
               is the same bool array, not merely some min cut. *)
            Alcotest.(check (array bool))
              (Printf.sprintf "trial %d source side (alg %d)" trial i)
              reference.Mincut.source_side c.Mincut.source_side)
          rest
    | [] -> ()
  done

let test_bench_sized_graph_rtf_matches_dinic () =
  (* The shape of the bench micro kernel that exposed the pathology:
     150 nodes, 600 undirected heavy edges. *)
  let n = 150 in
  let g = Flow_network.create ~n in
  let state = ref 77 in
  let rand bound =
    state := ((!state * 25214903917) + 11) land 0x3FFFFFFFFFFF;
    !state mod bound
  in
  for _ = 1 to n * 4 do
    let a = rand n and b = rand n in
    if a <> b then Flow_network.add_undirected g a b ~cap:(1 + rand 10_000)
  done;
  let rtf = Mincut.min_cut ~algorithm:Mincut.Relabel_to_front g ~s:0 ~t:1 in
  let dinic = Mincut.min_cut ~algorithm:Mincut.Dinic g ~s:0 ~t:1 in
  Alcotest.(check int) "value" dinic.Mincut.value rtf.Mincut.value;
  Alcotest.(check (array bool)) "source side" dinic.Mincut.source_side rtf.Mincut.source_side

(* --- CSR arena: reprice path vs legacy adjacency form -------------- *)

module R = Flow_network.Residual

(* Mimic a session arena: compile every potential edge as a
   zero-capacity slot, raise capacities through set_arc_cap, reset,
   solve in place with preallocated scratch. *)
let arena_cut ~n ~dedup ~cap_of =
  let edges =
    Array.of_list (List.map (fun (src, dst) -> (src, dst, 0)) dedup)
  in
  let arena, fwd = R.of_edges ~n edges in
  let scratch = Mincut.scratch arena in
  List.iteri (fun i (src, dst) -> R.set_arc_cap arena fwd.(i) (cap_of src dst)) dedup;
  R.reset arena;
  let value = Mincut.run arena scratch ~s:0 ~t:1 in
  (value, R.min_cut_side arena ~s:0, arena, scratch, fwd)

let legacy_cut ~n ~dedup ~cap_of =
  let g = Flow_network.create ~n in
  List.iter
    (fun (src, dst) -> Flow_network.add_edge g ~src ~dst ~cap:(cap_of src dst))
    dedup;
  Mincut.min_cut g ~s:0 ~t:1

let prop_arena_reprice_matches_legacy =
  QCheck.Test.make ~name:"CSR arena reprice equals legacy adjacency cut" ~count:200
    arb_graph (fun (n, edges) ->
      (* Aggregate to distinct directed pairs (the arena's contract),
         saturating like the adjacency form does. *)
      let caps = Hashtbl.create 16 in
      List.iter
        (fun (src, dst, cap) ->
          if src <> dst then
            let prior = Option.value ~default:0 (Hashtbl.find_opt caps (src, dst)) in
            Hashtbl.replace caps (src, dst)
              (min Flow_network.infinity_cap (prior + cap)))
        edges;
      let dedup =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) caps [])
      in
      let cap_of src dst = Hashtbl.find caps (src, dst) in
      let value, side, arena, scratch, fwd = arena_cut ~n ~dedup ~cap_of in
      let legacy = legacy_cut ~n ~dedup ~cap_of in
      let first_matches =
        value = legacy.Mincut.value && side = legacy.Mincut.source_side
      in
      (* Second round on the same arena: halved capacities, exercising
         set_arc_cap over dirty residuals plus reset. *)
      let cap_of2 src dst = cap_of src dst / 2 in
      List.iteri
        (fun i (src, dst) -> R.set_arc_cap arena fwd.(i) (cap_of2 src dst))
        dedup;
      R.reset arena;
      let value2 = Mincut.run arena scratch ~s:0 ~t:1 in
      let side2 = R.min_cut_side arena ~s:0 in
      let legacy2 = legacy_cut ~n ~dedup ~cap_of:cap_of2 in
      first_matches
      && value2 = legacy2.Mincut.value
      && side2 = legacy2.Mincut.source_side)

let test_scratch_reuse () =
  let g = clrs_network () in
  let arena = R.of_network g in
  let scratch = Mincut.scratch arena in
  let v1 = Mincut.run arena scratch ~s:0 ~t:5 in
  R.reset arena;
  let v2 = Mincut.run arena scratch ~s:0 ~t:5 in
  Alcotest.(check int) "first solve" 23 v1;
  Alcotest.(check int) "re-solve on reused scratch" 23 v2

(* --- Multiway ------------------------------------------------------ *)

let test_multiway_two_terminals_exact () =
  let g = clrs_network () in
  let p = Multiway.multiway_cut g ~terminals:[ 0; 5 ] in
  let exact = Mincut.min_cut g ~s:0 ~t:5 in
  Alcotest.(check int) "reduces to exact cut" exact.Mincut.value p.Multiway.cost

let test_multiway_three_terminals () =
  (* A triangle of cheap bridges between three heavy clusters. *)
  let g = Flow_network.create ~n:9 in
  let heavy a b = Flow_network.add_undirected g a b ~cap:100 in
  let light a b = Flow_network.add_undirected g a b ~cap:3 in
  (* clusters {0,1,2} {3,4,5} {6,7,8} with terminals 0,3,6 *)
  heavy 0 1; heavy 1 2; heavy 3 4; heavy 4 5; heavy 6 7; heavy 7 8;
  light 2 3; light 5 6; light 8 0;
  let p = Multiway.multiway_cut g ~terminals:[ 0; 3; 6 ] in
  (* Each undirected bridge contributes both directed arcs (2 * 3). *)
  Alcotest.(check int) "cost is the three bridges" 18 p.Multiway.cost;
  Alcotest.(check int) "cluster 1 intact" p.Multiway.assignment.(0) p.Multiway.assignment.(1);
  Alcotest.(check int) "cluster 2 intact" p.Multiway.assignment.(3) p.Multiway.assignment.(4);
  Alcotest.(check int) "cluster 3 intact" p.Multiway.assignment.(6) p.Multiway.assignment.(8)

let test_multiway_terminal_ownership () =
  let g = Flow_network.create ~n:5 in
  Flow_network.add_undirected g 0 1 ~cap:1;
  Flow_network.add_undirected g 2 3 ~cap:1;
  let p = Multiway.multiway_cut g ~terminals:[ 0; 2; 4 ] in
  Alcotest.(check int) "terminal 0" 0 p.Multiway.assignment.(0);
  Alcotest.(check int) "terminal 2" 1 p.Multiway.assignment.(2);
  Alcotest.(check int) "terminal 4" 2 p.Multiway.assignment.(4)

let prop_multiway_cost_consistent =
  QCheck.Test.make ~name:"multiway reported cost equals recomputed cost" ~count:100 arb_graph
    (fun spec ->
      let g = build spec in
      let n = Flow_network.node_count g in
      let terminals = [ 0; 1; n - 1 ] |> List.sort_uniq compare in
      if List.length terminals < 2 then true
      else
        let p = Multiway.multiway_cut g ~terminals in
        Multiway.partition_cost g p.Multiway.assignment = p.Multiway.cost)

let suite =
  [
    Alcotest.test_case "edge accumulation" `Quick test_edge_accumulation;
    Alcotest.test_case "self loop ignored" `Quick test_self_loop_ignored;
    Alcotest.test_case "infinity saturation" `Quick test_infinity_saturation;
    Alcotest.test_case "undirected" `Quick test_undirected;
    Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
    Alcotest.test_case "clrs maxflow (all algorithms)" `Quick test_clrs_maxflow;
    Alcotest.test_case "cut edges sum to value" `Quick test_cut_edges_sum_to_value;
    Alcotest.test_case "cut separates terminals" `Quick test_cut_separates_terminals;
    Alcotest.test_case "disconnected zero cut" `Quick test_disconnected_zero_cut;
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "terminal validation" `Quick test_terminal_validation;
    Alcotest.test_case "infinity edge never cut" `Quick test_infinity_edge_never_cut;
    qtest prop_algorithms_agree;
    qtest prop_each_algorithm_matches_brute_force;
    qtest prop_matches_brute_force;
    qtest prop_cut_edges_sum;
    Alcotest.test_case "large random graphs: all algorithms agree" `Quick
      test_large_random_algorithms_agree;
    Alcotest.test_case "bench-sized graph: rtf matches dinic" `Quick
      test_bench_sized_graph_rtf_matches_dinic;
    qtest prop_arena_reprice_matches_legacy;
    Alcotest.test_case "scratch reuse across solves" `Quick test_scratch_reuse;
    Alcotest.test_case "multiway two terminals exact" `Quick test_multiway_two_terminals_exact;
    Alcotest.test_case "multiway three terminals" `Quick test_multiway_three_terminals;
    Alcotest.test_case "multiway terminal ownership" `Quick test_multiway_terminal_ownership;
    qtest prop_multiway_cost_consistent;
  ]
