(* Integration test of the command-line toolchain: the stages of paper
   Figure 1 run as separate processes over image files, exactly as a
   user would drive them. *)

let exe = "../bin/coign.exe"

let run_cmd args =
  let cmd = Filename.quote_command exe args in
  Sys.command (cmd ^ " > /dev/null 2>&1")

let with_tmp f =
  let dir = Filename.temp_file "coign_cli" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let check_ok what rc = Alcotest.(check int) what 0 rc

let test_full_pipeline () =
  if not (Sys.file_exists exe) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        check_ok "profile wp0" (run_cmd [ "profile"; img; "--scenario"; "o_oldwp0"; "-o"; img ]);
        check_ok "profile tb0" (run_cmd [ "profile"; img; "--scenario"; "o_oldtb0"; "-o"; img ]);
        check_ok "analyze" (run_cmd [ "analyze"; img; "--network"; "ethernet10"; "-o"; img ]);
        check_ok "show" (run_cmd [ "show"; img ]);
        check_ok "run" (run_cmd [ "run"; img; "--scenario"; "o_oldtb0"; "--compare-default" ]);
        (* The distributed image is a valid, decodable binary image. *)
        let image = Coign_image.Binary_image.load img in
        Alcotest.(check bool) "distribution stored" true
          (Coign_core.Adps.load_distribution image <> None))

let test_log_combine_flow () =
  if not (Sys.file_exists exe) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        let scratch = Filename.concat dir "scratch.img" in
        let log1 = Filename.concat dir "wp0.cpl" in
        let log2 = Filename.concat dir "tb0.cpl" in
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        check_ok "profile+log 1"
          (run_cmd [ "profile"; img; "--scenario"; "o_oldwp0"; "--log"; log1; "-o"; scratch ]);
        check_ok "profile+log 2"
          (run_cmd [ "profile"; img; "--scenario"; "o_oldtb0"; "--log"; log2; "-o"; scratch ]);
        check_ok "combine" (run_cmd [ "combine"; img; log1; log2; "-o"; img ]);
        check_ok "analyze combined" (run_cmd [ "analyze"; img; "-o"; img ]);
        let image = Coign_image.Binary_image.load img in
        let classifier, _ = Option.get (Coign_core.Adps.load_distribution image) in
        Alcotest.(check bool) "classifications from both runs" true
          (Coign_core.Classifier.classification_count classifier > 30))

let test_error_reporting () =
  if not (Sys.file_exists exe) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "x.img" in
        Alcotest.(check bool) "unknown app rejected" true
          (run_cmd [ "instrument"; "--app"; "nonesuch"; "-o"; img ] <> 0);
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "benefits"; "-o"; img ]);
        Alcotest.(check bool) "unknown scenario rejected" true
          (run_cmd [ "profile"; img; "--scenario"; "o_oldwp0"; "-o"; img ] <> 0);
        Alcotest.(check bool) "analyze without profile rejected" true
          (run_cmd [ "analyze"; img; "-o"; img ] <> 0))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_trace_golden () =
  (* `coign trace --format spans` output is timed on the deterministic
     sim clock, so the whole trace of a fixed scenario is golden. *)
  let golden = "golden/trace_benefits_addone.txt" in
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "ben.img" in
        let out = Filename.concat dir "spans.txt" in
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "benefits"; "-o"; img ]);
        check_ok "trace"
          (run_cmd
             [ "trace"; img; "--scenario"; "b_addone"; "--format"; "spans"; "-o"; out ]);
        Alcotest.(check string) "span trace golden" (read_file golden) (read_file out))

let test_trace_chrome_and_metrics_parse () =
  if not (Sys.file_exists exe) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "ben.img" in
        let chrome = Filename.concat dir "trace.json" in
        let prom = Filename.concat dir "metrics.json" in
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "benefits"; "-o"; img ]);
        check_ok "trace chrome"
          (run_cmd
             [ "trace"; img; "--scenario"; "b_addone"; "--format"; "chrome"; "-o"; chrome ]);
        let j = Coign_util.Jsonu.parse_exn (read_file chrome) in
        (match Coign_util.Jsonu.member "traceEvents" j with
        | Some (Coign_util.Jsonu.Arr evs) ->
            Alcotest.(check bool) "trace events present" true (List.length evs > 100)
        | _ -> Alcotest.fail "chrome trace lacks traceEvents");
        let cmd =
          Filename.quote_command exe
            [ "metrics"; img; "--scenario"; "b_addone"; "--json" ]
        in
        check_ok "metrics --json" (Sys.command (cmd ^ " > " ^ Filename.quote prom ^ " 2>/dev/null"));
        let m = Coign_util.Jsonu.parse_exn (read_file prom) in
        Alcotest.(check bool) "rte counters exported" true
          (Coign_util.Jsonu.member "coign_rte_intercepted_calls_total" m <> None))

let run_cmd_to out args =
  let cmd = Filename.quote_command exe args in
  Sys.command (cmd ^ " > " ^ Filename.quote out ^ " 2>/dev/null")

let test_load_golden_octarine () =
  let golden = "golden/load_octarine.txt" in
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        let out = Filename.concat dir "load.txt" in
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        check_ok "profile wp0" (run_cmd [ "profile"; img; "--scenario"; "o_oldwp0"; "-o"; img ]);
        check_ok "profile tb0" (run_cmd [ "profile"; img; "--scenario"; "o_oldtb0"; "-o"; img ]);
        check_ok "analyze" (run_cmd [ "analyze"; img; "-o"; img ]);
        check_ok "load"
          (run_cmd_to out
             [
               "load"; img; "--sessions"; "200"; "--arrival"; "poisson:1"; "--seed"; "11";
               "--scenarios"; "o_oldwp0,o_oldtb0";
             ]);
        Alcotest.(check string) "load text golden" (read_file golden) (read_file out))

let test_watch_golden_octarine () =
  let golden = "golden/watch_octarine.txt" in
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        let out1 = Filename.concat dir "watch1.txt" in
        let out4 = Filename.concat dir "watch4.txt" in
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        let watch_args jobs out =
          run_cmd_to out
            [
              "watch"; img; "--profile"; "o_oldwp0"; "--phases";
              "o_oldwp0;o_oldwp7,o_oldwp7,o_oldwp7;o_oldwp7,o_oldwp7,o_oldwp7";
              "--jobs"; jobs;
            ]
        in
        check_ok "watch" (watch_args "1" out1);
        Alcotest.(check string) "watch text golden" (read_file golden) (read_file out1);
        (* The three regimes evaluate on separate domains without
           changing a byte of the report. *)
        check_ok "watch --jobs 4" (watch_args "4" out4);
        Alcotest.(check string) "jobs byte-identical" (read_file out1) (read_file out4))

let test_load_golden_ingest () =
  let golden = "golden/load_ingest.txt" in
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "ing.img" in
        let out1 = Filename.concat dir "load1.txt" in
        let out4 = Filename.concat dir "load4.txt" in
        let js = Filename.concat dir "load.json" in
        check_ok "instrument" (run_cmd [ "instrument"; "--app"; "ingest"; "-o"; img ]);
        check_ok "profile strm1" (run_cmd [ "profile"; img; "--scenario"; "i_strm1"; "-o"; img ]);
        check_ok "profile replay" (run_cmd [ "profile"; img; "--scenario"; "i_replay"; "-o"; img ]);
        check_ok "analyze" (run_cmd [ "analyze"; img; "-o"; img ]);
        let args jobs =
          [
            "load"; img; "--sessions"; "200"; "--arrival"; "bursty:30,250,500"; "--seed"; "11";
            "--scenarios"; "i_strm1,i_replay"; "--jobs"; jobs;
          ]
        in
        check_ok "load --jobs 1" (run_cmd_to out1 (args "1"));
        check_ok "load --jobs 4" (run_cmd_to out4 (args "4"));
        Alcotest.(check string) "load text golden" (read_file golden) (read_file out1);
        Alcotest.(check string) "jobs 1 == jobs 4, byte-identical" (read_file out1)
          (read_file out4);
        (* The JSON form parses with the in-repo parser and carries the
           percentile fields. *)
        check_ok "load --json" (run_cmd_to js (args "1" @ [ "--json" ]));
        let j = Coign_util.Jsonu.parse_exn (read_file js) in
        List.iter
          (fun field ->
            Alcotest.(check bool) (field ^ " present") true
              (Coign_util.Jsonu.member field j <> None))
          [ "p50_us"; "p95_us"; "p99_us"; "throughput_per_s"; "availability" ])

let suite =
  [
    Alcotest.test_case "cli full pipeline" `Slow test_full_pipeline;
    Alcotest.test_case "cli log/combine flow" `Slow test_log_combine_flow;
    Alcotest.test_case "cli error reporting" `Quick test_error_reporting;
    Alcotest.test_case "cli trace golden" `Slow test_trace_golden;
    Alcotest.test_case "cli trace/metrics json" `Slow test_trace_chrome_and_metrics_parse;
    Alcotest.test_case "cli load golden octarine" `Slow test_load_golden_octarine;
    Alcotest.test_case "cli load golden ingest" `Slow test_load_golden_ingest;
    Alcotest.test_case "cli watch golden octarine" `Slow test_watch_golden_octarine;
  ]
