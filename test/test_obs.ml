(* The observability subsystem: JSON kernel, event serialization, the
   stable log line format, span tracing, the metrics registry, pipeline
   self-profiling — and the zero-cost guarantee that none of it changes
   a run that does not opt in. *)

open Coign_util
open Coign_core
open Coign_apps
open Coign_obs

let qtest = QCheck_alcotest.to_alcotest

(* --- Jsonu ---------------------------------------------------------- *)

let roundtrip j = Jsonu.parse_exn (Jsonu.to_string j)

let test_jsonu_print_parse () =
  let j =
    Jsonu.Obj
      [
        ("null", Jsonu.Null);
        ("flag", Jsonu.Bool true);
        ("n", Jsonu.Int (-42));
        ("x", Jsonu.Float 1.5);
        ("s", Jsonu.Str "tab\there \"quoted\" back\\slash\nnewline");
        ("a", Jsonu.Arr [ Jsonu.Int 1; Jsonu.Str ""; Jsonu.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "round-trips" true (Jsonu.equal j (roundtrip j))

let test_jsonu_float_never_reparses_as_int () =
  Alcotest.(check bool) "2.0 stays float" true
    (match roundtrip (Jsonu.Float 2.) with Jsonu.Float _ -> true | _ -> false);
  Alcotest.(check bool) "int stays int" true
    (match roundtrip (Jsonu.Int 2) with Jsonu.Int 2 -> true | _ -> false);
  Alcotest.(check string) "nan renders null" "null" (Jsonu.to_string (Jsonu.Float Float.nan))

let test_jsonu_unicode_escapes () =
  (* \u00e9 = é in UTF-8; a surrogate pair decodes to a 4-byte scalar. *)
  Alcotest.(check bool) "BMP escape" true
    (Jsonu.parse_exn {|"caf\u00e9"|} = Jsonu.Str "caf\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (Jsonu.parse_exn {|"\ud83d\ude00"|} = Jsonu.Str "\xf0\x9f\x98\x80")

let test_jsonu_rejects_garbage () =
  let bad s = match Jsonu.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "trailing garbage" true (bad "1 2");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "flase")

let qcheck_jsonu_string_roundtrip =
  QCheck.Test.make ~name:"any string survives escape/parse" ~count:300 QCheck.string
    (fun s -> roundtrip (Jsonu.Str s) = Jsonu.Str s)

(* --- Event serialization -------------------------------------------- *)

let all_event_shapes =
  [
    Event.Component_instantiated
      { inst = 3; cname = "Mini.Back\twith\ttabs"; classification = 1; creator = 0 };
    Event.Component_destroyed { inst = 3 };
    Event.Interface_instantiated { owner = 2; iface = "IBack"; handle = 7 };
    Event.Interface_destroyed { owner = 2; iface = "IBack"; handle = 7 };
    Event.Interface_call
      {
        caller = 1;
        caller_classification = 0;
        callee = 2;
        callee_classification = 1;
        iface = "IBack";
        meth = "store";
        remotable = true;
        request_bytes = 1024;
        reply_bytes = 8;
      };
    Event.Call_retried { iface = "IBack"; meth = "store"; retries = 2 };
    Event.Instantiation_degraded { cname = "Mini.Back"; classification = 1 };
    Event.Breaker_opened { at_us = 9_000; failures = 2; drops = 6; spikes = 0 };
    Event.Breaker_closed { at_us = 28_500; probes = 1 };
    Event.Failover
      { at_us = 9_000; rung = "all-client"; from_rung = 0; to_rung = 1; migrated = 3; stranded = 1 };
    Event.Failback { at_us = 28_500; rung = "primary"; from_rung = 1; to_rung = 0; migrated = 0 };
    Event.Instance_migrated
      { at_us = 9_000; inst = 3; classification = 1; from_loc = "server0"; to_loc = "client" };
    Event.Drift_detected { at_us = 848_137; similarity = 0.714; threshold = 0.9; window_pairs = 78 };
    Event.Repartitioned
      {
        at_us = 848_137;
        similarity = 0.714;
        from_servers = 2;
        to_servers = 3;
        migrated = 2;
        left = 0;
      };
    Event.Replica_promoted { at_us = 61_000; shard = 2; from_host = 1; to_host = 2 };
    Event.Shard_split { at_us = 120_500; shard = 0; new_shard = 3; moved = 4; to_host = 1 };
    Event.Pool_resized { at_us = 61_000; from_hosts = 3; to_hosts = 2; shards = 4; migrated = 5 };
  ]

let test_event_json_roundtrip_all_constructors () =
  List.iter
    (fun e ->
      (* ... including through the printed text, as a scraper would. *)
      let j = Jsonu.parse_exn (Jsonu.to_string (Event.to_json e)) in
      match Event.of_json j with
      | Ok e' -> Alcotest.(check bool) (Event.kind_name e) true (e = e')
      | Error msg -> Alcotest.fail (Event.kind_name e ^ ": " ^ msg))
    all_event_shapes

let test_event_of_json_errors () =
  let err j = match Event.of_json j with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown kind" true
    (err (Jsonu.Obj [ ("event", Jsonu.Str "nonesuch") ]));
  Alcotest.(check bool) "missing field" true
    (err (Jsonu.Obj [ ("event", Jsonu.Str "component_destroyed") ]));
  Alcotest.(check bool) "mistyped field" true
    (err (Jsonu.Obj [ ("event", Jsonu.Str "component_destroyed"); ("inst", Jsonu.Str "x") ]))

let gen_event =
  let open QCheck.Gen in
  let s = string_size ~gen:char (int_bound 12) in
  let i = int_bound 10_000 in
  oneof
    [
      ( i >>= fun inst ->
        s >>= fun cname ->
        i >>= fun classification ->
        i >>= fun creator ->
        return (Event.Component_instantiated { inst; cname; classification; creator }) );
      (i >>= fun inst -> return (Event.Component_destroyed { inst }));
      ( i >>= fun owner ->
        s >>= fun iface ->
        i >>= fun handle -> return (Event.Interface_instantiated { owner; iface; handle }) );
      ( i >>= fun owner ->
        s >>= fun iface ->
        i >>= fun handle -> return (Event.Interface_destroyed { owner; iface; handle }) );
      ( i >>= fun caller ->
        i >>= fun caller_classification ->
        i >>= fun callee ->
        i >>= fun callee_classification ->
        s >>= fun iface ->
        s >>= fun meth ->
        bool >>= fun remotable ->
        i >>= fun request_bytes ->
        i >>= fun reply_bytes ->
        return
          (Event.Interface_call
             {
               caller;
               caller_classification;
               callee;
               callee_classification;
               iface;
               meth;
               remotable;
               request_bytes;
               reply_bytes;
             }) );
      ( s >>= fun iface ->
        s >>= fun meth ->
        i >>= fun retries -> return (Event.Call_retried { iface; meth; retries }) );
      ( s >>= fun cname ->
        i >>= fun classification ->
        return (Event.Instantiation_degraded { cname; classification }) );
      ( i >>= fun at_us ->
        i >>= fun failures ->
        i >>= fun drops ->
        i >>= fun spikes -> return (Event.Breaker_opened { at_us; failures; drops; spikes }) );
      ( i >>= fun at_us ->
        i >>= fun probes -> return (Event.Breaker_closed { at_us; probes }) );
      ( i >>= fun at_us ->
        s >>= fun rung ->
        i >>= fun from_rung ->
        i >>= fun to_rung ->
        i >>= fun migrated ->
        i >>= fun stranded ->
        return (Event.Failover { at_us; rung; from_rung; to_rung; migrated; stranded }) );
      ( i >>= fun at_us ->
        s >>= fun rung ->
        i >>= fun from_rung ->
        i >>= fun to_rung ->
        i >>= fun migrated ->
        return (Event.Failback { at_us; rung; from_rung; to_rung; migrated }) );
      ( i >>= fun at_us ->
        i >>= fun inst ->
        i >>= fun classification ->
        s >>= fun from_loc ->
        s >>= fun to_loc ->
        return (Event.Instance_migrated { at_us; inst; classification; from_loc; to_loc }) );
      ( i >>= fun at_us ->
        float_bound_inclusive 1. >>= fun similarity ->
        float_bound_inclusive 1. >>= fun threshold ->
        i >>= fun window_pairs ->
        return (Event.Drift_detected { at_us; similarity; threshold; window_pairs }) );
      ( i >>= fun at_us ->
        float_bound_inclusive 1. >>= fun similarity ->
        i >>= fun from_servers ->
        i >>= fun to_servers ->
        i >>= fun migrated ->
        i >>= fun left ->
        return
          (Event.Repartitioned { at_us; similarity; from_servers; to_servers; migrated; left })
      );
      ( i >>= fun at_us ->
        i >>= fun shard ->
        i >>= fun from_host ->
        i >>= fun to_host ->
        return (Event.Replica_promoted { at_us; shard; from_host; to_host }) );
      ( i >>= fun at_us ->
        i >>= fun shard ->
        i >>= fun new_shard ->
        i >>= fun moved ->
        i >>= fun to_host ->
        return (Event.Shard_split { at_us; shard; new_shard; moved; to_host }) );
      ( i >>= fun at_us ->
        i >>= fun from_hosts ->
        i >>= fun to_hosts ->
        i >>= fun shards ->
        i >>= fun migrated ->
        return (Event.Pool_resized { at_us; from_hosts; to_hosts; shards; migrated }) );
    ]

let qcheck_event_roundtrip =
  QCheck.Test.make ~name:"event json round-trip (arbitrary strings)" ~count:500
    (QCheck.make ~print:Event.to_line gen_event)
    (fun e -> Event.of_json (Jsonu.parse_exn (Jsonu.to_string (Event.to_json e))) = Ok e)

(* --- Logger line format (golden), tee, tally ------------------------ *)

let test_to_channel_golden () =
  (* The exact bytes Logger.to_channel emits — a compatibility surface;
     update this test only with a deliberate format change. *)
  let expected =
    "component_instantiated\tinst=1\tcname=\"Mini.Front\"\tclassification=0\tcreator=0\n\
     interface_call\tcaller=1\tcaller_classification=0\tcallee=2\tcallee_classification=1\t\
     iface=\"IBack\"\tmeth=\"store\"\tremotable=true\trequest_bytes=1024\treply_bytes=8\n\
     call_retried\tiface=\"IBack\"\tmeth=\"store\"\tretries=2\n\
     instantiation_degraded\tcname=\"A \\\"odd\\\"\\tname\"\tclassification=1\n"
  in
  let events =
    [
      Event.Component_instantiated
        { inst = 1; cname = "Mini.Front"; classification = 0; creator = 0 };
      Event.Interface_call
        {
          caller = 1;
          caller_classification = 0;
          callee = 2;
          callee_classification = 1;
          iface = "IBack";
          meth = "store";
          remotable = true;
          request_bytes = 1024;
          reply_bytes = 8;
        };
      Event.Call_retried { iface = "IBack"; meth = "store"; retries = 2 };
      Event.Instantiation_degraded { cname = "A \"odd\"\tname"; classification = 1 };
    ]
  in
  let path = Filename.temp_file "coign_obs" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let logger = Logger.to_channel oc in
      List.iter logger.Logger.log events;
      close_out oc;
      let ic = open_in_bin path in
      let got = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "stable line format" expected got)

let test_tee_ordering () =
  (* Each event reaches the sinks in list order before the next event
     is delivered to anyone. *)
  let order = ref [] in
  let mk name = { Logger.logger_name = name; log = (fun e -> order := (name, e) :: !order) } in
  let tee = Logger.tee [ mk "a"; mk "b" ] in
  let e1 = Event.Component_destroyed { inst = 1 } in
  let e2 = Event.Component_destroyed { inst = 2 } in
  tee.Logger.log e1;
  tee.Logger.log e2;
  Alcotest.(check bool) "a then b, per event" true
    (List.rev !order = [ ("a", e1); ("b", e1); ("a", e2); ("b", e2) ])

let test_tally_key_stability () =
  (* Tally keys are Event.kind_name — one stable key per constructor. *)
  let tally, read = Logger.tally () in
  List.iter tally.Logger.log all_event_shapes;
  Alcotest.(check (list (pair string int)))
    "one key per constructor, sorted"
    [
      ("breaker_closed", 1);
      ("breaker_opened", 1);
      ("call_retried", 1);
      ("component_destroyed", 1);
      ("component_instantiated", 1);
      ("drift_detected", 1);
      ("failback", 1);
      ("failover", 1);
      ("instance_migrated", 1);
      ("instantiation_degraded", 1);
      ("interface_call", 1);
      ("interface_destroyed", 1);
      ("interface_instantiated", 1);
      ("pool_resized", 1);
      ("repartitioned", 1);
      ("replica_promoted", 1);
      ("shard_split", 1);
    ]
    (read ())

(* --- Metrics registry ----------------------------------------------- *)

let test_metrics_counters_and_gauges () =
  let reg = Metrics.registry () in
  let c = Metrics.counter reg "requests_total" in
  Metrics.inc c;
  Metrics.inc ~by:2.5 c;
  Metrics.inc_int c 2;
  Alcotest.(check (float 1e-9)) "counter accumulates" 5.5 (Metrics.counter_value c);
  Alcotest.(check bool) "negative increment rejected" true
    (try
       Metrics.inc ~by:(-1.) c;
       false
     with Invalid_argument _ -> true);
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 3.;
  Metrics.set g 1.5;
  Alcotest.(check (float 1e-9)) "gauge takes last value" 1.5 (Metrics.gauge_value g)

let test_metrics_identity_and_mismatch () =
  let reg = Metrics.registry () in
  let c1 = Metrics.counter reg ~labels:[ ("kind", "local") ] "req" in
  let c2 = Metrics.counter reg ~labels:[ ("kind", "local") ] "req" in
  let c3 = Metrics.counter reg ~labels:[ ("kind", "forwarded") ] "req" in
  Metrics.inc c1;
  Metrics.inc c2;
  Metrics.inc c3;
  Alcotest.(check (float 1e-9)) "same identity accumulates" 2. (Metrics.counter_value c1);
  Alcotest.(check (float 1e-9)) "different labels are distinct" 1. (Metrics.counter_value c3);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Metrics.gauge reg "req");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "invalid name rejected" true
    (try
       ignore (Metrics.counter reg "1bad name");
       false
     with Invalid_argument _ -> true)

let test_metrics_histogram () =
  let reg = Metrics.registry () in
  let h = Metrics.histogram reg "bytes" in
  Metrics.observe h 100;
  Metrics.observe h 5;
  Metrics.observe h (-7);
  Alcotest.(check int) "count" 3 (Metrics.histogram_count h);
  Alcotest.(check int) "sum (negative clamped)" 105 (Metrics.histogram_sum h)

let sample_registry () =
  let reg = Metrics.registry () in
  let c = Metrics.counter reg ~help:"calls seen" "coign_calls_total" in
  Metrics.inc_int c 7;
  Metrics.set (Metrics.gauge reg "coign_depth") 2.;
  let h = Metrics.histogram reg ~labels:[ ("dir", "request") ] "coign_bytes" in
  Metrics.observe h 100;
  Metrics.observe h 90_000;
  reg

let test_metrics_exposition_deterministic () =
  let a = Metrics.prometheus (sample_registry ()) in
  let b = Metrics.prometheus (sample_registry ()) in
  Alcotest.(check string) "byte-identical exposition" a b;
  let contains sub =
    let n = String.length sub and m = String.length a in
    let rec go i = i + n <= m && (String.equal (String.sub a i n) sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "help line" true (contains "# HELP coign_calls_total calls seen");
  Alcotest.(check bool) "type line" true (contains "# TYPE coign_bytes histogram");
  Alcotest.(check bool) "cumulative +Inf bucket" true
    (contains "coign_bytes_bucket{dir=\"request\",le=\"+Inf\"} 2");
  Alcotest.(check bool) "histogram sum" true (contains "coign_bytes_sum{dir=\"request\"} 90100")

let test_prometheus_escaping () =
  (* The exposition format escapes exactly three characters in quoted
     label values — not JSON's repertoire. Per character: *)
  Alcotest.(check string) "backslash" {|a\\b|} (Metrics.escape_label_value {|a\b|});
  Alcotest.(check string) "double quote" {|a\"b|} (Metrics.escape_label_value {|a"b|});
  Alcotest.(check string) "line feed" {|a\nb|} (Metrics.escape_label_value "a\nb");
  Alcotest.(check string) "tab passes raw" "a\tb" (Metrics.escape_label_value "a\tb");
  Alcotest.(check string) "carriage return passes raw" "a\rb"
    (Metrics.escape_label_value "a\rb");
  Alcotest.(check string) "high byte passes raw" "caf\xc3\xa9"
    (Metrics.escape_label_value "caf\xc3\xa9");
  Alcotest.(check string) "empty" "" (Metrics.escape_label_value "");
  (* HELP text is unquoted: backslash and line feed only. *)
  Alcotest.(check string) "help backslash" {|a\\b|} (Metrics.escape_help {|a\b|});
  Alcotest.(check string) "help line feed" {|a\nb|} (Metrics.escape_help "a\nb");
  Alcotest.(check string) "help quote stays raw" {|a"b|} (Metrics.escape_help {|a"b|})

let test_prometheus_escaping_end_to_end () =
  (* The tricky characters, pushed through the full exposition. *)
  let reg = Metrics.registry () in
  let c =
    Metrics.counter reg ~help:"line1\nline2 back\\slash \"quoted\""
      ~labels:[ ("path", "C:\\tmp\n\"x\"\ttail") ]
      "coign_esc_total"
  in
  Metrics.inc c;
  let text = Metrics.prometheus reg in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.equal (String.sub text i n) sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "label value escaped" true
    (contains "path=\"C:\\\\tmp\\n\\\"x\\\"\ttail\"");
  Alcotest.(check bool) "help escaped, quotes raw" true
    (contains "# HELP coign_esc_total line1\\nline2 back\\\\slash \"quoted\"");
  (* The multi-line help and label value must not smuggle raw line
     feeds into the exposition: every line still starts as a comment or
     a series sample. *)
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool) "line starts with # or the family name" true
          (String.length line >= 1
          && (line.[0] = '#' || String.length line >= 9 && String.sub line 0 9 = "coign_esc")))
    (String.split_on_char '\n' text)

let test_metrics_json_parses () =
  let j = Jsonu.parse_exn (Metrics.to_json_string (sample_registry ())) in
  Alcotest.(check bool) "counter present" true
    (Jsonu.member "coign_calls_total" j <> None);
  Alcotest.(check bool) "stable" true
    (String.equal
       (Metrics.to_json_string (sample_registry ()))
       (Metrics.to_json_string (sample_registry ())))

(* --- Trace ----------------------------------------------------------- *)

let test_trace_nesting_and_emission_order () =
  let sink, spans = Trace.collector () in
  let tr = Trace.create ~trace_id:9 sink in
  let a = Trace.open_span tr ~name:"a" ~cat:"call" ~at_us:0. in
  let b = Trace.open_span tr ~name:"b" ~cat:"call" ~at_us:1. in
  Trace.close_span tr b ~at_us:3.;
  let c = Trace.open_span tr ~name:"c" ~cat:"create" ~at_us:3. in
  Trace.close_span tr c ~at_us:3.;
  Trace.close_span tr a ~args:[ ("k", Jsonu.Int 1) ] ~at_us:10.;
  Alcotest.(check int) "all closed" 0 (Trace.depth tr);
  Alcotest.(check int) "three spans" 3 (Trace.span_count tr);
  match spans () with
  | [ sb; sc; sa ] ->
      Alcotest.(check string) "close order: b first" "b" sb.Span.sp_name;
      Alcotest.(check string) "then c" "c" sc.Span.sp_name;
      Alcotest.(check string) "parent last" "a" sa.Span.sp_name;
      Alcotest.(check bool) "b child of a" true (sb.Span.sp_parent = Some a);
      Alcotest.(check bool) "c child of a (b closed)" true (sc.Span.sp_parent = Some a);
      Alcotest.(check bool) "a is root" true (sa.Span.sp_parent = None);
      Alcotest.(check (float 1e-9)) "duration" 2. sb.Span.sp_dur_us;
      Alcotest.(check int) "trace id" 9 sa.Span.sp_trace
  | l -> Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length l))

let test_trace_lifo_enforced () =
  let tr = Trace.create Trace.null_sink in
  let a = Trace.open_span tr ~name:"a" ~cat:"call" ~at_us:0. in
  let _b = Trace.open_span tr ~name:"b" ~cat:"call" ~at_us:0. in
  Alcotest.(check bool) "closing the outer span first is rejected" true
    (try
       Trace.close_span tr a ~at_us:1.;
       false
     with Invalid_argument _ -> true)

let test_trace_with_span_error () =
  let sink, spans = Trace.collector () in
  let tr = Trace.create sink in
  let clock = Fun.const 0. in
  Alcotest.(check bool) "exception propagates" true
    (try
       Trace.with_span tr ~name:"boom" ~cat:"call" ~clock (fun () -> raise Exit)
     with Exit -> true);
  match spans () with
  | [ s ] ->
      Alcotest.(check bool) "span closed with error attribute" true
        (List.mem_assoc "error" s.Span.sp_args);
      Alcotest.(check int) "stack unwound" 0 (Trace.depth tr)
  | _ -> Alcotest.fail "expected exactly one span"

let test_chrome_json_shape () =
  let sink, spans = Trace.collector () in
  let tr = Trace.create sink in
  Trace.close_span tr (Trace.open_span tr ~name:"IBack.store" ~cat:"call" ~at_us:1.) ~at_us:2.5;
  let j = Jsonu.parse_exn (Trace.chrome_json (spans ())) in
  match Jsonu.member "traceEvents" j with
  | Some (Jsonu.Arr [ ev ]) ->
      Alcotest.(check bool) "complete event" true (Jsonu.member "ph" ev = Some (Jsonu.Str "X"));
      Alcotest.(check bool) "name carried" true
        (Jsonu.member "name" ev = Some (Jsonu.Str "IBack.store"));
      Alcotest.(check bool) "microsecond timestamps" true
        (Jsonu.member "ts" ev <> None && Jsonu.member "dur" ev <> None)
  | _ -> Alcotest.fail "traceEvents missing or wrong arity"

(* --- Profiler -------------------------------------------------------- *)

let fake_clock () =
  let now = ref 0. in
  (now, Profiler.create ~clock:(fun () -> !now) ())

let test_profiler_phases () =
  let now, p = fake_clock () in
  Profiler.time p "cut" (fun () -> now := !now +. 2.);
  Profiler.time p "cut" (fun () -> now := !now +. 5.);
  Profiler.time p "pricing" (fun () -> now := !now +. 1.);
  (match Profiler.phases p with
  | [ cut; pricing ] ->
      Alcotest.(check string) "first-use order" "cut" cut.Profiler.ph_name;
      Alcotest.(check int) "count" 2 cut.Profiler.ph_count;
      Alcotest.(check (float 1e-9)) "total" 7. cut.Profiler.ph_total_s;
      Alcotest.(check (float 1e-9)) "max" 5. cut.Profiler.ph_max_s;
      Alcotest.(check string) "second phase" "pricing" pricing.Profiler.ph_name
  | _ -> Alcotest.fail "expected two phases");
  Alcotest.(check (float 1e-9)) "grand total" 8. (Profiler.total_s p)

let test_profiler_records_on_exception () =
  let now, p = fake_clock () in
  (try
     Profiler.time p "boom" (fun () ->
         now := !now +. 3.;
         raise Exit)
   with Exit -> ());
  match Profiler.phases p with
  | [ ph ] ->
      Alcotest.(check int) "count" 1 ph.Profiler.ph_count;
      Alcotest.(check (float 1e-9)) "time still recorded" 3. ph.Profiler.ph_total_s
  | _ -> Alcotest.fail "expected one phase"

let test_profiler_absorb_and_reset () =
  let na, a = fake_clock () in
  let nb, b = fake_clock () in
  Profiler.time a "cut" (fun () -> na := !na +. 2.);
  Profiler.time b "cut" (fun () -> nb := !nb +. 5.);
  Profiler.time b "validation" (fun () -> nb := !nb +. 1.);
  Profiler.absorb a b;
  (match Profiler.phases a with
  | [ cut; v ] ->
      Alcotest.(check int) "counts add" 2 cut.Profiler.ph_count;
      Alcotest.(check (float 1e-9)) "totals add" 7. cut.Profiler.ph_total_s;
      Alcotest.(check (float 1e-9)) "max is max" 5. cut.Profiler.ph_max_s;
      Alcotest.(check string) "new phase arrives" "validation" v.Profiler.ph_name
  | _ -> Alcotest.fail "expected two phases after absorb");
  Alcotest.(check int) "absorb leaves the source alone" 2 (List.length (Profiler.phases b));
  Profiler.reset a;
  Alcotest.(check int) "reset empties" 0 (List.length (Profiler.phases a))

(* --- Pipeline integration (real application runs) -------------------- *)

let network = Coign_netsim.Network.ethernet_10

let profile_with obs =
  let app = Benefits.app in
  let sc = App.scenario app "b_addone" in
  let image = Adps.instrument app.App.app_image in
  match obs with
  | None -> (snd (Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run), None)
  | Some () ->
      let sink, spans = Trace.collector () in
      let tracer = Trace.create sink in
      let metrics = Metrics.registry () in
      let stats =
        snd (Adps.profile ~tracer ~metrics ~image ~registry:app.App.app_registry sc.App.sc_run)
      in
      ((stats : Adps.profile_stats), Some (spans (), metrics))

let test_rte_spans_mirror_shadow_stack () =
  let _, obs = profile_with (Some ()) in
  let spans, metrics = Option.get obs in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 100);
  let by_id = Hashtbl.create 512 in
  List.iter (fun s -> Hashtbl.replace by_id s.Span.sp_id s) spans;
  List.iter
    (fun s ->
      Alcotest.(check bool) "non-negative duration" true (s.Span.sp_dur_us >= 0.);
      Alcotest.(check bool) "category" true
        (s.Span.sp_cat = "call" || s.Span.sp_cat = "create");
      match s.Span.sp_parent with
      | None -> ()
      | Some p ->
          let parent = Hashtbl.find by_id p in
          (* A child opens after and closes before its parent. *)
          Alcotest.(check bool) "parent opened first" true (p < s.Span.sp_id);
          Alcotest.(check bool) "child inside parent" true
            (parent.Span.sp_start_us <= s.Span.sp_start_us
            && s.Span.sp_start_us +. s.Span.sp_dur_us
               <= parent.Span.sp_start_us +. parent.Span.sp_dur_us +. 1e-6))
    spans;
  (* Every intercepted operation got exactly one span, and the metric
     agrees with the trace. *)
  let calls = List.length (List.filter (fun s -> s.Span.sp_cat = "call") spans) in
  let json = Jsonu.parse_exn (Metrics.to_json_string metrics) in
  Alcotest.(check bool) "metrics exported" true
    (Jsonu.member "coign_rte_intercepted_calls_total" json <> None);
  Alcotest.(check bool) "call spans exist" true (calls > 0)

let test_traces_deterministic () =
  let _, a = profile_with (Some ()) in
  let _, b = profile_with (Some ()) in
  let spans_a, _ = Option.get a and spans_b, _ = Option.get b in
  Alcotest.(check bool) "two identical runs trace identically" true (spans_a = spans_b)

let test_observability_zero_cost_profiling () =
  let bare, _ = profile_with None in
  let observed, _ = profile_with (Some ()) in
  Alcotest.(check bool) "profile stats bit-identical" true (bare = observed)

let distributed_image () =
  let app = Benefits.app in
  let sc = App.scenario app "b_addone" in
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let net = Coign_netsim.Net_profiler.profile (Prng.create 5L) network in
  let image, _ = Adps.analyze ~image ~net () in
  (app, sc, image)

let test_observability_zero_cost_distributed () =
  let app, sc, image = distributed_image () in
  let run obs =
    match obs with
    | false -> Adps.execute ~image ~registry:app.App.app_registry ~network sc.App.sc_run
    | true ->
        let tracer = Trace.create Trace.null_sink in
        let metrics = Metrics.registry () in
        Adps.execute ~tracer ~metrics ~image ~registry:app.App.app_registry ~network
          sc.App.sc_run
  in
  Alcotest.(check bool) "exec stats bit-identical" true (run false = run true)

let test_analysis_metrics_and_zero_cost () =
  let app = Benefits.app in
  let sc = App.scenario app "b_addone" in
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let net = Coign_netsim.Net_profiler.profile (Prng.create 5L) network in
  let session = Adps.analysis_session image in
  let bare = Analysis.Session.solve session ~net in
  let metrics = Metrics.registry () in
  let observed = Analysis.Session.solve session ~metrics ~net in
  Alcotest.(check string) "distribution unchanged by metrics" (Analysis.encode bare)
    (Analysis.encode observed);
  let json = Jsonu.parse_exn (Metrics.to_json_string metrics) in
  Alcotest.(check bool) "solve counted" true
    (Jsonu.member "coign_analysis_solves_total" json <> None)

let test_pipeline_phase_names () =
  let app = Benefits.app in
  let sc = App.scenario app "b_addone" in
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let net = Coign_netsim.Net_profiler.profile (Prng.create 5L) network in
  let profiler = Profiler.create () in
  let _ = Adps.analyze ~profiler ~image ~net () in
  Alcotest.(check (list string)) "stages in pipeline order"
    [ "profile_load"; "icc_graph_build"; "pricing"; "cut"; "validation" ]
    (List.map (fun p -> p.Profiler.ph_name) (Profiler.phases profiler))

let suite =
  [
    Alcotest.test_case "jsonu print/parse round-trip" `Quick test_jsonu_print_parse;
    Alcotest.test_case "jsonu float/int separation" `Quick test_jsonu_float_never_reparses_as_int;
    Alcotest.test_case "jsonu unicode escapes" `Quick test_jsonu_unicode_escapes;
    Alcotest.test_case "jsonu rejects garbage" `Quick test_jsonu_rejects_garbage;
    qtest qcheck_jsonu_string_roundtrip;
    Alcotest.test_case "event json round-trip (all constructors)" `Quick
      test_event_json_roundtrip_all_constructors;
    Alcotest.test_case "event of_json errors" `Quick test_event_of_json_errors;
    qtest qcheck_event_roundtrip;
    Alcotest.test_case "logger line format (golden)" `Quick test_to_channel_golden;
    Alcotest.test_case "logger tee ordering" `Quick test_tee_ordering;
    Alcotest.test_case "logger tally key stability" `Quick test_tally_key_stability;
    Alcotest.test_case "metrics counters and gauges" `Quick test_metrics_counters_and_gauges;
    Alcotest.test_case "metrics identity and mismatch" `Quick test_metrics_identity_and_mismatch;
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics exposition deterministic" `Quick
      test_metrics_exposition_deterministic;
    Alcotest.test_case "prometheus escaping per character" `Quick test_prometheus_escaping;
    Alcotest.test_case "prometheus escaping end to end" `Quick
      test_prometheus_escaping_end_to_end;
    Alcotest.test_case "metrics json parses" `Quick test_metrics_json_parses;
    Alcotest.test_case "trace nesting and emission order" `Quick
      test_trace_nesting_and_emission_order;
    Alcotest.test_case "trace LIFO enforced" `Quick test_trace_lifo_enforced;
    Alcotest.test_case "trace with_span on error" `Quick test_trace_with_span_error;
    Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
    Alcotest.test_case "profiler phases" `Quick test_profiler_phases;
    Alcotest.test_case "profiler records on exception" `Quick test_profiler_records_on_exception;
    Alcotest.test_case "profiler absorb and reset" `Quick test_profiler_absorb_and_reset;
    Alcotest.test_case "rte spans mirror shadow stack" `Slow test_rte_spans_mirror_shadow_stack;
    Alcotest.test_case "traces deterministic" `Slow test_traces_deterministic;
    Alcotest.test_case "zero cost: profiling" `Slow test_observability_zero_cost_profiling;
    Alcotest.test_case "zero cost: distributed" `Slow test_observability_zero_cost_distributed;
    Alcotest.test_case "analysis metrics, zero cost" `Slow test_analysis_metrics_and_zero_cost;
    Alcotest.test_case "pipeline phase names" `Slow test_pipeline_phase_names;
  ]
