open Coign_idl
open Coign_netsim
open Coign_image
open Coign_core
open Coign_apps

(* --- Idl_type.finite ----------------------------------------------- *)

let test_finite_basic () =
  Alcotest.(check bool) "int" true (Idl_type.finite Idl_type.Int32);
  Alcotest.(check bool) "array of str" true (Idl_type.finite (Idl_type.Array Idl_type.Str));
  Alcotest.(check bool) "nested struct" true
    (Idl_type.finite
       (Idl_type.Struct
          [ ("a", Idl_type.Ptr (Idl_type.Struct [ ("b", Idl_type.Blob) ])) ]))

let test_finite_cycle () =
  (* The OCaml analog of an unbounded recursive struct: a linked list
     node whose [next] points back at itself. *)
  let rec node = Idl_type.Struct [ ("v", Idl_type.Int32); ("next", Idl_type.Ptr node) ] in
  Alcotest.(check bool) "cyclic struct" false (Idl_type.finite node);
  Alcotest.(check bool) "cyclic array" false
    (let rec a = Idl_type.Array a in
     Idl_type.finite a)

let test_finite_shared_subterm () =
  (* Sharing without a cycle (a DAG) must stay finite: the same payload
     struct appears under two fields. *)
  let payload = Idl_type.Struct [ ("data", Idl_type.Blob) ] in
  let dag = Idl_type.Struct [ ("l", Idl_type.Ptr payload); ("r", Idl_type.Ptr payload) ] in
  Alcotest.(check bool) "dag" true (Idl_type.finite dag)

(* --- Image_meta ----------------------------------------------------- *)

let test_meta_sanitizes_recursive () =
  let rec node = Idl_type.Struct [ ("next", Idl_type.Ptr node) ] in
  let meta =
    Image_meta.create
      ~ifaces:
        [
          {
            Image_meta.if_name = "IList";
            if_methods = [ Idl_type.method_ "walk" [ Idl_type.param "head" node ] ];
          };
        ]
      ~classes:[ { Image_meta.cl_name = "A"; cl_provides = [ "IList" ]; cl_creates = [] } ]
      ~roots:[ "A" ]
  in
  let i = Option.get (Image_meta.iface meta "IList") in
  let m = List.hd i.Image_meta.if_methods in
  let p = List.hd m.Idl_type.params in
  Alcotest.(check bool) "replaced by opaque marker" true
    (p.Idl_type.pty = Idl_type.Opaque Image_meta.recursive_marker);
  (* ... which the linter reports as an unbounded recursive structure. *)
  let diags = Lint.lint_meta meta in
  Alcotest.(check bool) "CG005 emitted" true
    (List.exists (fun d -> d.Lint.code = "CG005") diags)

let sample_meta () =
  Image_meta.create
    ~ifaces:
      [
        {
          Image_meta.if_name = "IRemote";
          if_methods = [ Idl_type.method_ ~ret:(Idl_type.Iface "IShared") "get" [] ];
        };
        {
          Image_meta.if_name = "IShared";
          if_methods =
            [ Idl_type.method_ "poke" [ Idl_type.param "h" (Idl_type.Opaque "HND") ] ];
        };
      ]
    ~classes:
      [
        { Image_meta.cl_name = "A"; cl_provides = [ "IRemote" ]; cl_creates = [ "B" ] };
        { Image_meta.cl_name = "B"; cl_provides = [ "IShared" ]; cl_creates = [] };
        { Image_meta.cl_name = "C"; cl_provides = [ "IRemote" ]; cl_creates = [] };
      ]
    ~roots:[ "A" ]

let test_meta_roundtrip () =
  let meta = sample_meta () in
  let meta' = Image_meta.decode (Image_meta.encode meta) in
  Alcotest.(check bool) "meta roundtrip" true (Image_meta.equal meta meta')

let test_image_meta_roundtrip () =
  let meta = sample_meta () in
  let with_meta =
    Binary_image.create ~name:"synthetic" ~meta
      ~api_refs:[ ("A", []); ("B", []); ("C", []) ]
      ()
  in
  let with_meta' = Binary_image.decode (Binary_image.encode with_meta) in
  Alcotest.(check bool) "image with meta roundtrips" true
    (Binary_image.equal with_meta with_meta');
  Alcotest.(check bool) "meta preserved" true
    (match with_meta'.Binary_image.meta with
    | Some m -> Image_meta.equal m meta
    | None -> false);
  (* Images from before the metadata section still decode. *)
  let without = Binary_image.create ~name:"legacy" ~api_refs:[ ("A", []) ] () in
  let without' = Binary_image.decode (Binary_image.encode without) in
  Alcotest.(check bool) "meta-less image roundtrips" true
    (Binary_image.equal without without');
  Alcotest.(check bool) "no meta" true (without'.Binary_image.meta = None)

(* --- Interface_flow on a synthetic program -------------------------- *)

(* MAIN creates A; A creates B and hands out B's IShared through
   IRemote.get; IShared carries a raw handle, so A and B must be
   co-located and B (reachable by MAIN) pins to the client. C is
   registered but nothing ever creates it. *)

let test_flow_pairs () =
  let flow = Interface_flow.analyze (sample_meta ()) in
  Alcotest.(check (list (pair string string)))
    "non-remotable pairs"
    [ ("A", "B") ]
    (Interface_flow.non_remotable_pairs flow);
  Alcotest.(check (list string)) "client pins" [ "B" ] (Interface_flow.client_pins flow);
  Alcotest.(check (list string)) "unreachable" [ "C" ]
    (Interface_flow.unreachable_classes flow);
  Alcotest.(check (list string)) "non-remotable ifaces" [ "IShared" ]
    (Interface_flow.non_remotable_ifaces flow);
  let refs = Interface_flow.references flow in
  Alcotest.(check bool) "MAIN reaches B transitively" true
    (List.mem (Coign_com.Runtime.main_class_name, "B") refs)

let test_flow_constraints () =
  let flow = Interface_flow.analyze (sample_meta ()) in
  let c = Interface_flow.constraints_of flow in
  Alcotest.(check (list (pair string string)))
    "colocation constraint" [ ("A", "B") ]
    (Constraints.colocated_class_pairs c);
  Alcotest.(check bool) "B pinned to client" true
    (Constraints.class_pin c ~cname:"B" = Some Constraints.Client)

let test_flow_accepts_direction () =
  (* Flow through an [In] interface parameter: A passes B's IShared
     into S's remotable sink, so S can also reach B. *)
  let meta =
    Image_meta.create
      ~ifaces:
        [
          {
            Image_meta.if_name = "ISink";
            if_methods =
              [ Idl_type.method_ "put" [ Idl_type.param "x" (Idl_type.Iface "IShared") ] ];
          };
          {
            Image_meta.if_name = "IShared";
            if_methods =
              [ Idl_type.method_ "poke" [ Idl_type.param "h" (Idl_type.Opaque "HND") ] ];
          };
        ]
      ~classes:
        [
          { Image_meta.cl_name = "A"; cl_provides = []; cl_creates = [ "B"; "S" ] };
          { Image_meta.cl_name = "B"; cl_provides = [ "IShared" ]; cl_creates = [] };
          { Image_meta.cl_name = "S"; cl_provides = [ "ISink" ]; cl_creates = [] };
        ]
      ~roots:[ "A" ]
  in
  let flow = Interface_flow.analyze meta in
  let pairs = Interface_flow.non_remotable_pairs flow in
  Alcotest.(check bool) "A-B pair" true (List.mem ("A", "B") pairs);
  Alcotest.(check bool) "B-S pair via In param" true (List.mem ("B", "S") pairs)

(* --- Golden lint output for the three applications ------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden app_name golden_path () =
  if not (Sys.file_exists golden_path) then Alcotest.skip ()
  else
    let app = Suite.find_app app_name in
    let diags = Lint.lint_image app.App.app_image in
    let got = Format.asprintf "%a" Lint.pp_text diags in
    Alcotest.(check string) (app_name ^ " lint output") (read_file golden_path) got

(* --- Acceptance: static analysis vs. the dynamic profiler ----------- *)

let net () = Net_profiler.profile (Coign_util.Prng.create 42L) Network.ethernet_10

let photodraw_profiled =
  lazy
    (let app = Photodraw.app in
     let image = Adps.instrument app.App.app_image in
     let sc = App.bigone app in
     let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
     image)

(* Every non-remotable class pair the dynamic profiler discovers (the
   paper's figure-5 "black web") must already be known statically:
   either as a non-remotable co-location pair or — when one endpoint is
   the main program — as a client pin. *)
let test_static_covers_dynamic () =
  let image = Lazy.force photodraw_profiled in
  let classifier, icc = Option.get (Adps.load_profile image) in
  let meta = Option.get image.Binary_image.meta in
  let flow = Interface_flow.analyze meta in
  let static_pairs = Interface_flow.non_remotable_pairs flow in
  let pins = Interface_flow.client_pins flow in
  let main = Coign_com.Runtime.main_class_name in
  let name c = if c < 0 then main else Classifier.class_of_classification classifier c in
  let dynamic =
    Icc.entries icc
    |> List.filter (fun e -> not e.Icc.remotable)
    |> List.map (fun e ->
           let a = name e.Icc.src and b = name e.Icc.dst in
           (min a b, max a b))
    |> List.sort_uniq compare
    |> List.filter (fun (a, b) -> a <> b)
  in
  Alcotest.(check bool) "profiler saw non-remotable traffic" true (dynamic <> []);
  List.iter
    (fun (a, b) ->
      let covered =
        if a = main then List.mem b pins
        else if b = main then List.mem a pins
        else List.mem (a, b) static_pairs
      in
      Alcotest.(check bool) (Printf.sprintf "static covers %s <-> %s" a b) true covered)
    dynamic

let test_analyze_accepts_own_cut () =
  let image = Lazy.force photodraw_profiled in
  let _, dist = Adps.analyze ~image ~net:(net ()) () in
  Alcotest.(check bool) "some classifications on the server" true
    (dist.Analysis.server_count > 0);
  Alcotest.(check bool) "not everything on the server" true
    (dist.Analysis.server_count < dist.Analysis.node_count)

(* Hand-force a distribution that splits a statically detected
   non-remotable pair: the validator must reject it at analyze time with
   CG007 errors, before replay could ever hit a runtime violation. *)
let test_forced_split_rejected () =
  let image = Lazy.force photodraw_profiled in
  let extra =
    Constraints.pin_class
      (Constraints.pin_class Constraints.empty ~cname:"PhotoDraw.Layer" Constraints.Client)
      ~cname:"PhotoDraw.SpriteCache" Constraints.Server
  in
  match Adps.analyze ~extra_constraints:extra ~image ~net:(net ()) () with
  | _ -> Alcotest.fail "expected Lint.Rejected"
  | exception Lint.Rejected diags ->
      Alcotest.(check bool) "diagnostics present" true (diags <> []);
      List.iter
        (fun d ->
          Alcotest.(check string) "code" "CG007" d.Lint.code;
          Alcotest.(check bool) "severity error" true (d.Lint.severity = Lint.Error))
        diags

let suite =
  [
    Alcotest.test_case "finite: basics" `Quick test_finite_basic;
    Alcotest.test_case "finite: cycles" `Quick test_finite_cycle;
    Alcotest.test_case "finite: shared subterm" `Quick test_finite_shared_subterm;
    Alcotest.test_case "meta sanitizes recursive types" `Quick test_meta_sanitizes_recursive;
    Alcotest.test_case "meta codec roundtrip" `Quick test_meta_roundtrip;
    Alcotest.test_case "image meta roundtrip" `Quick test_image_meta_roundtrip;
    Alcotest.test_case "flow: pairs, pins, unreachable" `Quick test_flow_pairs;
    Alcotest.test_case "flow: derived constraints" `Quick test_flow_constraints;
    Alcotest.test_case "flow: in-parameter direction" `Quick test_flow_accepts_direction;
    Alcotest.test_case "golden: photodraw" `Quick
      (check_golden "photodraw" "golden/lint_photodraw.txt");
    Alcotest.test_case "golden: octarine" `Quick
      (check_golden "octarine" "golden/lint_octarine.txt");
    Alcotest.test_case "golden: benefits" `Quick
      (check_golden "benefits" "golden/lint_benefits.txt");
    Alcotest.test_case "static covers dynamic web" `Slow test_static_covers_dynamic;
    Alcotest.test_case "analyze accepts its own cut" `Slow test_analyze_accepts_own_cut;
    Alcotest.test_case "forced split rejected" `Slow test_forced_split_rejected;
  ]
