(* The two-stage engine's contract: a pricing/cut session re-used
   across networks must produce exactly — bit for bit, not merely
   within epsilon — the distribution a fresh Analysis.choose computes
   from the same profile. *)

open Coign_netsim
open Coign_core

let classifier_with classes =
  let t = Classifier.create Classifier.St in
  List.iter (fun cname -> ignore (Classifier.classify t ~cname ~stack:[])) classes;
  t

let icc_of records =
  let icc = Icc.create () in
  List.iter
    (fun (src, dst, iface, remotable, request, reply) ->
      Icc.record icc ~src ~dst ~iface ~remotable ~request ~reply)
    records;
  icc

let exact_net = Net_profiler.exact Network.ethernet_10

(* Strict equality of distributions: integer fields, every placement,
   and the predicted communication time compared on its bits. *)
let check_same msg (a : Analysis.distribution) (b : Analysis.distribution) =
  Alcotest.(check int) (msg ^ ": node_count") a.Analysis.node_count b.Analysis.node_count;
  Alcotest.(check int) (msg ^ ": cut_ns") a.Analysis.cut_ns b.Analysis.cut_ns;
  Alcotest.(check int) (msg ^ ": server_count") a.Analysis.server_count b.Analysis.server_count;
  Array.iteri
    (fun c la ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: placement %d" msg c)
        true
        (la = b.Analysis.placement.(c)))
    a.Analysis.placement;
  Alcotest.(check int64)
    (msg ^ ": predicted_comm_us bits")
    (Int64.bits_of_float a.Analysis.predicted_comm_us)
    (Int64.bits_of_float b.Analysis.predicted_comm_us)

let sample_profile () =
  let classes = [ "Gui"; "Store"; "Cache"; "Logic"; "Free" ] in
  let records =
    [
      (-1, 0, "IMain", true, 2_000, 200);
      (0, 2, "IPaint", false, 1_000, 1_000);
      (2, 3, "IQ", true, 80_000, 9_000);
      (3, 1, "IStore", true, 400_000, 50_000);
      (0, 4, "IFree", true, 300, 300);
      (4, 1, "IStore", true, 120_000, 12_000);
    ]
  in
  let constraints =
    Constraints.colocate
      (Constraints.pin_class
         (Constraints.pin_class Constraints.empty ~cname:"Gui" Constraints.Client)
         ~cname:"Store" Constraints.Server)
      3 4
  in
  (classifier_with classes, icc_of records, constraints)

let preset_nets seed =
  Net_profiler.exact Network.ethernet_10
  :: List.map
       (fun network -> Net_profiler.profile (Coign_util.Prng.create seed) network)
       Network.presets

let test_session_matches_choose () =
  let classifier, icc, constraints = sample_profile () in
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  List.iter
    (fun net ->
      let fresh = Analysis.choose ~classifier ~icc ~constraints ~net () in
      let solved = Analysis.Session.solve session ~net in
      check_same net.Net_profiler.profiled_name fresh solved)
    (preset_nets 3L)

let test_session_reuse_interleaved () =
  (* Re-solving an earlier network after pricing a very different one
     must fully reset every repriced capacity. *)
  let classifier, icc, constraints = sample_profile () in
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  let isdn = Net_profiler.profile (Coign_util.Prng.create 9L) Network.isdn_128 in
  let san = Net_profiler.profile (Coign_util.Prng.create 9L) Network.san_1g in
  let first = Analysis.Session.solve session ~net:isdn in
  let _ = Analysis.Session.solve session ~net:san in
  let again = Analysis.Session.solve session ~net:isdn in
  check_same "isdn resolved after san" first again;
  check_same "isdn vs fresh"
    (Analysis.choose ~classifier ~icc ~constraints ~net:isdn ())
    again

let test_session_algorithms () =
  let classifier, icc, constraints = sample_profile () in
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  List.iter
    (fun algorithm ->
      let fresh = Analysis.choose ~algorithm ~classifier ~icc ~constraints ~net:exact_net () in
      let solved = Analysis.Session.solve ~algorithm session ~net:exact_net in
      check_same (Coign_flowgraph.Mincut.algorithm_name algorithm) fresh solved)
    Coign_flowgraph.Mincut.all_algorithms

let test_session_copy_independent () =
  let classifier, icc, constraints = sample_profile () in
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  let copy = Analysis.Session.copy session in
  let isdn = Net_profiler.profile (Coign_util.Prng.create 5L) Network.isdn_128 in
  let san = Net_profiler.profile (Coign_util.Prng.create 5L) Network.san_1g in
  (* Price the two sessions differently, then check neither disturbed
     the other. *)
  let original_isdn = Analysis.Session.solve session ~net:isdn in
  let copy_san = Analysis.Session.solve copy ~net:san in
  check_same "original unaffected by copy" original_isdn
    (Analysis.Session.solve session ~net:isdn);
  check_same "copy unaffected by original" copy_san (Analysis.Session.solve copy ~net:san);
  check_same "copy matches fresh"
    (Analysis.choose ~classifier ~icc ~constraints ~net:san ())
    copy_san

let test_session_empty_profile () =
  let classifier = classifier_with [ "A"; "B" ] in
  let session =
    Analysis.Session.create ~classifier ~icc:(Icc.create ()) ~constraints:Constraints.empty ()
  in
  let d = Analysis.Session.solve session ~net:exact_net in
  Alcotest.(check int) "all client" 0 d.Analysis.server_count;
  check_same "empty matches fresh"
    (Analysis.choose ~classifier ~icc:(Icc.create ()) ~constraints:Constraints.empty
       ~net:exact_net ())
    d

let test_solve_many_matches_sequential () =
  let classifier, icc, constraints = sample_profile () in
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  let nets = preset_nets 7L in
  let sequential = List.map (fun net -> Analysis.Session.solve session ~net) nets in
  let batched = Analysis.Session.solve_many session ~nets in
  List.iter2 (fun a b -> check_same "solve_many sequential" a b) sequential batched

let test_solve_many_pool_matches_sequential () =
  let classifier, icc, constraints = sample_profile () in
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  let nets = preset_nets 13L in
  let sequential = Analysis.Session.solve_many session ~nets in
  let pool = Coign_util.Parallel.create ~domains:3 () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Coign_util.Parallel.shutdown pool)
      (fun () -> Analysis.Session.solve_many ~pool session ~nets)
  in
  List.iter2 (fun a b -> check_same "solve_many pool" a b) sequential parallel;
  (* The batch must not have disturbed the session's own buffers. *)
  let net = List.hd nets in
  check_same "session intact after pooled batch"
    (Analysis.choose ~classifier ~icc ~constraints ~net ())
    (Analysis.Session.solve session ~net)

let test_fallback_pool_identical () =
  let classifier, icc, constraints = sample_profile () in
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  let net = Net_profiler.profile (Coign_util.Prng.create 21L) Network.isdn_128 in
  let sequential = Fallback.compute session ~net () in
  let pool = Coign_util.Parallel.create ~domains:2 () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Coign_util.Parallel.shutdown pool)
      (fun () -> Fallback.compute ~pool session ~net ())
  in
  Alcotest.(check string)
    "ladder identical with and without pool" (Fallback.encode sequential)
    (Fallback.encode parallel)

(* --- Randomized equivalence ----------------------------------------- *)

let gen_instance =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    list_size (int_range 0 14)
      (quad
         (int_range (-1) (n - 1))
         (int_range 0 (n - 1))
         (int_range 0 120_000)
         bool)
    >>= fun records ->
    option (int_range 0 (n - 1)) >>= fun pin_client ->
    option (int_range 0 (n - 1)) >>= fun pin_server ->
    list_size (int_range 0 2) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun colocations ->
    int_range 1 1000 >>= fun seed -> return (n, records, pin_client, pin_server, colocations, seed))

let arb_instance =
  QCheck.make
    ~print:(fun (n, records, pc, ps, coloc, seed) ->
      Printf.sprintf "n=%d pinC=%s pinS=%s coloc=%s seed=%d records=%s" n
        (match pc with Some c -> string_of_int c | None -> "-")
        (match ps with Some c -> string_of_int c | None -> "-")
        (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d~%d" a b) coloc))
        seed
        (String.concat ";"
           (List.map
              (fun (a, b, s, r) -> Printf.sprintf "%d->%d:%d%s" a b s (if r then "" else "!"))
              records)))
    gen_instance

let prop_session_equals_choose =
  QCheck.Test.make
    ~name:"session reprice+cut equals fresh choose on random profiles" ~count:120
    arb_instance
    (fun (n, records, pin_client, pin_server, colocations, seed) ->
      let classes = List.init n (fun i -> Printf.sprintf "K%d" i) in
      let classifier = classifier_with classes in
      let icc = Icc.create () in
      List.iteri
        (fun i (src, dst, size, remotable) ->
          if src <> dst then
            Icc.record icc ~src ~dst
              ~iface:(Printf.sprintf "I%d" (i mod 4))
              ~remotable ~request:size ~reply:(size / 5))
        records;
      (* A pin conflict on the same classification is rejected eagerly
         by the constraint builder itself, not the engine. *)
      QCheck.assume (pin_client = None || pin_server = None || pin_client <> pin_server);
      let constraints = Constraints.empty in
      let constraints =
        match pin_client with
        | Some c -> Constraints.pin_classification constraints c Constraints.Client
        | None -> constraints
      in
      let constraints =
        match pin_server with
        | Some c -> Constraints.pin_classification constraints c Constraints.Server
        | None -> constraints
      in
      let constraints =
        List.fold_left
          (fun acc (a, b) -> if a <> b then Constraints.colocate acc a b else acc)
          constraints colocations
      in
      let nets =
        [
          Net_profiler.exact Network.ethernet_10;
          Net_profiler.profile (Coign_util.Prng.create (Int64.of_int seed)) Network.isdn_128;
          Net_profiler.profile (Coign_util.Prng.create (Int64.of_int seed)) Network.san_1g;
        ]
      in
      let session = Analysis.Session.create ~classifier ~icc ~constraints () in
      (* Two passes, the second in reverse, so every solve after the
         first exercises repricing of a dirty network. *)
      List.for_all
        (fun net ->
          let fresh = Analysis.choose ~classifier ~icc ~constraints ~net () in
          let solved = Analysis.Session.solve session ~net in
          fresh.Analysis.cut_ns = solved.Analysis.cut_ns
          && fresh.Analysis.placement = solved.Analysis.placement
          && fresh.Analysis.server_count = solved.Analysis.server_count
          && Int64.bits_of_float fresh.Analysis.predicted_comm_us
             = Int64.bits_of_float solved.Analysis.predicted_comm_us)
        (nets @ List.rev nets))

let suite =
  [
    Alcotest.test_case "session matches choose on presets" `Quick test_session_matches_choose;
    Alcotest.test_case "session reuse interleaved" `Quick test_session_reuse_interleaved;
    Alcotest.test_case "session matches choose per algorithm" `Quick test_session_algorithms;
    Alcotest.test_case "session copies are independent" `Quick test_session_copy_independent;
    Alcotest.test_case "session on empty profile" `Quick test_session_empty_profile;
    Alcotest.test_case "solve_many matches sequential" `Quick test_solve_many_matches_sequential;
    Alcotest.test_case "solve_many with pool matches sequential" `Quick
      test_solve_many_pool_matches_sequential;
    Alcotest.test_case "fallback ladder identical with pool" `Quick test_fallback_pool_identical;
    QCheck_alcotest.to_alcotest prop_session_equals_choose;
  ]
