open Coign_util

let qtest = QCheck_alcotest.to_alcotest

(* --- Prng ---------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 99L and b = Prng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  Alcotest.(check bool) "different streams" false
    (List.init 8 (fun _ -> Prng.next_int64 a) = List.init 8 (fun _ -> Prng.next_int64 b))

let test_prng_int_bounds () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 3.5)
  done

let test_prng_gaussian_moments () =
  let rng = Prng.create 11L in
  let xs = Array.init 20_000 (fun _ -> Prng.gaussian rng ~mu:5. ~sigma:2.) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (Stats.mean xs -. 5.) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (Stats.stddev xs -. 2.) < 0.1)

let test_prng_exponential_mean () =
  let rng = Prng.create 13L in
  let xs = Array.init 20_000 (fun _ -> Prng.exponential rng ~mean:3.) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (Stats.mean xs -. 3.) < 0.15)

let test_prng_split_independent () =
  let rng = Prng.create 5L in
  let child = Prng.split rng in
  Alcotest.(check bool) "diverged" true (Prng.next_int64 rng <> Prng.next_int64 child)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 3L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

(* --- Exp_bucket ---------------------------------------------------- *)

let test_bucket_bounds_contiguous () =
  for i = 0 to 20 do
    let _, hi = Exp_bucket.bucket_bounds i in
    let lo', _ = Exp_bucket.bucket_bounds (i + 1) in
    Alcotest.(check int) "contiguous" (hi + 1) lo'
  done

let test_bucket_index_within_bounds () =
  List.iter
    (fun bytes ->
      let i = Exp_bucket.bucket_index bytes in
      let lo, hi = Exp_bucket.bucket_bounds i in
      Alcotest.(check bool)
        (Printf.sprintf "%d in [%d,%d]" bytes lo hi)
        true
        (bytes >= lo && bytes <= hi))
    [ 0; 1; 31; 32; 63; 64; 100; 1024; 65536; 1_000_000; 123_456_789 ]

let test_bucket_counts () =
  let b = Exp_bucket.create () in
  Exp_bucket.add b ~bytes:10;
  Exp_bucket.add b ~bytes:20;
  Exp_bucket.add b ~bytes:1000;
  Alcotest.(check int) "count" 3 (Exp_bucket.message_count b);
  Alcotest.(check int) "bytes" 1030 (Exp_bucket.total_bytes b)

let test_bucket_merge () =
  let a = Exp_bucket.create () and b = Exp_bucket.create () in
  Exp_bucket.add a ~bytes:5;
  Exp_bucket.add_many b ~bytes:100 ~count:4;
  let m = Exp_bucket.merge a b in
  Alcotest.(check int) "count" 5 (Exp_bucket.message_count m);
  Alcotest.(check int) "bytes" 405 (Exp_bucket.total_bytes m);
  (* inputs untouched *)
  Alcotest.(check int) "a intact" 1 (Exp_bucket.message_count a)

let test_bucket_mean () =
  let b = Exp_bucket.create () in
  Exp_bucket.add b ~bytes:40;
  Exp_bucket.add b ~bytes:60;
  let i = Exp_bucket.bucket_index 40 in
  Alcotest.(check int) "same bucket" i (Exp_bucket.bucket_index 60);
  Alcotest.(check (float 0.001)) "mean" 50. (Exp_bucket.mean_bytes_in_bucket b i)

let prop_bucket_index_monotone =
  QCheck.Test.make ~name:"bucket index monotone in size" ~count:500
    QCheck.(pair (int_bound 10_000_000) (int_bound 10_000_000))
    (fun (a, b) ->
      let a, b = (min a b, max a b) in
      Exp_bucket.bucket_index a <= Exp_bucket.bucket_index b)

let prop_bucket_merge_totals =
  QCheck.Test.make ~name:"merge preserves counts and bytes" ~count:200
    QCheck.(pair (small_list (int_bound 100_000)) (small_list (int_bound 100_000)))
    (fun (xs, ys) ->
      let mk sizes =
        let b = Exp_bucket.create () in
        List.iter (fun s -> Exp_bucket.add b ~bytes:s) sizes;
        b
      in
      let m = Exp_bucket.merge (mk xs) (mk ys) in
      Exp_bucket.message_count m = List.length xs + List.length ys
      && Exp_bucket.total_bytes m = List.fold_left ( + ) 0 xs + List.fold_left ( + ) 0 ys)

(* --- Stats --------------------------------------------------------- *)

let test_stats_mean_var () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance xs)

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  Alcotest.(check (float 1e-9)) "p0" 10. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p50" 30. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p25" 20. (Stats.percentile xs 25.)

let test_stats_correlation_basics () =
  Alcotest.(check (float 1e-9)) "identical" 1. (Stats.cosine_correlation [| 1.; 2. |] [| 2.; 4. |]);
  Alcotest.(check (float 1e-9)) "orthogonal" 0. (Stats.cosine_correlation [| 1.; 0. |] [| 0.; 1. |]);
  Alcotest.(check (float 1e-9)) "both zero" 1. (Stats.cosine_correlation [| 0.; 0. |] [| 0.; 0. |]);
  Alcotest.(check (float 1e-9)) "one zero" 0. (Stats.cosine_correlation [| 0.; 0. |] [| 1.; 0. |])

let test_stats_linear_fit () =
  let points = Array.init 10 (fun i -> (float_of_int i, 3. +. (2. *. float_of_int i))) in
  let intercept, slope = Stats.linear_fit points in
  Alcotest.(check (float 1e-9)) "intercept" 3. intercept;
  Alcotest.(check (float 1e-9)) "slope" 2. slope

let test_stats_ratio_error () =
  Alcotest.(check (float 1e-9)) "under" (-0.5) (Stats.ratio_error ~predicted:5. ~measured:10.);
  Alcotest.(check (float 1e-9)) "exact" 0. (Stats.ratio_error ~predicted:10. ~measured:10.);
  Alcotest.(check (float 1e-9)) "zero-zero" 0. (Stats.ratio_error ~predicted:0. ~measured:0.)

let prop_correlation_range =
  QCheck.Test.make ~name:"correlation in [0,1] for non-negative vectors" ~count:300
    QCheck.(pair (array_of_size (QCheck.Gen.return 6) (float_bound_inclusive 100.))
              (array_of_size (QCheck.Gen.return 6) (float_bound_inclusive 100.)))
    (fun (a, b) ->
      let c = Stats.cosine_correlation a b in
      c >= -1e-9 && c <= 1. +. 1e-9)

(* --- Parallel ------------------------------------------------------ *)

let with_pool domains f =
  let pool = Parallel.create ~domains () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let test_parallel_map_matches_sequential () =
  with_pool 3 (fun pool ->
      let items = Array.init 100 (fun i -> i) in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        "same results in same order" (Array.map f items)
        (Parallel.map pool ~f items))

let test_parallel_inline_pool () =
  (* domains:0 means no worker domains: everything runs inline on the
     calling domain, same contract. *)
  with_pool 0 (fun pool ->
      Alcotest.(check int) "no workers" 0 (Parallel.worker_count pool);
      Alcotest.(check (array int))
        "inline map" [| 2; 4; 6 |]
        (Parallel.map pool ~f:(fun x -> 2 * x) [| 1; 2; 3 |]))

let test_parallel_empty () =
  with_pool 2 (fun pool ->
      Alcotest.(check int) "empty" 0 (Array.length (Parallel.map pool ~f:(fun x -> x) [||])))

let test_parallel_exception_propagates () =
  with_pool 2 (fun pool ->
      Alcotest.check_raises "first failure re-raised" (Failure "item 5") (fun () ->
          ignore
            (Parallel.map pool
               ~f:(fun x -> if x = 5 then failwith "item 5" else x)
               (Array.init 20 Fun.id)));
      (* the pool survives a failed job *)
      Alcotest.(check (array int))
        "pool usable after failure" [| 0; 1; 2 |]
        (Parallel.map pool ~f:Fun.id [| 0; 1; 2 |]))

let test_parallel_map_init_state () =
  (* Per-domain state: each domain gets its own buffer, so concurrent
     use never mixes; results still land by index. *)
  with_pool 3 (fun pool ->
      let results =
        Parallel.map_init pool
          ~init:(fun () -> Buffer.create 16)
          ~f:(fun buf x ->
            Buffer.clear buf;
            Buffer.add_string buf (string_of_int x);
            int_of_string (Buffer.contents buf))
          (Array.init 64 Fun.id)
      in
      Alcotest.(check (array int)) "state-local map" (Array.init 64 Fun.id) results)

let test_parallel_nested_falls_back () =
  with_pool 2 (fun pool ->
      let results =
        Parallel.map pool
          ~f:(fun x ->
            (* A nested map on the same pool must not deadlock: it runs
               inline. *)
            Array.fold_left ( + ) 0 (Parallel.map pool ~f:(fun y -> x * y) [| 1; 2; 3 |]))
          [| 1; 2; 3; 4 |]
      in
      Alcotest.(check (array int)) "nested" [| 6; 12; 18; 24 |] results)

let test_parallel_map_list () =
  with_pool 2 (fun pool ->
      Alcotest.(check (list int))
        "list map" [ 10; 20; 30 ]
        (Parallel.map_list pool ~f:(fun x -> 10 * x) [ 1; 2; 3 ]))

let test_parallel_invalid_domains () =
  Alcotest.check_raises "negative domains"
    (Invalid_argument "Parallel.create: negative domain count") (fun () ->
      ignore (Parallel.create ~domains:(-1) ()))

(* --- Tablefmt ------------------------------------------------------ *)

let test_tablefmt_alignment () =
  let t = Tablefmt.create [ ("name", Tablefmt.Left); ("value", Tablefmt.Right) ] in
  Tablefmt.add_row t [ "x"; "1" ];
  Tablefmt.add_row t [ "longer"; "22" ];
  let rendered = Tablefmt.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check bool) "header present" true
    (match lines with h :: _ -> String.length h > 0 && h.[0] = 'n' | [] -> false);
  (* all non-empty lines same width or shorter *)
  Alcotest.(check bool) "right aligned"
    true
    (List.exists (fun l -> String.length l > 0 && l.[String.length l - 1] = '1') lines)

let test_tablefmt_cell_mismatch () =
  let t = Tablefmt.create [ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Tablefmt.add_row: cell count mismatch")
    (fun () -> Tablefmt.add_row t [ "x"; "y" ])

let test_tablefmt_cells () =
  Alcotest.(check string) "float" "1.50" (Tablefmt.cell_float ~decimals:2 1.5);
  Alcotest.(check string) "pct" "95%" (Tablefmt.cell_pct 0.95)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
    Alcotest.test_case "prng exponential mean" `Quick test_prng_exponential_mean;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "bucket bounds contiguous" `Quick test_bucket_bounds_contiguous;
    Alcotest.test_case "bucket index within bounds" `Quick test_bucket_index_within_bounds;
    Alcotest.test_case "bucket counts" `Quick test_bucket_counts;
    Alcotest.test_case "bucket merge" `Quick test_bucket_merge;
    Alcotest.test_case "bucket mean" `Quick test_bucket_mean;
    qtest prop_bucket_index_monotone;
    qtest prop_bucket_merge_totals;
    Alcotest.test_case "stats mean/var" `Quick test_stats_mean_var;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats correlation" `Quick test_stats_correlation_basics;
    Alcotest.test_case "stats linear fit" `Quick test_stats_linear_fit;
    Alcotest.test_case "stats ratio error" `Quick test_stats_ratio_error;
    qtest prop_correlation_range;
    Alcotest.test_case "parallel map matches sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel inline pool" `Quick test_parallel_inline_pool;
    Alcotest.test_case "parallel empty input" `Quick test_parallel_empty;
    Alcotest.test_case "parallel exception propagates" `Quick test_parallel_exception_propagates;
    Alcotest.test_case "parallel map_init state" `Quick test_parallel_map_init_state;
    Alcotest.test_case "parallel nested falls back" `Quick test_parallel_nested_falls_back;
    Alcotest.test_case "parallel map_list" `Quick test_parallel_map_list;
    Alcotest.test_case "parallel invalid domains" `Quick test_parallel_invalid_domains;
    Alcotest.test_case "tablefmt alignment" `Quick test_tablefmt_alignment;
    Alcotest.test_case "tablefmt cell mismatch" `Quick test_tablefmt_cell_mismatch;
    Alcotest.test_case "tablefmt cells" `Quick test_tablefmt_cells;
  ]
