(* The adaptive resilience layer: circuit breaker, fallback ladder,
   live failover in the distributed RTE, and the resilience grid.
   Counter expectations are hand-computed from the fixed retry policy
   (1 ms timeout, 3 attempts, 500 us backoff doubling): one exhausted
   cycle costs exactly 4500 us, 3 drops, 2 retries. *)

open Coign_idl
open Coign_com
open Coign_netsim
open Coign_core
open Coign_apps
open Coign_sim
open Coign_util

let check_bits what expected actual =
  Alcotest.(check int64) what (Int64.bits_of_float expected) (Int64.bits_of_float actual)

(* --- The breaker in isolation ---------------------------------------- *)

let policy ?(threshold = 2) ?(cooloff = 5_000.) ?(mult = 2.) ?(max = 1e6) ?(probes = 1)
    ?(alpha = 0.5) () =
  {
    Health.hp_failure_threshold = threshold;
    hp_cooloff_us = cooloff;
    hp_cooloff_mult = mult;
    hp_cooloff_max_us = max;
    hp_probe_successes = probes;
    hp_ewma_alpha = alpha;
  }

let test_breaker_trips_at_threshold () =
  let h = Health.create ~policy:(policy ()) () in
  Alcotest.(check bool) "starts closed" true (Health.state h = Health.Closed);
  Alcotest.(check bool) "first failure keeps it closed" true
    (Health.record_failure h ~now_us:10_000. = None);
  (match Health.record_failure h ~now_us:20_000. with
  | Some { Health.tr_from = Health.Closed; tr_to = Health.Open; tr_at_us } ->
      check_bits "trips at the second failure" 20_000. tr_at_us
  | _ -> Alcotest.fail "expected Closed -> Open");
  Alcotest.(check bool) "open rejects immediately" false (Health.allows h ~now_us:20_000.);
  check_bits "cooloff expiry" 25_000. (Health.cooloff_expires_at h);
  Alcotest.(check bool) "still rejects just before expiry" false
    (Health.allows h ~now_us:24_999.);
  Alcotest.(check bool) "admits a probe at expiry" true (Health.allows h ~now_us:25_000.)

let test_breaker_probe_closes_and_resets_cooloff () =
  let h = Health.create ~policy:(policy ()) () in
  ignore (Health.record_failure h ~now_us:0.);
  ignore (Health.record_failure h ~now_us:1.);
  (* Waiting out the cooloff admits a probe via Half_open... *)
  (match Health.observe h ~now_us:5_001. with
  | Some { Health.tr_from = Health.Open; tr_to = Health.Half_open; _ } -> ()
  | _ -> Alcotest.fail "expected Open -> Half_open after the cooloff");
  (* ...a failed probe reopens with an escalated cooloff... *)
  (match Health.record_failure h ~now_us:5_100. with
  | Some { Health.tr_to = Health.Open; _ } -> ()
  | _ -> Alcotest.fail "expected Half_open -> Open on probe failure");
  check_bits "cooloff doubled" 10_000. (Health.cooloff_us h);
  (* ...and a successful probe closes, restoring the initial cooloff. *)
  ignore (Health.observe h ~now_us:20_000.);
  (match Health.record_success h ~now_us:20_050. with
  | Some { Health.tr_from = Health.Half_open; tr_to = Health.Closed; _ } -> ()
  | _ -> Alcotest.fail "expected Half_open -> Closed on probe success");
  check_bits "cooloff reset on close" 5_000. (Health.cooloff_us h)

let test_breaker_cooloff_capped () =
  let h = Health.create ~policy:(policy ~threshold:1 ~cooloff:100. ~mult:10. ~max:250. ()) () in
  ignore (Health.record_failure h ~now_us:0.);
  ignore (Health.observe h ~now_us:100.);
  ignore (Health.record_failure h ~now_us:100.);
  check_bits "escalation capped" 250. (Health.cooloff_us h)

let test_breaker_ewma_blends () =
  let h = Health.create ~policy:(policy ~threshold:10 ()) () in
  check_bits "starts healthy" 1. (Health.ewma h);
  ignore (Health.record_failure h ~now_us:1.);
  check_bits "failure halves it (alpha 0.5)" 0.5 (Health.ewma h);
  ignore (Health.record_success h ~now_us:2.);
  check_bits "success pulls it back" 0.75 (Health.ewma h);
  Alcotest.(check int) "outcomes counted" 1 (Health.successes h);
  Alcotest.(check int) "failures counted" 1 (Health.failures h)

let test_breaker_rejects_bad_policy () =
  let bad p = try ignore (Health.create ~policy:p ()) ; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero threshold" true (bad (policy ~threshold:0 ()));
  Alcotest.(check bool) "negative cooloff" true (bad (policy ~cooloff:(-1.) ()));
  Alcotest.(check bool) "shrinking multiplier" true (bad (policy ~mult:0.5 ()));
  Alcotest.(check bool) "zero probes" true (bad (policy ~probes:0 ()));
  Alcotest.(check bool) "alpha out of range" true (bad (policy ~alpha:1.5 ()))

(* The gate the RTE relies on: an open breaker never admits a call
   before its cooloff expires, whatever outcome sequence produced it. *)
let prop_open_never_admits_before_cooloff =
  let gen =
    QCheck.Gen.(list_size (int_bound 60) (pair (int_range 1 2_000) bool))
  in
  QCheck.Test.make ~name:"open breaker never admits a call before cooloff expiry" ~count:300
    (QCheck.make gen) (fun steps ->
      let h = Health.create ~policy:(policy ~threshold:1 ~cooloff:1_000. ~max:8_000. ()) () in
      let now = ref 0. in
      List.for_all
        (fun (dt, ok) ->
          now := !now +. float_of_int dt;
          let before_expiry = !now < Health.cooloff_expires_at h in
          (match Health.observe h ~now_us:!now with
          | Some { Health.tr_to = Health.Half_open; _ } ->
              if before_expiry then Alcotest.fail "probe admitted before cooloff expiry"
          | _ -> ());
          let gated =
            (not (Health.state h = Health.Open && before_expiry))
            || not (Health.allows h ~now_us:!now)
          in
          (* Only issue the call when the breaker allows it, as the RTE
             does; outcomes feed back into the tracker. *)
          if Health.allows h ~now_us:!now then
            ignore
              (if ok then Health.record_success h ~now_us:!now
               else Health.record_failure h ~now_us:!now);
          gated)
        steps)

(* --- Live failover in the distributed RTE ----------------------------
   The Flt mini-app from the fault tests, renamed: Front (client)
   creates Back (server) and pumps 1000-byte blobs at it.  On 10BaseT
   the forwarded creation costs 714 + 742.8 = 1456.8 us, so with a
   partition opening at t = 2000 us the creation clears and every store
   attempt lands inside the window. *)

let fixed_retry =
  {
    Fault.rp_timeout_us = 1_000.;
    rp_max_attempts = 3;
    rp_backoff_us = 500.;
    rp_backoff_mult = 2.;
    rp_backoff_jitter = 0.;
  }

let i_front =
  Itype.declare "IRslFront" [ Idl_type.method_ "run" [ Idl_type.param "rounds" Idl_type.Int32 ] ]

let i_back =
  Itype.declare "IRslBack"
    [ Idl_type.method_ ~ret:Idl_type.Int32 "store" [ Idl_type.param "data" Idl_type.Blob ] ]

let c_back =
  Runtime.define_class "Rsl.Back" (fun _ctx _self ->
      let stored = ref 0 in
      [
        Combuild.iface i_back
          [
            ( "store",
              fun ctx args ->
                stored := !stored + Combuild.get_blob args 0;
                Runtime.charge ctx ~us:10.;
                Combuild.echo args (Value.Int !stored) );
          ];
      ])

let c_front =
  Runtime.define_class "Rsl.Front" (fun ctx0 _self ->
      let back = Runtime.create_instance ctx0 c_back.Runtime.clsid ~iid:(Itype.iid i_back) in
      [
        Combuild.iface i_front
          [
            ( "run",
              fun ctx args ->
                let rounds = Combuild.get_int args 0 in
                for _ = 1 to rounds do
                  ignore (Runtime.call_named ctx back "store" [ Value.Blob 1_000 ])
                done;
                Combuild.echo args Value.Unit );
          ];
      ])

let registry () = Runtime.registry [ c_front; c_back ]
let split cname = if String.equal cname "Rsl.Back" then Constraints.Server else Constraints.Client

(* Classifications are assigned in creation order by a fresh classifier,
   so one clean run tells us which index is Rsl.Back — deterministically
   the same in every subsequent run of the same scenario. *)
let discover =
  lazy
    (let ctx = Runtime.create_ctx (registry ()) in
     let classifier = Classifier.create Classifier.Ifcb in
     let rte =
       Rte.install_distributed ~classifier
         ~config:
           {
             Rte.dc_factory_policy = Factory.By_class split;
             dc_network = Network.ethernet_10;
             dc_jitter = 0.;
             dc_seed = 1L;
             dc_faults = None;
             dc_retry = fixed_retry;
             dc_resilience = None;
             dc_fleet = None;
             dc_watch = None;
           }
         ctx
     in
     let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
     ignore (Runtime.call_named ctx front "run" [ Value.Int 1 ]);
     Rte.uninstall rte;
     let n = Classifier.classification_count classifier in
     let cback = ref (-1) in
     for c = 0 to n - 1 do
       if String.equal (Classifier.class_of_classification classifier c) "Rsl.Back" then
         cback := c
     done;
     if !cback < 0 then Alcotest.fail "Rsl.Back was never classified";
     (n, !cback))

let dist placement =
  {
    Analysis.placement;
    cut_ns = 0;
    predicted_comm_us = 0.;
    server_count =
      Array.fold_left (fun a l -> if l = Constraints.Server then a + 1 else a) 0 placement;
    node_count = Array.length placement;
    algorithm = Coign_flowgraph.Mincut.Dinic;
  }

let two_rung_ladder ~safe =
  let n, cback = Lazy.force discover in
  let primary = Array.make n Constraints.Client in
  primary.(cback) <- Constraints.Server;
  ( dist primary,
    Fallback.of_rungs
      ~migration_safe:(Array.make n safe)
      [
        { Fallback.rg_name = "primary"; rg_distribution = dist primary };
        { Fallback.rg_name = "all-client"; rg_distribution = dist (Array.make n Constraints.Client) };
      ] )

let run_resil ?faults ?resilience ?(policy = None) ~rounds () =
  let primary, ladder = two_rung_ladder ~safe:true in
  let resilience =
    match resilience with Some r -> Some r | None -> Option.map (fun h -> Rte.resilience ~health:h ladder) policy
  in
  let ctx = Runtime.create_ctx (registry ()) in
  let classifier = Classifier.create Classifier.Ifcb in
  let rte =
    Rte.install_distributed ~classifier
      ~config:
        {
          Rte.dc_factory_policy = Factory.By_classification primary;
          dc_network = Network.ethernet_10;
          dc_jitter = 0.;
          dc_seed = 1L;
          dc_faults = faults;
          dc_retry = fixed_retry;
          dc_resilience = resilience;
          dc_fleet = None;
          dc_watch = None;
        }
      ctx
  in
  let front = Runtime.create_instance ctx c_front.Runtime.clsid ~iid:(Itype.iid i_front) in
  let completed =
    match Runtime.call_named ctx front "run" [ Value.Int rounds ] with
    | _ -> true
    | exception Hresult.Com_error (Hresult.E_unreachable _) -> false
  in
  Rte.uninstall rte;
  (Rte.stats rte, completed)

let breaker_policy =
  {
    Health.hp_failure_threshold = 2;
    hp_cooloff_us = 5_000.;
    hp_cooloff_mult = 2.;
    hp_cooloff_max_us = 1e6;
    hp_probe_successes = 1;
    hp_ewma_alpha = 0.2;
  }

let test_rte_failover_rescues_call () =
  (* Partition from t = 2000 forever.  The creation clears; the first
     store burns two full retry cycles (4500 us each), tripping the
     breaker at the second failure.  The failover migrates Back to the
     client, so the retried call finds its endpoints co-located and
     completes locally — the run finishes with no unreachable calls. *)
  let s, completed =
    run_resil
      ~faults:{ Fault.zero with Fault.fs_partitions_us = [ (2_000., 1e9) ] }
      ~policy:(Some breaker_policy) ~rounds:2 ()
  in
  Alcotest.(check bool) "run completes" true completed;
  Alcotest.(check int) "breaker opened once" 1 s.Rte.st_breaker_opens;
  Alcotest.(check int) "never closed again" 0 s.Rte.st_breaker_closes;
  Alcotest.(check int) "one failover" 1 s.Rte.st_failovers;
  Alcotest.(check int) "no failback" 0 s.Rte.st_failbacks;
  Alcotest.(check int) "back migrated" 1 s.Rte.st_migrations;
  Alcotest.(check int) "the failed call was rescued" 1 s.Rte.st_rescued_calls;
  Alcotest.(check int) "nothing stranded" 0 s.Rte.st_stranded_calls;
  Alcotest.(check int) "nothing unreachable" 0 s.Rte.st_unreachable;
  Alcotest.(check int) "run ends on the fallback rung" 1 s.Rte.st_final_rung;
  Alcotest.(check int) "only the creation crossed" 1 s.Rte.st_remote_calls;
  Alcotest.(check int) "two exhausted cycles" 4 s.Rte.st_retries;
  Alcotest.(check int) "three drops each" 6 s.Rte.st_drops;
  check_bits "fault time = two cycles" 9_000. s.Rte.st_fault_us

let test_rte_stranded_probe_failback () =
  (* Same schedule, but nothing may migrate and the partition ends at
     t = 28000.  The failover switches the policy yet moves no
     instance, so the call strands on the open breaker: it waits out
     the 5000 us cooloff, probes (another exhausted cycle), reopens
     with the cooloff doubled, waits again, and the second probe —
     issued at creation + 2 cycles + probe cycle + 15000 us of waiting
     = 29966.8 us, past the window — succeeds, closing the breaker and
     failing back to the primary rung. *)
  let _, ladder = two_rung_ladder ~safe:false in
  let s, completed =
    run_resil
      ~faults:{ Fault.zero with Fault.fs_partitions_us = [ (2_000., 28_000.) ] }
      ~resilience:(Rte.resilience ~health:breaker_policy ladder)
      ~rounds:2 ()
  in
  Alcotest.(check bool) "run completes" true completed;
  Alcotest.(check int) "opened, reopened after the failed probe" 2 s.Rte.st_breaker_opens;
  Alcotest.(check int) "closed by the second probe" 1 s.Rte.st_breaker_closes;
  Alcotest.(check int) "one failover" 1 s.Rte.st_failovers;
  Alcotest.(check int) "one failback" 1 s.Rte.st_failbacks;
  Alcotest.(check int) "nothing migrated" 0 s.Rte.st_migrations;
  Alcotest.(check int) "the call stranded once" 1 s.Rte.st_stranded_calls;
  Alcotest.(check int) "nothing rescued" 0 s.Rte.st_rescued_calls;
  Alcotest.(check int) "nothing unreachable" 0 s.Rte.st_unreachable;
  Alcotest.(check int) "back on the primary rung" 0 s.Rte.st_final_rung;
  Alcotest.(check int) "creation + both stores crossed" 3 s.Rte.st_remote_calls;
  Alcotest.(check int) "three exhausted cycles" 6 s.Rte.st_retries;
  Alcotest.(check int) "drops" 9 s.Rte.st_drops;
  check_bits "fault time = 3 cycles + 5000 + 10000 waited" 28_500. s.Rte.st_fault_us

let test_rte_zero_fault_bit_identity () =
  (* With no faults the breaker sees only successes: a resilience
     policy must leave every stat — including the comm bits — exactly
     as the PR 3 retry-only path produced them. *)
  let bare, _ = run_resil ~rounds:4 () in
  let watched, _ = run_resil ~policy:(Some breaker_policy) ~rounds:4 () in
  check_bits "comm bits identical" bare.Rte.st_comm_us watched.Rte.st_comm_us;
  check_bits "fault bits identical" bare.Rte.st_fault_us watched.Rte.st_fault_us;
  Alcotest.(check bool) "all counters identical" true (bare = watched);
  Alcotest.(check int) "no breaker activity" 0 watched.Rte.st_breaker_opens;
  Alcotest.(check int) "still on the primary rung" 0 watched.Rte.st_final_rung

(* --- The fallback ladder on a real profile ---------------------------- *)

let prepared_octarine =
  lazy
    (let app = Octarine.app in
     let sc = App.scenario app "o_oldwp0" in
     let image = Adps.instrument app.App.app_image in
     let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
     (image, app.App.app_registry, sc.App.sc_run))

let test_ladder_shape_and_roundtrip () =
  let image, _, _ = Lazy.force prepared_octarine in
  let net = Net_profiler.exact Network.ethernet_10 in
  let ladder = Adps.fallback_ladder ~image ~net () in
  let k = Fallback.rung_count ladder in
  Alcotest.(check bool) "at least primary + all-client" true (k >= 2);
  Alcotest.(check string) "rung 0 is the primary" "primary" (Fallback.rung ladder 0).Fallback.rg_name;
  let last = Fallback.rung ladder (k - 1) in
  Alcotest.(check string) "final rung is all-client" "all-client" last.Fallback.rg_name;
  Alcotest.(check int) "all-client has an empty server" 0
    last.Fallback.rg_distribution.Analysis.server_count;
  (* Rungs are deduplicated by placement. *)
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      Alcotest.(check bool) "distinct placements" false
        ((Fallback.rung ladder i).Fallback.rg_distribution.Analysis.placement
        = (Fallback.rung ladder j).Fallback.rg_distribution.Analysis.placement)
    done
  done;
  Alcotest.(check bool) "main is never migration-safe" false (Fallback.migration_safe ladder (-1));
  (* encode/decode: names, placements and the safety table survive, and
     re-encoding is stable bytes. *)
  let encoded = Fallback.encode ladder in
  let decoded = Fallback.decode encoded in
  Alcotest.(check int) "rung count survives" k (Fallback.rung_count decoded);
  for i = 0 to k - 1 do
    let a = Fallback.rung ladder i and b = Fallback.rung decoded i in
    Alcotest.(check string) "name survives" a.Fallback.rg_name b.Fallback.rg_name;
    Alcotest.(check bool) "placement survives" true
      (a.Fallback.rg_distribution.Analysis.placement
      = b.Fallback.rg_distribution.Analysis.placement)
  done;
  Alcotest.(check string) "re-encoding is byte-stable" encoded (Fallback.encode decoded)

(* --- Typed decode errors ---------------------------------------------- *)

(* A hand-built distribution over [n] classifications whose placement
   is given bit by bit; metadata is arbitrary but self-consistent. *)
let dist_of_bits bits =
  let placement =
    Array.of_list
      (List.map (fun b -> if b then Constraints.Server else Constraints.Client) bits)
  in
  {
    Analysis.placement;
    cut_ns = 1_000;
    predicted_comm_us = 1.;
    server_count = Array.fold_left (fun a l -> if l = Constraints.Server then a + 1 else a) 0 placement;
    node_count = Array.length placement;
    algorithm = Coign_flowgraph.Mincut.Relabel_to_front;
  }

let hand_ladder ~n rung_bits =
  Fallback.of_rungs ~migration_safe:(Array.make n false)
    (List.mapi
       (fun i bits -> { Fallback.rg_name = Printf.sprintf "r%d" i; rg_distribution = dist_of_bits bits })
       rung_bits)

let decode_err s =
  match Fallback.decode s with
  | _ -> Alcotest.fail "decode accepted malformed input"
  | exception Fallback.Decode_error e -> e

let test_decode_rejects_malformed () =
  let good = Fallback.encode (hand_ladder ~n:3 [ [ true; true; false ]; [ false; false; false ] ]) in
  (* Sanity: the well-formed ladder decodes. *)
  Alcotest.(check int) "well-formed decodes" 2 (Fallback.rung_count (Fallback.decode good));
  (match decode_err "" with
  | Fallback.Truncated -> ()
  | e -> Alcotest.fail ("expected Truncated, got " ^ Fallback.decode_error_message e));
  (match decode_err "x y\n000\n" with
  | Fallback.Bad_header _ -> ()
  | e -> Alcotest.fail ("expected Bad_header, got " ^ Fallback.decode_error_message e));
  (match decode_err "0 3\n000\n" with
  | Fallback.Bad_header _ -> ()
  | e -> Alcotest.fail ("expected Bad_header (k < 1), got " ^ Fallback.decode_error_message e));
  (* Safety table shorter than the header claims. *)
  (match decode_err "1 3\n00\nr0\n3 0 0.0 rtf\nSSC\n" with
  | Fallback.Safety_mismatch { expected = 3; got = 2 } -> ()
  | e -> Alcotest.fail ("expected Safety_mismatch, got " ^ Fallback.decode_error_message e));
  (* Rung lines missing entirely. *)
  (match decode_err "1 3\n000\n" with
  | Fallback.Truncated_rung 0 -> ()
  | e -> Alcotest.fail ("expected Truncated_rung, got " ^ Fallback.decode_error_message e));
  (* A rung whose distribution body is garbage. *)
  (match decode_err "1 3\n000\nr0\nnot a header\nSSC\n" with
  | Fallback.Bad_rung { rung = 0; _ } -> ()
  | e -> Alcotest.fail ("expected Bad_rung, got " ^ Fallback.decode_error_message e))

let test_decode_rejects_out_of_range_ids () =
  (* A rung placing 4 classifications under a 3-entry safety table:
     classification 3 has no safety fact, and older decoders let the
     RTE index past the table. *)
  let ladder =
    Fallback.of_rungs ~migration_safe:(Array.make 3 false)
      [ { Fallback.rg_name = "r0"; rg_distribution = dist_of_bits [ true; false; true; false ] } ]
  in
  match decode_err (Fallback.encode ladder) with
  | Fallback.Rung_node_count { rung = 0; expected = 3; got = 4 } -> ()
  | e -> Alcotest.fail ("expected Rung_node_count, got " ^ Fallback.decode_error_message e)

let test_decode_rejects_duplicate_placements () =
  (* Two rungs with byte-identical placements: the RTE's rung switching
     would spin between them without ever changing the system. *)
  let dup = [ true; false; true ] in
  match decode_err (Fallback.encode (hand_ladder ~n:3 [ dup; [ false; false; false ]; dup ])) with
  | Fallback.Duplicate_placement { rung = 2; first = 0 } -> ()
  | e -> Alcotest.fail ("expected Duplicate_placement, got " ^ Fallback.decode_error_message e)

(* Round-trip: any ladder with distinct placements survives
   encode/decode byte-identically. *)
let qcheck_ladder_roundtrip =
  let gen =
    QCheck.Gen.(
      int_range 1 6 >>= fun n ->
      int_range 1 4 >>= fun k ->
      list_size (return (k * n)) bool >>= fun bits ->
      let rec rungs acc seen i =
        if i = k then List.rev acc
        else
          let row = List.filteri (fun j _ -> j / n = i) bits in
          if List.mem row seen then rungs acc seen (i + 1)
          else rungs (row :: acc) (row :: seen) (i + 1)
      in
      return (n, rungs [] [] 0))
  in
  QCheck.Test.make ~name:"fallback ladder encode/decode round-trip" ~count:300
    (QCheck.make gen) (fun (n, rows) ->
      QCheck.assume (rows <> []);
      let ladder = hand_ladder ~n rows in
      let encoded = Fallback.encode ladder in
      let decoded = Fallback.decode encoded in
      Fallback.encode decoded = encoded)

let test_execute_zero_fault_identity_with_ladder () =
  (* The whole-pipeline version of the bit-identity guarantee: a real
     analyzed application, executed with and without the resilience
     policy attached, fault-free — every exec stat matches. *)
  let image, registry, scenario = Lazy.force prepared_octarine in
  let net = Net_profiler.exact Network.ethernet_10 in
  let ladder = Adps.fallback_ladder ~image ~net () in
  let image, _ = Adps.analyze ~image ~net () in
  let run resilience =
    Adps.execute ?resilience ~image ~registry ~network:Network.ethernet_10 ~jitter:0.01
      ~seed:77L scenario
  in
  let bare = run None in
  let watched = run (Some (Rte.resilience ladder)) in
  check_bits "comm bits identical" bare.Adps.es_comm_us watched.Adps.es_comm_us;
  Alcotest.(check bool) "exec stats identical" true (bare = watched)

(* --- The resilience grid ---------------------------------------------- *)

let test_resilsim_improves_availability () =
  (* Sustained mid-run partition on photodraw: the retry-only baseline
     aborts partway (availability < 1) while the resilient run fails
     over and finishes. *)
  let app = Photodraw.app in
  let sc = App.scenario app "p_oldmsr" in
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let grid =
    Resilsim.run ~drop_rates:[ 0. ] ~partitions_us:[ 500_000. ]
      ~partition_start_us:50_000. ~image ~registry:app.App.app_registry
      ~network:Network.atm_155 sc.App.sc_run
  in
  match grid.Resilsim.rg_cells with
  | [ cell ] ->
      let avail = Resilsim.availability grid in
      Alcotest.(check bool) "baseline is cut short" false
        cell.Resilsim.rr_baseline.Adps.es_completed;
      Alcotest.(check bool) "resilient run completes" true
        cell.Resilsim.rr_resilient.Adps.es_completed;
      Alcotest.(check bool) "availability strictly improves" true
        (avail cell.Resilsim.rr_resilient > avail cell.Resilsim.rr_baseline);
      Alcotest.(check bool) "the ladder was used" true
        (cell.Resilsim.rr_resilient.Adps.es_failovers > 0)
  | cells -> Alcotest.fail (Printf.sprintf "expected 1 cell, got %d" (List.length cells))

let test_resilsim_deterministic_across_domains () =
  let image, registry, scenario = Lazy.force prepared_octarine in
  let go pool =
    Resilsim.to_json
      (Resilsim.run ?pool ~seed:0xD1CEL ~jitter:0.02 ~drop_rates:[ 0.; 0.1 ]
         ~partitions_us:[ 0.; 20_000. ] ~image ~registry ~network:Network.ethernet_10
         scenario)
  in
  let j1 = go None in
  let j2 = go None in
  let pool = Parallel.create ~domains:3 () in
  let j3 = Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> go (Some pool)) in
  Alcotest.(check string) "sequential runs identical" j1 j2;
  Alcotest.(check string) "pooled run identical" j1 j3;
  match Jsonu.parse j1 with
  | Ok (Jsonu.Arr cells) -> Alcotest.(check int) "one JSON object per cell" 4 (List.length cells)
  | Ok _ -> Alcotest.fail "grid JSON is not an array"
  | Error e -> Alcotest.fail ("grid JSON does not parse: " ^ e)

(* --- Golden CLI output ------------------------------------------------ *)

let exe = "../bin/coign.exe"
let golden = "golden/resilience_octarine.txt"

let with_tmp f =
  let dir = Filename.temp_file "coign_resil" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_resilience_golden () =
  if not (Sys.file_exists exe && Sys.file_exists golden) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let img = Filename.concat dir "oct.img" in
        let out = Filename.concat dir "resilience.txt" in
        let quiet args = Sys.command (Filename.quote_command exe args ^ " > /dev/null 2>&1") in
        Alcotest.(check int) "instrument" 0 (quiet [ "instrument"; "--app"; "octarine"; "-o"; img ]);
        Alcotest.(check int) "profile" 0
          (quiet [ "profile"; img; "--scenario"; "o_oldwp0"; "-o"; img ]);
        let cmd =
          Filename.quote_command exe
            [
              "resilience"; img; "--scenario"; "o_oldwp0"; "--network"; "atm";
              "--drops"; "0,0.1"; "--partitions-ms"; "0,500"; "--partition-start-ms"; "50";
              "--jobs"; "1";
            ]
          ^ " > " ^ Filename.quote out ^ " 2>/dev/null"
        in
        Alcotest.(check int) "resilience" 0 (Sys.command cmd);
        Alcotest.(check string) "resilience text output matches golden" (read_file golden)
          (read_file out))

let suite =
  [
    Alcotest.test_case "breaker trips at the failure threshold" `Quick
      test_breaker_trips_at_threshold;
    Alcotest.test_case "breaker probe closes and resets cooloff" `Quick
      test_breaker_probe_closes_and_resets_cooloff;
    Alcotest.test_case "breaker cooloff escalation is capped" `Quick test_breaker_cooloff_capped;
    Alcotest.test_case "breaker ewma blends outcomes" `Quick test_breaker_ewma_blends;
    Alcotest.test_case "breaker rejects bad policies" `Quick test_breaker_rejects_bad_policy;
    QCheck_alcotest.to_alcotest ~long:false prop_open_never_admits_before_cooloff;
    Alcotest.test_case "rte: failover rescues the failed call" `Quick
      test_rte_failover_rescues_call;
    Alcotest.test_case "rte: stranded call probes and fails back" `Quick
      test_rte_stranded_probe_failback;
    Alcotest.test_case "rte: zero-fault bit identity with resilience" `Quick
      test_rte_zero_fault_bit_identity;
    Alcotest.test_case "ladder shape and encode round-trip" `Slow test_ladder_shape_and_roundtrip;
    Alcotest.test_case "decode rejects malformed ladders" `Quick test_decode_rejects_malformed;
    Alcotest.test_case "decode rejects out-of-range classification ids" `Quick
      test_decode_rejects_out_of_range_ids;
    Alcotest.test_case "decode rejects duplicate rung placements" `Quick
      test_decode_rejects_duplicate_placements;
    QCheck_alcotest.to_alcotest ~long:false qcheck_ladder_roundtrip;
    Alcotest.test_case "execute: zero-fault identity with ladder" `Slow
      test_execute_zero_fault_identity_with_ladder;
    Alcotest.test_case "resilsim improves availability under partition" `Slow
      test_resilsim_improves_availability;
    Alcotest.test_case "resilsim deterministic across domains" `Slow
      test_resilsim_deterministic_across_domains;
    Alcotest.test_case "cli resilience golden output" `Slow test_resilience_golden;
  ]
