(* The Coign command-line toolchain (paper Figure 1).

   Stages communicate through serialized application images, so each
   stage can run as a separate process:

     coign instrument --app octarine -o octarine.img
     coign profile octarine.img --scenario o_oldwp7 -o octarine.img
     coign analyze octarine.img --network ethernet10 -o octarine.img
     coign show octarine.img
     coign run octarine.img --scenario o_oldwp7 --network ethernet10

   Application *code* cannot live in a file (this is a simulation of
   binaries, not a binary format), so images refer to the built-in
   application suite by name. *)

open Cmdliner
open Coign_util
open Coign_netsim
open Coign_image
open Coign_core
open Coign_apps

let app_of_image (img : Binary_image.t) =
  try Suite.find_app img.Binary_image.img_name
  with Not_found ->
    Printf.eprintf "error: image %S does not name a built-in application (%s)\n"
      img.Binary_image.img_name
      (String.concat ", " (List.map (fun a -> a.App.app_name) Suite.all));
    exit 1

let scenario_of app id =
  try App.scenario app id
  with Not_found ->
    Printf.eprintf "error: application %s has no scenario %S (has: %s)\n" app.App.app_name id
      (String.concat ", " (List.map (fun s -> s.App.sc_id) app.App.app_scenarios));
    exit 1

let network_names =
  [
    ("isdn", Network.isdn_128); ("ethernet10", Network.ethernet_10);
    ("ethernet100", Network.ethernet_100); ("atm", Network.atm_155); ("san", Network.san_1g);
  ]

let network_conv =
  let parse s =
    match List.assoc_opt s network_names with
    | Some n -> Ok n
    | None ->
        Error (`Msg (Printf.sprintf "unknown network %S (known: %s)" s
                       (String.concat ", " (List.map fst network_names))))
  in
  let print ppf n = Format.pp_print_string ppf n.Network.net_name in
  Arg.conv (parse, print)

(* Common arguments *)

let image_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE" ~doc:"Application image file.")

let output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the resulting image.")

let scenario_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "scenario" ] ~docv:"ID" ~doc:"Scenario id from Table 1, e.g. o_oldwp7.")

let network_arg =
  Arg.(
    value
    & opt network_conv Network.ethernet_10
    & info [ "network" ] ~docv:"NET" ~doc:"Network model: isdn, ethernet10, ethernet100, atm, san.")

let self_profile_arg =
  Arg.(
    value & flag
    & info [ "self-profile" ]
        ~doc:
          "Also time the partitioning pipeline's own phases (profile load, graph build, \
           pricing, cut, validation) and print the table afterwards.")

let print_self_profile profiler =
  Format.printf "@.pipeline self-profile (wall time)@.@[<v>%a@]@?" Coign_obs.Profiler.pp_text
    profiler

(* Run one scenario under the image's stored mode — profiling RTE for a
   profiling-mode image, distributed RTE (deterministic: jitter 0) when
   the image carries a distribution — with observability attached. *)
let observed_run ?loggers ?tracer ?metrics image scenario_id network =
  let app = app_of_image image in
  let sc = scenario_of app scenario_id in
  let config =
    match image.Binary_image.config with
    | Some c -> c
    | None ->
        Printf.eprintf "error: image has no configuration record (not instrumented)\n";
        exit 1
  in
  match Config_record.mode config with
  | Config_record.Distributed ->
      ignore
        (Adps.execute ?loggers ?tracer ?metrics ~image ~registry:app.App.app_registry ~network
           sc.App.sc_run);
      "distributed"
  | Config_record.Profiling ->
      ignore
        (Adps.profile_results ?loggers ?tracer ?metrics ~image ~registry:app.App.app_registry
           sc.App.sc_run);
      "profiling"
  | Config_record.Off ->
      Printf.eprintf "error: image's runtime mode is off (instrument or analyze it first)\n";
      exit 1

(* instrument ------------------------------------------------------- *)

let instrument_cmd =
  let app_name =
    Arg.(
      required
      & opt (some string) None
      & info [ "app" ] ~docv:"APP" ~doc:"Application: octarine, photodraw, benefits, or ingest.")
  in
  let classifier =
    Arg.(
      value & opt string "ifcb"
      & info [ "classifier" ] ~docv:"KIND"
          ~doc:"Instance classifier: incremental, pcb, st, stcb, ifcb, epcb, ib.")
  in
  let depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"N" ~doc:"Classifier stack-walk depth (default: complete walk).")
  in
  let run app_name classifier depth output =
    (match Classifier.kind_of_name classifier with
    | Some _ -> ()
    | None ->
        Printf.eprintf "error: unknown classifier %S\n" classifier;
        exit 1);
    let app =
      try Suite.find_app app_name
      with Not_found ->
        Printf.eprintf "error: unknown application %S\n" app_name;
        exit 1
    in
    let image = Adps.instrument ~classifier ~stack_depth:depth app.App.app_image in
    Binary_image.save image output;
    Printf.printf "instrumented %s -> %s (classifier %s)\n" app_name output classifier
  in
  let term = Term.(const run $ app_name $ classifier $ depth $ output_arg) in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Rewrite an application binary to load the Coign profiling runtime.")
    term

(* profile ---------------------------------------------------------- *)

let profile_cmd =
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Also write the run's profile to a standalone log file (combinable later with \
             $(b,coign combine)).")
  in
  let run image_path scenario_id log_file output =
    let image = Binary_image.load image_path in
    let app = app_of_image image in
    let sc = scenario_of app scenario_id in
    let image, stats, rte =
      Adps.profile_results ~image ~registry:app.App.app_registry sc.App.sc_run
    in
    Binary_image.save image output;
    (match log_file with
    | Some path ->
        Profile_log.save
          (Profile_log.of_run ~app:app.App.app_name ~scenario:scenario_id rte)
          path;
        Printf.printf "wrote profile log %s\n" path
    | None -> ());
    Printf.printf
      "profiled %s: %d instances, %d calls, %d ICC bytes; %d classifications accumulated\n"
      scenario_id stats.Adps.ps_instances stats.Adps.ps_calls stats.Adps.ps_bytes
      stats.Adps.ps_classifications
  in
  let term = Term.(const run $ image_arg $ scenario_arg $ log_file $ output_arg) in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a usage scenario against an instrumented image, accumulating ICC profiles.")
    term

(* combine ---------------------------------------------------------- *)

let combine_cmd =
  let logs =
    Arg.(
      non_empty
      & pos_right 0 file []
      & info [] ~docv:"LOG" ~doc:"Profile log files written by $(b,coign profile --log).")
  in
  let run image_path logs output =
    let image = Binary_image.load image_path in
    let combined = Profile_log.combine_all (List.map Profile_log.load logs) in
    let image = Profile_log.into_image combined image in
    Binary_image.save image output;
    Printf.printf "combined %d logs (%s): %d instances, %d calls, %d classifications\n"
      (List.length logs) combined.Profile_log.pl_scenario combined.Profile_log.pl_instances
      combined.Profile_log.pl_calls
      (Classifier.classification_count combined.Profile_log.pl_classifier)
  in
  let term = Term.(const run $ image_arg $ logs $ output_arg) in
  Cmd.v
    (Cmd.info "combine"
       ~doc:
         "Fold standalone profile logs (possibly from runs on other machines) into an \
          instrumented image's configuration record.")
    term

(* lint ------------------------------------------------------------- *)

(* Shared by lint and verify: exit 1 when the report crosses the gating
   severity — errors always gate, warnings gate too under --strict. *)
let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Exit non-zero on warnings as well as errors, so CI can gate on a clean report.")

let gate_exit ~strict diags =
  match Lint.worst diags with
  | Some Lint.Error -> exit 1
  | Some Lint.Warning when strict -> exit 1
  | _ -> ()

let lint_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")
  in
  let run image_path json strict =
    let image = Binary_image.load image_path in
    let diags = Lint.lint_image image in
    if json then print_endline (Lint.to_json diags)
    else if diags = [] then print_endline "no diagnostics"
    else Format.printf "%a" Lint.pp_text diags;
    gate_exit ~strict diags
  in
  let term = Term.(const run $ image_arg $ json $ strict_arg) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static remotability linter over an image: interface-flow analysis, \
          non-remotable interface checks, pin conflicts, and co-location constraints \
          (diagnostic codes CG000-CG007). Exits 1 when the report crosses the gating \
          severity (errors; with $(b,--strict), warnings too).")
    term

(* verify ----------------------------------------------------------- *)

let verify_cmd =
  let module V = Coign_verify in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as a JSON object.")
  in
  let depth_arg =
    Arg.(
      value
      & opt int V.Explore.default_depth
      & info [ "depth" ] ~docv:"N"
          ~doc:"Bound on the explored interleaving length (BFS layers).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains exploring initial-event subtrees concurrently: 1 (default) = \
             sequential, 0 = one per core. The output is identical either way.")
  in
  let pool_size_arg =
    Arg.(
      value & opt int 1
      & info [ "pool" ] ~docv:"K"
          ~doc:
            "Verify the pool-elastic ladder at this widest pool size (at most 3): the model \
             gains a host dimension and the explorer interleaves replica promotions and \
             pool resizes alongside failovers. 1 (default) checks the classic two-host \
             ladder.")
  in
  let run image_path network depth jobs pool_size json strict =
    if depth < 1 then begin
      Printf.eprintf "error: --depth must be >= 1\n";
      exit 1
    end;
    if pool_size < 1 || pool_size > V.Model.max_pool_size then begin
      Printf.eprintf "error: --pool must be in [1, %d]\n" V.Model.max_pool_size;
      exit 1
    end;
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 0\n";
      exit 1
    end;
    let image = Binary_image.load image_path in
    let classifier, icc =
      match Adps.load_profile image with
      | Some p -> p
      | None ->
          Printf.eprintf "error: image holds no profile — run coign profile first\n";
          exit 1
    in
    let session =
      try Adps.analysis_session image
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let net = Net_profiler.exact network in
    let pool, owned =
      match jobs with
      | 1 -> (None, None)
      | 0 -> (Some (Parallel.default ()), None)
      | n ->
          let p = Parallel.create ~domains:(n - 1) () in
          (Some p, Some p)
    in
    let base_ladder = Adps.fallback_ladder ?pool ~image ~net () in
    (* With --pool > 1, the checked ladder is the pool-elastic one:
       every pool rung contributes its underlying two-way cut, and the
       model carries each rung's host count so the explorer can
       interleave promotions and resizes. At --pool 1 this is exactly
       the base ladder. *)
    let ladder, pool_sizes =
      if pool_size = 1 then (base_ladder, None)
      else begin
        let pl =
          try
            Fallback.pool_ladder ~hosts:pool_size session
              ~net:(Net_profiler.exact network) base_ladder
          with Invalid_argument msg | Fallback.Invalid msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        in
        let k = Fallback.pool_rung_count pl in
        let rungs =
          List.init k (fun i ->
              let pr = Fallback.pool_rung_at pl i in
              { Fallback.rg_name = pr.Fallback.pr_name;
                rg_distribution = pr.Fallback.pr_distribution })
        in
        let sizes =
          List.init k (fun i ->
              (Fallback.pool_rung_at pl i).Fallback.pr_shape.Coign_core.Pool.sh_hosts)
        in
        ( Fallback.of_rungs
            ~migration_safe:(Fallback.migration_safety_table (Fallback.pool_base pl))
            rungs,
          Some sizes )
      end
    in
    let truth = Fallback.migration_safety session in
    let model = V.Model.build ?pool_sizes ~classifier ~icc ~ladder ~truth () in
    let result = V.Explore.run ?pool ~depth model in
    Option.iter Parallel.shutdown owned;
    (* I2: every rung honours the static constraints.  The terminal
       all-client rung waives location pins by design — a Server pin
       presumes a reachable server. *)
    let rung_diags =
      let classifier = Analysis.Session.classifier session in
      let constraints = Analysis.Session.constraints session in
      let k = Fallback.rung_count ladder in
      List.concat
        (List.init k (fun r ->
             let rung = Fallback.rung ladder r in
             Analysis.validate ~classifier ~constraints rung.Fallback.rg_distribution
             |> List.filter (fun v ->
                    r < k - 1
                    || match v with Analysis.Pin_violated _ -> false | _ -> true)
             |> List.map (fun v ->
                    Lint.diag "CG007" Lint.Error rung.Fallback.rg_name
                      (Format.asprintf "rung %d (%s): %a" r rung.Fallback.rg_name
                         Analysis.pp_violation v))))
    in
    let diags = Lint.order (V.Explore.diagnostics model result @ rung_diags) in
    let stats = result.V.Explore.r_stats in
    let rungs_reached =
      List.filteri (fun r _ -> stats.V.Explore.sr_rungs_reached.(r))
        (Array.to_list model.V.Model.m_rung_names)
    in
    if json then begin
      let sev_count s =
        List.length (List.filter (fun d -> d.Lint.severity = s) diags)
      in
      let j =
        Jsonu.Obj
          [
            ("image", Jsonu.Str image.Binary_image.img_name);
            ("network", Jsonu.Str network.Network.net_name);
            ("depth", Jsonu.Int depth);
            ( "model",
              Jsonu.Obj
                [
                  ("classifications", Jsonu.Int model.V.Model.m_classifications);
                  ("groups", Jsonu.Int (V.Model.group_count model));
                  ("edges", Jsonu.Int (Array.length model.V.Model.m_edges));
                  ( "rungs",
                    Jsonu.Arr
                      (Array.to_list
                         (Array.map (fun n -> Jsonu.Str n) model.V.Model.m_rung_names)) );
                ] );
            ( "stats",
              Jsonu.Obj
                [
                  ("states", Jsonu.Int stats.V.Explore.sr_states);
                  ("transitions", Jsonu.Int stats.V.Explore.sr_transitions);
                  ("dedup_hits", Jsonu.Int stats.V.Explore.sr_dedup_hits);
                  ("depth_reached", Jsonu.Int stats.V.Explore.sr_depth);
                  ("complete", Jsonu.Bool stats.V.Explore.sr_complete);
                  ( "rungs_reached",
                    Jsonu.Arr (List.map (fun n -> Jsonu.Str n) rungs_reached) );
                ] );
            ( "violations",
              Jsonu.Arr
                (List.map
                   (fun (v : V.Explore.violation) ->
                     Jsonu.Obj
                       [
                         ("code", Jsonu.Str v.V.Explore.vl_code);
                         ("subject", Jsonu.Str v.V.Explore.vl_subject);
                         ("message", Jsonu.Str v.V.Explore.vl_message);
                         ( "trace",
                           Jsonu.Arr
                             (List.map
                                (fun ev -> Jsonu.Str (V.Explore.event_id model ev))
                                v.V.Explore.vl_trace) );
                       ])
                   result.V.Explore.r_violations) );
            ( "diagnostics",
              Jsonu.Arr
                (List.map
                   (fun (d : Lint.diagnostic) ->
                     Jsonu.Obj
                       [
                         ("code", Jsonu.Str d.Lint.code);
                         ("severity", Jsonu.Str (Lint.severity_name d.Lint.severity));
                         ("subject", Jsonu.Str d.Lint.subject);
                         ("message", Jsonu.Str d.Lint.message);
                       ])
                   diags) );
            ("errors", Jsonu.Int (sev_count Lint.Error));
            ("warnings", Jsonu.Int (sev_count Lint.Warning));
          ]
      in
      print_endline (Jsonu.to_string j)
    end
    else begin
      Printf.printf "verify: %s on %s, depth %d\n" image.Binary_image.img_name
        network.Network.net_name depth;
      Printf.printf "model: %d classifications -> %d groups, %d edges, %d rungs\n"
        model.V.Model.m_classifications (V.Model.group_count model)
        (Array.length model.V.Model.m_edges)
        (V.Model.rung_count model);
      Printf.printf "explored: %d states, %d transitions, %d dedup hits, depth %d, %s\n"
        stats.V.Explore.sr_states stats.V.Explore.sr_transitions
        stats.V.Explore.sr_dedup_hits stats.V.Explore.sr_depth
        (if stats.V.Explore.sr_complete then "complete" else "truncated");
      Printf.printf "rungs installed: %s\n" (String.concat ", " rungs_reached);
      if diags = [] then print_endline "no violations: ladder verified"
      else Format.printf "%a" Lint.pp_text diags
    end;
    gate_exit ~strict diags
  in
  let term =
    Term.(
      const run $ image_arg $ network_arg $ depth_arg $ jobs_arg $ pool_size_arg $ json_arg
      $ strict_arg)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Exhaustively explore the image's failover interleavings — link faults, breaker \
          transitions, failover, migration, failback — against its fallback ladder, \
          checking that no reachable placement crosses a non-remotable interface (CG008), \
          no reachable migration moves a statically unsafe classification (CG009), and no \
          rung is dead (CG010). Exits 1 when the report crosses the gating severity \
          (errors; with $(b,--strict), warnings too).")
    term

(* analyze ---------------------------------------------------------- *)

let analyze_cmd =
  let run image_path network self_profile output =
    let image = Binary_image.load image_path in
    let profiler = if self_profile then Some (Coign_obs.Profiler.create ()) else None in
    let net = Net_profiler.profile (Prng.create 0xC01L) network in
    Printf.printf "network profile: %s\n" (Format.asprintf "%a" Net_profiler.pp net);
    (* The linter runs automatically ahead of the cut; warnings are
       informational, errors cannot occur here (they come from the
       validator below, as Lint.Rejected). *)
    (match
       List.filter (fun d -> d.Lint.severity <> Lint.Info) (Lint.lint_image image)
     with
    | [] -> ()
    | warnings -> Format.printf "%a" Lint.pp_text warnings);
    let image, dist =
      try Adps.analyze ?profiler ~image ~net ()
      with Lint.Rejected diags ->
        Format.eprintf "%a" Lint.pp_text diags;
        Printf.eprintf "error: distribution rejected by the static validator\n";
        exit 1
    in
    Binary_image.save image output;
    let classifier, _ = Option.get (Adps.load_distribution image) in
    Printf.printf "distribution: %d of %d classifications on the server (cut %.3f s)\n"
      dist.Analysis.server_count dist.Analysis.node_count
      (float_of_int dist.Analysis.cut_ns /. 1e9);
    List.iter
      (fun c ->
        Printf.printf "  server: %-28s %s\n"
          (Classifier.class_of_classification classifier c)
          (Classifier.descriptor_of_classification classifier c))
      (Analysis.server_classifications dist);
    Option.iter print_self_profile profiler
  in
  let term = Term.(const run $ image_arg $ network_arg $ self_profile_arg $ output_arg) in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Cut the profiled ICC graph against a network profile and rewrite the image with \
          the chosen distribution.")
    term

(* sweep ------------------------------------------------------------ *)

let sweep_cmd =
  let from_arg =
    Arg.(
      value
      & opt network_conv Network.isdn_128
      & info [ "from" ] ~docv:"NET" ~doc:"Slow end of the sweep (default isdn).")
  in
  let to_arg =
    Arg.(
      value
      & opt network_conv Network.san_1g
      & info [ "to" ] ~docv:"NET" ~doc:"Fast end of the sweep (default san).")
  in
  let points_arg =
    Arg.(
      value & opt int 20
      & info [ "points" ] ~docv:"N"
          ~doc:"Number of geometrically interpolated network models (>= 2).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the table as a JSON array.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains solving sweep points concurrently: 1 = sequential, 0 (default) = one \
             per core. The output is identical either way.")
  in
  let run image_path from_net to_net points json jobs self_profile =
    if points < 2 then begin
      Printf.eprintf "error: --points must be at least 2\n";
      exit 1
    end;
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 0\n";
      exit 1
    end;
    let image = Binary_image.load image_path in
    let profiler = if self_profile then Some (Coign_obs.Profiler.create ()) else None in
    let session =
      try Adps.analysis_session ?profiler image
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let networks = Network.geometric_sweep ~points ~from_net ~to_net () in
    (* One session, many networks: stage 1 of the analysis ran once in
       analysis_session; each point below is a reprice+recut. *)
    let pool, owned =
      match jobs with
      | 1 -> (None, None)
      | 0 -> (Some (Parallel.default ()), None)
      | n ->
          let p = Parallel.create ~domains:(n - 1) () in
          (Some p, Some p)
    in
    let rows = Coign_sim.Experiment.sweep ?pool ?profiler ~session networks in
    Option.iter Parallel.shutdown owned;
    if json then begin
      let escape s =
        String.concat ""
          (List.map
             (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
             (List.init (String.length s) (String.get s)))
      in
      let row (r : Coign_sim.Experiment.sweep_point) =
        Printf.sprintf
          "{\"network\": \"%s\", \"latency_us\": %g, \"bandwidth_mbps\": %g, \"proc_us\": \
           %g, \"server_classifications\": %d, \"cut_ns\": %d, \"predicted_comm_us\": %.17g}"
          (escape r.Coign_sim.Experiment.sw_network.Network.net_name)
          r.Coign_sim.Experiment.sw_network.Network.latency_us
          r.Coign_sim.Experiment.sw_network.Network.bandwidth_mbps
          r.Coign_sim.Experiment.sw_network.Network.proc_us
          r.Coign_sim.Experiment.sw_server_classifications
          r.Coign_sim.Experiment.sw_cut_ns r.Coign_sim.Experiment.sw_predicted_comm_us
      in
      Printf.printf "[\n%s\n]\n" (String.concat ",\n" (List.map row rows))
    end
    else begin
      Printf.printf "placement vs. network over %d analyzed classifications\n"
        (Analysis.Session.node_count session);
      Printf.printf "%-20s  %14s  %12s  %10s  %18s\n" "network" "bandwidth Mbps" "latency us"
        "server cls" "predicted comm (s)";
      print_endline (String.make 82 '-');
      List.iter
        (fun (r : Coign_sim.Experiment.sweep_point) ->
          Printf.printf "%-20s  %14.3f  %12.1f  %10d  %18.3f\n"
            r.Coign_sim.Experiment.sw_network.Network.net_name
            r.Coign_sim.Experiment.sw_network.Network.bandwidth_mbps
            r.Coign_sim.Experiment.sw_network.Network.latency_us
            r.Coign_sim.Experiment.sw_server_classifications
            (r.Coign_sim.Experiment.sw_predicted_comm_us /. 1e6))
        rows
    end;
    Option.iter print_self_profile profiler
  in
  let term =
    Term.(
      const run $ image_arg $ from_arg $ to_arg $ points_arg $ json_arg $ jobs_arg
      $ self_profile_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Re-cut one accumulated profile against a range of network models (paper Figures \
          4-8): build the analysis session once, then reprice and recut per point, \
          optionally across domains.")
    term

(* faultsim --------------------------------------------------------- *)

let faultsim_cmd =
  let drops_arg =
    Arg.(
      value
      & opt (list float) Coign_sim.Faultsim.default_drop_rates
      & info [ "drops" ] ~docv:"RATES"
          ~doc:"Comma-separated per-message drop probabilities, each in [0, 1].")
  in
  let partitions_arg =
    Arg.(
      value
      & opt (list float) [ 0.; 50. ]
      & info [ "partitions-ms" ] ~docv:"MS"
          ~doc:"Comma-separated partition-window lengths in milliseconds (0 = no window).")
  in
  let partition_start_arg =
    Arg.(
      value & opt float 0.
      & info [ "partition-start-ms" ] ~docv:"MS"
          ~doc:"Where each partition window opens on the run's virtual clock.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0x5EED
      & info [ "seed" ] ~docv:"N"
          ~doc:"Master seed; jitter, backoff, and fault verdicts each derive their own stream.")
  in
  let jitter_arg =
    Arg.(
      value & opt float 0.
      & info [ "jitter" ] ~docv:"R" ~doc:"Relative stddev of per-message time noise.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the grid as a JSON array.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains running grid cells concurrently: 1 = sequential, 0 (default) = one per \
             core. The output is identical either way.")
  in
  let run image_path scenario_id network drops partitions_ms start_ms seed jitter json jobs
      self_profile =
    if List.exists (fun d -> d < 0. || d > 1.) drops then begin
      Printf.eprintf "error: --drops rates must be in [0, 1]\n";
      exit 1
    end;
    if List.exists (fun p -> p < 0.) partitions_ms || start_ms < 0. then begin
      Printf.eprintf "error: partition lengths and start must be >= 0\n";
      exit 1
    end;
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 0\n";
      exit 1
    end;
    let image = Binary_image.load image_path in
    let app = app_of_image image in
    let sc = scenario_of app scenario_id in
    let pool, owned =
      match jobs with
      | 1 -> (None, None)
      | 0 -> (Some (Parallel.default ()), None)
      | n ->
          let p = Parallel.create ~domains:(n - 1) () in
          (Some p, Some p)
    in
    let profiler = if self_profile then Some (Coign_obs.Profiler.create ()) else None in
    let grid =
      try
        Coign_sim.Faultsim.run ?pool ?profiler ~seed:(Int64.of_int seed) ~jitter
          ~drop_rates:drops
          ~partitions_us:(List.map (fun ms -> ms *. 1e3) partitions_ms)
          ~partition_start_us:(start_ms *. 1e3) ~image ~registry:app.App.app_registry
          ~network sc.App.sc_run
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    Option.iter Parallel.shutdown owned;
    if json then print_string (Coign_sim.Faultsim.to_json grid)
    else Format.printf "@[<v>%a@]@?" Coign_sim.Faultsim.pp_text grid;
    Option.iter print_self_profile profiler
  in
  let term =
    Term.(
      const run $ image_arg $ scenario_arg $ network_arg $ drops_arg $ partitions_arg
      $ partition_start_arg $ seed_arg $ jitter_arg $ json_arg $ jobs_arg $ self_profile_arg)
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Execute a scenario under the image's distribution across a fault grid (drop rate x \
          partition length), tabulating completed calls, retries, instantiation fallbacks, \
          abandoned calls, and fault-attributable communication time. Deterministic: the \
          seed fixes the whole schedule, across any number of jobs.")
    term

(* resilience ------------------------------------------------------- *)

let resilience_cmd =
  let drops_arg =
    Arg.(
      value
      & opt (list float) Coign_sim.Resilsim.default_drop_rates
      & info [ "drops" ] ~docv:"RATES"
          ~doc:"Comma-separated per-message drop probabilities, each in [0, 1].")
  in
  let partitions_arg =
    Arg.(
      value
      & opt (list float) [ 0.; 200. ]
      & info [ "partitions-ms" ] ~docv:"MS"
          ~doc:"Comma-separated partition-window lengths in milliseconds (0 = no window).")
  in
  let partition_start_arg =
    Arg.(
      value & opt float 0.
      & info [ "partition-start-ms" ] ~docv:"MS"
          ~doc:"Where each partition window opens on the run's virtual clock.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0x5EED
      & info [ "seed" ] ~docv:"N"
          ~doc:"Master seed; jitter, backoff, and fault verdicts each derive their own stream.")
  in
  let jitter_arg =
    Arg.(
      value & opt float 0.
      & info [ "jitter" ] ~docv:"R" ~doc:"Relative stddev of per-message time noise.")
  in
  let cooloff_arg =
    Arg.(
      value
      & opt float (Coign_netsim.Health.default_policy.Coign_netsim.Health.hp_cooloff_us /. 1e3)
      & info [ "cooloff-ms" ] ~docv:"MS"
          ~doc:"Initial circuit-breaker cooloff in milliseconds (virtual clock).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt int Coign_netsim.Health.default_policy.Coign_netsim.Health.hp_failure_threshold
      & info [ "failure-threshold" ] ~docv:"N"
          ~doc:"Consecutive link failures that trip the breaker.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the grid as a JSON array.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains running grid cells concurrently: 1 = sequential, 0 (default) = one per \
             core. The output is identical either way.")
  in
  let run image_path scenario_id network drops partitions_ms start_ms seed jitter cooloff_ms
      threshold json jobs self_profile =
    if List.exists (fun d -> d < 0. || d > 1.) drops then begin
      Printf.eprintf "error: --drops rates must be in [0, 1]\n";
      exit 1
    end;
    if List.exists (fun p -> p < 0.) partitions_ms || start_ms < 0. then begin
      Printf.eprintf "error: partition lengths and start must be >= 0\n";
      exit 1
    end;
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 0\n";
      exit 1
    end;
    if cooloff_ms <= 0. || threshold < 1 then begin
      Printf.eprintf "error: --cooloff-ms must be > 0 and --failure-threshold >= 1\n";
      exit 1
    end;
    let image = Binary_image.load image_path in
    let app = app_of_image image in
    let sc = scenario_of app scenario_id in
    let health =
      {
        Coign_netsim.Health.default_policy with
        Coign_netsim.Health.hp_failure_threshold = threshold;
        hp_cooloff_us = cooloff_ms *. 1e3;
      }
    in
    let pool, owned =
      match jobs with
      | 1 -> (None, None)
      | 0 -> (Some (Parallel.default ()), None)
      | n ->
          let p = Parallel.create ~domains:(n - 1) () in
          (Some p, Some p)
    in
    let profiler = if self_profile then Some (Coign_obs.Profiler.create ()) else None in
    let grid =
      try
        Coign_sim.Resilsim.run ?pool ?profiler ~seed:(Int64.of_int seed) ~jitter ~health
          ~drop_rates:drops
          ~partitions_us:(List.map (fun ms -> ms *. 1e3) partitions_ms)
          ~partition_start_us:(start_ms *. 1e3) ~image ~registry:app.App.app_registry
          ~network sc.App.sc_run
      with
      | Invalid_argument msg | Coign_core.Fallback.Invalid msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      | Lint.Rejected diags ->
          Format.eprintf "%a" Lint.pp_text diags;
          Printf.eprintf "error: distribution rejected by the static validator\n";
          exit 1
    in
    Option.iter Parallel.shutdown owned;
    if json then print_string (Coign_sim.Resilsim.to_json grid)
    else Format.printf "@[<v>%a@]@?" Coign_sim.Resilsim.pp_text grid;
    Option.iter print_self_profile profiler
  in
  let term =
    Term.(
      const run $ image_arg $ scenario_arg $ network_arg $ drops_arg $ partitions_arg
      $ partition_start_arg $ seed_arg $ jitter_arg $ cooloff_arg $ threshold_arg $ json_arg
      $ jobs_arg $ self_profile_arg)
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Compare adaptive failover (circuit breaker + precomputed fallback distributions) \
          against the retry-only distributed RTE across a fault grid: each cell runs the \
          scenario both ways and tabulates availability, communication delta, breaker \
          activity, and the final fallback rung. Deterministic: the seed fixes the whole \
          schedule, across any number of jobs.")
    term

(* fleet ------------------------------------------------------------ *)

let fleet_cmd =
  let pool_arg =
    Arg.(
      value & opt int 3
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Largest pool size in the grid; every size from 1 to $(docv) is run. Size 1 is \
             the PR 5 two-host resilience path bit for bit, and the grid checks that.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N"
          ~doc:
            "Live replicas per migration-safe shard (clamped to each rung's host count). \
             Replicated shards survive a host loss by promotion instead of a pool resize.")
  in
  let fault_len_arg =
    Arg.(
      value & opt float 500.
      & info [ "fault-ms" ] ~docv:"MS"
          ~doc:
            "Length in milliseconds of the fault window the crash and partition regimes \
             apply (crash: one host's link; partition: the whole network).")
  in
  let fault_start_arg =
    Arg.(
      value & opt float 50.
      & info [ "fault-start-ms" ] ~docv:"MS"
          ~doc:"Where the fault window opens on the run's virtual clock.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0x5EED
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Master seed; jitter, backoff, fault verdicts, and each pool host's fault \
             stream derive their own substream.")
  in
  let jitter_arg =
    Arg.(
      value & opt float 0.
      & info [ "jitter" ] ~docv:"R" ~doc:"Relative stddev of per-message time noise.")
  in
  let cooloff_arg =
    Arg.(
      value
      & opt float (Coign_netsim.Health.default_policy.Coign_netsim.Health.hp_cooloff_us /. 1e3)
      & info [ "cooloff-ms" ] ~docv:"MS"
          ~doc:"Initial circuit-breaker cooloff in milliseconds (virtual clock).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt int Coign_netsim.Health.default_policy.Coign_netsim.Health.hp_failure_threshold
      & info [ "failure-threshold" ] ~docv:"N"
          ~doc:"Consecutive link failures that trip a host's breaker.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the grid as a JSON array.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains running grid cells concurrently: 1 = sequential, 0 (default) = one per \
             core. The output is identical either way.")
  in
  let run image_path scenario_id network pool_size replicas fault_ms start_ms seed jitter
      cooloff_ms threshold json jobs self_profile =
    if pool_size < 1 || replicas < 1 then begin
      Printf.eprintf "error: --pool and --replicas must be >= 1\n";
      exit 1
    end;
    if fault_ms <= 0. || start_ms < 0. then begin
      Printf.eprintf "error: --fault-ms must be > 0 and --fault-start-ms >= 0\n";
      exit 1
    end;
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 0\n";
      exit 1
    end;
    if cooloff_ms <= 0. || threshold < 1 then begin
      Printf.eprintf "error: --cooloff-ms must be > 0 and --failure-threshold >= 1\n";
      exit 1
    end;
    let image = Binary_image.load image_path in
    let app = app_of_image image in
    let sc = scenario_of app scenario_id in
    let health =
      {
        Coign_netsim.Health.default_policy with
        Coign_netsim.Health.hp_failure_threshold = threshold;
        hp_cooloff_us = cooloff_ms *. 1e3;
      }
    in
    let pool, owned =
      match jobs with
      | 1 -> (None, None)
      | 0 -> (Some (Parallel.default ()), None)
      | n ->
          let p = Parallel.create ~domains:(n - 1) () in
          (Some p, Some p)
    in
    let profiler = if self_profile then Some (Coign_obs.Profiler.create ()) else None in
    let grid =
      try
        Coign_sim.Fleetsim.run ?pool ?profiler ~seed:(Int64.of_int seed) ~jitter ~health
          ~replicas
          ~pools:(List.init pool_size (fun i -> i + 1))
          ~fault_window_us:(start_ms *. 1e3, (start_ms +. fault_ms) *. 1e3)
          ~image ~registry:app.App.app_registry ~network sc.App.sc_run
      with
      | Invalid_argument msg | Coign_core.Fallback.Invalid msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      | Coign_core.Fallback.Decode_error e ->
          Printf.eprintf "error: %s\n" (Coign_core.Fallback.decode_error_message e);
          exit 1
      | Lint.Rejected diags ->
          Format.eprintf "%a" Lint.pp_text diags;
          Printf.eprintf "error: distribution rejected by the static validator\n";
          exit 1
    in
    Option.iter Parallel.shutdown owned;
    if json then print_string (Coign_sim.Fleetsim.to_json grid)
    else Format.printf "@[<v>%a@]@?" Coign_sim.Fleetsim.pp_text grid;
    Option.iter print_self_profile profiler
  in
  let term =
    Term.(
      const run $ image_arg $ scenario_arg $ network_arg $ pool_arg $ replicas_arg
      $ fault_len_arg $ fault_start_arg $ seed_arg $ jitter_arg $ cooloff_arg $ threshold_arg
      $ json_arg $ jobs_arg $ self_profile_arg)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Compare a replicated server pool (k-way sharding, per-replica circuit breakers, \
          hot-shard splitting, pool-elastic fallback rungs) against the two-host resilience \
          ladder across an availability grid: for each pool size and fault regime (clean, \
          single-host crash, global partition) the scenario runs both ways and the grid \
          tabulates availability, the served-remote ratio, and promotion/split/resize \
          activity. A pool of one must match the resilience path bit for bit. \
          Deterministic: the seed fixes the whole schedule, across any number of jobs.")
    term

(* trace ------------------------------------------------------------ *)

let trace_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("spans", `Spans); ("events", `Events) ]) `Chrome
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,chrome) (Chrome trace_event JSON for about://tracing and \
             Perfetto), $(b,spans) (one tab-separated span per line), or $(b,events) (the \
             information logger's stable line format).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to FILE instead of stdout.")
  in
  let run image_path scenario_id network format output =
    let image = Binary_image.load image_path in
    let sink, collected = Coign_obs.Trace.collector () in
    let tracer = Coign_obs.Trace.create sink in
    let recorder, events = Logger.event_recorder () in
    let mode =
      observed_run ~loggers:[ recorder ] ~tracer image scenario_id network
    in
    let spans = collected () in
    let body =
      match format with
      | `Chrome -> Coign_obs.Trace.chrome_json spans ^ "\n"
      | `Spans ->
          String.concat ""
            (List.map (fun s -> Format.asprintf "%a\n" Coign_obs.Span.pp_line s) spans)
      | `Events -> String.concat "" (List.map (fun e -> Event.to_line e ^ "\n") (events ()))
    in
    match output with
    | None -> print_string body
    | Some path ->
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        Printf.printf "wrote %d spans (%s run) to %s\n" (List.length spans) mode path
  in
  let term = Term.(const run $ image_arg $ scenario_arg $ network_arg $ format_arg $ out_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scenario with span tracing on the deterministic simulation clock and export \
          the trace: per-call and per-instantiation spans nested as the shadow stack nests. \
          The image's mode picks the runtime (profiling or distributed); distributed runs \
          are jitter-free, so equal seeds give byte-identical traces.")
    term

(* metrics ---------------------------------------------------------- *)

let metrics_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the registry as JSON instead of Prometheus text.")
  in
  let run image_path scenario_id network json =
    let image = Binary_image.load image_path in
    let registry = Coign_obs.Metrics.registry () in
    let _mode = observed_run ~metrics:registry image scenario_id network in
    if json then print_endline (Coign_obs.Metrics.to_json_string registry)
    else print_string (Coign_obs.Metrics.prometheus registry)
  in
  let term = Term.(const run $ image_arg $ scenario_arg $ network_arg $ json_arg) in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a scenario with the metrics registry attached and print the resulting \
          counters, gauges, and histograms (calls, remote bytes, retries, degradations, \
          factory decisions) as Prometheus-style text exposition or JSON.")
    term

(* show ------------------------------------------------------------- *)

let show_cmd =
  let run image_path =
    let image = Binary_image.load image_path in
    Format.printf "%a@." Binary_image.pp image;
    (match image.Binary_image.config with
    | None -> print_endline "no configuration record (original binary)"
    | Some config ->
        Format.printf "%a@." Config_record.pp config;
        (match Adps.load_profile image with
        | Some (classifier, icc) ->
            Printf.printf
              "profile: %d classifications, %d instances, %d calls, %d bytes of ICC\n"
              (Classifier.classification_count classifier)
              (Classifier.instance_count classifier)
              (Icc.call_count icc) (Icc.total_bytes icc)
        | None -> ());
        match Adps.load_distribution image with
        | Some (_, dist) ->
            Printf.printf "distribution: %d of %d classifications on the server\n"
              dist.Analysis.server_count dist.Analysis.node_count
        | None -> ())
  in
  let term = Term.(const run $ image_arg) in
  Cmd.v (Cmd.info "show" ~doc:"Print an image's metadata, config record, and profile state.") term

(* run -------------------------------------------------------------- *)

let run_cmd =
  let jitter =
    Arg.(
      value & opt float 0.015
      & info [ "jitter" ] ~docv:"R" ~doc:"Relative stddev of per-message time noise.")
  in
  let compare_default =
    Arg.(
      value & flag
      & info [ "compare-default" ]
          ~doc:"Also run the developer's default distribution and report the savings.")
  in
  let run image_path scenario_id network jitter compare_default =
    let image = Binary_image.load image_path in
    let app = app_of_image image in
    let sc = scenario_of app scenario_id in
    let es = Adps.execute ~image ~registry:app.App.app_registry ~network ~jitter sc.App.sc_run in
    Printf.printf
      "%s on %s under the Coign distribution:\n\
      \  comm %.3f s + compute %.3f s = %.3f s total\n\
      \  %d remote calls, %d bytes; %d of %d instances on the server\n"
      scenario_id network.Network.net_name (es.Adps.es_comm_us /. 1e6)
      (es.Adps.es_compute_us /. 1e6) (es.Adps.es_total_us /. 1e6) es.Adps.es_remote_calls
      es.Adps.es_remote_bytes es.Adps.es_server_instances es.Adps.es_instances;
    if compare_default then begin
      let default =
        Adps.execute_with_policy ~registry:app.App.app_registry
          ~classifier:(Classifier.create Classifier.Ifcb)
          ~policy:(Factory.By_class app.App.app_default_placement) ~network ~jitter
          sc.App.sc_run
      in
      Printf.printf "default distribution: comm %.3f s — Coign saves %.0f%%\n"
        (default.Adps.es_comm_us /. 1e6)
        (if default.Adps.es_comm_us > 0. then
           (1. -. (es.Adps.es_comm_us /. default.Adps.es_comm_us)) *. 100.
         else 0.)
    end
  in
  let term = Term.(const run $ image_arg $ scenario_arg $ network_arg $ jitter $ compare_default) in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a scenario under the distribution stored in the image.")
    term

(* load ------------------------------------------------------------- *)

let load_cmd =
  let arrival_conv =
    let parse s =
      match Coign_sim.Loadsim.arrival_of_string s with
      | Ok a -> Ok a
      | Error e -> Error (`Msg e)
    in
    let print ppf a = Format.pp_print_string ppf (Coign_sim.Loadsim.arrival_to_string a) in
    Arg.conv (parse, print)
  in
  let sessions_arg =
    Arg.(
      value & opt int 1000
      & info [ "sessions" ] ~docv:"N" ~doc:"Number of open-loop sessions to drive.")
  in
  let arrival_arg =
    Arg.(
      value
      & opt arrival_conv (Coign_sim.Loadsim.Poisson 200.)
      & info [ "arrival" ] ~docv:"SPEC"
          ~doc:
            "Arrival process: poisson:RATE, bursty:RATE,ON_MS,OFF_MS, or \
             diurnal:PEAK,PERIOD_S (rates in sessions/second on the sim clock).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0x5EED
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master seed; each session derives its own draw stream.")
  in
  let scenarios_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "scenarios" ] ~docv:"IDS"
          ~doc:
            "Comma-separated scenario mix (default: all of the app's non-bigone scenarios), \
             drawn uniformly per session.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Availability deadline: a session within MS of end-to-end latency counts as \
                available.")
  in
  let no_queueing_arg =
    Arg.(
      value & flag
      & info [ "no-queueing" ]
          ~doc:
            "Disable FIFO queueing: every session pays its unloaded Replay estimate \
             (the identity-gate mode).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Attach a metrics registry and print the coign_load_* instruments after the \
                report (Prometheus text exposition).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains filling per-session draws concurrently: 1 (default) = sequential, 0 = \
             one per core. The output is byte-identical either way.")
  in
  let run image_path sessions arrival seed scenarios deadline_ms no_queueing json metrics
      jobs =
    if sessions <= 0 then begin
      Printf.eprintf "error: --sessions must be positive\n";
      exit 1
    end;
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 0\n";
      exit 1
    end;
    fun network ->
      let image = Binary_image.load image_path in
      let pool, owned =
        match jobs with
        | 1 -> (None, None)
        | 0 -> (Some (Parallel.default ()), None)
        | n ->
            let p = Parallel.create ~domains:(n - 1) () in
            (Some p, Some p)
      in
      let registry = if metrics then Some (Coign_obs.Metrics.registry ()) else None in
      let result =
        try
          Coign_sim.Loadsim.run ?pool ?metrics:registry ~queueing:(not no_queueing)
            ?deadline_us:(Option.map (fun ms -> ms *. 1e3) deadline_ms)
            ?scenarios ~sessions ~arrival ~seed:(Int64.of_int seed) ~image ~network ()
        with Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      in
      Option.iter Parallel.shutdown owned;
      if json then print_endline (Jsonu.to_string (Coign_sim.Loadsim.to_json result))
      else Format.printf "@[<v>%a@]@?" Coign_sim.Loadsim.pp_text result;
      Option.iter
        (fun reg -> print_string (Coign_obs.Metrics.prometheus reg))
        registry
  in
  let term =
    Term.(
      const run $ image_arg $ sessions_arg $ arrival_arg $ seed_arg $ scenarios_arg
      $ deadline_arg $ no_queueing_arg $ json_arg $ metrics_arg $ jobs_arg $ network_arg)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive an open-loop arrival process of concurrent sessions against the image's \
          analyzed distribution, with FIFO queueing at the server host and the link so \
          latency grows with utilization. Reports p50/p95/p99 end-to-end latency, \
          throughput, and availability next to the unloaded comm time. Deterministic: \
          equal seeds give byte-identical reports, across any number of jobs.")
    term

(* watch ------------------------------------------------------------ *)

let watch_cmd =
  let profile_arg =
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "profile" ] ~docv:"IDS"
          ~doc:
            "Comma-separated scenario mix to profile and analyze offline — the (soon to \
             be stale) cut the watch starts from.")
  in
  let phases_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "phases" ] ~docv:"SCHEDULE"
          ~doc:
            "Semicolon-separated phases, each a comma-separated scenario list, replayed \
             in order — e.g. 'o_oldwp0;o_oldwp7,o_oldwp7,o_oldwp7'. The last phase is \
             the steady state the oracle is cut for.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.90
      & info [ "threshold" ] ~docv:"SIM"
          ~doc:"Similarity below which the window counts as drifted (cosine, in [0,1]).")
  in
  let half_life_arg =
    Arg.(
      value & opt float 750.
      & info [ "half-life-ms" ] ~docv:"MS"
          ~doc:"Observation window half-life on the virtual clock.")
  in
  let check_every_arg =
    Arg.(
      value & opt int 64
      & info [ "check-every" ] ~docv:"N" ~doc:"Observations between drift checks.")
  in
  let min_dwell_arg =
    Arg.(
      value & opt float 750.
      & info [ "min-dwell-ms" ] ~docv:"MS"
          ~doc:"Minimum virtual time between placement switches (hysteresis).")
  in
  let min_window_arg =
    Arg.(
      value & opt float 16.
      & info [ "min-window" ] ~docv:"MASS"
          ~doc:"Decayed observation mass required before drift checks may fire.")
  in
  let sample_every_arg =
    Arg.(
      value & opt int 4
      & info [ "sample-every" ] ~docv:"K"
          ~doc:"Tap sampling rate: measure and stream one observation in K.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0x5EED
      & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed for the deterministic replay.")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Attach a metrics registry to the watched run and print the coign_drift_* / \
             coign_watch_* instruments after the report (Prometheus text exposition).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains evaluating the stale/watched/oracle regimes concurrently: 1 \
             (default) = sequential, 0 = one per core. The output is byte-identical \
             either way.")
  in
  let parse_phases s =
    List.filter_map
      (fun phase ->
        match
          List.filter (fun id -> id <> "") (String.split_on_char ',' (String.trim phase))
        with
        | [] -> None
        | ids -> Some (List.map String.trim ids))
      (String.split_on_char ';' s)
  in
  let run image_path profile phases_spec threshold half_life_ms check_every min_dwell_ms
      min_window sample_every seed json metrics jobs =
    if jobs < 0 then begin
      Printf.eprintf "error: --jobs must be >= 0\n";
      exit 1
    end;
    let phases = parse_phases phases_spec in
    if phases = [] then begin
      Printf.eprintf "error: --phases needs at least one non-empty phase\n";
      exit 1
    end;
    fun network ->
      let image = Binary_image.load image_path in
      let pool, owned =
        match jobs with
        | 1 -> (None, None)
        | 0 -> (Some (Parallel.default ()), None)
        | n ->
            let p = Parallel.create ~domains:(n - 1) () in
            (Some p, Some p)
      in
      let registry = if metrics then Some (Coign_obs.Metrics.registry ()) else None in
      let result =
        try
          Coign_sim.Watchsim.run ?pool ?metrics:registry ~threshold ~check_every
            ~min_dwell_us:(min_dwell_ms *. 1e3) ~min_window
            ~half_life_us:(half_life_ms *. 1e3) ~sample_every ~seed:(Int64.of_int seed)
            ~profile_mix:profile ~phases ~image ~network ()
        with Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      in
      Option.iter Parallel.shutdown owned;
      if json then print_endline (Jsonu.to_string (Coign_sim.Watchsim.to_json result))
      else Format.printf "%a@." Coign_sim.Watchsim.pp_text result;
      Option.iter
        (fun reg -> print_string (Coign_obs.Metrics.prometheus reg))
        registry
  in
  let term =
    Term.(
      const run $ image_arg $ profile_arg $ phases_arg $ threshold_arg $ half_life_arg
      $ check_every_arg $ min_dwell_arg $ min_window_arg $ sample_every_arg $ seed_arg
      $ json_arg $ metrics_arg $ jobs_arg $ network_arg)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Close the partitioning loop online: profile a scenario mix, deploy its cut, \
          then replay a phased schedule whose usage shifts mid-run with the RTE's drift \
          watch attached — a streaming sample tap feeds an exponentially-decayed \
          observation window, and when the window's usage signature drifts from the \
          profile's the session is re-priced and the placement switched live, \
          migrating instances over the network. Reports the drift timeline and \
          per-phase communication time against the never-revisited stale cut and the \
          post-shift offline oracle. Deterministic: equal seeds give byte-identical \
          reports, across any number of jobs.")
    term

(* list ------------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "applications and scenarios (paper Table 1):";
    List.iter
      (fun (app : App.t) ->
        Printf.printf "\n%s (%d component classes)\n" app.App.app_name
          (List.length app.App.app_classes);
        List.iter
          (fun (sc : App.scenario) -> Printf.printf "  %-10s %s\n" sc.App.sc_id sc.App.sc_desc)
          app.App.app_scenarios)
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in applications and their scenarios.")
    Term.(const run $ const ())

let () =
  let doc = "the Coign automatic distributed partitioning system (OSDI '99 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "coign" ~version:"1.0.0" ~doc)
          [
            instrument_cmd; profile_cmd; combine_cmd; lint_cmd; verify_cmd; analyze_cmd; sweep_cmd;
            faultsim_cmd; resilience_cmd; fleet_cmd; load_cmd; watch_cmd; trace_cmd; metrics_cmd;
            show_cmd; run_cmd; list_cmd;
          ]))
