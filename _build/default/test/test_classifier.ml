open Coign_core

let qtest = QCheck_alcotest.to_alcotest

(* The program of paper Figure 3:
     A::V() { a->W() }    A::W() { b1->X() }   B::X() { b2->Y() }
     B::Y() { c->Z() }    C::Z() { CoCreateInstance(D) }
   Stack at the instantiation of D, most recent first. *)
let figure3_stack ~ca ~cb1 ~cb2 ~cc =
  [
    Frame.make ~inst:4 ~cls:"C" ~classification:cc ~iface:"IC" ~meth:"Z";
    Frame.make ~inst:3 ~cls:"B" ~classification:cb2 ~iface:"IB" ~meth:"Y";
    Frame.make ~inst:2 ~cls:"B" ~classification:cb1 ~iface:"IB" ~meth:"X";
    Frame.make ~inst:1 ~cls:"A" ~classification:ca ~iface:"IA" ~meth:"W";
    Frame.make ~inst:1 ~cls:"A" ~classification:ca ~iface:"IA" ~meth:"V";
  ]

let stack = figure3_stack ~ca:10 ~cb1:11 ~cb2:12 ~cc:13

let desc kind = Classifier.descriptor (Classifier.create kind) ~cname:"D" ~stack

let test_figure3_descriptors () =
  Alcotest.(check string) "incremental" "[0]" (desc Classifier.Incremental);
  Alcotest.(check string) "st" "[D]" (desc Classifier.St);
  Alcotest.(check string) "pcb" "[D, C::Z, B::Y, B::X, A::W, A::V]" (desc Classifier.Pcb);
  Alcotest.(check string) "stcb" "[D, C, B, B, A]" (desc Classifier.Stcb);
  Alcotest.(check string) "ifcb" "[D, [c13,Z], [c12,Y], [c11,X], [c10,W], [c10,V]]"
    (desc Classifier.Ifcb);
  (* EPCB keeps only the frame through which control entered instance a
     (method V), dropping A::W. *)
  Alcotest.(check string) "epcb" "[D, [c13,Z], [c12,Y], [c11,X], [c10,V]]"
    (desc Classifier.Epcb);
  Alcotest.(check string) "ib" "[D, c13]" (desc Classifier.Ib)

let test_incremental_orders () =
  let t = Classifier.create Classifier.Incremental in
  let c1 = Classifier.classify t ~cname:"D" ~stack in
  let c2 = Classifier.classify t ~cname:"D" ~stack in
  Alcotest.(check bool) "distinct" true (c1 <> c2)

let test_ifcb_groups_equal_contexts () =
  let t = Classifier.create Classifier.Ifcb in
  let c1 = Classifier.classify t ~cname:"D" ~stack in
  let c2 = Classifier.classify t ~cname:"D" ~stack in
  Alcotest.(check int) "same classification" c1 c2;
  Alcotest.(check int) "two instances counted" 2 (Classifier.instances_of t c1);
  let c3 = Classifier.classify t ~cname:"E" ~stack in
  Alcotest.(check bool) "different class differs" true (c3 <> c1)

let test_stack_depth_limits () =
  let shallow = Classifier.create ~stack_depth:1 Classifier.Ifcb in
  Alcotest.(check string) "depth 1" "[D, [c13,Z]]"
    (Classifier.descriptor shallow ~cname:"D" ~stack);
  let mid = Classifier.create ~stack_depth:3 Classifier.Ifcb in
  Alcotest.(check string) "depth 3" "[D, [c13,Z], [c12,Y], [c11,X]]"
    (Classifier.descriptor mid ~cname:"D" ~stack)

let test_depth_merges_contexts () =
  (* Two stacks differing only in the 2nd frame merge at depth 1. *)
  let s1 = stack in
  let s2 = figure3_stack ~ca:10 ~cb1:11 ~cb2:99 ~cc:13 in
  let t1 = Classifier.create ~stack_depth:1 Classifier.Ifcb in
  Alcotest.(check int) "merged at depth 1"
    (Classifier.classify t1 ~cname:"D" ~stack:s1)
    (Classifier.classify t1 ~cname:"D" ~stack:s2);
  let t2 = Classifier.create ~stack_depth:2 Classifier.Ifcb in
  Alcotest.(check bool) "separated at depth 2" true
    (Classifier.classify t2 ~cname:"D" ~stack:s1
    <> Classifier.classify t2 ~cname:"D" ~stack:s2)

let test_epcb_merges_internal_paths () =
  (* Entered via V, created from W vs created from V directly: IFCB
     distinguishes, EPCB does not. *)
  let via_w =
    [
      Frame.make ~inst:1 ~cls:"A" ~classification:10 ~iface:"IA" ~meth:"W";
      Frame.make ~inst:1 ~cls:"A" ~classification:10 ~iface:"IA" ~meth:"V";
    ]
  in
  let direct = [ Frame.make ~inst:1 ~cls:"A" ~classification:10 ~iface:"IA" ~meth:"V" ] in
  let ifcb = Classifier.create Classifier.Ifcb in
  Alcotest.(check bool) "ifcb distinguishes" true
    (Classifier.classify ifcb ~cname:"D" ~stack:via_w
    <> Classifier.classify ifcb ~cname:"D" ~stack:direct);
  let epcb = Classifier.create Classifier.Epcb in
  Alcotest.(check int) "epcb merges"
    (Classifier.classify epcb ~cname:"D" ~stack:via_w)
    (Classifier.classify epcb ~cname:"D" ~stack:direct)

let test_pcb_ignores_instances () =
  (* Same class::method chain through different instances. *)
  let s1 = figure3_stack ~ca:10 ~cb1:11 ~cb2:12 ~cc:13 in
  let s2 = figure3_stack ~ca:20 ~cb1:21 ~cb2:22 ~cc:23 in
  let pcb = Classifier.create Classifier.Pcb in
  Alcotest.(check int) "pcb merges"
    (Classifier.classify pcb ~cname:"D" ~stack:s1)
    (Classifier.classify pcb ~cname:"D" ~stack:s2);
  let ifcb = Classifier.create Classifier.Ifcb in
  Alcotest.(check bool) "ifcb separates" true
    (Classifier.classify ifcb ~cname:"D" ~stack:s1
    <> Classifier.classify ifcb ~cname:"D" ~stack:s2)

let test_lookup_no_mutation () =
  let t = Classifier.create Classifier.Ifcb in
  Alcotest.(check (option int)) "unknown" None (Classifier.lookup t ~cname:"D" ~stack);
  let c = Classifier.classify t ~cname:"D" ~stack in
  Alcotest.(check (option int)) "found" (Some c) (Classifier.lookup t ~cname:"D" ~stack);
  Alcotest.(check int) "count unchanged by lookup" 1 (Classifier.instances_of t c)

let test_freeze_counts () =
  let t = Classifier.create Classifier.Ifcb in
  ignore (Classifier.classify t ~cname:"D" ~stack);
  Classifier.freeze_counts t;
  ignore (Classifier.classify t ~cname:"D" ~stack);
  Alcotest.(check int) "frozen" 1 (Classifier.instance_count t);
  (* new descriptors still allocate *)
  ignore (Classifier.classify t ~cname:"E" ~stack);
  Alcotest.(check int) "new classification allocated" 2 (Classifier.classification_count t)

let test_metadata_accessors () =
  let t = Classifier.create Classifier.Stcb in
  let c = Classifier.classify t ~cname:"D" ~stack in
  Alcotest.(check string) "class" "D" (Classifier.class_of_classification t c);
  Alcotest.(check string) "descriptor" "[D, C, B, B, A]"
    (Classifier.descriptor_of_classification t c)

let test_encode_decode_roundtrip () =
  let t = Classifier.create ~stack_depth:4 Classifier.Ifcb in
  ignore (Classifier.classify t ~cname:"D" ~stack);
  ignore (Classifier.classify t ~cname:"D" ~stack);
  ignore (Classifier.classify t ~cname:"E" ~stack);
  let t' = Classifier.decode (Classifier.encode t) in
  Alcotest.(check int) "classifications" (Classifier.classification_count t)
    (Classifier.classification_count t');
  Alcotest.(check int) "instances" (Classifier.instance_count t) (Classifier.instance_count t');
  Alcotest.(check (option int)) "depth" (Some 4) (Classifier.stack_depth t');
  (* decoded state continues to classify consistently *)
  Alcotest.(check (option int)) "known context"
    (Classifier.lookup t ~cname:"D" ~stack)
    (Classifier.lookup t' ~cname:"D" ~stack)

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check (option bool)) (Classifier.kind_name k) (Some true)
        (Option.map (fun k' -> k' = k) (Classifier.kind_of_name (Classifier.kind_name k))))
    Classifier.all_kinds

let arb_frames =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 6)
        (map
           (fun (inst, meth) ->
             Frame.make ~inst ~cls:(Printf.sprintf "K%d" (inst mod 3)) ~classification:inst
               ~iface:"I" ~meth:(Printf.sprintf "m%d" meth))
           (pair (int_range 0 5) (int_range 0 3))))
  in
  QCheck.make gen

let prop_classify_deterministic =
  QCheck.Test.make ~name:"equal contexts get equal classifications" ~count:300
    (QCheck.pair arb_frames (QCheck.oneofl [ Classifier.Pcb; Classifier.Stcb; Classifier.Ifcb; Classifier.Epcb; Classifier.Ib; Classifier.St ]))
    (fun (frames, kind) ->
      let t = Classifier.create kind in
      Classifier.classify t ~cname:"D" ~stack:frames
      = Classifier.classify t ~cname:"D" ~stack:frames)

let prop_encode_decode_stable =
  QCheck.Test.make ~name:"classifier state survives encode/decode" ~count:100 arb_frames
    (fun frames ->
      let t = Classifier.create Classifier.Ifcb in
      ignore (Classifier.classify t ~cname:"D" ~stack:frames);
      let t' = Classifier.decode (Classifier.encode t) in
      Classifier.lookup t' ~cname:"D" ~stack:frames = Classifier.lookup t ~cname:"D" ~stack:frames)

let suite =
  [
    Alcotest.test_case "figure 3 descriptors" `Quick test_figure3_descriptors;
    Alcotest.test_case "incremental orders" `Quick test_incremental_orders;
    Alcotest.test_case "ifcb groups equal contexts" `Quick test_ifcb_groups_equal_contexts;
    Alcotest.test_case "stack depth limits" `Quick test_stack_depth_limits;
    Alcotest.test_case "depth merges contexts" `Quick test_depth_merges_contexts;
    Alcotest.test_case "epcb merges internal paths" `Quick test_epcb_merges_internal_paths;
    Alcotest.test_case "pcb ignores instances" `Quick test_pcb_ignores_instances;
    Alcotest.test_case "lookup no mutation" `Quick test_lookup_no_mutation;
    Alcotest.test_case "freeze counts" `Quick test_freeze_counts;
    Alcotest.test_case "metadata accessors" `Quick test_metadata_accessors;
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "kind names roundtrip" `Quick test_kind_names_roundtrip;
    qtest prop_classify_deterministic;
    qtest prop_encode_decode_stable;
  ]
