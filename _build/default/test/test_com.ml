open Coign_idl
open Coign_com

(* --- Guid ----------------------------------------------------------- *)

let test_guid_deterministic () =
  Alcotest.(check bool) "equal for same name" true
    (Guid.equal (Guid.of_name "IID_IFoo") (Guid.of_name "IID_IFoo"));
  Alcotest.(check bool) "distinct for different names" false
    (Guid.equal (Guid.of_name "IID_IFoo") (Guid.of_name "IID_IBar"))

let test_guid_rendering () =
  let g = Guid.of_name "X" in
  let s = Guid.to_string g in
  Alcotest.(check bool) "braced" true (s.[0] = '{' && s.[String.length s - 1] = '}');
  Alcotest.(check string) "name kept" "X" (Guid.name g)

let test_guid_map () =
  let m = Guid.Map.singleton (Guid.of_name "a") 1 in
  Alcotest.(check (option int)) "found" (Some 1) (Guid.Map.find_opt (Guid.of_name "a") m)

(* --- Itype ---------------------------------------------------------- *)

let i_calc =
  Itype.declare "ICalc"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "add"
        [ Idl_type.param "a" Idl_type.Int32; Idl_type.param "b" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "total" [];
    ]

let i_raw =
  Itype.declare "IRawPixels" [ Idl_type.method_ "blit" [ Idl_type.param "p" (Idl_type.Opaque "SHM") ] ]

let test_itype_lookup () =
  Alcotest.(check int) "count" 2 (Itype.method_count i_calc);
  Alcotest.(check int) "index" 1 (Itype.method_index i_calc "total");
  Alcotest.(check string) "sig" "add" (Itype.method_sig i_calc 0).Idl_type.mname;
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Itype.method_index i_calc "nope"))

let test_itype_remotable () =
  Alcotest.(check bool) "calc" true (Itype.remotable i_calc);
  Alcotest.(check bool) "raw" false (Itype.remotable i_raw)

(* --- Runtime: a tiny calculator component --------------------------- *)

let c_calc =
  Runtime.define_class "Test.Calc" ~api_refs:[ "kernel32.VirtualAlloc" ] (fun _ctx _self ->
      let total = ref 0 in
      [
        Combuild.iface i_calc
          [
            ( "add",
              fun ctx args ->
                let a = Combuild.get_int args 0 and b = Combuild.get_int args 1 in
                total := !total + a + b;
                Runtime.charge ctx ~us:1.;
                Combuild.echo args (Value.Int (a + b)) );
            ("total", fun _ctx args -> Combuild.echo args (Value.Int !total));
          ];
      ])

(* A component that creates a Calc internally and exposes a pass-through. *)
let i_chain =
  Itype.declare "IChain"
    [ Idl_type.method_ ~ret:Idl_type.Int32 "push" [ Idl_type.param "v" Idl_type.Int32 ] ]

let c_chain =
  Runtime.define_class "Test.Chain" (fun ctx0 _self ->
      let calc = Runtime.create_instance ctx0 c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
      [
        Combuild.iface i_chain
          [
            ( "push",
              fun ctx args ->
                let v = Combuild.get_int args 0 in
                let _, r = Runtime.call_named ctx calc "add" [ Value.Int v; Value.Int 1 ] in
                Combuild.echo args r );
          ];
      ])

let make_ctx () = Runtime.create_ctx (Runtime.registry [ c_calc; c_chain ])

let test_registry_duplicate () =
  Alcotest.check_raises "duplicate class"
    (Invalid_argument "Runtime.registry: duplicate class Test.Calc") (fun () ->
      ignore (Runtime.registry [ c_calc; c_calc ]))

let test_create_and_call () =
  let ctx = make_ctx () in
  let h = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  let _, r = Runtime.call_named ctx h "add" [ Value.Int 2; Value.Int 3 ] in
  Alcotest.(check bool) "sum" true (r = Value.Int 5);
  let _, t = Runtime.call_named ctx h "total" [] in
  Alcotest.(check bool) "total" true (t = Value.Int 5)

let test_create_unknown_class () =
  let ctx = make_ctx () in
  Alcotest.(check bool) "raises E_noclass" true
    (try
       ignore (Runtime.create_instance ctx (Guid.of_name "CLSID_Nope") ~iid:(Itype.iid i_calc));
       false
     with Hresult.Com_error (Hresult.E_noclass _) -> true)

let test_query_interface_identity () =
  let ctx = make_ctx () in
  let h = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  let h2 = Runtime.query_interface ctx h ~iid:(Itype.iid i_calc) in
  Alcotest.(check int) "canonical handle reused" h h2

let test_query_interface_missing () =
  let ctx = make_ctx () in
  let h = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  Alcotest.(check bool) "raises E_nointerface" true
    (try
       ignore (Runtime.query_interface ctx h ~iid:(Itype.iid i_chain));
       false
     with Hresult.Com_error (Hresult.E_nointerface _) -> true)

let test_nested_instantiation () =
  let ctx = make_ctx () in
  let h = Runtime.create_instance ctx c_chain.Runtime.clsid ~iid:(Itype.iid i_chain) in
  let _, r = Runtime.call_named ctx h "push" [ Value.Int 9 ] in
  Alcotest.(check bool) "chained" true (r = Value.Int 10);
  (* main + chain + inner calc *)
  Alcotest.(check int) "instances" 3 (Runtime.instance_count ctx)

let test_destroy_semantics () =
  let ctx = make_ctx () in
  let h = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  let inst = Runtime.handle_owner ctx h in
  Runtime.destroy_instance ctx inst;
  Alcotest.(check bool) "dead" false (Runtime.instance_alive ctx inst);
  Alcotest.(check bool) "call through stale handle fails" true
    (try
       ignore (Runtime.call_named ctx h "total" []);
       false
     with Hresult.Com_error (Hresult.E_pointer _) -> true);
  Alcotest.(check bool) "double destroy fails" true
    (try
       Runtime.destroy_instance ctx inst;
       false
     with Hresult.Com_error (Hresult.E_invalidarg _) -> true)

let test_destroy_main_forbidden () =
  let ctx = make_ctx () in
  Alcotest.(check bool) "main protected" true
    (try
       Runtime.destroy_instance ctx Runtime.main_instance;
       false
     with Hresult.Com_error (Hresult.E_invalidarg _) -> true)

let test_create_hook_interception () =
  let ctx = make_ctx () in
  let seen = ref [] in
  Runtime.set_create_hook ctx
    (Some
       (fun req ->
         seen := req.Runtime.req_class.Runtime.cname :: !seen;
         Runtime.raw_create_instance ctx req.Runtime.req_clsid ~iid:req.Runtime.req_iid));
  ignore (Runtime.create_instance ctx c_chain.Runtime.clsid ~iid:(Itype.iid i_chain));
  (* The chain's constructor creates a Calc: both go through the hook. *)
  Alcotest.(check (list string)) "both intercepted" [ "Test.Chain"; "Test.Calc" ]
    (List.rev !seen);
  Runtime.set_create_hook ctx None;
  ignore (Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc));
  Alcotest.(check int) "hook removed" 2 (List.length !seen)

let test_foreign_handle_wrapping () =
  let ctx = make_ctx () in
  let h = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  let calls = ref 0 in
  let wrapper =
    Runtime.alloc_foreign_handle ctx ~owner:(Runtime.handle_owner ctx h)
      ~itype:(Runtime.handle_itype ctx h) ~wrapper:true
      (fun ctx ~meth args ->
        incr calls;
        Runtime.call ctx h ~meth args)
  in
  Alcotest.(check bool) "wrapper flagged" true (Runtime.handle_is_wrapper ctx wrapper);
  Alcotest.(check bool) "original not" false (Runtime.handle_is_wrapper ctx h);
  let _, r = Runtime.call_named ctx wrapper "add" [ Value.Int 1; Value.Int 1 ] in
  Alcotest.(check bool) "forwarded" true (r = Value.Int 2);
  Alcotest.(check int) "intercepted" 1 !calls

let test_compute_accounting () =
  let ctx = make_ctx () in
  let h = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  ignore (Runtime.call_named ctx h "add" [ Value.Int 1; Value.Int 2 ]);
  ignore (Runtime.call_named ctx h "add" [ Value.Int 1; Value.Int 2 ]);
  Alcotest.(check (float 1e-9)) "charged" 2. (Runtime.compute_us ctx);
  Runtime.reset_compute ctx;
  Alcotest.(check (float 1e-9)) "reset" 0. (Runtime.compute_us ctx)

let test_data_slots () =
  let ctx = make_ctx () in
  let key : string Runtime.key = Runtime.new_key () in
  Alcotest.(check (option string)) "empty" None (Runtime.get_data ctx key);
  Runtime.set_data ctx key "hello";
  Alcotest.(check (option string)) "stored" (Some "hello") (Runtime.get_data ctx key)

let test_live_instances () =
  let ctx = make_ctx () in
  let h1 = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  let h2 = Runtime.create_instance ctx c_calc.Runtime.clsid ~iid:(Itype.iid i_calc) in
  ignore h2;
  Runtime.destroy_instance ctx (Runtime.handle_owner ctx h1);
  Alcotest.(check int) "one live (excluding main)" 1 (List.length (Runtime.live_instances ctx))

(* --- Combuild ------------------------------------------------------- *)

let test_combuild_validation () =
  Alcotest.(check bool) "missing handler rejected" true
    (try
       ignore (Combuild.iface i_calc [ ("add", Combuild.nop) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown handler rejected" true
    (try
       ignore
         (Combuild.iface i_calc
            [ ("add", Combuild.nop); ("total", Combuild.nop); ("bogus", Combuild.nop) ]);
       false
     with Invalid_argument _ -> true)

let test_combuild_getters () =
  let args = [ Value.Int 4; Value.Str "s"; Value.Blob 10; Value.Iface_ref 2; Value.Bool true ] in
  Alcotest.(check int) "int" 4 (Combuild.get_int args 0);
  Alcotest.(check string) "str" "s" (Combuild.get_str args 1);
  Alcotest.(check int) "blob" 10 (Combuild.get_blob args 2);
  Alcotest.(check int) "iface" 2 (Combuild.get_iface args 3);
  Alcotest.(check bool) "bool" true (Combuild.get_bool args 4);
  Alcotest.(check bool) "wrong shape raises" true
    (try
       ignore (Combuild.get_int args 1);
       false
     with Hresult.Com_error (Hresult.E_invalidarg _) -> true)

let suite =
  [
    Alcotest.test_case "guid deterministic" `Quick test_guid_deterministic;
    Alcotest.test_case "guid rendering" `Quick test_guid_rendering;
    Alcotest.test_case "guid map" `Quick test_guid_map;
    Alcotest.test_case "itype lookup" `Quick test_itype_lookup;
    Alcotest.test_case "itype remotable" `Quick test_itype_remotable;
    Alcotest.test_case "registry duplicate" `Quick test_registry_duplicate;
    Alcotest.test_case "create and call" `Quick test_create_and_call;
    Alcotest.test_case "create unknown class" `Quick test_create_unknown_class;
    Alcotest.test_case "query interface identity" `Quick test_query_interface_identity;
    Alcotest.test_case "query interface missing" `Quick test_query_interface_missing;
    Alcotest.test_case "nested instantiation" `Quick test_nested_instantiation;
    Alcotest.test_case "destroy semantics" `Quick test_destroy_semantics;
    Alcotest.test_case "destroy main forbidden" `Quick test_destroy_main_forbidden;
    Alcotest.test_case "create hook interception" `Quick test_create_hook_interception;
    Alcotest.test_case "foreign handle wrapping" `Quick test_foreign_handle_wrapping;
    Alcotest.test_case "compute accounting" `Quick test_compute_accounting;
    Alcotest.test_case "data slots" `Quick test_data_slots;
    Alcotest.test_case "live instances" `Quick test_live_instances;
    Alcotest.test_case "combuild validation" `Quick test_combuild_validation;
    Alcotest.test_case "combuild getters" `Quick test_combuild_getters;
  ]
