open Coign_image

let qtest = QCheck_alcotest.to_alcotest

(* --- Codec ---------------------------------------------------------- *)

let test_codec_roundtrip_scalars () =
  let w = Codec.writer () in
  Codec.w_u8 w 200;
  Codec.w_u32 w 123456;
  Codec.w_i64 w (-42L);
  Codec.w_f64 w 3.25;
  Codec.w_str w "héllo\n\ttab";
  Codec.w_list w (Codec.w_u32 w) [ 1; 2; 3 ];
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check int) "u8" 200 (Codec.r_u8 r);
  Alcotest.(check int) "u32" 123456 (Codec.r_u32 r);
  Alcotest.(check int64) "i64" (-42L) (Codec.r_i64 r);
  Alcotest.(check (float 0.)) "f64" 3.25 (Codec.r_f64 r);
  Alcotest.(check string) "str" "héllo\n\ttab" (Codec.r_str r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.r_list r Codec.r_u32);
  Codec.expect_end r

let test_codec_truncation () =
  let w = Codec.writer () in
  Codec.w_u32 w 5;
  let r = Codec.reader (String.sub (Codec.contents w) 0 2) in
  Alcotest.check_raises "truncated" (Codec.Malformed "truncated input") (fun () ->
      ignore (Codec.r_u32 r))

let test_codec_trailing () =
  let r = Codec.reader "xx" in
  Alcotest.check_raises "trailing" (Codec.Malformed "trailing bytes") (fun () ->
      Codec.expect_end r)

(* --- Config_record --------------------------------------------------- *)

let gen_config =
  QCheck.Gen.(
    let mode = oneofl [ Config_record.Off; Config_record.Profiling; Config_record.Distributed ] in
    let entry = pair (string_size (int_range 1 10)) (string_size (int_range 0 60)) in
    mode >>= fun m ->
    oneofl [ "ifcb"; "st"; "pcb" ] >>= fun cls ->
    opt (int_range 1 16) >>= fun depth ->
    list_size (int_range 0 5) entry >>= fun entries ->
    return
      (List.fold_left
         (fun c (k, v) -> Config_record.set_entry c k v)
         (Config_record.with_stack_depth
            (Config_record.with_classifier (Config_record.create m) cls)
            depth)
         entries))

let arb_config =
  QCheck.make ~print:(Format.asprintf "%a" Config_record.pp) gen_config

let prop_config_roundtrip =
  QCheck.Test.make ~name:"config record encode/decode roundtrip" ~count:300 arb_config
    (fun c -> Config_record.equal c (Config_record.decode (Config_record.encode c)))

let test_config_entries () =
  let c = Config_record.create Config_record.Profiling in
  let c = Config_record.set_entry c "icc" "data1" in
  let c = Config_record.set_entry c "icc" "data2" in
  Alcotest.(check (option string)) "replaced" (Some "data2") (Config_record.entry c "icc");
  let c = Config_record.remove_entry c "icc" in
  Alcotest.(check (option string)) "removed" None (Config_record.entry c "icc")

let test_config_bad_magic () =
  Alcotest.(check bool) "malformed rejected" true
    (try
       ignore (Config_record.decode "garbage");
       false
     with Codec.Malformed _ -> true)

(* --- Binary_image ---------------------------------------------------- *)

let sample_image () =
  Binary_image.create ~name:"app.exe"
    ~api_refs:
      [ ("App.Main", [ "user32.CreateWindowExW" ]); ("App.Store", [ "kernel32.ReadFile" ]) ]
    ()

let test_image_roundtrip () =
  let img = sample_image () in
  Alcotest.(check bool) "roundtrip" true
    (Binary_image.equal img (Binary_image.decode (Binary_image.encode img)))

let test_image_roundtrip_with_config () =
  let img = Rewriter.instrument (sample_image ()) in
  Alcotest.(check bool) "roundtrip" true
    (Binary_image.equal img (Binary_image.decode (Binary_image.encode img)))

let test_image_file_io () =
  let img = sample_image () in
  let path = Filename.temp_file "coign" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binary_image.save img path;
      Alcotest.(check bool) "load equals save" true (Binary_image.equal img (Binary_image.load path)))

let test_image_api_refs () =
  let img = sample_image () in
  Alcotest.(check (list string)) "refs" [ "kernel32.ReadFile" ]
    (Binary_image.class_api_refs img "App.Store");
  Alcotest.(check (list string)) "unknown class" [] (Binary_image.class_api_refs img "Nope")

let test_image_total_size_counts_config () =
  let img = sample_image () in
  let instrumented = Rewriter.instrument img in
  Alcotest.(check bool) "config adds size" true
    (Binary_image.total_size instrumented > Binary_image.total_size img)

(* --- Rewriter --------------------------------------------------------- *)

let test_instrument_first_import () =
  let img = Rewriter.instrument (sample_image ()) in
  Alcotest.(check bool) "instrumented" true (Rewriter.is_instrumented img);
  (match img.Binary_image.imports with
  | first :: _ -> Alcotest.(check string) "first slot" Rewriter.runtime_dll first
  | [] -> Alcotest.fail "no imports");
  (* idempotent: runtime dll appears once *)
  let again = Rewriter.instrument img in
  Alcotest.(check int) "single runtime import" 1
    (List.length
       (List.filter (String.equal Rewriter.runtime_dll) again.Binary_image.imports))

let test_instrument_preserves_profile_entries () =
  let img = Rewriter.instrument (sample_image ()) in
  let config = Option.get img.Binary_image.config in
  let img =
    { img with Binary_image.config = Some (Config_record.set_entry config "coign.icc" "DATA") }
  in
  let img = Rewriter.instrument img in
  Alcotest.(check (option string)) "accumulated entry kept" (Some "DATA")
    (Config_record.entry (Option.get img.Binary_image.config) "coign.icc")

let test_write_distribution () =
  let img = Rewriter.instrument (sample_image ()) in
  let config = Option.get img.Binary_image.config in
  let img =
    { img with Binary_image.config = Some (Config_record.set_entry config "coign.icc" "RAW") }
  in
  let img = Rewriter.write_distribution img ~entries:[ ("coign.distribution", "PLAN") ] in
  let config = Option.get img.Binary_image.config in
  Alcotest.(check bool) "distributed mode" true
    (Config_record.mode config = Config_record.Distributed);
  Alcotest.(check (option string)) "profiling entries dropped" None
    (Config_record.entry config "coign.icc");
  Alcotest.(check (option string)) "distribution stored" (Some "PLAN")
    (Config_record.entry config "coign.distribution")

let test_strip () =
  let original = sample_image () in
  let stripped = Rewriter.strip (Rewriter.instrument original) in
  Alcotest.(check bool) "equals original" true (Binary_image.equal original stripped)

let suite =
  [
    Alcotest.test_case "codec roundtrip scalars" `Quick test_codec_roundtrip_scalars;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncation;
    Alcotest.test_case "codec trailing" `Quick test_codec_trailing;
    qtest prop_config_roundtrip;
    Alcotest.test_case "config entries" `Quick test_config_entries;
    Alcotest.test_case "config bad magic" `Quick test_config_bad_magic;
    Alcotest.test_case "image roundtrip" `Quick test_image_roundtrip;
    Alcotest.test_case "image roundtrip with config" `Quick test_image_roundtrip_with_config;
    Alcotest.test_case "image file io" `Quick test_image_file_io;
    Alcotest.test_case "image api refs" `Quick test_image_api_refs;
    Alcotest.test_case "image size counts config" `Quick test_image_total_size_counts_config;
    Alcotest.test_case "instrument first import" `Quick test_instrument_first_import;
    Alcotest.test_case "instrument preserves entries" `Quick
      test_instrument_preserves_profile_entries;
    Alcotest.test_case "write distribution" `Quick test_write_distribution;
    Alcotest.test_case "strip" `Quick test_strip;
  ]
