open Coign_netsim
open Coign_core

(* Build a classifier with n synthetic classifications, one per class
   name given. *)
let classifier_with classes =
  let t = Classifier.create Classifier.St in
  List.iter (fun cname -> ignore (Classifier.classify t ~cname ~stack:[])) classes;
  t

let exact_net = Net_profiler.exact Network.ethernet_10

let choose ?extra ~classes ~records () =
  let classifier = classifier_with classes in
  let icc = Icc.create () in
  List.iter
    (fun (src, dst, iface, remotable, request, reply) ->
      Icc.record icc ~src ~dst ~iface ~remotable ~request ~reply)
    records;
  let constraints = Option.value ~default:Constraints.empty extra in
  (Analysis.choose ~classifier ~icc ~constraints ~net:exact_net (), icc)

let test_pinned_classes_respected () =
  (* 0=Gui (client pin), 1=Store (server pin), 2=Free chats with both. *)
  let constraints =
    Constraints.pin_class
      (Constraints.pin_class Constraints.empty ~cname:"Gui" Constraints.Client)
      ~cname:"Store" Constraints.Server
  in
  let d, _ =
    choose ~extra:constraints ~classes:[ "Gui"; "Store"; "Free" ]
      ~records:
        [
          (0, 2, "I", true, 1_000, 1_000);
          (2, 1, "I", true, 500_000, 500_000);
        ]
      ()
  in
  Alcotest.(check bool) "gui on client" true (Analysis.location_of d 0 = Constraints.Client);
  Alcotest.(check bool) "store on server" true (Analysis.location_of d 1 = Constraints.Server);
  (* Free talks much more to the store: it must follow it. *)
  Alcotest.(check bool) "free follows traffic" true
    (Analysis.location_of d 2 = Constraints.Server)

let test_non_remotable_colocated () =
  let constraints =
    Constraints.pin_class
      (Constraints.pin_class Constraints.empty ~cname:"Gui" Constraints.Client)
      ~cname:"Store" Constraints.Server
  in
  (* Free is glued to Gui by a non-remotable interface even though its
     remotable traffic pulls it to the server. *)
  let d, _ =
    choose ~extra:constraints ~classes:[ "Gui"; "Store"; "Free" ]
      ~records:
        [
          (0, 2, "IPaint", false, 0, 0);
          (2, 1, "I", true, 900_000, 900_000);
        ]
      ()
  in
  Alcotest.(check bool) "free stays with gui" true
    (Analysis.location_of d 2 = Constraints.Client)

let test_pairwise_constraint () =
  let constraints =
    Constraints.colocate
      (Constraints.pin_class
         (Constraints.pin_class Constraints.empty ~cname:"Gui" Constraints.Client)
         ~cname:"Store" Constraints.Server)
      1 2
  in
  let d, _ =
    choose ~extra:constraints ~classes:[ "Gui"; "Store"; "Free" ]
      ~records:[ (0, 2, "I", true, 100, 100) ]
      ()
  in
  (* Classification 2 would drift to the client (its only traffic is
     with Gui) but the pair-wise constraint ties it to Store. *)
  Alcotest.(check bool) "pairwise honored" true
    (Analysis.location_of d 2 = Analysis.location_of d 1)

let test_absolute_classification_pin () =
  let constraints =
    Constraints.pin_classification
      (Constraints.pin_class Constraints.empty ~cname:"Gui" Constraints.Client)
      1 Constraints.Server
  in
  let d, _ =
    choose ~extra:constraints ~classes:[ "Gui"; "Free" ]
      ~records:[ (0, 1, "I", true, 100, 100) ]
      ()
  in
  Alcotest.(check bool) "explicit pin wins over traffic" true
    (Analysis.location_of d 1 = Constraints.Server)

let test_idle_classifications_default_client () =
  let d, _ = choose ~classes:[ "A"; "B" ] ~records:[] () in
  Alcotest.(check int) "nothing on server" 0 d.Analysis.server_count;
  Alcotest.(check bool) "out of range is client" true
    (Analysis.location_of d 99 = Constraints.Client);
  Alcotest.(check bool) "main is client" true (Analysis.location_of d (-1) = Constraints.Client)

let test_predicted_comm_consistency () =
  let constraints =
    Constraints.pin_class Constraints.empty ~cname:"Store" Constraints.Server
  in
  let d, icc =
    choose ~extra:constraints ~classes:[ "Store"; "Mid"; "Leaf" ]
      ~records:
        [
          (0, 1, "I", true, 10_000, 10_000);
          (1, 2, "I", true, 200_000, 200_000);
          (-1, 2, "I", true, 5_000, 5_000);
        ]
      ()
  in
  let placement c = Analysis.location_of d c in
  Alcotest.(check (float 1.)) "predicted equals recomputed" d.Analysis.predicted_comm_us
    (Analysis.comm_time_under ~icc ~net:exact_net ~placement)

let test_cut_is_minimal_vs_alternatives () =
  let constraints =
    Constraints.pin_class
      (Constraints.pin_class Constraints.empty ~cname:"Gui" Constraints.Client)
      ~cname:"Store" Constraints.Server
  in
  let d, icc =
    choose ~extra:constraints ~classes:[ "Gui"; "Store"; "M1"; "M2" ]
      ~records:
        [
          (0, 2, "I", true, 40_000, 0);
          (2, 3, "I", true, 80_000, 0);
          (3, 1, "I", true, 20_000, 0);
        ]
      ()
  in
  (* Exhaustively check no other placement of M1/M2 is cheaper. *)
  let best = ref infinity in
  List.iter
    (fun (m1, m2) ->
      let placement c =
        match c with
        | 0 -> Constraints.Client
        | 1 -> Constraints.Server
        | 2 -> m1
        | 3 -> m2
        | _ -> Constraints.Client
      in
      let cost = Analysis.comm_time_under ~icc ~net:exact_net ~placement in
      if cost < !best then best := cost)
    [
      (Constraints.Client, Constraints.Client);
      (Constraints.Client, Constraints.Server);
      (Constraints.Server, Constraints.Client);
      (Constraints.Server, Constraints.Server);
    ];
  Alcotest.(check (float 1.)) "min cut optimal" !best d.Analysis.predicted_comm_us

let test_algorithms_agree_on_placement_cost () =
  let records =
    [
      (0, 1, "I", true, 12_000, 3_000);
      (1, 2, "I", true, 7_000, 7_000);
      (2, 3, "I", true, 50_000, 1_000);
      (0, 3, "I", true, 2_000, 2_000);
    ]
  in
  let constraints =
    Constraints.pin_class
      (Constraints.pin_class Constraints.empty ~cname:"C0" Constraints.Client)
      ~cname:"C3" Constraints.Server
  in
  let costs =
    List.map
      (fun algorithm ->
        let classifier = classifier_with [ "C0"; "C1"; "C2"; "C3" ] in
        let icc = Icc.create () in
        List.iter
          (fun (src, dst, iface, remotable, request, reply) ->
            Icc.record icc ~src ~dst ~iface ~remotable ~request ~reply)
          records;
        (Analysis.choose ~algorithm ~classifier ~icc ~constraints ~net:exact_net ()).Analysis.cut_ns)
      Coign_flowgraph.Mincut.all_algorithms
  in
  match costs with
  | c :: rest -> List.iter (fun c' -> Alcotest.(check int) "same cut value" c c') rest
  | [] -> ()

let test_distribution_codec () =
  let d, _ =
    choose
      ~extra:(Constraints.pin_class Constraints.empty ~cname:"S" Constraints.Server)
      ~classes:[ "S"; "A"; "B" ]
      ~records:[ (1, 0, "I", true, 100_000, 100_000) ]
      ()
  in
  let d' = Analysis.decode (Analysis.encode d) in
  Alcotest.(check int) "nodes" d.Analysis.node_count d'.Analysis.node_count;
  Alcotest.(check int) "server count" d.Analysis.server_count d'.Analysis.server_count;
  for c = 0 to d.Analysis.node_count - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "placement %d" c)
      true
      (Analysis.location_of d c = Analysis.location_of d' c)
  done

let test_price_entry_uses_bucket_means () =
  let icc = Icc.create () in
  Icc.record icc ~src:0 ~dst:1 ~iface:"I" ~remotable:true ~request:1_000 ~reply:1_000;
  let e = List.hd (Icc.entries icc) in
  let expected = 2. *. Net_profiler.predict_us exact_net ~bytes:1_000 in
  Alcotest.(check (float 0.5)) "two messages priced" expected (Analysis.price_entry exact_net e)

let suite =
  [
    Alcotest.test_case "pinned classes respected" `Quick test_pinned_classes_respected;
    Alcotest.test_case "non-remotable colocated" `Quick test_non_remotable_colocated;
    Alcotest.test_case "pairwise constraint" `Quick test_pairwise_constraint;
    Alcotest.test_case "absolute classification pin" `Quick test_absolute_classification_pin;
    Alcotest.test_case "idle classifications default client" `Quick
      test_idle_classifications_default_client;
    Alcotest.test_case "predicted comm consistency" `Quick test_predicted_comm_consistency;
    Alcotest.test_case "cut minimal vs alternatives" `Quick test_cut_is_minimal_vs_alternatives;
    Alcotest.test_case "algorithms agree" `Quick test_algorithms_agree_on_placement_cost;
    Alcotest.test_case "distribution codec" `Quick test_distribution_codec;
    Alcotest.test_case "price entry uses bucket means" `Quick test_price_entry_uses_bucket_means;
  ]

(* --- Randomized optimality ------------------------------------------ *)

(* For small random ICC graphs, the engine's cut must be optimal among
   every placement that satisfies the constraints. *)
let gen_instance =
  QCheck.Gen.(
    int_range 3 7 >>= fun n ->
    list_size (int_range 1 12)
      (triple (int_range (-1) (n - 1)) (int_range 0 (n - 1)) (int_range 0 60_000))
    >>= fun records ->
    (* Pin up to two classifications each way. *)
    int_range 0 (n - 1) >>= fun pin_client ->
    int_range 0 (n - 1) >>= fun pin_server ->
    (* Mark some records non-remotable. *)
    list_size (int_range 0 2) (int_range 0 (max 0 (List.length records - 1)))
    >>= fun nonremote_idx -> return (n, records, pin_client, pin_server, nonremote_idx))

let arb_instance =
  QCheck.make
    ~print:(fun (n, records, pc, ps, nr) ->
      Printf.sprintf "n=%d pinC=%d pinS=%d nonremote=%s records=%s" n pc ps
        (String.concat "," (List.map string_of_int nr))
        (String.concat ";"
           (List.map (fun (a, b, s) -> Printf.sprintf "%d->%d:%d" a b s) records)))
    gen_instance

let prop_cut_optimal =
  QCheck.Test.make ~name:"engine cut optimal among all legal placements" ~count:150
    arb_instance
    (fun (n, records, pin_client, pin_server, nonremote_idx) ->
      QCheck.assume (pin_client <> pin_server);
      (* Skip unsatisfiable instances: a chain of non-remotable edges
         connecting the two opposite pins leaves no legal placement at
         all (the application simply cannot be distributed). *)
      let parent = Array.init (n + 1) Fun.id in
      (* Node n stands for the main program, implicitly on the client. *)
      let rec find x = if parent.(x) = x then x else find parent.(x) in
      List.iteri
        (fun i (src, dst, _) ->
          if List.mem i nonremote_idx && src <> dst then
            parent.(find (if src < 0 then n else src)) <- find dst)
        records;
      QCheck.assume (find pin_client <> find pin_server);
      QCheck.assume (find n <> find pin_server);
      let classes = List.init n (fun i -> Printf.sprintf "K%d" i) in
      let classifier = classifier_with classes in
      let icc = Icc.create () in
      List.iteri
        (fun i (src, dst, size) ->
          if src <> dst then
            Icc.record icc ~src ~dst ~iface:(Printf.sprintf "I%d" (i mod 3))
              ~remotable:(not (List.mem i nonremote_idx))
              ~request:size ~reply:(size / 3))
        records;
      let constraints =
        Constraints.pin_classification
          (Constraints.pin_classification Constraints.empty pin_client Constraints.Client)
          pin_server Constraints.Server
      in
      let d = Analysis.choose ~classifier ~icc ~constraints ~net:exact_net () in
      (* The engine must satisfy the constraints outright. *)
      let ok_constraints =
        Analysis.location_of d pin_client = Constraints.Client
        && Analysis.location_of d pin_server = Constraints.Server
      in
      (* Enumerate every placement honoring pins and non-remotable
         co-location; the engine's cost must be <= all of them. *)
      let entries = Icc.entries icc in
      let side mask c = if c < 0 then 0 else (mask lsr c) land 1 in
      let legal mask =
        side mask pin_client = 0
        && side mask pin_server = 1
        && List.for_all
             (fun (e : Icc.entry) ->
               e.Icc.remotable || side mask e.Icc.src = side mask e.Icc.dst)
             entries
      in
      let cost mask =
        let placement c =
          if c < 0 then Constraints.Client
          else if (mask lsr c) land 1 = 1 then Constraints.Server
          else Constraints.Client
        in
        Analysis.comm_time_under ~icc ~net:exact_net ~placement
      in
      let best = ref infinity in
      for mask = 0 to (1 lsl n) - 1 do
        if legal mask then best := Float.min !best (cost mask)
      done;
      ok_constraints && d.Analysis.predicted_comm_us <= !best +. 1e-6)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_cut_optimal;
    ]
