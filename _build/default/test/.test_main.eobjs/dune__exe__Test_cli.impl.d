test/test_cli.ml: Alcotest Array Coign_core Coign_image Filename Fun Option Sys Unix
