test/test_util.ml: Alcotest Array Coign_util Exp_bucket Float Fun List Printf Prng QCheck QCheck_alcotest Stats String Tablefmt
