test/test_netsim.ml: Alcotest Coign_netsim Coign_util Float Int64 List Net_profiler Network Printf Prng QCheck QCheck_alcotest
