test/test_analysis.ml: Alcotest Analysis Array Classifier Coign_core Coign_flowgraph Coign_netsim Constraints Float Fun Icc List Net_profiler Network Option Printf QCheck QCheck_alcotest String
