test/test_classifier.ml: Alcotest Classifier Coign_core Frame List Option Printf QCheck QCheck_alcotest
