test/test_image.ml: Alcotest Binary_image Codec Coign_image Config_record Filename Format Fun List Option QCheck QCheck_alcotest Rewriter String Sys
