test/test_flowgraph.ml: Alcotest Array Coign_flowgraph Flow_network List Mincut Multiway Printf QCheck QCheck_alcotest String
