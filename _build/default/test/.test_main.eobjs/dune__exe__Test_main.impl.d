test/test_main.ml: Alcotest Test_adps Test_analysis Test_apps Test_classifier Test_cli Test_com Test_core Test_extensions Test_flowgraph Test_idl Test_image Test_netsim Test_rte Test_sim Test_util
