test/test_sim.ml: Alcotest Classifier Classifier_eval Coign_apps Coign_core Coign_netsim Coign_sim Experiment Float Lazy List Octarine Overhead Suite
