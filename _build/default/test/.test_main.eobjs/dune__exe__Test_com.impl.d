test/test_com.ml: Alcotest Coign_com Coign_idl Combuild Guid Hresult Idl_type Itype List Runtime String Value
