test/test_idl.ml: Alcotest Coign_idl Format Idl_type List Marshal_size Midl Printf QCheck QCheck_alcotest Value
