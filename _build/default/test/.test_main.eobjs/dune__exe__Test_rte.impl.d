test/test_rte.ml: Alcotest Classifier Coign_com Coign_core Coign_idl Coign_netsim Combuild Constraints Event Factory Float Hresult Icc Idl_type Itype List Logger Option Rte Runtime String Value
