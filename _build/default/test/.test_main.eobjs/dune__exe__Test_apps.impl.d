test/test_apps.ml: Alcotest App Benefits Classifier Coign_apps Coign_com Coign_core Coign_idl Common Constraints Hresult Icc List Octarine Photodraw Rte Runtime Static_analysis Suite
