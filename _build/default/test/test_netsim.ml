open Coign_util
open Coign_netsim

let qtest = QCheck_alcotest.to_alcotest

let test_message_time_formula () =
  let net = Network.make ~name:"t" ~latency_us:100. ~bandwidth_mbps:8. ~proc_us:50. in
  (* 1000 bytes at 8 Mbps = 1000 us *)
  Alcotest.(check (float 1e-6)) "formula" 1150. (Network.message_us net ~bytes:1000)

let test_round_trip () =
  let net = Network.ethernet_10 in
  Alcotest.(check (float 1e-9)) "request+reply"
    (Network.message_us net ~bytes:100 +. Network.message_us net ~bytes:200)
    (Network.round_trip_us net ~request:100 ~reply:200)

let test_monotone_in_size () =
  List.iter
    (fun net ->
      Alcotest.(check bool)
        (net.Network.net_name ^ " monotone")
        true
        (Network.message_us net ~bytes:100 < Network.message_us net ~bytes:10_000))
    Network.presets

let test_loopback_free () =
  Alcotest.(check bool) "negligible" true
    (Network.message_us Network.loopback ~bytes:1_000_000 < 0.01)

let test_preset_ordering () =
  (* For bulk data, faster networks are faster. *)
  let bulk net = Network.message_us net ~bytes:1_000_000 in
  Alcotest.(check bool) "isdn slowest" true (bulk Network.isdn_128 > bulk Network.ethernet_10);
  Alcotest.(check bool) "ethernet10 > ethernet100" true
    (bulk Network.ethernet_10 > bulk Network.ethernet_100);
  Alcotest.(check bool) "san fastest" true (bulk Network.san_1g < bulk Network.atm_155)

let test_invalid_network () =
  Alcotest.check_raises "bad params" (Invalid_argument "Network.make: nonsensical parameters")
    (fun () -> ignore (Network.make ~name:"x" ~latency_us:1. ~bandwidth_mbps:0. ~proc_us:1.))

(* --- Net_profiler --------------------------------------------------- *)

let test_profile_fit_close_to_truth () =
  let rng = Prng.create 42L in
  let net = Network.ethernet_10 in
  let p = Net_profiler.profile rng net in
  List.iter
    (fun bytes ->
      let truth = Network.message_us net ~bytes in
      let predicted = Net_profiler.predict_us p ~bytes in
      let err = Float.abs (predicted -. truth) /. truth in
      Alcotest.(check bool)
        (Printf.sprintf "fit within 10%% at %d bytes (err %.3f)" bytes err)
        true (err < 0.10))
    [ 64; 1_024; 32_768; 500_000 ]

let test_exact_profile_is_exact () =
  let net = Network.ethernet_10 in
  let p = Net_profiler.exact net in
  List.iter
    (fun bytes ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%d bytes" bytes)
        (Network.message_us net ~bytes)
        (Net_profiler.predict_us p ~bytes))
    [ 0; 100; 9_999 ]

let test_profile_deterministic_per_seed () =
  let p1 = Net_profiler.profile (Prng.create 9L) Network.ethernet_10 in
  let p2 = Net_profiler.profile (Prng.create 9L) Network.ethernet_10 in
  Alcotest.(check (float 0.)) "same fit" p1.Net_profiler.fixed_us p2.Net_profiler.fixed_us

let test_round_trip_prediction () =
  let p = Net_profiler.exact Network.ethernet_10 in
  Alcotest.(check (float 1e-9)) "sum of directions"
    (Net_profiler.predict_us p ~bytes:10 +. Net_profiler.predict_us p ~bytes:20)
    (Net_profiler.predict_round_trip_us p ~request:10 ~reply:20)

let prop_predictions_nonnegative =
  QCheck.Test.make ~name:"predictions are non-negative" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 1000))
    (fun (bytes, seed) ->
      let p = Net_profiler.profile (Prng.create (Int64.of_int seed)) Network.isdn_128 in
      Net_profiler.predict_us p ~bytes >= 0.)

let suite =
  [
    Alcotest.test_case "message time formula" `Quick test_message_time_formula;
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "monotone in size" `Quick test_monotone_in_size;
    Alcotest.test_case "loopback free" `Quick test_loopback_free;
    Alcotest.test_case "preset ordering" `Quick test_preset_ordering;
    Alcotest.test_case "invalid network" `Quick test_invalid_network;
    Alcotest.test_case "profiler fit close to truth" `Quick test_profile_fit_close_to_truth;
    Alcotest.test_case "exact profile is exact" `Quick test_exact_profile_is_exact;
    Alcotest.test_case "profile deterministic per seed" `Quick test_profile_deterministic_per_seed;
    Alcotest.test_case "round trip prediction" `Quick test_round_trip_prediction;
    qtest prop_predictions_nonnegative;
  ]
