(** Runtime values exchanged across interface calls.

    Interface pointers appear as opaque integer handles here; the
    component runtime ({!Coign_com}) owns the handle table. Blobs carry
    only their size — Coign never inspects payloads, it only measures
    them, so modelling a buffer by its length loses nothing. *)

type t =
  | Unit
  | Int of int                     (** fits both int32 and int64 slots *)
  | Float of float
  | Bool of bool
  | Str of string
  | Blob of int                    (** byte buffer of the given size *)
  | Arr of t list
  | Struct of (string * t) list
  | Null                           (** null [Ptr] *)
  | Ref of t                       (** non-null [Ptr] *)
  | Iface_ref of int               (** interface handle *)
  | Opaque_handle of string        (** non-remotable raw pointer/handle *)

val conforms : Idl_type.t -> t -> bool
(** Structural conformance of a value to an IDL type. [Int] conforms to
    both integer widths; [Null] and [Ref _] conform to [Ptr _];
    [Iface_ref] conforms to any [Iface _]. *)

val iface_handles : t -> int list
(** All interface handles reachable in the value, in traversal order
    (what the distribution informer extracts). *)

val map_iface_handles : (int -> int) -> t -> t
(** Rewrite every interface handle (used by the RTE to swap in wrapped
    interface pointers on the way through an intercepted call). *)

val pp : Format.formatter -> t -> unit
