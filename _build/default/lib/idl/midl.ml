(* Compiled form: a flat array of opcodes interpreted against the value
   tree. Struct/array/pointer bodies are expressed by sub-programs
   referenced by index, which keeps the interpreter non-recursive over
   opcodes within one level and mirrors how format strings embed offsets
   to nested descriptors. *)

type op =
  | O_void
  | O_fixed of int            (* scalar of fixed width *)
  | O_counted_str
  | O_counted_blob
  | O_array of int            (* sub-program index for element *)
  | O_struct of int list      (* sub-program index per field *)
  | O_ptr of int              (* sub-program index for pointee *)
  | O_iface
  | O_opaque of string

type proc = { programs : op array; ty : Idl_type.t }

let compile ty =
  let programs = ref [] in
  let count = ref 0 in
  (* Returns the index of the compiled sub-program for [ty]. *)
  let rec go ty =
    let idx = !count in
    incr count;
    (* Reserve the slot before compiling children so indices are stable. *)
    programs := (idx, O_void) :: !programs;
    let op =
      match ty with
      | Idl_type.Void -> O_void
      | Idl_type.Int32 -> O_fixed 4
      | Idl_type.Int64 -> O_fixed 8
      | Idl_type.Double -> O_fixed 8
      | Idl_type.Bool -> O_fixed 4
      | Idl_type.Str -> O_counted_str
      | Idl_type.Blob -> O_counted_blob
      | Idl_type.Array elt -> O_array (go elt)
      | Idl_type.Struct fields -> O_struct (List.map (fun (_, t) -> go t) fields)
      | Idl_type.Ptr pointee -> O_ptr (go pointee)
      | Idl_type.Iface _ -> O_iface
      | Idl_type.Opaque tag -> O_opaque tag
    in
    programs := (idx, op) :: List.remove_assoc idx !programs;
    idx
  in
  let root = go ty in
  assert (root = 0);
  let arr = Array.make !count O_void in
  List.iter (fun (i, op) -> arr.(i) <- op) !programs;
  { programs = arr; ty }

let opcount p = Array.length p.programs

let ( let* ) = Result.bind

let size_with p v =
  let mismatch got = Error (Marshal_size.Type_mismatch { expected = p.ty; got }) in
  let rec run idx v =
    match (p.programs.(idx), v) with
    | O_void, Value.Unit -> Ok 0
    | O_fixed n, (Value.Int _ | Value.Float _ | Value.Bool _) -> Ok n
    | O_counted_str, Value.Str s -> Ok (4 + String.length s)
    | O_counted_blob, Value.Blob n when n >= 0 -> Ok (4 + n)
    | O_array elt, Value.Arr vs ->
        let* body =
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              let* s = run elt v in
              Ok (acc + s))
            (Ok 0) vs
        in
        Ok (4 + body)
    | O_struct fields, Value.Struct fvs when List.length fields = List.length fvs ->
        List.fold_left2
          (fun acc fidx (_, fv) ->
            let* acc = acc in
            let* s = run fidx fv in
            Ok (acc + s))
          (Ok 0) fields fvs
    | O_ptr _, Value.Null -> Ok 4
    | O_ptr pointee, Value.Ref inner ->
        let* s = run pointee inner in
        Ok (4 + s)
    | O_iface, Value.Iface_ref _ -> Ok Marshal_size.objref_size
    | O_iface, Value.Null -> Ok 4
    | O_opaque tag, Value.Opaque_handle _ -> Error (Marshal_size.Not_remotable tag)
    | _, got -> mismatch got
  in
  run 0 v

(* Interface-pointer walk: retain only paths that can reach an Iface.
   Paths that cannot are compiled to Skip, so the distribution informer
   touches the minimum number of value nodes. *)
type iop =
  | I_skip
  | I_take                     (* this position is an interface pointer *)
  | I_array of int
  | I_struct of (int * int) list  (* (field position, sub-program) for
                                     fields that can carry ifaces *)
  | I_ptr of int

type iface_proc = { iprograms : iop array }

let compile_iface_walk ty =
  let programs = ref [] in
  let count = ref 0 in
  let rec go ty =
    let idx = !count in
    incr count;
    programs := (idx, I_skip) :: !programs;
    let op =
      match ty with
      | Idl_type.Iface _ -> I_take
      | Idl_type.Array elt ->
          if Idl_type.contains_iface elt then I_array (go elt) else I_skip
      | Idl_type.Struct fields ->
          let interesting =
            List.filteri (fun _ (_, t) -> Idl_type.contains_iface t) fields
          in
          if interesting = [] then I_skip
          else
            I_struct
              (List.concat
                 (List.mapi
                    (fun pos (_, t) ->
                      if Idl_type.contains_iface t then [ (pos, go t) ] else [])
                    fields))
      | Idl_type.Ptr pointee ->
          if Idl_type.contains_iface pointee then I_ptr (go pointee) else I_skip
      | Idl_type.Void | Idl_type.Int32 | Idl_type.Int64 | Idl_type.Double
      | Idl_type.Bool | Idl_type.Str | Idl_type.Blob | Idl_type.Opaque _ ->
          I_skip
    in
    programs := (idx, op) :: List.remove_assoc idx !programs;
    idx
  in
  let root = go ty in
  assert (root = 0);
  let arr = Array.make !count I_skip in
  List.iter (fun (i, op) -> arr.(i) <- op) !programs;
  { iprograms = arr }

let iface_walk_trivial p = p.iprograms.(0) = I_skip

let handles_with p v =
  let acc = ref [] in
  let rec run idx v =
    match (p.iprograms.(idx), v) with
    | I_skip, _ -> ()
    | I_take, Value.Iface_ref h -> acc := h :: !acc
    | I_take, _ -> ()
    | I_array elt, Value.Arr vs -> List.iter (run elt) vs
    | I_array _, _ -> ()
    | I_struct fields, Value.Struct fvs ->
        let fvs = Array.of_list fvs in
        List.iter
          (fun (pos, sub) -> if pos < Array.length fvs then run sub (snd fvs.(pos)))
          fields
    | I_struct _, _ -> ()
    | I_ptr sub, Value.Ref inner -> run sub inner
    | I_ptr _, _ -> ()
  in
  run 0 v;
  List.rev !acc

type method_procs = {
  request_procs : (Idl_type.direction * proc) list;
  ret_proc : proc;
  iface_procs : iface_proc list;
  ret_iface_proc : iface_proc;
  remotable : bool;
}

let compile_method (msig : Idl_type.method_sig) =
  {
    request_procs = List.map (fun p -> (p.Idl_type.pdir, compile p.pty)) msig.params;
    ret_proc = compile msig.ret;
    iface_procs = List.map (fun p -> compile_iface_walk p.Idl_type.pty) msig.params;
    ret_iface_proc = compile_iface_walk msig.ret;
    remotable = Idl_type.method_remotable msig;
  }

let method_call_size procs ~args ~result =
  if List.length args <> List.length procs.request_procs then
    Error
      (Marshal_size.Type_mismatch { expected = Idl_type.Void; got = Value.Arr args })
  else
    let* req, rep =
      List.fold_left2
        (fun acc (dir, proc) v ->
          let* req, rep = acc in
          let* s = size_with proc v in
          match dir with
          | Idl_type.In -> Ok (req + s, rep)
          | Idl_type.Out -> Ok (req, rep + s)
          | Idl_type.In_out -> Ok (req + s, rep + s))
        (Ok (0, 0))
        procs.request_procs args
    in
    let* ret = size_with procs.ret_proc result in
    Ok
      {
        Marshal_size.request = Marshal_size.scalar_overhead + req;
        reply = Marshal_size.scalar_overhead + rep + ret;
      }
