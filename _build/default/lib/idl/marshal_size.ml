type error =
  | Not_remotable of string
  | Type_mismatch of { expected : Idl_type.t; got : Value.t }

let pp_error ppf = function
  | Not_remotable tag -> Format.fprintf ppf "not remotable: opaque<%s>" tag
  | Type_mismatch { expected; got } ->
      Format.fprintf ppf "type mismatch: expected %a, got %a" Idl_type.pp expected
        Value.pp got

(* Sizes follow NDR-ish conventions: 4-byte length prefixes, 4-byte
   null-flags for unique pointers, 8-byte alignment ignored (we model
   payload, not padding). OBJREF size approximates DCOM's standard
   marshaled interface reference. *)
let scalar_overhead = 48
let objref_size = 68
let len_prefix = 4
let ptr_flag = 4

let ( let* ) = Result.bind

let rec value_size ty v =
  match (ty, v) with
  | Idl_type.Void, Value.Unit -> Ok 0
  | Idl_type.Int32, Value.Int _ -> Ok 4
  | Idl_type.Int64, Value.Int _ -> Ok 8
  | Idl_type.Double, Value.Float _ -> Ok 8
  | Idl_type.Bool, Value.Bool _ -> Ok 4
  | Idl_type.Str, Value.Str s -> Ok (len_prefix + String.length s)
  | Idl_type.Blob, Value.Blob n when n >= 0 -> Ok (len_prefix + n)
  | Idl_type.Array elt, Value.Arr vs ->
      let* body =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* s = value_size elt v in
            Ok (acc + s))
          (Ok 0) vs
      in
      Ok (len_prefix + body)
  | Idl_type.Struct fts, Value.Struct fvs when List.length fts = List.length fvs ->
      List.fold_left2
        (fun acc (fname, fty) (vname, fv) ->
          let* acc = acc in
          if not (String.equal fname vname) then
            Error (Type_mismatch { expected = ty; got = v })
          else
            let* s = value_size fty fv in
            Ok (acc + s))
        (Ok 0) fts fvs
  | Idl_type.Ptr _, Value.Null -> Ok ptr_flag
  | Idl_type.Ptr pointee, Value.Ref inner ->
      let* s = value_size pointee inner in
      Ok (ptr_flag + s)
  | Idl_type.Iface _, Value.Iface_ref _ -> Ok objref_size
  | Idl_type.Iface _, Value.Null -> Ok ptr_flag
  | Idl_type.Opaque tag, Value.Opaque_handle _ -> Error (Not_remotable tag)
  | _, _ -> Error (Type_mismatch { expected = ty; got = v })

type call_size = { request : int; reply : int }

let total { request; reply } = request + reply

let call (msig : Idl_type.method_sig) ~args ~result =
  if List.length args <> List.length msig.params then
    Error
      (Type_mismatch
         { expected = Idl_type.Struct (List.map (fun p -> (p.Idl_type.pname, p.pty)) msig.params);
           got = Value.Arr args })
  else
    let* req, rep =
      List.fold_left2
        (fun acc (p : Idl_type.param) v ->
          let* req, rep = acc in
          let* s = value_size p.pty v in
          match p.pdir with
          | Idl_type.In -> Ok (req + s, rep)
          | Idl_type.Out -> Ok (req, rep + s)
          | Idl_type.In_out -> Ok (req + s, rep + s))
        (Ok (0, 0))
        msig.params args
    in
    let* ret = value_size msig.ret result in
    Ok { request = scalar_overhead + req; reply = scalar_overhead + rep + ret }

let call_request_only msig ~args =
  if List.length args <> List.length msig.Idl_type.params then
    Error
      (Type_mismatch
         { expected =
             Idl_type.Struct
               (List.map (fun p -> (p.Idl_type.pname, p.pty)) msig.Idl_type.params);
           got = Value.Arr args })
  else
    let* req =
      List.fold_left2
        (fun acc (p : Idl_type.param) v ->
          let* acc = acc in
          match p.pdir with
          | Idl_type.Out -> Ok acc
          | Idl_type.In | Idl_type.In_out ->
              let* s = value_size p.pty v in
              Ok (acc + s))
        (Ok 0) msig.Idl_type.params args
    in
    Ok (scalar_overhead + req)
