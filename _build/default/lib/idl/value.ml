type t =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Blob of int
  | Arr of t list
  | Struct of (string * t) list
  | Null
  | Ref of t
  | Iface_ref of int
  | Opaque_handle of string

let rec conforms ty v =
  match (ty, v) with
  | Idl_type.Void, Unit -> true
  | (Idl_type.Int32 | Idl_type.Int64), Int _ -> true
  | Idl_type.Double, Float _ -> true
  | Idl_type.Bool, Bool _ -> true
  | Idl_type.Str, Str _ -> true
  | Idl_type.Blob, Blob n -> n >= 0
  | Idl_type.Array elt, Arr vs -> List.for_all (conforms elt) vs
  | Idl_type.Struct fts, Struct fvs ->
      List.length fts = List.length fvs
      && List.for_all2
           (fun (fname, fty) (vname, fv) -> String.equal fname vname && conforms fty fv)
           fts fvs
  | Idl_type.Ptr _, Null -> true
  | Idl_type.Ptr pointee, Ref v -> conforms pointee v
  | Idl_type.Iface _, Iface_ref _ -> true
  | Idl_type.Iface _, Null -> true
  | Idl_type.Opaque _, Opaque_handle _ -> true
  | _, _ -> false

let rec iface_handles = function
  | Unit | Int _ | Float _ | Bool _ | Str _ | Blob _ | Null | Opaque_handle _ -> []
  | Iface_ref h -> [ h ]
  | Ref v -> iface_handles v
  | Arr vs -> List.concat_map iface_handles vs
  | Struct fvs -> List.concat_map (fun (_, v) -> iface_handles v) fvs

let rec map_iface_handles f = function
  | (Unit | Int _ | Float _ | Bool _ | Str _ | Blob _ | Null | Opaque_handle _) as v -> v
  | Iface_ref h -> Iface_ref (f h)
  | Ref v -> Ref (map_iface_handles f v)
  | Arr vs -> Arr (List.map (map_iface_handles f) vs)
  | Struct fvs -> Struct (List.map (fun (name, v) -> (name, map_iface_handles f v)) fvs)

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_float ppf f
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.fprintf ppf "%S" s
  | Blob n -> Format.fprintf ppf "blob(%d)" n
  | Arr vs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        vs
  | Struct fvs ->
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf (name, v) -> Format.fprintf ppf "%s=%a" name pp v))
        fvs
  | Null -> Format.pp_print_string ppf "null"
  | Ref v -> Format.fprintf ppf "&%a" pp v
  | Iface_ref h -> Format.fprintf ppf "iface#%d" h
  | Opaque_handle tag -> Format.fprintf ppf "opaque<%s>" tag
