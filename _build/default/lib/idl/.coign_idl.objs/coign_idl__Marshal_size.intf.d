lib/idl/marshal_size.mli: Format Idl_type Value
