lib/idl/midl.mli: Idl_type Marshal_size Value
