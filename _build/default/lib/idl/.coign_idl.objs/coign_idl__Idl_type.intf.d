lib/idl/idl_type.mli: Format
