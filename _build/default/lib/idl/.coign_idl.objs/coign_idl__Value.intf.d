lib/idl/value.mli: Format Idl_type
