lib/idl/marshal_size.ml: Format Idl_type List Result String Value
