lib/idl/idl_type.ml: Format List
