lib/idl/midl.ml: Array Idl_type List Marshal_size Result String Value
