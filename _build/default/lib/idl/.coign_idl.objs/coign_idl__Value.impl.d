lib/idl/value.ml: Format Idl_type List String
