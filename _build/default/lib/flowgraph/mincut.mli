(** Minimum s-t cuts.

    Coign "employs the lift-to-front minimum-cut graph-cutting
    algorithm to choose a distribution with minimal communication
    time" (paper §2) — i.e. the relabel-to-front push-relabel max-flow
    algorithm of CLR ch. 27, with the min cut read off the final
    residual graph. We also keep two classic baselines (Edmonds-Karp
    and Dinic) and an exponential brute-force enumerator: the
    algorithms must agree on cut value, which is one of the library's
    strongest correctness properties. *)

type algorithm = Relabel_to_front | Edmonds_karp | Dinic

val all_algorithms : algorithm list
val algorithm_name : algorithm -> string

type cut = {
  value : int;                (** total capacity crossing the cut *)
  source_side : bool array;   (** [source_side.(v)] iff [v] lands with [s] *)
}

val max_flow : algorithm -> Flow_network.t -> s:int -> t:int -> int
(** Max-flow value only. *)

val min_cut : ?algorithm:algorithm -> Flow_network.t -> s:int -> t:int -> cut
(** Minimum s-t cut (default algorithm: [Relabel_to_front], as in the
    paper). Raises [Invalid_argument] if [s = t] or either is out of
    range. *)

val cut_edges : Flow_network.t -> cut -> (int * int * int) list
(** The network edges crossing from the source side to the sink side,
    with their capacities; their sum equals [cut.value]. *)

val brute_force_min_cut : Flow_network.t -> s:int -> t:int -> cut
(** Exhaustive minimum cut for verification; exponential, refuses
    graphs with more than 22 nodes. *)
