type partition = { assignment : int array; cost : int }

let partition_cost net assignment =
  List.fold_left
    (fun acc (src, dst, cap) ->
      if assignment.(src) <> assignment.(dst) then acc + cap else acc)
    0 (Flow_network.edges net)

let multiway_cut ?(algorithm = Mincut.Relabel_to_front) net ~terminals =
  let terminals = List.sort_uniq compare terminals in
  let k = List.length terminals in
  if k < 2 then invalid_arg "Multiway.multiway_cut: need at least two terminals";
  let n = Flow_network.node_count net in
  List.iter
    (fun t -> if t < 0 || t >= n then invalid_arg "Multiway.multiway_cut: bad terminal")
    terminals;
  let terminal_arr = Array.of_list terminals in
  if k = 2 then begin
    let cut = Mincut.min_cut ~algorithm net ~s:terminal_arr.(0) ~t:terminal_arr.(1) in
    let assignment = Array.init n (fun v -> if cut.Mincut.source_side.(v) then 0 else 1) in
    { assignment; cost = cut.Mincut.value }
  end
  else begin
    (* Isolating cut for terminal i: augment the graph with a
       super-sink wired to every other terminal with infinite
       capacity. *)
    let isolating i =
      let aug = Flow_network.create ~n:(n + 1) in
      List.iter
        (fun (src, dst, cap) -> Flow_network.add_edge aug ~src ~dst ~cap)
        (Flow_network.edges net);
      Array.iteri
        (fun j t ->
          if j <> i then
            Flow_network.add_undirected aug t n ~cap:Flow_network.infinity_cap)
        terminal_arr;
      let cut = Mincut.min_cut ~algorithm aug ~s:terminal_arr.(i) ~t:n in
      (cut.Mincut.value, cut.Mincut.source_side)
    in
    let cuts = Array.init k isolating in
    (* Drop the most expensive isolating cut (its terminal keeps the
       leftovers), then assign nodes greedily in ascending cut cost so
       cheaper cuts claim their side first. *)
    let order = Array.init k (fun i -> i) in
    Array.sort (fun a b -> compare (fst cuts.(a)) (fst cuts.(b))) order;
    let default_terminal = order.(k - 1) in
    let assignment = Array.make n default_terminal in
    let claimed = Array.make n false in
    Array.iteri
      (fun rank i ->
        if rank < k - 1 then
          let _, side = cuts.(i) in
          for v = 0 to n - 1 do
            if side.(v) && not claimed.(v) then begin
              assignment.(v) <- i;
              claimed.(v) <- true
            end
          done)
      order;
    (* Terminals always belong to themselves. *)
    Array.iteri (fun i t -> assignment.(t) <- i) terminal_arr;
    { assignment; cost = partition_cost net assignment }
  end
