(** Heuristic multiway cut (the paper's future-work extension).

    Partitioning across three or more machines is NP-hard (paper §2
    cites Dahlhaus et al.); Coign restricts itself to an exact two-way
    cut. As the extension the paper anticipates, we provide the classic
    isolation heuristic: compute a minimum isolating cut for each
    terminal (terminal vs. all other terminals merged), keep the k-1
    cheapest, and assign every node to the terminal whose isolating cut
    retains it — a (2 - 2/k)-approximation for undirected multiway
    cut. *)

type partition = {
  assignment : int array;
      (** [assignment.(v)] is the index (into the terminal list) of the
          machine node [v] lands on. *)
  cost : int;  (** total capacity crossing between different machines *)
}

val multiway_cut :
  ?algorithm:Mincut.algorithm -> Flow_network.t -> terminals:int list -> partition
(** Requires at least two distinct terminals. With exactly two, this
    reduces to the exact minimum cut. Treats edge capacities as
    symmetric demand (an undirected multiway-cut instance): for best
    results feed it graphs built with
    {!Flow_network.add_undirected}. *)

val partition_cost : Flow_network.t -> int array -> int
(** Capacity of all edges whose endpoints get different machines under
    a given assignment. *)
