module R = Flow_network.Residual

type algorithm = Relabel_to_front | Edmonds_karp | Dinic

let all_algorithms = [ Relabel_to_front; Edmonds_karp; Dinic ]

let algorithm_name = function
  | Relabel_to_front -> "relabel-to-front"
  | Edmonds_karp -> "edmonds-karp"
  | Dinic -> "dinic"

type cut = { value : int; source_side : bool array }

(* --- Relabel-to-front push-relabel (CLR ch. 27) ------------------- *)

let relabel_to_front g ~s ~t =
  let n = R.node_count g in
  let height = Array.make n 0 in
  let excess = Array.make n 0 in
  let current = Array.make n 0 in
  (* current.(v) = offset of v's current arc within its arc range *)
  height.(s) <- n;
  (* Saturate all arcs out of s. *)
  R.iter_out g s (fun ~arc ~dst ~cap ->
      if cap > 0 then begin
        R.push g arc cap;
        excess.(dst) <- excess.(dst) + cap;
        excess.(s) <- excess.(s) - cap
      end);
  let push_arc u arc dst =
    let amount = min excess.(u) (R.residual g arc) in
    R.push g arc amount;
    excess.(u) <- excess.(u) - amount;
    excess.(dst) <- excess.(dst) + amount
  in
  let relabel u =
    let min_h = ref max_int in
    R.iter_out g u (fun ~arc:_ ~dst ~cap ->
        if cap > 0 then min_h := min !min_h height.(dst));
    assert (!min_h < max_int);
    height.(u) <- 1 + !min_h
  in
  let discharge u =
    let deg = R.out_degree g u in
    let base = R.first_arc g u in
    while excess.(u) > 0 do
      if current.(u) >= deg then begin
        relabel u;
        current.(u) <- 0
      end
      else begin
        let arc = base + current.(u) in
        let dst = R.arc_dst g arc in
        if R.residual g arc > 0 && height.(u) = height.(dst) + 1 then push_arc u arc dst
        else current.(u) <- current.(u) + 1
      end
    done
  in
  (* The lift-to-front list (CLR RELABEL-TO-FRONT): all nodes except s
     and t in a linked list; scan front to back, discharging each; a
     node whose height rose moves to the front and scanning resumes at
     its successor (i.e. effectively restarts behind it). *)
  let nil = -1 in
  let next = Array.make n nil and prev = Array.make n nil in
  let head = ref nil in
  for v = n - 1 downto 0 do
    if v <> s && v <> t then begin
      next.(v) <- !head;
      prev.(v) <- nil;
      if !head <> nil then prev.(!head) <- v;
      head := v
    end
  done;
  let move_to_front u =
    if !head <> u then begin
      (* unlink *)
      if prev.(u) <> nil then next.(prev.(u)) <- next.(u);
      if next.(u) <> nil then prev.(next.(u)) <- prev.(u);
      (* relink at head *)
      next.(u) <- !head;
      prev.(u) <- nil;
      if !head <> nil then prev.(!head) <- u;
      head := u
    end
  in
  let u = ref !head in
  while !u <> nil do
    let old_height = height.(!u) in
    discharge !u;
    if height.(!u) > old_height then move_to_front !u;
    u := next.(!u)
  done;
  excess.(t)

(* --- Edmonds-Karp (BFS augmenting paths) -------------------------- *)

let edmonds_karp g ~s ~t =
  let n = R.node_count g in
  let parent_arc = Array.make n (-1) in
  let parent_node = Array.make n (-1) in
  let total = ref 0 in
  let rec run () =
    Array.fill parent_arc 0 n (-1);
    Array.fill parent_node 0 n (-1);
    let q = Queue.create () in
    Queue.add s q;
    parent_node.(s) <- s;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      R.iter_out g v (fun ~arc ~dst ~cap ->
          if cap > 0 && parent_node.(dst) < 0 then begin
            parent_node.(dst) <- v;
            parent_arc.(dst) <- arc;
            if dst = t then found := true else Queue.add dst q
          end)
    done;
    if !found then begin
      (* Bottleneck along the path. *)
      let rec bottleneck v acc =
        if v = s then acc
        else bottleneck parent_node.(v) (min acc (R.residual g parent_arc.(v)))
      in
      let b = bottleneck t max_int in
      let rec apply v =
        if v <> s then begin
          R.push g parent_arc.(v) b;
          apply parent_node.(v)
        end
      in
      apply t;
      total := !total + b;
      run ()
    end
  in
  run ();
  !total

(* --- Dinic (level graph + blocking flow) -------------------------- *)

let dinic g ~s ~t =
  let n = R.node_count g in
  let level = Array.make n (-1) in
  let iter = Array.make n 0 in
  let bfs () =
    Array.fill level 0 n (-1);
    let q = Queue.create () in
    Queue.add s q;
    level.(s) <- 0;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      R.iter_out g v (fun ~arc:_ ~dst ~cap ->
          if cap > 0 && level.(dst) < 0 then begin
            level.(dst) <- level.(v) + 1;
            Queue.add dst q
          end)
    done;
    level.(t) >= 0
  in
  let rec dfs v limit =
    if v = t then limit
    else begin
      let deg = R.out_degree g v in
      let base = R.first_arc g v in
      let pushed = ref 0 in
      while !pushed = 0 && iter.(v) < deg do
        let arc = base + iter.(v) in
        let dst = R.arc_dst g arc in
        if R.residual g arc > 0 && level.(dst) = level.(v) + 1 then begin
          let got = dfs dst (min limit (R.residual g arc)) in
          if got > 0 then begin
            R.push g arc got;
            pushed := got
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !pushed
    end
  in
  let total = ref 0 in
  while bfs () do
    Array.fill iter 0 n 0;
    let rec pump () =
      let f = dfs s max_int in
      if f > 0 then begin
        total := !total + f;
        pump ()
      end
    in
    pump ()
  done;
  !total

(* ------------------------------------------------------------------ *)

let check_terminals net ~s ~t =
  let n = Flow_network.node_count net in
  if s < 0 || s >= n || t < 0 || t >= n then invalid_arg "Mincut: terminal out of range";
  if s = t then invalid_arg "Mincut: s = t"

let run_algorithm alg g ~s ~t =
  match alg with
  | Relabel_to_front -> relabel_to_front g ~s ~t
  | Edmonds_karp -> edmonds_karp g ~s ~t
  | Dinic -> dinic g ~s ~t

let max_flow alg net ~s ~t =
  check_terminals net ~s ~t;
  let g = R.of_network net in
  run_algorithm alg g ~s ~t

let min_cut ?(algorithm = Relabel_to_front) net ~s ~t =
  check_terminals net ~s ~t;
  let g = R.of_network net in
  let value = run_algorithm algorithm g ~s ~t in
  { value; source_side = R.min_cut_side g ~s }

let cut_edges net cut =
  List.filter
    (fun (src, dst, _) -> cut.source_side.(src) && not cut.source_side.(dst))
    (Flow_network.edges net)

let brute_force_min_cut net ~s ~t =
  check_terminals net ~s ~t;
  let n = Flow_network.node_count net in
  if n > 22 then invalid_arg "Mincut.brute_force_min_cut: too many nodes";
  let es = Flow_network.edges net in
  let best_value = ref max_int and best_mask = ref 0 in
  (* Enumerate source-side sets containing s and excluding t. *)
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl s) <> 0 && mask land (1 lsl t) = 0 then begin
      let v =
        List.fold_left
          (fun acc (src, dst, cap) ->
            if mask land (1 lsl src) <> 0 && mask land (1 lsl dst) = 0 then acc + cap
            else acc)
          0 es
      in
      if v < !best_value then begin
        best_value := v;
        best_mask := mask
      end
    end
  done;
  { value = !best_value; source_side = Array.init n (fun v -> !best_mask land (1 lsl v) <> 0) }
