lib/flowgraph/flow_network.ml: Array Hashtbl List Option Printf
