lib/flowgraph/mincut.mli: Flow_network
