lib/flowgraph/multiway.ml: Array Flow_network List Mincut
