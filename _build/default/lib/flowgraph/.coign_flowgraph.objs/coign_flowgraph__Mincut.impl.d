lib/flowgraph/mincut.ml: Array Flow_network List Queue
