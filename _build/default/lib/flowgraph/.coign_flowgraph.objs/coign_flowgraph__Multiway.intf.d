lib/flowgraph/multiway.mli: Flow_network Mincut
