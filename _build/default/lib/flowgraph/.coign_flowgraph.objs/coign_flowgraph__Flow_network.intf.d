lib/flowgraph/flow_network.mli:
