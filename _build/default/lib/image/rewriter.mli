(** The binary rewriter.

    Performs the two modifications of paper §2 on an application image:
    inserts the Coign runtime into the first slot of the DLL import
    table (so it loads and runs before the application or any of its
    DLLs) and appends/updates the configuration record data segment.
    Also performs the post-analysis rewrite that strips the profiling
    instrumentation and installs the lightweight distribution
    runtime. *)

val runtime_dll : string
(** Name of the injected runtime library ("coignrte.dll"). *)

val is_instrumented : Binary_image.t -> bool
(** The runtime DLL occupies the first import slot. *)

val instrument :
  ?classifier:string -> ?stack_depth:int option -> Binary_image.t -> Binary_image.t
(** Produce the profiling-instrumented image: runtime DLL first in the
    import table, config record in [Profiling] mode. Instrumenting an
    already-instrumented image just updates the config. Existing
    profile entries in the config record are preserved, so successive
    scenario runs accumulate. *)

val write_distribution :
  Binary_image.t -> entries:(string * string) list -> Binary_image.t
(** The post-analysis rewrite: keep the runtime in the import table,
    switch the config record to [Distributed] mode, drop accumulated
    raw profile entries, and store the analyzer's output entries (the
    "ICC graph and component classification data", §2). *)

val strip : Binary_image.t -> Binary_image.t
(** Restore the original un-instrumented image: remove the runtime
    import and the configuration record. *)
