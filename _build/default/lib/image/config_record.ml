type mode = Off | Profiling | Distributed

module Smap = Map.Make (String)

type t = {
  cfg_mode : mode;
  cfg_classifier : string;
  cfg_depth : int option;
  entries : string Smap.t;
}

let create cfg_mode =
  { cfg_mode; cfg_classifier = "ifcb"; cfg_depth = None; entries = Smap.empty }

let mode t = t.cfg_mode
let with_mode t m = { t with cfg_mode = m }
let classifier_name t = t.cfg_classifier
let with_classifier t name = { t with cfg_classifier = name }
let stack_depth t = t.cfg_depth
let with_stack_depth t d = { t with cfg_depth = d }

let set_entry t name v = { t with entries = Smap.add name v t.entries }
let entry t name = Smap.find_opt name t.entries
let entry_names t = Smap.fold (fun k _ acc -> k :: acc) t.entries [] |> List.rev
let remove_entry t name = { t with entries = Smap.remove name t.entries }

let magic = "COIGNCFG"

let mode_tag = function Off -> 0 | Profiling -> 1 | Distributed -> 2

let mode_of_tag = function
  | 0 -> Off
  | 1 -> Profiling
  | 2 -> Distributed
  | n -> raise (Codec.Malformed (Printf.sprintf "bad mode tag %d" n))

let encode t =
  let w = Codec.writer () in
  Codec.w_str w magic;
  Codec.w_u8 w (mode_tag t.cfg_mode);
  Codec.w_str w t.cfg_classifier;
  (match t.cfg_depth with
  | None -> Codec.w_u8 w 0
  | Some d ->
      Codec.w_u8 w 1;
      Codec.w_u32 w d);
  Codec.w_list w
    (fun (k, v) ->
      Codec.w_str w k;
      Codec.w_str w v)
    (Smap.bindings t.entries);
  Codec.contents w

let decode s =
  let r = Codec.reader s in
  if Codec.r_str r <> magic then raise (Codec.Malformed "bad config magic");
  let cfg_mode = mode_of_tag (Codec.r_u8 r) in
  let cfg_classifier = Codec.r_str r in
  let cfg_depth =
    match Codec.r_u8 r with
    | 0 -> None
    | 1 -> Some (Codec.r_u32 r)
    | n -> raise (Codec.Malformed (Printf.sprintf "bad depth tag %d" n))
  in
  let pairs =
    Codec.r_list r (fun r ->
        let k = Codec.r_str r in
        let v = Codec.r_str r in
        (k, v))
  in
  Codec.expect_end r;
  { cfg_mode; cfg_classifier; cfg_depth; entries = Smap.of_seq (List.to_seq pairs) }

let equal a b =
  a.cfg_mode = b.cfg_mode
  && String.equal a.cfg_classifier b.cfg_classifier
  && a.cfg_depth = b.cfg_depth
  && Smap.equal String.equal a.entries b.entries

let pp ppf t =
  Format.fprintf ppf "config{mode=%s; classifier=%s; depth=%s; entries=[%s]}"
    (match t.cfg_mode with
    | Off -> "off"
    | Profiling -> "profiling"
    | Distributed -> "distributed")
    t.cfg_classifier
    (match t.cfg_depth with None -> "full" | Some d -> string_of_int d)
    (String.concat "," (entry_names t))
