type writer = Buffer.t

let writer () = Buffer.create 256

let w_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.w_u8: out of range";
  Buffer.add_char b (Char.chr v)

let w_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.w_u32: out of range";
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let w_i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let w_f64 b v = w_i64 b (Int64.bits_of_float v)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b f xs =
  w_u32 b (List.length xs);
  List.iter f xs

let contents = Buffer.contents

type reader = { data : string; mutable pos : int }

exception Malformed of string

let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > String.length r.data then raise (Malformed "truncated input")

let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let b i = Char.code r.data.[r.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !v

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_str r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f =
  let n = r_u32 r in
  List.init n (fun _ -> f r)

let at_end r = r.pos = String.length r.data

let expect_end r = if not (at_end r) then raise (Malformed "trailing bytes")
