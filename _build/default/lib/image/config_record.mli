(** The Coign configuration record.

    The binary rewriter appends one of these to the application binary
    (paper §2): it tells the runtime how to behave (profile or realize
    a distribution) and carries accumulated profile summaries and the
    chosen distribution between tool invocations. Payload entries are
    opaque named blobs — the record is a data segment, and the layers
    above it (the Coign runtime) own their own encodings. *)

type mode =
  | Off          (** runtime loads but does nothing *)
  | Profiling    (** heavyweight informer + profiling logger *)
  | Distributed  (** lightweight informer + component factory *)

type t

val create : mode -> t

val mode : t -> mode
val with_mode : t -> mode -> t

val classifier_name : t -> string
(** Which instance classifier the runtime should use (default
    ["ifcb"]). *)

val with_classifier : t -> string -> t

val stack_depth : t -> int option
(** Classifier stack-walk depth limit; [None] walks the whole stack. *)

val with_stack_depth : t -> int option -> t

val set_entry : t -> string -> string -> t
(** Store a named payload blob, replacing any previous value. *)

val entry : t -> string -> string option

val entry_names : t -> string list
(** Sorted. *)

val remove_entry : t -> string -> t

val encode : t -> string
val decode : string -> t
(** Raises {!Codec.Malformed} on garbage. [decode (encode t)] equals
    [t]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
