let runtime_dll = "coignrte.dll"

let is_instrumented (img : Binary_image.t) =
  match img.imports with first :: _ -> String.equal first runtime_dll | [] -> false

let without_runtime imports = List.filter (fun d -> not (String.equal d runtime_dll)) imports

let instrument ?(classifier = "ifcb") ?(stack_depth = None) (img : Binary_image.t) =
  let config =
    match img.config with
    | Some c ->
        Config_record.with_stack_depth
          (Config_record.with_classifier (Config_record.with_mode c Config_record.Profiling) classifier)
          stack_depth
    | None ->
        Config_record.with_stack_depth
          (Config_record.with_classifier (Config_record.create Config_record.Profiling) classifier)
          stack_depth
  in
  { img with imports = runtime_dll :: without_runtime img.imports; config = Some config }

let write_distribution (img : Binary_image.t) ~entries =
  let base =
    match img.config with
    | Some c -> c
    | None -> Config_record.create Config_record.Distributed
  in
  (* Remove profiling-time entries; the distribution runtime reads only
     what the analyzer wrote. *)
  let cleaned =
    List.fold_left Config_record.remove_entry
      (Config_record.with_mode base Config_record.Distributed)
      (Config_record.entry_names base)
  in
  let config = List.fold_left (fun c (k, v) -> Config_record.set_entry c k v) cleaned entries in
  { img with imports = runtime_dll :: without_runtime img.imports; config = Some config }

let strip (img : Binary_image.t) =
  { img with imports = without_runtime img.imports; config = None }
