lib/image/config_record.mli: Format
