lib/image/config_record.ml: Codec Format List Map Printf String
