lib/image/rewriter.ml: Binary_image Config_record List String
