lib/image/binary_image.mli: Config_record Format
