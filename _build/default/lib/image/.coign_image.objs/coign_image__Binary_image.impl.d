lib/image/binary_image.ml: Codec Config_record Format Fun List Option Printf String
