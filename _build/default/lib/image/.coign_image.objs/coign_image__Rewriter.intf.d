lib/image/rewriter.mli: Binary_image
