lib/image/codec.mli:
