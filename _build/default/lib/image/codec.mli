(** Tiny length-prefixed binary codec shared by the image format and the
    configuration record. All integers are unsigned LEB128-free fixed
    32/64-bit little-endian; strings and blobs carry a 32-bit length. *)

type writer

val writer : unit -> writer
val w_u8 : writer -> int -> unit
val w_u32 : writer -> int -> unit
val w_i64 : writer -> int64 -> unit
val w_f64 : writer -> float -> unit
val w_str : writer -> string -> unit
val w_list : writer -> ('a -> unit) -> 'a list -> unit
(** Writes a u32 count then each element via the callback. *)

val contents : writer -> string

type reader

exception Malformed of string

val reader : string -> reader
val r_u8 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int64
val r_f64 : reader -> float
val r_str : reader -> string
val r_list : reader -> (reader -> 'a) -> 'a list
val at_end : reader -> bool
val expect_end : reader -> unit
(** Raises [Malformed] if bytes remain. *)
