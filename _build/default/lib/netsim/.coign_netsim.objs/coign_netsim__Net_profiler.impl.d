lib/netsim/net_profiler.ml: Array Coign_util Float Format Hashtbl List Network Option Prng Stats
