lib/netsim/network.mli: Format
