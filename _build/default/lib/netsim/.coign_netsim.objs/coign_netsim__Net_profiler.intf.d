lib/netsim/net_profiler.mli: Coign_util Format Network
