lib/netsim/network.ml: Format
