(* Buckets: [0,31], [32,63], [64,127], ... doubling. 63 slots is enough
   for any 62-bit size. Stored sparsely-ish in arrays; histograms are
   tiny so plain arrays are simplest. *)

let base_bits = 5 (* first bucket covers 0 .. 2^5 - 1 *)
let nbuckets = 58

type t = { counts : int array; bytes : int array }

let create () = { counts = Array.make nbuckets 0; bytes = Array.make nbuckets 0 }

let bucket_index bytes =
  assert (bytes >= 0);
  let rec find i lo =
    if bytes < lo * 2 || i = nbuckets - 1 then i else find (i + 1) (lo * 2)
  in
  if bytes < 1 lsl base_bits then 0 else find 1 (1 lsl base_bits)

let bucket_bounds i =
  if i = 0 then (0, (1 lsl base_bits) - 1)
  else
    let lo = 1 lsl (base_bits + i - 1) in
    (lo, (2 * lo) - 1)

let add t ~bytes =
  let i = bucket_index bytes in
  t.counts.(i) <- t.counts.(i) + 1;
  t.bytes.(i) <- t.bytes.(i) + bytes

let add_many t ~bytes ~count =
  assert (count >= 0);
  if count > 0 then begin
    let i = bucket_index bytes in
    t.counts.(i) <- t.counts.(i) + count;
    t.bytes.(i) <- t.bytes.(i) + (count * bytes)
  end

let merge a b =
  let r = create () in
  for i = 0 to nbuckets - 1 do
    r.counts.(i) <- a.counts.(i) + b.counts.(i);
    r.bytes.(i) <- a.bytes.(i) + b.bytes.(i)
  done;
  r

let message_count t = Array.fold_left ( + ) 0 t.counts

let total_bytes t = Array.fold_left ( + ) 0 t.bytes

let fold f t init =
  let acc = ref init in
  for i = 0 to nbuckets - 1 do
    if t.counts.(i) > 0 then acc := f ~index:i ~count:t.counts.(i) ~bytes:t.bytes.(i) !acc
  done;
  !acc

let mean_bytes_in_bucket t i =
  if t.counts.(i) = 0 then 0. else float_of_int t.bytes.(i) /. float_of_int t.counts.(i)

let is_empty t = message_count t = 0

let equal a b = a.counts = b.counts && a.bytes = b.bytes

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  ignore
    (fold
       (fun ~index ~count ~bytes first ->
         let lo, hi = bucket_bounds index in
         if not first then Format.fprintf ppf "@,";
         Format.fprintf ppf "[%d..%d]: %d msgs, %d bytes" lo hi count bytes;
         false)
       t true);
  Format.fprintf ppf "@]"
