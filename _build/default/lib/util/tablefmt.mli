(** Plain-text table rendering for the benchmark harness and examples.

    Produces aligned, boxless tables in the style of the paper's
    Tables 2-5 so that bench output can be compared side by side with
    the published numbers. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** [create columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_separator : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** Render with every column padded to its widest cell. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the table to stdout, preceded by an
    underlined title. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float with fixed [decimals] (default 3). *)

val cell_pct : float -> string
(** Format a ratio as a percentage with no decimals, e.g. [0.95] as
    ["95%"]. *)
