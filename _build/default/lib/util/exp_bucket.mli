(** Exponential message-size buckets.

    The profiling logger summarizes inter-component messages into size
    ranges whose widths grow exponentially (paper §3.3), so the memory
    needed to store a communication profile is independent of execution
    length while remaining network-independent: a bucket records message
    counts and total bytes, and a network model can later be applied to
    any bucket without re-running the application. *)

type t
(** A histogram over exponentially growing byte-size ranges. *)

val create : unit -> t
(** Empty histogram. *)

val bucket_index : int -> int
(** [bucket_index bytes] is the index of the range containing [bytes].
    Index 0 holds sizes 0..[base-1]; successive ranges double in width.
    Requires [bytes >= 0]. *)

val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the inclusive [(lo, hi)] byte range of bucket
    [i]. *)

val add : t -> bytes:int -> unit
(** Record one message of [bytes] bytes. *)

val add_many : t -> bytes:int -> count:int -> unit
(** Record [count] messages each of [bytes] bytes (used when merging
    already-summarized data; attributed to the bucket of [bytes] with
    [count * bytes] total). *)

val merge : t -> t -> t
(** Pointwise sum of two histograms; inputs are unchanged. *)

val message_count : t -> int
(** Total number of messages recorded. *)

val total_bytes : t -> int
(** Total bytes across all messages. *)

val fold : (index:int -> count:int -> bytes:int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over non-empty buckets in increasing index order. [bytes] is
    the total bytes recorded in that bucket. *)

val mean_bytes_in_bucket : t -> int -> float
(** Average message size within bucket [i]; 0 if the bucket is empty. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
