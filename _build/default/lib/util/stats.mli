(** Small statistics toolkit used by the network profiler, the
    classifier-accuracy evaluation, and the benchmark reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 on empty input. *)

val variance : float array -> float
(** Population variance; 0 on inputs shorter than 2. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; linear interpolation
    between order statistics. Raises [Invalid_argument] on empty
    input. *)

val dot : float array -> float array -> float
(** Dot product; arrays must have equal length. *)

val norm : float array -> float

val cosine_correlation : float array -> float array -> float
(** Normalized dot product in [\[0,1\]] for non-negative vectors; the
    paper's communication-vector correlation (§4.2). Two zero vectors
    correlate at 1 (identical behaviour); a zero vector against a
    non-zero vector correlates at 0. *)

val linear_fit : (float * float) array -> float * float
(** [linear_fit points] is [(intercept, slope)] of the least-squares
    line through [(x, y)] points — used to recover latency and 1/bandwidth
    from sampled message timings. Requires at least two distinct [x]. *)

val ratio_error : predicted:float -> measured:float -> float
(** Signed relative error [(predicted - measured) / measured]; 0 when
    both are 0. *)
