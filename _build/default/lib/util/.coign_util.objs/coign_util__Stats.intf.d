lib/util/stats.mli:
