lib/util/exp_bucket.ml: Array Format
