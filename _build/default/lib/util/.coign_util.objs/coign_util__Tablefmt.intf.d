lib/util/tablefmt.mli:
