lib/util/exp_bucket.mli: Format
