lib/util/prng.mli:
