let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs /. float_of_int n

let stddev xs = sqrt (variance xs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm a = sqrt (dot a a)

let cosine_correlation a b =
  let na = norm a and nb = norm b in
  if na = 0. && nb = 0. then 1.
  else if na = 0. || nb = 0. then 0.
  else dot a b /. (na *. nb)

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if denom = 0. then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. nf in
  (intercept, slope)

let ratio_error ~predicted ~measured =
  if measured = 0. then if predicted = 0. then 0. else infinity
  else (predicted -. measured) /. measured
