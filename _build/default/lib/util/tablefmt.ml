type align = Left | Right

type row = Cells of string list | Separator

type t = { columns : (string * align) list; mutable rows : row list (* reversed *) }

let create columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tablefmt.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let aligns = List.map snd t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) (List.nth widths i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1))
  in
  emit_cells headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Separator ->
          Buffer.add_string buf (String.make total_width '-');
          Buffer.add_char buf '\n'
      | Cells cells -> emit_cells cells)
    rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
      print_newline ();
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

let cell_float ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v

let cell_pct r = Printf.sprintf "%.0f%%" (r *. 100.)
