lib/core/analysis.mli: Classifier Coign_flowgraph Coign_netsim Constraints Icc
