lib/core/rte.mli: Classifier Coign_com Coign_netsim Constraints Factory Icc Inst_comm Logger
