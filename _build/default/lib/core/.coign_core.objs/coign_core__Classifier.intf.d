lib/core/classifier.mli: Frame
