lib/core/multiway_analysis.mli: Classifier Coign_netsim Icc
