lib/core/profile_log.ml: Array Classifier Coign_image Config_keys Fun Icc List Rte String
