lib/core/comm_vector.ml: Array Coign_util Hashtbl Inst_comm List Stats
