lib/core/config_keys.ml:
