lib/core/profile_log.mli: Classifier Coign_image Icc Rte
