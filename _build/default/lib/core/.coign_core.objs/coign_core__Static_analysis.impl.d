lib/core/static_analysis.ml: Coign_image List String
