lib/core/shadow_stack.mli: Frame
