lib/core/factory.ml: Analysis Constraints Hashtbl List Option
