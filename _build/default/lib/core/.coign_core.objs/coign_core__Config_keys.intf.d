lib/core/config_keys.mli:
