lib/core/shadow_stack.ml: Frame
