lib/core/drift.ml: Coign_util Hashtbl Icc List Option
