lib/core/analysis.ml: Array Buffer Classifier Coign_flowgraph Coign_netsim Coign_util Constraints Exp_bucket Float Flow_network Hashtbl Icc List Mincut Net_profiler Option Printf Queue String
