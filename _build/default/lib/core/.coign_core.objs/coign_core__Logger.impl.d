lib/core/logger.ml: Event Format Icc Inst_comm List String
