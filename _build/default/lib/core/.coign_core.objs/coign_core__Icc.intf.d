lib/core/icc.mli: Coign_util
