lib/core/constraints.ml: Int List Map Printf Static_analysis String
