lib/core/adps.mli: Analysis Classifier Coign_com Coign_flowgraph Coign_image Coign_netsim Constraints Factory Icc Rte
