lib/core/constraints.mli: Coign_image
