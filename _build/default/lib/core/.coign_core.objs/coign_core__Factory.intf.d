lib/core/factory.mli: Analysis Constraints
