lib/core/logger.mli: Event Icc Inst_comm
