lib/core/comm_vector.mli: Hashtbl Inst_comm
