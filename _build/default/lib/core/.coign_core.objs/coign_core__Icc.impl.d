lib/core/icc.ml: Buffer Coign_util Exp_bucket Hashtbl List Option Printf String
