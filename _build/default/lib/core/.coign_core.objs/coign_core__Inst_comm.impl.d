lib/core/inst_comm.ml: Hashtbl List
