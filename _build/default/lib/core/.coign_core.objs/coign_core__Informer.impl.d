lib/core/informer.ml: Coign_com Coign_idl Idl_type Itype List Marshal_size Midl
