lib/core/frame.ml: Format
