lib/core/drift.mli: Icc
