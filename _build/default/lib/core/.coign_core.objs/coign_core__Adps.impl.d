lib/core/adps.ml: Analysis Binary_image Classifier Coign_com Coign_image Config_keys Config_record Constraints Factory Icc Inst_comm List Option Rewriter Rte Runtime
