lib/core/static_analysis.mli: Coign_image
