lib/core/informer.mli: Coign_com Coign_idl
