lib/core/inst_comm.mli:
