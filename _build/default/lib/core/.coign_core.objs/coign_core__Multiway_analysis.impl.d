lib/core/multiway_analysis.ml: Analysis Array Classifier Coign_flowgraph Float Flow_network Hashtbl Icc List Multiway Option Queue String
