lib/core/classifier.ml: Array Buffer Frame Hashtbl List Printf String
