(** Instance classifiers (paper §3.4).

    A classifier identifies component instances with similar
    communication profiles across separate executions by grouping
    instances with similar instantiation histories. At every
    instantiation request it forms a descriptor from the about-to-be-
    instantiated class and (for the call-chain family) the shadow call
    stack; instances with equal descriptors share a classification.
    Classifications are the unit of distribution: the analysis engine
    maps classifications (not instances) to machines.

    All seven classifiers of the paper are provided; the call-chain
    family accepts a stack-walk depth limit (Table 3 explores the
    accuracy/overhead tradeoff). Classifier state — the descriptor
    table — persists across executions (it is written into the
    configuration record), which is how profiling-time classifications
    are correlated with instantiation requests during distributed
    execution. *)

type kind =
  | Incremental  (** straw man: Nth instantiation gets classification N *)
  | Pcb          (** procedure called-by: class + method-name chain *)
  | St           (** static type only *)
  | Stcb         (** static-type called-by: class + class chain *)
  | Ifcb         (** internal-function called-by: class +
                     (instance-classification, method) chain — the
                     classifier Coign actually uses *)
  | Epcb         (** entry-point called-by: like IFCB but only the frame
                     through which control entered each instance *)
  | Ib           (** instantiated-by: class + parent classification *)

val all_kinds : kind list

val kind_name : kind -> string
(** Short stable identifier, e.g. ["ifcb"]. *)

val kind_of_name : string -> kind option

val kind_description : kind -> string
(** The paper's row label, e.g. ["Internal-Func. Called-By"]. *)

type t

val create : ?stack_depth:int -> kind -> t
(** [stack_depth] limits how many frames of the shadow stack the
    descriptor uses (default: the complete stack). Ignored by
    [Incremental] and [St]. *)

val kind : t -> kind
val stack_depth : t -> int option

val descriptor : t -> cname:string -> stack:Frame.t list -> string
(** The descriptor an instantiation would receive, without recording
    it. [stack] is most-recent-first (as {!Shadow_stack.walk}
    returns). Pure except for [Incremental], whose descriptor includes
    the would-be instantiation ordinal. *)

val classify : t -> cname:string -> stack:Frame.t list -> int
(** Assign (creating if needed) the classification for an instantiation
    with the given context, and count the instance against it.
    Classifications are dense non-negative integers, stable for the
    lifetime of the classifier state. *)

val lookup : t -> cname:string -> stack:Frame.t list -> int option
(** The classification this context would map to, or [None] if the
    descriptor has never been seen. Does not record anything. *)

val classification_count : t -> int

val instance_count : t -> int
(** Total instances classified (sum over classifications). *)

val instances_of : t -> int -> int
(** Instances recorded against one classification. *)

val descriptor_of_classification : t -> int -> string

val class_of_classification : t -> int -> string
(** Component class name the classification belongs to. *)

val freeze_counts : t -> unit
(** Stop counting instances (used when replaying a test scenario
    against profiled state to measure how many *new* classifications
    appear without polluting the profile counts). New descriptors still
    allocate fresh classifications. *)

val copy : t -> t
(** Independent copy of the classifier state. *)

val merge : t -> t -> t * int array
(** [merge a b] combines two classifier states of identical kind and
    depth (e.g. from profiling runs on different machines). The result
    preserves [a]'s classification ids; the returned array maps each of
    [b]'s ids to its id in the combined state. Instance counts add.
    Raises [Invalid_argument] on configuration mismatch. *)

val encode : t -> string
val decode : string -> t
(** Round-trips classifier kind, depth, and the descriptor table. *)
