type kind = Incremental | Pcb | St | Stcb | Ifcb | Epcb | Ib

let all_kinds = [ Incremental; Pcb; St; Stcb; Ifcb; Epcb; Ib ]

let kind_name = function
  | Incremental -> "incremental"
  | Pcb -> "pcb"
  | St -> "st"
  | Stcb -> "stcb"
  | Ifcb -> "ifcb"
  | Epcb -> "epcb"
  | Ib -> "ib"

let kind_of_name = function
  | "incremental" -> Some Incremental
  | "pcb" -> Some Pcb
  | "st" -> Some St
  | "stcb" -> Some Stcb
  | "ifcb" -> Some Ifcb
  | "epcb" -> Some Epcb
  | "ib" -> Some Ib
  | _ -> None

let kind_description = function
  | Incremental -> "Incremental"
  | Pcb -> "Procedure Called-By"
  | St -> "Static-Type"
  | Stcb -> "Static-Type Called-By"
  | Ifcb -> "Internal-Func. Called-By"
  | Epcb -> "Entry-Point Called-By"
  | Ib -> "Instantiated-By"

type t = {
  ckind : kind;
  depth : int option;
  table : (string, int) Hashtbl.t;        (* descriptor -> classification *)
  mutable descriptors : string array;     (* classification -> descriptor *)
  mutable classes : string array;         (* classification -> component class *)
  mutable counts : int array;             (* instances per classification *)
  mutable nclassifications : int;
  mutable order : int;                    (* instantiation ordinal *)
  mutable counting : bool;
}

let create ?stack_depth ckind =
  (match stack_depth with
  | Some d when d < 1 -> invalid_arg "Classifier.create: depth must be >= 1"
  | _ -> ());
  {
    ckind;
    depth = stack_depth;
    table = Hashtbl.create 256;
    descriptors = Array.make 64 "";
    classes = Array.make 64 "";
    counts = Array.make 64 0;
    nclassifications = 0;
    order = 0;
    counting = true;
  }

let kind t = t.ckind
let stack_depth t = t.depth

(* Collapse consecutive frames of the same instance, keeping the
   deepest frame of each run — the method by which control *entered*
   the instance. Input and output are most-recent-first. *)
let entry_points frames =
  (* Work oldest-first so "entered by" is the first frame of a run. *)
  let rec collapse = function
    | [] -> []
    | f :: rest ->
        let rec skip_run = function
          | g :: more when g.Frame.f_inst = f.Frame.f_inst -> skip_run more
          | tail -> tail
        in
        f :: collapse (skip_run rest)
  in
  List.rev (collapse (List.rev frames))

let limit_frames depth frames =
  match depth with
  | None -> frames
  | Some k ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | f :: rest -> f :: take (k - 1) rest
      in
      take k frames

let descriptor t ~cname ~stack =
  let frames = limit_frames t.depth stack in
  match t.ckind with
  | Incremental -> Printf.sprintf "[%d]" t.order
  | St -> Printf.sprintf "[%s]" cname
  | Pcb ->
      let chain = List.map (fun f -> f.Frame.f_class ^ "::" ^ f.Frame.f_meth) frames in
      Printf.sprintf "[%s]" (String.concat ", " (cname :: chain))
  | Stcb ->
      (* Classes of the *instances* in the back-trace: an instance that
         occupies several consecutive frames contributes its class once
         (paper Figure 3 lists instance a's class A a single time). *)
      let chain = List.map (fun f -> f.Frame.f_class) (entry_points frames) in
      Printf.sprintf "[%s]" (String.concat ", " (cname :: chain))
  | Ifcb ->
      let chain =
        List.map
          (fun f -> Printf.sprintf "[c%d,%s]" f.Frame.f_classification f.Frame.f_meth)
          frames
      in
      Printf.sprintf "[%s]" (String.concat ", " (cname :: chain))
  | Epcb ->
      let chain =
        List.map
          (fun f -> Printf.sprintf "[c%d,%s]" f.Frame.f_classification f.Frame.f_meth)
          (entry_points frames)
      in
      Printf.sprintf "[%s]" (String.concat ", " (cname :: chain))
  | Ib -> (
      match frames with
      | [] -> Printf.sprintf "[%s, root]" cname
      | f :: _ -> Printf.sprintf "[%s, c%d]" cname f.Frame.f_classification)

let grow t =
  if t.nclassifications = Array.length t.descriptors then begin
    let n = Array.length t.descriptors in
    let descriptors = Array.make (2 * n) "" in
    let classes = Array.make (2 * n) "" in
    let counts = Array.make (2 * n) 0 in
    Array.blit t.descriptors 0 descriptors 0 n;
    Array.blit t.classes 0 classes 0 n;
    Array.blit t.counts 0 counts 0 n;
    t.descriptors <- descriptors;
    t.classes <- classes;
    t.counts <- counts
  end

let classify t ~cname ~stack =
  let desc = descriptor t ~cname ~stack in
  t.order <- t.order + 1;
  let id =
    match Hashtbl.find_opt t.table desc with
    | Some id -> id
    | None ->
        grow t;
        let id = t.nclassifications in
        Hashtbl.add t.table desc id;
        t.descriptors.(id) <- desc;
        t.classes.(id) <- cname;
        t.nclassifications <- id + 1;
        id
  in
  if t.counting then t.counts.(id) <- t.counts.(id) + 1;
  id

let lookup t ~cname ~stack = Hashtbl.find_opt t.table (descriptor t ~cname ~stack)

let classification_count t = t.nclassifications

let instance_count t =
  let total = ref 0 in
  for i = 0 to t.nclassifications - 1 do
    total := !total + t.counts.(i)
  done;
  !total

let instances_of t id =
  if id < 0 || id >= t.nclassifications then invalid_arg "Classifier.instances_of";
  t.counts.(id)

let descriptor_of_classification t id =
  if id < 0 || id >= t.nclassifications then
    invalid_arg "Classifier.descriptor_of_classification";
  t.descriptors.(id)

let class_of_classification t id =
  if id < 0 || id >= t.nclassifications then invalid_arg "Classifier.class_of_classification";
  t.classes.(id)

let freeze_counts t = t.counting <- false

let copy t =
  let c = create ?stack_depth:t.depth t.ckind in
  Hashtbl.iter (fun k v -> Hashtbl.add c.table k v) t.table;
  c.descriptors <- Array.copy t.descriptors;
  c.classes <- Array.copy t.classes;
  c.counts <- Array.copy t.counts;
  c.nclassifications <- t.nclassifications;
  c.order <- t.order;
  c

let merge a b =
  if a.ckind <> b.ckind || a.depth <> b.depth then
    invalid_arg "Classifier.merge: classifier configurations differ";
  let m = copy a in
  let remap = Array.make b.nclassifications 0 in
  for bid = 0 to b.nclassifications - 1 do
    let desc = b.descriptors.(bid) in
    let id =
      match Hashtbl.find_opt m.table desc with
      | Some id -> id
      | None ->
          grow m;
          let id = m.nclassifications in
          Hashtbl.add m.table desc id;
          m.descriptors.(id) <- desc;
          m.classes.(id) <- b.classes.(bid);
          m.nclassifications <- id + 1;
          id
    in
    m.counts.(id) <- m.counts.(id) + b.counts.(bid);
    remap.(bid) <- id
  done;
  m.order <- max a.order b.order;
  (m, remap)

let encode t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (kind_name t.ckind);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (match t.depth with None -> "full" | Some d -> string_of_int d);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int t.order);
  Buffer.add_char buf '\n';
  for id = 0 to t.nclassifications - 1 do
    (* Descriptors never contain newlines or tabs; classes neither. *)
    Buffer.add_string buf (string_of_int t.counts.(id));
    Buffer.add_char buf '\t';
    Buffer.add_string buf t.classes.(id);
    Buffer.add_char buf '\t';
    Buffer.add_string buf t.descriptors.(id);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let decode s =
  match String.split_on_char '\n' s with
  | kind_line :: depth_line :: order_line :: rest ->
      let ckind =
        match kind_of_name kind_line with
        | Some k -> k
        | None -> invalid_arg ("Classifier.decode: unknown kind " ^ kind_line)
      in
      let depth =
        if String.equal depth_line "full" then None else Some (int_of_string depth_line)
      in
      let t = create ?stack_depth:depth ckind in
      t.order <- int_of_string order_line;
      List.iter
        (fun line ->
          if not (String.equal line "") then
            match String.split_on_char '\t' line with
            | [ count; cls; desc ] ->
                grow t;
                let id = t.nclassifications in
                Hashtbl.add t.table desc id;
                t.descriptors.(id) <- desc;
                t.classes.(id) <- cls;
                t.counts.(id) <- int_of_string count;
                t.nclassifications <- id + 1
            | _ -> invalid_arg "Classifier.decode: malformed row")
        rest;
      t
  | _ -> invalid_arg "Classifier.decode: truncated"
