type api_class = Gui | Storage | Neutral

let gui_dlls = [ "user32."; "gdi32."; "comctl32."; "comdlg32."; "imm32." ]

let storage_apis =
  [
    "kernel32.CreateFile"; "kernel32.ReadFile"; "kernel32.WriteFile";
    "kernel32.SetFilePointer"; "kernel32.FindFirstFile"; "kernel32.DeleteFile";
    "ole32.StgOpenStorage"; "ole32.StgCreateDocfile";
  ]

let storage_dlls = [ "odbc32."; "mdac." ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let classify_api api =
  if List.exists (fun p -> has_prefix ~prefix:p api) gui_dlls then Gui
  else if
    List.exists (fun p -> has_prefix ~prefix:p api) storage_dlls
    || List.exists (fun exact -> String.equal exact api) storage_apis
  then Storage
  else Neutral

type verdict = Pin_client | Pin_server | Free

let class_verdict apis =
  let gui = List.exists (fun a -> classify_api a = Gui) apis in
  let storage = List.exists (fun a -> classify_api a = Storage) apis in
  if gui then Pin_client else if storage then Pin_server else Free

let image_verdicts img =
  List.map
    (fun cname ->
      (cname, class_verdict (Coign_image.Binary_image.class_api_refs img cname)))
    (Coign_image.Binary_image.class_names img)
