type location = Client | Server

let location_name = function Client -> "client" | Server -> "server"

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

type t = {
  by_class : location Smap.t;
  by_classification : location Imap.t;
  pairs : (int * int) list;  (* normalized (min, max), deduplicated *)
}

let empty = { by_class = Smap.empty; by_classification = Imap.empty; pairs = [] }

let conflict what a b =
  if a <> b then invalid_arg ("Constraints: conflicting pins for " ^ what);
  a

let pin_class t ~cname loc =
  let loc =
    match Smap.find_opt cname t.by_class with
    | Some existing -> conflict cname existing loc
    | None -> loc
  in
  { t with by_class = Smap.add cname loc t.by_class }

let pin_classification t c loc =
  let loc =
    match Imap.find_opt c t.by_classification with
    | Some existing -> conflict (Printf.sprintf "classification %d" c) existing loc
    | None -> loc
  in
  { t with by_classification = Imap.add c loc t.by_classification }

let colocate t a b =
  if a = b then t
  else
    let pair = (min a b, max a b) in
    if List.mem pair t.pairs then t else { t with pairs = pair :: t.pairs }

let of_image img =
  List.fold_left
    (fun t (cname, verdict) ->
      match verdict with
      | Static_analysis.Pin_client -> pin_class t ~cname Client
      | Static_analysis.Pin_server -> pin_class t ~cname Server
      | Static_analysis.Free -> t)
    empty
    (Static_analysis.image_verdicts img)

let merge a b =
  let by_class =
    Smap.union (fun cname la lb -> Some (conflict cname la lb)) a.by_class b.by_class
  in
  let by_classification =
    Imap.union
      (fun c la lb -> Some (conflict (Printf.sprintf "classification %d" c) la lb))
      a.by_classification b.by_classification
  in
  let pairs =
    List.fold_left (fun acc p -> if List.mem p acc then acc else p :: acc) a.pairs b.pairs
  in
  { by_class; by_classification; pairs }

let class_pin t ~cname = Smap.find_opt cname t.by_class
let classification_pin t c = Imap.find_opt c t.by_classification
let colocated_pairs t = List.sort compare t.pairs
let pinned_classes t = Smap.bindings t.by_class
