type cell = { mutable count : int; mutable bytes : int }

type t = {
  cells : (int * int, cell) Hashtbl.t;  (* key: (min, max) instance pair *)
  mutable messages : int;
  mutable total : int;
}

let create () = { cells = Hashtbl.create 256; messages = 0; total = 0 }

let record t ~src ~dst ~bytes =
  assert (bytes >= 0);
  let key = (min src dst, max src dst) in
  let c =
    match Hashtbl.find_opt t.cells key with
    | Some c -> c
    | None ->
        let c = { count = 0; bytes = 0 } in
        Hashtbl.add t.cells key c;
        c
  in
  c.count <- c.count + 1;
  c.bytes <- c.bytes + bytes;
  t.messages <- t.messages + 1;
  t.total <- t.total + bytes

let pair_total t a b =
  match Hashtbl.find_opt t.cells (min a b, max a b) with
  | None -> (0, 0)
  | Some c -> (c.count, c.bytes)

let peers t inst =
  Hashtbl.fold
    (fun (a, b) c acc ->
      if a = inst then (b, c.count, c.bytes) :: acc
      else if b = inst then (a, c.count, c.bytes) :: acc
      else acc)
    t.cells []
  |> List.sort compare

let instances t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, b) _ ->
      Hashtbl.replace seen a ();
      Hashtbl.replace seen b ())
    t.cells;
  Hashtbl.fold (fun i () acc -> i :: acc) seen [] |> List.sort compare

let message_count t = t.messages
let total_bytes t = t.total
