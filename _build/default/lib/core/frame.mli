(** One entry of the Coign shadow call stack.

    The RTE records, for every intercepted interface call, which
    instance was entered, its component class, the classification that
    instance received when it was created, and which interface/method
    carried the call. Instance classifiers read these frames to form
    their descriptors (paper Figure 3). *)

type t = {
  f_inst : int;            (** callee component instance *)
  f_class : string;        (** callee's component class name *)
  f_classification : int;  (** classification the callee instance got at
                               its own instantiation *)
  f_iface : string;        (** interface carrying the call *)
  f_meth : string;         (** method name *)
}

val make :
  inst:int -> cls:string -> classification:int -> iface:string -> meth:string -> t

val pp : Format.formatter -> t -> unit
