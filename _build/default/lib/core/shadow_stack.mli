(** Distributed, thread-local stack storage (paper §3.1).

    The RTE keeps contextual information across interface calls in its
    own shadow stack: each intercepted call pushes a {!Frame.t} and
    pops it on return. Instance classifiers walk this stack — it is the
    "stack back-trace (call chain)" of paper §3.4 — and the component
    factory reads its top to know on whose behalf an instantiation
    request is made. *)

type t

val create : unit -> t

val push : t -> Frame.t -> unit
val pop : t -> unit
(** Raises [Invalid_argument] on an empty stack (an unbalanced
    interception is a bug). *)

val top : t -> Frame.t option
(** The frame of the currently executing method, if any. *)

val depth : t -> int

val walk : ?limit:int -> t -> Frame.t list
(** Frames from the most recent downward, at most [limit] of them
    (default: all). This is the classifier's stack walk; tuning [limit]
    trades accuracy for overhead (paper Table 3). *)

val clear : t -> unit
