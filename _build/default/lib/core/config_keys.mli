(** Names of the Coign entries in an image's configuration record. *)

val classifier : string
val icc : string
val distribution : string
