(** Static analysis of component binaries for location constraints.

    "For client-server distributions, the analysis engine performs
    static analysis on component binaries to determine which Windows
    APIs are called by each component. Components that access a set of
    known GUI or storage APIs are placed on the client or server
    respectively" (paper §2). Our image format records each class's
    referenced system APIs; this module classifies them. *)

type api_class =
  | Gui      (** window/graphics/input: must run beside the user *)
  | Storage  (** file/database access: must run beside the data *)
  | Neutral

val classify_api : string -> api_class
(** By DLL prefix and name, e.g. ["user32.CreateWindowExW"] is [Gui],
    ["kernel32.ReadFile"] is [Storage], ["kernel32.VirtualAlloc"] is
    [Neutral]. *)

type verdict = Pin_client | Pin_server | Free

val class_verdict : string list -> verdict
(** Verdict for a component class from its API reference list. GUI use
    dominates: a class touching both GUI and storage stays on the
    client (it exists to show data to the user). *)

val image_verdicts : Coign_image.Binary_image.t -> (string * verdict) list
(** Verdict per component class named in the image, in image order. *)
