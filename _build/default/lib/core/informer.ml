open Coign_idl
open Coign_com

type sizes = { request_bytes : int; reply_bytes : int; remotable : bool }

let non_remotable = { request_bytes = 0; reply_bytes = 0; remotable = false }

let measure_call itype ~meth ~ins ~outs ~ret =
  let procs = Itype.procs itype meth in
  if not procs.Midl.remotable then non_remotable
  else begin
    let exception Bail in
    let size proc v =
      match Midl.size_with proc v with Ok n -> n | Error _ -> raise Bail
    in
    try
      let req = ref 0 and rep = ref 0 in
      List.iteri
        (fun i (dir, proc) ->
          let vin = List.nth ins i and vout = List.nth outs i in
          match dir with
          | Idl_type.In -> req := !req + size proc vin
          | Idl_type.Out -> rep := !rep + size proc vout
          | Idl_type.In_out ->
              req := !req + size proc vin;
              rep := !rep + size proc vout)
        procs.Midl.request_procs;
      rep := !rep + size procs.Midl.ret_proc ret;
      {
        request_bytes = Marshal_size.scalar_overhead + !req;
        reply_bytes = Marshal_size.scalar_overhead + !rep;
        remotable = true;
      }
    with Bail -> non_remotable
  end

let outgoing_handles itype ~meth ~outs ~ret =
  let procs = Itype.procs itype meth in
  let from_params =
    List.concat
      (List.mapi
         (fun i iproc ->
           if Midl.iface_walk_trivial iproc then []
           else
             match List.nth_opt procs.Midl.request_procs i with
             | Some ((Idl_type.Out | Idl_type.In_out), _) ->
                 Midl.handles_with iproc (List.nth outs i)
             | Some (Idl_type.In, _) | None -> [])
         procs.Midl.iface_procs)
  in
  if Midl.iface_walk_trivial procs.Midl.ret_iface_proc then from_params
  else from_params @ Midl.handles_with procs.Midl.ret_iface_proc ret

let incoming_handles itype ~meth ~ins =
  let procs = Itype.procs itype meth in
  List.concat
    (List.mapi
       (fun i iproc ->
         if Midl.iface_walk_trivial iproc then []
         else
           match List.nth_opt procs.Midl.request_procs i with
           | Some ((Idl_type.In | Idl_type.In_out), _) ->
               Midl.handles_with iproc (List.nth ins i)
           | Some (Idl_type.Out, _) | None -> [])
       procs.Midl.iface_procs)
