type t = {
  pl_app : string;
  pl_scenario : string;
  pl_classifier : Classifier.t;
  pl_icc : Icc.t;
  pl_instances : int;
  pl_calls : int;
}

let of_run ~app ~scenario rte =
  {
    pl_app = app;
    pl_scenario = scenario;
    pl_classifier = Classifier.copy (Rte.classifier rte);
    pl_icc = Rte.icc rte;
    pl_instances = List.length (Rte.instances_created rte);
    pl_calls = Rte.intercepted_calls rte;
  }

let magic = "COIGNLOG1"

let encode t =
  let w = Coign_image.Codec.writer () in
  Coign_image.Codec.w_str w magic;
  Coign_image.Codec.w_str w t.pl_app;
  Coign_image.Codec.w_str w t.pl_scenario;
  Coign_image.Codec.w_u32 w t.pl_instances;
  Coign_image.Codec.w_u32 w t.pl_calls;
  Coign_image.Codec.w_str w (Classifier.encode t.pl_classifier);
  Coign_image.Codec.w_str w (Icc.encode t.pl_icc);
  Coign_image.Codec.contents w

let decode s =
  match
    let r = Coign_image.Codec.reader s in
    if Coign_image.Codec.r_str r <> magic then raise (Coign_image.Codec.Malformed "bad magic");
    let pl_app = Coign_image.Codec.r_str r in
    let pl_scenario = Coign_image.Codec.r_str r in
    let pl_instances = Coign_image.Codec.r_u32 r in
    let pl_calls = Coign_image.Codec.r_u32 r in
    let pl_classifier = Classifier.decode (Coign_image.Codec.r_str r) in
    let pl_icc = Icc.decode (Coign_image.Codec.r_str r) in
    Coign_image.Codec.expect_end r;
    { pl_app; pl_scenario; pl_instances; pl_calls; pl_classifier; pl_icc }
  with
  | log -> log
  | exception Coign_image.Codec.Malformed m ->
      invalid_arg ("Profile_log.decode: " ^ m)

let save t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

let combine a b =
  if not (String.equal a.pl_app b.pl_app) then
    invalid_arg "Profile_log.combine: logs from different applications";
  let classifier, remap = Classifier.merge a.pl_classifier b.pl_classifier in
  let icc_b = Icc.map_classifications (fun c -> remap.(c)) b.pl_icc in
  {
    pl_app = a.pl_app;
    pl_scenario = a.pl_scenario ^ "+" ^ b.pl_scenario;
    pl_classifier = classifier;
    pl_icc = Icc.merge a.pl_icc icc_b;
    pl_instances = a.pl_instances + b.pl_instances;
    pl_calls = a.pl_calls + b.pl_calls;
  }

let combine_all = function
  | [] -> invalid_arg "Profile_log.combine_all: no logs"
  | first :: rest -> List.fold_left combine first rest

let into_image t (image : Coign_image.Binary_image.t) =
  let config =
    match image.Coign_image.Binary_image.config with
    | Some c -> c
    | None -> invalid_arg "Profile_log.into_image: image is not instrumented"
  in
  (* Merge with whatever the config record already holds, reconciling
     classifications by descriptor. *)
  let classifier, icc =
    match
      ( Coign_image.Config_record.entry config Config_keys.classifier,
        Coign_image.Config_record.entry config Config_keys.icc )
    with
    | Some cls, Some icc ->
        let existing = Classifier.decode cls in
        let merged, remap = Classifier.merge existing t.pl_classifier in
        let icc_log = Icc.map_classifications (fun c -> remap.(c)) t.pl_icc in
        (merged, Icc.merge (Icc.decode icc) icc_log)
    | _ -> (t.pl_classifier, t.pl_icc)
  in
  let config =
    Coign_image.Config_record.set_entry
      (Coign_image.Config_record.set_entry config Config_keys.classifier
         (Classifier.encode classifier))
      Config_keys.icc (Icc.encode icc)
  in
  { image with Coign_image.Binary_image.config = Some config }
