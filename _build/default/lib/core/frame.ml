type t = {
  f_inst : int;
  f_class : string;
  f_classification : int;
  f_iface : string;
  f_meth : string;
}

let make ~inst ~cls ~classification ~iface ~meth =
  { f_inst = inst; f_class = cls; f_classification = classification; f_iface = iface; f_meth = meth }

let pp ppf f =
  Format.fprintf ppf "%s#%d(c%d)::%s.%s" f.f_class f.f_inst f.f_classification f.f_iface
    f.f_meth
