(* Names of the Coign entries in an image's configuration record,
   shared by the pipeline ({!Adps}) and standalone profile logs
   ({!Profile_log}). *)

let classifier = "coign.classifier"
let icc = "coign.icc"
let distribution = "coign.distribution"
