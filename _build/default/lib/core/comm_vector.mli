(** Instance communication vectors and classifier-accuracy metrics
    (paper §4.2).

    An instance communication vector is a tuple of real numbers
    quantifying the instance's communication time with each peer —
    assuming the peer were remote. Because instance identities differ
    between executions, peers are bucketed by their classification:
    dimension [c] holds the communication time with all peers of
    classification [c] (plus one overflow dimension for unclassified
    peers such as the main program). Two vectors are compared with the
    normalized dot product: 1 means equivalent communication behaviour,
    0 means none shared. *)

type run = {
  classification_of : int -> int;
      (** instance -> classification in this run; -1 for main/unknown *)
  comm : Inst_comm.t;
  run_instances : int list;  (** instances created during the run *)
}

type price = count:int -> bytes:int -> float
(** Communication time attributed to [count] messages totalling
    [bytes], if the peer were remote (typically from a
    {!Coign_netsim.Net_profiler} fit). *)

val instance_vector : run -> dims:int -> price:price -> int -> float array
(** [instance_vector run ~dims ~price inst]: dimension [c < dims] is
    time with peers classified [c]; dimension [dims] (the array has
    [dims + 1] slots) collects peers with classification outside
    [0..dims-1]. *)

val classification_profiles :
  runs:run list -> dims:int -> price:price -> (int, float array) Hashtbl.t
(** Mean vector per classification across all instances of that
    classification in the profiling runs — the "profile" a future
    instance is correlated against. *)

val correlation : float array -> float array -> float
(** Normalized dot product in [0, 1]. *)

val average_correlation :
  profiles:(int, float array) Hashtbl.t -> test:run -> dims:int -> price:price -> float
(** Mean over the test run's instances of the correlation between each
    instance's vector and its classification's profile vector; an
    instance whose classification has no profile scores 0 (the
    classifier failed to correlate it). Instances that communicate
    nothing in both profile and test correlate at 1. *)
