(** Profile log files (paper §2, §3.3).

    "At the end of a profiling execution, Coign writes the
    inter-component communication profiles to a file for later
    analysis. ... Log files from multiple profiling scenarios may be
    combined and summarized during later analysis. Alternatively, at
    the end of each profiling scenario, information from the log file
    may be combined into the configuration record in the application
    binary."

    {!Adps.profile} implements the second (config-record) path; this
    module implements the first: standalone log files carrying one
    run's classifier state and ICC summaries, which can be combined —
    even from profiling runs performed on different machines — and
    folded into an instrumented image before analysis. *)

type t = {
  pl_app : string;        (** application the run profiled *)
  pl_scenario : string;   (** scenario id (informational) *)
  pl_classifier : Classifier.t;
  pl_icc : Icc.t;
  pl_instances : int;     (** component instances created in the run *)
  pl_calls : int;         (** interface calls intercepted *)
}

val of_run : app:string -> scenario:string -> Rte.t -> t
(** Capture a finished profiling RTE's data. *)

val encode : t -> string
val decode : string -> t
(** Raises [Invalid_argument] on malformed input. *)

val save : t -> string -> unit
val load : string -> t

val combine : t -> t -> t
(** Merge two logs of the same application. The logs must agree on the
    classifier kind and depth; classifications are reconciled by
    descriptor (the same instantiation context gets the same
    classification in the combined log, whichever run it came from).
    Raises [Invalid_argument] on mismatched applications or classifier
    configurations. *)

val combine_all : t list -> t
(** Left fold of {!combine}; raises [Invalid_argument] on an empty
    list. *)

val into_image :
  t -> Coign_image.Binary_image.t -> Coign_image.Binary_image.t
(** Fold a (possibly combined) log into an instrumented image's
    configuration record, merging with whatever the record already
    accumulated, so {!Adps.analyze} sees the union. *)
