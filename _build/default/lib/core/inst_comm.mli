(** Per-instance communication matrix.

    Where {!Icc} aggregates by classification (for partitioning),
    this records message count and bytes between concrete instance
    pairs within one execution — the raw material of the instance
    communication vectors used to evaluate classifier accuracy
    (paper §4.2). *)

type t

val create : unit -> t

val record : t -> src:int -> dst:int -> bytes:int -> unit
(** One message of [bytes] from instance [src] to [dst]. *)

val pair_total : t -> int -> int -> int * int
(** [(count, bytes)] exchanged between two instances, both directions
    combined. *)

val peers : t -> int -> (int * int * int) list
(** [(peer, count, bytes)] for every instance that exchanged at least
    one message with the given instance, ascending by peer id. *)

val instances : t -> int list
(** All instances that appear, ascending. *)

val message_count : t -> int
val total_bytes : t -> int
