(** Interface informers (paper §3.2).

    The informer manages static interface metadata: it determines the
    static type of interfaces and walks the parameters of interface
    function calls. Two informers exist:

    - the {b profiling} informer walks every parameter with the
      compiled MIDL descriptors and measures the precise deep-copy
      message sizes (this is where most of the up-to-85% profiling
      overhead comes from);
    - the {b distribution} informer examines parameters only enough to
      identify interface pointers (under 3% overhead).

    Both also extract the interface handles appearing in a call so the
    RTE can keep every escaping interface pointer wrapped. *)

type sizes = { request_bytes : int; reply_bytes : int; remotable : bool }

val measure_call :
  Coign_com.Itype.t -> meth:int ->
  ins:Coign_idl.Value.t list -> outs:Coign_idl.Value.t list -> ret:Coign_idl.Value.t ->
  sizes
(** The profiling informer's measurement. Request direction sizes [In]
    and [In_out] slots of [ins]; reply direction sizes [Out]/[In_out]
    slots of [outs] plus [ret]; each direction includes the DCOM
    per-message overhead. A call that cannot be marshaled (opaque
    parameter, or a value/type mismatch against a non-remotable
    method) yields [{request_bytes = 0; reply_bytes = 0;
    remotable = false}]. *)

val outgoing_handles :
  Coign_com.Itype.t -> meth:int -> outs:Coign_idl.Value.t list -> ret:Coign_idl.Value.t ->
  int list
(** Interface handles escaping from callee to caller ([Out]/[In_out]
    slots and the return value) — what the distribution informer
    identifies. Uses the pre-compiled interface-pointer walks, skipping
    parameters that cannot carry interface pointers. *)

val incoming_handles :
  Coign_com.Itype.t -> meth:int -> ins:Coign_idl.Value.t list -> int list
(** Interface handles passed from caller to callee. *)
