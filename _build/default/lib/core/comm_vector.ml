open Coign_util

type run = {
  classification_of : int -> int;
  comm : Inst_comm.t;
  run_instances : int list;
}

type price = count:int -> bytes:int -> float

let instance_vector run ~dims ~price inst =
  let v = Array.make (dims + 1) 0. in
  List.iter
    (fun (peer, count, bytes) ->
      let c = run.classification_of peer in
      let slot = if c >= 0 && c < dims then c else dims in
      v.(slot) <- v.(slot) +. price ~count ~bytes)
    (Inst_comm.peers run.comm inst);
  v

let classification_profiles ~runs ~dims ~price =
  let sums : (int, float array * int ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun run ->
      List.iter
        (fun inst ->
          let c = run.classification_of inst in
          if c >= 0 then begin
            let v = instance_vector run ~dims ~price inst in
            match Hashtbl.find_opt sums c with
            | None -> Hashtbl.add sums c (v, ref 1)
            | Some (acc, n) ->
                Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) v;
                incr n
          end)
        run.run_instances)
    runs;
  let profiles = Hashtbl.create 256 in
  Hashtbl.iter
    (fun c (acc, n) ->
      Hashtbl.add profiles c (Array.map (fun x -> x /. float_of_int !n) acc))
    sums;
  profiles

let correlation = Stats.cosine_correlation

let average_correlation ~profiles ~test ~dims ~price =
  let total = ref 0. and n = ref 0 in
  List.iter
    (fun inst ->
      let c = test.classification_of inst in
      incr n;
      match Hashtbl.find_opt profiles c with
      | None -> () (* unseen classification: correlation 0 *)
      | Some profile ->
          let v = instance_vector test ~dims ~price inst in
          total := !total +. correlation profile v)
    test.run_instances;
  if !n = 0 then 1. else !total /. float_of_int !n
