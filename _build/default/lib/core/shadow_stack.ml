type t = { mutable frames : Frame.t list; mutable n : int }

let create () = { frames = []; n = 0 }

let push t f =
  t.frames <- f :: t.frames;
  t.n <- t.n + 1

let pop t =
  match t.frames with
  | [] -> invalid_arg "Shadow_stack.pop: empty stack"
  | _ :: rest ->
      t.frames <- rest;
      t.n <- t.n - 1

let top t = match t.frames with [] -> None | f :: _ -> Some f

let depth t = t.n

let walk ?limit t =
  match limit with
  | None -> t.frames
  | Some k ->
      if k < 0 then invalid_arg "Shadow_stack.walk: negative limit";
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | f :: rest -> f :: take (k - 1) rest
      in
      take k t.frames

let clear t =
  t.frames <- [];
  t.n <- 0
