(** Event-log-driven distribution simulation.

    Paper §3.3: "a colleague has used logs from the event logger to
    drive detailed application simulations." This module is that use
    case: take the full event trace of one profiling run and replay it
    under an arbitrary placement and network — estimating what a
    distributed execution would cost without re-running the
    application. Because scenarios are deterministic, replaying the
    trace under a placement reproduces exactly the communication the
    distributed RTE would charge (a tested property).

    Replay also reports would-be faults: calls that cross machines over
    non-remotable interfaces, which a real run would abort with
    [E_cannot_marshal] — useful for checking hand-made placements
    before trying them. *)

type estimate = {
  re_comm_us : float;          (** total cross-machine communication *)
  re_remote_calls : int;       (** calls and forwarded instantiations *)
  re_remote_bytes : int;
  re_server_instances : int;   (** instances the placement sends away *)
  re_violations : (string * string) list;
      (** (interface, method) of every non-remotable cross-machine
          call the placement would cause *)
}

val replay :
  events:Coign_core.Event.t list ->
  placement:(int -> Coign_core.Constraints.location) ->
  network:Coign_netsim.Network.t ->
  estimate
(** [placement] maps a classification to a machine (as
    {!Coign_core.Analysis.location_of} does); instances whose
    classification maps nowhere follow their creator, like the
    component factory. The trace must come from a profiling run (it
    needs the instantiation events to track instance machines). *)

val record_scenario :
  registry:Coign_com.Runtime.registry ->
  classifier:Coign_core.Classifier.t ->
  (Coign_com.Runtime.ctx -> unit) ->
  Coign_core.Event.t list
(** Convenience: run a scenario once under the profiling RTE with an
    event recorder attached and return the trace. *)

val what_if :
  events:Coign_core.Event.t list ->
  distribution:Coign_core.Analysis.distribution ->
  network:Coign_netsim.Network.t ->
  estimate
(** Replay under an analyzer-chosen distribution. *)
