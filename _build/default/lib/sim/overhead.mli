(** Instrumentation overhead measurement (paper §3.2).

    The paper reports that the profiling informer adds up to 85% to
    application execution time (usually closer to 45%) while the
    lightweight distribution informer stays under 3%. Those figures are
    relative to the real applications' compute time; our components'
    compute is notional (charged microseconds), so we report overhead
    relative to the *modeled* application time — harness wall-clock
    plus charged compute — alongside the raw per-call interception
    costs.

    Configurations: the scenario bare (no Coign runtime), under the
    profiling RTE, and under the distributed RTE with an
    everything-local placement (interception only, no simulated
    network charges). *)

type report = {
  bare_s : float;            (** wall-clock, no Coign runtime *)
  profiling_s : float;       (** wall-clock under the measuring informer *)
  distributed_s : float;     (** wall-clock under the lightweight informer *)
  app_compute_s : float;     (** compute the application charged (modeled) *)
  intercepted_calls : int;
  profiling_us_per_call : float;    (** interception cost per call *)
  distributed_us_per_call : float;
  profiling_overhead : float;
      (** (profiling_s - bare_s) / (bare_s + app_compute_s) *)
  distributed_overhead : float;
}

val measure :
  ?repeats:int -> Coign_apps.App.t -> Coign_apps.App.scenario -> report
(** Best-of-[repeats] (default 3) wall-clock per configuration. *)
