open Coign_netsim
open Coign_com
open Coign_core
open Coign_apps

type row = {
  cr_kind : Classifier.kind;
  cr_depth : int option;
  cr_profiled_classifications : int;
  cr_new_in_bigone : int;
  cr_avg_instances : float;
  cr_avg_correlation : float;
}

(* One profiled execution's raw data, in communication-vector form. *)
let run_once (app : App.t) classifier (sc : App.scenario) =
  let ctx = Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let table = Hashtbl.create 256 in
  List.iter (fun (inst, c) -> Hashtbl.replace table inst c) (Rte.instance_classifications rte);
  {
    Comm_vector.classification_of =
      (fun inst -> Option.value ~default:(-1) (Hashtbl.find_opt table inst));
    comm = Rte.inst_comm rte;
    run_instances = Rte.instances_created rte;
  }

let evaluate ?(network = Network.ethernet_10) ~kind ?stack_depth (app : App.t) =
  let classifier = Classifier.create ?stack_depth kind in
  let profile_runs =
    List.map (fun sc -> run_once app classifier sc) (App.non_bigone app)
  in
  let profiled = Classifier.classification_count classifier in
  let instances = Classifier.instance_count classifier in
  let bigone_run = run_once app classifier (App.bigone app) in
  let after = Classifier.classification_count classifier in
  let net = Net_profiler.exact network in
  let price ~count ~bytes =
    (float_of_int count *. net.Net_profiler.fixed_us)
    +. (float_of_int bytes *. net.Net_profiler.per_byte_us)
  in
  let profiles =
    Comm_vector.classification_profiles ~runs:profile_runs ~dims:profiled ~price
  in
  let avg_correlation =
    Comm_vector.average_correlation ~profiles ~test:bigone_run ~dims:profiled ~price
  in
  {
    cr_kind = kind;
    cr_depth = stack_depth;
    cr_profiled_classifications = profiled;
    cr_new_in_bigone = after - profiled;
    cr_avg_instances = (if profiled = 0 then 0. else float_of_int instances /. float_of_int profiled);
    cr_avg_correlation = avg_correlation;
  }

let table2 ?network (app : App.t) =
  List.map (fun kind -> evaluate ?network ~kind app) Classifier.all_kinds

let table3 ?network ?(depths = [ 1; 2; 3; 4; 8; 16 ]) (app : App.t) =
  List.map (fun depth -> evaluate ?network ~kind:Classifier.Ifcb ~stack_depth:depth app) depths
  @ [ evaluate ?network ~kind:Classifier.Ifcb app ]
