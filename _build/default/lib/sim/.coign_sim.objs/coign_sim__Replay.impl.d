lib/sim/replay.ml: Analysis Coign_com Coign_core Coign_idl Coign_netsim Constraints Event Hashtbl List Logger Marshal_size Network Option Rte Runtime String
