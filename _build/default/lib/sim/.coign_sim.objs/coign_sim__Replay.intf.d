lib/sim/replay.mli: Coign_com Coign_core Coign_netsim
