lib/sim/classifier_eval.ml: App Classifier Coign_apps Coign_com Coign_core Coign_netsim Comm_vector Hashtbl List Net_profiler Network Option Rte Runtime
