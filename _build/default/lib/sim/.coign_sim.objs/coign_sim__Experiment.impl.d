lib/sim/experiment.ml: Adps Analysis App Classifier Coign_apps Coign_core Coign_netsim Coign_util Constraints Factory Float Hashtbl Int64 List Net_profiler Network Option Prng Stats
