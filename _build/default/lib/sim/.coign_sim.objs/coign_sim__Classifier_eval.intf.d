lib/sim/classifier_eval.mli: Coign_apps Coign_core Coign_netsim
