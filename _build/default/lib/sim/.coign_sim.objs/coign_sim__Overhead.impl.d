lib/sim/overhead.ml: App Classifier Coign_apps Coign_com Coign_core Coign_netsim Factory Float Option Rte Runtime Unix
