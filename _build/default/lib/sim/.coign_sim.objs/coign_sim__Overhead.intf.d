lib/sim/overhead.mli: Coign_apps
