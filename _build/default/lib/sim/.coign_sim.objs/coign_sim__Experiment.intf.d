lib/sim/experiment.mli: Coign_apps Coign_core Coign_netsim
