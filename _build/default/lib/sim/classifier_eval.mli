(** Instance-classifier accuracy evaluation (paper §4.2, Tables 2-3).

    Protocol: run a classifier through all of an application's
    scenarios except bigone to build the instance profiles, then run
    the bigone scenario (a synthesis of the others) against the
    accumulated state. Because every bigone instance repeats a profiled
    context, a good context-based classifier should create no new
    classifications and correlate each bigone instance's communication
    vector with its classification's profile. *)

type row = {
  cr_kind : Coign_core.Classifier.kind;
  cr_depth : int option;
  cr_profiled_classifications : int;
  cr_new_in_bigone : int;
  cr_avg_instances : float;   (** instances per classification over the
                                  profiling scenarios *)
  cr_avg_correlation : float; (** mean correlation of bigone instances
                                  against their chosen profiles *)
}

val evaluate :
  ?network:Coign_netsim.Network.t ->
  kind:Coign_core.Classifier.kind ->
  ?stack_depth:int ->
  Coign_apps.App.t ->
  row
(** One classifier against one application (the paper uses Octarine). *)

val table2 : ?network:Coign_netsim.Network.t -> Coign_apps.App.t -> row list
(** All seven classifiers at full stack depth (paper Table 2). *)

val table3 :
  ?network:Coign_netsim.Network.t -> ?depths:int list -> Coign_apps.App.t -> row list
(** The IFCB classifier at increasing stack depths plus the complete
    walk (paper Table 3). Default depths: 1, 2, 3, 4, 8, 16. *)
