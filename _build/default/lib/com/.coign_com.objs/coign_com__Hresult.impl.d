lib/com/hresult.ml: Format Printexc
