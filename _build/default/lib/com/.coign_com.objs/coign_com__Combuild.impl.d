lib/com/combuild.ml: Array Coign_idl Hresult Idl_type Itype List Printf Runtime Value
