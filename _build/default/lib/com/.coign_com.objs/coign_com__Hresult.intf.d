lib/com/hresult.mli: Format
