lib/com/runtime.mli: Coign_idl Guid Itype
