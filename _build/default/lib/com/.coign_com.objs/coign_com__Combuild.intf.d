lib/com/combuild.mli: Coign_idl Itype Runtime
