lib/com/itype.mli: Coign_idl Format Guid
