lib/com/runtime.ml: Array Coign_idl Guid Hashtbl Hresult Itype List Obj Printf Value
