lib/com/guid.ml: Char Format Int64 Map Printf Set String
