lib/com/itype.ml: Array Coign_idl Format Guid Idl_type Midl Printf String
