lib/com/guid.mli: Format Map Set
