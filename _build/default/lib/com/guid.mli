(** Globally unique identifiers for component classes (CLSIDs) and
    interface types (IIDs).

    Real COM GUIDs are 128-bit random values; ours are derived
    deterministically from registered names so that profiles, config
    records, and test expectations are stable across runs. *)

type t

val of_name : string -> t
(** Deterministic GUID for a name. Equal names give equal GUIDs;
    distinct names collide with negligible probability (128-bit FNV-ish
    folding). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val name : t -> string
(** The registered name the GUID was derived from (Coign keeps the
    name as debugging metadata; identity is the numeric value). *)

val to_string : t -> string
(** Canonical ["{XXXXXXXX-XXXX-...}"] rendering. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
