(** Convenience layer for writing component implementations.

    Maps named method handlers onto an interface's method table and
    provides the common reply shapes, so application components read
    like vtable definitions rather than index arithmetic. *)

type handler =
  Runtime.ctx -> Coign_idl.Value.t list -> Coign_idl.Value.t list * Coign_idl.Value.t
(** Receives the caller's argument values; returns the post-call value
    of every parameter slot plus the return value. *)

val iface : Itype.t -> (string * handler) list -> Itype.t * Runtime.dispatch
(** Build a dispatch for an interface. Every method of the interface
    must have exactly one handler; extra or missing handlers raise
    [Invalid_argument] at construction time. *)

val echo : Coign_idl.Value.t list -> Coign_idl.Value.t -> Coign_idl.Value.t list * Coign_idl.Value.t
(** The common reply: parameter slots unchanged, plus a return value. *)

val ret : Coign_idl.Value.t -> handler
(** Handler that ignores its arguments' content and returns a constant,
    echoing the slots. *)

val nop : handler
(** [ret Value.Unit]. *)

val get_int : Coign_idl.Value.t list -> int -> int
(** Fetch an [Int] argument by position; raises [Com_error E_invalidarg]
    on shape mismatch — component implementations should not crash on
    malformed calls, they should fail like COM servers do. *)

val get_str : Coign_idl.Value.t list -> int -> string
val get_blob : Coign_idl.Value.t list -> int -> int
val get_iface : Coign_idl.Value.t list -> int -> Runtime.handle
val get_bool : Coign_idl.Value.t list -> int -> bool
