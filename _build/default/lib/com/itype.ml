open Coign_idl

type t = {
  iid : Guid.t;
  iname : string;
  methods : Idl_type.method_sig array;
  procs : Midl.method_procs array;  (* compiled once, per method *)
  remotable : bool;
}

let declare iname methods =
  let methods = Array.of_list methods in
  {
    iid = Guid.of_name ("IID_" ^ iname);
    iname;
    methods;
    procs = Array.map Midl.compile_method methods;
    remotable = Array.for_all Idl_type.method_remotable methods;
  }

let iid t = t.iid
let name t = t.iname
let method_count t = Array.length t.methods

let method_sig t i =
  if i < 0 || i >= Array.length t.methods then
    invalid_arg (Printf.sprintf "Itype.method_sig: %s has no method %d" t.iname i);
  t.methods.(i)

let method_index t mname =
  let rec find i =
    if i >= Array.length t.methods then raise Not_found
    else if String.equal t.methods.(i).Idl_type.mname mname then i
    else find (i + 1)
  in
  find 0

let procs t i =
  if i < 0 || i >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Itype.procs: %s has no method %d" t.iname i);
  t.procs.(i)

let remotable t = t.remotable

let equal a b = Guid.equal a.iid b.iid

let pp ppf t =
  Format.fprintf ppf "interface %s%s (%d methods)" t.iname
    (if t.remotable then "" else " [non-remotable]")
    (Array.length t.methods)
