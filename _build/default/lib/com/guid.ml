type t = { hi : int64; lo : int64; gname : string }

(* FNV-1a folded to two 64-bit lanes; deterministic across runs. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_lane salt s =
  let h = ref (Int64.logxor fnv_offset salt) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let of_name gname = { hi = hash_lane 0L gname; lo = hash_lane 0x5bd1e995L gname; gname }

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  let c = Int64.compare a.hi b.hi in
  if c <> 0 then c else Int64.compare a.lo b.lo

let hash t = Int64.to_int t.hi

let name t = t.gname

let to_string t =
  Printf.sprintf "{%08Lx-%04Lx-%04Lx-%04Lx-%012Lx}"
    (Int64.shift_right_logical t.hi 32)
    (Int64.logand (Int64.shift_right_logical t.hi 16) 0xFFFFL)
    (Int64.logand t.hi 0xFFFFL)
    (Int64.shift_right_logical t.lo 48)
    (Int64.logand t.lo 0xFFFFFFFFFFFFL)

let pp ppf t = Format.fprintf ppf "%s%s" (to_string t) (if t.gname = "" then "" else " (" ^ t.gname ^ ")")

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
