open Coign_idl

type handler = Runtime.ctx -> Value.t list -> Value.t list * Value.t

let iface itype handlers =
  let n = Itype.method_count itype in
  let table = Array.make n None in
  List.iter
    (fun (mname, h) ->
      match Itype.method_index itype mname with
      | i ->
          if table.(i) <> None then
            invalid_arg
              (Printf.sprintf "Combuild.iface: duplicate handler %s.%s" (Itype.name itype) mname);
          table.(i) <- Some h
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf "Combuild.iface: %s has no method %S" (Itype.name itype) mname))
    handlers;
  Array.iteri
    (fun i slot ->
      if slot = None then
        invalid_arg
          (Printf.sprintf "Combuild.iface: missing handler for %s.%s" (Itype.name itype)
             (Itype.method_sig itype i).Idl_type.mname))
    table;
  let dispatch ctx ~meth args =
    match table.(meth) with
    | Some h -> h ctx args
    | None -> assert false
  in
  (itype, dispatch)

let echo args ret = (args, ret)

let ret v : handler = fun _ctx args -> (args, v)

let nop : handler = ret Value.Unit

let arg_error what pos =
  Hresult.fail
    (Hresult.E_invalidarg (Printf.sprintf "expected %s at argument %d" what pos))

let nth args pos =
  match List.nth_opt args pos with
  | Some v -> v
  | None -> arg_error "argument" pos

let get_int args pos =
  match nth args pos with Value.Int i -> i | _ -> arg_error "int" pos

let get_str args pos =
  match nth args pos with Value.Str s -> s | _ -> arg_error "string" pos

let get_blob args pos =
  match nth args pos with Value.Blob n -> n | _ -> arg_error "blob" pos

let get_iface args pos =
  match nth args pos with Value.Iface_ref h -> h | _ -> arg_error "interface" pos

let get_bool args pos =
  match nth args pos with Value.Bool b -> b | _ -> arg_error "bool" pos
