(** Shared substrate for the application suite: the interface types
    every application uses, a virtual file system, and the storage
    server component through which all file access flows.

    In the paper's experiments "data files are placed on the server"
    for every distribution; we model that by routing all file I/O
    through a [Storage.FileServer] component whose code references the
    storage APIs, so static analysis pins it (and therefore the data)
    to the server. *)

open Coign_com

(** {1 Interface types} *)

val i_file_read : Itype.t
(** [open_file(name) -> fh], [file_size(fh) -> int],
    [read_block(fh, offset, size) -> blob], [read_all(name) -> blob].
    Remotable. *)

val i_blob_sink : Itype.t
(** [put(blob)], [finish() -> int]. Remotable bulk-transfer sink. *)

val i_query : Itype.t
(** [query(key) -> str], [query_int(key) -> int]. Small lookups. *)

val i_notify : Itype.t
(** [notify(code)], [notify_str(text)]. Event pushes. *)

val i_paint : Itype.t
(** [paint(hdc)] with an opaque device-context handle — NON-remotable;
    the GUI plumbing of all three applications runs over this, which is
    why their interface graphs show webs of solid black lines. Also
    [invalidate(x0,y0,x1,y1)]. *)

val i_control : Itype.t
(** [attach(parent: INotify ptr)], [enable(bool)], [click()],
    [set_label(str)]. Remotable control surface of widgets. *)

val i_render : Itype.t
(** [render_page(page, data: blob)], [scroll(line)],
    [attach_surface(surface: IPaint ptr)] — how document engines hand
    finished page images to the GUI canvas and register surfaces the
    window repaints (over the non-remotable paint path, which is what
    ties visible surfaces to the client). Remotable. *)

(** {1 Virtual file system} *)

module Vfs : sig
  val add : Runtime.ctx -> name:string -> bytes:int -> unit
  (** Register a file and its size for the context's file server. *)

  val size : Runtime.ctx -> string -> int
  (** Raises [Com_error (E_fail _)] for a missing file. *)

  val exists : Runtime.ctx -> string -> bool
end

(** {1 Storage server} *)

val file_server_class_name : string

val file_server : Runtime.component_class
(** Exposes {!i_file_read}; references storage APIs. Reading charges
    compute proportional to the bytes touched. *)

val create_file_server : Runtime.ctx -> Runtime.handle
(** Instantiate the file server and return its {!i_file_read}. *)

(** {1 Small helpers} *)

val call : Runtime.ctx -> Runtime.handle -> string -> Coign_idl.Value.t list -> Coign_idl.Value.t
(** [call_named] keeping only the return value. *)

val call_ret_int : Runtime.ctx -> Runtime.handle -> string -> Coign_idl.Value.t list -> int
val call_ret_blob : Runtime.ctx -> Runtime.handle -> string -> Coign_idl.Value.t list -> int
val call_ret_str : Runtime.ctx -> Runtime.handle -> string -> Coign_idl.Value.t list -> string

val create : Runtime.ctx -> Runtime.component_class -> Itype.t -> Runtime.handle
(** [create ctx cls itype] = [create_instance] by the class's CLSID. *)
