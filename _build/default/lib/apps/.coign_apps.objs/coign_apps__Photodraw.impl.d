lib/apps/photodraw.ml: App Coign_com Coign_core Coign_idl Combuild Common Hashtbl Hresult Idl_type Itype List Option Runtime Value Widgets
