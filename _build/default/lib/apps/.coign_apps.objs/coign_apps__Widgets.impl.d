lib/apps/widgets.ml: Coign_com Coign_idl Combuild Common Itype List Runtime Value
