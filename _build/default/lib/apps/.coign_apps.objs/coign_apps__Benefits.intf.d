lib/apps/benefits.mli: App
