lib/apps/suite.ml: App Benefits List Octarine Photodraw String
