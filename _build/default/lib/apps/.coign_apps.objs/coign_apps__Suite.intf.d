lib/apps/suite.mli: App
