lib/apps/octarine.mli: App
