lib/apps/octarine.ml: App Array Coign_com Coign_core Coign_idl Combuild Common Guid Hashtbl Hresult Idl_type Itype List Option Runtime Value Widgets
