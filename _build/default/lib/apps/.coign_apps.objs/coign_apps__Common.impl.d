lib/apps/common.ml: Coign_com Coign_idl Combuild Format Hashtbl Hresult Idl_type Itype Runtime Value
