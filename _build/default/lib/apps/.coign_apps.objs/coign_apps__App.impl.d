lib/apps/app.ml: Coign_com Coign_core Coign_image Common List Runtime String
