lib/apps/benefits.ml: App Coign_com Coign_core Coign_idl Combuild Common Idl_type Itype List Option Printf Runtime String Value Widgets
