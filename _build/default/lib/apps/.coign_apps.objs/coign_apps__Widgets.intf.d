lib/apps/widgets.mli: Coign_com Runtime
