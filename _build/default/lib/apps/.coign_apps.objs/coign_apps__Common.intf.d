lib/apps/common.mli: Coign_com Coign_idl Itype Runtime
