lib/apps/app.mli: Coign_com Coign_core Coign_image Runtime
