lib/apps/photodraw.mli: App
