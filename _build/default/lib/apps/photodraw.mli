(** PhotoDraw: the consumer image-manipulation application (paper §4.1).

    The reproduction preserves the structure behind Figure 4 and the
    p_* rows of Tables 4-5:

    - sprite caches that manage the pixels of hierarchical image
      subsets and pass shared-memory regions opaquely through
      NON-remotable interfaces — the almost-50 solid black lines that
      pin most of PhotoDraw's granularity to the client;
    - a document reader that scans .mix compositions through the
      storage server, plus seven high-level property sets built
      directly from file data with larger input than output — the
      eight components Coign places on the server;
    - parsed streams that are only modestly smaller than the raw file
      (pixels are pixels), which is why PhotoDraw's savings are the
      smallest in the suite (5-54% in the paper). *)

val app : App.t

val sprites_per_composition : int
val property_sets : int
