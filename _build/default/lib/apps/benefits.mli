(** The MSDN Corporate Benefits Sample (paper §4.1, §4.3).

    A 3-tier client-server application: a Visual Basic front-end on the
    client, business-logic components on the middle tier, and a
    database reached through ODBC. The reproduction models the
    2-machine slice the paper analyzes (front-end machine vs middle
    tier; the ODBC gateway is pinned to the middle tier because Coign
    cannot analyze the proprietary database connection).

    The structure behind Figure 6: middle-tier caching components
    answer many small front-end queries but refill from the business
    logic in bulk, so Coign profitably moves the caches (and the row
    sets they materialize) to the client while the business logic —
    whose traffic is dominated by its ODBC row sets — stays on the
    middle tier. The shipped (default) distribution keeps everything
    but the front-end on the middle tier. *)

val app : App.t

val queries_per_view : int
val cache_count : int
