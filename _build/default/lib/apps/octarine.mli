(** Octarine: the component word processor (paper §4.1).

    A research prototype "designed to explore the limits of component
    granularity": roughly 150 component classes from user-interface
    buttons to sheet-music editors, handling word-processing, sheet
    music, and table documents, with fragments of all three combinable
    in one document.

    The synthetic reproduction preserves the structure the paper's
    experiments depend on:

    - a GUI forest of hundreds of widget instances connected by
      non-remotable paint interfaces (Figure 5's black web);
    - a document reader that scans the whole file once to paginate
      (file traffic proportional to document size) and then serves
      parsed pages from memory — the component Coign sends to the
      server;
    - a text-properties component fed in bulk by the reader and queried
      lightly by the rest of the application (the second server
      component of Figure 5);
    - a story/paragraph/run text pipeline with a bounded prefetch
      window, so the parsed traffic that crosses a cut is capped while
      raw file traffic is not (why o_oldwp7 saves ~95% and o_oldwp0
      nothing);
    - a table model/view split where views fetch small tables whole but
      window large ones (why o_oldtb3 saves ~99% and o_oldtb0 ~1%);
    - a page-placement negotiation engine that chatters with the
      reader, paragraphs, and table models when text and tables mix —
      the cluster of 281 components Figure 8 sends to the server. *)

val app : App.t

(** Knobs the experiments reference (bytes / counts): *)

val text_page_raw : int
val text_page_parsed : int
val prefetch_window : int

val table_page_raw : int
val rows_per_page : int
val table_row_parsed : int
val full_fetch_rows : int

val negotiation_rounds : int

val figure5 : App.scenario
(** Loads a 35-page text-only document — the workload of the paper's
    Figure 5 (not a Table 1 row). *)
