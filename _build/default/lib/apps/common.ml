open Coign_idl
open Coign_com

let i_file_read =
  Itype.declare "IFileRead"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "open_file" [ Idl_type.param "name" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Int32 "file_size" [ Idl_type.param "fh" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Blob "read_block"
        [
          Idl_type.param "fh" Idl_type.Int32;
          Idl_type.param "offset" Idl_type.Int32;
          Idl_type.param "size" Idl_type.Int32;
        ];
      Idl_type.method_ ~ret:Idl_type.Blob "read_all" [ Idl_type.param "name" Idl_type.Str ];
    ]

let i_blob_sink =
  Itype.declare "IBlobSink"
    [
      Idl_type.method_ "put" [ Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Int32 "finish" [];
    ]

let i_query =
  Itype.declare "IQuery"
    [
      Idl_type.method_ ~ret:Idl_type.Str "query" [ Idl_type.param "key" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Int32 "query_int" [ Idl_type.param "key" Idl_type.Str ];
    ]

let i_notify =
  Itype.declare "INotify"
    [
      Idl_type.method_ "notify" [ Idl_type.param "code" Idl_type.Int32 ];
      Idl_type.method_ "notify_str" [ Idl_type.param "text" Idl_type.Str ];
    ]

let i_paint =
  Itype.declare "IPaint"
    [
      Idl_type.method_ "paint" [ Idl_type.param "hdc" (Idl_type.Opaque "HDC") ];
      Idl_type.method_ "invalidate"
        [
          Idl_type.param "x0" Idl_type.Int32;
          Idl_type.param "y0" Idl_type.Int32;
          Idl_type.param "x1" Idl_type.Int32;
          Idl_type.param "y1" Idl_type.Int32;
        ];
    ]

let i_control =
  Itype.declare "IControl"
    [
      Idl_type.method_ "attach" [ Idl_type.param "parent" (Idl_type.Iface "INotify") ];
      Idl_type.method_ "enable" [ Idl_type.param "on" Idl_type.Bool ];
      Idl_type.method_ "click" [];
      Idl_type.method_ "set_label" [ Idl_type.param "text" Idl_type.Str ];
    ]

let i_render =
  Itype.declare "IRender"
    [
      Idl_type.method_ "render_page"
        [ Idl_type.param "page" Idl_type.Int32; Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ "scroll" [ Idl_type.param "line" Idl_type.Int32 ];
      Idl_type.method_ "attach_surface" [ Idl_type.param "surface" (Idl_type.Iface "IPaint") ];
    ]

module Vfs = struct
  let key : (string, int) Hashtbl.t Runtime.key = Runtime.new_key ()

  let table ctx =
    match Runtime.get_data ctx key with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 16 in
        Runtime.set_data ctx key t;
        t

  let add ctx ~name ~bytes =
    assert (bytes >= 0);
    Hashtbl.replace (table ctx) name bytes

  let size ctx name =
    match Hashtbl.find_opt (table ctx) name with
    | Some n -> n
    | None -> Hresult.fail (Hresult.E_fail ("no such file: " ^ name))

  let exists ctx name = Hashtbl.mem (table ctx) name
end

let file_server_class_name = "Storage.FileServer"

let file_server =
  Runtime.define_class file_server_class_name
    ~api_refs:[ "kernel32.CreateFile"; "kernel32.ReadFile"; "kernel32.SetFilePointer" ]
    (fun _ctx _self ->
      let handles : (int, string) Hashtbl.t = Hashtbl.create 8 in
      let next_fh = ref 1 in
      let open_file ctx args =
        let name = Combuild.get_str args 0 in
        ignore (Vfs.size ctx name);
        let fh = !next_fh in
        incr next_fh;
        Hashtbl.replace handles fh name;
        Runtime.charge ctx ~us:120.;
        Combuild.echo args (Value.Int fh)
      in
      let file_size ctx args =
        let fh = Combuild.get_int args 0 in
        match Hashtbl.find_opt handles fh with
        | None -> Hresult.fail (Hresult.E_invalidarg "bad file handle")
        | Some name ->
            Runtime.charge ctx ~us:5.;
            Combuild.echo args (Value.Int (Vfs.size ctx name))
      in
      let read_block ctx args =
        let fh = Combuild.get_int args 0 in
        let offset = Combuild.get_int args 1 in
        let size = Combuild.get_int args 2 in
        match Hashtbl.find_opt handles fh with
        | None -> Hresult.fail (Hresult.E_invalidarg "bad file handle")
        | Some name ->
            let total = Vfs.size ctx name in
            let n = max 0 (min size (total - offset)) in
            Runtime.charge ctx ~us:(30. +. (float_of_int n /. 100.));
            Combuild.echo args (Value.Blob n)
      in
      let read_all ctx args =
        let name = Combuild.get_str args 0 in
        let n = Vfs.size ctx name in
        Runtime.charge ctx ~us:(60. +. (float_of_int n /. 100.));
        Combuild.echo args (Value.Blob n)
      in
      [
        Combuild.iface i_file_read
          [
            ("open_file", open_file);
            ("file_size", file_size);
            ("read_block", read_block);
            ("read_all", read_all);
          ];
      ])

let create ctx (cls : Runtime.component_class) itype =
  Runtime.create_instance ctx cls.Runtime.clsid ~iid:(Itype.iid itype)

let create_file_server ctx = create ctx file_server i_file_read

let call ctx h mname args = snd (Runtime.call_named ctx h mname args)

let call_ret_int ctx h mname args =
  match call ctx h mname args with
  | Value.Int i -> i
  | v -> Hresult.fail (Hresult.E_fail (Format.asprintf "expected int return, got %a" Value.pp v))

let call_ret_blob ctx h mname args =
  match call ctx h mname args with
  | Value.Blob n -> n
  | v -> Hresult.fail (Hresult.E_fail (Format.asprintf "expected blob return, got %a" Value.pp v))

let call_ret_str ctx h mname args =
  match call ctx h mname args with
  | Value.Str s -> s
  | v -> Hresult.fail (Hresult.E_fail (Format.asprintf "expected str return, got %a" Value.pp v))
