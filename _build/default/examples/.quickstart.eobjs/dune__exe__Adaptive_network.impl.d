examples/adaptive_network.ml: Adps Analysis App Coign_apps Coign_core Coign_netsim Coign_util List Net_profiler Network Octarine Printf Prng String
