examples/auto_repartition.mli:
