examples/benefits_3tier.ml: Adps Analysis App Benefits Classifier Coign_apps Coign_core Coign_netsim Coign_util Constraints Factory List Net_profiler Network Option Printf Prng
