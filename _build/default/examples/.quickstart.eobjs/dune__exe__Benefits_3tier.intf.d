examples/benefits_3tier.mli:
