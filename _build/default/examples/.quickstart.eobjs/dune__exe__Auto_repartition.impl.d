examples/auto_repartition.ml: Adps Analysis App Coign_apps Coign_com Coign_core Coign_netsim Coign_util Drift Factory Net_profiler Network Octarine Option Printf Prng Rte
