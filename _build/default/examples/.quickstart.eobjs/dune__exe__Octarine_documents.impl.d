examples/octarine_documents.ml: App Coign_apps Coign_sim Experiment List Octarine Printf String
