examples/adaptive_network.mli:
