examples/quickstart.mli:
