examples/octarine_documents.mli:
