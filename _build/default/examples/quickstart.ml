(* Quickstart: build a small component application from scratch and let
   Coign distribute it.

   The application is a toy report generator:
     Main -> ReportApp (GUI) -> Formatter -> DataSource -> FileServer
   The data source pulls large files from storage and hands the
   formatter modest summaries; the formatter feeds the GUI. Coign
   should discover that the data source belongs next to the data.

   Run: dune exec examples/quickstart.exe *)

open Coign_idl
open Coign_com
open Coign_core
module Common = Coign_apps.Common

(* 1. Declare interfaces in the IDL-like type language. ------------- *)

let i_report =
  Itype.declare "IReport"
    [
      Idl_type.method_ "generate" [ Idl_type.param "name" Idl_type.Str ];
    ]

let i_format =
  Itype.declare "IFormat"
    [
      Idl_type.method_ ~ret:Idl_type.Blob "format_report"
        [ Idl_type.param "source" (Idl_type.Iface "IDataSource") ];
    ]

let i_data =
  Itype.declare "IDataSource"
    [
      Idl_type.method_ "open_data" [ Idl_type.param "name" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Blob "summary" [ Idl_type.param "section" Idl_type.Int32 ];
    ]

(* 2. Implement components against the object runtime. -------------- *)

let c_data_source =
  Runtime.define_class "Quick.DataSource" (fun ctx0 _self ->
      (* The data source owns a storage connection; the file server
         class references storage APIs, so static analysis pins it (and
         the data) to the server. *)
      let fs = Common.create_file_server ctx0 in
      let open_data ctx args =
        let name = Combuild.get_str args 0 in
        let fh = Common.call_ret_int ctx fs "open_file" [ Value.Str name ] in
        let size = Common.call_ret_int ctx fs "file_size" [ Value.Int fh ] in
        (* Scan the whole data set. *)
        let offset = ref 0 in
        while !offset < size do
          ignore
            (Common.call_ret_blob ctx fs "read_block"
               [ Value.Int fh; Value.Int !offset; Value.Int 65_536 ]);
          offset := !offset + 65_536
        done;
        Runtime.charge ctx ~us:500.;
        Combuild.echo args Value.Unit
      in
      let summary ctx args =
        ignore (Combuild.get_int args 0);
        Runtime.charge ctx ~us:200.;
        Combuild.echo args (Value.Blob 2_000)
      in
      [ Combuild.iface i_data [ ("open_data", open_data); ("summary", summary) ] ])

let c_formatter =
  Runtime.define_class "Quick.Formatter" (fun _ctx _self ->
      let format_report ctx args =
        let source = Combuild.get_iface args 0 in
        let total = ref 0 in
        for section = 0 to 9 do
          total :=
            !total + Common.call_ret_blob ctx source "summary" [ Value.Int section ]
        done;
        Runtime.charge ctx ~us:800.;
        Combuild.echo args (Value.Blob (!total / 4))
      in
      [ Combuild.iface i_format [ ("format_report", format_report) ] ])

let c_report_app =
  Runtime.define_class "Quick.ReportApp" ~api_refs:[ "user32.CreateWindowExW" ]
    (fun ctx0 _self ->
      let formatter = Common.create ctx0 c_formatter i_format in
      let generate ctx args =
        let name = Combuild.get_str args 0 in
        let source = Common.create ctx c_data_source i_data in
        ignore (Runtime.call_named ctx source "open_data" [ Value.Str name ]);
        let _, report =
          Runtime.call_named ctx formatter "format_report" [ Value.Iface_ref source ]
        in
        (match report with
        | Value.Blob n -> Printf.printf "  report rendered: %d bytes on screen\n" n
        | _ -> ());
        Runtime.charge ctx ~us:300.;
        Combuild.echo args Value.Unit
      in
      [ Combuild.iface i_report [ ("generate", generate) ] ])

(* 3. Describe the binary and the usage scenario. -------------------- *)

let classes = [ c_report_app; c_formatter; c_data_source; Common.file_server ]

let registry = Runtime.registry classes

let image =
  Coign_image.Binary_image.create ~name:"quickstart.exe"
    ~api_refs:(List.map (fun c -> (c.Runtime.cname, c.Runtime.api_refs)) classes)
    ()

let scenario ctx =
  Common.Vfs.add ctx ~name:"sales.dat" ~bytes:4_000_000;
  let app = Common.create ctx c_report_app i_report in
  ignore (Runtime.call_named ctx app "generate" [ Value.Str "sales.dat" ])

(* 4. Run the ADPS pipeline. ------------------------------------------ *)

let () =
  print_endline "Coign quickstart: automatically distributing a report generator";
  print_endline "================================================================";
  (* Instrument the binary. *)
  let instrumented = Adps.instrument image in
  Printf.printf "1. instrumented %s (imports now start with %s)\n"
    image.Coign_image.Binary_image.img_name
    (List.hd instrumented.Coign_image.Binary_image.imports);
  (* Profile a usage scenario. *)
  print_endline "2. profiling the 'generate report' scenario...";
  let profiled, stats = Adps.profile ~image:instrumented ~registry scenario in
  Printf.printf "   %d component instances, %d interface calls, %d bytes of ICC\n"
    stats.Adps.ps_instances stats.Adps.ps_calls stats.Adps.ps_bytes;
  (* Analyze against a network profile. *)
  let network = Coign_netsim.Network.ethernet_10 in
  let net = Coign_netsim.Net_profiler.profile (Coign_util.Prng.create 1L) network in
  let distributed_image, dist = Adps.analyze ~image:profiled ~net () in
  let classifier, _ = Option.get (Adps.load_distribution distributed_image) in
  Printf.printf "3. analysis: %d of %d classifications go to the server:\n"
    dist.Analysis.server_count dist.Analysis.node_count;
  List.iter
    (fun c ->
      Printf.printf "   - %s\n" (Classifier.class_of_classification classifier c))
    (Analysis.server_classifications dist);
  (* Execute the distributed application. *)
  print_endline "4. executing the distributed application on 10BaseT Ethernet...";
  let es = Adps.execute ~image:distributed_image ~registry ~network scenario in
  Printf.printf "   communication: %.3f s over %d remote calls (%d bytes)\n"
    (es.Adps.es_comm_us /. 1e6) es.Adps.es_remote_calls es.Adps.es_remote_bytes;
  (* Compare with the undistributed default (data on the server). *)
  let default =
    Adps.execute_with_policy ~registry ~classifier:(Classifier.create Classifier.Ifcb)
      ~policy:
        (Factory.By_class
           (fun cname ->
             if String.equal cname Common.file_server_class_name then
               Constraints.Server
             else Constraints.Client))
      ~network scenario
  in
  Printf.printf "   default distribution would have paid %.3f s — Coign saves %.0f%%\n"
    (default.Adps.es_comm_us /. 1e6)
    ((1. -. (es.Adps.es_comm_us /. default.Adps.es_comm_us)) *. 100.)
