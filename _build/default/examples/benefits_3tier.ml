(* Improving a hand-distributed 3-tier application (paper §4.3, Fig 6).

   The Corporate Benefits Sample ships with a programmer-chosen 3-tier
   split: Visual Basic forms on the client, business logic and caches
   on the middle tier. Coign discovers that the caching components
   answer many small client queries but refill from the logic in bulk,
   and moves them (and the rows they materialize) to the client —
   without violating the data-integrity constraint that keeps the ODBC
   gateway beside the database.

   The example also demonstrates the paper's explicit location
   constraints: an absolute constraint forcing the report logic to the
   middle tier, and the effect it has on the chosen cut.

   Run: dune exec examples/benefits_3tier.exe *)

open Coign_util
open Coign_netsim
open Coign_core
open Coign_apps

let network = Network.ethernet_10

let analyze ?(extra = Constraints.empty) () =
  let app = Benefits.app in
  let sc = App.scenario app "b_vueone" in
  let image = Adps.instrument app.App.app_image in
  let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let net = Net_profiler.profile (Prng.create 11L) network in
  let image, dist = Adps.analyze ~extra_constraints:extra ~image ~net () in
  let classifier, _ = Option.get (Adps.load_distribution image) in
  (app, sc, image, dist, classifier)

let server_classes classifier dist =
  List.sort_uniq compare
    (List.map (Classifier.class_of_classification classifier) (Analysis.server_classifications dist))

let () =
  print_endline "Corporate Benefits: re-partitioning a hand-built 3-tier application";
  print_endline "====================================================================";
  let app, sc, image, dist, classifier = analyze () in
  (* Default (programmer) distribution. *)
  let default =
    Adps.execute_with_policy ~registry:app.App.app_registry
      ~classifier:(Classifier.create Classifier.Ifcb)
      ~policy:(Factory.By_class app.App.app_default_placement) ~network sc.App.sc_run
  in
  let coign = Adps.execute ~image ~registry:app.App.app_registry ~network sc.App.sc_run in
  Printf.printf "\nProgrammer's 3-tier split: %d of %d instances on the middle tier\n"
    default.Adps.es_server_instances default.Adps.es_instances;
  Printf.printf "Coign's split:             %d of %d instances on the middle tier\n"
    coign.Adps.es_server_instances coign.Adps.es_instances;
  Printf.printf "Communication: %.3f s -> %.3f s (%.0f%% reduction; paper: 35%%)\n"
    (default.Adps.es_comm_us /. 1e6)
    (coign.Adps.es_comm_us /. 1e6)
    ((1. -. (coign.Adps.es_comm_us /. default.Adps.es_comm_us)) *. 100.);
  print_endline "\nClasses Coign keeps on the middle tier:";
  List.iter (Printf.printf "  - %s\n") (server_classes classifier dist);
  print_endline "\nClasses Coign moved to the client (that the programmer had on the middle tier):";
  let profiled_classes =
    List.init (Classifier.classification_count classifier)
      (Classifier.class_of_classification classifier)
    |> List.sort_uniq compare
  in
  List.iter
    (fun cname ->
      if
        app.App.app_default_placement cname = Constraints.Server
        && not (List.mem cname (server_classes classifier dist))
      then Printf.printf "  - %s\n" cname)
    profiled_classes;
  (* Now add an explicit constraint, as a programmer protecting a
     security boundary would (paper §4.3: absolute constraints). *)
  print_endline "\nAdding an absolute constraint: Benefits.EmployeeCache must stay on the middle tier";
  let extra =
    Constraints.pin_class Constraints.empty ~cname:"Benefits.EmployeeCache" Constraints.Server
  in
  let _, _, image2, dist2, classifier2 = analyze ~extra () in
  let coign2 = Adps.execute ~image:image2 ~registry:app.App.app_registry ~network sc.App.sc_run in
  Printf.printf "  constrained cut keeps %d classifications on the middle tier (was %d)\n"
    dist2.Analysis.server_count dist.Analysis.server_count;
  Printf.printf "  employee cache on server: %b\n"
    (List.mem "Benefits.EmployeeCache" (server_classes classifier2 dist2));
  Printf.printf "  communication under the constraint: %.3f s (unconstrained %.3f s)\n"
    (coign2.Adps.es_comm_us /. 1e6)
    (coign.Adps.es_comm_us /. 1e6);
  print_endline "  — the chosen distribution can never violate an explicit constraint;\n    the price is paid in communication time instead."
