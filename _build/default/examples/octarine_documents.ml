(* Changing documents change the distribution (paper §4.4, Figs 5/7/8).

   Octarine is profiled separately for three predominant document
   types; Coign chooses a radically different distribution for each:

   - text-only documents: only the reader and the text-properties
     component move to the server;
   - a large table document: the reader and the table model go server,
     the view streams only the visible window;
   - text with embedded tables: the page-placement negotiation drags
     the whole text/table cluster next to the data.

   Run: dune exec examples/octarine_documents.exe *)


open Coign_apps
open Coign_sim

let show (label : string) (sc : App.scenario) =
  let row = Experiment.run_scenario Octarine.app sc in
  Printf.printf "\n%s (%s)\n%s\n" label sc.App.sc_id (String.make 60 '-');
  Printf.printf
    "  instances: %d total, %d on server | comm: default %.3f s -> Coign %.3f s (%.0f%% saved)\n"
    row.Experiment.total_instances row.Experiment.server_instances
    (row.Experiment.default_comm_us /. 1e6)
    (row.Experiment.coign_comm_us /. 1e6)
    (row.Experiment.savings *. 100.);
  Printf.printf "  server-side classes:\n";
  List.iter
    (fun (cls, n) -> Printf.printf "    %-32s x%d\n" cls n)
    (Experiment.server_class_histogram row);
  row

let () =
  print_endline "Octarine: one application, three distributions";
  print_endline "==============================================";
  let text = show "35-page text document (Figure 5)" Octarine.figure5 in
  let table = show "5-page table document (Figure 7)" (App.scenario Octarine.app "o_oldtb0") in
  let big_table = show "150-page table document" (App.scenario Octarine.app "o_oldtb3") in
  let mixed = show "5-page text with embedded tables (Figure 8)" (App.scenario Octarine.app "o_oldbth") in
  print_newline ();
  print_endline "Summary (the paper's §4.4 argument):";
  Printf.printf
    "  the text document sends %d classifications to the server, the small table\n\
    \  %d, the big table %d, and the mixed document %d — the optimal distribution\n\
    \  depends on the user's predominant document type, so a static manual\n\
    \  partition cannot serve all of them. Coign can repartition per usage profile.\n"
    text.Experiment.server_classifications table.Experiment.server_classifications
    big_table.Experiment.server_classifications mixed.Experiment.server_classifications
