(* Perf-trajectory gate over the bench harness's --json snapshots.

   Usage: trajectory NEW.json [OLD.json] [--tolerance T] [--min-speedup S]

   Within-snapshot gates on NEW (machine-independent invariants):
     - the session sweep reproduced fresh analysis bit for bit
       (sections.session.identical);
     - the two-stage session path beats fresh analysis by at least
       --min-speedup (default 3.0; the PR 7 acceptance bar was 5x on an
       idle machine, the gate leaves headroom for loaded CI runners);
     - the relabel-to-front micro kernel runs within 8x of Dinic on the
       150-node bench graph (the pre-PR-7 pathology was ~60x);
     - the open-loop load sweep (when present): queueing-off pricing
       reproduced the Replay estimator bit for bit, and each app's p99
       latency rises strictly with offered arrival rate;
     - the drift watch (when present): a quiet watch left the deployed
       run bit-identical, the closed loop converged to the offline
       oracle's cut, and steady-state communication went down.

   Cross-snapshot comparisons against OLD use ratios rather than raw
   nanoseconds, so trajectories survive machine changes: the session
   speedup and the rtf/dinic ratio may regress by at most --tolerance
   (default 0.5, i.e. 50%).

   Exit codes: 0 all gates pass, 1 a gate failed, 2 usage or parse
   error. *)

module J = Coign_util.Jsonu

let usage () =
  prerr_endline
    "usage: trajectory NEW.json [OLD.json] [--tolerance T] [--min-speedup S]";
  exit 2

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg ->
      Printf.eprintf "trajectory: cannot read %s: %s\n" path msg;
      exit 2

let parse_snapshot path =
  match J.parse (read_file path) with
  | Ok json -> json
  | Error msg ->
      Printf.eprintf "trajectory: %s: %s\n" path msg;
      exit 2

let section name json = Option.bind (J.member "sections" json) (J.member name)

let number = function
  | Some (J.Int n) -> Some (float_of_int n)
  | Some (J.Float f) -> Some f
  | _ -> None

let micro_kernels json =
  match section "micro" json with
  | Some (J.Arr rows) ->
      List.filter_map
        (fun row ->
          match (J.member "kernel" row, number (J.member "ns_per_run" row)) with
          | Some (J.Str name), Some ns -> Some (name, ns)
          | _ -> None)
        rows
  | _ -> []

let failures = ref 0

let check name ok detail =
  Printf.printf "%s %-52s %s\n" (if ok then "ok  " else "FAIL") name detail;
  if not ok then incr failures

let skip name why = Printf.printf "skip %-52s %s\n" name why

(* --- gates ---------------------------------------------------------- *)

let session_fields json =
  match section "session" json with
  | None -> None
  | Some s ->
      let identical = match J.member "identical" s with Some (J.Bool b) -> Some b | _ -> None in
      Some (identical, number (J.member "speedup" s))

let rtf_dinic_ratio json =
  let kernels = micro_kernels json in
  match
    ( List.assoc_opt "kernels/relabel-to-front" kernels,
      List.assoc_opt "kernels/dinic" kernels )
  with
  | Some rtf, Some dinic when dinic > 0. -> Some (rtf /. dinic)
  | _ -> None

let load_rows json =
  match section "load" json with
  | Some (J.Arr rows) ->
      List.filter_map
        (fun row ->
          match
            ( J.member "app" row,
              number (J.member "rate" row),
              number (J.member "p99_us" row),
              J.member "identical" row )
          with
          | Some (J.Str app), Some rate, Some p99, Some (J.Bool identical) ->
              Some (app, rate, p99, identical)
          | _ -> None)
        rows
  | _ -> []

let load_gates fresh =
  match load_rows fresh with
  | [] -> skip "load: queueing gates" "no load section in NEW"
  | rows ->
      check "load: queueing-off identity vs Replay"
        (List.for_all (fun (_, _, _, identical) -> identical) rows)
        (Printf.sprintf "%d rows" (List.length rows));
      let apps =
        List.sort_uniq compare (List.map (fun (app, _, _, _) -> app) rows)
      in
      List.iter
        (fun app ->
          let mine =
            List.sort
              (fun (_, a, _, _) (_, b, _, _) -> compare a b)
              (List.filter (fun (a, _, _, _) -> a = app) rows)
          in
          let rec monotone = function
            | (_, _, a, _) :: ((_, _, b, _) :: _ as rest) ->
                a < b && monotone rest
            | _ -> true
          in
          check
            (Printf.sprintf "load: %s p99 rises with arrival rate" app)
            (monotone mine)
            (String.concat " < "
               (List.map (fun (_, _, p99, _) -> Printf.sprintf "%.0fus" p99) mine)))
        apps

let watch_gates fresh =
  match section "watch" fresh with
  | None -> skip "watch: drift-loop gates" "no watch section in NEW"
  | Some s ->
      let bool_field k =
        match J.member k s with Some (J.Bool b) -> Some b | _ -> None
      in
      check "watch: quiet watch bit-identical"
        (bool_field "quiet_identical" = Some true)
        (match bool_field "quiet_identical" with
        | Some b -> Printf.sprintf "quiet_identical=%b" b
        | None -> "field missing");
      check "watch: converged to the oracle cut"
        (bool_field "converged" = Some true)
        (match bool_field "converged" with
        | Some b -> Printf.sprintf "converged=%b" b
        | None -> "field missing");
      (match
         (number (J.member "steady_stale_us" s),
          number (J.member "steady_watched_us" s))
       with
      | Some stale, Some watched ->
          check "watch: steady-state comm reduced" (watched < stale)
            (Printf.sprintf "%.0fus -> %.0fus" stale watched)
      | _ -> skip "watch: steady-state comm reduced" "fields missing")

let fleet_gates fresh =
  match section "fleet" fresh with
  | None -> skip "fleet: replicated-pool gates" "no fleet section in NEW"
  | Some s ->
      (match J.member "all_pool1_identical" s with
      | Some (J.Bool b) ->
          check "fleet: pool-of-one bit-identical to the ladder" b
            (Printf.sprintf "all_pool1_identical=%b" b)
      | _ -> skip "fleet: pool-of-one bit-identical to the ladder" "field missing");
      (match number (J.member "crash_improved_apps" s) with
      | Some n ->
          check "fleet: crash served-ratio strictly better on >=2 apps" (n >= 2.)
            (Printf.sprintf "improved on %.0f apps" n)
      | None -> skip "fleet: crash served-ratio strictly better on >=2 apps" "field missing")

let within_gates ~min_speedup fresh =
  (match session_fields fresh with
  | None -> skip "session: identical" "no session section in NEW"
  | Some (identical, speedup) -> (
      check "session: distributions bit-identical" (identical = Some true)
        (match identical with
        | Some b -> Printf.sprintf "identical=%b" b
        | None -> "field missing");
      match speedup with
      | None -> skip "session: speedup" "field missing"
      | Some s ->
          check
            (Printf.sprintf "session: reprice speedup >= %.1fx" min_speedup)
            (s >= min_speedup)
            (Printf.sprintf "speedup=%.2fx" s)));
  (match rtf_dinic_ratio fresh with
  | None -> skip "micro: rtf within 8x of dinic" "kernels missing in NEW"
  | Some r ->
      check "micro: rtf within 8x of dinic" (r <= 8.)
        (Printf.sprintf "rtf/dinic=%.2fx" r));
  load_gates fresh;
  watch_gates fresh;
  fleet_gates fresh

let cross_gates ~tolerance ~old_path fresh old =
  Printf.printf "-- comparing against %s (tolerance %.0f%%)\n" old_path
    (tolerance *. 100.);
  (match (session_fields fresh, session_fields old) with
  | Some (_, Some now), Some (_, Some before) ->
      let floor = before *. (1. -. tolerance) in
      check "session: speedup vs previous snapshot" (now >= floor)
        (Printf.sprintf "%.2fx vs %.2fx (floor %.2fx)" now before floor)
  | _ -> skip "session: speedup vs previous snapshot" "section missing on one side");
  (match (rtf_dinic_ratio fresh, rtf_dinic_ratio old) with
  | Some now, Some before ->
      let ceiling = Float.max 8. (before *. (1. +. tolerance)) in
      check "micro: rtf/dinic ratio vs previous snapshot" (now <= ceiling)
        (Printf.sprintf "%.2fx vs %.2fx (ceiling %.2fx)" now before ceiling)
  | _ -> skip "micro: rtf/dinic ratio vs previous snapshot" "kernels missing on one side");
  match (session_fields fresh, session_fields old) with
  | Some (now, _), Some (before, _) when before = Some true ->
      check "session: identity regression" (now = Some true)
        "previous snapshot was bit-identical"
  | _ -> ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split paths tolerance min_speedup = function
    | [] -> (List.rev paths, tolerance, min_speedup)
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0. -> split paths t min_speedup rest
        | _ -> usage ())
    | "--min-speedup" :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s > 0. -> split paths tolerance s rest
        | _ -> usage ())
    | ("--tolerance" | "--min-speedup") :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | path :: rest -> split (path :: paths) tolerance min_speedup rest
  in
  let paths, tolerance, min_speedup = split [] 0.5 3.0 args in
  match paths with
  | [] | _ :: _ :: _ :: _ -> usage ()
  | fresh_path :: old_paths ->
      let fresh = parse_snapshot fresh_path in
      Printf.printf "perf trajectory: %s\n" fresh_path;
      within_gates ~min_speedup fresh;
      (match old_paths with
      | [ old_path ] -> cross_gates ~tolerance ~old_path fresh (parse_snapshot old_path)
      | _ -> ());
      if !failures > 0 then begin
        Printf.printf "%d gate(s) FAILED\n" !failures;
        exit 1
      end;
      print_endline "all gates passed"
