(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (§4) plus the §3.2 overhead claims and the §4.4
   network-adaptivity argument, and runs bechamel microbenchmarks of
   the core kernels.

   Usage: dune exec bench/main.exe [-- section ...] [--json FILE]
   Sections: table1 table2 table3 fig4 fig5 fig6 fig7 fig8 table4
             table5 overhead adaptive multiway drift whatif session
             micro faultsim obs resilience verify load watch fleet
             (default: all).

   --json FILE additionally writes the machine-readable results of the
   sections that ran (micro estimates, the session-vs-fresh analysis
   comparison, table 4/5 rows) so successive runs leave a perf
   trajectory (BENCH_*.json). *)

open Coign_util
open Coign_core
open Coign_apps
open Coign_sim

let network = Coign_netsim.Network.ethernet_10

let note fmt = Printf.printf fmt

(* Machine-readable section results, accumulated as JSON fragments in
   run order by the sections that produce them. *)
let json_sections : (string * string) list ref = ref []

let add_json name fragment = json_sections := (name, fragment) :: !json_sections

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let section_header title paper =
  Printf.printf "\n%s\n%s\n(paper reference: %s)\n" title (String.make (String.length title) '=') paper

(* ------------------------------------------------------------------ *)
(* Table 1: the scenario suite                                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section_header "Table 1: Profiling Scenarios" "Table 1";
  let t = Tablefmt.create [ ("Scenario", Tablefmt.Left); ("Description", Tablefmt.Left) ] in
  List.iter (fun (_, id, desc) -> Tablefmt.add_row t [ id; desc ]) Suite.table1;
  print_string (Tablefmt.render t)

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: classifier accuracy                                 *)
(* ------------------------------------------------------------------ *)

let classifier_row (r : Classifier_eval.row) =
  [
    (match r.Classifier_eval.cr_depth with
    | None -> Classifier.kind_description r.Classifier_eval.cr_kind
    | Some d -> string_of_int d);
    string_of_int r.Classifier_eval.cr_profiled_classifications;
    string_of_int r.Classifier_eval.cr_new_in_bigone;
    Tablefmt.cell_float ~decimals:1 r.Classifier_eval.cr_avg_instances;
    Tablefmt.cell_float ~decimals:3 r.Classifier_eval.cr_avg_correlation;
  ]

let table2 () =
  section_header "Table 2: Classifier Accuracy (Octarine)" "Table 2";
  let t =
    Tablefmt.create
      [
        ("Instance Classifier", Tablefmt.Left); ("Profiled Cls.", Tablefmt.Right);
        ("New (bigone) Cls.", Tablefmt.Right); ("Inst./Cls.", Tablefmt.Right);
        ("Avg. Correlation", Tablefmt.Right);
      ]
  in
  List.iter (fun r -> Tablefmt.add_row t (classifier_row r)) (Classifier_eval.table2 Octarine.app);
  print_string (Tablefmt.render t);
  note
    "Expected shape: Incremental all-new/worst correlation; IFCB most\n\
     classifications; ST fewest and least accurate of the context family.\n"

let table3 () =
  section_header "Table 3: IFCB Accuracy as a Function of Stack Depth (Octarine)" "Table 3";
  let t =
    Tablefmt.create
      [
        ("Stack-Walk Depth", Tablefmt.Left); ("Profiled Cls.", Tablefmt.Right);
        ("New (bigone) Cls.", Tablefmt.Right); ("Inst./Cls.", Tablefmt.Right);
        ("Avg. Correlation", Tablefmt.Right);
      ]
  in
  let rows = Classifier_eval.table3 Octarine.app in
  List.iteri
    (fun i r ->
      let row = classifier_row r in
      let row = if i = List.length rows - 1 then "Complete" :: List.tl row else row in
      Tablefmt.add_row t row)
    rows;
  print_string (Tablefmt.render t);
  note "Expected shape: classifications and correlation rise with depth, then saturate.\n"

(* ------------------------------------------------------------------ *)
(* Figures 4-8: distributions                                          *)
(* ------------------------------------------------------------------ *)

let distribution_figure ~title ~paper ~expect app (sc : App.scenario) =
  section_header title paper;
  let row = Experiment.run_scenario ~network app sc in
  Printf.printf
    "Coign places %d of %d component instances on the server\n\
     (%d of %d instance classifications; predicted communication %.3f s).\n"
    row.Experiment.server_instances row.Experiment.total_instances
    row.Experiment.server_classifications row.Experiment.node_count
    (row.Experiment.distribution.Analysis.predicted_comm_us /. 1e6);
  let t =
    Tablefmt.create
      [ ("Server-side component class", Tablefmt.Left); ("Classifications", Tablefmt.Right) ]
  in
  List.iter
    (fun (cls, n) -> Tablefmt.add_row t [ cls; string_of_int n ])
    (Experiment.server_class_histogram row);
  print_string (Tablefmt.render t);
  note "%s\n" expect

let fig4 () =
  distribution_figure ~title:"Figure 4: PhotoDraw Distribution" ~paper:"Figure 4"
    ~expect:
      "Paper: 8 of 295 on the server (the document reader and seven property\n\
       sets); sprite caches held to the client by non-distributable interfaces."
    Photodraw.app
    (App.scenario Photodraw.app "p_oldmsr")

let fig5 () =
  distribution_figure ~title:"Figure 5: Octarine Distribution (35-page text document)"
    ~paper:"Figure 5"
    ~expect:
      "Paper: 2 of 458 on the server (the document reader and the text-properties\n\
       component); the GUI forest stays on the client."
    Octarine.app Octarine.figure5

let fig6 () =
  section_header "Figure 6: Corporate Benefits Distribution" "Figure 6";
  let app = Benefits.app in
  let sc = App.scenario app "b_vueone" in
  let row = Experiment.run_scenario ~network app sc in
  let default =
    Adps.execute_with_policy ~registry:app.App.app_registry
      ~classifier:(Classifier.create Classifier.Ifcb)
      ~policy:(Factory.By_class app.App.app_default_placement) ~network sc.App.sc_run
  in
  Printf.printf
    "Of %d component instances, Coign places %d on the middle tier where the\n\
     programmer placed %d (paper: 135 vs 187 of 196). Communication drops by %s.\n"
    row.Experiment.total_instances row.Experiment.server_instances
    default.Adps.es_server_instances
    (Tablefmt.cell_pct row.Experiment.savings);
  let t =
    Tablefmt.create
      [ ("Middle-tier component class (Coign)", Tablefmt.Left); ("Classifications", Tablefmt.Right) ]
  in
  List.iter
    (fun (cls, n) -> Tablefmt.add_row t [ cls; string_of_int n ])
    (Experiment.server_class_histogram row);
  print_string (Tablefmt.render t);
  note
    "Expected shape: caches and their row sets move to the client; the business\n\
     logic and ODBC gateway stay on the middle tier.\n"

let fig7 () =
  distribution_figure ~title:"Figure 7: Octarine with Multi-page Table" ~paper:"Figure 7"
    ~expect:"Paper: a single component of 476 on the server for the 5-page table."
    Octarine.app
    (App.scenario Octarine.app "o_oldtb0")

let fig8 () =
  distribution_figure ~title:"Figure 8: Octarine with Tables and Text" ~paper:"Figure 8"
    ~expect:
      "Paper: 281 of 786 on the server — the page-placement negotiation moves the\n\
       text/table cluster beside the document data."
    Octarine.app
    (App.scenario Octarine.app "o_oldbth")

(* ------------------------------------------------------------------ *)
(* Tables 4 and 5: scenario sweep                                      *)
(* ------------------------------------------------------------------ *)

(* Scenario rows are independent end-to-end pipeline runs with fixed
   seeds; the domain pool runs them concurrently and run_suite returns
   them in suite order, identical to the sequential path. *)
let sweep = lazy (Experiment.run_suite ~network ~pool:(Parallel.default ()) Suite.all)

let table4 () =
  section_header "Table 4: Reduction in Communication Time" "Table 4";
  let t =
    Tablefmt.create
      [
        ("Scenario", Tablefmt.Left); ("Default (s)", Tablefmt.Right);
        ("Coign (s)", Tablefmt.Right); ("Savings", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (r : Experiment.row) ->
      Tablefmt.add_row t
        [
          r.Experiment.row_id;
          Tablefmt.cell_float (r.Experiment.default_comm_us /. 1e6);
          Tablefmt.cell_float (r.Experiment.coign_comm_us /. 1e6);
          Tablefmt.cell_pct r.Experiment.savings;
        ])
    (Lazy.force sweep);
  print_string (Tablefmt.render t);
  add_json "table4"
    (Printf.sprintf "[%s]"
       (String.concat ", "
          (List.map
             (fun (r : Experiment.row) ->
               Printf.sprintf
                 "{\"scenario\": \"%s\", \"default_comm_us\": %.17g, \"coign_comm_us\": \
                  %.17g, \"savings\": %.17g}"
                 (json_escape r.Experiment.row_id) r.Experiment.default_comm_us
                 r.Experiment.coign_comm_us r.Experiment.savings)
             (Lazy.force sweep))));
  note
    "Expected shape: Coign never worse than the default; ~99%% on large table\n\
     documents, ~95%% on the 208-page text document, ~0%% on small/new documents,\n\
     ~68%% on mixed text+tables, 5-35%% for PhotoDraw and Benefits.\n"

let table5 () =
  section_header "Table 5: Accuracy of Prediction Models" "Table 5";
  let t =
    Tablefmt.create
      [
        ("Scenario", Tablefmt.Left); ("Predicted (s)", Tablefmt.Right);
        ("Measured (s)", Tablefmt.Right); ("Error", Tablefmt.Right);
      ]
  in
  let worst = ref 0. in
  List.iter
    (fun (r : Experiment.row) ->
      worst := Float.max !worst (Float.abs r.Experiment.prediction_error);
      Tablefmt.add_row t
        [
          r.Experiment.row_id;
          Tablefmt.cell_float (r.Experiment.predicted_total_us /. 1e6);
          Tablefmt.cell_float (r.Experiment.measured_total_us /. 1e6);
          Printf.sprintf "%+.0f%%" (r.Experiment.prediction_error *. 100.);
        ])
    (Lazy.force sweep);
  print_string (Tablefmt.render t);
  add_json "table5"
    (Printf.sprintf "[%s]"
       (String.concat ", "
          (List.map
             (fun (r : Experiment.row) ->
               Printf.sprintf
                 "{\"scenario\": \"%s\", \"predicted_total_us\": %.17g, \
                  \"measured_total_us\": %.17g, \"prediction_error\": %.17g}"
                 (json_escape r.Experiment.row_id) r.Experiment.predicted_total_us
                 r.Experiment.measured_total_us r.Experiment.prediction_error)
             (Lazy.force sweep))));
  note "Worst absolute error: %.1f%% (paper: none above 8%%).\n" (!worst *. 100.)

(* ------------------------------------------------------------------ *)
(* §3.2 overhead                                                       *)
(* ------------------------------------------------------------------ *)

let overhead () =
  section_header "Instrumentation Overhead" "Sec. 3.2 (<=85% profiling, <3% distribution)";
  let t =
    Tablefmt.create
      [
        ("Scenario", Tablefmt.Left); ("Calls", Tablefmt.Right);
        ("Prof. us/call", Tablefmt.Right); ("Distrib. us/call", Tablefmt.Right);
        ("Prof. overhead", Tablefmt.Right); ("Distrib. overhead", Tablefmt.Right);
      ]
  in
  List.iter
    (fun id ->
      let app, sc = Suite.find_scenario id in
      let r = Overhead.measure app sc in
      Tablefmt.add_row t
        [
          id;
          string_of_int r.Overhead.intercepted_calls;
          Tablefmt.cell_float ~decimals:2 r.Overhead.profiling_us_per_call;
          Tablefmt.cell_float ~decimals:2 r.Overhead.distributed_us_per_call;
          Tablefmt.cell_pct r.Overhead.profiling_overhead;
          Tablefmt.cell_pct r.Overhead.distributed_overhead;
        ])
    [ "o_oldwp7"; "o_oldtb3"; "p_oldmsr"; "b_bigone" ];
  print_string (Tablefmt.render t);
  note
    "Overheads are relative to modeled application time (wall-clock plus the\n\
     compute the components charge), mirroring the paper's percentages over\n\
     real application compute. Expected shape: profiling far heavier per call\n\
     than distribution-time interception.\n"

(* ------------------------------------------------------------------ *)
(* §4.4 adaptivity                                                     *)
(* ------------------------------------------------------------------ *)

let adaptive () =
  section_header "Changing Scenarios and Distributions" "Sec. 4.4";
  List.iter
    (fun id ->
      let app, sc = Suite.find_scenario id in
      Printf.printf "\n%s re-analyzed against each network:\n" id;
      let t =
        Tablefmt.create
          [
            ("Network", Tablefmt.Left); ("Server classifications", Tablefmt.Right);
            ("Predicted comm (s)", Tablefmt.Right);
          ]
      in
      List.iter
        (fun (a : Experiment.adaptive_row) ->
          Tablefmt.add_row t
            [
              a.Experiment.ar_network;
              string_of_int a.Experiment.ar_server_classifications;
              Tablefmt.cell_float (a.Experiment.ar_predicted_comm_us /. 1e6);
            ])
        (Experiment.across_networks app sc);
      print_string (Tablefmt.render t))
    [ "o_oldbth"; "p_oldmsr" ];
  note
    "\nExpected shape: predicted communication falls monotonically with faster\n\
     networks, and the chosen distribution itself shifts as the\n\
     bandwidth-to-latency tradeoff moves.\n"

(* ------------------------------------------------------------------ *)
(* Two-stage engine: session reprice+recut vs fresh analysis           *)
(* ------------------------------------------------------------------ *)

let session_bench () =
  section_header "Two-Stage Engine: Session Reprice+Recut vs Fresh Analysis"
    "Sec. 4.4 adaptivity; ISSUE 2 acceptance criterion";
  let app = Photodraw.app in
  let sc = App.scenario app "p_oldmsr" in
  let image = Adps.instrument app.App.app_image in
  let image, stats = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let classifier, icc =
    match Adps.load_profile image with Some p -> p | None -> assert false
  in
  let constraints =
    Constraints.merge (Constraints.of_image image) (Adps.static_constraints image)
  in
  let points = 24 in
  let nets =
    List.map
      (fun net -> Coign_netsim.Net_profiler.profile (Prng.create 11L) net)
      (Coign_netsim.Network.geometric_sweep ~points
         ~from_net:Coign_netsim.Network.isdn_128 ~to_net:Coign_netsim.Network.san_1g ())
  in
  Printf.printf
    "PhotoDraw %s profile: %d classifications, %d calls; sweeping %d network points.\n"
    sc.App.sc_id stats.Adps.ps_classifications stats.Adps.ps_calls points;
  let time f =
    let reps = 3 in
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    ((match !result with Some r -> r | None -> assert false), !best)
  in
  let fresh_dists, fresh_s =
    time (fun () ->
        List.map (fun net -> Analysis.choose ~classifier ~icc ~constraints ~net ()) nets)
  in
  (* One long-lived session, as an adaptive runtime would hold: the
     first rep warms the per-network cost-table memo, so best-of-three
     measures the steady-state reprice+recut — flat pricing into the
     CSR arena plus an in-place cut, no stage-1 rebuild, no
     Net_profiler.compile. *)
  let session = Analysis.Session.create ~classifier ~icc ~constraints () in
  let session_dists, session_s =
    time (fun () -> List.map (fun net -> Analysis.Session.solve session ~net) nets)
  in
  let identical =
    List.for_all2
      (fun a b -> String.equal (Analysis.encode a) (Analysis.encode b))
      fresh_dists session_dists
  in
  let ratio = fresh_s /. session_s in
  let t =
    Tablefmt.create [ ("Path", Tablefmt.Left); ("Total (ms)", Tablefmt.Right);
                      ("Per point (ms)", Tablefmt.Right) ]
  in
  Tablefmt.add_row t
    [ Printf.sprintf "fresh Analysis.choose x%d" points;
      Tablefmt.cell_float (fresh_s *. 1e3);
      Tablefmt.cell_float ~decimals:3 (fresh_s *. 1e3 /. float_of_int points) ];
  Tablefmt.add_row t
    [ Printf.sprintf "one session, %d x reprice+recut" points;
      Tablefmt.cell_float (session_s *. 1e3);
      Tablefmt.cell_float ~decimals:3 (session_s *. 1e3 /. float_of_int points) ];
  print_string (Tablefmt.render t);
  Printf.printf "speedup: %.2fx; distributions %s\n" ratio
    (if identical then "bit-identical across all points" else "DIFFER (BUG)");
  add_json "session"
    (Printf.sprintf
       "{\"app\": \"photodraw\", \"scenario\": \"%s\", \"points\": %d, \
        \"classifications\": %d, \"fresh_s\": %.17g, \"session_s\": %.17g, \"speedup\": \
        %.17g, \"identical\": %b}"
       (json_escape sc.App.sc_id) points stats.Adps.ps_classifications fresh_s session_s
       ratio identical);
  if not identical then exit 3;
  note
    "Expected shape: the session path skips the per-network abstract-graph and\n\
     constraint-edge rebuild (stage 1), paying only pricing + cut per point, so\n\
     it beats repeated fresh analysis while producing identical cuts.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  section_header "Microbenchmarks (bechamel)" "Sec. 2 algorithm choice, Sec. 3.2 informer costs";
  let open Bechamel in
  let open Toolkit in
  let make_graph n =
    let rng = Prng.create 77L in
    let g = Coign_flowgraph.Flow_network.create ~n in
    for _ = 1 to n * 4 do
      let a = Prng.int rng n and b = Prng.int rng n in
      Coign_flowgraph.Flow_network.add_undirected g a b ~cap:(1 + Prng.int rng 10_000)
    done;
    g
  in
  let g200 = make_graph 150 in
  let cut_test alg =
    Test.make
      ~name:(Coign_flowgraph.Mincut.algorithm_name alg)
      (Staged.stage (fun () ->
           ignore (Coign_flowgraph.Mincut.min_cut ~algorithm:alg g200 ~s:0 ~t:1)))
  in
  (* Flat-core kernels: compiling the CSR arena from an adjacency
     network, and the session hot loop — rewrite capacities in place,
     reset residuals, cut with preallocated scratch, read the side. *)
  let module R = Coign_flowgraph.Flow_network.Residual in
  let csr_build =
    Test.make ~name:"csr-build"
      (Staged.stage (fun () -> ignore (R.of_network g200)))
  in
  let bench_edges = Array.of_list (Coign_flowgraph.Flow_network.edges g200) in
  let bench_n = Coign_flowgraph.Flow_network.node_count g200 in
  let arena, fwd = R.of_edges ~n:bench_n bench_edges in
  let arena_scratch = Coign_flowgraph.Mincut.scratch arena in
  let side = Array.make bench_n false in
  let side_stack = Array.make bench_n 0 in
  let arena_reprice =
    Test.make ~name:"arena-reprice"
      (Staged.stage (fun () ->
           Array.iteri
             (fun i (_, _, cap) -> R.set_arc_cap arena fwd.(i) cap)
             bench_edges;
           R.reset arena;
           ignore (Coign_flowgraph.Mincut.run arena arena_scratch ~s:0 ~t:1);
           R.min_cut_side_into arena ~s:0 ~seen:side ~stack:side_stack))
  in
  (* Session pricing with and without the memoized bucket-cost table:
     solving against a profile the session has already seen skips
     Net_profiler.compile and the per-size cost table entirely. *)
  let pd = Photodraw.app in
  let pd_sc = App.scenario pd "p_oldmsr" in
  let pd_image = Adps.instrument pd.App.app_image in
  let pd_image, _ = Adps.profile ~image:pd_image ~registry:pd.App.app_registry pd_sc.App.sc_run in
  let pd_session = Adps.analysis_session pd_image in
  let pd_net = Coign_netsim.Net_profiler.profile (Prng.create 11L) network in
  ignore (Analysis.Session.solve pd_session ~net:pd_net);
  let price_memo =
    Test.make ~name:"session-price-memo"
      (Staged.stage (fun () -> ignore (Analysis.Session.solve pd_session ~net:pd_net)))
  in
  let price_compile =
    Test.make ~name:"session-price-compile"
      (Staged.stage (fun () ->
           (* A derived profile is a fresh physical identity, so every
              run misses the memo and pays compile + cost table. *)
           ignore
             (Analysis.Session.solve pd_session
                ~net:(Coign_netsim.Net_profiler.degrade pd_net))))
  in
  let itype =
    Coign_com.Itype.declare "IBench"
      [
        Coign_idl.Idl_type.method_ ~ret:Coign_idl.Idl_type.Blob "m"
          [
            Coign_idl.Idl_type.param "a"
              (Coign_idl.Idl_type.Array
                 (Coign_idl.Idl_type.Struct
                    [ ("x", Coign_idl.Idl_type.Str); ("y", Coign_idl.Idl_type.Int32);
                      ("i", Coign_idl.Idl_type.Iface "IPeer") ]));
          ];
      ]
  in
  let arg =
    Coign_idl.Value.Arr
      (List.init 16 (fun i ->
           Coign_idl.Value.Struct
             [ ("x", Coign_idl.Value.Str (String.make 24 'x')); ("y", Coign_idl.Value.Int i);
               ("i", Coign_idl.Value.Iface_ref i) ]))
  in
  let profiling_informer =
    Test.make ~name:"profiling-informer"
      (Staged.stage (fun () ->
           ignore
             (Informer.measure_call itype ~meth:0 ~ins:[ arg ] ~outs:[ arg ]
                ~ret:(Coign_idl.Value.Blob 2_000))))
  in
  let distribution_informer =
    Test.make ~name:"distribution-informer"
      (Staged.stage (fun () ->
           ignore (Informer.outgoing_handles itype ~meth:0 ~outs:[ arg ] ~ret:Coign_idl.Value.Null)))
  in
  let stack =
    List.init 8 (fun i ->
        Frame.make ~inst:i ~cls:(Printf.sprintf "K%d" i) ~classification:i ~iface:"I"
          ~meth:"m")
  in
  let classifier_test kind =
    let t = Classifier.create kind in
    Test.make
      ~name:("classify-" ^ Classifier.kind_name kind)
      (Staged.stage (fun () -> ignore (Classifier.classify t ~cname:"D" ~stack)))
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        cut_test Coign_flowgraph.Mincut.Relabel_to_front;
        cut_test Coign_flowgraph.Mincut.Edmonds_karp;
        cut_test Coign_flowgraph.Mincut.Dinic;
        csr_build;
        arena_reprice;
        price_memo;
        price_compile;
        profiling_informer;
        distribution_informer;
        classifier_test Classifier.Ifcb;
        classifier_test Classifier.St;
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let t = Tablefmt.create [ ("Kernel", Tablefmt.Left); ("ns/run", Tablefmt.Right) ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Tablefmt.add_row t [ name; Tablefmt.cell_float ~decimals:1 est ])
    (List.sort compare !rows);
  print_string (Tablefmt.render t);
  add_json "micro"
    (Printf.sprintf "[%s]"
       (String.concat ", "
          (List.map
             (fun (name, est) ->
               Printf.sprintf "{\"kernel\": \"%s\", \"ns_per_run\": %.17g}"
                 (json_escape name) est)
             (List.sort compare !rows))));
  note
    "Expected shape: the exact lift-to-front algorithm is Theta(V^3) and trails\n\
     the blocking-flow baselines as graphs grow — affordable only because ICC\n\
     graphs have a few hundred classifications (why the paper could use an exact\n\
     two-way algorithm). The distribution informer is 1-2 orders of magnitude\n\
     cheaper than the profiling informer (the mechanism behind 85%% vs 3%%\n\
     runtime overhead).\n"

(* ------------------------------------------------------------------ *)
(* Extensions the paper anticipates                                    *)
(* ------------------------------------------------------------------ *)

let multiway () =
  section_header "Extension: Three-Machine Distribution (Benefits)"
    "Sec. 2 future work (multi-way cuts)";
  let app = Benefits.app in
  let sc = App.scenario app "b_vueone" in
  let classifier = Classifier.create Classifier.Ifcb in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  sc.App.sc_run ctx;
  Rte.uninstall rte;
  let icc = Rte.icc rte in
  let net = Coign_netsim.Net_profiler.profile (Prng.create 3L) network in
  (* Two-way baseline (client vs everything else). *)
  let constraints = Constraints.of_image app.App.app_image in
  let two_way = Analysis.choose ~classifier ~icc ~constraints ~net () in
  (* Three machines: front-end client, middle tier, database server. *)
  let pins cname =
    if String.equal cname "Benefits.ValidationRules" then
      (* A programmer security constraint (paper Sec. 4.3): validation
         must run on the trusted middle tier. *)
      Some "middle"
    else
      match
        Static_analysis.class_verdict
          (Coign_image.Binary_image.class_api_refs app.App.app_image cname)
      with
      | Static_analysis.Pin_client -> Some "client"
      | Static_analysis.Pin_server -> Some "database"
      | Static_analysis.Free -> None
  in
  let mw =
    Multiway_analysis.choose ~classifier ~icc
      ~machines:[ "client"; "middle"; "database" ] ~pins ~net ()
  in
  Printf.printf "two-way cut: %d classifications off the client, %.3f s predicted comm\n"
    two_way.Analysis.server_count (two_way.Analysis.predicted_comm_us /. 1e6);
  Printf.printf "three-way (isolation heuristic): %.3f s predicted comm\n"
    (mw.Multiway_analysis.predicted_comm_us /. 1e6);
  let t =
    Tablefmt.create [ ("Machine", Tablefmt.Left); ("Classifications", Tablefmt.Right) ]
  in
  List.iter
    (fun (m, n) -> Tablefmt.add_row t [ m; string_of_int n ])
    (Multiway_analysis.machine_histogram mw);
  print_string (Tablefmt.render t);
  let by_machine = Hashtbl.create 8 in
  Array.iteri
    (fun c m ->
      let cls = Classifier.class_of_classification classifier c in
      let key = (mw.Multiway_analysis.machines.(m), cls) in
      if not (Hashtbl.mem by_machine key) then Hashtbl.replace by_machine key ())
    mw.Multiway_analysis.assignment;
  List.iter
    (fun machine ->
      let classes =
        Hashtbl.fold (fun (m, cls) () acc -> if m = machine then cls :: acc else acc)
          by_machine []
        |> List.sort_uniq compare
      in
      Printf.printf "  %s: %s\n" machine (String.concat ", " classes))
    [ "client"; "middle"; "database" ];
  note
    "Expected shape: the ODBC gateway and the logic glued to its bulk row\n\
     traffic isolate on the database machine; the constrained validation\n\
     rules hold the middle tier; forms and caches serve the user from the\n\
     client — a 3-tier deployment the two-way engine had to collapse.\n"

let drift () =
  section_header "Extension: Usage-Drift Detection" "Sec. 6 (automatic re-profiling)";
  let app = Octarine.app in
  let classifier = Classifier.create Classifier.Ifcb in
  let profile_sc = App.scenario app "o_oldwp0" in
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  let rte = Rte.install_profiling ~classifier ctx in
  profile_sc.App.sc_run ctx;
  Rte.uninstall rte;
  let profile = Drift.of_icc (Rte.icc rte) in
  let observe sc_id =
    let sc = App.scenario app sc_id in
    let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
    let rte =
      Rte.install_distributed ~classifier
        ~config:
          {
            Rte.dc_factory_policy = Factory.All_client;
            dc_network = Coign_netsim.Network.loopback;
            dc_jitter = 0.;
            dc_seed = 1L;
            dc_faults = None;
            dc_retry = Coign_netsim.Fault.default_retry;
            dc_resilience = None;
            dc_fleet = None;
            dc_watch = None;
          }
        ctx
    in
    sc.App.sc_run ctx;
    Rte.uninstall rte;
    Drift.of_counts (Rte.call_counts rte)
  in
  Printf.printf "profiled scenario: o_oldwp0 (%d communicating pairs)\n"
    (Drift.pair_count profile);
  let t =
    Tablefmt.create
      [
        ("Observed usage", Tablefmt.Left); ("Similarity", Tablefmt.Right);
        ("Re-profile?", Tablefmt.Right);
      ]
  in
  List.iter
    (fun sc_id ->
      let observed = observe sc_id in
      let s = Drift.similarity profile observed in
      Tablefmt.add_row t
        [ sc_id; Tablefmt.cell_float s; (if Drift.drifted ~profile observed then "YES" else "no") ])
    [ "o_oldwp0"; "o_oldwp3"; "o_oldtb3"; "o_oldbth"; "o_newmus" ];
  print_string (Tablefmt.render t);
  note
    "Expected shape: running the profiled scenario scores ~1.0; a different\n\
     document type degrades the message-count signature and triggers the\n\
     silent re-profiling the paper proposes.\n"

let whatif () =
  section_header "Extension: Event-Log Replay" "Sec. 3.3 (log-driven simulation)";
  let app = Octarine.app in
  let sc = App.scenario app "o_oldwp7" in
  let classifier = Classifier.create Classifier.Ifcb in
  let events = Replay.record_scenario ~registry:app.App.app_registry ~classifier sc.App.sc_run in
  Printf.printf "recorded %d events from one %s run; replaying placements:\n"
    (List.length events) sc.App.sc_id;
  let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
  ignore ctx;
  let net_exact = Coign_netsim.Net_profiler.exact network in
  let constraints = Constraints.of_image app.App.app_image in
  (* Rebuild the ICC for the distribution from the same trace run. *)
  let icc = Icc.create () in
  List.iter
    (fun e ->
      match e with
      | Event.Interface_call
          { caller_classification; callee_classification; iface; remotable; request_bytes;
            reply_bytes; _ } ->
          Icc.record icc ~src:caller_classification ~dst:callee_classification ~iface
            ~remotable ~request:request_bytes ~reply:reply_bytes
      | _ -> ())
    events;
  let dist = Analysis.choose ~classifier ~icc ~constraints ~net:net_exact () in
  let t =
    Tablefmt.create
      [
        ("Placement", Tablefmt.Left); ("Comm (s)", Tablefmt.Right);
        ("Remote calls", Tablefmt.Right); ("Faults", Tablefmt.Right);
      ]
  in
  let try_placement name placement =
    let e = Replay.replay ~events ~placement ~network () in
    Tablefmt.add_row t
      [
        name;
        Tablefmt.cell_float (e.Replay.re_comm_us /. 1e6);
        string_of_int e.Replay.re_remote_calls;
        string_of_int (List.length e.Replay.re_violations);
      ]
  in
  try_placement "all on client (files remote)" (fun c ->
      if
        c >= 0
        && c < Classifier.classification_count classifier
        && String.equal
             (Classifier.class_of_classification classifier c)
             Common.file_server_class_name
      then Constraints.Server
      else Constraints.Client);
  try_placement "Coign-chosen cut" (Analysis.location_of dist);
  try_placement "naive: every odd classification remote" (fun c ->
      if c mod 2 = 1 then Constraints.Server else Constraints.Client);
  print_string (Tablefmt.render t);
  note
    "Replay prices any placement in microseconds without re-running the\n\
     application, and flags placements that would fault on non-remotable\n\
     interfaces — the log-driven simulation use the paper mentions.\n"

let faultsim_bench () =
  section_header "Extension: Fault-Grid Simulation" "ISSUE 3 (deterministic fault injection)";
  let app = Octarine.app in
  let sc = App.scenario app "o_oldwp0" in
  let image = Adps.instrument app.App.app_image in
  let image, _stats = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
  let net = Coign_netsim.Net_profiler.profile (Prng.create 0xC01L) network in
  let image, _dist = Adps.analyze ~image ~net () in
  let grid =
    Faultsim.run ~seed:0x5EEDL ~drop_rates:[ 0.; 0.05; 0.1 ] ~partitions_us:[ 0.; 50_000. ]
      ~image ~registry:app.App.app_registry ~network sc.App.sc_run
  in
  Format.printf "@[<v>%a@]@?" Faultsim.pp_text grid;
  add_json "faultsim" (Faultsim.to_json grid);
  note
    "Expected shape: the zero-fault row reproduces the clean distributed run\n\
     bit for bit; raising the drop rate buys retries and fault time but the\n\
     retry policy keeps every call completing; an early partition degrades\n\
     forwarded instantiations to the client instead of failing the run.\n"

let obs_bench () =
  section_header "Extension: Observability Overhead"
    "ISSUE 4 (span tracing, metrics registry) acceptance criterion";
  let app = Octarine.app in
  let sc = App.scenario app "o_oldwp0" in
  let image = Adps.instrument app.App.app_image in
  let registry = app.App.app_registry in
  let time f =
    let reps = 3 in
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    ((match !result with Some r -> r | None -> assert false), !best)
  in
  (* Each rep profiles the same freshly-instrumented image, so reps are
     identical work; [time] keeps the best of three. *)
  let bare_stats, bare_s = time (fun () -> snd (Adps.profile ~image ~registry sc.App.sc_run)) in
  let null_stats, null_s =
    time (fun () ->
        let tracer = Coign_obs.Trace.create Coign_obs.Trace.null_sink in
        let metrics = Coign_obs.Metrics.registry () in
        snd (Adps.profile ~tracer ~metrics ~image ~registry sc.App.sc_run))
  in
  let (collected_stats, spans), collect_s =
    time (fun () ->
        let sink, spans = Coign_obs.Trace.collector () in
        let tracer = Coign_obs.Trace.create sink in
        let metrics = Coign_obs.Metrics.registry () in
        let stats = snd (Adps.profile ~tracer ~metrics ~image ~registry sc.App.sc_run) in
        (stats, List.length (spans ())))
  in
  let identical = bare_stats = null_stats && bare_stats = collected_stats in
  let overhead_null = (null_s -. bare_s) /. bare_s in
  let overhead_collect = (collect_s -. bare_s) /. bare_s in
  let t =
    Tablefmt.create
      [ ("Configuration", Tablefmt.Left); ("Best (ms)", Tablefmt.Right);
        ("Overhead", Tablefmt.Right) ]
  in
  Tablefmt.add_row t
    [ "no observability"; Tablefmt.cell_float (bare_s *. 1e3); "-" ];
  Tablefmt.add_row t
    [ "tracer (null sink) + metrics"; Tablefmt.cell_float (null_s *. 1e3);
      Tablefmt.cell_pct overhead_null ];
  Tablefmt.add_row t
    [ "tracer (collector) + metrics"; Tablefmt.cell_float (collect_s *. 1e3);
      Tablefmt.cell_pct overhead_collect ];
  print_string (Tablefmt.render t);
  Printf.printf "%d intercepted calls, %d spans; profile stats %s\n"
    bare_stats.Adps.ps_calls spans
    (if identical then "identical with and without observability"
     else "DIFFER under observability (BUG)");
  add_json "obs"
    (Printf.sprintf
       "{\"app\": \"octarine\", \"scenario\": \"%s\", \"calls\": %d, \"spans\": %d, \
        \"bare_s\": %.17g, \"null_obs_s\": %.17g, \"collector_obs_s\": %.17g, \
        \"overhead_null\": %.17g, \"overhead_collector\": %.17g, \"identical\": %b}"
       (json_escape sc.App.sc_id) bare_stats.Adps.ps_calls spans bare_s null_s collect_s
       overhead_null overhead_collect identical);
  if not identical then exit 3;
  note
    "Expected shape: the RTE branches once per interception on the optional\n\
     instruments, so the null-sink configuration costs a few percent at most;\n\
     collecting every span in memory adds allocation but never changes the\n\
     profile — the zero-cost-when-off guarantee, measured.\n"

let resilience_bench () =
  section_header "Extension: Adaptive Resilience"
    "ISSUE 5 (circuit breaker + fallback ladder) acceptance criterion";
  let netw = Coign_netsim.Network.atm_155 in
  let partition = { Coign_netsim.Fault.zero with fs_partitions_us = [ (50_000., 550_000.) ] } in
  let time f =
    let reps = 3 in
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    ((match !result with Some r -> r | None -> assert false), !best)
  in
  let apps = [ (Octarine.app, "o_oldwp0"); (Photodraw.app, "p_oldmsr"); (Benefits.app, "b_vueone") ] in
  let rows =
    List.map
      (fun (app, sc_id) ->
        let sc = App.scenario app sc_id in
        let registry = app.App.app_registry in
        let image = Adps.instrument app.App.app_image in
        let image, _ = Adps.profile ~image ~registry sc.App.sc_run in
        let net = Coign_netsim.Net_profiler.exact netw in
        let ladder = Adps.fallback_ladder ~image ~net () in
        let image, _ = Adps.analyze ~image ~net () in
        let resilience = Rte.resilience ladder in
        let run ?faults resilience =
          Adps.execute ?faults ?resilience ~image ~registry ~network:netw sc.App.sc_run
        in
        (* Zero-fault: a resilience policy that only ever sees successes
           must cost nothing and change nothing. *)
        let bare, bare_s = time (fun () -> run None) in
        let watched, watched_s = time (fun () -> run (Some resilience)) in
        let identical = bare = watched in
        let overhead = (watched_s -. bare_s) /. bare_s in
        (* Sustained mid-run partition: retry-only vs failover. *)
        let base_p = run ~faults:partition None in
        let res_p = run ~faults:partition (Some resilience) in
        let avail s =
          if bare.Adps.es_intercepted = 0 then 1.
          else
            Float.min 1.
              (float_of_int s.Adps.es_intercepted /. float_of_int bare.Adps.es_intercepted)
        in
        ( app.App.app_name, sc_id, Fallback.rung_count ladder, bare.Adps.es_intercepted,
          identical, overhead, avail base_p, avail res_p, base_p.Adps.es_completed,
          res_p.Adps.es_completed, res_p.Adps.es_failovers ))
      apps
  in
  let t =
    Tablefmt.create
      [
        ("App / scenario", Tablefmt.Left); ("Rungs", Tablefmt.Right);
        ("Calls", Tablefmt.Right); ("Overhead", Tablefmt.Right);
        ("Avail (retry)", Tablefmt.Right); ("Avail (resil)", Tablefmt.Right);
        ("Done r/R", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (name, sc_id, rungs, calls, _, overhead, ab, ar, db, dr, _) ->
      Tablefmt.add_row t
        [
          Printf.sprintf "%s %s" name sc_id; string_of_int rungs; string_of_int calls;
          Tablefmt.cell_pct overhead; Tablefmt.cell_float ~decimals:3 ab;
          Tablefmt.cell_float ~decimals:3 ar;
          Printf.sprintf "%s/%s" (if db then "yes" else "cut") (if dr then "yes" else "cut");
        ])
    rows;
  print_string (Tablefmt.render t);
  let all_identical = List.for_all (fun (_, _, _, _, id, _, _, _, _, _, _) -> id) rows in
  let improved =
    List.length (List.filter (fun (_, _, _, _, _, _, ab, ar, _, _, _) -> ar > ab) rows)
  in
  Printf.printf
    "zero-fault runs %s with the policy attached; availability under a 500 ms\n\
     partition strictly improves on %d of %d applications.\n"
    (if all_identical then "bit-identical" else "DIFFER (BUG)")
    improved (List.length rows);
  add_json "resilience"
    (Printf.sprintf "[%s]"
       (String.concat ", "
          (List.map
             (fun (name, sc_id, rungs, calls, id, overhead, ab, ar, db, dr, fo) ->
               Printf.sprintf
                 "{\"app\": \"%s\", \"scenario\": \"%s\", \"rungs\": %d, \"calls\": %d, \
                  \"identical\": %b, \"overhead\": %.17g, \"availability_retry\": %.17g, \
                  \"availability_resilient\": %.17g, \"completed_retry\": %b, \
                  \"completed_resilient\": %b, \"failovers\": %d}"
                 (json_escape name) (json_escape sc_id) rungs calls id overhead ab ar db dr
                 fo)
             rows)));
  if not all_identical then exit 3;
  if improved < 2 then exit 3;
  note
    "Expected shape: the breaker branch is one option check per forwarded call,\n\
     so the attached-policy overhead is noise; under the partition the retry-only\n\
     baseline is cut short at its first exhausted call while failover onto the\n\
     fallback ladder keeps the scenario running to completion.\n"

let verify_bench () =
  section_header "Extension: Exhaustive Distribution Checker"
    "ISSUE 6 (explicit-state exploration of failover interleavings) acceptance criterion";
  let module V = Coign_verify in
  let time f =
    let reps = 3 in
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    ((match !result with Some r -> r | None -> assert false), !best)
  in
  let apps = [ (Octarine.app, "o_oldwp0"); (Photodraw.app, "p_oldmsr"); (Benefits.app, "b_bigone") ] in
  let rows =
    List.map
      (fun (app, sc_id) ->
        let sc = App.scenario app sc_id in
        let image = Adps.instrument app.App.app_image in
        let image, _ = Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run in
        let classifier, icc =
          match Adps.load_profile image with Some p -> p | None -> assert false
        in
        let session = Adps.analysis_session image in
        let net = Coign_netsim.Net_profiler.exact network in
        let ladder = Adps.fallback_ladder ~image ~net () in
        let truth = Fallback.migration_safety session in
        let model = V.Model.build ~classifier ~icc ~ladder ~truth () in
        let result, seconds = time (fun () -> V.Explore.run model) in
        let stats = result.V.Explore.r_stats in
        let reduction =
          float_of_int model.V.Model.m_classifications
          /. float_of_int (V.Model.group_count model)
        in
        let states_per_s = float_of_int stats.V.Explore.sr_states /. seconds in
        ( app.App.app_name, sc_id, model, stats, List.length result.V.Explore.r_violations,
          reduction, seconds, states_per_s ))
      apps
  in
  let t =
    Tablefmt.create
      [
        ("App / scenario", Tablefmt.Left); ("Classes", Tablefmt.Right);
        ("Groups", Tablefmt.Right); ("Edges", Tablefmt.Right); ("Rungs", Tablefmt.Right);
        ("States", Tablefmt.Right); ("Trans", Tablefmt.Right); ("Reduction", Tablefmt.Right);
        ("States/s", Tablefmt.Right);
      ]
  in
  let module E = Coign_verify.Explore in
  List.iter
    (fun (name, sc_id, model, stats, _, reduction, _, states_per_s) ->
      Tablefmt.add_row t
        [
          Printf.sprintf "%s %s" name sc_id;
          string_of_int model.V.Model.m_classifications;
          string_of_int (V.Model.group_count model);
          string_of_int (Array.length model.V.Model.m_edges);
          string_of_int (Array.length model.V.Model.m_rung_names);
          string_of_int stats.E.sr_states; string_of_int stats.E.sr_transitions;
          Printf.sprintf "%.1fx" reduction; Printf.sprintf "%.0f" states_per_s;
        ])
    rows;
  print_string (Tablefmt.render t);
  let all_complete = List.for_all (fun (_, _, _, s, _, _, _, _) -> s.E.sr_complete) rows in
  let all_clean = List.for_all (fun (_, _, _, _, v, _, _, _) -> v = 0) rows in
  Printf.printf
    "exploration %s at the default depth; %s CG008/CG009 violations on any ladder.\n"
    (if all_complete then "is exhaustive" else "was TRUNCATED (BUG)")
    (if all_clean then "no" else "FOUND (BUG)");
  add_json "verify"
    (Printf.sprintf "[%s]"
       (String.concat ", "
          (List.map
             (fun (name, sc_id, model, stats, viols, reduction, seconds, states_per_s) ->
               Printf.sprintf
                 "{\"app\": \"%s\", \"scenario\": \"%s\", \"classifications\": %d, \
                  \"groups\": %d, \"edges\": %d, \"rungs\": %d, \"states\": %d, \
                  \"transitions\": %d, \"dedup_hits\": %d, \"depth\": %d, \
                  \"complete\": %b, \"violations\": %d, \"reduction\": %.17g, \
                  \"seconds\": %.17g, \"states_per_s\": %.17g}"
                 (json_escape name) (json_escape sc_id) model.V.Model.m_classifications
                 (V.Model.group_count model)
                 (Array.length model.V.Model.m_edges)
                 (Array.length model.V.Model.m_rung_names)
                 stats.E.sr_states stats.E.sr_transitions stats.E.sr_dedup_hits
                 stats.E.sr_depth stats.E.sr_complete viols reduction seconds states_per_s)
             rows)));
  if not (all_complete && all_clean) then exit 3;
  note
    "Expected shape: symmetry groups cut the alphabet well below the raw\n\
     classification count, so each ladder's full interleaving closure is a\n\
     few dozen states and explores in well under a second.\n"

(* ------------------------------------------------------------------ *)
(* Open-loop load: queueing-aware latency percentiles                  *)
(* ------------------------------------------------------------------ *)

let load_bench () =
  section_header "Open-Loop Load: Queueing-Aware Latency Percentiles"
    "ISSUE 8 acceptance; Sec. 4 scenarios driven as live traffic";
  let net = Coign_netsim.Net_profiler.profile (Prng.create 7L) network in
  let build (app : App.t) scenarios =
    let image = Adps.instrument app.App.app_image in
    let image =
      List.fold_left
        (fun image id ->
          let sc = App.scenario app id in
          fst (Adps.profile ~image ~registry:app.App.app_registry sc.App.sc_run))
        image scenarios
    in
    fst (Adps.analyze ~image ~net ())
  in
  (* Single-session queueing-off runs must reproduce the Replay
     estimator bit for bit — the load layer adds queueing on top of
     the same cost model, it does not fork it. *)
  let identity_gate (app : App.t) image scenarios =
    let classifier, dist = Option.get (Adps.load_distribution image) in
    List.for_all
      (fun id ->
        let sc = App.scenario app id in
        let events =
          Replay.record_scenario ~registry:app.App.app_registry ~classifier
            sc.App.sc_run
        in
        let est = Replay.what_if ~events ~distribution:dist ~network () in
        let r =
          Loadsim.run ~queueing:false ~sessions:1 ~scenarios:[ id ]
            ~arrival:(Loadsim.Poisson 1.) ~seed:1L ~image ~network ()
        in
        Int64.bits_of_float r.Loadsim.r_p50_us
        = Int64.bits_of_float est.Replay.re_comm_us)
      scenarios
  in
  let sessions = 1_500 in
  let apps =
    [
      ("octarine", [ "o_oldwp0"; "o_oldtb0" ], [ 0.5; 1.0; 2.0 ]);
      ("ingest", [ "i_strm1"; "i_replay" ], [ 5.0; 10.0; 15.0 ]);
    ]
  in
  let t =
    Tablefmt.create
      [
        ("App", Tablefmt.Left); ("Rate (/s)", Tablefmt.Right);
        ("p50 (ms)", Tablefmt.Right); ("p95 (ms)", Tablefmt.Right);
        ("p99 (ms)", Tablefmt.Right); ("Thruput (/s)", Tablefmt.Right);
        ("Avail", Tablefmt.Right); ("Link util", Tablefmt.Right);
      ]
  in
  let rows = ref [] in
  let all_monotone = ref true in
  let all_identical = ref true in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  List.iter
    (fun (name, scenarios, rates) ->
      let app = Suite.find_app name in
      let image = build app scenarios in
      let identical = identity_gate app image scenarios in
      all_identical := !all_identical && identical;
      let results =
        List.map
          (fun rate ->
            ( rate,
              Loadsim.run ~sessions ~scenarios ~arrival:(Loadsim.Poisson rate)
                ~seed:0x5EEDL ~image ~network () ))
          rates
      in
      all_monotone :=
        !all_monotone
        && strictly_increasing (List.map (fun (_, r) -> r.Loadsim.r_p99_us) results);
      List.iter
        (fun (rate, r) ->
          let comm_us =
            List.fold_left
              (fun acc c ->
                acc
                +. (float_of_int c.Loadsim.cs_sessions *. c.Loadsim.cs_comm_us))
              0. r.Loadsim.r_classes
            /. float_of_int r.Loadsim.r_sessions
          in
          Tablefmt.add_row t
            [
              name; Tablefmt.cell_float ~decimals:1 rate;
              Tablefmt.cell_float (r.Loadsim.r_p50_us /. 1e3);
              Tablefmt.cell_float (r.Loadsim.r_p95_us /. 1e3);
              Tablefmt.cell_float (r.Loadsim.r_p99_us /. 1e3);
              Tablefmt.cell_float (r.Loadsim.r_throughput_per_s);
              Tablefmt.cell_float ~decimals:4 r.Loadsim.r_availability;
              Tablefmt.cell_float ~decimals:3 r.Loadsim.r_link_util;
            ];
          rows :=
            Printf.sprintf
              "{\"app\": \"%s\", \"rate\": %.17g, \"sessions\": %d, \"p50_us\": \
               %.17g, \"p95_us\": %.17g, \"p99_us\": %.17g, \"throughput_per_s\": \
               %.17g, \"availability\": %.17g, \"comm_us\": %.17g, \"link_util\": \
               %.17g, \"identical\": %b}"
              (json_escape name) rate r.Loadsim.r_sessions r.Loadsim.r_p50_us
              r.Loadsim.r_p95_us r.Loadsim.r_p99_us r.Loadsim.r_throughput_per_s
              r.Loadsim.r_availability comm_us r.Loadsim.r_link_util identical
            :: !rows)
        results)
    apps;
  print_string (Tablefmt.render t);
  Printf.printf "queueing-off identity vs Replay: %s; p99 %s with arrival rate.\n"
    (if !all_identical then "bit-exact" else "BROKEN (BUG)")
    (if !all_monotone then "strictly increasing" else "NOT MONOTONE (BUG)");
  add_json "load" (Printf.sprintf "[%s]" (String.concat ", " (List.rev !rows)));
  if not (!all_identical && !all_monotone) then exit 3;
  note
    "Expected shape: tail latency rises strictly with offered load as FIFO\n\
     queues build at the server host and link, while the unloaded single-session\n\
     cost stays exactly the Replay estimate — queueing is layered on the same\n\
     cost model, not a second pricing path.\n"

(* ------------------------------------------------------------------ *)
(* Online re-partitioning: the drift watch closed loop                 *)
(* ------------------------------------------------------------------ *)

let watch_bench () =
  section_header "Online Re-Partitioning: Drift Watch Closed Loop"
    "ISSUE 9 acceptance; Sec. 6 (relocating components during execution)";
  let app = Suite.find_app "octarine" in
  let image = Adps.instrument app.App.app_image in
  let profiled, _ =
    Adps.profile ~image ~registry:app.App.app_registry
      (App.scenario app "o_oldwp0").App.sc_run
  in
  let session = Adps.analysis_session profiled in
  let net = Coign_netsim.Net_profiler.exact network in
  (* Re-cut latency: one online decision is a scaled re-pricing pass
     plus a min-cut on the session's arena — stage 1 never rebuilds. *)
  let n = Icc_graph.pair_count (Analysis.Session.graph session) in
  let scale =
    {
      Icc_graph.sc_messages =
        Array.init n (fun i -> 0.5 +. (float_of_int (i mod 7) /. 4.));
      sc_bytes = Array.init n (fun i -> 0.25 +. (float_of_int (i mod 5) /. 2.));
    }
  in
  ignore (Analysis.Session.solve session ~scale ~net);
  let reps = 200 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Analysis.Session.solve session ~scale ~net)
  done;
  let recut_us = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6 in
  Printf.printf "scaled re-cut through the session: %.1f us over %d pairs\n"
    recut_us n;
  (* Quiet-watch identity and overhead: a threshold-0 watch can never
     fire (similarity lives in [0,1]), so observation, sampling, and
     drift checks must leave the virtual clock bit-identical; the wall
     clock pays only the tap and window arithmetic. *)
  let dist_image, _ = Adps.analyze_with ~session ~image:profiled ~net () in
  let classifier, dist = Option.get (Adps.load_distribution dist_image) in
  let deploy watched =
    let ctx = Coign_com.Runtime.create_ctx app.App.app_registry in
    let wc =
      if watched then
        Some
          (Rte.watch ~threshold:0. ~net (Analysis.Session.copy session))
      else None
    in
    let rte =
      Rte.install_distributed ~classifier
        ~config:
          {
            Rte.dc_factory_policy = Factory.By_classification dist;
            dc_network = network;
            dc_jitter = 0.;
            dc_seed = 0x5EEDL;
            dc_faults = None;
            dc_retry = Coign_netsim.Fault.default_retry;
            dc_resilience = None;
            dc_fleet = None;
            dc_watch = wc;
          }
        ctx
    in
    (App.scenario app "o_oldwp0").App.sc_run ctx;
    Rte.uninstall rte;
    Rte.comm_us rte
  in
  ignore (deploy false);
  ignore (deploy true);
  let overhead_reps = 5 in
  let bare_comm = ref 0. and watched_comm = ref 0. in
  let bare_s = ref 0. and watched_s = ref 0. in
  for _ = 1 to overhead_reps do
    let t0 = Unix.gettimeofday () in
    bare_comm := deploy false;
    bare_s := !bare_s +. Unix.gettimeofday () -. t0;
    let t0 = Unix.gettimeofday () in
    watched_comm := deploy true;
    watched_s := !watched_s +. Unix.gettimeofday () -. t0
  done;
  let identical =
    Int64.bits_of_float !bare_comm = Int64.bits_of_float !watched_comm
  in
  let overhead = (!watched_s -. !bare_s) /. !bare_s in
  Printf.printf "quiet watch vs bare RTE: comm %s, wall overhead %+.1f%%\n"
    (if identical then "bit-exact" else "DIVERGED (BUG)")
    (overhead *. 100.);
  (* The closed loop: octarine profiled on wp0, usage shifts to wp7.
     The watch must detect, re-cut live, and land on the oracle's
     placement with steady-state communication reduced. *)
  let r =
    Coign_sim.Watchsim.run
      ~image:(Adps.instrument app.App.app_image)
      ~network ~profile_mix:[ "o_oldwp0" ]
      ~phases:
        [
          [ "o_oldwp0" ];
          [ "o_oldwp7"; "o_oldwp7"; "o_oldwp7" ];
          [ "o_oldwp7"; "o_oldwp7"; "o_oldwp7" ];
        ]
      ()
  in
  let open Coign_sim.Watchsim in
  let t =
    Tablefmt.create
      [
        ("Phase", Tablefmt.Left); ("Stale (ms)", Tablefmt.Right);
        ("Watched (ms)", Tablefmt.Right);
      ]
  in
  List.iteri
    (fun i ph ->
      Tablefmt.add_row t
        [
          Printf.sprintf "%d: %s" (i + 1) (String.concat " " ph.ph_scenarios);
          Tablefmt.cell_float (ph.ph_stale_comm_us /. 1e3);
          Tablefmt.cell_float (ph.ph_watched_comm_us /. 1e3);
        ])
    r.w_phase_stats;
  print_string (Tablefmt.render t);
  Printf.printf
    "detections %d, repartitions %d (%d instances migrated); cut %d -> %d \
     servers (oracle %d)\n"
    r.w_drift_detections r.w_repartitions r.w_migrations
    r.w_stale.Analysis.server_count r.w_final_servers
    r.w_oracle.Analysis.server_count;
  let steady_reduced = r.w_steady_watched_us < r.w_steady_stale_us in
  Printf.printf "converged to oracle cut: %s; steady state %.3f -> %.3f ms\n"
    (if r.w_converged then "yes" else "NO (BUG)")
    (r.w_steady_stale_us /. 1e3)
    (r.w_steady_watched_us /. 1e3);
  add_json "watch"
    (Printf.sprintf
       "{\"recut_us\": %.17g, \"pairs\": %d, \"quiet_identical\": %b, \
        \"watch_overhead_frac\": %.17g, \"converged\": %b, \"detections\": %d, \
        \"repartitions\": %d, \"migrations\": %d, \"steady_stale_us\": %.17g, \
        \"steady_watched_us\": %.17g, \"stale_servers\": %d, \
        \"final_servers\": %d, \"oracle_servers\": %d, \"tap_offered\": %d, \
        \"tap_sampled\": %d}"
       recut_us n identical overhead r.w_converged r.w_drift_detections
       r.w_repartitions r.w_migrations r.w_steady_stale_us r.w_steady_watched_us
       r.w_stale.Analysis.server_count r.w_final_servers
       r.w_oracle.Analysis.server_count r.w_tap_offered r.w_tap_sampled);
  if not (identical && r.w_converged && steady_reduced) then exit 3;
  note
    "Expected shape: a re-cut costs microseconds (one pricing pass plus one\n\
     min-cut on the warm arena), the quiet watch never moves the virtual\n\
     clock, and on the wp0 -> wp7 shift the watch walks the placement to the\n\
     offline oracle's cut, cutting steady-state communication severalfold.\n"

(* ------------------------------------------------------------------ *)

let fleet_bench () =
  section_header "Extension: Replicated Server Fleet"
    "ISSUE 10 (k-way pool, replica failover, pool-elastic ladder) acceptance criterion";
  let netw = Coign_netsim.Network.ethernet_10 in
  let apps =
    [ (Octarine.app, "o_oldwp0"); (Photodraw.app, "p_oldmsr"); (Benefits.app, "b_vueone") ]
  in
  let grids =
    List.map
      (fun (app, sc_id) ->
        let sc = App.scenario app sc_id in
        let registry = app.App.app_registry in
        let image = Adps.instrument app.App.app_image in
        let image, _ = Adps.profile ~image ~registry sc.App.sc_run in
        let grid = Fleetsim.run ~seed:0x5EEDL ~image ~registry ~network:netw sc.App.sc_run in
        (app.App.app_name, sc_id, grid))
      apps
  in
  let t =
    Tablefmt.create
      [
        ("App / scenario", Tablefmt.Left); ("Pool", Tablefmt.Right);
        ("Serve (ladder)", Tablefmt.Right); ("Serve (fleet)", Tablefmt.Right);
        ("Promos", Tablefmt.Right); ("Splits", Tablefmt.Right); ("Resizes", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (name, sc_id, grid) ->
      List.iter
        (fun c ->
          if c.Fleetsim.fr_regime = Fleetsim.Crash && c.Fleetsim.fr_pool > 1 then
            Tablefmt.add_row t
              [
                Printf.sprintf "%s %s" name sc_id; string_of_int c.Fleetsim.fr_pool;
                Tablefmt.cell_float ~decimals:3 (Fleetsim.served grid c.Fleetsim.fr_baseline);
                Tablefmt.cell_float ~decimals:3 (Fleetsim.served grid c.Fleetsim.fr_fleet);
                string_of_int c.Fleetsim.fr_fleet_stats.Rte.fs_promotions;
                string_of_int c.Fleetsim.fr_fleet_stats.Rte.fs_splits;
                string_of_int c.Fleetsim.fr_fleet_stats.Rte.fs_resizes;
              ])
        grid.Fleetsim.fg_cells)
    grids;
  print_string (Tablefmt.render t);
  (* Gate 1: every pool-of-one cell is bit-identical to the two-host
     resilience path — the install-time identity rewrite did fire. *)
  let all_identical =
    List.for_all
      (fun (_, _, grid) ->
        List.for_all
          (fun c -> c.Fleetsim.fr_pool <> 1 || c.Fleetsim.fr_identical = Some true)
          grid.Fleetsim.fg_cells)
      grids
  in
  (* Gate 2: under the single-host crash, every replicated pool serves
     strictly more of its remote calls than the two-host ladder, on at
     least two of the three applications. *)
  let improved =
    List.length
      (List.filter
         (fun (_, _, grid) ->
           let crash =
             List.filter
               (fun c -> c.Fleetsim.fr_regime = Fleetsim.Crash && c.Fleetsim.fr_pool > 1)
               grid.Fleetsim.fg_cells
           in
           crash <> []
           && List.for_all
                (fun c ->
                  Fleetsim.served grid c.Fleetsim.fr_fleet
                  > Fleetsim.served grid c.Fleetsim.fr_baseline)
                crash)
         grids)
  in
  Printf.printf
    "pool-of-one runs %s with the two-host ladder; under a 500 ms single-host\n\
     crash the replicated pool serves strictly more remote calls on %d of %d\n\
     applications.\n"
    (if all_identical then "bit-identical" else "DIFFER (BUG)")
    improved (List.length grids);
  add_json "fleet"
    (Printf.sprintf
       "{\"all_pool1_identical\": %b, \"crash_improved_apps\": %d, \"apps\": [%s]}"
       all_identical improved
       (String.concat ", "
          (List.map
             (fun (name, sc_id, grid) ->
               Printf.sprintf "{\"app\": \"%s\", \"scenario\": \"%s\", \"grid\": %s}"
                 (json_escape name) (json_escape sc_id) (Fleetsim.to_json grid))
             grids)));
  if not all_identical then exit 3;
  if improved < 2 then exit 3;
  note
    "Expected shape: a pool of one is rewritten at install time into the plain\n\
     resilience configuration, so those rows tie bit for bit; wider pools ride\n\
     out the crash by promoting the dead host's shards onto standing replicas,\n\
     so the fleet keeps serving remotely while the ladder has already retreated\n\
     to its all-client rung.\n"

let sections =
  [
    ("table1", table1); ("table2", table2); ("table3", table3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("fig8", fig8); ("table4", table4);
    ("table5", table5); ("overhead", overhead); ("adaptive", adaptive);
    ("multiway", multiway); ("drift", drift); ("whatif", whatif);
    ("session", session_bench); ("micro", micro); ("faultsim", faultsim_bench);
    ("obs", obs_bench); ("resilience", resilience_bench); ("verify", verify_bench);
    ("load", load_bench); ("watch", watch_bench); ("fleet", fleet_bench);
  ]

let () =
  let rec split_json acc = function
    | [] -> (List.rev acc, None)
    | [ "--json" ] ->
        Printf.eprintf "--json needs a file argument\n";
        exit 2
    | "--json" :: path :: rest -> (List.rev acc @ rest, Some path)
    | arg :: rest -> split_json (arg :: acc) rest
  in
  let args, json_path = split_json [] (List.tl (Array.to_list Sys.argv)) in
  let requested = match args with [] -> List.map fst sections | args -> args in
  Printf.printf
    "Coign ADPS experiment harness — reproduces the evaluation of\n\
     \"The Coign Automatic Distributed Partitioning System\" (OSDI '99).\n\
     Network model: %s.\n"
    network.Coign_netsim.Network.net_name;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (known: %s)\n" name
            (String.concat ", " (List.map fst sections));
          exit 2)
    requested;
  match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc "{\n  \"harness\": \"coign-bench\",\n  \"network\": \"%s\",\n"
        (json_escape network.Coign_netsim.Network.net_name);
      Printf.fprintf oc "  \"sections\": {\n%s\n  }\n}\n"
        (String.concat ",\n"
           (List.rev_map
              (fun (name, fragment) ->
                Printf.sprintf "    \"%s\": %s" (json_escape name) fragment)
              !json_sections));
      close_out oc;
      Printf.printf "\nwrote machine-readable results to %s\n" path
