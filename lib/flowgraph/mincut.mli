(** Minimum s-t cuts.

    Coign "employs the lift-to-front minimum-cut graph-cutting
    algorithm to choose a distribution with minimal communication
    time" (paper §2) — i.e. the relabel-to-front push-relabel max-flow
    algorithm of CLR ch. 27, with the min cut read off the final
    residual graph. The [Relabel_to_front] slot is implemented as FIFO
    push-relabel with the gap heuristic and periodic global relabeling
    (the textbook discharge order was pathologically slow on analysis
    graphs); because it runs to a genuine maximum flow, cut values and
    minimal source sides are identical to the textbook algorithm's. We
    also keep two classic baselines (Edmonds-Karp and Dinic) and an
    exponential brute-force enumerator: the algorithms must agree on
    cut value, which is one of the library's strongest correctness
    properties. *)

type algorithm = Relabel_to_front | Edmonds_karp | Dinic

val all_algorithms : algorithm list
val algorithm_name : algorithm -> string

type cut = {
  value : int;                (** total capacity crossing the cut *)
  source_side : bool array;   (** [source_side.(v)] iff [v] lands with [s] *)
}

type scratch
(** Preallocated solver workspace sized for one residual arena. A
    session allocates one scratch next to its arena and reuses both
    across every solve; one scratch must not be used from two domains
    at once. *)

val scratch : Flow_network.Residual.g -> scratch

val run :
  ?algorithm:algorithm ->
  Flow_network.Residual.g -> scratch -> s:int -> t:int -> int
(** Run a max-flow algorithm in place on the arena's {e current}
    residual state (callers re-solving after {!Flow_network.Residual.set_arc_cap}
    must {!Flow_network.Residual.reset} first) and return the flow
    value. Allocates nothing: all working state lives in [scratch].
    The minimal source side can then be read off with
    {!Flow_network.Residual.min_cut_side_into}. Raises
    [Invalid_argument] on bad terminals or a scratch sized for a
    different arena. *)

val max_flow : algorithm -> Flow_network.t -> s:int -> t:int -> int
(** Max-flow value only. *)

val min_cut : ?algorithm:algorithm -> Flow_network.t -> s:int -> t:int -> cut
(** Minimum s-t cut (default algorithm: [Relabel_to_front], as in the
    paper). Raises [Invalid_argument] if [s = t] or either is out of
    range. *)

val cut_edges : Flow_network.t -> cut -> (int * int * int) list
(** The network edges crossing from the source side to the sink side,
    with their capacities; their sum equals [cut.value]. *)

val brute_force_min_cut : Flow_network.t -> s:int -> t:int -> cut
(** Exhaustive minimum cut for verification; exponential, refuses
    graphs with more than 22 nodes. *)
