module R = Flow_network.Residual

type algorithm = Relabel_to_front | Edmonds_karp | Dinic

let all_algorithms = [ Relabel_to_front; Edmonds_karp; Dinic ]

let algorithm_name = function
  | Relabel_to_front -> "relabel-to-front"
  | Edmonds_karp -> "edmonds-karp"
  | Dinic -> "dinic"

type cut = { value : int; source_side : bool array }

(* Per-arena solver scratch. One record serves all three algorithms by
   reusing the same flat arrays under different roles, so a session can
   solve repeatedly without allocating. *)
type scratch = {
  sc_n : int;
  sc_h : int array;    (* heights (push-relabel) / levels (Dinic) / BFS parents (EK) *)
  sc_e : int array;    (* excess (push-relabel) *)
  sc_cur : int array;  (* current-arc offset / Dinic iterators / EK parent arcs *)
  sc_cnt : int array;  (* height occupancy counts, length 2n+3 *)
  sc_q : int array;    (* FIFO ring, length n+1 *)
  sc_inq : bool array; (* queued? *)
}

let scratch g =
  let n = R.node_count g in
  {
    sc_n = n;
    sc_h = Array.make n 0;
    sc_e = Array.make n 0;
    sc_cur = Array.make n 0;
    sc_cnt = Array.make ((2 * n) + 3) 0;
    sc_q = Array.make (n + 1) 0;
    sc_inq = Array.make n false;
  }

(* --- Push-relabel (the paper's "lift-to-front" slot) -------------- *)

(* Coign names the CLR lift-to-front discharge order; that order turned
   out pathologically slow on the analysis graphs (~60x Dinic), so the
   [Relabel_to_front] slot now runs FIFO push-relabel with the gap
   heuristic and periodic exact-distance global relabeling. It runs to
   completion (every non-terminal excess drained back to the source),
   producing a genuine maximum flow — and every maximum flow induces
   the same minimal source side in the residual graph, so cut values
   and chosen placements are unchanged, a property the test suite
   checks against Dinic, Edmonds-Karp and brute force. *)
let push_relabel g sc ~s ~t =
  let n = R.node_count g in
  let h = sc.sc_h and e = sc.sc_e and cur = sc.sc_cur in
  let cnt = sc.sc_cnt and q = sc.sc_q and inq = sc.sc_inq in
  let qcap = Array.length q in
  let qhead = ref 0 and qtail = ref 0 and qlen = ref 0 in
  let qpush v =
    q.(!qtail) <- v;
    qtail := (!qtail + 1) mod qcap;
    incr qlen
  in
  let qpop () =
    let v = q.(!qhead) in
    qhead := (!qhead + 1) mod qcap;
    decr qlen;
    v
  in
  let qclear () =
    qhead := 0;
    qtail := 0;
    qlen := 0
  in
  let activate v =
    if v <> s && v <> t && (not inq.(v)) && e.(v) > 0 then begin
      inq.(v) <- true;
      qpush v
    end
  in
  let unreachable = (2 * n) + 1 in
  (* Exact-distance heights: BFS from t labels distance-to-sink; nodes
     cut off from t (their excess must return) get n + distance-to-s
     from a second BFS. Heights only ever grow under this update (BFS
     distance >= current height while the labeling is valid), which
     keeps the standard validity invariant — in particular a node that
     ever pushed into s sits at height >= n+1 forever and can never be
     relabeled below the source. Rebuilds counts, current-arc pointers
     and the active queue. *)
  let global_relabel () =
    Array.fill cnt 0 ((2 * n) + 3) 0;
    for v = 0 to n - 1 do
      h.(v) <- unreachable;
      cur.(v) <- 0;
      inq.(v) <- false
    done;
    qclear ();
    let bfs root height =
      h.(root) <- height;
      qpush root;
      while !qlen > 0 do
        let v = qpop () in
        let hv = h.(v) in
        for a = R.arc_start g v to R.arc_stop g v - 1 do
          let u = R.arc_dst g a in
          (* u can step to v iff the arc u->v (our arc's pair) has
             residual capacity. *)
          if u <> s && h.(u) = unreachable && R.residual g (R.arc_pair g a) > 0
          then begin
            h.(u) <- hv + 1;
            qpush u
          end
        done
      done
    in
    bfs t 0;
    h.(s) <- unreachable;
    bfs s n;
    for v = 0 to n - 1 do
      cnt.(h.(v)) <- cnt.(h.(v)) + 1
    done;
    for v = 0 to n - 1 do
      activate v
    done
  in
  (* The gap heuristic: when no node sits at height [k] any more, no
     excess above [k] can ever descend through it to reach t — lift the
     whole stranded band straight past n. *)
  let gap k =
    for v = 0 to n - 1 do
      if v <> s && h.(v) > k && h.(v) < n then begin
        cnt.(h.(v)) <- cnt.(h.(v)) - 1;
        h.(v) <- n + 1;
        cnt.(n + 1) <- cnt.(n + 1) + 1;
        cur.(v) <- 0
      end
    done
  in
  Array.fill e 0 n 0;
  Array.fill inq 0 n false;
  (* Saturate all arcs out of s. *)
  for a = R.arc_start g s to R.arc_stop g s - 1 do
    let c = R.residual g a in
    if c > 0 then begin
      R.push g a c;
      e.(R.arc_dst g a) <- e.(R.arc_dst g a) + c;
      e.(s) <- e.(s) - c
    end
  done;
  global_relabel ();
  let gr_threshold = (6 * n) + (R.arc_count g / 2) + 64 in
  let gr_work = ref 0 in
  while !qlen > 0 do
    let u = qpop () in
    inq.(u) <- false;
    let base = R.arc_start g u in
    let stop = R.arc_stop g u in
    let deg = stop - base in
    let discharging = ref true in
    while !discharging && e.(u) > 0 do
      if cur.(u) >= deg then begin
        (* Relabel: u still has excess, so a residual arc out of it
           must exist (the flow that got here can retreat). *)
        let old = h.(u) in
        let min_h = ref max_int in
        for a = base to stop - 1 do
          if R.residual g a > 0 then min_h := min !min_h h.(R.arc_dst g a)
        done;
        cnt.(old) <- cnt.(old) - 1;
        h.(u) <- !min_h + 1;
        cnt.(h.(u)) <- cnt.(h.(u)) + 1;
        cur.(u) <- 0;
        if old < n && cnt.(old) = 0 then gap old;
        gr_work := !gr_work + deg + 8;
        if !gr_work >= gr_threshold then begin
          gr_work := 0;
          global_relabel ();
          (* u was re-queued by the rebuild if it still has excess. *)
          discharging := false
        end
      end
      else begin
        let a = base + cur.(u) in
        let dst = R.arc_dst g a in
        let r = R.residual g a in
        if r > 0 && h.(u) = h.(dst) + 1 then begin
          let amount = min e.(u) r in
          R.push g a amount;
          e.(u) <- e.(u) - amount;
          e.(dst) <- e.(dst) + amount;
          activate dst
        end
        else cur.(u) <- cur.(u) + 1
      end
    done
  done;
  e.(t)

(* --- Edmonds-Karp (BFS augmenting paths) -------------------------- *)

let edmonds_karp g sc ~s ~t =
  let n = R.node_count g in
  let parent_node = sc.sc_h and parent_arc = sc.sc_cur in
  let q = sc.sc_q in
  let qcap = Array.length q in
  let total = ref 0 in
  let augmenting = ref true in
  while !augmenting do
    Array.fill parent_node 0 n (-1);
    let qhead = ref 0 and qtail = ref 0 in
    q.(!qtail) <- s;
    qtail := (!qtail + 1) mod qcap;
    parent_node.(s) <- s;
    let found = ref false in
    while (not !found) && !qhead <> !qtail do
      let v = q.(!qhead) in
      qhead := (!qhead + 1) mod qcap;
      for a = R.arc_start g v to R.arc_stop g v - 1 do
        let dst = R.arc_dst g a in
        if R.residual g a > 0 && parent_node.(dst) < 0 then begin
          parent_node.(dst) <- v;
          parent_arc.(dst) <- a;
          if dst = t then found := true
          else begin
            q.(!qtail) <- dst;
            qtail := (!qtail + 1) mod qcap
          end
        end
      done
    done;
    if !found then begin
      (* Bottleneck along the path, then apply it. *)
      let b = ref max_int in
      let v = ref t in
      while !v <> s do
        b := min !b (R.residual g parent_arc.(!v));
        v := parent_node.(!v)
      done;
      v := t;
      while !v <> s do
        R.push g parent_arc.(!v) !b;
        v := parent_node.(!v)
      done;
      total := !total + !b
    end
    else augmenting := false
  done;
  !total

(* --- Dinic (level graph + blocking flow) -------------------------- *)

let dinic g sc ~s ~t =
  let n = R.node_count g in
  let level = sc.sc_h and iter = sc.sc_cur in
  let q = sc.sc_q in
  let qcap = Array.length q in
  let bfs () =
    Array.fill level 0 n (-1);
    let qhead = ref 0 and qtail = ref 0 in
    q.(!qtail) <- s;
    qtail := (!qtail + 1) mod qcap;
    level.(s) <- 0;
    while !qhead <> !qtail do
      let v = q.(!qhead) in
      qhead := (!qhead + 1) mod qcap;
      for a = R.arc_start g v to R.arc_stop g v - 1 do
        let dst = R.arc_dst g a in
        if R.residual g a > 0 && level.(dst) < 0 then begin
          level.(dst) <- level.(v) + 1;
          q.(!qtail) <- dst;
          qtail := (!qtail + 1) mod qcap
        end
      done
    done;
    level.(t) >= 0
  in
  let rec dfs v limit =
    if v = t then limit
    else begin
      let base = R.arc_start g v in
      let stop = R.arc_stop g v in
      let pushed = ref 0 in
      while !pushed = 0 && base + iter.(v) < stop do
        let arc = base + iter.(v) in
        let dst = R.arc_dst g arc in
        if R.residual g arc > 0 && level.(dst) = level.(v) + 1 then begin
          let got = dfs dst (min limit (R.residual g arc)) in
          if got > 0 then begin
            R.push g arc got;
            pushed := got
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !pushed
    end
  in
  let total = ref 0 in
  while bfs () do
    Array.fill iter 0 n 0;
    let rec pump () =
      let f = dfs s max_int in
      if f > 0 then begin
        total := !total + f;
        pump ()
      end
    in
    pump ()
  done;
  !total

(* ------------------------------------------------------------------ *)

let check_terminals_n n ~s ~t =
  if s < 0 || s >= n || t < 0 || t >= n then invalid_arg "Mincut: terminal out of range";
  if s = t then invalid_arg "Mincut: s = t"

let check_terminals net ~s ~t = check_terminals_n (Flow_network.node_count net) ~s ~t

let run ?(algorithm = Relabel_to_front) g sc ~s ~t =
  check_terminals_n (R.node_count g) ~s ~t;
  if sc.sc_n <> R.node_count g then
    invalid_arg "Mincut.run: scratch/arena size mismatch";
  match algorithm with
  | Relabel_to_front -> push_relabel g sc ~s ~t
  | Edmonds_karp -> edmonds_karp g sc ~s ~t
  | Dinic -> dinic g sc ~s ~t

let max_flow alg net ~s ~t =
  check_terminals net ~s ~t;
  let g = R.of_network net in
  run ~algorithm:alg g (scratch g) ~s ~t

let min_cut ?(algorithm = Relabel_to_front) net ~s ~t =
  check_terminals net ~s ~t;
  let g = R.of_network net in
  let value = run ~algorithm g (scratch g) ~s ~t in
  { value; source_side = R.min_cut_side g ~s }

let cut_edges net cut =
  List.filter
    (fun (src, dst, _) -> cut.source_side.(src) && not cut.source_side.(dst))
    (Flow_network.edges net)

let brute_force_min_cut net ~s ~t =
  check_terminals net ~s ~t;
  let n = Flow_network.node_count net in
  if n > 22 then invalid_arg "Mincut.brute_force_min_cut: too many nodes";
  let es = Flow_network.edges net in
  let best_value = ref max_int and best_mask = ref 0 in
  (* Enumerate source-side sets containing s and excluding t. *)
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl s) <> 0 && mask land (1 lsl t) = 0 then begin
      let v =
        List.fold_left
          (fun acc (src, dst, cap) ->
            if mask land (1 lsl src) <> 0 && mask land (1 lsl dst) = 0 then acc + cap
            else acc)
          0 es
      in
      if v < !best_value then begin
        best_value := v;
        best_mask := mask
      end
    end
  done;
  { value = !best_value; source_side = Array.init n (fun v -> !best_mask land (1 lsl v) <> 0) }
