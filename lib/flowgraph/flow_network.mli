(** Capacitated directed graphs for minimum-cut partitioning.

    The analysis engine turns an application's inter-component
    communication profile into one of these: a node per instance
    classification plus two terminals (client, server); an edge's
    capacity is the communication time that would be paid if the cut
    separated its endpoints. Capacities are integers (nanoseconds in
    the analysis engine) because the push-relabel family needs exact
    arithmetic. *)

type t

val infinity_cap : int
(** Effectively-infinite capacity: used to pin a node to a terminal
    (absolute location constraints) and to forbid separating the
    endpoints of a non-remotable interface. Chosen small enough that
    summing millions of such edges cannot overflow. *)

val create : n:int -> t
(** A graph with nodes [0 .. n-1] and no edges. *)

val node_count : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Add capacity [cap >= 0] to the directed edge [src -> dst]; parallel
    additions accumulate, saturating at [infinity_cap]. Self-loops are
    ignored (they can never be cut). *)

val add_undirected : t -> int -> int -> cap:int -> unit
(** Capacity in both directions, as for symmetric communication cost. *)

val set_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Replace the capacity of [src -> dst] outright (no accumulation),
    clamped at [infinity_cap]. [cap = 0] removes the edge, so a graph
    repriced through [set_edge] has exactly the same edge set as one
    built fresh with {!add_edge} — zero-cost pairs are absent from
    both. This is the capacity-reset primitive that lets the analysis
    engine reuse one network across many pricing/cut rounds instead of
    rebuilding it per network profile. Self-loops are ignored. *)

val set_undirected : t -> int -> int -> cap:int -> unit
(** {!set_edge} in both directions. *)

val edge_cap : t -> src:int -> dst:int -> int
(** Current accumulated capacity (0 when absent). *)

val edges : t -> (int * int * int) list
(** All [(src, dst, cap)] with [cap > 0], deterministic order. *)

val edge_count : t -> int

val copy : t -> t

(** {1 Residual form}

    Max-flow algorithms run on a compiled adjacency structure with
    paired residual arcs. *)

module Residual : sig
  type g

  val of_network : t -> g
  val node_count : g -> int

  val arc_count : g -> int

  val iter_out : g -> int -> (arc:int -> dst:int -> cap:int -> unit) -> unit
  (** Iterate arcs leaving a node with their residual capacities. *)

  val arc_dst : g -> int -> int
  val residual : g -> int -> int
  val push : g -> int -> int -> unit
  (** [push g arc amount] moves [amount] along [arc] (decreasing its
      residual, increasing its pair's). *)

  val first_arc : g -> int -> int
  (** Index of the first arc out of a node, or [-1]. Arcs of a node are
      [first_arc .. first_arc + out_degree - 1]. *)

  val out_degree : g -> int -> int

  val min_cut_side : g -> s:int -> bool array
  (** After a max flow has been established: the source side of the
      minimum cut, i.e. nodes reachable from [s] in the residual
      graph. *)

  val flow_value : g -> t -> s:int -> int
  (** Net flow out of [s], measured against original capacities in the
      network the residual was compiled from. *)
end
