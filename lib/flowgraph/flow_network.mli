(** Capacitated directed graphs for minimum-cut partitioning.

    The analysis engine turns an application's inter-component
    communication profile into one of these: a node per instance
    classification plus two terminals (client, server); an edge's
    capacity is the communication time that would be paid if the cut
    separated its endpoints. Capacities are integers (nanoseconds in
    the analysis engine) because the push-relabel family needs exact
    arithmetic. *)

type t

val infinity_cap : int
(** Effectively-infinite capacity: used to pin a node to a terminal
    (absolute location constraints) and to forbid separating the
    endpoints of a non-remotable interface. Chosen small enough that
    summing millions of such edges cannot overflow. *)

val create : n:int -> t
(** A graph with nodes [0 .. n-1] and no edges. *)

val node_count : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Add capacity [cap >= 0] to the directed edge [src -> dst]; parallel
    additions accumulate, saturating at [infinity_cap]. Self-loops are
    ignored (they can never be cut). *)

val add_undirected : t -> int -> int -> cap:int -> unit
(** Capacity in both directions, as for symmetric communication cost. *)

val set_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Replace the capacity of [src -> dst] outright (no accumulation),
    clamped at [infinity_cap]. [cap = 0] removes the edge, so a graph
    repriced through [set_edge] has exactly the same edge set as one
    built fresh with {!add_edge} — zero-cost pairs are absent from
    both. This is the capacity-reset primitive that lets the analysis
    engine reuse one network across many pricing/cut rounds instead of
    rebuilding it per network profile. Self-loops are ignored. *)

val set_undirected : t -> int -> int -> cap:int -> unit
(** {!set_edge} in both directions. *)

val edge_cap : t -> src:int -> dst:int -> int
(** Current accumulated capacity (0 when absent). *)

val edges : t -> (int * int * int) list
(** All [(src, dst, cap)] with [cap > 0], deterministic order. *)

val edge_count : t -> int

val copy : t -> t

(** {1 Residual form}

    Max-flow algorithms run on a compiled adjacency structure with
    paired residual arcs, laid out as a CSR (compressed sparse row)
    arena of flat int arrays. The arena is reusable across pricing
    rounds: base capacities live in their own array, {!Residual.reset}
    blits them back into the residual array, and
    {!Residual.set_arc_cap} rewrites a single arc's base capacity in
    place — so a reprice/recut round allocates nothing. *)

module Residual : sig
  type g

  val of_network : t -> g

  val of_edges : n:int -> (int * int * int) array -> g * int array
  (** Compile an arena over nodes [0 .. n-1] from an explicit directed
      edge array [(src, dst, cap)]. Edges must be distinct directed
      pairs with [src <> dst] and [cap >= 0]; zero-capacity edges are
      allowed and inert until {!set_arc_cap} raises them — this is how
      a session arena pre-allocates slots for every potential traffic
      pair. Arc layout follows input order, so passing the sorted
      {!edges} list reproduces {!of_network} exactly. Also returns the
      forward arc index of each input edge, so callers can rewrite
      capacities later without searching. *)

  val node_count : g -> int

  val arc_count : g -> int

  val reset : g -> unit
  (** Restore every residual capacity to its base capacity (one blit);
      run before re-solving on rewritten capacities. *)

  val set_arc_cap : g -> int -> int -> unit
  (** [set_arc_cap g arc cap] rewrites the base capacity of [arc].
      Takes effect at the next {!reset}. *)

  val base_cap : g -> int -> int

  val copy : g -> g
  (** An independent arena sharing the immutable layout arrays
      (destinations, pairs, offsets) but owning its own capacity and
      residual arrays — safe to solve from another domain. *)

  val iter_out : g -> int -> (arc:int -> dst:int -> cap:int -> unit) -> unit
  (** Iterate arcs leaving a node with their residual capacities. *)

  val arc_dst : g -> int -> int

  val arc_pair : g -> int -> int
  (** The paired reverse arc of an arc. *)

  val residual : g -> int -> int
  val push : g -> int -> int -> unit
  (** [push g arc amount] moves [amount] along [arc] (decreasing its
      residual, increasing its pair's). *)

  val first_arc : g -> int -> int
  (** Index of the first arc out of a node, or [-1]. Arcs of a node are
      [first_arc .. first_arc + out_degree - 1]. *)

  val arc_start : g -> int -> int
  val arc_stop : g -> int -> int
  (** Arcs of node [v] are [arc_start v .. arc_stop v - 1]; unlike
      {!first_arc} this is well-defined (an empty range) for isolated
      nodes, which suits tight solver loops. *)

  val out_degree : g -> int -> int

  val min_cut_side : g -> s:int -> bool array
  (** After a max flow has been established: the source side of the
      minimum cut, i.e. nodes reachable from [s] in the residual
      graph. *)

  val min_cut_side_into : g -> s:int -> seen:bool array -> stack:int array -> unit
  (** Allocation-free {!min_cut_side}: writes the source side into
      [seen] using [stack] as DFS scratch. Both arrays must hold at
      least {!node_count} elements. *)

  val flow_value : g -> t -> s:int -> int
  (** Net flow out of [s], measured against original capacities in the
      network the residual was compiled from. *)
end
