let infinity_cap = max_int / 1024

type t = { n : int; caps : (int, int) Hashtbl.t (* key = src * n + dst *) }

let create ~n =
  if n < 0 then invalid_arg "Flow_network.create: negative size";
  { n; caps = Hashtbl.create 64 }

let node_count t = t.n

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Flow_network.%s: node %d" name v)

let key t src dst = (src * t.n) + dst

let add_edge t ~src ~dst ~cap =
  check_node t src "add_edge";
  check_node t dst "add_edge";
  if cap < 0 then invalid_arg "Flow_network.add_edge: negative capacity";
  if src <> dst && cap > 0 then begin
    let k = key t src dst in
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.caps k) in
    Hashtbl.replace t.caps k (min infinity_cap (cur + cap))
  end

let add_undirected t a b ~cap =
  add_edge t ~src:a ~dst:b ~cap;
  add_edge t ~src:b ~dst:a ~cap

let set_edge t ~src ~dst ~cap =
  check_node t src "set_edge";
  check_node t dst "set_edge";
  if cap < 0 then invalid_arg "Flow_network.set_edge: negative capacity";
  if src <> dst then begin
    let k = key t src dst in
    if cap = 0 then Hashtbl.remove t.caps k
    else Hashtbl.replace t.caps k (min infinity_cap cap)
  end

let set_undirected t a b ~cap =
  set_edge t ~src:a ~dst:b ~cap;
  set_edge t ~src:b ~dst:a ~cap

let edge_cap t ~src ~dst =
  check_node t src "edge_cap";
  check_node t dst "edge_cap";
  Option.value ~default:0 (Hashtbl.find_opt t.caps (key t src dst))

let edges t =
  Hashtbl.fold (fun k cap acc -> (k / t.n, k mod t.n, cap) :: acc) t.caps []
  |> List.sort compare

let edge_count t = Hashtbl.length t.caps

let copy t = { n = t.n; caps = Hashtbl.copy t.caps }

module Residual = struct
  (* Forward-star layout: each node's arcs occupy a contiguous slot
     range; [pair.(a)] is the reverse arc of [a]. Forward arcs carry
     the edge capacity, reverse arcs start at zero. *)
  type g = {
    rn : int;
    arc_to : int array;
    arc_res : int array;      (* residual capacity, mutated by push *)
    arc_orig : int array;     (* capacity at compile time *)
    pair : int array;
    node_first : int array;   (* length rn + 1; arcs of v are
                                 node_first.(v) .. node_first.(v+1)-1 *)
  }

  let of_network t =
    let es = edges t in
    let m = List.length es in
    let degree = Array.make (t.n + 1) 0 in
    List.iter
      (fun (src, dst, _) ->
        degree.(src) <- degree.(src) + 1;
        degree.(dst) <- degree.(dst) + 1)
      es;
    let node_first = Array.make (t.n + 1) 0 in
    for v = 1 to t.n do
      node_first.(v) <- node_first.(v - 1) + degree.(v - 1)
    done;
    let fill = Array.make t.n 0 in
    let arc_to = Array.make (2 * m) 0 in
    let arc_res = Array.make (2 * m) 0 in
    let pair = Array.make (2 * m) 0 in
    List.iter
      (fun (src, dst, cap) ->
        let a = node_first.(src) + fill.(src) in
        fill.(src) <- fill.(src) + 1;
        let b = node_first.(dst) + fill.(dst) in
        fill.(dst) <- fill.(dst) + 1;
        arc_to.(a) <- dst;
        arc_res.(a) <- cap;
        arc_to.(b) <- src;
        arc_res.(b) <- 0;
        pair.(a) <- b;
        pair.(b) <- a)
      es;
    { rn = t.n; arc_to; arc_res; arc_orig = Array.copy arc_res; pair; node_first }

  let node_count g = g.rn
  let arc_count g = Array.length g.arc_to

  let out_degree g v = g.node_first.(v + 1) - g.node_first.(v)

  let first_arc g v = if out_degree g v = 0 then -1 else g.node_first.(v)

  let iter_out g v f =
    for a = g.node_first.(v) to g.node_first.(v + 1) - 1 do
      f ~arc:a ~dst:g.arc_to.(a) ~cap:g.arc_res.(a)
    done

  let arc_dst g a = g.arc_to.(a)
  let residual g a = g.arc_res.(a)

  let push g a amount =
    assert (amount >= 0 && amount <= g.arc_res.(a));
    g.arc_res.(a) <- g.arc_res.(a) - amount;
    let p = g.pair.(a) in
    g.arc_res.(p) <- g.arc_res.(p) + amount

  let min_cut_side g ~s =
    let seen = Array.make g.rn false in
    let stack = ref [ s ] in
    seen.(s) <- true;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          iter_out g v (fun ~arc:_ ~dst ~cap ->
              if cap > 0 && not seen.(dst) then begin
                seen.(dst) <- true;
                stack := dst :: !stack
              end)
    done;
    seen

  let flow_value g _net ~s =
    (* Net flow out of s: for each arc leaving s, (orig - residual) is
       the flow it carries (negative when the arc absorbed return
       flow). *)
    let total = ref 0 in
    iter_out g s (fun ~arc ~dst:_ ~cap:_ ->
        total := !total + (g.arc_orig.(arc) - g.arc_res.(arc)));
    !total
end
