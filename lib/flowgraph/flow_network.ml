let infinity_cap = max_int / 1024

type t = { n : int; caps : (int, int) Hashtbl.t (* key = src * n + dst *) }

let create ~n =
  if n < 0 then invalid_arg "Flow_network.create: negative size";
  { n; caps = Hashtbl.create 64 }

let node_count t = t.n

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Flow_network.%s: node %d" name v)

let key t src dst = (src * t.n) + dst

let add_edge t ~src ~dst ~cap =
  check_node t src "add_edge";
  check_node t dst "add_edge";
  if cap < 0 then invalid_arg "Flow_network.add_edge: negative capacity";
  if src <> dst && cap > 0 then begin
    let k = key t src dst in
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.caps k) in
    Hashtbl.replace t.caps k (min infinity_cap (cur + cap))
  end

let add_undirected t a b ~cap =
  add_edge t ~src:a ~dst:b ~cap;
  add_edge t ~src:b ~dst:a ~cap

let set_edge t ~src ~dst ~cap =
  check_node t src "set_edge";
  check_node t dst "set_edge";
  if cap < 0 then invalid_arg "Flow_network.set_edge: negative capacity";
  if src <> dst then begin
    let k = key t src dst in
    if cap = 0 then Hashtbl.remove t.caps k
    else Hashtbl.replace t.caps k (min infinity_cap cap)
  end

let set_undirected t a b ~cap =
  set_edge t ~src:a ~dst:b ~cap;
  set_edge t ~src:b ~dst:a ~cap

let edge_cap t ~src ~dst =
  check_node t src "edge_cap";
  check_node t dst "edge_cap";
  Option.value ~default:0 (Hashtbl.find_opt t.caps (key t src dst))

let edges t =
  Hashtbl.fold (fun k cap acc -> (k / t.n, k mod t.n, cap) :: acc) t.caps []
  |> List.sort compare

let edge_count t = Hashtbl.length t.caps

let copy t = { n = t.n; caps = Hashtbl.copy t.caps }

module Residual = struct
  (* Forward-star CSR arena: each node's arcs occupy a contiguous slot
     range of the flat int arrays; [pair.(a)] is the reverse arc of
     [a]. Forward arcs carry the edge capacity, reverse arcs start at
     zero. The arena is reusable: [arc_cap] holds base capacities that
     [set_arc_cap] rewrites and [reset] blits back into [arc_res], so a
     pricing round touches no heap beyond these preallocated arrays. *)
  type g = {
    rn : int;
    arc_to : int array;
    arc_res : int array;      (* residual capacity, mutated by push *)
    arc_cap : int array;      (* base capacity; reset restores res from it *)
    pair : int array;
    node_first : int array;   (* length rn + 1; arcs of v are
                                 node_first.(v) .. node_first.(v+1)-1 *)
  }

  let of_edges ~n edges =
    let m = Array.length edges in
    let degree = Array.make (n + 1) 0 in
    Array.iter
      (fun (src, dst, _) ->
        degree.(src) <- degree.(src) + 1;
        degree.(dst) <- degree.(dst) + 1)
      edges;
    let node_first = Array.make (n + 1) 0 in
    for v = 1 to n do
      node_first.(v) <- node_first.(v - 1) + degree.(v - 1)
    done;
    let fill = Array.make (max 1 n) 0 in
    let arc_to = Array.make (2 * m) 0 in
    let arc_cap = Array.make (2 * m) 0 in
    let pair = Array.make (2 * m) 0 in
    let fwd = Array.make m 0 in
    Array.iteri
      (fun i (src, dst, cap) ->
        let a = node_first.(src) + fill.(src) in
        fill.(src) <- fill.(src) + 1;
        let b = node_first.(dst) + fill.(dst) in
        fill.(dst) <- fill.(dst) + 1;
        arc_to.(a) <- dst;
        arc_cap.(a) <- cap;
        arc_to.(b) <- src;
        arc_cap.(b) <- 0;
        pair.(a) <- b;
        pair.(b) <- a;
        fwd.(i) <- a)
      edges;
    ({ rn = n; arc_to; arc_res = Array.copy arc_cap; arc_cap; pair; node_first }, fwd)

  let of_network t = fst (of_edges ~n:t.n (Array.of_list (edges t)))

  let node_count g = g.rn
  let arc_count g = Array.length g.arc_to

  let out_degree g v = g.node_first.(v + 1) - g.node_first.(v)

  let first_arc g v = if out_degree g v = 0 then -1 else g.node_first.(v)

  let arc_start g v = g.node_first.(v)
  let arc_stop g v = g.node_first.(v + 1)

  let iter_out g v f =
    for a = g.node_first.(v) to g.node_first.(v + 1) - 1 do
      f ~arc:a ~dst:g.arc_to.(a) ~cap:g.arc_res.(a)
    done

  let arc_dst g a = g.arc_to.(a)
  let arc_pair g a = g.pair.(a)
  let residual g a = g.arc_res.(a)
  let base_cap g a = g.arc_cap.(a)

  let set_arc_cap g a cap = g.arc_cap.(a) <- cap

  let reset g = Array.blit g.arc_cap 0 g.arc_res 0 (Array.length g.arc_cap)

  let copy g =
    { g with arc_res = Array.copy g.arc_res; arc_cap = Array.copy g.arc_cap }

  let push g a amount =
    assert (amount >= 0 && amount <= g.arc_res.(a));
    g.arc_res.(a) <- g.arc_res.(a) - amount;
    let p = g.pair.(a) in
    g.arc_res.(p) <- g.arc_res.(p) + amount

  let min_cut_side_into g ~s ~seen ~stack =
    Array.fill seen 0 g.rn false;
    seen.(s) <- true;
    stack.(0) <- s;
    let top = ref 1 in
    while !top > 0 do
      decr top;
      let v = stack.(!top) in
      for a = g.node_first.(v) to g.node_first.(v + 1) - 1 do
        let u = g.arc_to.(a) in
        if g.arc_res.(a) > 0 && not seen.(u) then begin
          seen.(u) <- true;
          stack.(!top) <- u;
          incr top
        end
      done
    done

  let min_cut_side g ~s =
    let seen = Array.make g.rn false in
    let stack = Array.make (max 1 g.rn) 0 in
    min_cut_side_into g ~s ~seen ~stack;
    seen

  let flow_value g _net ~s =
    (* Net flow out of s: for each arc leaving s, (cap - residual) is
       the flow it carries (negative when the arc absorbed return
       flow). *)
    let total = ref 0 in
    iter_out g s (fun ~arc ~dst:_ ~cap:_ ->
        total := !total + (g.arc_cap.(arc) - g.arc_res.(arc)));
    !total
end
