open Coign_util

type t = {
  profiled_name : string;
  observations : (int * float) array;
  fixed_us : float;
  per_byte_us : float;
}

(* Representative sizes: one per exponential bucket up to 1 MiB,
   matching the summaries the profiling logger produces. *)
let representative_sizes =
  let rec go acc size = if size > 1 lsl 20 then List.rev acc else go (size :: acc) (size * 2) in
  go [ 16 ] 64

let profile ?(samples_per_size = 7) ?(noise = 0.02) rng net =
  if samples_per_size < 2 then invalid_arg "Net_profiler.profile: need >= 2 samples";
  let observations =
    List.concat_map
      (fun size ->
        List.init samples_per_size (fun _ ->
            let true_us = Network.message_us net ~bytes:size in
            let observed = Prng.gaussian rng ~mu:true_us ~sigma:(noise *. true_us) in
            (size, Float.max 0. observed)))
      representative_sizes
    |> Array.of_list
  in
  let points = Array.map (fun (b, us) -> (float_of_int b, us)) observations in
  let fixed_us, per_byte_us = Stats.linear_fit points in
  { profiled_name = net.Network.net_name; observations; fixed_us; per_byte_us }

(* Mean observed time per representative size, ascending. *)
let size_means t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (size, us) ->
      let sum, n = Option.value ~default:(0., 0) (Hashtbl.find_opt tbl size) in
      Hashtbl.replace tbl size (sum +. us, n + 1))
    t.observations;
  Hashtbl.fold (fun size (sum, n) acc -> (size, sum /. float_of_int n) :: acc) tbl []
  |> List.sort compare |> Array.of_list

let predict_with t means ~bytes =
  let line () = t.fixed_us +. (t.per_byte_us *. float_of_int bytes) in
  let m = Array.length means in
  let v =
    if m < 2 then line ()
    else begin
      let fb = float_of_int bytes in
      (* Interpolate between the bracketing representative sizes; use
         the global fit's slope beyond the sampled range. *)
      let smallest, t_small = means.(0) in
      let largest, t_large = means.(m - 1) in
      if bytes <= smallest then t_small -. (t.per_byte_us *. float_of_int (smallest - bytes))
      else if bytes >= largest then t_large +. (t.per_byte_us *. float_of_int (bytes - largest))
      else begin
        let rec bracket i =
          let s1, t1 = means.(i) and s2, t2 = means.(i + 1) in
          if bytes <= s2 then
            t1 +. ((t2 -. t1) *. (fb -. float_of_int s1) /. float_of_int (s2 - s1))
          else bracket (i + 1)
        in
        bracket 0
      end
    end
  in
  Float.max 0. v

let predict_us t ~bytes = predict_with t (size_means t) ~bytes

type compiled = { c_profile : t; c_means : (int * float) array }

let compile t = { c_profile = t; c_means = size_means t }

let predict_compiled_us c ~bytes = predict_with c.c_profile c.c_means ~bytes

let predict_round_trip_us t ~request ~reply =
  predict_us t ~bytes:request +. predict_us t ~bytes:reply

let exact net =
  {
    profiled_name = net.Network.net_name;
    observations = [||];
    fixed_us = net.Network.proc_us +. net.Network.latency_us;
    per_byte_us = 8. /. net.Network.bandwidth_mbps;
  }

let pp ppf t =
  Format.fprintf ppf "profile of %s: %.1fus + %.4fus/byte (%d obs)" t.profiled_name
    t.fixed_us t.per_byte_us (Array.length t.observations)
