open Coign_util

type t = {
  profiled_name : string;
  observations : (int * float) array;
  fixed_us : float;
  per_byte_us : float;
}

(* Representative sizes: one per exponential bucket up to 1 MiB,
   matching the summaries the profiling logger produces. *)
let representative_sizes =
  let rec go acc size = if size > 1 lsl 20 then List.rev acc else go (size :: acc) (size * 2) in
  go [ 16 ] 64

let profile ?(samples_per_size = 7) ?(noise = 0.02) rng net =
  if samples_per_size < 2 then invalid_arg "Net_profiler.profile: need >= 2 samples";
  let observations =
    List.concat_map
      (fun size ->
        List.init samples_per_size (fun _ ->
            let true_us = Network.message_us net ~bytes:size in
            let observed = Prng.gaussian rng ~mu:true_us ~sigma:(noise *. true_us) in
            (size, Float.max 0. observed)))
      representative_sizes
    |> Array.of_list
  in
  let points = Array.map (fun (b, us) -> (float_of_int b, us)) observations in
  let fixed_us, per_byte_us = Stats.linear_fit points in
  { profiled_name = net.Network.net_name; observations; fixed_us; per_byte_us }

(* Mean observed time per representative size, ascending. *)
let size_means t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (size, us) ->
      let sum, n = Option.value ~default:(0., 0) (Hashtbl.find_opt tbl size) in
      Hashtbl.replace tbl size (sum +. us, n + 1))
    t.observations;
  Hashtbl.fold (fun size (sum, n) acc -> (size, sum /. float_of_int n) :: acc) tbl []
  |> List.sort compare |> Array.of_list

let predict_with t means ~bytes =
  let line () = t.fixed_us +. (t.per_byte_us *. float_of_int bytes) in
  let m = Array.length means in
  let v =
    if m < 2 then line ()
    else begin
      let fb = float_of_int bytes in
      (* Interpolate between the bracketing representative sizes; use
         the global fit's slope beyond the sampled range. *)
      let smallest, t_small = means.(0) in
      let largest, t_large = means.(m - 1) in
      if bytes <= smallest then t_small -. (t.per_byte_us *. float_of_int (smallest - bytes))
      else if bytes >= largest then t_large +. (t.per_byte_us *. float_of_int (bytes - largest))
      else begin
        let rec bracket i =
          let s1, t1 = means.(i) and s2, t2 = means.(i + 1) in
          if bytes <= s2 then
            t1 +. ((t2 -. t1) *. (fb -. float_of_int s1) /. float_of_int (s2 - s1))
          else bracket (i + 1)
        in
        bracket 0
      end
    end
  in
  Float.max 0. v

let predict_us t ~bytes = predict_with t (size_means t) ~bytes

type compiled = { c_profile : t; c_means : (int * float) array }

let compile t = { c_profile = t; c_means = size_means t }

let predict_compiled_us c ~bytes = predict_with c.c_profile c.c_means ~bytes

let predict_round_trip_us t ~request ~reply =
  predict_us t ~bytes:request +. predict_us t ~bytes:reply

let exact net =
  {
    profiled_name = net.Network.net_name;
    observations = [||];
    fixed_us = net.Network.proc_us +. net.Network.latency_us;
    per_byte_us = 8. /. net.Network.bandwidth_mbps;
  }

let pp ppf t =
  Format.fprintf ppf "profile of %s: %.1fus + %.4fus/byte (%d obs)" t.profiled_name
    t.fixed_us t.per_byte_us (Array.length t.observations)

(* Derived failure-mode profiles (consumed by the fallback ladder in
   coign_core). Each shifts every observation and the fitted intercept
   by a fixed per-message penalty: the per-byte slope is untouched, so
   chatty pairs grow more expensive relative to bulky ones. A uniform
   *scaling* would leave every min cut unchanged — only a shape change
   can move the fallback cut. *)
let penalize t ~suffix ~penalty_us =
  if not (penalty_us >= 0.) then
    invalid_arg "Net_profiler.penalize: negative penalty";
  {
    profiled_name = t.profiled_name ^ "+" ^ suffix;
    observations = Array.map (fun (b, us) -> (b, us +. penalty_us)) t.observations;
    fixed_us = t.fixed_us +. penalty_us;
    per_byte_us = t.per_byte_us;
  }

let degrade ?(drop_rate = 0.3) ?(retry = Fault.default_retry) t =
  if not (drop_rate >= 0. && drop_rate < 1.) then
    invalid_arg "Net_profiler.degrade: drop_rate outside [0, 1)";
  (* A round trip survives only when both legs do; every failed attempt
     costs a full timeout plus the base backoff before the retry. *)
  let p_fail = 1. -. ((1. -. drop_rate) ** 2.) in
  let expected_retries = p_fail /. (1. -. p_fail) in
  let penalty_us =
    expected_retries *. (retry.Fault.rp_timeout_us +. retry.Fault.rp_backoff_us)
  in
  penalize t ~suffix:(Printf.sprintf "lossy%g" drop_rate) ~penalty_us

let link_down ?(penalty_us = 1e7) t = penalize t ~suffix:"down" ~penalty_us
