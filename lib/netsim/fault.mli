(** Deterministic fault injection over a ground-truth {!Network}.

    The paper's distributed runtime assumes every cross-machine DCOM
    call completes; real deployments of the distributions Coign
    produces sit on lossy, partitionable networks. This module is the
    adversary: a PRNG-seeded fault model that decides, per message,
    whether the network drops it, delays it, or delivers it — plus the
    retry policy the distributed RTE uses to survive the answer.

    Determinism is the design constraint. A verdict is a {e pure
    function} of the model (seed + spec), the virtual send time, and
    the message size — no hidden generator state — so identical seeds
    give identical fault schedules regardless of evaluation order,
    domain count, or how many other concerns draw random numbers. *)

(** {1 Fault specification} *)

type spec = {
  fs_drop_rate : float;
      (** probability each message is lost in transit, in [\[0, 1\]] *)
  fs_spike_rate : float;
      (** probability each delivered message suffers a latency spike *)
  fs_spike_mean_us : float;
      (** mean of the exponential spike-duration distribution (µs) *)
  fs_partitions_us : (float * float) list;
      (** [\[start, stop)] windows of virtual time (µs) during which the
          network is partitioned: every message is dropped *)
  fs_crashes_us : (float * float) list;
      (** [\[crash, recovery)] windows during which the server is down:
          every message is dropped (same verdict as a partition, kept
          separate so schedules read as what they model) *)
}

val zero : spec
(** No faults: rates 0, no windows. A model built from [zero] delivers
    every message — by construction bit-identical to running without a
    model at all. *)

(** {1 The model} *)

type t

val make : seed:int64 -> spec -> t
(** Raises [Invalid_argument] if a rate is outside [\[0, 1\]] or a
    window has [stop < start]. The seed should be a dedicated stream of
    the run's master seed (see {!Coign_util.Prng.stream}), never the
    master seed itself. *)

val seed : t -> int64
val spec : t -> spec

type verdict =
  | Drop                (** lost; the sender times out *)
  | Delay of float      (** delivered after an extra spike (µs) *)
  | Deliver             (** delivered at nominal network speed *)

val verdict : t -> at_us:float -> bytes:int -> verdict
(** The network's ruling on one message sent at virtual time [at_us].
    Pure: evaluating it twice — or from different domains — gives the
    same answer. *)

(** {1 Retry policy} *)

type retry_policy = {
  rp_timeout_us : float;      (** wait before declaring a message lost *)
  rp_max_attempts : int;      (** total attempts, including the first *)
  rp_backoff_us : float;      (** pause before the first retry *)
  rp_backoff_mult : float;    (** exponential backoff multiplier *)
  rp_backoff_jitter : float;
      (** backoff randomization: each pause is scaled by a factor drawn
          uniformly from [\[1, 1 + jitter\]]; 0 disables the draw *)
}

val default_retry : retry_policy
(** 10 ms timeout, 3 attempts, 1 ms initial backoff doubling per retry,
    10% jitter — a few round trips of the paper's 10BaseT testbed. *)

(** {1 One faulted call} *)

type outcome = {
  oc_ok : bool;          (** false: retries exhausted, call abandoned *)
  oc_time_us : float;    (** total elapsed time, faults included *)
  oc_retries : int;      (** attempts beyond the first *)
  oc_drops : int;        (** messages the network ate *)
  oc_spikes : int;       (** latency spikes suffered *)
  oc_fault_us : float;
      (** time attributable to faults: timeouts waited, backoff pauses,
          and spike delays — [oc_time_us] minus the clean round trip *)
}

val call :
  ?model:t ->
  ?retry:retry_policy ->
  rng:Coign_util.Prng.t ->
  now_us:float ->
  request_bytes:int ->
  reply_bytes:int ->
  request_us:(unit -> float) ->
  reply_us:(unit -> float) ->
  unit ->
  outcome
(** Simulate one synchronous cross-machine call starting at virtual
    time [now_us]. Each attempt asks the model for a verdict on the
    request and then on the reply; a [Drop] on either leg costs one
    timeout and, if attempts remain, one backoff pause (jitter drawn
    from [rng]) before trying again. [request_us]/[reply_us] produce
    the nominal one-way message times and are called once per
    delivered leg — they may themselves draw jitter noise.

    Without a [model] (or with a {!zero} one) no message is ever
    dropped or delayed and the outcome is exactly
    [request_us () +. reply_us ()], with the reply time evaluated
    {e first} — the historical draw order of the distributed RTE's
    jitter noise, preserved so fault-free runs stay bit-identical to
    the pre-fault code path. *)
