(** Statistical network profiling.

    "The network profiler creates a network profile through statistical
    sampling of communication time for a representative set of DCOM
    messages" (paper §2). We time simulated messages whose sizes cover
    the exponential bucket ranges of the communication summaries,
    perturb each observation with measurement noise, and fit a
    latency/bandwidth line. The analysis engine prices abstract ICC
    edges with the *fitted* profile, never with the ground-truth model,
    so prediction error in Table 5 is honest. *)

type t = {
  profiled_name : string;
  observations : (int * float) array;  (** (bytes, observed us) *)
  fixed_us : float;                     (** fitted per-message cost *)
  per_byte_us : float;                  (** fitted marginal cost *)
}

val profile :
  ?samples_per_size:int -> ?noise:float -> Coign_util.Prng.t -> Network.t -> t
(** Sample the network ([samples_per_size] observations per
    representative size, default 7; [noise] is the relative stddev of
    an observation, default 0.02). *)

val predict_us : t -> bytes:int -> float
(** Fitted one-way message time, clamped at 0. *)

type compiled
(** A profile with its per-size observation means precomputed.
    [predict_us] re-derives the means table from the raw observations
    on every call; compiling once amortizes that across the thousands
    of predictions a pricing round makes. *)

val compile : t -> compiled

val predict_compiled_us : compiled -> bytes:int -> float
(** Bit-identical to [predict_us] on the profile that was compiled —
    both run the same interpolation over the same means, so analysis
    results cannot depend on which entry point priced them. *)

val predict_round_trip_us : t -> request:int -> reply:int -> float

val exact : Network.t -> t
(** A profile that reproduces the model exactly (no sampling noise) —
    for tests that need determinism tighter than the fit error. *)

val pp : Format.formatter -> t -> unit

(** {1 Failure-mode profiles}

    Derived profiles for the fallback ladder (PAPER.md §4.4 adaptivity
    under degradation). Each adds a fixed per-message penalty to every
    observation and to the fitted intercept, leaving the per-byte slope
    alone: min cuts are invariant under uniform scaling, so only a
    shape change like this can move the fallback cut — it taxes chatty
    pairs more than bulky ones. *)

val degrade : ?drop_rate:float -> ?retry:Fault.retry_policy -> t -> t
(** The link as seen through sustained loss: each message pays the
    expected retry penalty (timeouts plus base backoff) of surviving
    [drop_rate] (default 0.3) per leg under [retry] (default
    {!Fault.default_retry}). *)

val link_down : ?penalty_us:float -> t -> t
(** The link as seen through a partition: a huge fixed per-message cost
    (default 1e7 µs), so the resulting cut minimizes the number of
    crossing messages — the principled "pull everything movable to one
    machine" floor, still honouring pins. *)
