open Coign_util

type spec = {
  fs_drop_rate : float;
  fs_spike_rate : float;
  fs_spike_mean_us : float;
  fs_partitions_us : (float * float) list;
  fs_crashes_us : (float * float) list;
}

let zero =
  {
    fs_drop_rate = 0.;
    fs_spike_rate = 0.;
    fs_spike_mean_us = 0.;
    fs_partitions_us = [];
    fs_crashes_us = [];
  }

type t = { seed : int64; sp : spec }

let check_rate what r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault.make: %s %g not in [0, 1]" what r)

let check_windows what ws =
  List.iter
    (fun (s, e) ->
      if not (e >= s) then
        invalid_arg (Printf.sprintf "Fault.make: %s window [%g, %g) ends before it starts" what s e))
    ws

let make ~seed sp =
  check_rate "drop rate" sp.fs_drop_rate;
  check_rate "spike rate" sp.fs_spike_rate;
  if sp.fs_spike_mean_us < 0. then invalid_arg "Fault.make: negative spike mean";
  check_windows "partition" sp.fs_partitions_us;
  check_windows "crash" sp.fs_crashes_us;
  { seed; sp }

let seed t = t.seed
let spec t = t.sp

type verdict = Drop | Delay of float | Deliver

let in_window at ws = List.exists (fun (s, e) -> at >= s && at < e) ws

(* Verdicts are keyed hashes, not generator draws: splitmix the seed
   with the message's send time, size, and a per-question salt. Order
   independence is what makes fault schedules reproducible across
   domain counts — no stream to race on. *)
let key t ~at_us ~bytes ~salt =
  let k = Prng.mix64 (Int64.logxor t.seed (Int64.bits_of_float at_us)) in
  let k = Prng.mix64 (Int64.logxor k (Int64.of_int bytes)) in
  Prng.mix64 (Int64.logxor k (Int64.of_int salt))

(* Top 53 bits as a float in [0, 1). *)
let u01 k = Int64.to_float (Int64.shift_right_logical k 11) /. 9007199254740992.0

let verdict t ~at_us ~bytes =
  let sp = t.sp in
  if in_window at_us sp.fs_partitions_us || in_window at_us sp.fs_crashes_us then Drop
  else if sp.fs_drop_rate > 0. && u01 (key t ~at_us ~bytes ~salt:1) < sp.fs_drop_rate then Drop
  else if sp.fs_spike_rate > 0. && u01 (key t ~at_us ~bytes ~salt:2) < sp.fs_spike_rate then
    Delay (-.sp.fs_spike_mean_us *. log (1.0 -. u01 (key t ~at_us ~bytes ~salt:3)))
  else Deliver

type retry_policy = {
  rp_timeout_us : float;
  rp_max_attempts : int;
  rp_backoff_us : float;
  rp_backoff_mult : float;
  rp_backoff_jitter : float;
}

let default_retry =
  {
    rp_timeout_us = 10_000.;
    rp_max_attempts = 3;
    rp_backoff_us = 1_000.;
    rp_backoff_mult = 2.;
    rp_backoff_jitter = 0.1;
  }

type outcome = {
  oc_ok : bool;
  oc_time_us : float;
  oc_retries : int;
  oc_drops : int;
  oc_spikes : int;
  oc_fault_us : float;
}

let call ?model ?(retry = default_retry) ~rng ~now_us ~request_bytes ~reply_bytes ~request_us
    ~reply_us () =
  let verdict_at at bytes =
    match model with None -> Deliver | Some m -> verdict m ~at_us:at ~bytes
  in
  let max_attempts = max 1 retry.rp_max_attempts in
  let rec attempt n ~elapsed ~drops ~spikes ~fault_us =
    let at = now_us +. elapsed in
    let fail ~drops =
      if n >= max_attempts then
        {
          oc_ok = false;
          oc_time_us = elapsed +. retry.rp_timeout_us;
          oc_retries = n - 1;
          oc_drops = drops;
          oc_spikes = spikes;
          oc_fault_us = fault_us +. retry.rp_timeout_us;
        }
      else
        let backoff =
          let base = retry.rp_backoff_us *. (retry.rp_backoff_mult ** float_of_int (n - 1)) in
          if retry.rp_backoff_jitter = 0. then base
          else base *. (1. +. (retry.rp_backoff_jitter *. Prng.float rng 1.0))
        in
        attempt (n + 1)
          ~elapsed:(elapsed +. retry.rp_timeout_us +. backoff)
          ~drops ~spikes
          ~fault_us:(fault_us +. retry.rp_timeout_us +. backoff)
    in
    match verdict_at at request_bytes with
    | Drop -> fail ~drops:(drops + 1)
    | vq -> (
        (* Reply time before request time: `jittered rq +. jittered rp`
           evaluated its operands right to left, so the pre-fault RTE
           drew reply jitter first. Keeping that order makes fault-free
           runs bit-identical to the old code path at any jitter. *)
        let rp = reply_us () in
        let rq = request_us () in
        let dq = match vq with Delay d -> d | _ -> 0. in
        match verdict_at (at +. rq +. dq) reply_bytes with
        | Drop -> fail ~drops:(drops + 1)
        | vp ->
            let dp = match vp with Delay d -> d | _ -> 0. in
            let spikes_here =
              (match vq with Delay _ -> 1 | _ -> 0) + (match vp with Delay _ -> 1 | _ -> 0)
            in
            let spike_us = dq +. dp in
            {
              oc_ok = true;
              oc_time_us = elapsed +. (rq +. rp) +. spike_us;
              oc_retries = n - 1;
              oc_drops = drops;
              oc_spikes = spikes + spikes_here;
              oc_fault_us = fault_us +. spike_us;
            })
  in
  attempt 1 ~elapsed:0. ~drops:0 ~spikes:0 ~fault_us:0.
