(** Per-link health tracking and a three-state circuit breaker.

    The breaker protects a simulated network link: callers report each
    remote call's outcome with its virtual timestamp and consult
    {!allows} before issuing the next one.  State evolves
    [Closed -> Open] after [hp_failure_threshold] consecutive failures,
    [Open -> Half_open] once the cooloff window has elapsed on the sim
    clock, and [Half_open -> Closed] (or back to [Open], with an
    escalated cooloff) depending on probe outcomes.  No randomness is
    drawn anywhere, so runs are deterministic under [dc_seed]. *)

type policy = {
  hp_failure_threshold : int;
      (** Consecutive failures that trip the breaker (>= 1). *)
  hp_cooloff_us : float;
      (** Initial Open -> Half_open cooloff in virtual microseconds. *)
  hp_cooloff_mult : float;
      (** Cooloff multiplier applied on each failed probe (>= 1). *)
  hp_cooloff_max_us : float;  (** Cap on the escalated cooloff. *)
  hp_probe_successes : int;
      (** Half_open probe successes required to close (>= 1). *)
  hp_ewma_alpha : float;
      (** Weight of the newest outcome in the health EWMA, in (0, 1]. *)
}

val default_policy : policy
(** Threshold 2, cooloff 50 ms doubling up to 400 ms, one probe,
    alpha 0.2. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"], ["half_open"]. *)

type transition = { tr_from : state; tr_to : state; tr_at_us : float }

type snapshot = {
  sn_state : state;
  sn_consecutive_failures : int;
  sn_cooloff_us : float;  (** Current (possibly escalated) cooloff. *)
  sn_opened_at_us : float;  (** When the breaker last tripped. *)
  sn_probe_successes : int;  (** Successes since entering [Half_open]. *)
}
(** The breaker's complete control state — the exact set of fields that
    feed back into admission decisions.  The EWMA and lifetime counters
    on {!t} are instrumentation only and are deliberately excluded. *)

type input = Observe | Success | Failure
(** The three stimuli a breaker reacts to: a clock advance, a
    successful call, a failed call. *)

val input_name : input -> string
(** ["observe"], ["success"], ["failure"]. *)

val initial_snapshot : policy -> snapshot
(** The control state of a freshly created tracker: [Closed], zero
    counters, base cooloff. *)

val transition : policy -> snapshot -> at_us:float -> input -> snapshot * transition option
(** The pure breaker step.  {!observe}, {!record_success} and
    {!record_failure} all delegate to this function, as does the
    [lib/verify] explorer, so the model checker and the RTE share one
    implementation of the state machine by construction. *)

type t

val create : ?policy:policy -> unit -> t
(** Fresh tracker in [Closed] with EWMA 1.  Raises [Invalid_argument]
    on out-of-range policy fields. *)

val policy : t -> policy
val state : t -> state

val ewma : t -> float
(** Exponentially weighted success rate in [0, 1]; starts at 1. *)

val consecutive_failures : t -> int
val successes : t -> int
val failures : t -> int

val cooloff_us : t -> float
(** Current (possibly escalated) cooloff. *)

val cooloff_expires_at : t -> float
(** Virtual time at which an [Open] breaker admits a probe. *)

val allows : t -> now_us:float -> bool
(** Whether a call may be issued at [now_us].  [Closed] and [Half_open]
    always allow; [Open] allows only once the cooloff has elapsed. *)

val observe : t -> now_us:float -> transition option
(** Advance the breaker to the given virtual time: an [Open] breaker
    whose cooloff has elapsed moves to [Half_open].  Call before
    consulting {!allows} so probe admission is visible as a
    transition. *)

val record_success : t -> now_us:float -> transition option
(** Report a successful call.  In [Half_open], counts toward the probe
    quota and may close the breaker (resetting the cooloff). *)

val record_failure : t -> now_us:float -> transition option
(** Report a failed call.  In [Closed], may trip the breaker; in
    [Half_open], reopens it with an escalated cooloff. *)

val snapshot : t -> snapshot
(** The tracker's current control state. *)
