(* Per-link health tracking and a three-state circuit breaker.

   The tracker is driven entirely off the caller's simulated clock: every
   state change is a pure function of the observed call outcomes and their
   timestamps, so a run is reproducible from [dc_seed] alone — the breaker
   itself draws no randomness.  Timestamps are microseconds on the same
   virtual axis as [Fault.spec] windows. *)

type policy = {
  hp_failure_threshold : int;
  hp_cooloff_us : float;
  hp_cooloff_mult : float;
  hp_cooloff_max_us : float;
  hp_probe_successes : int;
  hp_ewma_alpha : float;
}

let default_policy =
  {
    hp_failure_threshold = 2;
    hp_cooloff_us = 50_000.;
    hp_cooloff_mult = 2.;
    hp_cooloff_max_us = 400_000.;
    hp_probe_successes = 1;
    hp_ewma_alpha = 0.2;
  }

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type transition = { tr_from : state; tr_to : state; tr_at_us : float }

(* --- Pure step function ------------------------------------------------

   The breaker's control state is the five fields below; everything else
   on [t] (EWMA, lifetime counters) is instrumentation that never feeds
   back into admission decisions.  [transition] is the single source of
   truth for how that control state evolves: the mutable API delegates to
   it, and the verifier folds it over candidate event interleavings, so
   both observe bit-identical behaviour by construction. *)

type snapshot = {
  sn_state : state;
  sn_consecutive_failures : int;
  sn_cooloff_us : float;
  sn_opened_at_us : float;
  sn_probe_successes : int;
}

type input = Observe | Success | Failure

let input_name = function
  | Observe -> "observe"
  | Success -> "success"
  | Failure -> "failure"

let initial_snapshot policy =
  {
    sn_state = Closed;
    sn_consecutive_failures = 0;
    sn_cooloff_us = policy.hp_cooloff_us;
    sn_opened_at_us = 0.;
    sn_probe_successes = 0;
  }

let transition policy s ~at_us input =
  let trip from s =
    ( { s with sn_state = Open; sn_opened_at_us = at_us; sn_probe_successes = 0 },
      Some { tr_from = from; tr_to = Open; tr_at_us = at_us } )
  in
  match (input, s.sn_state) with
  | Observe, Open when at_us >= s.sn_opened_at_us +. s.sn_cooloff_us ->
      ( { s with sn_state = Half_open; sn_probe_successes = 0 },
        Some { tr_from = Open; tr_to = Half_open; tr_at_us = at_us } )
  | Observe, _ -> (s, None)
  | Success, Closed -> ({ s with sn_consecutive_failures = 0 }, None)
  | Success, (Open | Half_open) ->
      (* A success while Open can only come from a probe the caller issued
         after [allows] turned true; treat it like a Half_open probe. *)
      let s =
        {
          s with
          sn_consecutive_failures = 0;
          sn_probe_successes = s.sn_probe_successes + 1;
        }
      in
      if s.sn_probe_successes >= policy.hp_probe_successes then
        ( { s with sn_state = Closed; sn_cooloff_us = policy.hp_cooloff_us },
          Some { tr_from = s.sn_state; tr_to = Closed; tr_at_us = at_us } )
      else (s, None)
  | Failure, Closed ->
      let s = { s with sn_consecutive_failures = s.sn_consecutive_failures + 1 } in
      if s.sn_consecutive_failures >= policy.hp_failure_threshold then trip Closed s
      else (s, None)
  | Failure, Half_open ->
      (* Failed probe: reopen with an escalated cooloff. *)
      let s =
        {
          s with
          sn_consecutive_failures = s.sn_consecutive_failures + 1;
          sn_cooloff_us =
            Float.min (s.sn_cooloff_us *. policy.hp_cooloff_mult) policy.hp_cooloff_max_us;
        }
      in
      trip Half_open s
  | Failure, Open ->
      (* Recording while Open without a preceding [observe] keeps the
         breaker open; refresh the window so the cooloff restarts. *)
      ( {
          s with
          sn_consecutive_failures = s.sn_consecutive_failures + 1;
          sn_opened_at_us = at_us;
        },
        None )

type t = {
  hl_policy : policy;
  mutable hl_state : state;
  mutable hl_ewma : float; (* EWMA of outcomes: success = 1, failure = 0 *)
  mutable hl_consecutive_failures : int;
  mutable hl_opened_at_us : float;
  mutable hl_cooloff_us : float; (* current, possibly escalated, cooloff *)
  mutable hl_probe_successes : int; (* successes since entering Half_open *)
  mutable hl_successes : int;
  mutable hl_failures : int;
}

let create ?(policy = default_policy) () =
  if policy.hp_failure_threshold < 1 then
    invalid_arg "Health.create: hp_failure_threshold < 1";
  if not (policy.hp_cooloff_us > 0.) then
    invalid_arg "Health.create: hp_cooloff_us <= 0";
  if not (policy.hp_cooloff_mult >= 1.) then
    invalid_arg "Health.create: hp_cooloff_mult < 1";
  if not (policy.hp_cooloff_max_us >= policy.hp_cooloff_us) then
    invalid_arg "Health.create: hp_cooloff_max_us < hp_cooloff_us";
  if policy.hp_probe_successes < 1 then
    invalid_arg "Health.create: hp_probe_successes < 1";
  if not (policy.hp_ewma_alpha > 0. && policy.hp_ewma_alpha <= 1.) then
    invalid_arg "Health.create: hp_ewma_alpha outside (0, 1]";
  {
    hl_policy = policy;
    hl_state = Closed;
    hl_ewma = 1.;
    hl_consecutive_failures = 0;
    hl_opened_at_us = 0.;
    hl_cooloff_us = policy.hp_cooloff_us;
    hl_probe_successes = 0;
    hl_successes = 0;
    hl_failures = 0;
  }

let policy t = t.hl_policy
let state t = t.hl_state
let ewma t = t.hl_ewma
let consecutive_failures t = t.hl_consecutive_failures
let successes t = t.hl_successes
let failures t = t.hl_failures
let cooloff_us t = t.hl_cooloff_us
let cooloff_expires_at t = t.hl_opened_at_us +. t.hl_cooloff_us

let allows t ~now_us =
  match t.hl_state with
  | Closed | Half_open -> true
  | Open -> now_us >= cooloff_expires_at t

let snapshot t =
  {
    sn_state = t.hl_state;
    sn_consecutive_failures = t.hl_consecutive_failures;
    sn_cooloff_us = t.hl_cooloff_us;
    sn_opened_at_us = t.hl_opened_at_us;
    sn_probe_successes = t.hl_probe_successes;
  }

let restore t s =
  t.hl_state <- s.sn_state;
  t.hl_consecutive_failures <- s.sn_consecutive_failures;
  t.hl_cooloff_us <- s.sn_cooloff_us;
  t.hl_opened_at_us <- s.sn_opened_at_us;
  t.hl_probe_successes <- s.sn_probe_successes

let step t ~now_us input =
  let s, tr = transition t.hl_policy (snapshot t) ~at_us:now_us input in
  restore t s;
  tr

(* Advance the clock: an Open breaker whose cooloff has elapsed moves to
   Half_open, where the next call acts as a probe. *)
let observe t ~now_us = step t ~now_us Observe

let blend t ok =
  let a = t.hl_policy.hp_ewma_alpha in
  t.hl_ewma <- ((1. -. a) *. t.hl_ewma) +. (a *. if ok then 1. else 0.)

let record_success t ~now_us =
  blend t true;
  t.hl_successes <- t.hl_successes + 1;
  step t ~now_us Success

let record_failure t ~now_us =
  blend t false;
  t.hl_failures <- t.hl_failures + 1;
  step t ~now_us Failure
