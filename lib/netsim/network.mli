(** Parametric network models.

    The paper's testbed is two 200 MHz Pentiums on isolated 10BaseT
    Ethernet; its motivation section stresses that bandwidth-to-latency
    tradeoffs shift "by more than an order of magnitude" across ISDN,
    100BaseT, ATM, and SANs. A model here is the ground truth the
    execution simulator charges for every cross-machine message; the
    {!Net_profiler} observes it only through sampling, the way Coign's
    network profiler measures a real network. *)

type t = {
  net_name : string;
  latency_us : float;       (** one-way per-message wire latency *)
  bandwidth_mbps : float;   (** payload bandwidth, megabits/second *)
  proc_us : float;          (** per-message protocol processing cost
                                (DCOM/RPC stack, both ends combined) *)
}

val make : name:string -> latency_us:float -> bandwidth_mbps:float -> proc_us:float -> t

val message_us : t -> bytes:int -> float
(** One-way time to move a message: [proc + latency + bytes*8/bandwidth]. *)

val round_trip_us : t -> request:int -> reply:int -> float
(** A call's full communication time: request message plus reply
    message (DCOM calls are synchronous). *)

val host_us : t -> float
(** The host-CPU share of {!message_us}: per-message protocol
    processing ([proc_us]). Under load this is the service demand a
    message places on the serving host's FIFO queue. *)

val wire_us : t -> bytes:int -> float
(** The link share of {!message_us}: propagation latency plus
    transmission time ([latency + bytes*8/bandwidth]). Under load this
    is the service demand a message places on the link's FIFO queue;
    [host_us t +. wire_us t ~bytes] equals [message_us t ~bytes] up to
    float association. *)

(** {1 Presets} *)

val ethernet_10 : t
(** Isolated 10BaseT Ethernet — the paper's testbed. *)

val ethernet_100 : t
val isdn_128 : t
val atm_155 : t
val san_1g : t
val loopback : t
(** Same-machine "network": zero cost; what co-located components pay. *)

val presets : t list
(** All named presets except [loopback], ordered by bandwidth. *)

val geometric_sweep : ?points:int -> from_net:t -> to_net:t -> unit -> t list
(** [points] (default 20, minimum 2) network models geometrically
    interpolated between two endpoints, endpoints included — the
    dense placement-vs-network sweeps behind the paper's Figures 4-8.
    Latency, bandwidth, and processing cost each interpolate on a log
    scale (linearly when an endpoint value is zero, as for
    [loopback]). *)

val pp : Format.formatter -> t -> unit
