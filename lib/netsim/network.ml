type t = {
  net_name : string;
  latency_us : float;
  bandwidth_mbps : float;
  proc_us : float;
}

let make ~name ~latency_us ~bandwidth_mbps ~proc_us =
  if latency_us < 0. || bandwidth_mbps <= 0. || proc_us < 0. then
    invalid_arg "Network.make: nonsensical parameters";
  { net_name = name; latency_us; bandwidth_mbps; proc_us }

let message_us t ~bytes =
  assert (bytes >= 0);
  t.proc_us +. t.latency_us +. (float_of_int bytes *. 8. /. t.bandwidth_mbps)

let round_trip_us t ~request ~reply =
  message_us t ~bytes:request +. message_us t ~bytes:reply

(* Decomposition of [message_us] for queueing simulators: the protocol
   stack occupies a host CPU while the wire (propagation plus
   transmission) occupies the link, so the two components contend in
   different FIFO queues. [host_us + wire_us = message_us] up to float
   association. *)
let host_us t = t.proc_us

let wire_us t ~bytes =
  assert (bytes >= 0);
  t.latency_us +. (float_of_int bytes *. 8. /. t.bandwidth_mbps)

(* Per-message processing: the DCOM/RPC stack on two 200 MHz Pentiums
   costs on the order of half a millisecond per message end-to-end. *)
let ethernet_10 =
  make ~name:"10BaseT Ethernet" ~latency_us:100. ~bandwidth_mbps:10. ~proc_us:550.

let ethernet_100 =
  make ~name:"100BaseT Ethernet" ~latency_us:50. ~bandwidth_mbps:100. ~proc_us:500.

let isdn_128 = make ~name:"ISDN 128k" ~latency_us:5000. ~bandwidth_mbps:0.128 ~proc_us:550.

let atm_155 = make ~name:"ATM OC-3" ~latency_us:40. ~bandwidth_mbps:155. ~proc_us:500.

let san_1g = make ~name:"SAN 1Gbps" ~latency_us:10. ~bandwidth_mbps:1000. ~proc_us:120.

let loopback = { net_name = "loopback"; latency_us = 0.; bandwidth_mbps = 1e12; proc_us = 0. }

let presets = [ isdn_128; ethernet_10; ethernet_100; atm_155; san_1g ]

let geometric_sweep ?(points = 20) ~from_net ~to_net () =
  if points < 2 then invalid_arg "Network.geometric_sweep: need at least two points";
  (* Geometric interpolation matches how real links are spaced (ISDN to
     SAN spans four orders of magnitude of bandwidth); fall back to
     linear when an endpoint parameter is zero (loopback). *)
  let interp a b frac =
    if a <= 0. || b <= 0. then a +. ((b -. a) *. frac)
    else a *. ((b /. a) ** frac)
  in
  List.init points (fun i ->
      let frac = float_of_int i /. float_of_int (points - 1) in
      let bandwidth = interp from_net.bandwidth_mbps to_net.bandwidth_mbps frac in
      make
        ~name:(Printf.sprintf "sweep%02d %.3gMbps" i bandwidth)
        ~latency_us:(interp from_net.latency_us to_net.latency_us frac)
        ~bandwidth_mbps:bandwidth
        ~proc_us:(interp from_net.proc_us to_net.proc_us frac))

let pp ppf t =
  Format.fprintf ppf "%s (lat %.0fus, bw %.1fMbps, proc %.0fus)" t.net_name t.latency_us
    t.bandwidth_mbps t.proc_us
