open Coign_idl

type instance_id = int
type handle = int

type ctx = {
  reg : registry;
  mutable instances : instance array;       (* index = instance_id *)
  mutable ninstances : int;
  mutable handles : handle_entry array;     (* index = handle *)
  mutable nhandles : int;
  mutable create_hook : (create_request -> handle) option;
  mutable query_hook : (handle -> iid:Guid.t -> handle) option;
  mutable destroy_hook : (instance_id -> unit) option;
  mutable compute : float;
  data : (int, Obj.t) Hashtbl.t;
}

and dispatch = ctx -> meth:int -> Value.t list -> Value.t list * Value.t

and impl = (Itype.t * dispatch) list

and component_class = {
  clsid : Guid.t;
  cname : string;
  api_refs : string list;
  creates : string list;
  constructor : ctx -> instance_id -> impl;
}

and registry = { classes : component_class list; by_clsid : (Guid.t, component_class) Hashtbl.t }

and instance = {
  inst_id : instance_id;
  inst_class : component_class option;      (* None for the main pseudo-instance *)
  mutable inst_impl : impl;
  mutable inst_handles : (Guid.t * handle) list;  (* iid -> canonical handle *)
  mutable inst_alive : bool;
}

and handle_entry = {
  h_owner : instance_id;
  h_itype : Itype.t;
  h_dispatch : dispatch;
  h_wrapper : bool;
}

and create_request = { req_clsid : Guid.t; req_iid : Guid.t; req_class : component_class }

let define_class ?(api_refs = []) ?(creates = []) cname constructor =
  { clsid = Guid.of_name ("CLSID_" ^ cname); cname; api_refs; creates; constructor }

let registry classes =
  let by_clsid = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if Hashtbl.mem by_clsid c.clsid then
        invalid_arg ("Runtime.registry: duplicate class " ^ c.cname);
      Hashtbl.add by_clsid c.clsid c)
    classes;
  { classes; by_clsid }

let registry_classes r = r.classes

let find_class r clsid = Hashtbl.find_opt r.by_clsid clsid

let main_instance = 0
let main_class_name = "MAIN"

let dummy_itype = Itype.declare "IUnknown" []

let dummy_handle_entry =
  {
    h_owner = -1;
    h_itype = dummy_itype;
    h_dispatch = (fun _ ~meth:_ _ -> (([] : Value.t list), Value.Unit));
    h_wrapper = false;
  }

let dummy_instance =
  { inst_id = -1; inst_class = None; inst_impl = []; inst_handles = []; inst_alive = false }

let create_ctx reg =
  let ctx =
    {
      reg;
      instances = Array.make 64 dummy_instance;
      ninstances = 0;
      handles = Array.make 256 dummy_handle_entry;
      nhandles = 0;
      create_hook = None;
      query_hook = None;
      destroy_hook = None;
      compute = 0.;
      data = Hashtbl.create 8;
    }
  in
  (* Instance 0: the application main program. *)
  ctx.instances.(0) <-
    { inst_id = 0; inst_class = None; inst_impl = []; inst_handles = []; inst_alive = true };
  ctx.ninstances <- 1;
  ctx

let grow_instances ctx =
  if ctx.ninstances = Array.length ctx.instances then begin
    let bigger = Array.make (2 * Array.length ctx.instances) dummy_instance in
    Array.blit ctx.instances 0 bigger 0 ctx.ninstances;
    ctx.instances <- bigger
  end

let grow_handles ctx =
  if ctx.nhandles = Array.length ctx.handles then begin
    let bigger = Array.make (2 * Array.length ctx.handles) dummy_handle_entry in
    Array.blit ctx.handles 0 bigger 0 ctx.nhandles;
    ctx.handles <- bigger
  end

let get_instance ctx id =
  if id < 0 || id >= ctx.ninstances then
    Hresult.fail (Hresult.E_pointer (Printf.sprintf "unknown instance %d" id));
  ctx.instances.(id)

let get_handle ctx h =
  if h < 0 || h >= ctx.nhandles then
    Hresult.fail (Hresult.E_pointer (Printf.sprintf "unknown handle %d" h));
  ctx.handles.(h)

let alloc_handle_entry ctx entry =
  grow_handles ctx;
  let h = ctx.nhandles in
  ctx.handles.(h) <- entry;
  ctx.nhandles <- h + 1;
  h

let alloc_foreign_handle ctx ~owner ~itype ~wrapper dispatch =
  ignore (get_instance ctx owner);
  alloc_handle_entry ctx
    { h_owner = owner; h_itype = itype; h_dispatch = dispatch; h_wrapper = wrapper }

(* The canonical handle of [inst] for interface [iid]: allocated lazily,
   then reused, matching COM's per-interface identity. *)
let canonical_handle ctx inst iid =
  match List.assoc_opt iid inst.inst_handles with
  | Some h -> h
  | None -> (
      match
        List.find_opt (fun (it, _) -> Guid.equal (Itype.iid it) iid) inst.inst_impl
      with
      | None ->
          Hresult.fail
            (Hresult.E_nointerface
               (Printf.sprintf "instance %d does not implement %s" inst.inst_id
                  (Guid.to_string iid)))
      | Some (itype, dispatch) ->
          let h =
            alloc_handle_entry ctx
              { h_owner = inst.inst_id; h_itype = itype; h_dispatch = dispatch; h_wrapper = false }
          in
          inst.inst_handles <- (iid, h) :: inst.inst_handles;
          h)

let raw_create_instance ctx clsid ~iid =
  match find_class ctx.reg clsid with
  | None -> Hresult.fail (Hresult.E_noclass (Guid.to_string clsid))
  | Some cls ->
      grow_instances ctx;
      let id = ctx.ninstances in
      let inst =
        { inst_id = id; inst_class = Some cls; inst_impl = []; inst_handles = []; inst_alive = true }
      in
      ctx.instances.(id) <- inst;
      ctx.ninstances <- id + 1;
      (* Constructor may itself create components; it runs with the
         instance already visible so self-references work. *)
      inst.inst_impl <- cls.constructor ctx id;
      canonical_handle ctx inst iid

(* Instantiation without registry lookup or handle allocation: the
   static prober (see {!Probe}) uses this to run a constructor it has
   already resolved and then inspect the implementation table. *)
let raw_instantiate ctx cls =
  grow_instances ctx;
  let id = ctx.ninstances in
  let inst =
    { inst_id = id; inst_class = Some cls; inst_impl = []; inst_handles = []; inst_alive = true }
  in
  ctx.instances.(id) <- inst;
  ctx.ninstances <- id + 1;
  inst.inst_impl <- cls.constructor ctx id;
  id

let create_instance ctx clsid ~iid =
  match ctx.create_hook with
  | None -> raw_create_instance ctx clsid ~iid
  | Some hook -> (
      match find_class ctx.reg clsid with
      | None -> Hresult.fail (Hresult.E_noclass (Guid.to_string clsid))
      | Some cls -> hook { req_clsid = clsid; req_iid = iid; req_class = cls })

let raw_query_interface ctx h ~iid =
  let entry = get_handle ctx h in
  let inst = get_instance ctx entry.h_owner in
  if not inst.inst_alive then
    Hresult.fail (Hresult.E_pointer (Printf.sprintf "instance %d is dead" inst.inst_id));
  canonical_handle ctx inst iid

let query_interface ctx h ~iid =
  match ctx.query_hook with
  | None -> raw_query_interface ctx h ~iid
  | Some hook -> hook h ~iid

let destroy_instance ctx id =
  let inst = get_instance ctx id in
  if id = main_instance then
    Hresult.fail (Hresult.E_invalidarg "cannot destroy the main instance");
  if not inst.inst_alive then
    Hresult.fail (Hresult.E_invalidarg (Printf.sprintf "instance %d already dead" id));
  (match ctx.destroy_hook with Some hook -> hook id | None -> ());
  inst.inst_alive <- false

let call ctx h ~meth args =
  let entry = get_handle ctx h in
  let inst = get_instance ctx entry.h_owner in
  if not inst.inst_alive then
    Hresult.fail
      (Hresult.E_pointer
         (Printf.sprintf "call through handle %d of dead instance %d" h inst.inst_id));
  if meth < 0 || meth >= Itype.method_count entry.h_itype then
    Hresult.fail
      (Hresult.E_invalidarg
         (Printf.sprintf "interface %s has no method %d" (Itype.name entry.h_itype) meth));
  entry.h_dispatch ctx ~meth args

let call_named ctx h mname args =
  let entry = get_handle ctx h in
  match Itype.method_index entry.h_itype mname with
  | meth -> call ctx h ~meth args
  | exception Not_found ->
      Hresult.fail
        (Hresult.E_invalidarg
           (Printf.sprintf "interface %s has no method %S" (Itype.name entry.h_itype) mname))

let handle_itype ctx h = (get_handle ctx h).h_itype
let handle_owner ctx h = (get_handle ctx h).h_owner
let handle_is_wrapper ctx h = (get_handle ctx h).h_wrapper

let instance_class_name ctx id =
  match (get_instance ctx id).inst_class with
  | None -> main_class_name
  | Some c -> c.cname

let instance_itypes ctx id = List.map fst (get_instance ctx id).inst_impl

let instance_clsid ctx id =
  match (get_instance ctx id).inst_class with None -> None | Some c -> Some c.clsid

let instance_alive ctx id = (get_instance ctx id).inst_alive

let instance_count ctx = ctx.ninstances

let live_instances ctx =
  let rec go i acc =
    if i < 1 then acc
    else go (i - 1) (if ctx.instances.(i).inst_alive then i :: acc else acc)
  in
  go (ctx.ninstances - 1) []

let iter_instances ctx f =
  for i = 1 to ctx.ninstances - 1 do
    f i
  done

let set_create_hook ctx hook = ctx.create_hook <- hook
let set_query_hook ctx hook = ctx.query_hook <- hook
let set_destroy_hook ctx hook = ctx.destroy_hook <- hook

let charge ctx ~us =
  assert (us >= 0.);
  ctx.compute <- ctx.compute +. us

let compute_us ctx = ctx.compute
let reset_compute ctx = ctx.compute <- 0.

type 'a key = int

let key_counter = ref 0

let new_key () =
  incr key_counter;
  !key_counter

let set_data ctx key v = Hashtbl.replace ctx.data key (Obj.repr v)

let get_data ctx key =
  match Hashtbl.find_opt ctx.data key with
  | None -> None
  | Some o -> Some (Obj.obj o)

let registry_of ctx = ctx.reg
