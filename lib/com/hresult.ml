type t =
  | E_noclass of string
  | E_nointerface of string
  | E_invalidarg of string
  | E_pointer of string
  | E_fail of string
  | E_cannot_marshal of string
  | E_unreachable of string

exception Com_error of t

let fail e = raise (Com_error e)

let to_string = function
  | E_noclass s -> "E_NOCLASS: " ^ s
  | E_nointerface s -> "E_NOINTERFACE: " ^ s
  | E_invalidarg s -> "E_INVALIDARG: " ^ s
  | E_pointer s -> "E_POINTER: " ^ s
  | E_fail s -> "E_FAIL: " ^ s
  | E_cannot_marshal s -> "E_CANNOTMARSHAL: " ^ s
  | E_unreachable s -> "E_UNREACHABLE: " ^ s

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Com_error e -> Some ("Com_error (" ^ to_string e ^ ")")
    | _ -> None)
