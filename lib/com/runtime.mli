(** The component object runtime.

    Holds everything a running component application needs: the class
    registry, live component instances, and the interface-handle table
    through which all inter-component calls flow. Mirrors the COM
    properties Coign depends on (paper §2):

    - every instantiation goes through a single entry point
      ({!create_instance}), which the Coign RTE intercepts via
      {!set_create_hook} (the analog of inline redirection of
      [CoCreateInstance]);
    - every first-class communication crosses an interface handle, and
      handles can be transparently replaced by wrappers
      ({!alloc_foreign_handle}) so the RTE can observe every call;
    - interfaces carry static type identity ({!Itype}), so informers
      can measure parameters without source code.

    The runtime is deliberately ignorant of Coign: hooks default to the
    plain local behaviour, and an un-instrumented application behaves
    identically with or without a hook installed. *)

type ctx
(** One application execution (an address space in the paper's terms,
    or the union of the distributed address spaces once partitioned). *)

type instance_id = int
(** Dense, ascending component-instance identifiers. Instance 0 is the
    pseudo-instance representing the application's main executable. *)

type handle = int
(** Interface pointer. *)

type dispatch = ctx -> meth:int -> Coign_idl.Value.t list -> Coign_idl.Value.t list * Coign_idl.Value.t
(** A vtable: given a method index and the caller's argument values,
    runs the method and returns the post-call values of all parameter
    slots (positionally aligned; [In] slots are echoed) and the return
    value. *)

type impl = (Itype.t * dispatch) list
(** The interfaces one instance exposes. *)

type component_class = {
  clsid : Guid.t;
  cname : string;
  api_refs : string list;
      (** System APIs the class's code references (e.g. ["gdi32.BitBlt"],
          ["kernel32.ReadFile"]); the static-analysis constraint pass
          scans these. *)
  creates : string list;
      (** Class names this class's *method bodies* can instantiate, the
          analog of CLSIDs visible in a binary's relocated data (§4).
          Constructor-time instantiations need not be listed: the static
          prober observes those directly. *)
  constructor : ctx -> instance_id -> impl;
}

val define_class :
  ?api_refs:string list -> ?creates:string list -> string ->
  (ctx -> instance_id -> impl) -> component_class
(** [define_class name ctor] derives the CLSID from [name]. *)

(** {1 Registry} *)

type registry

val registry : component_class list -> registry
(** Build a registry; duplicate CLSIDs raise [Invalid_argument]. *)

val registry_classes : registry -> component_class list
(** All classes, in registration order. *)

val find_class : registry -> Guid.t -> component_class option

(** {1 Context lifecycle} *)

val create_ctx : registry -> ctx

val main_instance : instance_id
(** The pseudo-instance (0) that stands for the application's [main]. *)

val main_class_name : string
(** Class name reported for {!main_instance} ("MAIN"). *)

(** {1 Instantiation and interface negotiation} *)

val create_instance : ctx -> Guid.t -> iid:Guid.t -> handle
(** The application-facing [CoCreateInstance]: consults the create hook
    if one is installed, otherwise behaves as {!raw_create_instance}.
    Raises [Com_error E_noclass] / [E_nointerface]. *)

val raw_create_instance : ctx -> Guid.t -> iid:Guid.t -> handle
(** Instantiate bypassing the hook (what the hook itself calls to
    perform the real local instantiation). Runs the class constructor. *)

val raw_instantiate : ctx -> component_class -> instance_id
(** Run [cls]'s constructor on a fresh instance and return its id
    without negotiating an interface handle. Used by the static prober
    to enumerate the interfaces a class implements. *)

val query_interface : ctx -> handle -> iid:Guid.t -> handle
(** Ask an instance for another of its interfaces; consults the query
    hook if installed. *)

val raw_query_interface : ctx -> handle -> iid:Guid.t -> handle

val destroy_instance : ctx -> instance_id -> unit
(** Release an instance; its handles become stale. Consults the destroy
    hook. Destroying [main_instance] or an already-dead instance raises
    [Com_error E_invalidarg]. *)

(** {1 Calls} *)

val call :
  ctx -> handle -> meth:int -> Coign_idl.Value.t list ->
  Coign_idl.Value.t list * Coign_idl.Value.t
(** Invoke a method through an interface handle. All inter-component
    communication in an application goes through here. *)

val call_named :
  ctx -> handle -> string -> Coign_idl.Value.t list ->
  Coign_idl.Value.t list * Coign_idl.Value.t
(** Convenience: resolve the method by name on the handle's itype. *)

(** {1 Handle and instance introspection (used by the Coign RTE)} *)

val handle_itype : ctx -> handle -> Itype.t
val handle_owner : ctx -> handle -> instance_id
val handle_is_wrapper : ctx -> handle -> bool

val alloc_foreign_handle :
  ctx -> owner:instance_id -> itype:Itype.t -> wrapper:bool -> dispatch -> handle
(** Mint a new handle not produced by [query_interface] — the RTE uses
    this to interpose instrumented interfaces and the factory to expose
    remote proxies. *)

val instance_itypes : ctx -> instance_id -> Itype.t list
(** The interfaces an instance implements, in declaration order. *)

val instance_class_name : ctx -> instance_id -> string
val instance_clsid : ctx -> instance_id -> Guid.t option
(** [None] for {!main_instance}. *)

val instance_alive : ctx -> instance_id -> bool
val instance_count : ctx -> int
(** Number of instances ever created, including [main]. *)

val live_instances : ctx -> instance_id list
(** Ascending ids of live instances, excluding [main]. *)

val iter_instances : ctx -> (instance_id -> unit) -> unit
(** All instances ever created (dead included), ascending, excluding
    [main]. *)

(** {1 Interception hooks} *)

type create_request = {
  req_clsid : Guid.t;
  req_iid : Guid.t;
  req_class : component_class;
}

val set_create_hook : ctx -> (create_request -> handle) option -> unit
val set_query_hook : ctx -> (handle -> iid:Guid.t -> handle) option -> unit
val set_destroy_hook : ctx -> (instance_id -> unit) option -> unit

(** {1 Compute accounting}

    Methods charge notional CPU time so the execution simulator can
    model total scenario time (compute + communication). *)

val charge : ctx -> us:float -> unit
(** Record [us] microseconds of computation by the current method. *)

val compute_us : ctx -> float
val reset_compute : ctx -> unit

(** {1 User-data slots}

    Component implementations frequently need shared per-context state
    (e.g. a document model). Each context carries one polymorphic slot
    per key. *)

type 'a key

val new_key : unit -> 'a key
val set_data : ctx -> 'a key -> 'a -> unit
val get_data : ctx -> 'a key -> 'a option
val registry_of : ctx -> registry
