(** COM-style result codes.

    Failures in the component runtime raise {!Com_error}; the code set
    mirrors the HRESULTs Coign actually encounters (class lookup,
    interface negotiation, marshaling). *)

type t =
  | E_noclass of string        (** CLSID not in the registry *)
  | E_nointerface of string    (** [query_interface] refused *)
  | E_invalidarg of string
  | E_pointer of string        (** stale or foreign handle *)
  | E_fail of string
  | E_cannot_marshal of string (** call crossed machines over a
                                   non-remotable interface *)
  | E_unreachable of string    (** cross-machine call abandoned after
                                   exhausting its retry policy *)

exception Com_error of t

val fail : t -> 'a
(** Raise [Com_error]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
