(** Static class prober.

    Coign's static analyzer scans each component binary for the
    interfaces it exports and the CLSIDs its code references (paper
    §4). Our "binaries" are OCaml closures, so the equivalent is to
    instantiate every registered class once in a scratch context and
    observe (a) the interface table the constructor installs and (b)
    which other classes the constructor instantiates — attributed to
    the directly-constructing class via a create-hook stack.
    Method-body instantiations are taken from the class's [creates]
    annotation (see {!Runtime.component_class}). *)

type class_info = {
  ci_cname : string;
  ci_provides : Itype.t list;  (** interfaces the class implements *)
  ci_creates : string list;    (** classes it can instantiate (ctor-observed
                                   ∪ annotated), sorted, deduped *)
}

val run : Runtime.registry -> class_info list
(** One entry per registered class, in registration order. A class
    whose constructor raises probes as providing no interfaces. *)
