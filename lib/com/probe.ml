type class_info = {
  ci_cname : string;
  ci_provides : Itype.t list;
  ci_creates : string list;
}

(* Instantiating a class in a scratch context reveals exactly what the
   paper's static analyzer digs out of the binary: the interfaces its
   vtable exports and the CLSIDs reachable from its construction code.
   Constructors may themselves create components, so a create hook with
   an explicit attribution stack records which class performed each
   nested instantiation. *)
let run reg =
  let ctx = Runtime.create_ctx reg in
  let observed : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  let record child =
    match !stack with
    | [] -> ()
    | parent :: _ ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt observed parent) in
        if not (List.mem child prev) then Hashtbl.replace observed parent (child :: prev)
  in
  let with_frame cname f =
    stack := cname :: !stack;
    Fun.protect ~finally:(fun () -> stack := List.tl !stack) f
  in
  Runtime.set_create_hook ctx
    (Some
       (fun (req : Runtime.create_request) ->
         record req.req_class.Runtime.cname;
         with_frame req.req_class.Runtime.cname (fun () ->
             Runtime.raw_create_instance ctx req.req_clsid ~iid:req.req_iid)));
  List.map
    (fun (cls : Runtime.component_class) ->
      let provides =
        match
          with_frame cls.Runtime.cname (fun () -> Runtime.raw_instantiate ctx cls)
        with
        | id -> Runtime.instance_itypes ctx id
        | exception _ -> []
      in
      let ctor_creates =
        Option.value ~default:[] (Hashtbl.find_opt observed cls.Runtime.cname)
      in
      {
        ci_cname = cls.Runtime.cname;
        ci_provides = provides;
        ci_creates = List.sort_uniq compare (ctor_creates @ cls.Runtime.creates);
      })
    (Runtime.registry_classes reg)
