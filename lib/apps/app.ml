open Coign_com

type scenario = {
  sc_id : string;
  sc_desc : string;
  sc_bigone : bool;
  sc_run : Runtime.ctx -> unit;
}

type t = {
  app_name : string;
  app_classes : Runtime.component_class list;
  app_registry : Runtime.registry;
  app_image : Coign_image.Binary_image.t;
  app_default_placement : string -> Coign_core.Constraints.location;
  app_scenarios : scenario list;
}

let make ~name ~roots ~classes ~default_placement ~scenarios =
  let classes =
    if List.exists (fun c -> c.Runtime.cname = Common.file_server_class_name) classes then
      classes
    else classes @ [ Common.file_server ]
  in
  let registry = Runtime.registry classes in
  let meta =
    let infos = Probe.run registry in
    let itype_sigs it =
      List.init (Itype.method_count it) (Itype.method_sig it)
    in
    let ifaces =
      List.concat_map (fun i -> i.Probe.ci_provides) infos
      |> List.map (fun it ->
             { Coign_image.Image_meta.if_name = Itype.name it;
               if_methods = itype_sigs it })
    in
    let cls_meta i =
      {
        Coign_image.Image_meta.cl_name = i.Probe.ci_cname;
        cl_provides = List.map Itype.name i.Probe.ci_provides;
        cl_creates = i.Probe.ci_creates;
      }
    in
    Coign_image.Image_meta.create ~ifaces
      ~classes:(List.map cls_meta infos)
      ~roots
  in
  let image =
    Coign_image.Binary_image.create ~name ~meta
      ~api_refs:(List.map (fun c -> (c.Runtime.cname, c.Runtime.api_refs)) classes)
      ()
  in
  let default_placement cname =
    if String.equal cname Common.file_server_class_name then Coign_core.Constraints.Server
    else default_placement cname
  in
  {
    app_name = name;
    app_classes = classes;
    app_registry = registry;
    app_image = image;
    app_default_placement = default_placement;
    app_scenarios = scenarios;
  }

let scenario t id =
  match List.find_opt (fun s -> String.equal s.sc_id id) t.app_scenarios with
  | Some s -> s
  | None -> raise Not_found

let non_bigone t = List.filter (fun s -> not s.sc_bigone) t.app_scenarios

let bigone t =
  match List.find_opt (fun s -> s.sc_bigone) t.app_scenarios with
  | Some s -> s
  | None -> raise Not_found
