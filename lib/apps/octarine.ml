open Coign_idl
open Coign_com

(* ---------------------------------------------------------------- *)
(* Tuning constants                                                  *)
(* ---------------------------------------------------------------- *)

let text_page_raw = 30_000
let text_page_parsed = 28_500
let page_summary_bytes = 120
let prefetch_window = 15
let paras_per_page = 5

let table_page_raw = 200_000
let rows_per_page = 25
let table_row_parsed = 7_600
let full_fetch_rows = 130
let view_window_rows = 100

let mixed_table_raw = 10_000
let mixed_table_rows = 5
let mixed_row_parsed = 1_800

let negotiation_rounds = 8
let props_bytes_per_page = 1_200

let chg ctx us = Runtime.charge ctx ~us

(* ---------------------------------------------------------------- *)
(* Document specs (what the virtual files contain)                   *)
(* ---------------------------------------------------------------- *)

type doc_kind = K_text | K_table | K_mixed | K_music

type spec = { d_kind : doc_kind; d_pages : int; d_tables : int }

let specs_key : (string, spec) Hashtbl.t Runtime.key = Runtime.new_key ()

let specs ctx =
  match Runtime.get_data ctx specs_key with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 8 in
      Runtime.set_data ctx specs_key t;
      t

let raw_size spec =
  match spec.d_kind with
  | K_text -> spec.d_pages * text_page_raw
  | K_table -> spec.d_pages * table_page_raw
  | K_mixed -> (spec.d_pages * text_page_raw) + (spec.d_tables * mixed_table_raw)
  | K_music -> spec.d_pages * 8_000

let register_doc ctx name spec =
  Hashtbl.replace (specs ctx) name spec;
  Common.Vfs.add ctx ~name ~bytes:(raw_size spec)

let spec_of ctx name =
  match Hashtbl.find_opt (specs ctx) name with
  | Some s -> s
  | None -> Hresult.fail (Hresult.E_fail ("Octarine: unknown document " ^ name))

let kind_name = function
  | K_text -> "text"
  | K_table -> "table"
  | K_mixed -> "mixed"
  | K_music -> "music"

(* ---------------------------------------------------------------- *)
(* Interfaces                                                        *)
(* ---------------------------------------------------------------- *)

let i_doc_app =
  Itype.declare "IOctApp"
    [
      Idl_type.method_ "startup" [];
      Idl_type.method_ ~ret:(Idl_type.Iface "IDocument") "open_document"
        [ Idl_type.param "name" Idl_type.Str ];
      Idl_type.method_ ~ret:(Idl_type.Iface "IDocument") "new_document"
        [ Idl_type.param "kind" Idl_type.Str ];
      Idl_type.method_ "repaint" [];
      Idl_type.method_ "click" [ Idl_type.param "control" Idl_type.Int32 ];
      Idl_type.method_ "shutdown" [];
    ]

let i_document =
  Itype.declare "IDocument"
    [
      Idl_type.method_ "init"
        [
          Idl_type.param "src" (Idl_type.Iface "IDocSource");
          Idl_type.param "render" (Idl_type.Iface "IRender");
        ];
      Idl_type.method_ "show_page" [ Idl_type.param "page" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "page_count" [];
      Idl_type.method_ "add_fragment" [ Idl_type.param "kind" Idl_type.Str ];
    ]

let i_doc_source =
  Itype.declare "IDocSource"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "open_doc" [ Idl_type.param "name" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Int32 "page_count" [];
      Idl_type.method_ ~ret:Idl_type.Str "doc_kind" [];
      Idl_type.method_ ~ret:Idl_type.Int32 "table_count" [];
      Idl_type.method_ ~ret:Idl_type.Blob "read_page" [ Idl_type.param "page" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Blob "reflow_page" [ Idl_type.param "page" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Blob "read_table" [ Idl_type.param "index" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Blob "page_summary" [ Idl_type.param "page" Idl_type.Int32 ];
      Idl_type.method_ ~ret:(Idl_type.Iface "IQuery") "props" [];
    ]

let i_story =
  Itype.declare "IStory"
    [
      Idl_type.method_ "init"
        [
          Idl_type.param "src" (Idl_type.Iface "IDocSource");
          Idl_type.param "render" (Idl_type.Iface "IRender");
          Idl_type.param "props" (Idl_type.Iface "IQuery");
        ];
      Idl_type.method_ ~ret:Idl_type.Int32 "load" [ Idl_type.param "pages" Idl_type.Int32 ];
      Idl_type.method_ "show_page" [ Idl_type.param "page" Idl_type.Int32 ];
      Idl_type.method_ "type_text" [ Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ ~ret:(Idl_type.Iface "IParagraph") "paragraph"
        [ Idl_type.param "index" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "paragraph_count" [];
    ]

let i_paragraph =
  Itype.declare "IParagraph"
    [
      Idl_type.method_ "set_text" [ Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Int32 "layout"
        [
          Idl_type.param "width" Idl_type.Int32;
          Idl_type.param "props" (Idl_type.Iface "IQuery");
        ];
      Idl_type.method_ ~ret:Idl_type.Int32 "measure" [];
      Idl_type.method_ ~ret:Idl_type.Blob "line_boxes" [];
    ]

let i_run =
  Itype.declare "ITextRun"
    [
      Idl_type.method_ "set_text" [ Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Int32 "metrics"
        [ Idl_type.param "props" (Idl_type.Iface "IQuery") ];
    ]

let i_breaker =
  Itype.declare "ILineBreaker"
    [ Idl_type.method_ ~ret:Idl_type.Int32 "break_lines" [ Idl_type.param "data" Idl_type.Blob ] ]

let i_layout =
  Itype.declare "IPageLayout"
    [
      Idl_type.method_ "init" [ Idl_type.param "render" (Idl_type.Iface "IRender") ];
      Idl_type.method_ "begin_page" [ Idl_type.param "page" Idl_type.Int32 ];
      Idl_type.method_ "add_text" [ Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ "finish" [ Idl_type.param "page" Idl_type.Int32 ];
    ]

let i_table_model =
  Itype.declare "ITableModel"
    [
      Idl_type.method_ "init"
        [
          Idl_type.param "src" (Idl_type.Iface "IDocSource");
          Idl_type.param "index" Idl_type.Int32;
        ];
      Idl_type.method_ ~ret:Idl_type.Int32 "load" [];
      Idl_type.method_ ~ret:Idl_type.Int32 "row_count" [];
      Idl_type.method_ ~ret:Idl_type.Blob "fetch_rows"
        [ Idl_type.param "start" Idl_type.Int32; Idl_type.param "count" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "cell_probe" [ Idl_type.param "row" Idl_type.Int32 ];
      Idl_type.method_ "append_row" [ Idl_type.param "data" Idl_type.Blob ];
    ]

let i_table_view =
  Itype.declare "ITableView"
    [
      Idl_type.method_ "init"
        [
          Idl_type.param "model" (Idl_type.Iface "ITableModel");
          Idl_type.param "render" (Idl_type.Iface "IRender");
        ];
      Idl_type.method_ "show" [ Idl_type.param "page" Idl_type.Int32 ];
    ]

let i_placement =
  Itype.declare "IPlacement"
    [
      Idl_type.method_ "set_source"
        [
          Idl_type.param "src" (Idl_type.Iface "IDocSource");
          Idl_type.param "props" (Idl_type.Iface "IQuery");
        ];
      Idl_type.method_ "add_paragraph" [ Idl_type.param "para" (Idl_type.Iface "IParagraph") ];
      Idl_type.method_ "add_table" [ Idl_type.param "model" (Idl_type.Iface "ITableModel") ];
      Idl_type.method_ ~ret:Idl_type.Int32 "negotiate"
        [ Idl_type.param "rounds" Idl_type.Int32; Idl_type.param "pages" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Blob "commit" [];
    ]

let i_music =
  Itype.declare "IMusicSheet"
    [
      Idl_type.method_ "init" [ Idl_type.param "render" (Idl_type.Iface "IRender") ];
      Idl_type.method_ ~ret:(Idl_type.Iface "IMusicStaff") "add_staff" [];
      Idl_type.method_ "compose" [ Idl_type.param "page" Idl_type.Int32 ];
    ]

let i_music_staff =
  Itype.declare "IMusicStaff"
    [
      Idl_type.method_ "add_note"
        [ Idl_type.param "pitch" Idl_type.Int32; Idl_type.param "duration" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "layout_staff" [];
    ]

let i_container =
  Itype.declare "IContainer"
    [
      Idl_type.method_ "set_context"
        [
          Idl_type.param "factory" (Idl_type.Iface "IWidgetFactory");
          Idl_type.param "parent" (Idl_type.Iface "INotify");
          Idl_type.param "self" (Idl_type.Iface "IContainer");
        ];
      Idl_type.method_ ~ret:Idl_type.Int32 "populate" [ Idl_type.param "count" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "adorn" [];
      Idl_type.method_ ~ret:Idl_type.Int32 "refresh" [];
    ]

let i_widget_factory =
  Itype.declare "IWidgetFactory"
    [ Idl_type.method_ ~ret:(Idl_type.Iface "IControl") "make" [ Idl_type.param "kind" Idl_type.Str ] ]

let i_undo =
  Itype.declare "IUndoManager"
    [
      Idl_type.method_ "record_edit"
        [ Idl_type.param "kind" Idl_type.Str; Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Int32 "undo" [];
      Idl_type.method_ ~ret:Idl_type.Int32 "depth" [];
    ]

let i_spell =
  Itype.declare "ISpellChecker"
    [ Idl_type.method_ ~ret:Idl_type.Int32 "check_text" [ Idl_type.param "data" Idl_type.Blob ] ]

let i_style_gallery =
  Itype.declare "IStyleGallery"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "load_template" [ Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Str "style_of" [ Idl_type.param "name" Idl_type.Str ];
    ]

(* ---------------------------------------------------------------- *)
(* GUI                                                               *)
(* ---------------------------------------------------------------- *)

let kit = Widgets.kit ~prefix:"Octarine"

(* All chrome widgets are minted through a three-stage chain of shared
   singleton services (factory -> theme -> constructor), so the frames
   nearest a widget's instantiation are always the same three service
   calls: a shallow stack walk cannot tell a toolbar button from a
   nested menu item — only a walk deep enough to reach the requesting
   container can (the mechanism behind Table 3). *)
let c_control_constructor =
  Runtime.define_class "Octarine.ControlConstructor"
    ~creates:
      [ "Octarine.Menu"; "Octarine.Tooltip"; "Octarine.Button"; "Octarine.MenuPane" ]
    (fun _ctx _self ->
      let make ctx args =
        let ctl =
          match Combuild.get_str args 0 with
          | "menuitem" -> Common.create ctx kit.Widgets.menu Common.i_control
          | "tooltip" -> Common.create ctx kit.Widgets.tooltip Common.i_control
          | "button" -> Common.create ctx kit.Widgets.button Common.i_control
          | "menupane" ->
              Runtime.create_instance ctx (Guid.of_name "CLSID_Octarine.MenuPane")
                ~iid:(Itype.iid i_container)
          | other -> Hresult.fail (Hresult.E_invalidarg ("ControlConstructor: " ^ other))
        in
        chg ctx 10.;
        Combuild.echo args (Value.Iface_ref ctl)
      in
      [ Combuild.iface i_widget_factory [ ("make", make) ] ])

let c_theme_service =
  Runtime.define_class "Octarine.ThemeService" (fun ctx0 _self ->
      let constructor = Common.create ctx0 c_control_constructor i_widget_factory in
      let make ctx args =
        (* Apply the theme, then delegate construction. *)
        chg ctx 6.;
        Combuild.echo args (Common.call ctx constructor "make" args)
      in
      [ Combuild.iface i_widget_factory [ ("make", make) ] ])

let c_widget_factory =
  Runtime.define_class "Octarine.WidgetFactory" (fun ctx0 _self ->
      let theme = Common.create ctx0 c_theme_service i_widget_factory in
      let make ctx args =
        chg ctx 6.;
        Combuild.echo args (Common.call ctx theme "make" args)
      in
      [ Combuild.iface i_widget_factory [ ("make", make) ] ])

(* Containers stamp out their children through the factory and forward
   their notifications and repaints; menu panes nest recursively, so
   menu items at different depths have distinct creation contexts. *)
let container_class name ~child_kind ~recursive =
  Runtime.define_class name ~api_refs:Widgets.gui_apis (fun _ctx _self ->
      let factory = ref None and parent = ref None and self_h = ref None in
      let children = ref [] in
      let set_context ctx args =
        factory := Some (Combuild.get_iface args 0);
        parent := Some (Combuild.get_iface args 1);
        self_h := Some (Combuild.get_iface args 2);
        chg ctx 6.;
        Combuild.echo args Value.Unit
      in
      let make_tooltip ctx =
        match !factory with
        | Some f -> (
            match Common.call ctx f "make" [ Value.Str "tooltip" ] with
            | Value.Iface_ref tip -> children := tip :: !children
            | _ -> ())
        | None -> ()
      in
      let adorn ctx args =
        (* Decorations (tooltips) attached to this container. *)
        make_tooltip ctx;
        chg ctx 8.;
        Combuild.echo args (Value.Int (List.length !children))
      in
      let refresh ctx args =
        (* Rebuilding hover decorations: a second internal path that
           also instantiates tooltips — the entry-point classifier
           cannot tell it from [adorn], the internal-function
           classifier can. *)
        make_tooltip ctx;
        chg ctx 10.;
        Combuild.echo args (Value.Int (List.length !children))
      in
      let populate ctx args =
        let count = Combuild.get_int args 0 in
        let f = Option.get !factory in
        let self = Option.get !self_h in
        let self_notify = Runtime.query_interface ctx self ~iid:(Itype.iid Common.i_notify) in
        for _ = 1 to count do
          match Common.call ctx f "make" [ Value.Str child_kind ] with
          | Value.Iface_ref ctl ->
              ignore (Runtime.call_named ctx ctl "attach" [ Value.Iface_ref self_notify ]);
              children := ctl :: !children
          | _ -> ()
        done;
        (* Flash the first few children (they notify us back). *)
        List.iteri
          (fun i ctl -> if i < 3 then ignore (Runtime.call_named ctx ctl "click" []))
          !children;
        (* Self-calls through our own interface: the entry-point
           classifier collapses them, the internal-function classifier
           does not. *)
        ignore (Runtime.call_named ctx self "adorn" []);
        ignore (Runtime.call_named ctx self "refresh" []);
        if recursive && count > 3 then begin
          match Common.call ctx f "make" [ Value.Str "menupane" ] with
          | Value.Iface_ref sub ->
              ignore
                (Runtime.call_named ctx sub "set_context"
                   [ Value.Iface_ref f; Value.Iface_ref self_notify; Value.Iface_ref sub ]);
              ignore (Runtime.call_named ctx sub "populate" [ Value.Int (count / 2) ]);
              children := sub :: !children
          | _ -> ()
        end;
        chg ctx (float_of_int count *. 9.);
        Combuild.echo args (Value.Int count)
      in
      let notify ctx args =
        (match !parent with
        | Some p -> ignore (Runtime.call_named ctx p "notify" args)
        | None -> ());
        chg ctx 4.;
        Combuild.echo args Value.Unit
      in
      let notify_str ctx args =
        chg ctx 4.;
        Combuild.echo args Value.Unit
      in
      let paint ctx args =
        List.iter
          (fun ctl ->
            match
              Runtime.query_interface ctx ctl ~iid:(Itype.iid Common.i_paint)
            with
            | p -> ignore (Runtime.call_named ctx p "paint" [ Value.Opaque_handle "HDC" ])
            | exception Hresult.Com_error _ -> ())
          !children;
        chg ctx 22.;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 2.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_container
          [ ("set_context", set_context); ("populate", populate); ("adorn", adorn);
            ("refresh", refresh) ];
        Combuild.iface Common.i_notify [ ("notify", notify); ("notify_str", notify_str) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

let c_command_bar = container_class "Octarine.CommandBar" ~child_kind:"button" ~recursive:false
let c_menu_pane = container_class "Octarine.MenuPane" ~child_kind:"menuitem" ~recursive:true

(* ---------------------------------------------------------------- *)
(* Editing services: undo, spelling, styles                          *)
(* ---------------------------------------------------------------- *)

(* One undo record per edit: classic dynamic instantiation driven by
   user input. *)
let c_undo_record =
  Runtime.define_class "Octarine.UndoRecord" (fun _ctx _self ->
      let stored = ref 0 in
      let put ctx args =
        stored := !stored + Combuild.get_blob args 0;
        chg ctx 4.;
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int !stored)
      in
      [ Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ] ])

let c_undo_manager =
  Runtime.define_class "Octarine.UndoManager"
    ~creates:[ "Octarine.UndoRecord" ] (fun _ctx _self ->
      let stack = ref [] in
      let record_edit ctx args =
        let data = Combuild.get_blob args 1 in
        let rcd = Common.create ctx c_undo_record Common.i_blob_sink in
        ignore (Runtime.call_named ctx rcd "put" [ Value.Blob (min data 512) ]);
        stack := rcd :: !stack;
        chg ctx 12.;
        Combuild.echo args Value.Unit
      in
      let undo ctx args =
        (match !stack with
        | rcd :: rest ->
            ignore (Common.call_ret_int ctx rcd "finish" []);
            stack := rest
        | [] -> ());
        chg ctx 15.;
        Combuild.echo args (Value.Int (List.length !stack))
      in
      let depth ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int (List.length !stack))
      in
      [ Combuild.iface i_undo [ ("record_edit", record_edit); ("undo", undo); ("depth", depth) ] ])

let c_spell_checker =
  Runtime.define_class "Octarine.SpellChecker" (fun _ctx _self ->
      let checked = ref 0 in
      let check_text ctx args =
        let data = Combuild.get_blob args 0 in
        checked := !checked + data;
        (* In-memory dictionary lookups. *)
        chg ctx (25. +. (float_of_int data /. 150.));
        Combuild.echo args (Value.Int (data / 900))
      in
      [ Combuild.iface i_spell [ ("check_text", check_text) ] ])

let c_style =
  Runtime.define_class "Octarine.Style" (fun _ctx _self ->
      let put ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int 0)
      in
      [ Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ] ])

let c_style_gallery =
  Runtime.define_class "Octarine.StyleGallery"
    ~creates:[ "Octarine.Style" ] (fun _ctx _self ->
      let styles = ref [] in
      let load_template ctx args =
        let data = Combuild.get_blob args 0 in
        (* A style component per template style sheet entry. *)
        let count = max 4 (min 12 (data / 16_000)) in
        for _ = 1 to count do
          let st = Common.create ctx c_style Common.i_blob_sink in
          ignore (Runtime.call_named ctx st "put" [ Value.Blob (data / count / 8) ]);
          styles := st :: !styles
        done;
        chg ctx (40. +. (float_of_int data /. 1_000.));
        Combuild.echo args (Value.Int count)
      in
      let style_of ctx args =
        ignore (Combuild.get_str args 0);
        chg ctx 5.;
        Combuild.echo args (Value.Str "font:Garamond;weight:400")
      in
      [
        Combuild.iface i_style_gallery
          [ ("load_template", load_template); ("style_of", style_of) ];
      ])

(* ---------------------------------------------------------------- *)
(* Text pipeline                                                     *)
(* ---------------------------------------------------------------- *)

let c_text_run =
  Runtime.define_class "Octarine.TextRun" (fun _ctx _self ->
      let bytes = ref 0 in
      let set_text ctx args =
        bytes := Combuild.get_blob args 0;
        chg ctx (float_of_int !bytes /. 400.);
        Combuild.echo args Value.Unit
      in
      let metrics ctx args =
        let props = Combuild.get_iface args 0 in
        let fm = Common.call_ret_int ctx props "query_int" [ Value.Str "font-metrics" ] in
        chg ctx 14.;
        Combuild.echo args (Value.Int (fm + (!bytes / 8)))
      in
      [ Combuild.iface i_run [ ("set_text", set_text); ("metrics", metrics) ] ])

let c_paragraph =
  Runtime.define_class "Octarine.Paragraph" (fun ctx0 _self ->
      let runs =
        List.init 2 (fun _ -> Common.create ctx0 c_text_run i_run)
      in
      let bytes = ref 0 in
      let set_text ctx args =
        let n = Combuild.get_blob args 0 in
        bytes := n;
        let half = n / 2 in
        List.iteri
          (fun i r ->
            ignore
              (Runtime.call_named ctx r "set_text" [ Value.Blob (if i = 0 then half else n - half) ]))
          runs;
        chg ctx (float_of_int n /. 300.);
        Combuild.echo args Value.Unit
      in
      let layout ctx args =
        let width = Combuild.get_int args 0 in
        let props = Combuild.get_iface args 1 in
        let widths =
          List.map (fun r -> Common.call_ret_int ctx r "metrics" [ Value.Iface_ref props ]) runs
        in
        let total = List.fold_left ( + ) 0 widths in
        chg ctx 60.;
        Combuild.echo args (Value.Int (1 + (total / max 1 width)))
      in
      let measure ctx args =
        chg ctx 6.;
        Combuild.echo args (Value.Int !bytes)
      in
      let line_boxes ctx args =
        chg ctx 18.;
        Combuild.echo args (Value.Blob (!bytes + (!bytes / 16)))
      in
      let paint ctx args =
        chg ctx 30.;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 2.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_paragraph
          [
            ("set_text", set_text); ("layout", layout); ("measure", measure);
            ("line_boxes", line_boxes);
          ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

let c_line_breaker =
  Runtime.define_class "Octarine.LineBreaker" (fun _ctx _self ->
      let break_lines ctx args =
        let n = Combuild.get_blob args 0 in
        chg ctx (20. +. (float_of_int n /. 250.));
        Combuild.echo args (Value.Int (1 + (n / 900)))
      in
      [ Combuild.iface i_breaker [ ("break_lines", break_lines) ] ])

let c_page_layout =
  Runtime.define_class "Octarine.PageLayout" (fun _ctx _self ->
      let render = ref None in
      let pending = ref 0 in
      let init ctx args =
        render := Some (Combuild.get_iface args 0);
        chg ctx 10.;
        Combuild.echo args Value.Unit
      in
      let begin_page ctx args =
        pending := 0;
        chg ctx 12.;
        Combuild.echo args Value.Unit
      in
      let add_text ctx args =
        pending := !pending + Combuild.get_blob args 0;
        chg ctx 25.;
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        let page = Combuild.get_int args 0 in
        (match !render with
        | Some r ->
            ignore
              (Runtime.call_named ctx r "render_page" [ Value.Int page; Value.Blob 2_000 ])
        | None -> ());
        chg ctx (40. +. (float_of_int !pending /. 500.));
        Combuild.echo args Value.Unit
      in
      let paint ctx args =
        chg ctx 90.;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_layout
          [ ("init", init); ("begin_page", begin_page); ("add_text", add_text); ("finish", finish) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

let c_text_properties =
  Runtime.define_class "Octarine.TextProperties" (fun _ctx _self ->
      let stored = ref 0 in
      let put ctx args =
        stored := !stored + Combuild.get_blob args 0;
        chg ctx (float_of_int (Combuild.get_blob args 0) /. 200.);
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 8.;
        Combuild.echo args (Value.Int !stored)
      in
      let query ctx args =
        chg ctx 5.;
        Combuild.echo args (Value.Str "style:normal;font:Garamond;size:11")
      in
      let query_int ctx args =
        chg ctx 4.;
        Combuild.echo args (Value.Int (512 + (!stored mod 97)))
      in
      [
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
        Combuild.iface Common.i_query [ ("query", query); ("query_int", query_int) ];
      ])

(* The document reader: scans the whole file once through the storage
   server to paginate (so its file traffic scales with document size),
   then serves parsed pages from its in-memory index. *)
let c_document_reader =
  Runtime.define_class "Octarine.DocumentReader"
    ~creates:[ "Octarine.TextProperties" ] (fun ctx0 _self ->
      let fs = Common.create_file_server ctx0 in
      let state = ref None in
      let opened_name = ref "" in
      let current_name () = !opened_name in
      (* (spec, props handle option) *)
      let open_doc ctx args =
        let name = Combuild.get_str args 0 in
        opened_name := name;
        let spec = spec_of ctx name in
        let fh = Common.call_ret_int ctx fs "open_file" [ Value.Str name ] in
        let size = Common.call_ret_int ctx fs "file_size" [ Value.Int fh ] in
        (* Full scan in 16 KiB blocks: pagination requires touching the
           entire document even to show page one. *)
        let block = 16_384 in
        let offset = ref 0 in
        while !offset < size do
          let got =
            Common.call_ret_blob ctx fs "read_block"
              [ Value.Int fh; Value.Int !offset; Value.Int block ]
          in
          chg ctx (float_of_int got /. 800.);
          offset := !offset + block
        done;
        let props =
          if spec.d_kind = K_text || spec.d_kind = K_mixed then begin
            let p = Common.create ctx c_text_properties Common.i_blob_sink in
            ignore
              (Runtime.call_named ctx p "put"
                 [ Value.Blob (max 64 (spec.d_pages * props_bytes_per_page)) ]);
            ignore (Runtime.call_named ctx p "finish" []);
            Some (Runtime.query_interface ctx p ~iid:(Itype.iid Common.i_query))
          end
          else None
        in
        state := Some (spec, props);
        chg ctx 150.;
        Combuild.echo args (Value.Int spec.d_pages)
      in
      let with_state f =
        match !state with
        | Some (spec, props) -> f spec props
        | None -> Hresult.fail (Hresult.E_fail "Octarine.DocumentReader: no document open")
      in
      let page_count ctx args =
        with_state (fun spec _ ->
            chg ctx 2.;
            Combuild.echo args (Value.Int spec.d_pages))
      in
      let doc_kind ctx args =
        with_state (fun spec _ ->
            chg ctx 2.;
            Combuild.echo args (Value.Str (kind_name spec.d_kind)))
      in
      let table_count ctx args =
        with_state (fun spec _ ->
            chg ctx 2.;
            let n = match spec.d_kind with K_table -> 1 | K_mixed -> spec.d_tables | _ -> 0 in
            Combuild.echo args (Value.Int n))
      in
      let read_page ctx args =
        with_state (fun spec _ ->
            let page = Combuild.get_int args 0 in
            if page < 0 || page >= max 1 spec.d_pages then
              Hresult.fail (Hresult.E_invalidarg "Octarine: page out of range");
            let bytes =
              match spec.d_kind with
              | K_text | K_mixed -> text_page_parsed
              | K_table -> rows_per_page * table_row_parsed
              | K_music -> 4_000
            in
            chg ctx (float_of_int bytes /. 1_500.);
            Combuild.echo args (Value.Blob bytes))
      in
      let reflow_page ctx args =
        with_state (fun spec _ ->
            let page = Combuild.get_int args 0 in
            if page < 0 || page >= max 1 spec.d_pages then
              Hresult.fail (Hresult.E_invalidarg "Octarine: page out of range");
            (* Re-flow works from the file, not the parse cache: the
               trial layout needs the unflowed source. *)
            let fh = Common.call_ret_int ctx fs "open_file" [ Value.Str (current_name ()) ] in
            ignore
              (Common.call_ret_blob ctx fs "read_block"
                 [ Value.Int fh; Value.Int (page * text_page_raw); Value.Int text_page_raw ]);
            chg ctx (float_of_int text_page_parsed /. 700.);
            Combuild.echo args (Value.Blob text_page_parsed))
      in
      let read_table ctx args =
        with_state (fun spec _ ->
            let index = Combuild.get_int args 0 in
            if index < 0 || index >= max 1 spec.d_tables then
              Hresult.fail (Hresult.E_invalidarg "Octarine: table out of range");
            chg ctx 30.;
            Combuild.echo args (Value.Blob (mixed_table_rows * mixed_row_parsed)))
      in
      let page_summary ctx args =
        with_state (fun _spec _ ->
            chg ctx 4.;
            Combuild.echo args (Value.Blob page_summary_bytes))
      in
      let props_m ctx args =
        with_state (fun _spec props ->
            chg ctx 2.;
            match props with
            | Some p -> Combuild.echo args (Value.Iface_ref p)
            | None -> Combuild.echo args Value.Null)
      in
      [
        Combuild.iface i_doc_source
          [
            ("open_doc", open_doc); ("page_count", page_count); ("doc_kind", doc_kind);
            ("table_count", table_count); ("read_page", read_page);
            ("reflow_page", reflow_page); ("read_table", read_table);
            ("page_summary", page_summary); ("props", props_m);
          ];
      ])

let c_story =
  Runtime.define_class "Octarine.Story"
    ~creates:[ "Octarine.Paragraph" ] (fun ctx0 _self ->
      let breaker = Common.create ctx0 c_line_breaker i_breaker in
      let layout = Common.create ctx0 c_page_layout i_layout in
      let src = ref None and render = ref None and props = ref None in
      let paragraphs = ref [||] in
      (* pages.(p) = paragraph handles of page p (loaded window only) *)
      let pages : Runtime.handle list array ref = ref [||] in
      let init ctx args =
        src := Some (Combuild.get_iface args 0);
        render := Some (Combuild.get_iface args 1);
        (match List.nth args 2 with
        | Value.Iface_ref p -> props := Some p
        | _ -> props := None);
        ignore (Runtime.call_named ctx layout "init" [ List.nth args 1 ]);
        (* Register the layout surface with the window so repaints reach
           it over the non-remotable paint interface. *)
        let layout_paint = Runtime.query_interface ctx layout ~iid:(Itype.iid Common.i_paint) in
        ignore
          (Runtime.call_named ctx (Combuild.get_iface args 1) "attach_surface"
             [ Value.Iface_ref layout_paint ]);
        chg ctx 25.;
        Combuild.echo args Value.Unit
      in
      let load ctx args =
        let total = Combuild.get_int args 0 in
        let s = Option.get !src in
        let window = min total prefetch_window in
        let page_paras = Array.make (max window 0) [] in
        let all = ref [] in
        for p = 0 to window - 1 do
          let data = Common.call_ret_blob ctx s "read_page" [ Value.Int p ] in
          let chunk = data / paras_per_page in
          let paras =
            List.init paras_per_page (fun i ->
                let para = Common.create ctx c_paragraph i_paragraph in
                let sz = if i = paras_per_page - 1 then data - (chunk * (paras_per_page - 1)) else chunk in
                ignore (Runtime.call_named ctx para "set_text" [ Value.Blob sz ]);
                ignore (Common.call_ret_int ctx breaker "break_lines" [ Value.Blob sz ]);
                (* Paragraphs draw themselves: the window repaints them
                   through the non-remotable device-context interface. *)
                let pp = Runtime.query_interface ctx para ~iid:(Itype.iid Common.i_paint) in
                ignore
                  (Runtime.call_named ctx (Option.get !render) "attach_surface"
                     [ Value.Iface_ref pp ]);
                para)
          in
          page_paras.(p) <- paras;
          all := !all @ paras
        done;
        (* Pagination summaries for everything beyond the window. *)
        for p = window to total - 1 do
          ignore (Common.call_ret_blob ctx s "page_summary" [ Value.Int p ])
        done;
        pages := page_paras;
        paragraphs := Array.of_list !all;
        chg ctx (float_of_int total *. 15.);
        Combuild.echo args (Value.Int window)
      in
      let show_page ctx args =
        let page = Combuild.get_int args 0 in
        if page >= 0 && page < Array.length !pages then begin
          ignore (Runtime.call_named ctx layout "begin_page" [ Value.Int page ]);
          List.iter
            (fun para ->
              (match !props with
              | Some p ->
                  ignore
                    (Runtime.call_named ctx para "layout" [ Value.Int 640; Value.Iface_ref p ])
              | None -> ());
              let boxes = Common.call_ret_blob ctx para "line_boxes" [] in
              ignore (Runtime.call_named ctx layout "add_text" [ Value.Blob boxes ]))
            !pages.(page);
          ignore (Runtime.call_named ctx layout "finish" [ Value.Int page ])
        end;
        chg ctx 35.;
        Combuild.echo args Value.Unit
      in
      let type_text ctx args =
        let n = Combuild.get_blob args 0 in
        let para = Common.create ctx c_paragraph i_paragraph in
        ignore (Runtime.call_named ctx para "set_text" [ Value.Blob n ]);
        ignore (Common.call_ret_int ctx breaker "break_lines" [ Value.Blob n ]);
        (match !render with
        | Some r ->
            let pp = Runtime.query_interface ctx para ~iid:(Itype.iid Common.i_paint) in
            ignore (Runtime.call_named ctx r "attach_surface" [ Value.Iface_ref pp ])
        | None -> ());
        (match !props with
        | Some p ->
            ignore (Runtime.call_named ctx para "layout" [ Value.Int 640; Value.Iface_ref p ])
        | None -> ());
        if Array.length !pages = 0 then pages := [| [ para ] |]
        else !pages.(0) <- !pages.(0) @ [ para ];
        paragraphs := Array.append !paragraphs [| para |];
        ignore (Runtime.call_named ctx layout "begin_page" [ Value.Int 0 ]);
        ignore (Runtime.call_named ctx layout "add_text" [ Value.Blob (n + (n / 16)) ]);
        ignore (Runtime.call_named ctx layout "finish" [ Value.Int 0 ]);
        chg ctx 45.;
        Combuild.echo args Value.Unit
      in
      let paragraph ctx args =
        let i = Combuild.get_int args 0 in
        chg ctx 2.;
        if i >= 0 && i < Array.length !paragraphs then
          Combuild.echo args (Value.Iface_ref !paragraphs.(i))
        else Combuild.echo args Value.Null
      in
      let paragraph_count ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int (Array.length !paragraphs))
      in
      [
        Combuild.iface i_story
          [
            ("init", init); ("load", load); ("show_page", show_page); ("type_text", type_text);
            ("paragraph", paragraph); ("paragraph_count", paragraph_count);
          ];
      ])

(* ---------------------------------------------------------------- *)
(* Table pipeline                                                    *)
(* ---------------------------------------------------------------- *)

let c_table_row =
  Runtime.define_class "Octarine.TableRow" (fun _ctx _self ->
      let bytes = ref 0 in
      let set_text ctx args =
        bytes := Combuild.get_blob args 0;
        chg ctx 6.;
        Combuild.echo args Value.Unit
      in
      let metrics ctx args =
        ignore (Combuild.get_iface args 0);
        chg ctx 4.;
        Combuild.echo args (Value.Int (!bytes / 8))
      in
      [ Combuild.iface i_run [ ("set_text", set_text); ("metrics", metrics) ] ])

let c_table_model =
  Runtime.define_class "Octarine.TableModel"
    ~creates:[ "Octarine.TableRow" ] (fun _ctx _self ->
      let src = ref None in
      let index = ref (-1) in
      let rows = ref 0 in
      let row_bytes = ref mixed_row_parsed in
      let init ctx args =
        (match List.nth args 0 with
        | Value.Iface_ref h -> src := Some h
        | _ -> src := None);
        index := Combuild.get_int args 1;
        chg ctx 8.;
        Combuild.echo args Value.Unit
      in
      let load ctx args =
        (match (!src, !index) with
        | Some s, -1 ->
            (* Whole-document table: stream every parsed page. *)
            let kind = Common.call_ret_str ctx s "doc_kind" [] in
            ignore kind;
            let pages =
              (* The model learns the page count from its first read;
                 the document tells it via repeated read_page calls. *)
              0
            in
            ignore pages
        | Some s, i when i >= 0 ->
            let data = Common.call_ret_blob ctx s "read_table" [ Value.Int i ] in
            rows := mixed_table_rows;
            row_bytes := data / max 1 mixed_table_rows;
            for _r = 1 to mixed_table_rows do
              let row = Common.create ctx c_table_row i_run in
              ignore (Runtime.call_named ctx row "set_text" [ Value.Blob !row_bytes ])
            done;
            chg ctx (float_of_int data /. 600.)
        | _ -> ());
        chg ctx 20.;
        Combuild.echo args (Value.Int !rows)
      in
      let row_count ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int !rows)
      in
      let fetch_rows ctx args =
        let start = Combuild.get_int args 0 in
        let count = Combuild.get_int args 1 in
        let n = max 0 (min count (!rows - start)) in
        chg ctx (float_of_int (n * !row_bytes) /. 2_000.);
        Combuild.echo args (Value.Blob (n * !row_bytes))
      in
      let cell_probe ctx args =
        let row = Combuild.get_int args 0 in
        chg ctx 4.;
        Combuild.echo args (Value.Int ((row * 37) mod 101))
      in
      let append_row ctx args =
        let data = Combuild.get_blob args 0 in
        rows := !rows + 1;
        row_bytes := max !row_bytes data;
        chg ctx 15.;
        Combuild.echo args Value.Unit
      in
      (* Document-level tables stream pages through this sink. *)
      let put ctx args =
        let data = Combuild.get_blob args 0 in
        rows := !rows + (data / max 1 table_row_parsed);
        row_bytes := table_row_parsed;
        chg ctx (float_of_int data /. 2_500.);
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 10.;
        Combuild.echo args (Value.Int !rows)
      in
      [
        Combuild.iface i_table_model
          [
            ("init", init); ("load", load); ("row_count", row_count); ("fetch_rows", fetch_rows);
            ("cell_probe", cell_probe); ("append_row", append_row);
          ];
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
      ])

let c_table_view =
  Runtime.define_class "Octarine.TableView" (fun _ctx _self ->
      let model = ref None and render = ref None in
      let init ctx args =
        model := Some (Combuild.get_iface args 0);
        render := Some (Combuild.get_iface args 1);
        chg ctx 12.;
        Combuild.echo args Value.Unit
      in
      let show ctx args =
        let page = Combuild.get_int args 0 in
        (match (!model, !render) with
        | Some m, Some r ->
            let rows = Common.call_ret_int ctx m "row_count" [] in
            let wanted = if rows <= full_fetch_rows then rows else view_window_rows in
            (* Fetch in 10-row chunks, as a scrolling grid would. *)
            let fetched = ref 0 in
            while !fetched < wanted do
              let n = min 10 (wanted - !fetched) in
              ignore
                (Common.call_ret_blob ctx m "fetch_rows" [ Value.Int !fetched; Value.Int n ]);
              fetched := !fetched + n
            done;
            ignore (Runtime.call_named ctx r "render_page" [ Value.Int page; Value.Blob 2_200 ])
        | _ -> ());
        chg ctx 80.;
        Combuild.echo args Value.Unit
      in
      let paint ctx args =
        chg ctx 70.;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_table_view [ ("init", init); ("show", show) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

(* A scratch layout the placement engine builds per negotiation trial. *)
let c_trial_layout =
  Runtime.define_class "Octarine.TrialLayout" (fun _ctx _self ->
      let break_lines ctx args =
        let n = Combuild.get_blob args 0 in
        chg ctx (15. +. (float_of_int n /. 900.));
        Combuild.echo args (Value.Int (n / 700))
      in
      [ Combuild.iface i_breaker [ ("break_lines", break_lines) ] ])

let c_page_placement =
  Runtime.define_class "Octarine.PagePlacement"
    ~creates:[ "Octarine.TrialLayout" ] (fun _ctx _self ->
      let src = ref None and props = ref None in
      let paras = ref [] and tables = ref [] in
      let set_source ctx args =
        src := Some (Combuild.get_iface args 0);
        (match List.nth args 1 with
        | Value.Iface_ref p -> props := Some p
        | _ -> props := None);
        chg ctx 6.;
        Combuild.echo args Value.Unit
      in
      let add_paragraph ctx args =
        paras := Combuild.get_iface args 0 :: !paras;
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      let add_table ctx args =
        tables := Combuild.get_iface args 0 :: !tables;
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      let negotiate ctx args =
        let rounds = Combuild.get_int args 0 in
        let pages = Combuild.get_int args 1 in
        let s = Option.get !src in
        for _round = 1 to rounds do
          (* Re-read the candidate pages to re-flow text around the
             tables under the new trial placement. *)
          for p = 0 to pages - 1 do
            ignore (Common.call_ret_blob ctx s "reflow_page" [ Value.Int p ])
          done;
          List.iter
            (fun m ->
              let trial = Common.create ctx c_trial_layout i_breaker in
              ignore
                (Common.call_ret_int ctx trial "break_lines" [ Value.Blob text_page_parsed ]);
              ignore (Common.call_ret_int ctx m "row_count" []);
              ignore (Common.call_ret_int ctx m "cell_probe" [ Value.Int 1 ]))
            !tables;
          List.iter (fun p -> ignore (Common.call_ret_int ctx p "measure" [])) !paras;
          (match !props with
          | Some pr ->
              ignore (Common.call_ret_int ctx pr "query_int" [ Value.Str "page-metrics" ]);
              ignore (Common.call_ret_int ctx pr "query_int" [ Value.Str "float-rules" ])
          | None -> ());
          chg ctx 180.
        done;
        Combuild.echo args (Value.Int (rounds * pages))
      in
      let commit ctx args =
        chg ctx 30.;
        Combuild.echo args (Value.Blob (16 * (List.length !tables + 1)))
      in
      [
        Combuild.iface i_placement
          [
            ("set_source", set_source); ("add_paragraph", add_paragraph);
            ("add_table", add_table); ("negotiate", negotiate); ("commit", commit);
          ];
      ])

(* ---------------------------------------------------------------- *)
(* Music pipeline                                                    *)
(* ---------------------------------------------------------------- *)

let c_music_bar =
  Runtime.define_class "Octarine.MusicBar" (fun _ctx _self ->
      let notes = ref 0 in
      let add_note ctx args =
        ignore (Combuild.get_int args 0);
        incr notes;
        chg ctx 7.;
        Combuild.echo args Value.Unit
      in
      let layout_staff ctx args =
        chg ctx 15.;
        Combuild.echo args (Value.Int !notes)
      in
      [ Combuild.iface i_music_staff [ ("add_note", add_note); ("layout_staff", layout_staff) ] ])

let c_music_staff =
  Runtime.define_class "Octarine.MusicStaff"
    ~creates:[ "Octarine.MusicBar" ] (fun _ctx _self ->
      let bars = ref [] in
      let count = ref 0 in
      let add_note ctx args =
        (if !count mod 4 = 0 then
           let bar = Common.create ctx c_music_bar i_music_staff in
           bars := bar :: !bars);
        incr count;
        (match !bars with
        | bar :: _ -> ignore (Runtime.call_named ctx bar "add_note" args)
        | [] -> ());
        chg ctx 6.;
        Combuild.echo args Value.Unit
      in
      let layout_staff ctx args =
        List.iter (fun b -> ignore (Common.call_ret_int ctx b "layout_staff" [])) !bars;
        chg ctx 40.;
        Combuild.echo args (Value.Int !count)
      in
      [ Combuild.iface i_music_staff [ ("add_note", add_note); ("layout_staff", layout_staff) ] ])

let c_music_sheet =
  Runtime.define_class "Octarine.MusicSheet"
    ~creates:[ "Octarine.MusicStaff" ] (fun _ctx _self ->
      let render = ref None in
      let staves = ref [] in
      let init ctx args =
        render := Some (Combuild.get_iface args 0);
        chg ctx 12.;
        Combuild.echo args Value.Unit
      in
      let add_staff ctx args =
        let staff = Common.create ctx c_music_staff i_music_staff in
        staves := staff :: !staves;
        chg ctx 10.;
        Combuild.echo args (Value.Iface_ref staff)
      in
      let compose ctx args =
        let page = Combuild.get_int args 0 in
        List.iter (fun s -> ignore (Common.call_ret_int ctx s "layout_staff" [])) !staves;
        (match !render with
        | Some r ->
            ignore (Runtime.call_named ctx r "render_page" [ Value.Int page; Value.Blob 1_800 ])
        | None -> ());
        chg ctx 90.;
        Combuild.echo args Value.Unit
      in
      let paint ctx args =
        chg ctx 60.;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_music [ ("init", init); ("add_staff", add_staff); ("compose", compose) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

(* ---------------------------------------------------------------- *)
(* Document controller                                               *)
(* ---------------------------------------------------------------- *)

let c_document =
  Runtime.define_class "Octarine.Document"
    ~creates:
      [
        "Octarine.Story"; "Octarine.TableModel"; "Octarine.TableView";
        "Octarine.PagePlacement"; "Octarine.MusicSheet";
      ]
    (fun ctx0 _self ->
      let undo = Common.create ctx0 c_undo_manager i_undo in
      let spell = Common.create ctx0 c_spell_checker i_spell in
      let src = ref None and render = ref None in
      let story = ref None and views = ref [] and sheet = ref None in
      let pages = ref 0 in
      let attach_surface_of ctx render_h comp =
        let p = Runtime.query_interface ctx comp ~iid:(Itype.iid Common.i_paint) in
        ignore (Runtime.call_named ctx render_h "attach_surface" [ Value.Iface_ref p ])
      in
      let setup_text ctx s r props_v =
        let st = Common.create ctx c_story i_story in
        ignore (Runtime.call_named ctx st "init" [ Value.Iface_ref s; Value.Iface_ref r; props_v ]);
        ignore (Runtime.call_named ctx st "load" [ Value.Int !pages ]);
        story := Some st
      in
      let setup_doc_table ctx s r =
        (* A whole-document table: the model streams every parsed page
           from the reader, the view fetches what it shows. *)
        let model = Common.create ctx c_table_model i_table_model in
        ignore (Runtime.call_named ctx model "init" [ Value.Iface_ref s; Value.Int (-1) ]);
        let sink = Runtime.query_interface ctx model ~iid:(Itype.iid Common.i_blob_sink) in
        for p = 0 to !pages - 1 do
          let data = Common.call_ret_blob ctx s "read_page" [ Value.Int p ] in
          ignore (Runtime.call_named ctx sink "put" [ Value.Blob data ])
        done;
        ignore (Common.call_ret_int ctx sink "finish" []);
        let view = Common.create ctx c_table_view i_table_view in
        ignore (Runtime.call_named ctx view "init" [ Value.Iface_ref model; Value.Iface_ref r ]);
        attach_surface_of ctx r view;
        views := (model, view) :: !views
      in
      let setup_mixed ctx s r props_v ntables =
        setup_text ctx s r props_v;
        let models =
          List.init ntables (fun i ->
              let model = Common.create ctx c_table_model i_table_model in
              ignore (Runtime.call_named ctx model "init" [ Value.Iface_ref s; Value.Int i ]);
              ignore (Common.call_ret_int ctx model "load" []);
              let view = Common.create ctx c_table_view i_table_view in
              ignore
                (Runtime.call_named ctx view "init" [ Value.Iface_ref model; Value.Iface_ref r ]);
              attach_surface_of ctx r view;
              views := (model, view) :: !views;
              model)
        in
        (* Page-placement negotiation between the text flow and the
           embedded tables. *)
        let placement = Common.create ctx c_page_placement i_placement in
        ignore (Runtime.call_named ctx placement "set_source" [ Value.Iface_ref s; props_v ]);
        (match !story with
        | Some st ->
            let n = Common.call_ret_int ctx st "paragraph_count" [] in
            for i = 0 to min (n - 1) 9 do
              match Common.call ctx st "paragraph" [ Value.Int i ] with
              | Value.Iface_ref p ->
                  ignore (Runtime.call_named ctx placement "add_paragraph" [ Value.Iface_ref p ])
              | _ -> ()
            done
        | None -> ());
        List.iter
          (fun m -> ignore (Runtime.call_named ctx placement "add_table" [ Value.Iface_ref m ]))
          models;
        ignore
          (Common.call_ret_int ctx placement "negotiate"
             [ Value.Int negotiation_rounds; Value.Int !pages ]);
        ignore (Common.call_ret_blob ctx placement "commit" [])
      in
      let setup_music ctx r =
        let sh = Common.create ctx c_music_sheet i_music in
        ignore (Runtime.call_named ctx sh "init" [ Value.Iface_ref r ]);
        for _staff = 1 to 5 do
          match Common.call ctx sh "add_staff" [] with
          | Value.Iface_ref staff ->
              for note = 1 to 20 do
                ignore
                  (Runtime.call_named ctx staff "add_note"
                     [ Value.Int (40 + (note mod 24)); Value.Int 8 ])
              done
          | _ -> ()
        done;
        ignore (Runtime.call_named ctx sh "compose" [ Value.Int 0 ]);
        attach_surface_of ctx r sh;
        sheet := Some sh
      in
      let init ctx args =
        let s = Combuild.get_iface args 0 in
        let r = Combuild.get_iface args 1 in
        src := Some s;
        render := Some r;
        pages := Common.call_ret_int ctx s "page_count" [];
        let kind = Common.call_ret_str ctx s "doc_kind" [] in
        let props_v = Common.call ctx s "props" [] in
        (match kind with
        | "text" -> setup_text ctx s r props_v
        | "table" -> setup_doc_table ctx s r
        | "mixed" -> setup_mixed ctx s r props_v (Common.call_ret_int ctx s "table_count" [])
        | "music" -> setup_music ctx r
        | other -> Hresult.fail (Hresult.E_fail ("Octarine: unknown document kind " ^ other)));
        chg ctx 40.;
        Combuild.echo args Value.Unit
      in
      let show_page ctx args =
        let page = Combuild.get_int args 0 in
        (match !story with
        | Some st -> ignore (Runtime.call_named ctx st "show_page" [ Value.Int page ])
        | None -> ());
        List.iter
          (fun (_, view) -> ignore (Runtime.call_named ctx view "show" [ Value.Int page ]))
          !views;
        (match !sheet with
        | Some sh -> ignore (Runtime.call_named ctx sh "compose" [ Value.Int page ])
        | None -> ());
        chg ctx 25.;
        Combuild.echo args Value.Unit
      in
      let page_count ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int !pages)
      in
      let add_fragment ctx args =
        ignore (Runtime.call_named ctx undo "record_edit" [ List.nth args 0; Value.Blob 800 ]);
        (match Combuild.get_str args 0 with
        | "text" ->
            ignore (Common.call_ret_int ctx spell "check_text" [ Value.Blob 800 ]);
            (
            match (!story, !render) with
            | Some st, _ -> ignore (Runtime.call_named ctx st "type_text" [ Value.Blob 800 ])
            | None, Some r ->
                let props_v =
                  match !src with Some s -> Common.call ctx s "props" [] | None -> Value.Null
                in
                (match !src with
                | Some s ->
                    let st = Common.create ctx c_story i_story in
                    ignore
                      (Runtime.call_named ctx st "init"
                         [ Value.Iface_ref s; Value.Iface_ref r; props_v ]);
                    ignore (Runtime.call_named ctx st "type_text" [ Value.Blob 800 ]);
                    story := Some st
                | None -> ())
            | None, None -> ())
        | "row" -> (
            match (!views, (!src, !render)) with
            | (model, view) :: _, _ ->
                ignore (Runtime.call_named ctx model "append_row" [ Value.Blob 400 ]);
                ignore (Runtime.call_named ctx view "show" [ Value.Int 0 ])
            | [], (Some s, Some r) ->
                let model = Common.create ctx c_table_model i_table_model in
                ignore (Runtime.call_named ctx model "init" [ Value.Iface_ref s; Value.Int (-1) ]);
                ignore (Runtime.call_named ctx model "append_row" [ Value.Blob 400 ]);
                let view = Common.create ctx c_table_view i_table_view in
                ignore
                  (Runtime.call_named ctx view "init" [ Value.Iface_ref model; Value.Iface_ref r ]);
                attach_surface_of ctx r view;
                ignore (Runtime.call_named ctx view "show" [ Value.Int 0 ]);
                views := [ (model, view) ]
            | [], _ -> ())
        | "notes" -> (
            match !sheet with
            | Some sh -> ignore (Runtime.call_named ctx sh "compose" [ Value.Int 0 ])
            | None -> (
                match !render with Some r -> setup_music ctx r | None -> ()))
        | other -> Hresult.fail (Hresult.E_invalidarg ("Octarine: fragment kind " ^ other)));
        chg ctx 20.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_document
          [
            ("init", init); ("show_page", show_page); ("page_count", page_count);
            ("add_fragment", add_fragment);
          ];
      ])

(* ---------------------------------------------------------------- *)
(* Application root                                                  *)
(* ---------------------------------------------------------------- *)

let c_app =
  Runtime.define_class "Octarine.App" ~api_refs:Widgets.gui_apis
    ~creates:
      (Widgets.class_names kit
      @ [
          "Octarine.WidgetFactory"; "Octarine.CommandBar"; "Octarine.DocumentReader";
          "Octarine.Document"; "Octarine.StyleGallery"; Common.file_server_class_name;
        ])
    (fun _ctx _self ->
      let chrome = ref None in
      let fs = ref None in
      let container_paints = ref [] in
      let startup ctx args =
        (* Big word-processor chrome: command bars and a nested menu
           strip, each stamping out its children through the shared
           widget factory. *)
        let c = Widgets.build_chrome ctx kit ~buttons:6 ~menus:4 ~extras:6 in
        chrome := Some c;
        let factory = Common.create ctx c_widget_factory i_widget_factory in
        let wire box count =
          ignore
            (Runtime.call_named ctx box "set_context"
               [ Value.Iface_ref factory; Value.Iface_ref c.Widgets.window_notify;
                 Value.Iface_ref box ]);
          ignore (Runtime.call_named ctx box "populate" [ Value.Int count ]);
          container_paints :=
            Runtime.query_interface ctx box ~iid:(Itype.iid Common.i_paint)
            :: !container_paints
        in
        for _bar = 1 to 4 do
          wire (Common.create ctx c_command_bar i_container) 28
        done;
        for _pane = 1 to 12 do
          match Common.call ctx factory "make" [ Value.Str "menupane" ] with
          | Value.Iface_ref pane -> wire pane 10
          | _ -> ()
        done;
        (* Application settings live on the file server. *)
        let f = Common.create_file_server ctx in
        fs := Some f;
        ignore (Common.call_ret_blob ctx f "read_all" [ Value.Str "octarine.ini" ]);
        chg ctx 800.;
        Combuild.echo args Value.Unit
      in
      let open_document ctx args =
        let name = Combuild.get_str args 0 in
        let c = Option.get !chrome in
        let reader = Common.create ctx c_document_reader i_doc_source in
        ignore (Common.call_ret_int ctx reader "open_doc" [ Value.Str name ]);
        let doc = Common.create ctx c_document i_document in
        ignore
          (Runtime.call_named ctx doc "init"
             [ Value.Iface_ref reader; Value.Iface_ref c.Widgets.window_render ]);
        ignore (Runtime.call_named ctx doc "show_page" [ Value.Int 0 ]);
        chg ctx 200.;
        Combuild.echo args (Value.Iface_ref doc)
      in
      let new_document ctx args =
        let kind = Combuild.get_str args 0 in
        (* Fresh documents start from a template read off the server;
           tables start blank. *)
        (match (kind, !fs) with
        | "text", Some f ->
            let data = Common.call_ret_blob ctx f "read_all" [ Value.Str "normal.dot" ] in
            let gallery = Common.create ctx c_style_gallery i_style_gallery in
            ignore (Runtime.call_named ctx gallery "load_template" [ Value.Blob data ]);
            ignore (Common.call_ret_str ctx gallery "style_of" [ Value.Str "Normal" ]);
            ignore (Common.call_ret_str ctx gallery "style_of" [ Value.Str "Heading 1" ])
        | "music", Some f ->
            ignore (Common.call_ret_blob ctx f "read_all" [ Value.Str "music.mst" ])
        | _ -> ());
        let name = "__new." ^ kind in
        register_doc ctx name
          {
            d_kind =
              (match kind with
              | "text" -> K_text
              | "table" -> K_table
              | "music" -> K_music
              | "mixed" -> K_mixed
              | other -> Hresult.fail (Hresult.E_invalidarg ("Octarine: new " ^ other)));
            d_pages = 0;
            d_tables = 0;
          };
        open_document ctx [ Value.Str name ]
      in
      let repaint ctx args =
        (match !chrome with
        | Some c ->
            List.iter
              (fun p -> ignore (Runtime.call_named ctx p "paint" [ Value.Opaque_handle "HDC" ]))
              (c.Widgets.paints @ !container_paints)
        | None -> ());
        chg ctx 60.;
        Combuild.echo args Value.Unit
      in
      let click ctx args =
        let i = Combuild.get_int args 0 in
        (match !chrome with
        | Some c -> (
            match List.nth_opt c.Widgets.controls (i mod max 1 (List.length c.Widgets.controls)) with
            | Some ctl -> ignore (Runtime.call_named ctx ctl "click" [])
            | None -> ())
        | None -> ());
        chg ctx 10.;
        Combuild.echo args Value.Unit
      in
      let shutdown ctx args =
        chg ctx 150.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_doc_app
          [
            ("startup", startup); ("open_document", open_document);
            ("new_document", new_document); ("repaint", repaint); ("click", click);
            ("shutdown", shutdown);
          ];
      ])

(* ---------------------------------------------------------------- *)
(* Scenarios: Table 1, the o_ rows                                   *)
(* ---------------------------------------------------------------- *)

let docs =
  [
    ("memo5.doc", { d_kind = K_text; d_pages = 5; d_tables = 0 });
    ("report13.doc", { d_kind = K_text; d_pages = 13; d_tables = 0 });
    ("book208.doc", { d_kind = K_text; d_pages = 208; d_tables = 0 });
    ("report5.tbl", { d_kind = K_table; d_pages = 5; d_tables = 0 });
    ("ledger150.tbl", { d_kind = K_table; d_pages = 150; d_tables = 0 });
    ("mixed5.doc", { d_kind = K_mixed; d_pages = 5; d_tables = 10 });
  ]

let prepare ctx =
  Common.Vfs.add ctx ~name:"octarine.ini" ~bytes:6_000;
  Common.Vfs.add ctx ~name:"normal.dot" ~bytes:160_000;
  Common.Vfs.add ctx ~name:"music.mst" ~bytes:155_000;
  List.iter (fun (name, spec) -> register_doc ctx name spec) docs

let boot ctx =
  prepare ctx;
  let app = Common.create ctx c_app i_doc_app in
  ignore (Runtime.call_named ctx app "startup" []);
  app

let scenario_new kind frags ctx =
  let app = boot ctx in
  (match Common.call ctx app "new_document" [ Value.Str kind ] with
  | Value.Iface_ref doc ->
      List.iter
        (fun frag -> ignore (Runtime.call_named ctx doc "add_fragment" [ Value.Str frag ]))
        frags
  | _ -> ());
  ignore (Runtime.call_named ctx app "click" [ Value.Int 3 ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_open name extra_pages ctx =
  let app = boot ctx in
  (match Common.call ctx app "open_document" [ Value.Str name ] with
  | Value.Iface_ref doc ->
      List.iter
        (fun p -> ignore (Runtime.call_named ctx doc "show_page" [ Value.Int p ]))
        extra_pages
  | _ -> ());
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_off first name ctx =
  (* "o_newdoc then o_old...": one session, two documents. *)
  let app = boot ctx in
  (match Common.call ctx app "new_document" [ Value.Str first ] with
  | Value.Iface_ref doc ->
      ignore (Runtime.call_named ctx doc "add_fragment" [ Value.Str "text" ])
  | _ -> ());
  ignore (Runtime.call_named ctx app "repaint" []);
  (match Common.call ctx app "open_document" [ Value.Str name ] with
  | Value.Iface_ref doc -> ignore (Runtime.call_named ctx doc "show_page" [ Value.Int 0 ])
  | _ -> ());
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let sc id desc run = { App.sc_id = id; sc_desc = desc; sc_bigone = false; sc_run = run }

let scenarios =
  [
    sc "o_newdoc" "Create text document."
      (scenario_new "text" [ "text"; "text"; "text" ]);
    sc "o_newmus" "Create music document." (scenario_new "music" [ "notes"; "notes" ]);
    sc "o_newtbl" "Create table document." (scenario_new "table" [ "row"; "row"; "row" ]);
    sc "o_oldtb0" "View 5-page table." (scenario_open "report5.tbl" []);
    sc "o_oldtb3" "View 150-page table." (scenario_open "ledger150.tbl" []);
    sc "o_oldwp0" "View 5-page text document." (scenario_open "memo5.doc" []);
    sc "o_oldwp3" "View 13-page text document." (scenario_open "report13.doc" [ 1 ]);
    sc "o_oldwp7" "View 208-page text document." (scenario_open "book208.doc" [ 1; 2 ]);
    sc "o_oldbth" "View 5-page text doc. with tables." (scenario_open "mixed5.doc" []);
    sc "o_offtb3" "o_newdoc then o_oldtb3." (scenario_off "text" "ledger150.tbl");
    sc "o_offwp7" "o_newdoc then o_oldwp7." (scenario_off "text" "book208.doc");
    {
      App.sc_id = "o_bigone";
      sc_desc = "All of the above in one scenario.";
      sc_bigone = true;
      sc_run =
        (fun ctx ->
          scenario_new "text" [ "text"; "text"; "text" ] ctx;
          scenario_new "music" [ "notes"; "notes" ] ctx;
          scenario_new "table" [ "row"; "row"; "row" ] ctx;
          scenario_open "report5.tbl" [] ctx;
          scenario_open "ledger150.tbl" [] ctx;
          scenario_open "memo5.doc" [] ctx;
          scenario_open "report13.doc" [ 1 ] ctx;
          scenario_open "book208.doc" [ 1; 2 ] ctx;
          scenario_open "mixed5.doc" [] ctx;
          scenario_off "text" "ledger150.tbl" ctx;
          scenario_off "text" "book208.doc" ctx);
    };
  ]

let classes =
  Widgets.classes kit
  @ [
      c_control_constructor; c_theme_service; c_widget_factory; c_command_bar; c_menu_pane;
      c_text_run; c_paragraph; c_line_breaker; c_page_layout;
      c_text_properties; c_document_reader; c_story; c_table_row; c_table_model; c_table_view;
      c_trial_layout; c_page_placement; c_music_bar; c_music_staff; c_music_sheet;
      c_undo_record; c_undo_manager; c_spell_checker; c_style; c_style_gallery; c_document;
      c_app;
    ]

(* The distribution figures use documents that are not Table 1 rows:
   Figure 5 loads a 35-page text-only document. *)
let figure5 =
  {
    App.sc_id = "o_fig5";
    sc_desc = "View 35-page text document (Figure 5).";
    sc_bigone = false;
    sc_run =
      (fun ctx ->
        register_doc ctx "figure35.doc" { d_kind = K_text; d_pages = 35; d_tables = 0 };
        scenario_open "figure35.doc" [] ctx);
  }

let app =
  App.make ~name:"octarine" ~roots:[ "Octarine.App" ] ~classes
    ~default_placement:(fun _cname -> Coign_core.Constraints.Client)
    ~scenarios
