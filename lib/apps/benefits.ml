open Coign_idl
open Coign_com

let chg ctx us = Runtime.charge ctx ~us

let queries_per_view = 60
let cache_count = 4
let rows_per_fetch = 12
let row_bytes = 700
let odbc_row_bytes = 1_100

(* ---------------------------------------------------------------- *)
(* Interfaces                                                        *)
(* ---------------------------------------------------------------- *)

let i_ben_app =
  Itype.declare "IBenApp"
    [
      Idl_type.method_ "startup" [];
      Idl_type.method_ ~ret:Idl_type.Bool "login" [ Idl_type.param "user" Idl_type.Str ];
      Idl_type.method_ "view_employee" [ Idl_type.param "id" Idl_type.Int32 ];
      Idl_type.method_ "add_employee" [ Idl_type.param "record" Idl_type.Blob ];
      Idl_type.method_ "delete_employee" [ Idl_type.param "id" Idl_type.Int32 ];
      Idl_type.method_ "run_report" [];
      Idl_type.method_ "repaint" [];
      Idl_type.method_ "shutdown" [];
    ]

let i_sql =
  Itype.declare "ISql"
    [
      Idl_type.method_ ~ret:Idl_type.Blob "exec" [ Idl_type.param "statement" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Int32 "exec_update" [ Idl_type.param "statement" Idl_type.Str ];
    ]

let i_logic =
  Itype.declare "IBusinessLogic"
    [
      Idl_type.method_ "init" [ Idl_type.param "db" (Idl_type.Iface "ISql") ];
      Idl_type.method_ ~ret:(Idl_type.Iface "IRecordSet") "fetch"
        [ Idl_type.param "entity" Idl_type.Str; Idl_type.param "key" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "update"
        [ Idl_type.param "entity" Idl_type.Str; Idl_type.param "record" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Int32 "remove"
        [ Idl_type.param "entity" Idl_type.Str; Idl_type.param "key" Idl_type.Int32 ];
    ]

let i_recordset =
  Itype.declare "IRecordSet"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "row_count" [];
      Idl_type.method_ ~ret:Idl_type.Blob "rows"
        [ Idl_type.param "start" Idl_type.Int32; Idl_type.param "count" Idl_type.Int32 ];
    ]

let i_cache =
  Itype.declare "IBenCache"
    [
      Idl_type.method_ "init"
        [ Idl_type.param "logic" (Idl_type.Iface "IBusinessLogic");
          Idl_type.param "entity" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Str "lookup" [ Idl_type.param "key" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Int32 "refresh" [ Idl_type.param "key" Idl_type.Int32 ];
      Idl_type.method_ "invalidate_all" [];
    ]

let i_validation =
  Itype.declare "IValidation"
    [
      Idl_type.method_ "init" [ Idl_type.param "db" (Idl_type.Iface "ISql") ];
      Idl_type.method_ ~ret:Idl_type.Int32 "validate" [ Idl_type.param "record" Idl_type.Blob ];
    ]

let i_report =
  Itype.declare "IReport"
    [
      Idl_type.method_ "init" [ Idl_type.param "logic" (Idl_type.Iface "IBusinessLogic") ];
      Idl_type.method_ ~ret:Idl_type.Blob "build" [ Idl_type.param "kind" Idl_type.Str ];
    ]

(* ---------------------------------------------------------------- *)
(* GUI: the Visual Basic front end                                   *)
(* ---------------------------------------------------------------- *)

let kit = Widgets.kit ~prefix:"Benefits"

let form_class name widget_count =
  Runtime.define_class name ~api_refs:Widgets.gui_apis (fun ctx0 _self ->
      let fields =
        List.init widget_count (fun _ -> Common.create ctx0 kit.Widgets.button Common.i_control)
      in
      let attach ctx args =
        let parent = Combuild.get_iface args 0 in
        List.iter
          (fun f -> ignore (Runtime.call_named ctx f "attach" [ Value.Iface_ref parent ]))
          fields;
        chg ctx 40.;
        Combuild.echo args Value.Unit
      in
      let enable ctx args =
        chg ctx 5.;
        Combuild.echo args Value.Unit
      in
      let click ctx args =
        chg ctx 8.;
        Combuild.echo args Value.Unit
      in
      let set_label ctx args =
        List.iter (fun f -> ignore (Runtime.call_named ctx f "set_label" args)) fields;
        chg ctx 12.;
        Combuild.echo args Value.Unit
      in
      let paint ctx args =
        List.iter (fun f -> ignore (Runtime.call_named ctx f "enable" [ Value.Bool true ])) fields;
        chg ctx 45.;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface Common.i_control
          [ ("attach", attach); ("enable", enable); ("click", click); ("set_label", set_label) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

let c_login_form = form_class "Benefits.LoginForm" 6
let c_employee_form = form_class "Benefits.EmployeeForm" 18
let c_report_form = form_class "Benefits.ReportForm" 8

(* The commercial graphing component (Office Graph, shipped binary-only). *)
let c_graph =
  Runtime.define_class "Benefits.GraphControl" ~api_refs:Widgets.gui_apis (fun _ctx _self ->
      let stored = ref 0 in
      let put ctx args =
        stored := !stored + Combuild.get_blob args 0;
        chg ctx (float_of_int (Combuild.get_blob args 0) /. 150.);
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 120.;
        Combuild.echo args (Value.Int !stored)
      in
      let paint ctx args =
        chg ctx 160.;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

(* ---------------------------------------------------------------- *)
(* Data tier                                                         *)
(* ---------------------------------------------------------------- *)

let c_odbc =
  Runtime.define_class "Benefits.OdbcGateway"
    ~api_refs:[ "odbc32.SQLExecDirect"; "odbc32.SQLFetch" ] (fun _ctx _self ->
      let exec ctx args =
        let stmt = Combuild.get_str args 0 in
        let rows = 4 + (String.length stmt mod 13) in
        chg ctx (300. +. float_of_int (rows * 40));
        Combuild.echo args (Value.Blob (rows * odbc_row_bytes))
      in
      let exec_update ctx args =
        chg ctx 450.;
        Combuild.echo args (Value.Int 1)
      in
      [ Combuild.iface i_sql [ ("exec", exec); ("exec_update", exec_update) ] ])

let c_recordset =
  Runtime.define_class "Benefits.RecordSet" (fun _ctx _self ->
      let stored = ref 0 in
      let put ctx args =
        stored := !stored + Combuild.get_blob args 0;
        chg ctx 10.;
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 5.;
        Combuild.echo args (Value.Int !stored)
      in
      let row_count ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int (!stored / row_bytes))
      in
      let rows ctx args =
        let start = Combuild.get_int args 0 in
        let count = Combuild.get_int args 1 in
        let have = !stored / row_bytes in
        let n = max 0 (min count (have - start)) in
        chg ctx 8.;
        Combuild.echo args (Value.Blob (n * row_bytes))
      in
      [
        Combuild.iface i_recordset [ ("row_count", row_count); ("rows", rows) ];
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
      ])

(* ---------------------------------------------------------------- *)
(* Middle tier                                                       *)
(* ---------------------------------------------------------------- *)

let i_audit =
  Itype.declare "IAuditLog"
    [
      Idl_type.method_ "append"
        [ Idl_type.param "action" Idl_type.Str; Idl_type.param "record" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Int32 "entry_count" [];
    ]

(* Every mutation is audited beside the database. *)
let c_audit_log =
  Runtime.define_class "Benefits.AuditLog" (fun _ctx _self ->
      let db = ref None in
      let entries = ref 0 in
      let append ctx args =
        let action = Combuild.get_str args 0 in
        incr entries;
        (match !db with
        | Some d ->
            ignore
              (Common.call_ret_int ctx d "exec_update"
                 [ Value.Str ("INSERT INTO audit VALUES ('" ^ action ^ "')") ])
        | None -> ());
        chg ctx 25.;
        Combuild.echo args Value.Unit
      in
      let entry_count ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int !entries)
      in
      let init ctx args =
        db := Some (Combuild.get_iface args 0);
        chg ctx 5.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_audit [ ("append", append); ("entry_count", entry_count) ];
        Combuild.iface i_validation
          [ ("init", init); ("validate", fun ctx args -> chg ctx 1.; Combuild.echo args (Value.Int 0)) ];
      ])

let i_session =
  Itype.declare "ISession"
    [
      Idl_type.method_ ~ret:Idl_type.Str "open_session" [ Idl_type.param "user" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Bool "authorized" [ Idl_type.param "action" Idl_type.Str ];
    ]

let c_session_mgr =
  Runtime.define_class "Benefits.SessionMgr" (fun _ctx _self ->
      let user = ref "" in
      let open_session ctx args =
        user := Combuild.get_str args 0;
        chg ctx 60.;
        Combuild.echo args (Value.Str ("session:" ^ !user))
      in
      let authorized ctx args =
        ignore (Combuild.get_str args 0);
        chg ctx 8.;
        Combuild.echo args (Value.Bool true)
      in
      [ Combuild.iface i_session [ ("open_session", open_session); ("authorized", authorized) ] ])

let logic_class name =
  Runtime.define_class name ~creates:[ "Benefits.RecordSet" ] (fun _ctx _self ->
      let db = ref None in
      let init ctx args =
        db := Some (Combuild.get_iface args 0);
        chg ctx 10.;
        Combuild.echo args Value.Unit
      in
      let fetch ctx args =
        let entity = Combuild.get_str args 0 in
        let key = Combuild.get_int args 1 in
        let d = Option.get !db in
        let raw =
          Common.call_ret_blob ctx d "exec"
            [ Value.Str (Printf.sprintf "SELECT * FROM %s WHERE id=%d" entity key) ]
        in
        (* Shape the raw ODBC rows into a business-rule-filtered record
           set (smaller than the raw rows). *)
        let rs = Common.create ctx c_recordset Common.i_blob_sink in
        let shaped = min (rows_per_fetch * row_bytes) (raw * 2 / 3) in
        ignore (Runtime.call_named ctx rs "put" [ Value.Blob shaped ]);
        ignore (Common.call_ret_int ctx rs "finish" []);
        let rsq = Runtime.query_interface ctx rs ~iid:(Itype.iid i_recordset) in
        chg ctx (120. +. (float_of_int raw /. 500.));
        Combuild.echo args (Value.Iface_ref rsq)
      in
      let update ctx args =
        let entity = Combuild.get_str args 0 in
        let record = Combuild.get_blob args 1 in
        let d = Option.get !db in
        ignore
          (Common.call_ret_int ctx d "exec_update"
             [ Value.Str (Printf.sprintf "UPDATE %s SET ... /* %d bytes */" entity record) ]);
        chg ctx 140.;
        Combuild.echo args (Value.Int 1)
      in
      let remove ctx args =
        let entity = Combuild.get_str args 0 in
        let key = Combuild.get_int args 1 in
        let d = Option.get !db in
        (* Referential integrity: several dependent tables. *)
        List.iter
          (fun dep ->
            ignore
              (Common.call_ret_blob ctx d "exec"
                 [ Value.Str (Printf.sprintf "SELECT id FROM %s WHERE emp=%d" dep key) ]))
          [ "dependents"; "benefit_links"; "history" ];
        ignore
          (Common.call_ret_int ctx d "exec_update"
             [ Value.Str (Printf.sprintf "DELETE FROM %s WHERE id=%d" entity key) ]);
        chg ctx 200.;
        Combuild.echo args (Value.Int 1)
      in
      [
        Combuild.iface i_logic
          [ ("init", init); ("fetch", fetch); ("update", update); ("remove", remove) ];
      ])

let c_employee_logic = logic_class "Benefits.EmployeeLogic"
let c_benefits_logic = logic_class "Benefits.BenefitsLogic"
let c_dependent_logic = logic_class "Benefits.DependentLogic"
let c_report_logic_inner = logic_class "Benefits.HistoryLogic"

let c_validation =
  Runtime.define_class "Benefits.ValidationRules" (fun _ctx _self ->
      let db = ref None in
      let init ctx args =
        db := Some (Combuild.get_iface args 0);
        chg ctx 8.;
        Combuild.echo args Value.Unit
      in
      let validate ctx args =
        let record = Combuild.get_blob args 0 in
        let d = Option.get !db in
        (* Integrity probes against the database. *)
        List.iter
          (fun probe ->
            ignore (Common.call_ret_blob ctx d "exec" [ Value.Str ("SELECT 1 /* " ^ probe ^ " */") ]))
          [ "ssn-unique"; "plan-exists"; "dept-exists"; "salary-band"; "start-date" ];
        chg ctx (80. +. (float_of_int record /. 100.));
        Combuild.echo args (Value.Int 0)
      in
      [ Combuild.iface i_validation [ ("init", init); ("validate", validate) ] ])

(* A cached row materialized beside the cache. *)
let c_cached_row =
  Runtime.define_class "Benefits.CachedRow" (fun _ctx _self ->
      let put ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int 0)
      in
      [ Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ] ])

let cache_class name =
  Runtime.define_class name ~creates:[ "Benefits.CachedRow" ] (fun _ctx _self ->
      let logic = ref None in
      let entity = ref "" in
      let filled = ref false in
      let init ctx args =
        logic := Some (Combuild.get_iface args 0);
        entity := Combuild.get_str args 1;
        chg ctx 8.;
        Combuild.echo args Value.Unit
      in
      let refresh ctx args =
        let key = Combuild.get_int args 0 in
        let l = Option.get !logic in
        (match Common.call ctx l "fetch" [ Value.Str !entity; Value.Int key ] with
        | Value.Iface_ref rs ->
            let n = Common.call_ret_int ctx rs "row_count" [] in
            ignore (Common.call_ret_blob ctx rs "rows" [ Value.Int 0; Value.Int n ]);
            (* Materialize rows beside the cache for fast lookups. *)
            for _ = 1 to n do
              let row = Common.create ctx c_cached_row Common.i_blob_sink in
              ignore (Runtime.call_named ctx row "put" [ Value.Blob row_bytes ])
            done;
            filled := true
        | _ -> ());
        chg ctx 60.;
        Combuild.echo args (Value.Int (if !filled then 1 else 0))
      in
      let lookup ctx args =
        let key = Combuild.get_str args 0 in
        if not !filled then ignore (refresh ctx [ Value.Int 0 ]);
        chg ctx 6.;
        Combuild.echo args (Value.Str ("value-of:" ^ key ^ ";plan=standard;status=active"))
      in
      let invalidate_all ctx args =
        filled := false;
        chg ctx 4.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_cache
          [
            ("init", init); ("lookup", lookup); ("refresh", refresh);
            ("invalidate_all", invalidate_all);
          ];
      ])

let c_employee_cache = cache_class "Benefits.EmployeeCache"
let c_benefit_cache = cache_class "Benefits.BenefitListCache"
let c_lookup_cache = cache_class "Benefits.LookupCache"
let c_dependent_cache = cache_class "Benefits.DependentCache"

let c_report_logic =
  Runtime.define_class "Benefits.ReportLogic" (fun _ctx _self ->
      let logic = ref None in
      let init ctx args =
        logic := Some (Combuild.get_iface args 0);
        chg ctx 8.;
        Combuild.echo args Value.Unit
      in
      let build ctx args =
        let l = Option.get !logic in
        (* Aggregate across many employees. *)
        for key = 1 to 8 do
          match Common.call ctx l "fetch" [ Value.Str "history"; Value.Int key ] with
          | Value.Iface_ref rs ->
              let n = Common.call_ret_int ctx rs "row_count" [] in
              ignore (Common.call_ret_blob ctx rs "rows" [ Value.Int 0; Value.Int n ])
          | _ -> ()
        done;
        chg ctx 400.;
        Combuild.echo args (Value.Blob 60_000)
      in
      [ Combuild.iface i_report [ ("init", init); ("build", build) ] ])

(* ---------------------------------------------------------------- *)
(* Application root (the VB front end's glue)                        *)
(* ---------------------------------------------------------------- *)

let c_app =
  Runtime.define_class "Benefits.App" ~api_refs:Widgets.gui_apis
    ~creates:
      (Widgets.class_names kit
      @ [
          "Benefits.LoginForm"; "Benefits.EmployeeForm"; "Benefits.ReportForm";
          "Benefits.GraphControl"; "Benefits.OdbcGateway"; "Benefits.EmployeeLogic";
          "Benefits.BenefitsLogic"; "Benefits.DependentLogic"; "Benefits.HistoryLogic";
          "Benefits.EmployeeCache"; "Benefits.BenefitListCache"; "Benefits.LookupCache";
          "Benefits.DependentCache"; "Benefits.ValidationRules"; "Benefits.AuditLog";
          "Benefits.SessionMgr"; "Benefits.ReportLogic";
        ])
    (fun _ctx _self ->
      let chrome = ref None in
      let caches = ref [] in
      let logics = ref [] in
      let validation = ref None in
      let report = ref None in
      let forms = ref [] in
      let audit = ref None in
      let session = ref None in
      let startup ctx args =
        let c = Widgets.build_chrome ctx kit ~buttons:10 ~menus:4 ~extras:2 in
        chrome := Some c;
        let attach_form cls =
          let f = Common.create ctx cls Common.i_control in
          ignore
            (Runtime.call_named ctx f "attach" [ Value.Iface_ref c.Widgets.window_notify ]);
          let fp = Runtime.query_interface ctx f ~iid:(Itype.iid Common.i_paint) in
          ignore
            (Runtime.call_named ctx c.Widgets.window_render "attach_surface"
               [ Value.Iface_ref fp ]);
          f
        in
        forms := List.map attach_form [ c_login_form; c_employee_form; c_report_form ];
        (* Middle tier boot: one ODBC gateway, the business logic, the
           caches that front it. *)
        let db = Common.create ctx c_odbc i_sql in
        let make_logic cls =
          let l = Common.create ctx cls i_logic in
          ignore (Runtime.call_named ctx l "init" [ Value.Iface_ref db ]);
          l
        in
        let employee = make_logic c_employee_logic in
        let benefits = make_logic c_benefits_logic in
        let dependent = make_logic c_dependent_logic in
        let history = make_logic c_report_logic_inner in
        logics := [ employee; benefits; dependent; history ];
        let make_cache cls logic entity =
          let cache = Common.create ctx cls i_cache in
          ignore
            (Runtime.call_named ctx cache "init" [ Value.Iface_ref logic; Value.Str entity ]);
          cache
        in
        caches :=
          [
            make_cache c_employee_cache employee "employees";
            make_cache c_benefit_cache benefits "benefits";
            make_cache c_lookup_cache benefits "lookups";
            make_cache c_dependent_cache dependent "dependents";
          ];
        let v = Common.create ctx c_validation i_validation in
        ignore (Runtime.call_named ctx v "init" [ Value.Iface_ref db ]);
        validation := Some v;
        let a = Common.create ctx c_audit_log i_audit in
        let a_init = Runtime.query_interface ctx a ~iid:(Itype.iid i_validation) in
        ignore (Runtime.call_named ctx a_init "init" [ Value.Iface_ref db ]);
        audit := Some a;
        session := Some (Common.create ctx c_session_mgr i_session);
        let r = Common.create ctx c_report_logic i_report in
        ignore (Runtime.call_named ctx r "init" [ Value.Iface_ref history ]);
        report := Some r;
        chg ctx 600.;
        Combuild.echo args Value.Unit
      in
      let login ctx args =
        let user = Combuild.get_str args 0 in
        (match !session with
        | Some s ->
            ignore (Common.call_ret_str ctx s "open_session" [ Value.Str user ]);
            ignore (Common.call ctx s "authorized" [ Value.Str "login" ])
        | None -> ());
        (match !caches with
        | c :: _ -> ignore (Common.call_ret_str ctx c "lookup" [ Value.Str "login-role" ])
        | [] -> ());
        chg ctx 80.;
        Combuild.echo args (Value.Bool true)
      in
      let view_employee ctx args =
        let id = Combuild.get_int args 0 in
        (* Prime the caches for this employee, then the form issues a
           storm of small field lookups. *)
        List.iter
          (fun cache -> ignore (Common.call_ret_int ctx cache "refresh" [ Value.Int id ]))
          !caches;
        let ncaches = List.length !caches in
        for q = 0 to queries_per_view - 1 do
          let cache = List.nth !caches (q mod ncaches) in
          ignore
            (Common.call_ret_str ctx cache "lookup"
               [ Value.Str (Printf.sprintf "emp%d-field%d" id q) ])
        done;
        (match !forms with
        | _ :: emp_form :: _ ->
            ignore (Runtime.call_named ctx emp_form "set_label" [ Value.Str "Employee" ])
        | _ -> ());
        chg ctx 250.;
        Combuild.echo args Value.Unit
      in
      let add_employee ctx args =
        let record = Combuild.get_blob args 0 in
        (match !audit with
        | Some a ->
            ignore (Runtime.call_named ctx a "append" [ Value.Str "add"; Value.Blob 128 ])
        | None -> ());
        (match !validation with
        | Some v -> ignore (Common.call_ret_int ctx v "validate" [ Value.Blob record ])
        | None -> ());
        (match !logics with
        | employee :: _ ->
            ignore
              (Common.call_ret_int ctx employee "update"
                 [ Value.Str "employees"; Value.Blob record ])
        | [] -> ());
        List.iter
          (fun cache -> ignore (Runtime.call_named ctx cache "invalidate_all" []))
          !caches;
        chg ctx 200.;
        Combuild.echo args Value.Unit
      in
      let delete_employee ctx args =
        let id = Combuild.get_int args 0 in
        (match !audit with
        | Some a ->
            ignore (Runtime.call_named ctx a "append" [ Value.Str "delete"; Value.Blob 64 ])
        | None -> ());
        (match !logics with
        | employee :: _ ->
            ignore (Common.call_ret_int ctx employee "remove" [ Value.Str "employees"; Value.Int id ])
        | [] -> ());
        List.iter
          (fun cache -> ignore (Runtime.call_named ctx cache "invalidate_all" []))
          !caches;
        chg ctx 150.;
        Combuild.echo args Value.Unit
      in
      let run_report ctx args =
        (match !report with
        | Some r ->
            let data = Common.call_ret_blob ctx r "build" [ Value.Str "benefits-by-dept" ] in
            let graph = Common.create ctx c_graph Common.i_blob_sink in
            ignore (Runtime.call_named ctx graph "put" [ Value.Blob data ]);
            ignore (Common.call_ret_int ctx graph "finish" []);
            let gp = Runtime.query_interface ctx graph ~iid:(Itype.iid Common.i_paint) in
            (match !chrome with
            | Some c ->
                ignore
                  (Runtime.call_named ctx c.Widgets.window_render "attach_surface"
                     [ Value.Iface_ref gp ])
            | None -> ())
        | None -> ());
        chg ctx 300.;
        Combuild.echo args Value.Unit
      in
      let repaint ctx args =
        (match !chrome with
        | Some c ->
            List.iter
              (fun p -> ignore (Runtime.call_named ctx p "paint" [ Value.Opaque_handle "HDC" ]))
              c.Widgets.paints
        | None -> ());
        chg ctx 50.;
        Combuild.echo args Value.Unit
      in
      let shutdown ctx args =
        chg ctx 120.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_ben_app
          [
            ("startup", startup); ("login", login); ("view_employee", view_employee);
            ("add_employee", add_employee); ("delete_employee", delete_employee);
            ("run_report", run_report); ("repaint", repaint); ("shutdown", shutdown);
          ];
      ])

(* ---------------------------------------------------------------- *)
(* Scenarios (Table 1, the b_ rows)                                  *)
(* ---------------------------------------------------------------- *)

let boot ctx =
  let app = Common.create ctx c_app i_ben_app in
  ignore (Runtime.call_named ctx app "startup" []);
  ignore (Common.call ctx app "login" [ Value.Str "hradmin" ]);
  app

let scenario_view ctx =
  let app = boot ctx in
  List.iter
    (fun id -> ignore (Runtime.call_named ctx app "view_employee" [ Value.Int id ]))
    [ 17; 17; 23 ];
  ignore (Runtime.call_named ctx app "run_report" []);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_add ctx =
  let app = boot ctx in
  ignore (Runtime.call_named ctx app "add_employee" [ Value.Blob 2_400 ]);
  ignore (Runtime.call_named ctx app "view_employee" [ Value.Int 99 ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_delete ctx =
  let app = boot ctx in
  ignore (Runtime.call_named ctx app "view_employee" [ Value.Int 17 ]);
  ignore (Runtime.call_named ctx app "delete_employee" [ Value.Int 17 ]);
  ignore (Runtime.call_named ctx app "view_employee" [ Value.Int 23 ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let sc id desc run = { App.sc_id = id; sc_desc = desc; sc_bigone = false; sc_run = run }

let scenarios =
  [
    sc "b_vueone" "View records for an employee." scenario_view;
    sc "b_addone" "Add new employee." scenario_add;
    sc "b_delone" "Delete employee." scenario_delete;
    {
      App.sc_id = "b_bigone";
      sc_desc = "All of the above in one scenario.";
      sc_bigone = true;
      sc_run =
        (fun ctx ->
          scenario_view ctx;
          scenario_add ctx;
          scenario_delete ctx);
    };
  ]

let middle_tier_classes =
  [
    "Benefits.OdbcGateway"; "Benefits.RecordSet"; "Benefits.EmployeeLogic";
    "Benefits.BenefitsLogic"; "Benefits.DependentLogic"; "Benefits.HistoryLogic";
    "Benefits.ValidationRules"; "Benefits.CachedRow"; "Benefits.EmployeeCache";
    "Benefits.BenefitListCache"; "Benefits.LookupCache"; "Benefits.DependentCache";
    "Benefits.ReportLogic"; "Benefits.AuditLog"; "Benefits.SessionMgr";
  ]

let classes =
  Widgets.classes kit
  @ [
      c_login_form; c_employee_form; c_report_form; c_graph; c_odbc; c_recordset;
      c_employee_logic; c_benefits_logic; c_dependent_logic; c_report_logic_inner;
      c_validation; c_audit_log; c_session_mgr; c_cached_row; c_employee_cache;
      c_benefit_cache; c_lookup_cache; c_dependent_cache; c_report_logic; c_app;
    ]

let app =
  App.make ~name:"benefits" ~roots:[ "Benefits.App" ] ~classes
    ~default_placement:(fun cname ->
      if List.mem cname middle_tier_classes then Coign_core.Constraints.Server
      else Coign_core.Constraints.Client)
    ~scenarios
