open Coign_idl
open Coign_com

let chg ctx us = Runtime.charge ctx ~us

(* Pipeline shape constants: raw capture frames expand slightly while
   being decoded, then pack down hard before hitting storage, so the
   profitable cut ships packed frames, not raw ones. The replay path is
   the mirror image: archived captures are large, the per-segment
   telemetry sent back to the monitor is tiny. *)
let decode_num = 5
let decode_den = 4
let pack_ratio = 12
let min_packed_bytes = 64
let index_row_bytes = 48
let replay_segment_bytes = 20_000
let replay_report_bytes = 96

(* ---------------------------------------------------------------- *)
(* Interfaces                                                        *)
(* ---------------------------------------------------------------- *)

let i_ingest_app =
  Itype.declare "IIngestApp"
    [
      Idl_type.method_ "startup" [];
      Idl_type.method_ ~ret:Idl_type.Int32 "stream"
        [ Idl_type.param "frames" Idl_type.Int32; Idl_type.param "frame_bytes" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "replay" [ Idl_type.param "capture" Idl_type.Str ];
      Idl_type.method_ "repaint" [];
      Idl_type.method_ "shutdown" [];
    ]

let i_frame_source =
  Itype.declare "IFrameSource"
    [
      Idl_type.method_ "attach_sink" [ Idl_type.param "sink" (Idl_type.Iface "IBlobSink") ];
      Idl_type.method_ ~ret:Idl_type.Int32 "start_stream"
        [ Idl_type.param "frames" Idl_type.Int32; Idl_type.param "frame_bytes" Idl_type.Int32 ];
    ]

let i_stage =
  Itype.declare "IIngestStage"
    [
      Idl_type.method_ "connect" [ Idl_type.param "next" (Idl_type.Iface "IBlobSink") ];
    ]

let i_catalog =
  Itype.declare "ICatalog"
    [
      Idl_type.method_ "record"
        [ Idl_type.param "stream" Idl_type.Int32; Idl_type.param "entry" Idl_type.Blob ];
      Idl_type.method_ ~ret:Idl_type.Int32 "entry_count" [];
    ]

let i_replayer =
  Itype.declare "IReplayer"
    [
      Idl_type.method_ "attach_store"
        [ Idl_type.param "store" (Idl_type.Iface "IFileRead");
          Idl_type.param "monitor" (Idl_type.Iface "INotify") ];
      Idl_type.method_ ~ret:Idl_type.Int32 "replay_capture" [ Idl_type.param "name" Idl_type.Str ];
    ]

(* ---------------------------------------------------------------- *)
(* Capture side (client-pinned hardware access)                      *)
(* ---------------------------------------------------------------- *)

(* The capture card driver surface: device notifications and DIB
   readback pin the grabber to the machine the instrument hangs off. *)
let capture_apis = [ "user32.RegisterDeviceNotification"; "gdi32.GetDIBits" ]

let c_capture =
  Runtime.define_class "Ingest.CaptureCard" ~api_refs:capture_apis (fun _ctx _self ->
      let sink = ref None in
      let attach_sink ctx args =
        sink := Some (Combuild.get_iface args 0);
        chg ctx 25.;
        Combuild.echo args Value.Unit
      in
      let start_stream ctx args =
        let frames = Combuild.get_int args 0 in
        let frame_bytes = Combuild.get_int args 1 in
        let s = Option.get !sink in
        for _ = 1 to frames do
          (* DMA the frame out of the card, then push it downstream. *)
          chg ctx (40. +. (float_of_int frame_bytes /. 400.));
          ignore (Runtime.call_named ctx s "put" [ Value.Blob frame_bytes ])
        done;
        ignore (Common.call_ret_int ctx s "finish" []);
        chg ctx 30.;
        Combuild.echo args (Value.Int frames)
      in
      [
        Combuild.iface i_frame_source
          [ ("attach_sink", attach_sink); ("start_stream", start_stream) ];
      ])

(* The operator console: throughput counters and a level meter. Only
   the remotable INotify surface is exported — exporting IPaint would
   chain every ref-holder (including the server-side replayer) to the
   client through the static non-remotable co-location rule. A negative
   code asks for a console redraw. *)
let c_monitor =
  Runtime.define_class "Ingest.Monitor" ~api_refs:Widgets.gui_apis (fun _ctx _self ->
      let events = ref 0 in
      let notify ctx args =
        let code = Combuild.get_int args 0 in
        if code < 0 then chg ctx (55. +. (float_of_int !events /. 50.))
        else begin
          incr events;
          chg ctx 6.
        end;
        Combuild.echo args Value.Unit
      in
      let notify_str ctx args =
        ignore (Combuild.get_str args 0);
        incr events;
        chg ctx 9.;
        Combuild.echo args Value.Unit
      in
      [ Combuild.iface Common.i_notify [ ("notify", notify); ("notify_str", notify_str) ] ])

(* ---------------------------------------------------------------- *)
(* Free-floating stages — where the cut actually moves               *)
(* ---------------------------------------------------------------- *)

(* Unpacks the card's raw DMA format; output is slightly larger. *)
let c_decoder =
  Runtime.define_class "Ingest.Decoder" (fun _ctx _self ->
      let next = ref None in
      let connect ctx args =
        next := Some (Combuild.get_iface args 0);
        chg ctx 8.;
        Combuild.echo args Value.Unit
      in
      let put ctx args =
        let raw = Combuild.get_blob args 0 in
        let decoded = raw * decode_num / decode_den in
        chg ctx (60. +. (float_of_int raw /. 250.));
        ignore (Runtime.call_named ctx (Option.get !next) "put" [ Value.Blob decoded ]);
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        let n = Common.call_ret_int ctx (Option.get !next) "finish" [] in
        chg ctx 12.;
        Combuild.echo args (Value.Int n)
      in
      [
        Combuild.iface i_stage [ ("connect", connect) ];
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
      ])

(* Rate-reducing compressor: the pipeline's choke point. *)
let c_packer =
  Runtime.define_class "Ingest.Packer" (fun _ctx _self ->
      let next = ref None in
      let connect ctx args =
        next := Some (Combuild.get_iface args 0);
        chg ctx 8.;
        Combuild.echo args Value.Unit
      in
      let put ctx args =
        let decoded = Combuild.get_blob args 0 in
        let packed = max min_packed_bytes (decoded / pack_ratio) in
        chg ctx (110. +. (float_of_int decoded /. 120.));
        ignore (Runtime.call_named ctx (Option.get !next) "put" [ Value.Blob packed ]);
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        let n = Common.call_ret_int ctx (Option.get !next) "finish" [] in
        chg ctx 10.;
        Combuild.echo args (Value.Int n)
      in
      [
        Combuild.iface i_stage [ ("connect", connect) ];
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
      ])

(* ---------------------------------------------------------------- *)
(* Storage side (server-pinned)                                      *)
(* ---------------------------------------------------------------- *)

let c_archive =
  Runtime.define_class "Ingest.ArchiveWriter"
    ~api_refs:[ "kernel32.CreateFile"; "kernel32.WriteFile"; "kernel32.SetFilePointer" ]
    (fun _ctx _self ->
      let catalog = ref None in
      let stored = ref 0 and frames = ref 0 in
      let connect ctx args =
        catalog := Some (Combuild.get_iface args 0);
        chg ctx 10.;
        Combuild.echo args Value.Unit
      in
      let put ctx args =
        let packed = Combuild.get_blob args 0 in
        stored := !stored + packed;
        incr frames;
        chg ctx (45. +. (float_of_int packed /. 90.));
        (match !catalog with
        | Some c ->
            ignore
              (Runtime.call_named ctx c "record"
                 [ Value.Int !frames; Value.Blob index_row_bytes ])
        | None -> ());
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 80.;
        Combuild.echo args (Value.Int !stored)
      in
      [
        Combuild.iface i_stage [ ("connect", connect) ];
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
      ])

let c_catalog =
  Runtime.define_class "Ingest.CatalogIndex"
    ~api_refs:[ "odbc32.SQLExecDirect"; "odbc32.SQLFetch" ] (fun _ctx _self ->
      let entries = ref 0 in
      let record ctx args =
        ignore (Combuild.get_int args 0);
        ignore (Combuild.get_blob args 1);
        incr entries;
        chg ctx 35.;
        Combuild.echo args Value.Unit
      in
      let entry_count ctx args =
        chg ctx 3.;
        Combuild.echo args (Value.Int !entries)
      in
      [ Combuild.iface i_catalog [ ("record", record); ("entry_count", entry_count) ] ])

(* Replays an archived capture: reads bulk segments beside the store,
   sends only small per-segment telemetry back to the monitor. *)
let c_replayer =
  Runtime.define_class "Ingest.Replayer" (fun _ctx _self ->
      let store = ref None and monitor = ref None in
      let attach_store ctx args =
        store := Some (Combuild.get_iface args 0);
        monitor := Some (Combuild.get_iface args 1);
        chg ctx 12.;
        Combuild.echo args Value.Unit
      in
      let replay_capture ctx args =
        let name = Combuild.get_str args 0 in
        let st = Option.get !store and mon = Option.get !monitor in
        let fh = Common.call_ret_int ctx st "open_file" [ Value.Str name ] in
        let total = Common.call_ret_int ctx st "file_size" [ Value.Int fh ] in
        let segments = max 1 ((total + replay_segment_bytes - 1) / replay_segment_bytes) in
        for s = 0 to segments - 1 do
          let chunk =
            Common.call_ret_blob ctx st "read_block"
              [ Value.Int fh; Value.Int (s * replay_segment_bytes);
                Value.Int replay_segment_bytes ]
          in
          (* Enrich: align, decode telemetry, aggregate — compute-heavy,
             but the result shipped onward is a tiny report. *)
          chg ctx (150. +. (float_of_int chunk /. 80.));
          ignore
            (Runtime.call_named ctx mon "notify_str"
               [ Value.Str (String.make replay_report_bytes 's') ])
        done;
        chg ctx 40.;
        Combuild.echo args (Value.Int segments)
      in
      [
        Combuild.iface i_replayer
          [ ("attach_store", attach_store); ("replay_capture", replay_capture) ];
      ])

(* ---------------------------------------------------------------- *)
(* Application root                                                  *)
(* ---------------------------------------------------------------- *)

let c_pipeline =
  Runtime.define_class "Ingest.Pipeline"
    ~creates:
      [
        "Ingest.CaptureCard"; "Ingest.Monitor"; "Ingest.Decoder"; "Ingest.Packer";
        "Ingest.ArchiveWriter"; "Ingest.CatalogIndex"; "Ingest.Replayer";
        Common.file_server_class_name;
      ]
    (fun _ctx _self ->
      let capture = ref None and monitor = ref None in
      let replayer = ref None and catalog = ref None in
      let startup ctx args =
        let mon = Common.create ctx c_monitor Common.i_notify in
        monitor := Some mon;
        let cat = Common.create ctx c_catalog i_catalog in
        catalog := Some cat;
        let archive = Common.create ctx c_archive Common.i_blob_sink in
        let archive_connect = Runtime.query_interface ctx archive ~iid:(Itype.iid i_stage) in
        ignore (Runtime.call_named ctx archive_connect "connect" [ Value.Iface_ref cat ]);
        let packer = Common.create ctx c_packer i_stage in
        ignore (Runtime.call_named ctx packer "connect" [ Value.Iface_ref archive ]);
        let packer_sink = Runtime.query_interface ctx packer ~iid:(Itype.iid Common.i_blob_sink) in
        let decoder = Common.create ctx c_decoder i_stage in
        ignore (Runtime.call_named ctx decoder "connect" [ Value.Iface_ref packer_sink ]);
        let decoder_sink =
          Runtime.query_interface ctx decoder ~iid:(Itype.iid Common.i_blob_sink)
        in
        let cap = Common.create ctx c_capture i_frame_source in
        ignore (Runtime.call_named ctx cap "attach_sink" [ Value.Iface_ref decoder_sink ]);
        capture := Some cap;
        let store = Common.create_file_server ctx in
        let rep = Common.create ctx c_replayer i_replayer in
        ignore
          (Runtime.call_named ctx rep "attach_store"
             [ Value.Iface_ref store; Value.Iface_ref mon ]);
        replayer := Some rep;
        chg ctx 250.;
        Combuild.echo args Value.Unit
      in
      let stream ctx args =
        let frames = Combuild.get_int args 0 in
        let frame_bytes = Combuild.get_int args 1 in
        let n =
          Common.call_ret_int ctx (Option.get !capture) "start_stream"
            [ Value.Int frames; Value.Int frame_bytes ]
        in
        (match !monitor with
        | Some m -> ignore (Runtime.call_named ctx m "notify" [ Value.Int n ])
        | None -> ());
        (match !catalog with
        | Some c -> ignore (Common.call_ret_int ctx c "entry_count" [])
        | None -> ());
        chg ctx 50.;
        Combuild.echo args (Value.Int n)
      in
      let replay ctx args =
        let name = Combuild.get_str args 0 in
        let n =
          Common.call_ret_int ctx (Option.get !replayer) "replay_capture" [ Value.Str name ]
        in
        chg ctx 35.;
        Combuild.echo args (Value.Int n)
      in
      let repaint ctx args =
        (match !monitor with
        | Some m -> ignore (Runtime.call_named ctx m "notify" [ Value.Int (-1) ])
        | None -> ());
        chg ctx 20.;
        Combuild.echo args Value.Unit
      in
      let shutdown ctx args =
        chg ctx 60.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_ingest_app
          [
            ("startup", startup); ("stream", stream); ("replay", replay);
            ("repaint", repaint); ("shutdown", shutdown);
          ];
      ])

(* ---------------------------------------------------------------- *)
(* Scenarios                                                         *)
(* ---------------------------------------------------------------- *)

let prepare ctx =
  Common.Vfs.add ctx ~name:"night01.cap" ~bytes:160_000;
  Common.Vfs.add ctx ~name:"calib.cap" ~bytes:60_000

let boot ctx =
  prepare ctx;
  let app = Common.create ctx c_pipeline i_ingest_app in
  ignore (Runtime.call_named ctx app "startup" []);
  app

let scenario_stream frames frame_bytes ctx =
  let app = boot ctx in
  ignore (Common.call_ret_int ctx app "stream" [ Value.Int frames; Value.Int frame_bytes ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_replay name ctx =
  let app = boot ctx in
  ignore (Common.call_ret_int ctx app "replay" [ Value.Str name ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let sc id desc run = { App.sc_id = id; sc_desc = desc; sc_bigone = false; sc_run = run }

let scenarios =
  [
    sc "i_strm1" "Ingest a 10-frame capture burst." (scenario_stream 10 32_000);
    sc "i_strm2" "Ingest a 30-frame high-rate capture." (scenario_stream 30 48_000);
    sc "i_replay" "Replay and analyze an archived capture." (scenario_replay "night01.cap");
    {
      App.sc_id = "i_bigone";
      sc_desc = "All of the above in one scenario.";
      sc_bigone = true;
      sc_run =
        (fun ctx ->
          scenario_stream 10 32_000 ctx;
          scenario_stream 30 48_000 ctx;
          scenario_replay "night01.cap" ctx);
    };
  ]

(* The appliance vendor ships everything but the operator console and
   the capture driver on the storage server — raw frames cross the wire
   on every grab, which is exactly what the analyzer improves on. *)
let client_default = [ "Ingest.CaptureCard"; "Ingest.Monitor"; "Ingest.Pipeline" ]

let classes =
  [ c_capture; c_monitor; c_decoder; c_packer; c_archive; c_catalog; c_replayer; c_pipeline ]

let app =
  App.make ~name:"ingest" ~roots:[ "Ingest.Pipeline" ] ~classes
    ~default_placement:(fun cname ->
      if List.mem cname client_default then Coign_core.Constraints.Client
      else Coign_core.Constraints.Server)
    ~scenarios
