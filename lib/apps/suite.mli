(** The full application and scenario suite (paper Table 1). *)

val all : App.t list
(** Octarine, PhotoDraw, Corporate Benefits, plus the synthetic
    {!Ingest} pipeline (not in the paper's Table 1). *)

val find_app : string -> App.t
(** By name ("octarine", "photodraw", "benefits", "ingest"); raises
    [Not_found]. *)

val table1 : (string * string * string) list
(** [(app, scenario id, description)] rows in the paper's order. *)

val find_scenario : string -> App.t * App.scenario
(** Locate a scenario id (e.g. ["p_oldmsr"]) across the suite; raises
    [Not_found]. *)
