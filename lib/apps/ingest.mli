(** A synthetic high-rate ingest pipeline (the fourth application).

    Shape borrowed from streaming capture systems (a capture card
    feeding decode → pack → archive stages, plus an archived-capture
    replay path): the capture driver and operator console are pinned to
    the client by their device/GUI API references, the archive writer
    and catalog index are pinned to the server by storage APIs, and the
    stages in between are free — the interesting placements.

    The two dataflows pull the cut in opposite directions: streaming
    wants the decoder and packer on the *client* (packed frames are ~12x
    smaller than raw ones, so the wire should carry packed data), while
    replay wants the replayer on the *server* (it reads bulk archive
    segments but ships only tiny telemetry reports to the monitor).
    Profiling different scenario mixes therefore yields genuinely
    different distributions — the per-stage placement stress the
    open-loop load simulator drives against. *)

val app : App.t

val pack_ratio : int
(** Raw-to-packed size reduction of the packer stage. *)
