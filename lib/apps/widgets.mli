(** GUI widget kit.

    Octarine's GUI alone is "composed of literally hundreds of
    components"; PhotoDraw and the Benefits front-end likewise build
    their chrome from fine-grained controls. This kit stamps out
    per-application widget component classes (each referencing user32/
    gdi32 APIs, so static analysis pins them to the client) and helpers
    to build and repaint a window's chrome. All painting crosses the
    non-remotable {!Common.i_paint} interface — the webs of solid black
    lines in the paper's figures. *)

open Coign_com

type kit = {
  window : Runtime.component_class;   (** INotify + IPaint + IRender *)
  button : Runtime.component_class;   (** IControl + IPaint *)
  menu : Runtime.component_class;
  toolbar : Runtime.component_class;
  statusbar : Runtime.component_class;
  scrollbar : Runtime.component_class;
  tooltip : Runtime.component_class;
  dialog : Runtime.component_class;
}

val kit : prefix:string -> kit
(** Class names are ["<prefix>.Button"] etc. *)

val classes : kit -> Runtime.component_class list

val class_names : kit -> string list
(** Names of {!classes}, for [creates] annotations of classes that
    build chrome in their method bodies. *)

type chrome = {
  window_notify : Runtime.handle;   (** the window's INotify *)
  window_paint : Runtime.handle;
  window_render : Runtime.handle;   (** canvas surface for page images *)
  controls : Runtime.handle list;   (** IControl of every chrome widget *)
  paints : Runtime.handle list;     (** IPaint of every widget incl. window *)
}

val build_chrome :
  Runtime.ctx -> kit -> buttons:int -> menus:int -> extras:int -> chrome
(** Instantiate a main window plus [buttons] buttons, [menus] menus,
    one toolbar/status bar/two scrollbars, [extras] tooltips, and a
    dialog; attach every control to the window. *)

val paint_all : Runtime.ctx -> chrome -> unit
(** One full repaint pass: [paint] on every widget (small,
    non-remotable messages). *)

val click : Runtime.ctx -> chrome -> int -> unit
(** Click the i-th control (it notifies the window). *)

val gui_apis : string list
(** The user32/gdi32 API references every widget class carries. *)
