(** The application-suite interface: what every test application
    (Octarine, PhotoDraw, Corporate Benefits) exposes to the experiment
    harness. *)

open Coign_com

type scenario = {
  sc_id : string;           (** paper scenario id, e.g. ["o_oldwp7"] *)
  sc_desc : string;         (** Table 1 description *)
  sc_bigone : bool;         (** synthesis of the app's other scenarios *)
  sc_run : Runtime.ctx -> unit;
}

type t = {
  app_name : string;
  app_classes : Runtime.component_class list;
  app_registry : Runtime.registry;
  app_image : Coign_image.Binary_image.t;
  app_default_placement : string -> Coign_core.Constraints.location;
      (** the developer's shipped distribution, by component class name
          (data files — the storage server — always on the server) *)
  app_scenarios : scenario list;
}

val make :
  name:string ->
  roots:string list ->
  classes:Runtime.component_class list ->
  default_placement:(string -> Coign_core.Constraints.location) ->
  scenarios:scenario list ->
  t
(** Builds the registry and the binary image: the API-reference table
    from the classes' [api_refs], and static interface metadata from
    probing every class ({!Coign_com.Probe}). [roots] names the classes
    the main program instantiates directly. The storage file server is
    added to the class list automatically. *)

val scenario : t -> string -> scenario
(** Lookup by id; raises [Not_found]. *)

val non_bigone : t -> scenario list
val bigone : t -> scenario
