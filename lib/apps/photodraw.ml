open Coign_idl
open Coign_com

let chg ctx us = Runtime.charge ctx ~us

(* ---------------------------------------------------------------- *)
(* Image specs                                                       *)
(* ---------------------------------------------------------------- *)

type img_kind = K_composition | K_line_drawing | K_gallery | K_photo

type spec = { p_kind : img_kind; p_bytes : int; p_sprites : int }

(* Parsed-to-raw ratio per kind: pixel data barely shrinks when
   parsed; vector line drawings shrink a lot. *)
let parse_ratio = function
  | K_composition -> 0.80
  | K_line_drawing -> 0.62
  | K_gallery -> 0.95
  | K_photo -> 0.88

let sprites_per_composition = 24
let property_sets = 7
let propset_input_bytes = 30_000

let specs_key : (string, spec) Hashtbl.t Runtime.key = Runtime.new_key ()

let specs ctx =
  match Runtime.get_data ctx specs_key with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 8 in
      Runtime.set_data ctx specs_key t;
      t

let register_img ctx name spec =
  Hashtbl.replace (specs ctx) name spec;
  Common.Vfs.add ctx ~name ~bytes:spec.p_bytes

let spec_of ctx name =
  match Hashtbl.find_opt (specs ctx) name with
  | Some s -> s
  | None -> Hresult.fail (Hresult.E_fail ("PhotoDraw: unknown image " ^ name))

(* ---------------------------------------------------------------- *)
(* Interfaces                                                        *)
(* ---------------------------------------------------------------- *)

let i_pd_app =
  Itype.declare "IPdApp"
    [
      Idl_type.method_ "startup" [];
      Idl_type.method_ "new_image" [];
      Idl_type.method_ "open_image" [ Idl_type.param "name" Idl_type.Str ];
      Idl_type.method_ "new_composition"
        [ Idl_type.param "a" Idl_type.Str; Idl_type.param "b" Idl_type.Str ];
      Idl_type.method_ "repaint" [];
      Idl_type.method_ "shutdown" [];
    ]

let i_mix_source =
  Itype.declare "IMixSource"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "open_mix" [ Idl_type.param "name" Idl_type.Str ];
      Idl_type.method_ ~ret:Idl_type.Int32 "sprite_count" [];
      Idl_type.method_ ~ret:Idl_type.Blob "read_sprite" [ Idl_type.param "index" Idl_type.Int32 ];
      Idl_type.method_ ~ret:Idl_type.Int32 "propset_count" [];
      Idl_type.method_ ~ret:(Idl_type.Iface "IQuery") "propset"
        [ Idl_type.param "index" Idl_type.Int32 ];
    ]

(* The sprite surface: pixel buffers travel as opaque shared-memory
   handles, so the whole interface is non-remotable. *)
let i_sprite =
  Itype.declare "ISprite"
    [
      Idl_type.method_ "set_pixels"
        [ Idl_type.param "size" Idl_type.Int32; Idl_type.param "shm" (Idl_type.Opaque "SHM") ];
      Idl_type.method_ "blend"
        [
          Idl_type.param "dst" (Idl_type.Iface "ISprite");
          Idl_type.param "shm" (Idl_type.Opaque "SHM");
        ];
      Idl_type.method_ ~ret:Idl_type.Int32 "pixel_bytes" [];
    ]

let i_composition =
  Itype.declare "IComposition"
    [
      Idl_type.method_ "init"
        [
          Idl_type.param "src" (Idl_type.Iface "IMixSource");
          Idl_type.param "target" (Idl_type.Iface "ISprite");
          Idl_type.param "render" (Idl_type.Iface "IRender");
        ];
      Idl_type.method_ ~ret:Idl_type.Int32 "build" [];
      Idl_type.method_ "show" [];
      Idl_type.method_ "blank" [ Idl_type.param "sprites" Idl_type.Int32 ];
    ]

let i_transform =
  Itype.declare "ITransform"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "apply"
        [
          Idl_type.param "target" (Idl_type.Iface "ISprite");
          Idl_type.param "kind" Idl_type.Str;
          Idl_type.param "shm" (Idl_type.Opaque "SHM");
        ];
    ]

(* ---------------------------------------------------------------- *)
(* GUI                                                               *)
(* ---------------------------------------------------------------- *)

let kit = Widgets.kit ~prefix:"PhotoDraw"

(* ---------------------------------------------------------------- *)
(* Components                                                        *)
(* ---------------------------------------------------------------- *)

let c_property_set =
  Runtime.define_class "PhotoDraw.PropertySet" (fun _ctx _self ->
      let stored = ref 0 in
      let put ctx args =
        stored := !stored + Combuild.get_blob args 0;
        chg ctx (float_of_int (Combuild.get_blob args 0) /. 300.);
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 6.;
        Combuild.echo args (Value.Int !stored)
      in
      let query ctx args =
        chg ctx 5.;
        Combuild.echo args (Value.Str "color-profile:sRGB;dpi:300")
      in
      let query_int ctx args =
        chg ctx 4.;
        Combuild.echo args (Value.Int (!stored mod 4099))
      in
      [
        Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ];
        Combuild.iface Common.i_query [ ("query", query); ("query_int", query_int) ];
      ])

(* The .mix reader: scans the composition file through the storage
   server, builds the property sets from the file data, and serves
   parsed sprites from its index. *)
let c_mix_reader =
  Runtime.define_class "PhotoDraw.MixReader"
    ~creates:[ "PhotoDraw.PropertySet" ] (fun ctx0 _self ->
      let fs = Common.create_file_server ctx0 in
      let state = ref None in
      (* (spec, propset query handles) *)
      let open_mix ctx args =
        let name = Combuild.get_str args 0 in
        let spec = spec_of ctx name in
        let fh = Common.call_ret_int ctx fs "open_file" [ Value.Str name ] in
        let size = Common.call_ret_int ctx fs "file_size" [ Value.Int fh ] in
        let block = 32_768 in
        let offset = ref 0 in
        while !offset < size do
          let got =
            Common.call_ret_blob ctx fs "read_block"
              [ Value.Int fh; Value.Int !offset; Value.Int block ]
          in
          chg ctx (float_of_int got /. 1_000.);
          offset := !offset + block
        done;
        let propsets =
          if spec.p_kind = K_composition then
            List.init property_sets (fun _ ->
                let p = Common.create ctx c_property_set Common.i_blob_sink in
                ignore (Runtime.call_named ctx p "put" [ Value.Blob propset_input_bytes ]);
                ignore (Common.call_ret_int ctx p "finish" []);
                Runtime.query_interface ctx p ~iid:(Itype.iid Common.i_query))
          else []
        in
        state := Some (spec, propsets);
        chg ctx 200.;
        Combuild.echo args (Value.Int spec.p_sprites)
      in
      let with_state f =
        match !state with
        | Some (spec, propsets) -> f spec propsets
        | None -> Hresult.fail (Hresult.E_fail "PhotoDraw.MixReader: nothing open")
      in
      let sprite_count ctx args =
        with_state (fun spec _ ->
            chg ctx 2.;
            Combuild.echo args (Value.Int spec.p_sprites))
      in
      let read_sprite ctx args =
        with_state (fun spec _ ->
            let index = Combuild.get_int args 0 in
            if index < 0 || index >= max 1 spec.p_sprites then
              Hresult.fail (Hresult.E_invalidarg "PhotoDraw: sprite out of range");
            let parsed =
              int_of_float (parse_ratio spec.p_kind *. float_of_int spec.p_bytes)
              / max 1 spec.p_sprites
            in
            chg ctx (float_of_int parsed /. 2_000.);
            Combuild.echo args (Value.Blob parsed))
      in
      let propset_count ctx args =
        with_state (fun _ propsets ->
            chg ctx 2.;
            Combuild.echo args (Value.Int (List.length propsets)))
      in
      let propset ctx args =
        with_state (fun _ propsets ->
            let index = Combuild.get_int args 0 in
            chg ctx 2.;
            match List.nth_opt propsets index with
            | Some p -> Combuild.echo args (Value.Iface_ref p)
            | None -> Combuild.echo args Value.Null)
      in
      [
        Combuild.iface i_mix_source
          [
            ("open_mix", open_mix); ("sprite_count", sprite_count);
            ("read_sprite", read_sprite); ("propset_count", propset_count);
            ("propset", propset);
          ];
      ])

let c_event_manager =
  Runtime.define_class "PhotoDraw.EventManager" (fun _ctx _self ->
      let notify ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      let notify_str ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      [ Combuild.iface Common.i_notify [ ("notify", notify); ("notify_str", notify_str) ] ])

let c_sprite_cache =
  Runtime.define_class "PhotoDraw.SpriteCache" (fun _ctx _self ->
      let bytes = ref 0 in
      let set_pixels ctx args =
        bytes := Combuild.get_int args 0;
        chg ctx (float_of_int !bytes /. 3_000.);
        Combuild.echo args Value.Unit
      in
      let blend ctx args =
        let dst = Combuild.get_iface args 0 in
        (* Push our pixels into the destination sprite via shared
           memory: a non-remotable, zero-copy hop. *)
        ignore
          (Runtime.call_named ctx dst "set_pixels"
             [ Value.Int !bytes; Value.Opaque_handle "SHM" ]);
        chg ctx (float_of_int !bytes /. 2_500.);
        Combuild.echo args Value.Unit
      in
      let pixel_bytes ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int !bytes)
      in
      [
        Combuild.iface i_sprite
          [ ("set_pixels", set_pixels); ("blend", blend); ("pixel_bytes", pixel_bytes) ];
      ])

(* A layer owns one sprite cache and its event plumbing. *)
let i_layer =
  Itype.declare "ILayer"
    [
      Idl_type.method_ "load" [ Idl_type.param "data" Idl_type.Blob ];
      Idl_type.method_ "compose" [ Idl_type.param "target" (Idl_type.Iface "ISprite") ];
    ]

let c_layer =
  Runtime.define_class "PhotoDraw.Layer" (fun ctx0 _self ->
      let sprite = Common.create ctx0 c_sprite_cache i_sprite in
      let events = Common.create ctx0 c_event_manager Common.i_notify in
      let load ctx args =
        let data = Combuild.get_blob args 0 in
        ignore
          (Runtime.call_named ctx sprite "set_pixels"
             [ Value.Int data; Value.Opaque_handle "SHM" ]);
        ignore (Runtime.call_named ctx events "notify" [ Value.Int 1 ]);
        chg ctx (float_of_int data /. 2_000.);
        Combuild.echo args Value.Unit
      in
      let compose ctx args =
        let target = Combuild.get_iface args 0 in
        ignore
          (Runtime.call_named ctx sprite "blend"
             [ Value.Iface_ref target; Value.Opaque_handle "SHM" ]);
        ignore (Runtime.call_named ctx events "notify" [ Value.Int 2 ]);
        chg ctx 40.;
        Combuild.echo args Value.Unit
      in
      [ Combuild.iface i_layer [ ("load", load); ("compose", compose) ] ])

(* Each transform application instantiates a parameterized effect —
   blur radii, tint matrices — that runs against the sprite over shared
   memory. *)
let i_effect =
  Itype.declare "IEffect"
    [
      Idl_type.method_ ~ret:Idl_type.Int32 "run"
        [
          Idl_type.param "target" (Idl_type.Iface "ISprite");
          Idl_type.param "shm" (Idl_type.Opaque "SHM");
        ];
    ]

let c_effect_instance =
  Runtime.define_class "PhotoDraw.EffectInstance" (fun _ctx _self ->
      let run ctx args =
        let target = Combuild.get_iface args 0 in
        let n = Common.call_ret_int ctx target "pixel_bytes" [] in
        ignore
          (Runtime.call_named ctx target "set_pixels"
             [ Value.Int n; Value.Opaque_handle "SHM" ]);
        chg ctx (150. +. (float_of_int n /. 900.));
        Combuild.echo args (Value.Int n)
      in
      [ Combuild.iface i_effect [ ("run", run) ] ])

let c_transform =
  Runtime.define_class "PhotoDraw.Transform"
    ~creates:[ "PhotoDraw.EffectInstance" ] (fun _ctx _self ->
      let apply ctx args =
        let target = Combuild.get_iface args 0 in
        let effect = Common.create ctx c_effect_instance i_effect in
        let n =
          Common.call_ret_int ctx effect "run"
            [ List.nth args 0; Value.Opaque_handle "SHM" ]
        in
        ignore target;
        chg ctx 60.;
        Combuild.echo args (Value.Int n)
      in
      [ Combuild.iface i_transform [ ("apply", apply) ] ])

(* Gallery browsing materializes a thumbnail component per template. *)
let c_thumbnail =
  Runtime.define_class "PhotoDraw.Thumbnail" (fun _ctx _self ->
      let put ctx args =
        chg ctx (float_of_int (Combuild.get_blob args 0) /. 600.);
        Combuild.echo args Value.Unit
      in
      let finish ctx args =
        chg ctx 3.;
        Combuild.echo args (Value.Int 0)
      in
      [ Combuild.iface Common.i_blob_sink [ ("put", put); ("finish", finish) ] ])

(* The screen renderer is itself a sprite (the backbuffer) painted by
   the window. *)
let c_renderer =
  Runtime.define_class "PhotoDraw.Renderer" ~api_refs:Widgets.gui_apis (fun _ctx _self ->
      let bytes = ref 0 in
      let set_pixels ctx args =
        bytes := max !bytes (Combuild.get_int args 0);
        chg ctx (float_of_int (Combuild.get_int args 0) /. 4_000.);
        Combuild.echo args Value.Unit
      in
      let blend ctx args =
        ignore (Combuild.get_iface args 0);
        chg ctx 30.;
        Combuild.echo args Value.Unit
      in
      let pixel_bytes ctx args =
        chg ctx 2.;
        Combuild.echo args (Value.Int !bytes)
      in
      let paint ctx args =
        chg ctx (100. +. (float_of_int !bytes /. 8_000.));
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        chg ctx 3.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_sprite
          [ ("set_pixels", set_pixels); ("blend", blend); ("pixel_bytes", pixel_bytes) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

let c_composition =
  Runtime.define_class "PhotoDraw.Composition"
    ~creates:[ "PhotoDraw.Layer" ] (fun _ctx _self ->
      let src = ref None and target = ref None and render = ref None in
      let layers = ref [] in
      let init ctx args =
        (match List.nth args 0 with
        | Value.Iface_ref h -> src := Some h
        | _ -> src := None);
        target := Some (Combuild.get_iface args 1);
        render := Some (Combuild.get_iface args 2);
        chg ctx 15.;
        Combuild.echo args Value.Unit
      in
      let build ctx args =
        let s = Option.get !src in
        let n = Common.call_ret_int ctx s "sprite_count" [] in
        for i = 0 to n - 1 do
          let data = Common.call_ret_blob ctx s "read_sprite" [ Value.Int i ] in
          let layer = Common.create ctx c_layer i_layer in
          ignore (Runtime.call_named ctx layer "load" [ Value.Blob data ]);
          layers := layer :: !layers
        done;
        (* Consult the property sets for rendering intent. *)
        let np = Common.call_ret_int ctx s "propset_count" [] in
        for i = 0 to np - 1 do
          match Common.call ctx s "propset" [ Value.Int i ] with
          | Value.Iface_ref p ->
              ignore (Common.call_ret_str ctx p "query" [ Value.Str "render-intent" ]);
              ignore (Common.call_ret_int ctx p "query_int" [ Value.Str "gamma" ])
          | _ -> ()
        done;
        chg ctx 120.;
        Combuild.echo args (Value.Int n)
      in
      let show ctx args =
        (match (!target, !render) with
        | Some t, Some r ->
            List.iter
              (fun layer ->
                ignore (Runtime.call_named ctx layer "compose" [ Value.Iface_ref t ]))
              (List.rev !layers);
            ignore (Runtime.call_named ctx r "render_page" [ Value.Int 0; Value.Blob 1_500 ])
        | _ -> ());
        chg ctx 200.;
        Combuild.echo args Value.Unit
      in
      let blank ctx args =
        let n = Combuild.get_int args 0 in
        for _ = 1 to n do
          let layer = Common.create ctx c_layer i_layer in
          ignore (Runtime.call_named ctx layer "load" [ Value.Blob 4_096 ]);
          layers := layer :: !layers
        done;
        chg ctx 60.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_composition
          [ ("init", init); ("build", build); ("show", show); ("blank", blank) ];
      ])

let c_app =
  Runtime.define_class "PhotoDraw.App" ~api_refs:Widgets.gui_apis
    ~creates:
      (Widgets.class_names kit
      @ [
          "PhotoDraw.Renderer"; "PhotoDraw.MixReader"; "PhotoDraw.Composition";
          "PhotoDraw.Thumbnail"; "PhotoDraw.Transform"; Common.file_server_class_name;
        ])
    (fun _ctx _self ->
      let chrome = ref None in
      let renderer = ref None in
      let fs = ref None in
      let open_with_reader ctx name =
        let c = Option.get !chrome in
        let r = Option.get !renderer in
        let reader = Common.create ctx c_mix_reader i_mix_source in
        ignore (Common.call_ret_int ctx reader "open_mix" [ Value.Str name ]);
        let comp = Common.create ctx c_composition i_composition in
        ignore
          (Runtime.call_named ctx comp "init"
             [ Value.Iface_ref reader; Value.Iface_ref r; Value.Iface_ref c.Widgets.window_render ]);
        ignore (Common.call_ret_int ctx comp "build" []);
        ignore (Runtime.call_named ctx comp "show" []);
        comp
      in
      let startup ctx args =
        let c = Widgets.build_chrome ctx kit ~buttons:42 ~menus:9 ~extras:12 in
        chrome := Some c;
        (* Tool palettes: two extra bars of buttons. *)
        let r = Common.create ctx c_renderer i_sprite in
        renderer := Some r;
        let rp = Runtime.query_interface ctx r ~iid:(Itype.iid Common.i_paint) in
        ignore
          (Runtime.call_named ctx c.Widgets.window_render "attach_surface" [ Value.Iface_ref rp ]);
        let f = Common.create_file_server ctx in
        fs := Some f;
        ignore (Common.call_ret_blob ctx f "read_all" [ Value.Str "photodraw.ini" ]);
        chg ctx 900.;
        Combuild.echo args Value.Unit
      in
      let new_image ctx args =
        (* The template gallery streams through a reader of its own;
           the chooser materializes a thumbnail per template. *)
        let comp_gallery = open_with_reader ctx "gallery.mix" in
        ignore comp_gallery;
        for _ = 1 to 16 do
          let thumb = Common.create ctx c_thumbnail Common.i_blob_sink in
          ignore (Runtime.call_named ctx thumb "put" [ Value.Blob 3_000 ])
        done;
        let c = Option.get !chrome in
        let r = Option.get !renderer in
        let comp = Common.create ctx c_composition i_composition in
        ignore
          (Runtime.call_named ctx comp "init"
             [ Value.Null; Value.Iface_ref r; Value.Iface_ref c.Widgets.window_render ]);
        ignore (Runtime.call_named ctx comp "blank" [ Value.Int 4 ]);
        chg ctx 150.;
        Combuild.echo args Value.Unit
      in
      let open_image ctx args =
        ignore (open_with_reader ctx (Combuild.get_str args 0));
        chg ctx 80.;
        Combuild.echo args Value.Unit
      in
      let new_composition ctx args =
        let a = Combuild.get_str args 0 in
        let b = Combuild.get_str args 1 in
        ignore (open_with_reader ctx a);
        ignore (open_with_reader ctx b);
        (* Transform the merged result. *)
        let r = Option.get !renderer in
        let t = Common.create ctx c_transform i_transform in
        List.iter
          (fun kind ->
            ignore
              (Common.call_ret_int ctx t "apply"
                 [ Value.Iface_ref r; Value.Str kind; Value.Opaque_handle "SHM" ]))
          [ "sharpen"; "tint"; "crop" ];
        chg ctx 400.;
        Combuild.echo args Value.Unit
      in
      let repaint ctx args =
        (match !chrome with
        | Some c ->
            List.iter
              (fun p -> ignore (Runtime.call_named ctx p "paint" [ Value.Opaque_handle "HDC" ]))
              c.Widgets.paints
        | None -> ());
        chg ctx 60.;
        Combuild.echo args Value.Unit
      in
      let shutdown ctx args =
        chg ctx 180.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface i_pd_app
          [
            ("startup", startup); ("new_image", new_image); ("open_image", open_image);
            ("new_composition", new_composition); ("repaint", repaint); ("shutdown", shutdown);
          ];
      ])

(* ---------------------------------------------------------------- *)
(* Scenarios (Table 1, the p_ rows)                                  *)
(* ---------------------------------------------------------------- *)

let images =
  [
    ("collage.mix", { p_kind = K_composition; p_bytes = 3_000_000; p_sprites = sprites_per_composition });
    ("drawing.mix", { p_kind = K_line_drawing; p_bytes = 500_000; p_sprites = 10 });
    ("gallery.mix", { p_kind = K_gallery; p_bytes = 1_200_000; p_sprites = 16 });
    ("scan_a.mix", { p_kind = K_photo; p_bytes = 2_500_000; p_sprites = 12 });
    ("scan_b.mix", { p_kind = K_photo; p_bytes = 2_500_000; p_sprites = 12 });
  ]

let prepare ctx =
  Common.Vfs.add ctx ~name:"photodraw.ini" ~bytes:8_000;
  List.iter (fun (name, spec) -> register_img ctx name spec) images

let boot ctx =
  prepare ctx;
  let app = Common.create ctx c_app i_pd_app in
  ignore (Runtime.call_named ctx app "startup" []);
  app

let scenario_new_image ctx =
  let app = boot ctx in
  ignore (Runtime.call_named ctx app "new_image" []);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_new_composition ctx =
  let app = boot ctx in
  ignore (Runtime.call_named ctx app "new_composition" [ Value.Str "scan_a.mix"; Value.Str "scan_b.mix" ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_open name ctx =
  let app = boot ctx in
  ignore (Runtime.call_named ctx app "open_image" [ Value.Str name ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let scenario_off name ctx =
  let app = boot ctx in
  ignore (Runtime.call_named ctx app "new_image" []);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "open_image" [ Value.Str name ]);
  ignore (Runtime.call_named ctx app "repaint" []);
  ignore (Runtime.call_named ctx app "shutdown" [])

let sc id desc run = { App.sc_id = id; sc_desc = desc; sc_bigone = false; sc_run = run }

let scenarios =
  [
    sc "p_newdoc" "Create new image." scenario_new_image;
    sc "p_newmsr" "Create new composition." scenario_new_composition;
    sc "p_oldcur" "View line drawing." (scenario_open "drawing.mix");
    sc "p_oldmsr" "View composition." (scenario_open "collage.mix");
    sc "p_offcur" "p_newdoc then p_oldcur." (scenario_off "drawing.mix");
    sc "p_offmsr" "p_newdoc then p_oldmsr." (scenario_off "collage.mix");
    {
      App.sc_id = "p_bigone";
      sc_desc = "All of the above in one scenario.";
      sc_bigone = true;
      sc_run =
        (fun ctx ->
          scenario_new_image ctx;
          scenario_new_composition ctx;
          scenario_open "drawing.mix" ctx;
          scenario_open "collage.mix" ctx;
          scenario_off "drawing.mix" ctx;
          scenario_off "collage.mix" ctx);
    };
  ]

let classes =
  Widgets.classes kit
  @ [
      c_property_set; c_mix_reader; c_event_manager; c_sprite_cache; c_layer;
      c_effect_instance; c_transform; c_thumbnail; c_renderer; c_composition; c_app;
    ]

let app =
  App.make ~name:"photodraw" ~roots:[ "PhotoDraw.App" ] ~classes
    ~default_placement:(fun _cname -> Coign_core.Constraints.Client)
    ~scenarios
