open Coign_idl
open Coign_com

type kit = {
  window : Runtime.component_class;
  button : Runtime.component_class;
  menu : Runtime.component_class;
  toolbar : Runtime.component_class;
  statusbar : Runtime.component_class;
  scrollbar : Runtime.component_class;
  tooltip : Runtime.component_class;
  dialog : Runtime.component_class;
}

let gui_apis = [ "user32.CreateWindowExW"; "user32.DefWindowProcW"; "gdi32.BitBlt" ]

(* A simple control: stores its parent's INotify, pings it on click,
   charges a little compute per paint. *)
let control_class name ~click_code ~paint_us =
  Runtime.define_class name ~api_refs:gui_apis (fun _ctx _self ->
      let parent = ref None in
      let enabled = ref true in
      let attach ctx args =
        parent := Some (Combuild.get_iface args 0);
        Runtime.charge ctx ~us:15.;
        Combuild.echo args Value.Unit
      in
      let enable ctx args =
        enabled := Combuild.get_bool args 0;
        Runtime.charge ctx ~us:2.;
        Combuild.echo args Value.Unit
      in
      let click ctx args =
        (if !enabled then
           match !parent with
           | Some p -> ignore (Runtime.call_named ctx p "notify" [ Value.Int click_code ])
           | None -> ());
        Runtime.charge ctx ~us:10.;
        Combuild.echo args Value.Unit
      in
      let set_label ctx args =
        Runtime.charge ctx ~us:4.;
        Combuild.echo args Value.Unit
      in
      let paint ctx args =
        Runtime.charge ctx ~us:paint_us;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        Runtime.charge ctx ~us:2.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface Common.i_control
          [ ("attach", attach); ("enable", enable); ("click", click); ("set_label", set_label) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
      ])

let window_class name =
  Runtime.define_class name ~api_refs:gui_apis (fun _ctx _self ->
      let events = ref 0 in
      let surfaces = ref [] in
      let notify ctx args =
        ignore (Combuild.get_int args 0);
        incr events;
        Runtime.charge ctx ~us:8.;
        Combuild.echo args Value.Unit
      in
      let notify_str ctx args =
        incr events;
        Runtime.charge ctx ~us:8.;
        Combuild.echo args Value.Unit
      in
      let paint ctx args =
        Runtime.charge ctx ~us:120.;
        (* Repaint every attached document surface through the
           non-remotable device-context interface. *)
        List.iter
          (fun s ->
            ignore (Runtime.call_named ctx s "paint" [ Value.Opaque_handle "HDC" ]))
          !surfaces;
        Combuild.echo args Value.Unit
      in
      let invalidate ctx args =
        Runtime.charge ctx ~us:4.;
        Combuild.echo args Value.Unit
      in
      let render_page ctx args =
        (* Blitting a page image to the screen. *)
        let bytes = Combuild.get_blob args 1 in
        Runtime.charge ctx ~us:(80. +. (float_of_int bytes /. 400.));
        Combuild.echo args Value.Unit
      in
      let scroll ctx args =
        Runtime.charge ctx ~us:25.;
        Combuild.echo args Value.Unit
      in
      let attach_surface ctx args =
        surfaces := Combuild.get_iface args 0 :: !surfaces;
        Runtime.charge ctx ~us:6.;
        Combuild.echo args Value.Unit
      in
      [
        Combuild.iface Common.i_notify [ ("notify", notify); ("notify_str", notify_str) ];
        Combuild.iface Common.i_paint [ ("paint", paint); ("invalidate", invalidate) ];
        Combuild.iface Common.i_render
          [ ("render_page", render_page); ("scroll", scroll); ("attach_surface", attach_surface) ];
      ])

let kit ~prefix =
  {
    window = window_class (prefix ^ ".MainWindow");
    button = control_class (prefix ^ ".Button") ~click_code:1 ~paint_us:12.;
    menu = control_class (prefix ^ ".Menu") ~click_code:2 ~paint_us:18.;
    toolbar = control_class (prefix ^ ".Toolbar") ~click_code:3 ~paint_us:30.;
    statusbar = control_class (prefix ^ ".StatusBar") ~click_code:4 ~paint_us:16.;
    scrollbar = control_class (prefix ^ ".ScrollBar") ~click_code:5 ~paint_us:10.;
    tooltip = control_class (prefix ^ ".Tooltip") ~click_code:6 ~paint_us:6.;
    dialog = control_class (prefix ^ ".Dialog") ~click_code:7 ~paint_us:40.;
  }

let classes k =
  [ k.window; k.button; k.menu; k.toolbar; k.statusbar; k.scrollbar; k.tooltip; k.dialog ]

let class_names k = List.map (fun c -> c.Runtime.cname) (classes k)

type chrome = {
  window_notify : Runtime.handle;
  window_paint : Runtime.handle;
  window_render : Runtime.handle;
  controls : Runtime.handle list;
  paints : Runtime.handle list;
}

let build_chrome ctx k ~buttons ~menus ~extras =
  let window_notify = Common.create ctx k.window Common.i_notify in
  let window_paint = Runtime.query_interface ctx window_notify ~iid:(Itype.iid Common.i_paint) in
  let window_render = Runtime.query_interface ctx window_notify ~iid:(Itype.iid Common.i_render) in
  let make cls count =
    List.init count (fun _ ->
        let ctl = Common.create ctx cls Common.i_control in
        ignore (Runtime.call_named ctx ctl "attach" [ Value.Iface_ref window_notify ]);
        ctl)
  in
  let controls =
    List.concat
      [
        make k.button buttons;
        make k.menu menus;
        make k.toolbar 1;
        make k.statusbar 1;
        make k.scrollbar 2;
        make k.tooltip extras;
        make k.dialog 1;
      ]
  in
  let paints =
    window_paint
    :: List.map (fun c -> Runtime.query_interface ctx c ~iid:(Itype.iid Common.i_paint)) controls
  in
  { window_notify; window_paint; window_render; controls; paints }

let paint_all ctx chrome =
  List.iter
    (fun p -> ignore (Runtime.call_named ctx p "paint" [ Value.Opaque_handle "HDC" ]))
    chrome.paints

let click ctx chrome i =
  match List.nth_opt chrome.controls i with
  | Some c -> ignore (Runtime.call_named ctx c "click" [])
  | None -> invalid_arg "Widgets.click: no such control"
