let all = [ Octarine.app; Photodraw.app; Benefits.app; Ingest.app ]

let find_app name =
  match List.find_opt (fun a -> String.equal a.App.app_name name) all with
  | Some a -> a
  | None -> raise Not_found

let table1 =
  List.concat_map
    (fun (app : App.t) ->
      List.map
        (fun (sc : App.scenario) -> (app.App.app_name, sc.App.sc_id, sc.App.sc_desc))
        app.App.app_scenarios)
    all

let find_scenario id =
  let rec search = function
    | [] -> raise Not_found
    | app :: rest -> (
        match
          List.find_opt (fun sc -> String.equal sc.App.sc_id id) app.App.app_scenarios
        with
        | Some sc -> (app, sc)
        | None -> search rest)
  in
  search all
