open Coign_idl
open Coign_com

type sizes = { request_bytes : int; reply_bytes : int; remotable : bool }

let non_remotable = { request_bytes = 0; reply_bytes = 0; remotable = false }

(* Lockstep walk over the compiled parameter programs and both value
   lists: [ins] and [outs] each carry one slot per parameter (the RTE
   builds them from the same signature), so indexing with [List.nth]
   would be a quadratic re-scan on wide methods.  The [_exn] sizing
   walks keep the per-call success path allocation-free. *)
let rec measure_params req rep ps ins outs =
  match (ps, ins, outs) with
  | [], _, _ -> (req, rep)
  | (dir, proc) :: ps', vin :: ins', vout :: outs' -> (
      match dir with
      | Idl_type.In -> measure_params (req + Midl.size_with_exn proc vin) rep ps' ins' outs'
      | Idl_type.Out -> measure_params req (rep + Midl.size_with_exn proc vout) ps' ins' outs'
      | Idl_type.In_out ->
          measure_params
            (req + Midl.size_with_exn proc vin)
            (rep + Midl.size_with_exn proc vout)
            ps' ins' outs')
  | _, _, _ -> invalid_arg "Informer.measure_call: parameter arity mismatch"

let measure_call itype ~meth ~ins ~outs ~ret =
  let procs = Itype.procs itype meth in
  if not procs.Midl.remotable then non_remotable
  else
    match
      let req, rep = measure_params 0 0 procs.Midl.request_procs ins outs in
      (req, rep + Midl.size_with_exn procs.Midl.ret_proc ret)
    with
    | req, rep ->
        {
          request_bytes = Marshal_size.scalar_overhead + req;
          reply_bytes = Marshal_size.scalar_overhead + rep;
          remotable = true;
        }
    | exception Marshal_size.Err _ -> non_remotable

let outgoing_handles itype ~meth ~outs ~ret =
  let procs = Itype.procs itype meth in
  let from_params =
    List.concat
      (List.mapi
         (fun i iproc ->
           if Midl.iface_walk_trivial iproc then []
           else
             match List.nth_opt procs.Midl.request_procs i with
             | Some ((Idl_type.Out | Idl_type.In_out), _) ->
                 Midl.handles_with iproc (List.nth outs i)
             | Some (Idl_type.In, _) | None -> [])
         procs.Midl.iface_procs)
  in
  if Midl.iface_walk_trivial procs.Midl.ret_iface_proc then from_params
  else from_params @ Midl.handles_with procs.Midl.ret_iface_proc ret

let incoming_handles itype ~meth ~ins =
  let procs = Itype.procs itype meth in
  List.concat
    (List.mapi
       (fun i iproc ->
         if Midl.iface_walk_trivial iproc then []
         else
           match List.nth_opt procs.Midl.request_procs i with
           | Some ((Idl_type.In | Idl_type.In_out), _) ->
               Midl.handles_with iproc (List.nth ins i)
           | Some (Idl_type.Out, _) | None -> [])
       procs.Midl.iface_procs)
