type signature = (int * int, float) Hashtbl.t

let of_counts counts =
  let t = Hashtbl.create 64 in
  List.iter
    (fun (pair, n) ->
      let cur = Option.value ~default:0. (Hashtbl.find_opt t pair) in
      Hashtbl.replace t pair (cur +. float_of_int n))
    counts;
  t

let of_icc icc =
  (* Two messages per call in the summaries. The signature is an
     order-insensitive accumulation, so fold the ICC cells directly
     instead of materializing the sorted entry list. *)
  let t = Hashtbl.create 64 in
  Icc.fold_messages
    (fun ~src ~dst ~count () ->
      let pair = (src, dst) in
      let cur = Option.value ~default:0. (Hashtbl.find_opt t pair) in
      Hashtbl.replace t pair (cur +. float_of_int (count / 2)))
    icc ();
  t

let of_weights weights =
  let t = Hashtbl.create 64 in
  List.iter
    (fun (pair, w) ->
      if w > 0. then begin
        let cur = Option.value ~default:0. (Hashtbl.find_opt t pair) in
        Hashtbl.replace t pair (cur +. w)
      end)
    weights;
  t

let entries t =
  List.sort compare (Hashtbl.fold (fun pair w acc -> (pair, w) :: acc) t [])

let similarity a b =
  let dot = ref 0. and na = ref 0. and nb = ref 0. in
  Hashtbl.iter
    (fun pair va ->
      na := !na +. (va *. va);
      match Hashtbl.find_opt b pair with
      | Some vb -> dot := !dot +. (va *. vb)
      | None -> ())
    a;
  Hashtbl.iter (fun _ vb -> nb := !nb +. (vb *. vb)) b;
  if !na = 0. && !nb = 0. then 1.
  else if !na = 0. || !nb = 0. then 0.
  else !dot /. (sqrt !na *. sqrt !nb)

let drifted ?(threshold = 0.90) ~profile observed =
  similarity profile observed < threshold

let pair_count = Hashtbl.length
