open Coign_util
open Coign_idl
open Coign_com
open Coign_netsim
module Trace = Coign_obs.Trace
module Metrics = Coign_obs.Metrics
module Tap = Coign_obs.Tap

(* Registry instruments, resolved once at install time so the hot path
   never does a name lookup. *)
type instruments = {
  i_intercepted : Metrics.counter;
  i_instantiations : Metrics.counter;
  i_remote_calls : Metrics.counter;
  i_remote_bytes : Metrics.counter;
  i_comm_us : Metrics.counter;
  i_retries : Metrics.counter;
  i_drops : Metrics.counter;
  i_spikes : Metrics.counter;
  i_fallbacks : Metrics.counter;
  i_unreachable : Metrics.counter;
  i_fault_us : Metrics.counter;
  i_request_bytes : Metrics.histogram;
  i_reply_bytes : Metrics.histogram;
}

let make_instruments reg =
  let open Metrics in
  {
    i_intercepted =
      counter reg ~help:"Calls intercepted by the RTE, local and remote."
        "coign_rte_intercepted_calls_total";
    i_instantiations =
      counter reg ~help:"Component instantiations intercepted."
        "coign_rte_instantiations_total";
    i_remote_calls =
      counter reg ~help:"Completed cross-machine calls and forwarded instantiations."
        "coign_rte_remote_calls_total";
    i_remote_bytes =
      counter reg ~help:"Marshaled bytes moved across machines." "coign_rte_remote_bytes_total";
    i_comm_us =
      counter reg ~help:"Virtual communication time accumulated, in microseconds."
        "coign_rte_comm_us_total";
    i_retries =
      counter reg ~help:"Remote-call attempts beyond the first." "coign_rte_retries_total";
    i_drops = counter reg ~help:"Messages eaten by the fault model." "coign_rte_drops_total";
    i_spikes = counter reg ~help:"Latency spikes suffered." "coign_rte_spikes_total";
    i_fallbacks =
      counter reg ~help:"Instantiations degraded to the creator machine."
        "coign_rte_degraded_instantiations_total";
    i_unreachable =
      counter reg ~help:"Calls abandoned as unreachable." "coign_rte_unreachable_calls_total";
    i_fault_us =
      counter reg ~help:"Communication time attributable to faults, in microseconds."
        "coign_rte_fault_us_total";
    i_request_bytes =
      histogram reg ~help:"Cross-wrapper request message sizes, in bytes."
        "coign_rte_request_bytes";
    i_reply_bytes =
      histogram reg ~help:"Cross-wrapper reply message sizes, in bytes." "coign_rte_reply_bytes";
  }

(* Resilience instruments, separate from the base set so a run without
   a resilience policy exposes exactly the metrics it always did. *)
type resil_instruments = {
  ri_opens : Metrics.counter;
  ri_closes : Metrics.counter;
  ri_failovers : Metrics.counter;
  ri_failbacks : Metrics.counter;
  ri_migrations : Metrics.counter;
  ri_stranded : Metrics.counter;
  ri_rescued : Metrics.counter;
  ri_wait_us : Metrics.counter;
  ri_rung : Metrics.gauge;
  ri_ewma : Metrics.gauge;
}

let make_resil_instruments reg =
  let open Metrics in
  {
    ri_opens =
      counter reg ~help:"Circuit-breaker open transitions." "coign_resilience_breaker_opens_total";
    ri_closes =
      counter reg ~help:"Circuit-breaker close transitions."
        "coign_resilience_breaker_closes_total";
    ri_failovers =
      counter reg ~help:"Placement switches down the fallback ladder."
        "coign_resilience_failovers_total";
    ri_failbacks =
      counter reg ~help:"Placement switches back up the fallback ladder."
        "coign_resilience_failbacks_total";
    ri_migrations =
      counter reg ~help:"Instances migrated live between machines."
        "coign_resilience_migrated_instances_total";
    ri_stranded =
      counter reg ~help:"Calls that had to wait out an open breaker."
        "coign_resilience_stranded_calls_total";
    ri_rescued =
      counter reg ~help:"Failed remote calls completed locally after failover."
        "coign_resilience_rescued_calls_total";
    ri_wait_us =
      counter reg ~help:"Virtual time stranded calls spent waiting on cooloffs, in microseconds."
        "coign_resilience_wait_us_total";
    ri_rung = gauge reg ~help:"Fallback rung currently installed (0 = primary)." "coign_resilience_rung";
    ri_ewma =
      gauge reg ~help:"EWMA link health (1 = all successes)." "coign_resilience_link_ewma";
  }

type resilience_config = {
  rc_ladder : Fallback.t;
  rc_health : Health.policy;
  rc_max_probe_rounds : int;
}

let resilience ?(health = Health.default_policy) ?(max_probe_rounds = 8) ladder =
  { rc_ladder = ladder; rc_health = health; rc_max_probe_rounds = max_probe_rounds }

(* Fleet instruments, separate from both base and resilience sets: a
   run without a pool exposes exactly the metrics it always did. *)
type fleet_instruments = {
  fi_promotions : Metrics.counter;
  fi_splits : Metrics.counter;
  fi_resizes : Metrics.counter;
  fi_inter_host : Metrics.counter;
  fi_hosts : Metrics.gauge;
  fi_shards : Metrics.gauge;
}

let make_fleet_instruments reg =
  let open Metrics in
  {
    fi_promotions =
      counter reg ~help:"Shards redirected to a standing replica on breaker open."
        "coign_fleet_promotions_total";
    fi_splits =
      counter reg ~help:"Hot shards split by the decayed-load detector."
        "coign_fleet_shard_splits_total";
    fi_resizes =
      counter reg ~help:"Pool size changes along the pool-elastic ladder."
        "coign_fleet_resizes_total";
    fi_inter_host =
      counter reg ~help:"Completed server-to-server calls between pool hosts."
        "coign_fleet_inter_host_calls_total";
    fi_hosts = gauge reg ~help:"Pool hosts currently serving." "coign_fleet_pool_hosts";
    fi_shards = gauge reg ~help:"Shards currently mapped." "coign_fleet_shards";
  }

type fleet_config = {
  fc_ladder : Fallback.pool_ladder;
  fc_health : Health.policy;
  fc_max_probe_rounds : int;
  fc_split_share : float;
  fc_check_every : int;
  fc_half_life_us : float;
  fc_host_faults : (int * Fault.spec) list;
}

let fleet ?(health = Health.default_policy) ?(max_probe_rounds = 8) ?(split_share = 0.6)
    ?(check_every = 64) ?(half_life_us = 200_000.) ?(host_faults = []) ladder =
  if not (split_share > 0. && split_share <= 1.) then
    invalid_arg "Rte.fleet: split_share must be in (0, 1]";
  if check_every < 1 then invalid_arg "Rte.fleet: check_every must be >= 1";
  {
    fc_ladder = ladder;
    fc_health = health;
    fc_max_probe_rounds = max_probe_rounds;
    fc_split_share = split_share;
    fc_check_every = check_every;
    fc_half_life_us = half_life_us;
    fc_host_faults = host_faults;
  }

(* Watch instruments, separate for the same reason as the resilience
   set: a run without a watch exposes exactly the metrics it always
   did. *)
type watch_instruments = {
  wi_similarity : Metrics.gauge;
  wi_window_pairs : Metrics.gauge;
  wi_window_mass : Metrics.gauge;
  wi_checks : Metrics.counter;
  wi_detections : Metrics.counter;
  wi_repartitions : Metrics.counter;
  wi_migrations : Metrics.counter;
  wi_unchanged : Metrics.counter;
  wi_rejected : Metrics.counter;
}

let make_watch_instruments reg =
  let open Metrics in
  {
    wi_similarity =
      gauge reg ~help:"Window-vs-baseline usage similarity at the last drift check."
        "coign_drift_similarity";
    wi_window_pairs =
      gauge reg ~help:"Distinct pairs carrying window mass at the last drift check."
        "coign_drift_window_pairs";
    wi_window_mass =
      gauge reg ~help:"Decayed observation mass in the window at the last drift check."
        "coign_drift_window_mass";
    wi_checks = counter reg ~help:"Drift checks performed." "coign_drift_checks_total";
    wi_detections =
      counter reg ~help:"Drift checks that crossed the threshold." "coign_drift_detections_total";
    wi_repartitions =
      counter reg ~help:"Placement switches installed by the watch loop."
        "coign_watch_repartitions_total";
    wi_migrations =
      counter reg ~help:"Instances migrated live by watch re-partitions."
        "coign_watch_migrated_instances_total";
    wi_unchanged =
      counter reg ~help:"Drift detections whose re-cut chose the installed placement."
        "coign_watch_unchanged_cuts_total";
    wi_rejected =
      counter reg ~help:"Candidate cuts rejected by constraint validation."
        "coign_watch_rejected_cuts_total";
  }

type watch_config = {
  wc_session : Analysis.Session.t;
  wc_net : Net_profiler.t;
  wc_threshold : float;
  wc_check_every : int;
  wc_min_dwell_us : float;
  wc_min_window : float;
  wc_half_life_us : float;
  wc_sample_every : int;
  wc_tap : Tap.sink option;
}

let watch ?(threshold = 0.90) ?(check_every = 256) ?(min_dwell_us = 50_000.)
    ?(min_window = 32.) ?(half_life_us = 200_000.) ?(sample_every = 16) ?tap ~net session =
  if not (threshold >= 0. && threshold <= 1.) then
    invalid_arg "Rte.watch: threshold must be in [0, 1]";
  if check_every < 1 then invalid_arg "Rte.watch: check_every must be >= 1";
  {
    wc_session = session;
    wc_net = net;
    wc_threshold = threshold;
    wc_check_every = check_every;
    wc_min_dwell_us = min_dwell_us;
    wc_min_window = min_window;
    wc_half_life_us = half_life_us;
    wc_sample_every = sample_every;
    wc_tap = tap;
  }

type watch_action =
  | W_steady
  | W_unchanged
  | W_repartitioned of { wa_migrated : int; wa_left : int; wa_servers : int }
  | W_rejected of int  (* constraint violations in the candidate cut *)

type watch_checkpoint = {
  wk_at_us : float;
  wk_similarity : float;
  wk_window_pairs : int;
  wk_action : watch_action;
}

(* Mutable watch state: window, adopted baseline, installed cut. *)
type watch = {
  w_config : watch_config;
  w_window : Window.t;
  (* Always present: besides feeding the optional sink, the tap's
     seeded sampler decides which observations get their message sizes
     measured — the window's byte dimension. *)
  w_tap : Tap.t;
  w_obs : watch_instruments option;
  w_safe : bool array;          (* per-classification migration safety *)
  w_prof_share : float array;   (* profile's per-pair message share *)
  w_prof_byte_share : float array;  (* profile's per-pair byte share *)
  w_scale : Icc_graph.scale;    (* scratch scale vectors, pair-id order *)
  mutable w_baseline : Drift.signature;        (* message counts *)
  mutable w_baseline_bytes : Drift.signature;  (* byte volumes *)
  mutable w_current : Analysis.distribution;
  mutable w_last_switch_us : float;
  mutable w_since_check : int;
  mutable w_checks : int;
  mutable w_detections : int;
  mutable w_repartitions : int;
  mutable w_migrations : int;
  mutable w_unchanged : int;
  mutable w_rejected : int;
  mutable w_last_similarity : float;
  mutable w_timeline : watch_checkpoint list;  (* reversed *)
}

(* Mutable resilience state: breaker, current rung, counters. *)
type resil = {
  r_ladder : Fallback.t;
  r_health : Health.t;
  r_max_probe_rounds : int;
  r_obs : resil_instruments option;
  mutable r_rung : int;
  mutable r_breaker_opens : int;
  mutable r_breaker_closes : int;
  mutable r_failovers : int;
  mutable r_failbacks : int;
  mutable r_migrations : int;
  mutable r_stranded : int; (* calls that waited on an open breaker *)
  mutable r_rescued : int; (* failed calls completed locally after failover *)
}

(* Mutable fleet state: per-host breakers and fault models, the dynamic
   shard table (splits grow it), per-shard active hosts, counters. *)
type fleet = {
  f_config : fleet_config;
  f_ladder : Fallback.pool_ladder;
  f_health : Health.t array; (* one breaker per pool host link *)
  f_faults : Fault.t option array; (* one fault model per host link *)
  f_obs : fleet_instruments option;
  f_safe : bool array; (* per-classification migration safety *)
  f_component : int array; (* classification -> component representative *)
  f_comp_safe : bool array; (* by representative: all members safe *)
  f_window : Window.t; (* per-shard decayed remote-call load *)
  mutable f_rung : int;
  mutable f_shard_of : int array; (* classification -> shard (splits update it) *)
  mutable f_active : int array; (* shard -> host currently serving it *)
  mutable f_replicated : bool array; (* shard -> may promote to a replica *)
  mutable f_since_check : int;
  mutable f_opens : int;
  mutable f_closes : int;
  mutable f_failovers : int;
  mutable f_failbacks : int;
  mutable f_migrations : int;
  mutable f_stranded : int;
  mutable f_rescued : int;
  mutable f_promotions : int;
  mutable f_splits : int;
  mutable f_resizes : int;
  mutable f_inter_host : int;
}

type mode =
  | M_profiling
  | M_distributed of {
      m_factory : Factory.t;
      m_network : Network.t;
      m_jitter : float;
      m_rng : Prng.t;          (* jitter noise: stream of dc_seed itself *)
      m_faults : Fault.t option;
      m_retry : Fault.retry_policy;
      m_retry_rng : Prng.t;    (* backoff jitter: its own stream *)
      m_resil : resil option;
      m_watch : watch option;
      m_fleet : fleet option;
    }

type t = {
  ctx : Runtime.ctx;
  rte_classifier : Classifier.t;
  stack : Shadow_stack.t;
  logger : Logger.t;
  rte_icc : Icc.t;
  rte_inst_comm : Inst_comm.t;
  inst_classification : (int, int) Hashtbl.t;
  raw_to_wrap : (int, int) Hashtbl.t;
  wrap_to_raw : (int, int) Hashtbl.t;
  mode : mode;
  mutable created : int list;  (* reversed *)
  mutable comm : float;
  mutable n_remote_calls : int;
  mutable n_remote_bytes : int;
  mutable n_intercepted : int;
  (* Fault counters (all zero in profiling mode and in fault-free
     distributed runs). *)
  mutable n_retries : int;
  mutable n_drops : int;
  mutable n_spikes : int;
  mutable n_fallbacks : int;
  mutable n_unreachable : int;
  mutable fault_us : float;
  (* Lightweight per-classification-pair message counter, kept even in
     distributed mode (paper SS6: count messages "with only slight
     additional overhead" so usage drift can be recognized). *)
  pair_counts : (int * int, int ref) Hashtbl.t;
  (* Observability, both [None] unless the install opted in; every use
     site is behind a match so an unobserved RTE runs the same
     instructions it always did. *)
  obs_tracer : Trace.t option;
  obs : instruments option;
}

type distributed_config = {
  dc_factory_policy : Factory.policy;
  dc_network : Network.t;
  dc_jitter : float;
  dc_seed : int64;
  dc_faults : Fault.spec option;
  dc_retry : Fault.retry_policy;
  dc_resilience : resilience_config option;
  dc_watch : watch_config option;
  dc_fleet : fleet_config option;
}

(* One master seed, one stream per stochastic concern. The jitter
   generator keeps the master seed itself (stream "-1") so fault-free
   runs reproduce the pre-fault draw sequence bit for bit; backoff
   jitter and fault verdicts get derived streams, so enabling either
   never perturbs the other draws. *)
let jitter_seed seed = seed
let retry_seed seed = Prng.stream seed 1
let fault_seed seed = Prng.stream seed 2
let watch_seed seed = Prng.stream seed 3

(* Per-host fault-verdict streams for the fleet: streams 8, 9, ... so
   adding hosts never perturbs the jitter/retry/fault/watch draws. *)
let host_fault_seed seed h = Prng.stream seed (8 + h)

let classification_of t inst =
  if inst = Runtime.main_instance then -1
  else Option.value ~default:(-1) (Hashtbl.find_opt t.inst_classification inst)

(* The virtual clock spans are timed on: accumulated communication time
   plus the compute the application has charged. Deterministic for a
   seeded run, so traces golden-test. *)
let sim_now t = t.comm +. Runtime.compute_us t.ctx

let machine_of_instance t inst =
  match t.mode with
  | M_profiling -> Constraints.Client
  | M_distributed { m_factory; _ } -> Factory.machine_of m_factory inst

(* Zero-duration marker span for a breaker transition or rung switch. *)
let resil_span t ~name ~at_us args =
  match t.obs_tracer with
  | None -> ()
  | Some tr ->
      let id = Trace.open_span tr ~name ~cat:"resilience" ~at_us in
      Trace.close_span tr ~args id ~at_us

(* Zero-duration marker span for a watch-loop decision. *)
let watch_span t ~name ~at_us args =
  match t.obs_tracer with
  | None -> ()
  | Some tr ->
      let id = Trace.open_span tr ~name ~cat:"watch" ~at_us in
      Trace.close_span tr ~args id ~at_us

(* Atomically install [dist] as the factory policy and migrate every
   live instance the safety predicate allows to its new home; the rest
   stay where they are. Shared by failover rung switches and watch
   re-partitions. Returns (migrated, left behind, moves in instance
   order). *)
let migrate_instances t m_factory ~safe ~dist =
  Factory.set_policy m_factory (Factory.By_classification dist);
  let migrated = ref 0 and left = ref 0 and moved = ref [] in
  List.iter
    (fun (inst, machine) ->
      if inst <> Runtime.main_instance then begin
        let c = classification_of t inst in
        let target =
          if c >= 0 && c < dist.Analysis.node_count then Analysis.location_of dist c
          else machine
        in
        if target <> machine then
          if safe c then begin
            Factory.record_instance m_factory ~inst target;
            moved := (inst, c, machine, target) :: !moved;
            incr migrated
          end
          else incr left
      end)
    (Factory.instances m_factory);
  (!migrated, !left, List.rev !moved)

(* Per-instance migration events, after the aggregate event. *)
let log_migrations t ~at_int moved =
  List.iter
    (fun (inst, c, machine, target) ->
      t.logger.Logger.log
        (Event.Instance_migrated
           {
             at_us = at_int;
             inst;
             classification = c;
             from_loc = Constraints.location_name machine;
             to_loc = Constraints.location_name target;
           }))
    moved

(* Switch the placement map to another rung of the fallback ladder and
   migrate the instances the static remotability facts mark safe; the
   rest stay where they are (their calls may strand on the breaker). *)
let switch_rung t m_factory r ~to_rung ~at_us =
  let from_rung = r.r_rung in
  let rung = Fallback.rung r.r_ladder to_rung in
  let dist = rung.Fallback.rg_distribution in
  let migrated, left, moved =
    migrate_instances t m_factory ~safe:(Fallback.migration_safe r.r_ladder) ~dist
  in
  r.r_rung <- to_rung;
  r.r_migrations <- r.r_migrations + migrated;
  (match r.r_obs with
  | None -> ()
  | Some ri ->
      Metrics.inc_int ri.ri_migrations migrated;
      Metrics.set ri.ri_rung (float_of_int to_rung));
  let at_int = int_of_float at_us in
  if to_rung > from_rung then begin
    r.r_failovers <- r.r_failovers + 1;
    (match r.r_obs with None -> () | Some ri -> Metrics.inc ri.ri_failovers);
    t.logger.Logger.log
      (Event.Failover
         {
           at_us = at_int;
           rung = rung.Fallback.rg_name;
           from_rung;
           to_rung;
           migrated;
           stranded = left;
         });
    resil_span t ~name:"failover" ~at_us
      [
        ("from_rung", Jsonu.Int from_rung);
        ("to_rung", Jsonu.Int to_rung);
        ("migrated", Jsonu.Int migrated);
        ("stranded", Jsonu.Int left);
      ]
  end
  else begin
    r.r_failbacks <- r.r_failbacks + 1;
    (match r.r_obs with None -> () | Some ri -> Metrics.inc ri.ri_failbacks);
    t.logger.Logger.log
      (Event.Failback
         {
           at_us = at_int;
           rung = rung.Fallback.rg_name;
           from_rung;
           to_rung;
           migrated;
         });
    resil_span t ~name:"failback" ~at_us
      [
        ("from_rung", Jsonu.Int from_rung);
        ("to_rung", Jsonu.Int to_rung);
        ("migrated", Jsonu.Int migrated);
      ]
  end;
  log_migrations t ~at_int moved

(* React to a breaker transition: count it, log it, and move along the
   ladder — down a rung when the breaker opens, back to the primary
   when a probe closes it. *)
let resil_on_transition t m_factory r (tr : Health.transition) =
  let at_us = tr.Health.tr_at_us in
  let at_int = int_of_float at_us in
  (match r.r_obs with
  | None -> ()
  | Some ri -> Metrics.set ri.ri_ewma (Health.ewma r.r_health));
  match tr.Health.tr_to with
  | Health.Half_open ->
      resil_span t ~name:"breaker.half_open" ~at_us
        [ ("cooloff_us", Jsonu.Float (Health.cooloff_us r.r_health)) ]
  | Health.Open ->
      r.r_breaker_opens <- r.r_breaker_opens + 1;
      (match r.r_obs with None -> () | Some ri -> Metrics.inc ri.ri_opens);
      t.logger.Logger.log
        (Event.Breaker_opened
           {
             at_us = at_int;
             failures = Health.consecutive_failures r.r_health;
             drops = t.n_drops;
             spikes = t.n_spikes;
           });
      resil_span t ~name:"breaker.open" ~at_us
        [ ("failures", Jsonu.Int (Health.consecutive_failures r.r_health)) ];
      let bottom = Fallback.rung_count r.r_ladder - 1 in
      let next = min (r.r_rung + 1) bottom in
      if next <> r.r_rung then switch_rung t m_factory r ~to_rung:next ~at_us
  | Health.Closed ->
      r.r_breaker_closes <- r.r_breaker_closes + 1;
      (match r.r_obs with None -> () | Some ri -> Metrics.inc ri.ri_closes);
      t.logger.Logger.log
        (Event.Breaker_closed
           { at_us = at_int; probes = (Health.policy r.r_health).Health.hp_probe_successes });
      resil_span t ~name:"breaker.close" ~at_us [];
      if r.r_rung <> 0 then switch_rung t m_factory r ~to_rung:0 ~at_us

(* --- fleet: k-way pool execution ----------------------------------- *)

let fleet_shape f = (Fallback.pool_rung_at f.f_ladder f.f_rung).Fallback.pr_shape

(* Shard serving a classification: the dynamic table where it speaks,
   shard 0 for anything outside it (main, run-time classifications,
   instances stranded server-side by an unsafe migration). *)
let fleet_shard f c =
  let s =
    if c >= 0 && c < Array.length f.f_shard_of && f.f_shard_of.(c) >= 0 then f.f_shard_of.(c)
    else 0
  in
  if s < Array.length f.f_active then s else 0

let fleet_host f c = f.f_active.(fleet_shard f c)

(* The pool host link a remote call rides: the server-side endpoint's
   active host; for server-to-server traffic, the callee's. *)
let fleet_link f ~src ~dst ~caller_cls ~callee_cls =
  match (src, dst) with
  | Constraints.Client, Constraints.Client -> None
  | _, Constraints.Server ->
      let h = fleet_host f callee_cls in
      if src = Constraints.Server && fleet_host f caller_cls = h then None else Some h
  | Constraints.Server, Constraints.Client -> Some (fleet_host f caller_cls)

(* Re-home every shard for the current shape: its primary host, unless
   that breaker is open and a standing replica is healthy — then the
   first healthy replica in ring order. Deterministic: shards ascend,
   replica rings are fixed by the shape. *)
let fleet_reset_actives f ~now =
  let shape = fleet_shape f in
  let k = shape.Pool.sh_hosts in
  Array.iteri
    (fun s _ ->
      let primary = s mod k in
      let serving =
        if Health.allows f.f_health.(primary) ~now_us:now then primary
        else if not f.f_replicated.(s) then primary
        else
          let rec pick i =
            if i >= shape.Pool.sh_replicas then primary
            else
              let h = (primary + i) mod k in
              if Health.allows f.f_health.(h) ~now_us:now then h else pick (i + 1)
          in
          pick 1
      in
      f.f_active.(s) <- serving)
    f.f_active

(* Switch the pool along the ladder: install the rung's distribution,
   migrate the statically-safe instances, re-home every shard onto the
   new host count. Event order matches the two-host path — aggregate
   Failover/Failback first, then Pool_resized when the host count
   changed, then the per-instance migrations. *)
let fleet_switch_rung t m_factory f ~to_rung ~at_us =
  let from_rung = f.f_rung in
  let pr = Fallback.pool_rung_at f.f_ladder to_rung in
  let dist = pr.Fallback.pr_distribution in
  let from_hosts = (fleet_shape f).Pool.sh_hosts in
  let to_hosts = pr.Fallback.pr_shape.Pool.sh_hosts in
  let safe c = c >= 0 && c < Array.length f.f_safe && f.f_safe.(c) in
  let migrated, left, moved = migrate_instances t m_factory ~safe ~dist in
  f.f_rung <- to_rung;
  f.f_migrations <- f.f_migrations + migrated;
  let at_int = int_of_float at_us in
  if to_rung > from_rung then begin
    f.f_failovers <- f.f_failovers + 1;
    t.logger.Logger.log
      (Event.Failover
         {
           at_us = at_int;
           rung = pr.Fallback.pr_name;
           from_rung;
           to_rung;
           migrated;
           stranded = left;
         });
    resil_span t ~name:"failover" ~at_us
      [
        ("from_rung", Jsonu.Int from_rung);
        ("to_rung", Jsonu.Int to_rung);
        ("migrated", Jsonu.Int migrated);
        ("stranded", Jsonu.Int left);
      ]
  end
  else begin
    f.f_failbacks <- f.f_failbacks + 1;
    t.logger.Logger.log
      (Event.Failback
         { at_us = at_int; rung = pr.Fallback.pr_name; from_rung; to_rung; migrated });
    resil_span t ~name:"failback" ~at_us
      [
        ("from_rung", Jsonu.Int from_rung);
        ("to_rung", Jsonu.Int to_rung);
        ("migrated", Jsonu.Int migrated);
      ]
  end;
  if from_hosts <> to_hosts then begin
    f.f_resizes <- f.f_resizes + 1;
    (match f.f_obs with
    | None -> ()
    | Some fi ->
        Metrics.inc fi.fi_resizes;
        Metrics.set fi.fi_hosts (float_of_int to_hosts));
    t.logger.Logger.log
      (Event.Pool_resized
         {
           at_us = at_int;
           from_hosts;
           to_hosts;
           shards = Array.length f.f_active;
           migrated;
         });
    resil_span t ~name:"pool.resize" ~at_us
      [ ("from_hosts", Jsonu.Int from_hosts); ("to_hosts", Jsonu.Int to_hosts) ]
  end;
  fleet_reset_actives f ~now:at_us;
  log_migrations t ~at_int moved

(* React to a per-host breaker transition. An open promotes every shard
   the host was serving to a healthy replica; a shard with none (or one
   that may not replicate) forces the whole pool down a rung. A close
   climbs back to the top rung and re-homes the shards. *)
let fleet_on_transition t m_factory f ~host (tr : Health.transition) =
  let at_us = tr.Health.tr_at_us in
  let at_int = int_of_float at_us in
  match tr.Health.tr_to with
  | Health.Half_open ->
      resil_span t ~name:"breaker.half_open" ~at_us
        [
          ("host", Jsonu.Int host);
          ("cooloff_us", Jsonu.Float (Health.cooloff_us f.f_health.(host)));
        ]
  | Health.Open ->
      f.f_opens <- f.f_opens + 1;
      t.logger.Logger.log
        (Event.Breaker_opened
           {
             at_us = at_int;
             failures = Health.consecutive_failures f.f_health.(host);
             drops = t.n_drops;
             spikes = t.n_spikes;
           });
      resil_span t ~name:"breaker.open" ~at_us
        [
          ("host", Jsonu.Int host);
          ("failures", Jsonu.Int (Health.consecutive_failures f.f_health.(host)));
        ];
      let shape = fleet_shape f in
      let k = shape.Pool.sh_hosts in
      let stuck = ref false in
      if k > 1 then
        Array.iteri
          (fun s serving ->
            if serving = host then
              if not f.f_replicated.(s) then stuck := true
              else begin
                let primary = s mod k in
                let rec pick i =
                  if i >= shape.Pool.sh_replicas then None
                  else
                    let h = (primary + i) mod k in
                    if h <> host && Health.allows f.f_health.(h) ~now_us:at_us then Some h
                    else pick (i + 1)
                in
                match pick 0 with
                | Some h ->
                    f.f_active.(s) <- h;
                    f.f_promotions <- f.f_promotions + 1;
                    (match f.f_obs with
                    | None -> ()
                    | Some fi -> Metrics.inc fi.fi_promotions);
                    t.logger.Logger.log
                      (Event.Replica_promoted
                         { at_us = at_int; shard = s; from_host = host; to_host = h });
                    resil_span t ~name:"replica.promote" ~at_us
                      [
                        ("shard", Jsonu.Int s);
                        ("from_host", Jsonu.Int host);
                        ("to_host", Jsonu.Int h);
                      ]
                | None -> stuck := true
              end)
          f.f_active
      else stuck := true;
      if !stuck then begin
        let bottom = Fallback.pool_rung_count f.f_ladder - 1 in
        let next = min (f.f_rung + 1) bottom in
        if next <> f.f_rung then fleet_switch_rung t m_factory f ~to_rung:next ~at_us
      end
  | Health.Closed ->
      f.f_closes <- f.f_closes + 1;
      t.logger.Logger.log
        (Event.Breaker_closed
           {
             at_us = at_int;
             probes = (Health.policy f.f_health.(host)).Health.hp_probe_successes;
           });
      resil_span t ~name:"breaker.close" ~at_us [ ("host", Jsonu.Int host) ];
      if f.f_rung <> 0 then fleet_switch_rung t m_factory f ~to_rung:0 ~at_us
      else fleet_reset_actives f ~now:at_us

(* Deterministic hot-shard check: when one shard carries more than
   [fc_split_share] of the window's decayed remote-call mass and holds
   at least two components, carve off the upper half of its movable
   (migration-safe) components into a fresh shard on the least-loaded
   host. Pure arithmetic over the window snapshot — no randomness. *)
let fleet_maybe_split t f ~now =
  let shape = fleet_shape f in
  let k = shape.Pool.sh_hosts in
  if k > 1 then begin
    let shard_count = Array.length f.f_active in
    let counts = Window.counts_at f.f_window ~now_us:now in
    let extras = Window.extras_at f.f_window ~now_us:now in
    let load = Array.make shard_count 0. in
    Array.iteri (fun s c -> if s < shard_count then load.(s) <- c) counts;
    List.iter
      (fun ((a, b), c) -> if a = b && a >= 0 && a < shard_count then load.(a) <- load.(a) +. c)
      extras;
    let total = Array.fold_left ( +. ) 0. load in
    if total > 0. then begin
      let top = ref 0 in
      Array.iteri (fun s l -> if l > load.(!top) then top := s) load;
      if load.(!top) /. total > f.f_config.fc_split_share then begin
        let s_top = !top in
        (* Components currently in the hot shard, ascending representative. *)
        let reps = Hashtbl.create 8 in
        Array.iteri
          (fun c sh -> if sh = s_top then Hashtbl.replace reps f.f_component.(c) ())
          f.f_shard_of;
        let all = List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) reps []) in
        let movable = List.filter (fun r -> f.f_comp_safe.(r)) all in
        let half = List.length movable / 2 in
        let keep_at_least_one = List.length all - half >= 1 in
        if List.length all >= 2 && half >= 1 && keep_at_least_one then begin
          let moving =
            List.filteri (fun i _ -> i >= List.length movable - half) movable
          in
          let new_shard = shard_count in
          (* Least-loaded host by shard count, ties to the lowest id. *)
          let per_host = Array.make k 0 in
          Array.iter (fun h -> if h < k then per_host.(h) <- per_host.(h) + 1) f.f_active;
          let to_host = ref 0 in
          Array.iteri (fun h n -> if n < per_host.(!to_host) then to_host := h) per_host;
          let to_host = !to_host in
          let moved = ref 0 in
          Array.iteri
            (fun c sh ->
              if sh = s_top && List.mem f.f_component.(c) moving then begin
                f.f_shard_of.(c) <- new_shard;
                incr moved
              end)
            f.f_shard_of;
          f.f_active <- Array.append f.f_active [| to_host |];
          f.f_replicated <- Array.append f.f_replicated [| true |];
          f.f_active.(new_shard) <- to_host;
          f.f_splits <- f.f_splits + 1;
          (match f.f_obs with
          | None -> ()
          | Some fi ->
              Metrics.inc fi.fi_splits;
              Metrics.set fi.fi_shards (float_of_int (Array.length f.f_active)));
          t.logger.Logger.log
            (Event.Shard_split
               {
                 at_us = int_of_float now;
                 shard = s_top;
                 new_shard;
                 moved = !moved;
                 to_host;
               });
          resil_span t ~name:"shard.split" ~at_us:now
            [
              ("shard", Jsonu.Int s_top);
              ("new_shard", Jsonu.Int new_shard);
              ("moved", Jsonu.Int !moved);
              ("to_host", Jsonu.Int to_host);
            ]
        end
      end
    end
  end

(* Feed one served remote call into the per-shard load window; check
   for a hot shard every [fc_check_every] observations. Skipped
   entirely at pool size 1 — the identity gate's zero-cost half. *)
let fleet_observe t f ~callee_cls ~bytes =
  if (fleet_shape f).Pool.sh_hosts > 1 then begin
    let now = sim_now t in
    let s = fleet_shard f callee_cls in
    Window.observe f.f_window ~at_us:now ~caller:s ~callee:s ~bytes;
    f.f_since_check <- f.f_since_check + 1;
    if f.f_since_check >= f.f_config.fc_check_every then begin
      f.f_since_check <- 0;
      fleet_maybe_split t f ~now
    end
  end

(* The window said usage drifted: re-price the profiled graph with the
   window's per-pair volumes, validate the candidate cut, and — when it
   differs from the installed one — atomically switch the factory and
   migrate the statically-safe instances. Either way the window
   snapshot becomes the new comparison baseline, so similarity snaps
   back to 1 and the loop cannot flap on the same shift. *)
let watch_repartition t m_factory w ~now ~similarity =
  let cfg = w.w_config in
  let adopt_baseline () =
    w.w_baseline <- Window.signature_at w.w_window ~now_us:now;
    w.w_baseline_bytes <- Window.byte_signature_at w.w_window ~now_us:now;
    w.w_last_switch_us <- now
  in
  let counts = Window.counts_at w.w_window ~now_us:now in
  let win_total = Window.total_at w.w_window ~now_us:now in
  let bytes = Window.bytes_at w.w_window ~now_us:now in
  let byte_total = Window.byte_total_at w.w_window ~now_us:now in
  for p = 0 to Array.length w.w_scale.Icc_graph.sc_messages - 1 do
    let ms = counts.(p) /. win_total /. w.w_prof_share.(p) in
    w.w_scale.Icc_graph.sc_messages.(p) <- ms;
    (* Pairs the profile priced by count alone (no measured bytes), or
       a window that has not yet seen a remote payload, fall back to
       the message multiplier: the byte dimension carries no signal. *)
    w.w_scale.Icc_graph.sc_bytes.(p) <-
      (if byte_total = 0. || w.w_prof_byte_share.(p) = 0. then ms
       else bytes.(p) /. byte_total /. w.w_prof_byte_share.(p))
  done;
  let candidate = Analysis.Session.solve cfg.wc_session ~scale:w.w_scale ~net:cfg.wc_net in
  let violations =
    Analysis.validate
      ~classifier:(Analysis.Session.classifier cfg.wc_session)
      ~constraints:(Analysis.Session.constraints cfg.wc_session)
      candidate
  in
  if violations <> [] then begin
    (* Cannot happen for a cut the session itself computed (the
       constraint edges are infinite), but the lint gate is cheap and
       keeps a bad candidate from ever reaching the factory. *)
    w.w_rejected <- w.w_rejected + 1;
    (match w.w_obs with None -> () | Some wi -> Metrics.inc wi.wi_rejected);
    w.w_last_switch_us <- now;
    W_rejected (List.length violations)
  end
  else if candidate.Analysis.placement = w.w_current.Analysis.placement then begin
    w.w_unchanged <- w.w_unchanged + 1;
    (match w.w_obs with None -> () | Some wi -> Metrics.inc wi.wi_unchanged);
    adopt_baseline ();
    W_unchanged
  end
  else begin
    let from_servers = w.w_current.Analysis.server_count in
    let migrated, left, moved =
      migrate_instances t m_factory
        ~safe:(fun c -> c >= 0 && c < Array.length w.w_safe && w.w_safe.(c))
        ~dist:candidate
    in
    w.w_repartitions <- w.w_repartitions + 1;
    w.w_migrations <- w.w_migrations + migrated;
    (match w.w_obs with
    | None -> ()
    | Some wi ->
        Metrics.inc wi.wi_repartitions;
        Metrics.inc_int wi.wi_migrations migrated);
    let at_int = int_of_float now in
    t.logger.Logger.log
      (Event.Repartitioned
         {
           at_us = at_int;
           similarity;
           from_servers;
           to_servers = candidate.Analysis.server_count;
           migrated;
           left;
         });
    watch_span t ~name:"repartition" ~at_us:now
      [
        ("similarity", Jsonu.Float similarity);
        ("migrated", Jsonu.Int migrated);
        ("left", Jsonu.Int left);
        ("servers", Jsonu.Int candidate.Analysis.server_count);
      ];
    log_migrations t ~at_int moved;
    w.w_current <- candidate;
    adopt_baseline ();
    W_repartitioned
      { wa_migrated = migrated; wa_left = left; wa_servers = candidate.Analysis.server_count }
  end

(* One drift check on the virtual clock: compare the decayed window
   signature against the adopted baseline; below the threshold — with
   enough evidence in the window and outside the dwell period — re-cut. *)
let watch_check t m_factory w ~now =
  let cfg = w.w_config in
  w.w_checks <- w.w_checks + 1;
  let signature = Window.signature_at w.w_window ~now_us:now in
  (* Drift in either dimension is drift: a usage shift that keeps the
     call mix but fattens payloads only moves the byte signature. The
     byte dimension is built from the tap's subsample, so it only
     speaks once enough sampled sizes back it. *)
  let count_sim = Drift.similarity w.w_baseline signature in
  let similarity =
    if float_of_int (Window.byte_observed w.w_window) < cfg.wc_min_window then count_sim
    else
      Float.min count_sim
        (Drift.similarity w.w_baseline_bytes
           (Window.byte_signature_at w.w_window ~now_us:now))
  in
  let window_pairs = Drift.pair_count signature in
  let mass = Window.total_at w.w_window ~now_us:now in
  w.w_last_similarity <- similarity;
  (match w.w_obs with
  | None -> ()
  | Some wi ->
      Metrics.inc wi.wi_checks;
      Metrics.set wi.wi_similarity similarity;
      Metrics.set wi.wi_window_pairs (float_of_int window_pairs);
      Metrics.set wi.wi_window_mass mass);
  let drifted =
    similarity < cfg.wc_threshold
    && mass >= cfg.wc_min_window
    && now -. w.w_last_switch_us >= cfg.wc_min_dwell_us
  in
  let action =
    if not drifted then W_steady
    else begin
      w.w_detections <- w.w_detections + 1;
      (match w.w_obs with None -> () | Some wi -> Metrics.inc wi.wi_detections);
      t.logger.Logger.log
        (Event.Drift_detected
           { at_us = int_of_float now; similarity; threshold = cfg.wc_threshold; window_pairs });
      watch_span t ~name:"drift" ~at_us:now
        [
          ("similarity", Jsonu.Float similarity);
          ("threshold", Jsonu.Float cfg.wc_threshold);
          ("window_pairs", Jsonu.Int window_pairs);
        ];
      watch_repartition t m_factory w ~now ~similarity
    end
  in
  w.w_timeline <-
    { wk_at_us = now; wk_similarity = similarity; wk_window_pairs = window_pairs;
      wk_action = action }
    :: w.w_timeline

(* Feed one observation into the window (and the tap's sink, when one
   is attached), and run a drift check every [wc_check_every]
   observations. Counts are exact — every observation lands in the
   window — but message sizes are walked only for the tap's seeded
   1-in-k subsample ([measure] runs solely for selected observations),
   local and remote calls alike, so the window's per-pair byte shares
   estimate the full traffic without per-call measurement cost.
   Called before the observed call is routed, so a re-cut applies to
   the very call that triggered it — the staleness bound. *)
let watch_observe t m_factory w ~kind ~caller_cls ~callee_cls ~measure =
  let now = sim_now t in
  let bytes =
    if Tap.accept w.w_tap then begin
      let b = measure () in
      Tap.emit w.w_tap
        {
          Tap.ob_at_us = now;
          ob_kind = kind;
          ob_caller = caller_cls;
          ob_callee = callee_cls;
          ob_bytes = b;
        };
      b
    end
    else 0
  in
  Window.observe w.w_window ~at_us:now ~caller:caller_cls ~callee:callee_cls ~bytes;
  w.w_since_check <- w.w_since_check + 1;
  if w.w_since_check >= w.w_config.wc_check_every then begin
    w.w_since_check <- 0;
    watch_check t m_factory w ~now
  end

(* Mint (or reuse) the Coign-instrumented wrapper for a raw handle. *)
let rec wrap t raw_h =
  if Runtime.handle_is_wrapper t.ctx raw_h then raw_h
  else
    match Hashtbl.find_opt t.raw_to_wrap raw_h with
    | Some w -> w
    | None ->
        let itype = Runtime.handle_itype t.ctx raw_h in
        let owner = Runtime.handle_owner t.ctx raw_h in
        let w =
          Runtime.alloc_foreign_handle t.ctx ~owner ~itype ~wrapper:true
            (fun _ctx ~meth args -> intercept t raw_h ~meth args)
        in
        Hashtbl.add t.raw_to_wrap raw_h w;
        Hashtbl.add t.wrap_to_raw w raw_h;
        t.logger.Logger.log
          (Event.Interface_instantiated { owner; iface = Itype.name itype; handle = w });
        w

and intercept t raw_h ~meth args =
  match t.obs_tracer with
  | None -> intercept_run t raw_h ~meth args
  | Some tr ->
      let itype = Runtime.handle_itype t.ctx raw_h in
      let callee = Runtime.handle_owner t.ctx raw_h in
      let caller =
        match Shadow_stack.top t.stack with
        | Some f -> f.Frame.f_inst
        | None -> Runtime.main_instance
      in
      let msig = Itype.method_sig itype meth in
      let id =
        Trace.open_span tr
          ~name:(Itype.name itype ^ "." ^ msig.Idl_type.mname)
          ~cat:"call" ~at_us:(sim_now t)
      in
      let span_args = [ ("caller", Jsonu.Int caller); ("callee", Jsonu.Int callee) ] in
      (match intercept_run t raw_h ~meth args with
      | result ->
          Trace.close_span tr ~args:span_args id ~at_us:(sim_now t);
          result
      | exception e ->
          Trace.close_span tr
            ~args:(span_args @ [ ("error", Jsonu.Str (Printexc.to_string e)) ])
            id ~at_us:(sim_now t);
          raise e)

and intercept_run t raw_h ~meth args =
  let itype = Runtime.handle_itype t.ctx raw_h in
  let callee = Runtime.handle_owner t.ctx raw_h in
  let caller =
    match Shadow_stack.top t.stack with
    | Some f -> f.Frame.f_inst
    | None -> Runtime.main_instance
  in
  let callee_classification = classification_of t callee in
  let msig = Itype.method_sig itype meth in
  Shadow_stack.push t.stack
    (Frame.make ~inst:callee
       ~cls:(Runtime.instance_class_name t.ctx callee)
       ~classification:callee_classification ~iface:(Itype.name itype)
       ~meth:msig.Idl_type.mname);
  let finally () = Shadow_stack.pop t.stack in
  let outs, ret =
    match Runtime.call t.ctx raw_h ~meth args with
    | result ->
        finally ();
        result
    | exception e ->
        finally ();
        raise e
  in
  t.n_intercepted <- t.n_intercepted + 1;
  (match t.obs with None -> () | Some i -> Metrics.inc i.i_intercepted);
  (let key = (classification_of t caller, callee_classification) in
   match Hashtbl.find_opt t.pair_counts key with
   | Some r -> incr r
   | None -> Hashtbl.add t.pair_counts key (ref 1));
  (match t.mode with
  | M_profiling ->
      let sizes = Informer.measure_call itype ~meth ~ins:args ~outs ~ret in
      (match t.obs with
      | None -> ()
      | Some i ->
          Metrics.observe i.i_request_bytes sizes.Informer.request_bytes;
          Metrics.observe i.i_reply_bytes sizes.Informer.reply_bytes);
      t.logger.Logger.log
        (Event.Interface_call
           {
             caller;
             caller_classification = classification_of t caller;
             callee;
             callee_classification;
             iface = Itype.name itype;
             meth = msig.Idl_type.mname;
             remotable = sizes.Informer.remotable;
             request_bytes = sizes.Informer.request_bytes;
             reply_bytes = sizes.Informer.reply_bytes;
           })
  | M_distributed
      {
        m_factory;
        m_network;
        m_jitter;
        m_rng;
        m_faults;
        m_retry;
        m_retry_rng;
        m_resil;
        m_watch;
        m_fleet;
      } ->
      (match m_watch with
      | None -> ()
      | Some w ->
          watch_observe t m_factory w ~kind:Tap.Call
            ~caller_cls:(classification_of t caller) ~callee_cls:callee_classification
            ~measure:(fun () ->
              let sizes = Informer.measure_call itype ~meth ~ins:args ~outs ~ret in
              sizes.Informer.request_bytes + sizes.Informer.reply_bytes));
      let src = Factory.machine_of m_factory caller in
      let dst = Factory.machine_of m_factory callee in
      let caller_classification = classification_of t caller in
      (* A call crosses the wire when the endpoints live on different
         machines — or, under a pool, on different pool hosts. With no
         fleet (or a pool of one) the condition is exactly [src <> dst],
         so the pre-fleet paths run the same instructions they always
         did. *)
      let crosses =
        match m_fleet with
        | None -> src <> dst
        | Some f ->
            fleet_link f ~src ~dst ~caller_cls:caller_classification
              ~callee_cls:callee_classification
            <> None
      in
      if crosses then begin
        let sizes = Informer.measure_call itype ~meth ~ins:args ~outs ~ret in
        if not sizes.Informer.remotable then
          Hresult.fail
            (Hresult.E_cannot_marshal
               (Printf.sprintf "cross-machine call on non-remotable %s.%s"
                  (Itype.name itype) msig.Idl_type.mname));
        let jittered base =
          if m_jitter = 0. then base
          else Float.max 0. (Prng.gaussian m_rng ~mu:base ~sigma:(m_jitter *. base))
        in
        (* One simulated round trip with its full fault accounting —
           identical whether or not a resilience policy is watching the
           outcome, so fault-free runs are bit-identical either way.
           Virtual send time: communication so far plus the compute the
           application has charged — the clock fault windows are
           expressed against. [model] defaults to the global link fault
           model; the fleet passes each call's pool-host model. *)
        let simulate ?(model = m_faults) () =
          let oc =
            Fault.call ?model ~retry:m_retry ~rng:m_retry_rng
              ~now_us:(t.comm +. Runtime.compute_us t.ctx)
              ~request_bytes:sizes.Informer.request_bytes
              ~reply_bytes:sizes.Informer.reply_bytes
              ~request_us:(fun () ->
                jittered (Network.message_us m_network ~bytes:sizes.Informer.request_bytes))
              ~reply_us:(fun () ->
                jittered (Network.message_us m_network ~bytes:sizes.Informer.reply_bytes))
              ()
          in
          t.comm <- t.comm +. oc.Fault.oc_time_us;
          t.n_retries <- t.n_retries + oc.Fault.oc_retries;
          t.n_drops <- t.n_drops + oc.Fault.oc_drops;
          t.n_spikes <- t.n_spikes + oc.Fault.oc_spikes;
          t.fault_us <- t.fault_us +. oc.Fault.oc_fault_us;
          (match t.obs with
          | None -> ()
          | Some i ->
              Metrics.inc ~by:oc.Fault.oc_time_us i.i_comm_us;
              Metrics.inc_int i.i_retries oc.Fault.oc_retries;
              Metrics.inc_int i.i_drops oc.Fault.oc_drops;
              Metrics.inc_int i.i_spikes oc.Fault.oc_spikes;
              Metrics.inc ~by:oc.Fault.oc_fault_us i.i_fault_us;
              Metrics.observe i.i_request_bytes sizes.Informer.request_bytes;
              Metrics.observe i.i_reply_bytes sizes.Informer.reply_bytes);
          if oc.Fault.oc_retries > 0 && oc.Fault.oc_ok then
            t.logger.Logger.log
              (Event.Call_retried
                 {
                   iface = Itype.name itype;
                   meth = msig.Idl_type.mname;
                   retries = oc.Fault.oc_retries;
                 });
          oc
        in
        let fail_unreachable dst =
          t.n_unreachable <- t.n_unreachable + 1;
          (match t.obs with None -> () | Some i -> Metrics.inc i.i_unreachable);
          Hresult.fail
            (Hresult.E_unreachable
               (Printf.sprintf "%s.%s: no reply from %s after %d attempts"
                  (Itype.name itype) msig.Idl_type.mname
                  (Constraints.location_name dst)
                  (max 1 m_retry.Fault.rp_max_attempts)))
        in
        let count_remote () =
          t.n_remote_calls <- t.n_remote_calls + 1;
          t.n_remote_bytes <-
            t.n_remote_bytes + sizes.Informer.request_bytes + sizes.Informer.reply_bytes;
          match t.obs with
          | None -> ()
          | Some i ->
              Metrics.inc i.i_remote_calls;
              Metrics.inc_int i.i_remote_bytes
                (sizes.Informer.request_bytes + sizes.Informer.reply_bytes)
        in
        match (m_resil, m_fleet) with
        | None, None ->
            let oc = simulate () in
            if not oc.Fault.oc_ok then fail_unreachable dst;
            count_remote ()
        | None, Some f ->
            (* Route the call over the callee's pool-host link, with
               that host's breaker and fault model. The loop mirrors
               the two-host resilience path call for call: a breaker
               transition may promote replicas or move the whole pool
               along the ladder, after which the link is re-read — the
               call may then complete locally, on a promoted replica,
               or on the shrunken pool. *)
            let rounds = ref 0 in
            let stranded_counted = ref false in
            let rec go () =
              let src = Factory.machine_of m_factory caller in
              let dst = Factory.machine_of m_factory callee in
              match
                fleet_link f ~src ~dst ~caller_cls:caller_classification
                  ~callee_cls:callee_classification
              with
              | None -> if !rounds > 0 then f.f_rescued <- f.f_rescued + 1
              | Some h ->
                  let hb = f.f_health.(h) in
                  let now = sim_now t in
                  (match Health.observe hb ~now_us:now with
                  | Some tr -> fleet_on_transition t m_factory f ~host:h tr
                  | None -> ());
                  if not (Health.allows hb ~now_us:now) then begin
                    if not !stranded_counted then begin
                      stranded_counted := true;
                      f.f_stranded <- f.f_stranded + 1
                    end;
                    let wait = Health.cooloff_expires_at hb -. now in
                    t.comm <- t.comm +. wait;
                    t.fault_us <- t.fault_us +. wait;
                    (match t.obs with
                    | None -> ()
                    | Some i ->
                        Metrics.inc ~by:wait i.i_comm_us;
                        Metrics.inc ~by:wait i.i_fault_us);
                    go ()
                  end
                  else if !rounds >= f.f_config.fc_max_probe_rounds then fail_unreachable dst
                  else begin
                    let oc = simulate ~model:f.f_faults.(h) () in
                    let now' = sim_now t in
                    if oc.Fault.oc_ok then begin
                      (match Health.record_success hb ~now_us:now' with
                      | Some tr -> fleet_on_transition t m_factory f ~host:h tr
                      | None -> ());
                      count_remote ();
                      if src = Constraints.Server && dst = Constraints.Server then begin
                        f.f_inter_host <- f.f_inter_host + 1;
                        match f.f_obs with
                        | None -> ()
                        | Some fi -> Metrics.inc fi.fi_inter_host
                      end;
                      if dst = Constraints.Server then
                        fleet_observe t f ~callee_cls:callee_classification
                          ~bytes:(sizes.Informer.request_bytes + sizes.Informer.reply_bytes)
                    end
                    else begin
                      incr rounds;
                      (match Health.record_failure hb ~now_us:now' with
                      | Some tr -> fleet_on_transition t m_factory f ~host:h tr
                      | None -> ());
                      go ()
                    end
                  end
            in
            go ()
        | Some r, _ ->
            (* Route the call through the breaker. Failures feed the
               health tracker; when it opens, the transition handler
               fails over to the next rung, after which the endpoints
               may share a machine — the call then completes locally
               (the underlying [Runtime.call] already ran; the fault
               model only decides whether the communication made it).
               Open-breaker calls are stranded: they wait out the
               cooloff and become the half-open probe. *)
            let rounds = ref 0 in
            let stranded_counted = ref false in
            let rec go () =
              let src = Factory.machine_of m_factory caller in
              let dst = Factory.machine_of m_factory callee in
              if src = dst then begin
                if !rounds > 0 then begin
                  r.r_rescued <- r.r_rescued + 1;
                  match r.r_obs with None -> () | Some ri -> Metrics.inc ri.ri_rescued
                end
              end
              else begin
                let now = sim_now t in
                (match Health.observe r.r_health ~now_us:now with
                | Some tr -> resil_on_transition t m_factory r tr
                | None -> ());
                if not (Health.allows r.r_health ~now_us:now) then begin
                  if not !stranded_counted then begin
                    stranded_counted := true;
                    r.r_stranded <- r.r_stranded + 1;
                    match r.r_obs with None -> () | Some ri -> Metrics.inc ri.ri_stranded
                  end;
                  let wait = Health.cooloff_expires_at r.r_health -. now in
                  t.comm <- t.comm +. wait;
                  t.fault_us <- t.fault_us +. wait;
                  (match t.obs with
                  | None -> ()
                  | Some i ->
                      Metrics.inc ~by:wait i.i_comm_us;
                      Metrics.inc ~by:wait i.i_fault_us);
                  (match r.r_obs with
                  | None -> ()
                  | Some ri -> Metrics.inc ~by:wait ri.ri_wait_us);
                  go ()
                end
                else if !rounds >= r.r_max_probe_rounds then fail_unreachable dst
                else begin
                  let oc = simulate () in
                  let now' = sim_now t in
                  if oc.Fault.oc_ok then begin
                    (match Health.record_success r.r_health ~now_us:now' with
                    | Some tr -> resil_on_transition t m_factory r tr
                    | None -> ());
                    (match r.r_obs with
                    | None -> ()
                    | Some ri -> Metrics.set ri.ri_ewma (Health.ewma r.r_health));
                    count_remote ()
                  end
                  else begin
                    incr rounds;
                    (match Health.record_failure r.r_health ~now_us:now' with
                    | Some tr -> resil_on_transition t m_factory r tr
                    | None -> ());
                    (match r.r_obs with
                    | None -> ()
                    | Some ri -> Metrics.set ri.ri_ewma (Health.ewma r.r_health));
                    go ()
                  end
                end
              end
            in
            go ()
      end);
  (* Keep every escaping interface pointer wrapped — but only walk the
     reply when the method can actually output interface pointers (the
     distribution informer's "examine parameters only enough to
     identify interface pointers"; most methods skip the walk
     entirely). *)
  let procs = Itype.procs itype meth in
  let may_output_ifaces =
    (not (Midl.iface_walk_trivial procs.Midl.ret_iface_proc))
    || List.exists2
         (fun (dir, _) iproc ->
           match dir with
           | Idl_type.In -> false
           | Idl_type.Out | Idl_type.In_out -> not (Midl.iface_walk_trivial iproc))
         procs.Midl.request_procs procs.Midl.iface_procs
  in
  if may_output_ifaces then begin
    let rewrap v = Value.map_iface_handles (fun h -> wrap t h) v in
    (List.map rewrap outs, rewrap ret)
  end
  else (outs, ret)

let rec on_create t (req : Runtime.create_request) =
  match t.obs_tracer with
  | None -> on_create_run t req
  | Some tr ->
      let cname = req.Runtime.req_class.Runtime.cname in
      let id = Trace.open_span tr ~name:cname ~cat:"create" ~at_us:(sim_now t) in
      (match on_create_run t req with
      | h ->
          let inst = Runtime.handle_owner t.ctx h in
          Trace.close_span tr
            ~args:
              [
                ("inst", Jsonu.Int inst);
                ("classification", Jsonu.Int (classification_of t inst));
              ]
            id ~at_us:(sim_now t);
          h
      | exception e ->
          Trace.close_span tr
            ~args:[ ("error", Jsonu.Str (Printexc.to_string e)) ]
            id ~at_us:(sim_now t);
          raise e)

and on_create_run t (req : Runtime.create_request) =
  let stack = Shadow_stack.walk t.stack in
  let cname = req.Runtime.req_class.Runtime.cname in
  let classification = Classifier.classify t.rte_classifier ~cname ~stack in
  let creator =
    match Shadow_stack.top t.stack with
    | Some f -> f.Frame.f_inst
    | None -> Runtime.main_instance
  in
  (match t.mode with
  | M_profiling -> ()
  | M_distributed
      {
        m_factory;
        m_network;
        m_jitter;
        m_rng;
        m_faults;
        m_retry;
        m_retry_rng;
        m_resil;
        m_watch;
        m_fleet;
      } ->
      (match m_watch with
      | None -> ()
      | Some w ->
          (* An instantiation request costs a fixed-size round trip
             (see [forwarded] below) whether or not it crosses
             machines; that pair of messages is its measured size. *)
          watch_observe t m_factory w ~kind:Tap.Create
            ~caller_cls:(classification_of t creator) ~callee_cls:classification
            ~measure:(fun () ->
              (2 * Marshal_size.scalar_overhead) + (2 * 16) + Marshal_size.objref_size));
      let creator_machine = Factory.machine_of m_factory creator in
      let machine = Factory.decide m_factory ~classification ~cname ~creator_machine in
      let machine =
        if machine = creator_machine then machine
        else begin
          (* Forwarding an instantiation request to the peer factory
             costs one round trip: the request plus the marshaled object
             reference coming back. *)
          let jittered base =
            if m_jitter = 0. then base
            else Float.max 0. (Prng.gaussian m_rng ~mu:base ~sigma:(m_jitter *. base))
          in
          let request = Marshal_size.scalar_overhead + (2 * 16) in
          let reply = Marshal_size.scalar_overhead + Marshal_size.objref_size in
          let simulate ?(model = m_faults) () =
            let oc =
              Fault.call ?model ~retry:m_retry ~rng:m_retry_rng
                ~now_us:(t.comm +. Runtime.compute_us t.ctx)
                ~request_bytes:request ~reply_bytes:reply
                ~request_us:(fun () -> jittered (Network.message_us m_network ~bytes:request))
                ~reply_us:(fun () -> jittered (Network.message_us m_network ~bytes:reply))
                ()
            in
            t.comm <- t.comm +. oc.Fault.oc_time_us;
            t.n_retries <- t.n_retries + oc.Fault.oc_retries;
            t.n_drops <- t.n_drops + oc.Fault.oc_drops;
            t.n_spikes <- t.n_spikes + oc.Fault.oc_spikes;
            t.fault_us <- t.fault_us +. oc.Fault.oc_fault_us;
            (match t.obs with
            | None -> ()
            | Some i ->
                Metrics.inc ~by:oc.Fault.oc_time_us i.i_comm_us;
                Metrics.inc_int i.i_retries oc.Fault.oc_retries;
                Metrics.inc_int i.i_drops oc.Fault.oc_drops;
                Metrics.inc_int i.i_spikes oc.Fault.oc_spikes;
                Metrics.inc ~by:oc.Fault.oc_fault_us i.i_fault_us);
            if oc.Fault.oc_retries > 0 && oc.Fault.oc_ok then
              t.logger.Logger.log
                (Event.Call_retried
                   { iface = "ICoCreateInstance"; meth = "create"; retries = oc.Fault.oc_retries });
            oc
          in
          let forwarded () =
            t.n_remote_calls <- t.n_remote_calls + 1;
            t.n_remote_bytes <- t.n_remote_bytes + request + reply;
            (match t.obs with
            | None -> ()
            | Some i ->
                Metrics.inc i.i_remote_calls;
                Metrics.inc_int i.i_remote_bytes (request + reply));
            machine
          in
          (* Graceful degradation: the peer factory never answered (or
             the breaker is open), so place the instance with its
             creator — the factory's co-location default — instead of
             failing the instantiation. *)
          let degraded creator_machine =
            t.n_fallbacks <- t.n_fallbacks + 1;
            (match t.obs with None -> () | Some i -> Metrics.inc i.i_fallbacks);
            t.logger.Logger.log (Event.Instantiation_degraded { cname; classification });
            creator_machine
          in
          match (m_resil, m_fleet) with
          | None, None ->
              if (simulate ()).Fault.oc_ok then forwarded () else degraded creator_machine
          | None, Some f ->
              (* Forward over the pool-host link the new instance's
                 shard lives on (the creator's host when the request
                 travels pool-to-client). *)
              let h =
                if machine = Constraints.Server then fleet_host f classification
                else fleet_host f (classification_of t creator)
              in
              let hb = f.f_health.(h) in
              let now = sim_now t in
              (match Health.observe hb ~now_us:now with
              | Some tr -> fleet_on_transition t m_factory f ~host:h tr
              | None -> ());
              if not (Health.allows hb ~now_us:now) then
                degraded (Factory.machine_of m_factory creator)
              else begin
                let oc = simulate ~model:f.f_faults.(h) () in
                let now' = sim_now t in
                let transition =
                  if oc.Fault.oc_ok then Health.record_success hb ~now_us:now'
                  else Health.record_failure hb ~now_us:now'
                in
                (match transition with
                | Some tr -> fleet_on_transition t m_factory f ~host:h tr
                | None -> ());
                if oc.Fault.oc_ok then forwarded ()
                else degraded (Factory.machine_of m_factory creator)
              end
          | Some r, _ ->
              let now = sim_now t in
              (match Health.observe r.r_health ~now_us:now with
              | Some tr -> resil_on_transition t m_factory r tr
              | None -> ());
              if not (Health.allows r.r_health ~now_us:now) then
                (* Open breaker: fail fast to the creator, spending no
                   communication on a link known to be down. *)
                degraded (Factory.machine_of m_factory creator)
              else begin
                let oc = simulate () in
                let now' = sim_now t in
                let transition =
                  if oc.Fault.oc_ok then Health.record_success r.r_health ~now_us:now'
                  else Health.record_failure r.r_health ~now_us:now'
                in
                (match transition with
                | Some tr -> resil_on_transition t m_factory r tr
                | None -> ());
                (match r.r_obs with
                | None -> ()
                | Some ri -> Metrics.set ri.ri_ewma (Health.ewma r.r_health));
                if oc.Fault.oc_ok then forwarded ()
                else
                  (* A failure may have tripped the breaker and failed
                     over; re-read the creator's machine so the instance
                     lands where its creator now lives. *)
                  degraded (Factory.machine_of m_factory creator)
              end
        end
      in
      (* Record the machine under the instance id we are about to
         allocate; ids are dense so the next instance gets the current
         count. *)
      Factory.record_instance m_factory ~inst:(Runtime.instance_count t.ctx) machine);
  let raw = Runtime.raw_create_instance t.ctx req.Runtime.req_clsid ~iid:req.Runtime.req_iid in
  let inst = Runtime.handle_owner t.ctx raw in
  Hashtbl.replace t.inst_classification inst classification;
  t.created <- inst :: t.created;
  (match t.obs with None -> () | Some i -> Metrics.inc i.i_instantiations);
  t.logger.Logger.log
    (Event.Component_instantiated { inst; cname; classification; creator });
  (* The instantiation request itself is communication: if creator and
     instance end up on different machines, the factory pays a round
     trip. Record it so the analysis engine prices relocated
     instantiations (and Table 5's model covers them). *)
  (match t.mode with
  | M_profiling ->
      t.logger.Logger.log
        (Event.Interface_call
           {
             caller = creator;
             caller_classification = classification_of t creator;
             callee = inst;
             callee_classification = classification;
             iface = "ICoCreateInstance";
             meth = "create";
             remotable = true;
             request_bytes = Marshal_size.scalar_overhead + (2 * 16);
             reply_bytes = Marshal_size.scalar_overhead + Marshal_size.objref_size;
           })
  | M_distributed _ -> ());
  wrap t raw

let on_query t h ~iid =
  let raw = Option.value ~default:h (Hashtbl.find_opt t.wrap_to_raw h) in
  wrap t (Runtime.raw_query_interface t.ctx raw ~iid)

let on_destroy t inst = t.logger.Logger.log (Event.Component_destroyed { inst })

let install ?(loggers = []) ?tracer ?metrics ~classifier ~mode ctx =
  let rte_icc = Icc.create () in
  let rte_inst_comm = Inst_comm.create () in
  let base_loggers =
    match mode with
    | M_profiling -> Logger.profiling ~icc:rte_icc ~inst_comm:rte_inst_comm :: loggers
    | M_distributed _ -> if loggers = [] then [ Logger.null ] else loggers
  in
  let t =
    {
      ctx;
      rte_classifier = classifier;
      stack = Shadow_stack.create ();
      logger = Logger.tee base_loggers;
      rte_icc;
      rte_inst_comm;
      inst_classification = Hashtbl.create 256;
      raw_to_wrap = Hashtbl.create 256;
      wrap_to_raw = Hashtbl.create 256;
      mode;
      created = [];
      comm = 0.;
      n_remote_calls = 0;
      n_remote_bytes = 0;
      n_intercepted = 0;
      n_retries = 0;
      n_drops = 0;
      n_spikes = 0;
      n_fallbacks = 0;
      n_unreachable = 0;
      fault_us = 0.;
      pair_counts = Hashtbl.create 256;
      obs_tracer = tracer;
      obs = Option.map make_instruments metrics;
    }
  in
  Runtime.set_create_hook ctx (Some (on_create t));
  Runtime.set_query_hook ctx (Some (on_query t));
  Runtime.set_destroy_hook ctx (Some (on_destroy t));
  t

let install_profiling ?loggers ?tracer ?metrics ~classifier ctx =
  install ?loggers ?tracer ?metrics ~classifier ~mode:M_profiling ctx

let install_distributed ?loggers ?tracer ?metrics ~classifier ~config ctx =
  (match (config.dc_watch, config.dc_resilience) with
  | Some _, Some _ ->
      (* Both layers drive the factory policy; arbitrating between a
         failover rung and a freshly-cut placement is out of scope. *)
      invalid_arg "Rte.install_distributed: dc_watch and dc_resilience cannot be combined"
  | _ -> ());
  (match (config.dc_fleet, config.dc_resilience, config.dc_watch) with
  | Some _, Some _, _ ->
      invalid_arg "Rte.install_distributed: dc_fleet and dc_resilience cannot be combined"
  | Some _, _, Some _ ->
      invalid_arg "Rte.install_distributed: dc_fleet and dc_watch cannot be combined"
  | _ -> ());
  (* Identity gate: a pool of one with no per-host fault overlays IS
     the two-host resilience path — install that path, so the fleet
     layer is not merely equivalent but literally absent: zero cost,
     bit-identical output by construction. *)
  let config =
    match config.dc_fleet with
    | Some fc
      when (Fallback.pool_rung_at fc.fc_ladder 0).Fallback.pr_shape.Pool.sh_hosts = 1
           && fc.fc_host_faults = [] ->
        {
          config with
          dc_fleet = None;
          dc_resilience =
            Some
              {
                rc_ladder = Fallback.pool_base fc.fc_ladder;
                rc_health = fc.fc_health;
                rc_max_probe_rounds = fc.fc_max_probe_rounds;
              };
        }
    | _ -> config
  in
  (* The main program lives on the client. *)
  let factory = Factory.create ?metrics config.dc_factory_policy in
  Factory.record_instance factory ~inst:Runtime.main_instance Constraints.Client;
  let watch_state =
    Option.map
      (fun wc ->
        let dist =
          match config.dc_factory_policy with
          | Factory.By_classification d -> d
          | _ ->
              invalid_arg
                "Rte.install_distributed: dc_watch requires a By_classification policy"
        in
        let graph = Analysis.Session.graph wc.wc_session in
        let main = Icc_graph.main_node graph in
        let cls v = if v = main then -1 else v in
        (* Graph pairs in pair-id order, mapped from node space to
           unordered classification space — the window's slot layout,
           so a window snapshot is directly a scale vector. *)
        let pairs =
          Array.init (Icc_graph.pair_count graph) (fun p ->
              let a, b = Icc_graph.pair graph p in
              let ca = cls a and cb = cls b in
              (min ca cb, max ca cb))
        in
        let msgs = Icc_graph.pair_messages graph in
        let total = Array.fold_left ( +. ) 0. msgs in
        let pbytes = Icc_graph.pair_bytes graph in
        let byte_total = Array.fold_left ( +. ) 0. pbytes in
        {
          w_config = wc;
          w_window = Window.create ~half_life_us:wc.wc_half_life_us ~pairs;
          w_tap =
            Tap.create ~sample_every:wc.wc_sample_every ~seed:(watch_seed config.dc_seed)
              (Option.value ~default:Tap.null_sink wc.wc_tap);
          w_obs = Option.map make_watch_instruments metrics;
          w_safe = Analysis.Session.migration_safety wc.wc_session;
          w_prof_share = Array.map (fun m -> m /. total) msgs;
          w_prof_byte_share =
            (if byte_total = 0. then Array.map (fun _ -> 0.) pbytes
             else Array.map (fun b -> b /. byte_total) pbytes);
          w_scale =
            {
              Icc_graph.sc_messages = Array.make (Icc_graph.pair_count graph) 1.;
              sc_bytes = Array.make (Icc_graph.pair_count graph) 1.;
            };
          w_baseline =
            Drift.of_weights
              (Array.to_list (Array.mapi (fun p key -> (key, msgs.(p))) pairs));
          w_baseline_bytes =
            Drift.of_weights
              (Array.to_list (Array.mapi (fun p key -> (key, pbytes.(p))) pairs));
          w_current = dist;
          w_last_switch_us = 0.;
          w_since_check = 0;
          w_checks = 0;
          w_detections = 0;
          w_repartitions = 0;
          w_migrations = 0;
          w_unchanged = 0;
          w_rejected = 0;
          w_last_similarity = 1.;
          w_timeline = [];
        })
      config.dc_watch
  in
  let resil =
    Option.map
      (fun rc ->
        {
          r_ladder = rc.rc_ladder;
          r_health = Health.create ~policy:rc.rc_health ();
          r_max_probe_rounds = rc.rc_max_probe_rounds;
          r_obs = Option.map make_resil_instruments metrics;
          r_rung = 0;
          r_breaker_opens = 0;
          r_breaker_closes = 0;
          r_failovers = 0;
          r_failbacks = 0;
          r_migrations = 0;
          r_stranded = 0;
          r_rescued = 0;
        })
      config.dc_resilience
  in
  let fleet_state =
    Option.map
      (fun fc ->
        let pl = fc.fc_ladder in
        let rung0 = Fallback.pool_rung_at pl 0 in
        let hosts = rung0.Fallback.pr_shape.Pool.sh_hosts in
        let base = Fallback.pool_base pl in
        let safe = Fallback.migration_safety_table base in
        let component = Fallback.pool_components pl in
        let comp_safe = Array.make (max 1 (Array.length component)) true in
        Array.iteri
          (fun c rep ->
            if not (c < Array.length safe && safe.(c)) then comp_safe.(rep) <- false)
          component;
        let shard_count = rung0.Fallback.pr_shard_count in
        {
          f_config = fc;
          f_ladder = pl;
          f_health = Array.init hosts (fun _ -> Health.create ~policy:fc.fc_health ());
          f_faults =
            Array.init hosts (fun h ->
                let spec =
                  match List.assoc_opt h fc.fc_host_faults with
                  | Some sp -> Some sp
                  | None -> config.dc_faults
                in
                Option.map
                  (fun sp -> Fault.make ~seed:(host_fault_seed config.dc_seed h) sp)
                  spec);
          f_obs = Option.map make_fleet_instruments metrics;
          f_safe = safe;
          f_component = component;
          f_comp_safe = comp_safe;
          f_window =
            Window.create ~half_life_us:fc.fc_half_life_us
              ~pairs:(Array.init shard_count (fun s -> (s, s)));
          f_rung = 0;
          f_shard_of = Array.copy rung0.Fallback.pr_shard_of;
          f_active = Array.init shard_count (fun s -> Pool.host_of rung0.Fallback.pr_shape s);
          f_replicated = Array.copy rung0.Fallback.pr_replicated;
          f_since_check = 0;
          f_opens = 0;
          f_closes = 0;
          f_failovers = 0;
          f_failbacks = 0;
          f_migrations = 0;
          f_stranded = 0;
          f_rescued = 0;
          f_promotions = 0;
          f_splits = 0;
          f_resizes = 0;
          f_inter_host = 0;
        })
      config.dc_fleet
  in
  (match fleet_state with
  | None -> ()
  | Some f -> (
      match f.f_obs with
      | None -> ()
      | Some fi ->
          Metrics.set fi.fi_hosts (float_of_int (Array.length f.f_health));
          Metrics.set fi.fi_shards (float_of_int (Array.length f.f_active))));
  install ?loggers ?tracer ?metrics ~classifier
    ~mode:
      (M_distributed
         {
           m_factory = factory;
           m_network = config.dc_network;
           m_jitter = config.dc_jitter;
           m_rng = Prng.create (jitter_seed config.dc_seed);
           m_faults =
             Option.map
               (fun sp -> Fault.make ~seed:(fault_seed config.dc_seed) sp)
               config.dc_faults;
           m_retry = config.dc_retry;
           m_retry_rng = Prng.create (retry_seed config.dc_seed);
           m_resil = resil;
           m_watch = watch_state;
           m_fleet = fleet_state;
         })
    ctx

let uninstall t =
  Runtime.set_create_hook t.ctx None;
  Runtime.set_query_hook t.ctx None;
  Runtime.set_destroy_hook t.ctx None

let icc t = t.rte_icc
let inst_comm t = t.rte_inst_comm
let classifier t = t.rte_classifier

let instance_classifications t =
  Hashtbl.fold (fun inst c acc -> (inst, c) :: acc) t.inst_classification []
  |> List.sort compare

let instances_created t = List.rev t.created

let factory t =
  match t.mode with M_profiling -> None | M_distributed { m_factory; _ } -> Some m_factory

let call_counts t =
  Hashtbl.fold (fun key r acc -> (key, !r) :: acc) t.pair_counts [] |> List.sort compare

let comm_us t = t.comm
let remote_calls t = t.n_remote_calls
let remote_bytes t = t.n_remote_bytes
let intercepted_calls t = t.n_intercepted

let resil_of t =
  match t.mode with
  | M_profiling | M_distributed { m_resil = None; _ } -> None
  | M_distributed { m_resil = Some r; _ } -> Some r

let link_health t = Option.map (fun r -> r.r_health) (resil_of t)
let current_rung t = match resil_of t with None -> 0 | Some r -> r.r_rung

let watch_of t =
  match t.mode with
  | M_profiling | M_distributed { m_watch = None; _ } -> None
  | M_distributed { m_watch = Some w; _ } -> Some w

let watch_timeline t = match watch_of t with None -> [] | Some w -> List.rev w.w_timeline
let watch_placement t = Option.map (fun w -> w.w_current) (watch_of t)

let watch_window_signature t =
  Option.map (fun w -> Window.signature_at w.w_window ~now_us:(sim_now t)) (watch_of t)

let watch_tap_counts t =
  Option.map (fun w -> (Tap.offered w.w_tap, Tap.sampled w.w_tap)) (watch_of t)

let fleet_of t =
  match t.mode with
  | M_profiling | M_distributed { m_fleet = None; _ } -> None
  | M_distributed { m_fleet = Some f; _ } -> Some f

type fleet_stats = {
  fs_breaker_opens : int;
  fs_breaker_closes : int;
  fs_failovers : int;
  fs_failbacks : int;
  fs_migrations : int;
  fs_stranded_calls : int;
  fs_rescued_calls : int;
  fs_promotions : int;
  fs_splits : int;
  fs_resizes : int;
  fs_inter_host_calls : int;
  fs_final_rung : int;
  fs_final_hosts : int;
  fs_final_shards : int;
}

let fleet_stats t =
  Option.map
    (fun f ->
      {
        fs_breaker_opens = f.f_opens;
        fs_breaker_closes = f.f_closes;
        fs_failovers = f.f_failovers;
        fs_failbacks = f.f_failbacks;
        fs_migrations = f.f_migrations;
        fs_stranded_calls = f.f_stranded;
        fs_rescued_calls = f.f_rescued;
        fs_promotions = f.f_promotions;
        fs_splits = f.f_splits;
        fs_resizes = f.f_resizes;
        fs_inter_host_calls = f.f_inter_host;
        fs_final_rung = f.f_rung;
        fs_final_hosts = (fleet_shape f).Pool.sh_hosts;
        fs_final_shards = Array.length f.f_active;
      })
    (fleet_of t)

let fleet_shard_table t =
  Option.map (fun f -> (Array.copy f.f_shard_of, Array.copy f.f_active)) (fleet_of t)

type stats = {
  st_comm_us : float;
  st_remote_calls : int;
  st_remote_bytes : int;
  st_intercepted : int;
  st_retries : int;
  st_drops : int;
  st_spikes : int;
  st_fallbacks : int;
  st_unreachable : int;
  st_fault_us : float;
  (* Resilience counters — all zero unless a resilience policy was
     installed. *)
  st_breaker_opens : int;
  st_breaker_closes : int;
  st_failovers : int;
  st_failbacks : int;
  st_migrations : int;
  st_stranded_calls : int;
  st_rescued_calls : int;
  st_final_rung : int;
  (* Watch counters — all zero (similarity 1) unless a watch was
     installed. *)
  st_drift_checks : int;
  st_drift_detections : int;
  st_repartitions : int;
  st_watch_migrations : int;
  st_unchanged_cuts : int;
  st_rejected_cuts : int;
  st_last_similarity : float;
}

let stats t =
  let r = resil_of t in
  let fl = fleet_of t in
  (* Breaker/ladder counters come from whichever layer is installed —
     the two-host resilience path or the pool fleet (mutually
     exclusive), so downstream consumers read one set of fields either
     way. *)
  let pick fr ff =
    match (r, fl) with Some r, _ -> fr r | None, Some f -> ff f | None, None -> 0
  in
  let w = watch_of t in
  let wi f = match w with None -> 0 | Some w -> f w in
  {
    st_comm_us = t.comm;
    st_remote_calls = t.n_remote_calls;
    st_remote_bytes = t.n_remote_bytes;
    st_intercepted = t.n_intercepted;
    st_retries = t.n_retries;
    st_drops = t.n_drops;
    st_spikes = t.n_spikes;
    st_fallbacks = t.n_fallbacks;
    st_unreachable = t.n_unreachable;
    st_fault_us = t.fault_us;
    st_breaker_opens = pick (fun r -> r.r_breaker_opens) (fun f -> f.f_opens);
    st_breaker_closes = pick (fun r -> r.r_breaker_closes) (fun f -> f.f_closes);
    st_failovers = pick (fun r -> r.r_failovers) (fun f -> f.f_failovers);
    st_failbacks = pick (fun r -> r.r_failbacks) (fun f -> f.f_failbacks);
    st_migrations = pick (fun r -> r.r_migrations) (fun f -> f.f_migrations);
    st_stranded_calls = pick (fun r -> r.r_stranded) (fun f -> f.f_stranded);
    st_rescued_calls = pick (fun r -> r.r_rescued) (fun f -> f.f_rescued);
    st_final_rung = pick (fun r -> r.r_rung) (fun f -> f.f_rung);
    st_drift_checks = wi (fun w -> w.w_checks);
    st_drift_detections = wi (fun w -> w.w_detections);
    st_repartitions = wi (fun w -> w.w_repartitions);
    st_watch_migrations = wi (fun w -> w.w_migrations);
    st_unchanged_cuts = wi (fun w -> w.w_unchanged);
    st_rejected_cuts = wi (fun w -> w.w_rejected);
    st_last_similarity = (match w with None -> 1. | Some w -> w.w_last_similarity);
  }
