(** Pool shapes: the server side of a cut as a fleet of [k] hosts.

    The paper's cut is binary — client machine, server machine. A pool
    shape generalizes the server terminal into [k] hosts carrying a
    set of {e shards} (disjoint groups of server-side classifications)
    plus a replica factor for read-mostly shards. Placement is a pure
    function of the shape: the same shard map always sends a
    classification key to the same shard, and the same shard to the
    same primary host, so fleet runs are reproducible and a shard map
    can be reused across pool instantiations without drift.

    Two shard-map families mirror the common partitioned-service
    placements: [Hash] (stable keyed hash of the classification id,
    modulo the shard count) and [Range] (explicit upper-bound split
    points over the classification-id space). *)

type shard_map =
  | Hash of int  (** [Hash k]: key [c] lands in shard [mix64-hash(c) mod k]. *)
  | Range of int array
      (** [Range bounds]: shard [s] holds keys [c] with
          [bounds.(s-1) <= c < bounds.(s)] (conceptually; the array
          stores the exclusive upper bound of every shard but the
          last, which is unbounded). [Range [|4; 9|]] has 3 shards:
          keys < 4, keys in [4,9), keys >= 9. Bounds must be strictly
          increasing. *)

type shape = {
  sh_hosts : int;  (** pool size [k >= 1] *)
  sh_replicas : int;  (** replica factor [>= 1]; 1 means no standbys *)
  sh_map : shard_map;
}

val shape : ?replicas:int -> ?map:shard_map -> int -> shape
(** [shape k] is a [k]-host pool, hash-sharded [k] ways with replica
    factor [min 2 k] by default. Raises [Invalid_argument] on
    [k < 1], a replica factor outside [\[1, k\]], an empty or
    non-increasing [Range], or a [Hash] shard count [< 1]. *)

val shard_count : shard_map -> int
(** Number of shards the map can produce. *)

val shard_of : shard_map -> int -> int
(** [shard_of map c] places classification key [c]. Pure: equal
    arguments always yield equal shards, across any number of pool
    instantiations. [c] may be any int (the main program's [-1]
    included). *)

val host_of : shape -> int -> int
(** [host_of shape shard] is the shard's primary host — round-robin,
    [shard mod sh_hosts]. *)

val replica_hosts : shape -> int -> int list
(** The hosts holding a copy of [shard], primary first, then the next
    [sh_replicas - 1] hosts in ring order. All distinct. *)

val pp : Format.formatter -> shape -> unit
