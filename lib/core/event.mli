(** Application events reported to information loggers (paper §3.3):
    component instantiations and destructions, interface instantiations
    and destructions, and interface calls. *)

type t =
  | Component_instantiated of {
      inst : int;
      cname : string;
      classification : int;
      creator : int;  (** instance on whose behalf the request was made *)
    }
  | Component_destroyed of { inst : int }
  | Interface_instantiated of { owner : int; iface : string; handle : int }
  | Interface_destroyed of { owner : int; iface : string; handle : int }
  | Interface_call of {
      caller : int;                (** calling instance *)
      caller_classification : int;
      callee : int;
      callee_classification : int;
      iface : string;
      meth : string;
      remotable : bool;
      request_bytes : int;  (** deep-copy size, caller -> callee *)
      reply_bytes : int;    (** deep-copy size, callee -> caller *)
    }
  | Call_retried of {
      iface : string;
      meth : string;
      retries : int;  (** attempts beyond the first before success *)
    }  (** a remote call survived dropped messages by retrying *)
  | Instantiation_degraded of {
      cname : string;
      classification : int;
    }
      (** the factory could not reach the peer machine within its retry
          policy and fell back to placing the instance with its creator *)
  | Breaker_opened of {
      at_us : int;  (** virtual time, rounded to whole microseconds *)
      failures : int;  (** consecutive failures that tripped the breaker *)
      drops : int;  (** cumulative dropped messages at the trip *)
      spikes : int;  (** cumulative latency spikes at the trip *)
    }  (** the link circuit breaker tripped open *)
  | Breaker_closed of {
      at_us : int;
      probes : int;  (** half-open probe successes that closed it *)
    }  (** the breaker closed again after successful probes *)
  | Failover of {
      at_us : int;
      rung : string;  (** name of the fallback rung switched to *)
      from_rung : int;
      to_rung : int;
      migrated : int;  (** instances moved to their new machine *)
      stranded : int;  (** unsafe instances left on their old machine *)
    }  (** the RTE switched the placement map down the fallback ladder *)
  | Failback of {
      at_us : int;
      rung : string;
      from_rung : int;
      to_rung : int;
      migrated : int;
    }  (** the RTE climbed back up the ladder after probe success *)
  | Instance_migrated of {
      at_us : int;
      inst : int;
      classification : int;
      from_loc : string;  (** {!Constraints.location_name} of the old home *)
      to_loc : string;
    }
      (** one instance moved machines during a rung switch — emitted per
          instance, after the aggregate {!Failover}/{!Failback} event *)
  | Drift_detected of {
      at_us : int;
      similarity : float;  (** window-vs-baseline cosine similarity *)
      threshold : float;
      window_pairs : int;  (** distinct pairs carrying window mass *)
    }
      (** the observation window's usage signature fell below the drift
          threshold against the last-adopted profile baseline *)
  | Repartitioned of {
      at_us : int;
      similarity : float;  (** the similarity that triggered the re-cut *)
      from_servers : int;  (** server-side classifications before *)
      to_servers : int;
      migrated : int;  (** instances moved to their new machine *)
      left : int;  (** unsafe instances left where they were *)
    }
      (** the watch loop re-priced the window through the analysis
          session and atomically installed the new placement *)
  | Replica_promoted of {
      at_us : int;
      shard : int;  (** the shard whose active host changed *)
      from_host : int;  (** pool host whose breaker opened *)
      to_host : int;  (** healthy replica host now serving the shard *)
    }
      (** a shard's reads and writes were redirected to a standing
          replica because the active host's breaker opened *)
  | Shard_split of {
      at_us : int;
      shard : int;  (** the hot shard that was split *)
      new_shard : int;  (** id of the shard carved out of it *)
      moved : int;  (** classifications moved to the new shard *)
      to_host : int;  (** pool host the new shard was placed on *)
    }
      (** deterministic hot-shard detection split a shard whose decayed
          traffic share exceeded the split threshold *)
  | Pool_resized of {
      at_us : int;
      from_hosts : int;
      to_hosts : int;
      shards : int;  (** shard count after the resize *)
      migrated : int;  (** instances moved to their new host *)
    }
      (** the fleet moved along the pool-elastic fallback ladder,
          shrinking or growing the server pool *)

val kind_name : t -> string
(** Stable lowercase tag for each constructor — the key under which
    {!Logger.tally} counts events. *)

val to_json : t -> Coign_util.Jsonu.t
(** The event as a JSON object: [{"event": kind_name, <field>: <value>, ...}]
    with fields named exactly as the record labels, in declaration
    order. Round-trips through {!of_json}. *)

val of_json : Coign_util.Jsonu.t -> (t, string) result
(** Inverse of {!to_json}. [Error] names the missing or mistyped field,
    or the unknown event kind. *)

val to_line : t -> string
(** The stable machine-readable line format emitted by
    {!Logger.to_channel}: the {!kind_name} tag followed by
    [field=value] pairs, tab-separated, fields in declaration order.
    Values are JSON literals (strings quoted and escaped, so tabs and
    newlines inside names cannot break the framing). No trailing
    newline. *)

val pp : Format.formatter -> t -> unit
