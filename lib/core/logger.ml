type t = { logger_name : string; log : Event.t -> unit }

let null = { logger_name = "null"; log = (fun _ -> ()) }

let profiling ~icc ~inst_comm =
  let log = function
    | Event.Interface_call
        { caller; caller_classification; callee; callee_classification; iface; meth = _;
          remotable; request_bytes; reply_bytes } ->
        Icc.record icc ~src:caller_classification ~dst:callee_classification ~iface
          ~remotable ~request:request_bytes ~reply:reply_bytes;
        Inst_comm.record inst_comm ~src:caller ~dst:callee ~bytes:request_bytes;
        Inst_comm.record inst_comm ~src:callee ~dst:caller ~bytes:reply_bytes
    | Event.Component_instantiated _ | Event.Component_destroyed _
    | Event.Interface_instantiated _ | Event.Interface_destroyed _
    | Event.Call_retried _ | Event.Instantiation_degraded _ | Event.Breaker_opened _
    | Event.Breaker_closed _ | Event.Failover _ | Event.Failback _
    | Event.Instance_migrated _ | Event.Drift_detected _ | Event.Repartitioned _
    | Event.Replica_promoted _ | Event.Shard_split _ | Event.Pool_resized _ ->
        ()
  in
  { logger_name = "profiling"; log }

let event_recorder () =
  let events = ref [] in
  ( { logger_name = "event"; log = (fun e -> events := e :: !events) },
    fun () -> List.rev !events )

let counting () =
  let n = ref 0 in
  ({ logger_name = "counting"; log = (fun _ -> incr n) }, fun () -> !n)

let tally () =
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let log e =
    let k = Event.kind_name e in
    match Hashtbl.find_opt counts k with
    | Some r -> incr r
    | None -> Hashtbl.add counts k (ref 1)
  in
  ( { logger_name = "tally"; log },
    fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counts [] |> List.sort compare )

let tee loggers =
  {
    logger_name = "tee(" ^ String.concat "," (List.map (fun l -> l.logger_name) loggers) ^ ")";
    log = (fun e -> List.iter (fun l -> l.log e) loggers);
  }

let to_channel oc =
  {
    logger_name = "channel";
    log =
      (fun e ->
        output_string oc (Event.to_line e);
        output_char oc '\n');
  }
