module Metrics = Coign_obs.Metrics

type policy =
  | By_classification of Analysis.distribution
  | By_class of (string -> Constraints.location)
  | All_client

type counters = { co_local : Metrics.counter; co_forwarded : Metrics.counter }

type t = {
  mutable policy : policy;
  machines : (int, Constraints.location) Hashtbl.t;
  mutable local : int;
  mutable forwarded : int;
  obs : counters option;
}

let create ?metrics policy =
  let obs =
    Option.map
      (fun reg ->
        let requests kind =
          Metrics.counter reg
            ~help:"Instantiation requests decided by the factory, by outcome."
            ~labels:[ ("kind", kind) ] "coign_factory_requests_total"
        in
        { co_local = requests "local"; co_forwarded = requests "forwarded" })
      metrics
  in
  { policy; machines = Hashtbl.create 256; local = 0; forwarded = 0; obs }

let decide t ~classification ~cname ~creator_machine =
  let target =
    match t.policy with
    | All_client -> Constraints.Client
    | By_class f -> f cname
    | By_classification d ->
        if classification >= 0 && classification < d.Analysis.node_count then
          Analysis.location_of d classification
        else creator_machine
  in
  if target = creator_machine then begin
    t.local <- t.local + 1;
    match t.obs with None -> () | Some c -> Metrics.inc c.co_local
  end
  else begin
    t.forwarded <- t.forwarded + 1;
    match t.obs with None -> () | Some c -> Metrics.inc c.co_forwarded
  end;
  target

let policy t = t.policy

(* Atomic placement-map switch for the resilience layer: instantiation
   requests decided after this call follow the new policy; already-
   placed instances keep their recorded machine until re-recorded. *)
let set_policy t policy = t.policy <- policy

let record_instance t ~inst loc = Hashtbl.replace t.machines inst loc

let instances t =
  Hashtbl.fold (fun inst loc acc -> (inst, loc) :: acc) t.machines []
  |> List.sort compare

let machine_of t inst =
  Option.value ~default:Constraints.Client (Hashtbl.find_opt t.machines inst)

let instances_on t loc =
  Hashtbl.fold (fun inst l acc -> if l = loc then inst :: acc else acc) t.machines []
  |> List.sort compare

let local_requests t = t.local
let forwarded_requests t = t.forwarded
