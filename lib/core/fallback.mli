(** Precomputed fallback distributions (the resilience ladder).

    Coign picks one static distribution ahead of time (paper §4); a
    degraded or partitioned link leaves the running application
    retrying into it.  This module re-prices the analysis session's
    abstract ICC graph under per-failure-mode network profiles
    ({!Coign_netsim.Net_profiler.degrade},
    {!Coign_netsim.Net_profiler.link_down}) and keeps the resulting
    cuts as a ranked ladder: rung 0 is the primary distribution, later
    rungs suit progressively worse regimes, and the final rung places
    everything on the client — the regime where the server is simply
    gone.  Every solved rung passes {!Analysis.validate}, so failover
    can never land on a placement the pre-cut lint would reject; the
    all-client rung waives location pins by design (a Server pin
    presumes a reachable server) and is trivially valid otherwise.  A
    per-classification migration-safety table records which instances
    the RTE may move live. *)

type rung = {
  rg_name : string;  (** ["primary"], ["lossy"], ["partition"], ... *)
  rg_distribution : Analysis.distribution;
}

type t

exception Invalid of string
(** Raised by {!compute} / {!of_rungs} when a rung fails validation or
    the ladder is empty. *)

val compute :
  ?algorithm:Coign_flowgraph.Mincut.algorithm ->
  ?profiler:Coign_obs.Profiler.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  ?pool:Coign_util.Parallel.t ->
  ?modes:(string * Coign_netsim.Net_profiler.t) list ->
  ?primary:Analysis.distribution ->
  Analysis.Session.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  t
(** Build the ladder from an analysis session.  [primary] (default: a
    fresh solve against [net]) becomes rung 0; each failure mode in
    [modes] (default: [lossy] then [partition] derived from [net]) is
    solved and appended unless its placement duplicates an earlier
    rung; the all-client placement is appended last under the same
    dedup rule.  With [pool], the mode rungs price domain-parallel
    ({!Analysis.Session.solve_many}) with no change to the resulting
    ladder.  The session's pricing is reusable afterwards — the next
    [solve] replaces it as always. *)

val of_rungs : migration_safe:bool array -> rung list -> t
(** Hand-built ladder (tests, custom policies).  No validation beyond
    non-emptiness — callers own the invariants. *)

val migration_safety : Analysis.Session.t -> bool array
(** Per-classification safety facts: a classification is safe to
    migrate live iff it touches no non-remotable ICC edge and is not
    co-location-chained (transitively) to one that does. *)

val rung_count : t -> int
val rung : t -> int -> rung
(** Rungs are ranked: 0 is primary, higher indexes suit worse regimes. *)

val migration_safe : t -> int -> bool
(** Whether a classification may be migrated live; out-of-range
    classifications (including main, -1) are unsafe. *)

val migration_safety_table : t -> bool array
(** A copy of the ladder's per-classification safety table, indexed by
    classification.  The verifier compares this (what the RTE will act
    on) against a freshly derived {!migration_safety} (the static
    truth) to detect stale or hand-edited tables. *)

val encode : t -> string
val decode : string -> t
(** Round-trips rung names, distributions and the safety table. *)

val pp : Format.formatter -> t -> unit
