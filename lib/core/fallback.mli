(** Precomputed fallback distributions (the resilience ladder).

    Coign picks one static distribution ahead of time (paper §4); a
    degraded or partitioned link leaves the running application
    retrying into it.  This module re-prices the analysis session's
    abstract ICC graph under per-failure-mode network profiles
    ({!Coign_netsim.Net_profiler.degrade},
    {!Coign_netsim.Net_profiler.link_down}) and keeps the resulting
    cuts as a ranked ladder: rung 0 is the primary distribution, later
    rungs suit progressively worse regimes, and the final rung places
    everything on the client — the regime where the server is simply
    gone.  Every solved rung passes {!Analysis.validate}, so failover
    can never land on a placement the pre-cut lint would reject; the
    all-client rung waives location pins by design (a Server pin
    presumes a reachable server) and is trivially valid otherwise.  A
    per-classification migration-safety table records which instances
    the RTE may move live. *)

type rung = {
  rg_name : string;  (** ["primary"], ["lossy"], ["partition"], ... *)
  rg_distribution : Analysis.distribution;
}

type t

exception Invalid of string
(** Raised by {!compute} / {!of_rungs} when a rung fails validation or
    the ladder is empty. *)

val compute :
  ?algorithm:Coign_flowgraph.Mincut.algorithm ->
  ?profiler:Coign_obs.Profiler.t ->
  ?metrics:Coign_obs.Metrics.registry ->
  ?pool:Coign_util.Parallel.t ->
  ?modes:(string * Coign_netsim.Net_profiler.t) list ->
  ?primary:Analysis.distribution ->
  Analysis.Session.t ->
  net:Coign_netsim.Net_profiler.t ->
  unit ->
  t
(** Build the ladder from an analysis session.  [primary] (default: a
    fresh solve against [net]) becomes rung 0; each failure mode in
    [modes] (default: [lossy] then [partition] derived from [net]) is
    solved and appended unless its placement duplicates an earlier
    rung; the all-client placement is appended last under the same
    dedup rule.  With [pool], the mode rungs price domain-parallel
    ({!Analysis.Session.solve_many}) with no change to the resulting
    ladder.  The session's pricing is reusable afterwards — the next
    [solve] replaces it as always. *)

val of_rungs : migration_safe:bool array -> rung list -> t
(** Hand-built ladder (tests, custom policies).  No validation beyond
    non-emptiness — callers own the invariants. *)

val migration_safety : Analysis.Session.t -> bool array
(** Per-classification safety facts: a classification is safe to
    migrate live iff it touches no non-remotable ICC edge and is not
    co-location-chained (transitively) to one that does. *)

val rung_count : t -> int
val rung : t -> int -> rung
(** Rungs are ranked: 0 is primary, higher indexes suit worse regimes. *)

val migration_safe : t -> int -> bool
(** Whether a classification may be migrated live; out-of-range
    classifications (including main, -1) are unsafe. *)

val migration_safety_table : t -> bool array
(** A copy of the ladder's per-classification safety table, indexed by
    classification.  The verifier compares this (what the RTE will act
    on) against a freshly derived {!migration_safety} (the static
    truth) to detect stale or hand-edited tables. *)

val encode : t -> string

type decode_error =
  | Truncated  (** fewer than header + safety-table lines *)
  | Bad_header of string  (** header line is not ["k n"] with [k >= 1] *)
  | Safety_mismatch of { expected : int; got : int }
      (** safety-table line length disagrees with the header *)
  | Truncated_rung of int  (** rung [i] is missing lines *)
  | Bad_rung of { rung : int; msg : string }
      (** rung [i]'s distribution failed {!Analysis.decode} *)
  | Rung_node_count of { rung : int; expected : int; got : int }
      (** rung [i] places a different classification range than the
          safety table covers — its placement indexes classifications
          the table knows nothing about *)
  | Duplicate_placement of { rung : int; first : int }
      (** rung [i] repeats the placement of an earlier rung — a ladder
          {!compute} can never produce, and one the RTE's
          rung-switching logic must not be handed *)

val decode_error_message : decode_error -> string

exception Decode_error of decode_error

val decode : string -> t
(** Inverse of {!encode}.  Raises {!Decode_error} on malformed input —
    including duplicate rung placements and rungs whose node count
    falls outside the safety table's classification range, which older
    decoders accepted silently. *)

(** {1 Pool-elastic ladder}

    The two-host ladder above degrades by moving classifications
    between {e two} machines.  A pool ladder generalizes each rung
    into a {!Pool.shape}: the top rung runs the primary cut's server
    side sharded across [hosts] machines, intermediate rungs shrink
    the pool one host at a time, and the final rungs are exactly the
    base ladder at pool size 1 — so a pool of one is the PR 5
    resilience path, bit for bit.  Sharding is by component (connected
    groups under non-remotable edges and co-location constraints, keyed
    by the component's smallest classification), migration-unsafe
    components are pinned to shard 0 and never replicated, and each
    rung is priced through the same abstract-graph pricing as the
    two-way engine ({!Multiway_analysis.predicted_assignment_us}) with
    hosts as machines. *)

type pool_rung = {
  pr_name : string;  (** ["pool-3"], ..., then the base rung's name *)
  pr_distribution : Analysis.distribution;  (** underlying two-way cut *)
  pr_shape : Pool.shape;
  pr_shard_of : int array;
      (** classification -> shard id, [-1] for client-side (and thus
          unsharded) classifications *)
  pr_shard_count : int;
  pr_replicated : bool array;
      (** by shard: whether every member is migration-safe, i.e. the
          shard may keep live replicas and be promoted between hosts *)
  pr_predicted_us : float;
      (** priced communication time of the sharded placement: the
          client/server cut plus inter-host server-server traffic *)
}

type pool_ladder

val pool_ladder :
  ?replicas:int ->
  ?map:Pool.shard_map ->
  hosts:int ->
  Analysis.Session.t ->
  net:Coign_netsim.Net_profiler.t ->
  t ->
  pool_ladder
(** Build the pool ladder over a base (two-host) ladder: rungs
    [pool-hosts, pool-(hosts-1), ..., pool-2] over the base's primary
    distribution, then every base rung at pool size 1.  The shard map
    (default [Hash hosts]) is fixed across the whole ladder — only the
    host count varies, with shards folding onto fewer hosts modulo the
    pool size — so a key's shard never changes as the pool breathes.
    [replicas] (default 2) is clamped to each rung's host count.
    Raises {!Invalid} on [hosts < 1] or [replicas < 1]. *)

val pool_rung_count : pool_ladder -> int
val pool_rung_at : pool_ladder -> int -> pool_rung
val pool_base : pool_ladder -> t
(** The base ladder the pool ladder was built over (rung names,
    migration-safety table). *)

val pool_components : pool_ladder -> int array
(** Classification -> component representative (smallest member).  The
    granularity below which the RTE must never split a shard. *)

val pp : Format.formatter -> t -> unit
val pp_pool : Format.formatter -> pool_ladder -> unit
