open Coign_util

type key = { k_src : int; k_dst : int; k_iface : string }

type cell = { mutable remotable : bool; buckets : Exp_bucket.t }

type t = { cells : (key, cell) Hashtbl.t; mutable calls : int }

type entry = {
  src : int;
  dst : int;
  iface : string;
  remotable : bool;
  messages : Exp_bucket.t;
}

let create () = { cells = Hashtbl.create 256; calls = 0 }

let cell_of t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = { remotable = true; buckets = Exp_bucket.create () } in
      Hashtbl.add t.cells key c;
      c

let record t ~src ~dst ~iface ~remotable ~request ~reply =
  let c = cell_of t { k_src = src; k_dst = dst; k_iface = iface } in
  if not remotable then c.remotable <- false;
  Exp_bucket.add c.buckets ~bytes:request;
  Exp_bucket.add c.buckets ~bytes:reply;
  t.calls <- t.calls + 1

let entries t =
  Hashtbl.fold
    (fun k (c : cell) acc ->
      { src = k.k_src; dst = k.k_dst; iface = k.k_iface; remotable = c.remotable;
        messages = c.buckets }
      :: acc)
    t.cells []
  |> List.sort (fun a b -> compare (a.src, a.dst, a.iface) (b.src, b.dst, b.iface))

let pair_entries t =
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (min e.src e.dst, max e.src e.dst) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt pairs key) in
      Hashtbl.replace pairs key (e :: cur))
    (entries t);
  Hashtbl.fold (fun k es acc -> (k, List.rev es) :: acc) pairs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fold_messages f t init =
  Hashtbl.fold
    (fun k (c : cell) acc ->
      f ~src:k.k_src ~dst:k.k_dst ~count:(Exp_bucket.message_count c.buckets) acc)
    t.cells init

let call_count t = t.calls

let total_bytes t =
  Hashtbl.fold (fun _ c acc -> acc + Exp_bucket.total_bytes c.buckets) t.cells 0

let merge a b =
  let r = create () in
  let absorb t =
    Hashtbl.iter
      (fun k (c : cell) ->
        match Hashtbl.find_opt r.cells k with
        | None ->
            Hashtbl.add r.cells k
              { remotable = c.remotable; buckets = Exp_bucket.merge c.buckets (Exp_bucket.create ()) }
        | Some existing ->
            if not c.remotable then existing.remotable <- false;
            Hashtbl.replace r.cells k
              { remotable = existing.remotable && c.remotable;
                buckets = Exp_bucket.merge existing.buckets c.buckets })
      t.cells
  in
  absorb a;
  absorb b;
  r.calls <- a.calls + b.calls;
  r

let map_classifications f t =
  let r = create () in
  Hashtbl.iter
    (fun k (c : cell) ->
      let remap x = if x < 0 then x else f x in
      let key = { k_src = remap k.k_src; k_dst = remap k.k_dst; k_iface = k.k_iface } in
      match Hashtbl.find_opt r.cells key with
      | None ->
          Hashtbl.add r.cells key
            { remotable = c.remotable; buckets = Exp_bucket.merge c.buckets (Exp_bucket.create ()) }
      | Some existing ->
          Hashtbl.replace r.cells key
            { remotable = existing.remotable && c.remotable;
              buckets = Exp_bucket.merge existing.buckets c.buckets })
    t.cells;
  r.calls <- t.calls;
  r

let is_empty t = Hashtbl.length t.cells = 0

(* Text encoding: one line per (entry, bucket). *)
let encode t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "calls %d\n" t.calls);
  List.iter
    (fun e ->
      ignore
        (Exp_bucket.fold
           (fun ~index ~count ~bytes () ->
             Buffer.add_string buf
               (Printf.sprintf "%d\t%d\t%s\t%d\t%d\t%d\t%d\n" e.src e.dst e.iface
                  (if e.remotable then 1 else 0)
                  index count bytes))
           e.messages ()))
    (entries t);
  Buffer.contents buf

let decode s =
  let t = create () in
  List.iter
    (fun line ->
      if not (String.equal line "") then
        if String.length line > 6 && String.sub line 0 6 = "calls " then
          t.calls <- int_of_string (String.sub line 6 (String.length line - 6))
        else
          match String.split_on_char '\t' line with
          | [ src; dst; iface; remotable; index; count; bytes ] ->
              let c =
                cell_of t
                  { k_src = int_of_string src; k_dst = int_of_string dst; k_iface = iface }
              in
              if String.equal remotable "0" then c.remotable <- false;
              let count = int_of_string count and bytes = int_of_string bytes in
              let index = int_of_string index in
              (* Reconstruct the bucket contents: distribute total bytes
                 over count messages of the mean size, preserving count
                 and totals within the original bucket. *)
              if count > 0 then begin
                (* Distribute total bytes over count messages without
                   leaving the bucket: floor-mean messages plus enough
                   (mean+1)-byte messages to absorb the remainder. *)
                let mean = bytes / count in
                let lo, _hi = Exp_bucket.bucket_bounds index in
                let mean = max lo mean in
                let remainder = max 0 (bytes - (mean * count)) in
                Exp_bucket.add_many c.buckets ~bytes:mean ~count:(count - remainder);
                Exp_bucket.add_many c.buckets ~bytes:(mean + 1) ~count:remainder
              end
          | _ -> invalid_arg "Icc.decode: malformed line")
    (String.split_on_char '\n' s);
  t
