(** Whole-program static interface-flow analysis.

    The paper's analysis engine derives pairwise co-location constraints
    statically, before any profile exists (§2, §4): two components that
    can exchange an interface DCOM cannot marshal must share an address
    space. This module computes, from the image's static metadata
    ({!Coign_image.Image_meta}), which classes can ever hold an
    interface handle on which other classes, by propagating handles
    through instantiation, method returns, [Out] parameters and [In]
    parameters to a fixpoint.

    One COM subtlety is central: holding {e any} interface of an object
    allows obtaining {e all} of its interfaces via [QueryInterface], so
    reachability is tracked per class {e pair}, not per (class,
    interface) — a container that receives a child as [IControl] can
    still paint it through [IPaint].

    The result deliberately over-approximates the dynamic profiler's
    observations: every non-remotable pair the profiler can ever see is
    a static pair, so the emitted constraints make the runtime
    remotability abort in {!Coign_sim.Replay} unreachable. *)

type t

val analyze : Coign_image.Image_meta.t -> t

val method_ifaces : Coign_idl.Idl_type.method_sig -> string list
(** Interface names mentioned anywhere in a method signature (return,
    parameters, nested in structs/arrays/pointers). *)

val references : t -> (string * string) list
(** Directed: [(a, b)] iff code in class [a] can hold an interface
    handle on an instance of class [b]. ["MAIN"] denotes the main
    program. *)

val non_remotable_ifaces : t -> string list
(** Interfaces with at least one non-remotable method. *)

val non_remotable_pairs : t -> (string * string) list
(** Unordered (normalized [min, max]) class pairs that can exchange a
    non-remotable interface and therefore must be co-located. Pairs
    involving ["MAIN"] are reported via {!client_pins} instead. *)

val client_pins : t -> string list
(** Classes the main program itself can call through a non-remotable
    interface: they must stay on the client. *)

val unreachable_classes : t -> string list
(** Registered classes no interface handle can ever reach from the main
    program — creatable but dead weight in the image. *)

val constraints_of : t -> Constraints.t
(** {!non_remotable_pairs} as class co-location constraints plus
    {!client_pins} as client pins, ready to merge ahead of the cut. *)
