(** Component location constraints (paper §2, §4.3).

    Constraints come from three sources: static analysis of component
    binaries (GUI classes to the client, storage classes to the
    server), the programmer (absolute constraints forcing an instance
    to a machine, and pair-wise constraints forcing co-location — the
    mechanism that protects data integrity and security), and the
    system itself (the main program runs on the client; data files
    live on the server). The analysis engine compiles them into
    infinite-capacity edges of the cut graph, so no chosen distribution
    can ever violate one. *)

type location = Client | Server

val location_name : location -> string

type t

val empty : t

val pin_class : t -> cname:string -> location -> t
(** Every classification of the named component class is pinned. *)

val pin_classification : t -> int -> location -> t

val colocate : t -> int -> int -> t
(** Pair-wise constraint between two classifications. *)

val colocate_classes : t -> string -> string -> t
(** Pair-wise constraint between two component classes: every
    classification of one must share a machine with every
    classification of the other. This is what the static interface-flow
    analysis emits — it reasons about classes, before any profile
    exists to split them into classifications. *)

val of_image : Coign_image.Binary_image.t -> t
(** Class pins derived by static analysis ({!Static_analysis}). *)

val merge : t -> t -> t
(** Union; conflicting pins raise [Invalid_argument] eagerly when both
    sides pin the same class or classification to different
    machines. *)

val class_pin : t -> cname:string -> location option
val classification_pin : t -> int -> location option
val colocated_pairs : t -> (int * int) list
val colocated_class_pairs : t -> (string * string) list
val pinned_classes : t -> (string * location) list
val pinned_classifications : t -> (int * location) list
