(** Usage-drift detection (paper §6).

    "In the future, Coign could automatically decide when usage differs
    significantly from profiled scenarios and silently enable profiling
    to re-optimize the distribution. ... Run time message counts could
    be compared with related message counts from the profiling
    scenarios to recognize changes in application usage."

    A usage signature is the distribution of call counts over
    (caller classification, callee classification) pairs. The
    lightweight distributed runtime maintains those counts anyway
    ({!Rte.call_counts}); comparing them with the profile's counts by
    normalized dot product gives a cheap similarity score. *)

type signature

val of_icc : Icc.t -> signature
(** The profile-time signature: per-pair call counts from the
    accumulated ICC summaries. *)

val of_counts : ((int * int) * int) list -> signature
(** A run-time signature from {!Rte.call_counts}. *)

val of_weights : ((int * int) * float) list -> signature
(** A signature from fractional per-pair weights — the shape produced by
    an exponentially-decayed observation window. Non-positive weights
    are dropped; duplicate pairs accumulate. *)

val entries : signature -> ((int * int) * float) list
(** The signature's (pair, weight) cells, sorted by pair — a
    deterministic inverse of {!of_weights}. *)

val similarity : signature -> signature -> float
(** Cosine similarity of the two count distributions, in [0, 1]. Two
    empty signatures are fully similar. *)

val drifted : ?threshold:float -> profile:signature -> signature -> bool
(** [true] when similarity falls below [threshold] (default 0.90) —
    the signal to silently re-enable profiling. *)

val pair_count : signature -> int
(** Number of distinct communicating pairs in the signature. *)
